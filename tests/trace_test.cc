/**
 * @file
 * Tests of traffic-trace recording and replay (the section-4.2
 * methodology): recording is lossless and time-ordered, replay drives
 * the same functional operations, and replaying into an identical
 * network reproduces the original access-time profile.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/machine.h"
#include "mem/address_hash.h"
#include "net/trace.h"

namespace ultra::net
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

MachineConfig
machineCfg()
{
    MachineConfig cfg = MachineConfig::small(16, 2);
    cfg.net.combinePolicy = CombinePolicy::Full;
    return cfg;
}

Trace
recordCounterStorm()
{
    Machine machine(machineCfg());
    TraceRecorder recorder(machine.pni());
    const Addr counter = machine.allocShared(1);
    machine.launchAll(16, [counter](Pe &pe) -> Task {
        for (int i = 0; i < 6; ++i) {
            const Word was = co_await pe.fetchAdd(counter, 1);
            (void)was;
            co_await pe.compute(10);
        }
    });
    machine.run();
    return recorder.take();
}

TEST(TraceTest, RecordingIsLosslessAndOrdered)
{
    const Trace trace = recordCounterStorm();
    EXPECT_EQ(trace.entries.size(), 16u * 6u);
    for (std::size_t i = 1; i < trace.entries.size(); ++i)
        EXPECT_GE(trace.entries[i].at, trace.entries[i - 1].at);
    EXPECT_GT(trace.duration(), 0u);
    EXPECT_GT(trace.intensity(16), 0.0);
    EXPECT_LT(trace.intensity(16), 1.0);
}

TEST(TraceTest, RecorderDetachesOnTake)
{
    Machine machine(machineCfg());
    TraceRecorder recorder(machine.pni());
    const Addr a = machine.allocShared(1);
    machine.launch(0, [a](Pe &pe) -> Task {
        const Word was = co_await pe.fetchAdd(a, 1);
        (void)was;
    });
    machine.run();
    const Trace first = recorder.take();
    EXPECT_EQ(first.entries.size(), 1u);
    // Further traffic is not recorded into the taken trace.
    machine.launch(0, [a](Pe &pe) -> Task {
        const Word was = co_await pe.fetchAdd(a, 1);
        (void)was;
    });
    machine.run();
    EXPECT_EQ(recorder.recorded(), 0u);
}

struct ReplayRig
{
    explicit ReplayRig(const NetSimConfig &ncfg)
        : memory(memCfg(ncfg)), network(ncfg, memory),
          hash(log2Exact(memory.totalWords()), true),
          pni(PniConfig{}, network, hash)
    {}

    static mem::MemoryConfig
    memCfg(const NetSimConfig &ncfg)
    {
        mem::MemoryConfig mc;
        mc.numModules = ncfg.numPorts;
        mc.wordsPerModule = 1 << 12;
        return mc;
    }

    mem::MemorySystem memory;
    Network network;
    mem::AddressHash hash;
    PniArray pni;
};

TEST(TraceTest, ReplayExecutesSameOperations)
{
    const Trace trace = recordCounterStorm();
    NetSimConfig ncfg;
    ncfg.numPorts = 16;
    ncfg.combinePolicy = CombinePolicy::Full;
    ReplayRig rig(ncfg);
    const auto result = replayTrace(trace, rig.pni, rig.network);
    EXPECT_EQ(result.requests, trace.entries.size());
    // The 96 fetch-and-adds all landed on the counter.
    const Addr counter_paddr =
        rig.hash.toPhysical(trace.entries.front().vaddr);
    EXPECT_EQ(rig.memory.peek(counter_paddr), 96);
    EXPECT_GT(result.meanAccessTime, 0.0);
}

TEST(TraceTest, IdenticalNetworkReproducesProfile)
{
    const Trace trace = recordCounterStorm();
    NetSimConfig same;
    same.numPorts = 16;
    same.combinePolicy = CombinePolicy::Full;
    ReplayRig rig_a(same);
    ReplayRig rig_b(same);
    const auto a = replayTrace(trace, rig_a.pni, rig_a.network);
    const auto b = replayTrace(trace, rig_b.pni, rig_b.network);
    EXPECT_DOUBLE_EQ(a.meanAccessTime, b.meanAccessTime)
        << "replay must be deterministic";
    EXPECT_EQ(a.finishedAt, b.finishedAt);
}

TEST(TraceTest, FasterNetworkLowersAccessTime)
{
    const Trace trace = recordCounterStorm();
    NetSimConfig slow;
    slow.numPorts = 16;
    slow.combinePolicy = CombinePolicy::None;
    NetSimConfig fast = slow;
    fast.combinePolicy = CombinePolicy::Full;
    ReplayRig rig_slow(slow);
    ReplayRig rig_fast(fast);
    const auto r_slow = replayTrace(trace, rig_slow.pni,
                                    rig_slow.network);
    const auto r_fast = replayTrace(trace, rig_fast.pni,
                                    rig_fast.network);
    EXPECT_LT(r_fast.meanAccessTime, r_slow.meanAccessTime)
        << "combining must help this hot-counter trace";
}

TEST(TraceTest, SaveLoadRoundTrip)
{
    const Trace trace = recordCounterStorm();
    const std::string path = "/tmp/ultra_trace_test.csv";
    saveTrace(trace, path);
    const Trace loaded = loadTrace(path);
    ASSERT_EQ(loaded.entries.size(), trace.entries.size());
    for (std::size_t i = 0; i < trace.entries.size(); ++i) {
        EXPECT_EQ(loaded.entries[i].at, trace.entries[i].at);
        EXPECT_EQ(loaded.entries[i].pe, trace.entries[i].pe);
        EXPECT_EQ(loaded.entries[i].op, trace.entries[i].op);
        EXPECT_EQ(loaded.entries[i].vaddr, trace.entries[i].vaddr);
        EXPECT_EQ(loaded.entries[i].data, trace.entries[i].data);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace ultra::net
