/**
 * @file
 * Unit tests for the coroutine Task type itself: ownership and move
 * semantics, completion observation, nested-task value flow, and
 * exception propagation out of simulated programs.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/machine.h"
#include "pe/pe.h"
#include "pe/task.h"

namespace ultra
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

TEST(TaskTest, DefaultIsInvalid)
{
    Task task;
    EXPECT_FALSE(task.valid());
    EXPECT_FALSE(task.done());
}

TEST(TaskTest, MoveTransfersOwnership)
{
    auto make = []() -> Task { co_return; };
    Task a = make();
    EXPECT_TRUE(a.valid());
    Task b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    Task c;
    c = std::move(b);
    EXPECT_FALSE(b.valid());
    EXPECT_TRUE(c.valid());
}

TEST(TaskTest, MoveAssignDestroysPrevious)
{
    // Assigning over a suspended task must destroy its frame without
    // leaking or crashing (covered by ASAN-less sanity: just run it).
    auto make = []() -> Task { co_return; };
    Task a = make();
    a = make();
    EXPECT_TRUE(a.valid());
}

TEST(TaskTest, ExceptionInProgramPropagatesFromRun)
{
    Machine machine(MachineConfig::small(16, 2));
    const Addr cell = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        const Word v = co_await pe.load(cell);
        (void)v;
        throw std::runtime_error("program failed");
    });
    EXPECT_THROW(machine.run(), std::runtime_error);
}

TEST(TaskTest, ExceptionInNestedTaskPropagates)
{
    Machine machine(MachineConfig::small(16, 2));
    const Addr cell = machine.allocShared(1);

    auto inner = [](Pe &pe, Addr addr) -> Task {
        const Word v = co_await pe.load(addr);
        (void)v;
        throw std::logic_error("inner failed");
    };
    bool caught_in_outer = false;
    machine.launch(0, [&](Pe &pe) -> Task {
        try {
            co_await inner(pe, cell);
        } catch (const std::logic_error &) {
            caught_in_outer = true;
        }
        co_await pe.store(cell, 7); // program continues after catch
    });
    ASSERT_TRUE(machine.run());
    EXPECT_TRUE(caught_in_outer);
    EXPECT_EQ(machine.peek(cell), 7);
}

TEST(TaskTest, AwaitingCompletedTaskIsImmediate)
{
    // Task::Awaiter::await_ready short-circuits a finished task.
    Machine machine(MachineConfig::small(16, 2));
    const Addr cell = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        Task inner = [](Pe &inner_pe, Addr addr) -> Task {
            co_await inner_pe.fetchAdd(addr, 1);
        }(pe, cell);
        co_await inner;       // runs to completion
        EXPECT_TRUE(inner.done());
        co_await inner;       // second await: already done, immediate
        co_await pe.fetchAdd(cell, 10);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(cell), 11);
}

TEST(LoadHandleTest, InvalidHandleProperties)
{
    pe::LoadHandle handle;
    EXPECT_FALSE(handle.valid());
    EXPECT_FALSE(handle.ready());
}

TEST(LoadHandleTest, HandleCanBeCopiedAndAwaitedOnce)
{
    Machine machine(MachineConfig::small(16, 2));
    const Addr cell = machine.allocShared(1);
    machine.poke(cell, 33);
    Word a = -1, b = -1;
    machine.launch(0, [&](Pe &pe) -> Task {
        auto h1 = pe.startLoad(cell);
        auto h2 = h1; // copies share the slot
        a = co_await h1;
        EXPECT_TRUE(h2.ready());
        b = co_await h2; // already done: free
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(a, 33);
    EXPECT_EQ(b, 33);
}

TEST(TaskTest, ManySmallTasksNoLeak)
{
    // Churn frames to exercise allocation/destroy paths.
    Machine machine(MachineConfig::small(16, 2));
    const Addr cell = machine.allocShared(1);
    auto tick = [](Pe &pe, Addr addr) -> Task {
        const Word was = co_await pe.fetchAdd(addr, 1);
        (void)was;
    };
    machine.launch(0, [&](Pe &pe) -> Task {
        for (int i = 0; i < 200; ++i)
            co_await tick(pe, cell);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(cell), 200);
}

} // namespace
} // namespace ultra
