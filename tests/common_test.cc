/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, tables, types.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace ultra
{
namespace
{

TEST(TypesTest, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(4095));
}

TEST(TypesTest, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(TypesTest, LogBase)
{
    EXPECT_EQ(logBase(4096, 2), 12u);
    EXPECT_EQ(logBase(4096, 4), 6u);
    EXPECT_EQ(logBase(4096, 8), 4u);
    EXPECT_EQ(logBase(8, 2), 3u);
    EXPECT_EQ(logBase(2, 2), 1u);
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(RngTest, UniformIntCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniformDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, BernoulliEdgeCases)
{
    Rng rng(1);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(RngTest, GeometricMean)
{
    Rng rng(5);
    const double p = 0.2;
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of the number of failures before success: (1-p)/p = 4.
    EXPECT_NEAR(sum / trials, (1.0 - p) / p, 0.15);
}

TEST(RngTest, SplitIndependence)
{
    Rng a(9);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(AccumulatorTest, Empty)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, MeanVarianceMinMax)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(AccumulatorTest, MergeMatchesCombinedStream)
{
    Rng rng(13);
    Accumulator all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniformDouble() * 10.0;
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(AccumulatorTest, MergeWithEmpty)
{
    Accumulator a, b;
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(AccumulatorTest, MergeEmptyIntoEmpty)
{
    Accumulator a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
}

TEST(AccumulatorTest, MergePreservesExtremes)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(10.0);
    b.add(-5.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(HistogramTest, BinningAndMean)
{
    Histogram h(10, 8);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(25);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 11.0);
}

TEST(HistogramTest, OverflowBin)
{
    Histogram h(1, 4);
    h.add(1000);
    EXPECT_EQ(h.binCount(h.numBins() - 1), 1u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(HistogramTest, Percentile)
{
    Histogram h(1, 100);
    for (std::uint64_t i = 0; i < 100; ++i)
        h.add(i);
    EXPECT_LE(h.percentile(0.5), 51u);
    EXPECT_GE(h.percentile(0.5), 49u);
    EXPECT_GE(h.percentile(0.99), 97u);
}

TEST(HistogramTest, PercentileOfEmpty)
{
    Histogram h(1, 8);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, PercentileExtremeQuantiles)
{
    Histogram h(1, 100);
    for (std::uint64_t x : {5, 6, 7})
        h.add(x);
    // q=0 lands in the first nonempty bin, q=1 in the last.
    EXPECT_EQ(h.percentile(0.0), 5u);
    EXPECT_EQ(h.percentile(1.0), 7u);
    // Out-of-range quantiles clamp rather than misbehave.
    EXPECT_EQ(h.percentile(-0.5), 5u);
    EXPECT_EQ(h.percentile(2.0), 7u);
}

TEST(HistogramTest, AllSamplesInOverflowBin)
{
    Histogram h(1, 4);
    h.add(100);
    h.add(200);
    EXPECT_EQ(h.binCount(h.numBins() - 1), 2u);
    // Every percentile of an overflow-only distribution reports the
    // largest sample -- the only value the bin still knows.
    EXPECT_EQ(h.percentile(0.5), 200u);
    EXPECT_EQ(h.percentile(1.0), 200u);
}

/** Captures log output through the pluggable sink, restoring the
 *  default sink and threshold on destruction. */
class LogCapture
{
  public:
    LogCapture()
    {
        setLogSink([this](LogLevel level, const std::string &msg) {
            messages_.emplace_back(level, msg);
        });
    }

    ~LogCapture()
    {
        setLogSink(nullptr);
        setLogThreshold(LogLevel::Inform);
    }

    const std::vector<std::pair<LogLevel, std::string>> &
    messages() const
    {
        return messages_;
    }

  private:
    std::vector<std::pair<LogLevel, std::string>> messages_;
};

TEST(LogTest, SinkCapturesFormattedMessages)
{
    LogCapture capture;
    inform("hello ", 42);
    warn("trouble at cycle ", 7);
    ASSERT_EQ(capture.messages().size(), 2u);
    EXPECT_EQ(capture.messages()[0].first, LogLevel::Inform);
    EXPECT_EQ(capture.messages()[0].second, "hello 42");
    EXPECT_EQ(capture.messages()[1].first, LogLevel::Warn);
    EXPECT_EQ(capture.messages()[1].second, "trouble at cycle 7");
}

TEST(LogTest, ThresholdGatesLowerLevels)
{
    LogCapture capture;
    debug("dropped at default threshold");
    EXPECT_TRUE(capture.messages().empty());

    setLogThreshold(LogLevel::Debug);
    debug("now visible");
    ASSERT_EQ(capture.messages().size(), 1u);
    EXPECT_EQ(capture.messages()[0].first, LogLevel::Debug);
    EXPECT_EQ(capture.messages()[0].second, "now visible");

    setLogThreshold(LogLevel::Warn);
    inform("suppressed");
    debug("suppressed too");
    warn("still emitted");
    ASSERT_EQ(capture.messages().size(), 2u);
    EXPECT_EQ(capture.messages()[1].second, "still emitted");
}

TEST(LogTest, ThresholdFromEnvironment)
{
    setenv("ULTRA_LOG", "debug", 1);
    EXPECT_EQ(detail::thresholdFromEnv(), LogLevel::Debug);
    setenv("ULTRA_LOG", "warn", 1);
    EXPECT_EQ(detail::thresholdFromEnv(), LogLevel::Warn);
    setenv("ULTRA_LOG", "bogus", 1);
    EXPECT_EQ(detail::thresholdFromEnv(), LogLevel::Inform);
    unsetenv("ULTRA_LOG");
    EXPECT_EQ(detail::thresholdFromEnv(), LogLevel::Inform);
}

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| alpha |"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
    // All lines the same width.
    std::size_t width = out.find('\n');
    for (std::size_t pos = 0; pos < out.size();) {
        const std::size_t next = out.find('\n', pos);
        EXPECT_EQ(next - pos, width);
        pos = next + 1;
    }
}

TEST(TextTableTest, Formatters)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.62), "62%");
    EXPECT_EQ(TextTable::pct(0.005, 1), "0.5%");
}

} // namespace
} // namespace ultra
