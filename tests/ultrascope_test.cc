/**
 * @file
 * End-to-end tests of the ultrascope tool, both personalities:
 *
 *   - offline: `ultrasim ... --trace-events FILE` then
 *     `ultrascope FILE`, asserting the congestion / combine-forest /
 *     slow-path report appears and the tool exits 0;
 *   - live: `ultrasim net --inspect SOCKET` in the background, a
 *     scripted `ultrascope --attach` session (arm a cycle watchpoint,
 *     dump a switch, resume to completion, detach), and the headline
 *     guarantee from the outside -- the attached run's --stats-json is
 *     byte-identical to an unattached run's.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#ifndef ULTRASIM_BIN
#error "build must define ULTRASIM_BIN (see tests/CMakeLists.txt)"
#endif
#ifndef ULTRASCOPE_BIN
#error "build must define ULTRASCOPE_BIN (see tests/CMakeLists.txt)"
#endif

namespace
{

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") + "/ultrascope_" +
           name;
}

int
runCommand(const std::string &cmd)
{
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Poll until @p path exists and is non-empty (children write it). */
bool
awaitFile(const std::string &path, int timeout_ms)
{
    for (int waited = 0; waited < timeout_ms; waited += 50) {
        if (!readFile(path).empty())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

/** Poll until @p path appears on disk (the inspect socket). */
bool
awaitPath(const std::string &path, int timeout_ms)
{
    for (int waited = 0; waited < timeout_ms; waited += 50) {
        if (::access(path.c_str(), F_OK) == 0)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

TEST(UltrascopeTest, OfflineTraceReport)
{
    const std::string trace = tmpPath("trace.json");
    const std::string report = tmpPath("report.txt");
    // A hot-spot run guarantees combines, so every report section has
    // something to say.
    ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) +
                         " net --ports 64 --k 2 --rate 0.15 --hot 0.1"
                         " --cycles 1500 --trace-events " +
                         trace + " > /dev/null 2>&1"),
              0);
    ASSERT_FALSE(readFile(trace).empty());

    ASSERT_EQ(runCommand(std::string(ULTRASCOPE_BIN) + " " + trace +
                         " --top 4 --slowest 4 > " + report + " 2>&1"),
              0);
    const std::string text = readFile(report);
    EXPECT_NE(text.find("events"), std::string::npos) << text;
    EXPECT_NE(text.find("top congested lanes"), std::string::npos);
    EXPECT_NE(text.find("combine forest"), std::string::npos);
    EXPECT_NE(text.find("slowest request paths"), std::string::npos);
    std::remove(trace.c_str());
    std::remove(report.c_str());
}

TEST(UltrascopeTest, UsageAndConnectFailuresExitTwo)
{
    // Unreadable trace file.
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) +
                         " /no/such/trace.json > /dev/null 2>&1"),
              2);
    // --attach with no address.
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) +
                         " --attach > /dev/null 2>&1"),
              2);
    // Nothing listening at the address.
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) + " --attach " +
                         tmpPath("nobody.sock") +
                         " --cmd status > /dev/null 2>&1"),
              2);
}

TEST(UltrascopeTest, ScriptedAttachMatchesUnattachedRun)
{
    const std::string sock = tmpPath("live.sock");
    const std::string attached_json = tmpPath("attached.json");
    const std::string plain_json = tmpPath("plain.json");
    const std::string log = tmpPath("session.log");
    const std::string common =
        " net --ports 64 --k 2 --rate 0.12 --hot 0.05 --cycles 1200"
        " --threads 4 --stats-json ";
    std::remove(attached_json.c_str());

    // Background run, paused at cycle 0 until the script resumes it.
    ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) + common +
                         attached_json + " --inspect " + sock +
                         " > /dev/null 2>&1 &"),
              0);
    ASSERT_TRUE(awaitPath(sock, 15000)) << "inspect socket never bound";

    const int rc = runCommand(
        std::string(ULTRASCOPE_BIN) + " --attach " + sock +
        " --cmd '{\"cmd\":\"watch\",\"queue\":\"tomm\",\"stage\":1,"
        "\"op\":\">\",\"value\":3}'"
        " --cmd resume"
        " --wait-event watchpoint"
        " --cmd '{\"cmd\":\"switch\",\"copy\":0,\"stage\":1,\"index\":0}'"
        " --cmd '{\"cmd\":\"stats\",\"prefix\":\"net.\"}'"
        " --cmd resume"
        " --wait-event finished"
        " --cmd detach > " +
        log + " 2>&1");
    if (rc != 0) {
        // Best effort: never leave a paused orphan holding the socket.
        runCommand(std::string(ULTRASCOPE_BIN) + " --attach " + sock +
                   " --cmd detach > /dev/null 2>&1");
    }
    ASSERT_EQ(rc, 0) << readFile(log);

    // The session transcript shows the full protocol exchange.
    const std::string session = readFile(log);
    EXPECT_NE(session.find("\"event\": \"watchpoint\""),
              std::string::npos)
        << session;
    EXPECT_NE(session.find("\"event\": \"finished\""), std::string::npos);
    EXPECT_NE(session.find("\"switch\""), std::string::npos);

    ASSERT_TRUE(awaitFile(attached_json, 30000))
        << "attached run never wrote its stats";
    ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) + common +
                         plain_json + " > /dev/null 2>&1"),
              0);
    const std::string plain = readFile(plain_json);
    ASSERT_FALSE(plain.empty());
    EXPECT_EQ(readFile(attached_json), plain)
        << "inspection perturbed the run";

    std::remove(attached_json.c_str());
    std::remove(plain_json.c_str());
    std::remove(log.c_str());
}

TEST(UltrascopeTest, ProfReportRendersAttribution)
{
    const std::string prof = tmpPath("prof.json");
    const std::string report = tmpPath("prof_report.txt");
    ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) +
                         " net --ports 64 --k 2 --rate 0.15 --hot 0.05"
                         " --cycles 1500 --threads 2 --prof-json " +
                         prof + " > /dev/null 2>&1"),
              0);
    ASSERT_FALSE(readFile(prof).empty());

    ASSERT_EQ(runCommand(std::string(ULTRASCOPE_BIN) + " --prof " +
                         prof + " > " + report + " 2>&1"),
              0);
    const std::string text = readFile(report);
    EXPECT_NE(text.find("ultra.prof.v1"), std::string::npos) << text;
    EXPECT_NE(text.find("speedup-loss attribution"), std::string::npos);
    EXPECT_NE(text.find("barrier wait"), std::string::npos);
    EXPECT_NE(text.find("phase"), std::string::npos);
    EXPECT_NE(text.find("busiest units"), std::string::npos);
    std::remove(prof.c_str());
    std::remove(report.c_str());
}

TEST(UltrascopeTest, ProfModeRejectsNonProfInput)
{
    // A trace-event file is valid JSON but not a prof report: the
    // schema gate must refuse it rather than render garbage.
    const std::string trace = tmpPath("notprof.json");
    std::ofstream(trace) << "{\"traceEvents\": []}\n";
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) + " --prof " +
                         trace + " > /dev/null 2>&1"),
              2);
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) +
                         " --prof /no/such/prof.json > /dev/null 2>&1"),
              2);
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) +
                         " --prof > /dev/null 2>&1"),
              2);
    std::remove(trace.c_str());
}

TEST(UltrascopeTest, WatchModeFollowsRunToCompletion)
{
    const std::string sock = tmpPath("watch.sock");
    const std::string log = tmpPath("watch.log");
    ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) +
                         " net --ports 64 --k 2 --rate 0.1"
                         " --cycles 400 --inspect " +
                         sock + " > /dev/null 2>&1 &"),
              0);
    ASSERT_TRUE(awaitPath(sock, 15000)) << "inspect socket never bound";

    // No scripted actions: resume and watch status until finished.
    const int rc = runCommand(std::string(ULTRASCOPE_BIN) +
                              " --attach " + sock + " --watch 0.2 > " +
                              log + " 2>&1");
    if (rc != 0) {
        runCommand(std::string(ULTRASCOPE_BIN) + " --attach " + sock +
                   " --cmd detach > /dev/null 2>&1");
    }
    EXPECT_EQ(rc, 0) << readFile(log);
    EXPECT_NE(readFile(log).find("\"event\": \"finished\""),
              std::string::npos);
    std::remove(log.c_str());
}

} // namespace
