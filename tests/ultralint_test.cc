/**
 * @file
 * Regression tests for tools/ultralint -- the static phase-discipline
 * and determinism analyzer.  Runs the real binary as a subprocess
 * against fixture sources, each seeding exactly one violation of one
 * rule ID, and asserts *byte-exact* golden diagnostics plus exit
 * codes.  The goldens are deliberately brittle: diagnostic text is
 * part of the tool's contract (CI diffs depend on it being stable).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>

#ifndef ULTRALINT_BIN
#error "build must define ULTRALINT_BIN (see tests/CMakeLists.txt)"
#endif
#ifndef ULTRALINT_FIXTURE_DIR
#error "build must define ULTRALINT_FIXTURE_DIR"
#endif
#ifndef ULTRALINT_SOURCE_ROOT
#error "build must define ULTRALINT_SOURCE_ROOT"
#endif

namespace
{

struct RunResult
{
    int exitCode = -1;
    std::string output;
};

/** Run ultralint with @p args from the fixture directory, capturing
 *  stdout+stderr. */
RunResult
runLint(const std::string &args)
{
    const std::string cmd = std::string("cd ") + ULTRALINT_FIXTURE_DIR +
                            " && " + ULTRALINT_BIN + " " + args + " 2>&1";
    RunResult res;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return res;
    char buf[4096];
    std::size_t n = 0;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0)
        res.output.append(buf, n);
    const int rc = pclose(pipe);
    res.exitCode = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return res;
}

/** Expect one fixture to yield exactly one golden diagnostic line. */
void
expectSingleDiag(const std::string &fixture, const std::string &golden)
{
    const RunResult res = runLint(fixture);
    EXPECT_EQ(res.exitCode, 1) << res.output;
    EXPECT_EQ(res.output, golden + "\nultralint: 1 diagnostic\n");
}

TEST(UltralintTest, Cov001MissingAnnotation)
{
    expectSingleDiag(
        "cov001.cc",
        "cov001.cc:9: [UL-COV-001] net-domain class 'OutQueue': public "
        "mutating method 'enqueue' lacks an ULTRA_CHECK annotation (or "
        "an allowlist entry)");
}

TEST(UltralintTest, Cov002LiteralOwnerArgument)
{
    expectSingleDiag(
        "cov002.cc",
        "cov002.cc:12: [UL-COV-002] annotation owner argument '7' is a "
        "literal; bind the component's owner field instead");
}

TEST(UltralintTest, Cov003MissingDirectInclude)
{
    expectSingleDiag(
        "cov003.cc",
        "cov003.cc:13: [UL-COV-003] ULTRA_CHECK annotation used but "
        "\"check/phase_check.h\" is not included directly");
}

TEST(UltralintTest, Phase001ComputeEntryReachesCommitOnly)
{
    expectSingleDiag(
        "phase001.cc",
        "phase001.cc:9: [UL-PHASE-001] compute-phase entry "
        "'Network::arrivalPhaseUnit' reaches commit-only "
        "'Network::publishStats' via: Network::arrivalPhaseUnit -> "
        "Network::flushHelper -> Network::publishStats");
}

TEST(UltralintTest, Det001UnorderedIteration)
{
    expectSingleDiag(
        "det001.cc",
        "det001.cc:13: [UL-DET-001] iteration order of 'cells' "
        "(std::unordered_*) is nondeterministic; iterate a sorted view "
        "or use an ordered container");
}

TEST(UltralintTest, Det002RawEntropy)
{
    expectSingleDiag(
        "det002.cc",
        "det002.cc:8: [UL-DET-002] nondeterminism source 'rand' outside "
        "common/rng; derive from the seeded ultra::Rng streams instead");
}

TEST(UltralintTest, Det003ThreadLocal)
{
    expectSingleDiag(
        "det003.cc",
        "det003.cc:4: [UL-DET-003] 'thread_local' state in simulation "
        "code is thread-count-dependent; keep per-shard state in the "
        "shard plan");
}

TEST(UltralintTest, Det004PointerSortKey)
{
    expectSingleDiag(
        "det004.cc",
        "det004.cc:18: [UL-DET-004] sorting pointer elements of 'hot' "
        "without a comparator orders by address; sort a stable key "
        "instead");
}

TEST(UltralintTest, Det005SingleKeyComparator)
{
    expectSingleDiag(
        "det005.cc",
        "det005.cc:16: [UL-DET-005] std::sort with a single-key "
        "comparator: tie order falls to the library; use "
        "std::stable_sort or add a total-order tie-break");
}

TEST(UltralintTest, Det006AtomicFloatReduction)
{
    expectSingleDiag(
        "det006.cc",
        "det006.cc:6: [UL-DET-006] atomic floating-point accumulation "
        "is order-dependent; stage per-shard partials and fold them in "
        "unit order");
}

TEST(UltralintTest, Det007WallClock)
{
    // One diagnostic even though std::chrono::steady_clock carries two
    // trigger tokens on the line (per-line dedupe).
    expectSingleDiag(
        "det007.cc",
        "det007.cc:8: [UL-DET-007] wall-clock source 'chrono' outside "
        "src/prof, src/obs or bench; route host timing through "
        "prof::Profiler::nowNs()");
}

TEST(UltralintTest, CleanFixturePasses)
{
    const RunResult res = runLint("clean.cc");
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_EQ(res.output, "ultralint: clean (1 files)\n");
}

TEST(UltralintTest, InlineAllowSuppresses)
{
    // allowed.cc seeds the det003 violation but carries an
    // `ultralint: allow(UL-DET-003)` marker above it.
    const RunResult res = runLint("allowed.cc");
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_EQ(res.output, "ultralint: clean (1 files)\n");
}

TEST(UltralintTest, AllowlistFileSuppresses)
{
    const std::string allow = std::string(ULTRALINT_FIXTURE_DIR) +
                              "/tmp_allow.txt";
    {
        std::ofstream out(allow);
        out << "UL-COV-001 OutQueue::enqueue fixture exception for the "
               "suppression test\n";
    }
    const RunResult res = runLint("--allowlist tmp_allow.txt cov001.cc");
    std::remove(allow.c_str());
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_EQ(res.output, "ultralint: clean (1 files)\n");
}

TEST(UltralintTest, MalformedAllowlistIsUsageError)
{
    const std::string allow = std::string(ULTRALINT_FIXTURE_DIR) +
                              "/tmp_allow_bad.txt";
    {
        std::ofstream out(allow);
        out << "UL-COV-001 OutQueue::enqueue\n"; // missing reason
    }
    const RunResult res =
        runLint("--allowlist tmp_allow_bad.txt cov001.cc");
    std::remove(allow.c_str());
    EXPECT_EQ(res.exitCode, 2) << res.output;
}

TEST(UltralintTest, NoInputIsUsageError)
{
    EXPECT_EQ(runLint("").exitCode, 2);
}

TEST(UltralintTest, DiagnosticsAreByteStable)
{
    // Scanning every fixture at once must produce identical bytes on
    // repeated runs, file:line sorted across files.
    const std::string all = "allowed.cc clean.cc cov001.cc cov002.cc "
                            "cov003.cc det001.cc det002.cc det003.cc "
                            "det004.cc det005.cc det006.cc det007.cc "
                            "phase001.cc";
    const RunResult a = runLint(all);
    const RunResult b = runLint(all);
    EXPECT_EQ(a.exitCode, 1);
    EXPECT_EQ(a.output, b.output);
    // Sorted: cov001 first, phase001 last among the diagnostics.
    EXPECT_EQ(a.output.find("cov001.cc:9:"), 0u) << a.output;
    EXPECT_NE(a.output.find("\nphase001.cc:9:"), std::string::npos);
    EXPECT_NE(a.output.find("ultralint: 11 diagnostics\n"),
              std::string::npos);
}

TEST(UltralintTest, TreeIsClean)
{
    // The acceptance gate: the simulator tree itself, under the
    // committed allowlist, yields zero diagnostics.
    const RunResult res =
        runLint(std::string("--root ") + ULTRALINT_SOURCE_ROOT +
                " --allowlist " + ULTRALINT_SOURCE_ROOT +
                "/tools/ultralint.allow");
    EXPECT_EQ(res.exitCode, 0) << res.output;
}

TEST(UltralintTest, CoverageReportIsDeterministic)
{
    const std::string rep = std::string(ULTRALINT_FIXTURE_DIR) +
                            "/tmp_report.txt";
    const std::string cmd = std::string("--root ") +
                            ULTRALINT_SOURCE_ROOT + " --allowlist " +
                            ULTRALINT_SOURCE_ROOT +
                            "/tools/ultralint.allow --report " + rep;
    ASSERT_EQ(runLint(cmd).exitCode, 0);
    std::ifstream in(rep);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::remove(rep.c_str());
    // Every net-domain component appears, and the queue's depart-side
    // dequeue is visibly NET_DEQUEUE (not just any annotation).
    for (const char *needle :
         {"class MessagePool", "class OutQueue", "class SystolicQueue",
          "class WaitBuffer", "dequeue: ULTRA_CHECK_NET_DEQUEUE",
          "step: ULTRA_CHECK_COMMIT_ONLY", "diagnostics: 0"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

} // namespace
