/**
 * @file
 * Property tests for Omega-network routing (section 3.1.1, Figure 2):
 * the digit-routing algorithm connects every PE-MM pair, the shuffle
 * is a bijection, and the forward/reverse hops are mutual inverses
 * (the amalgam-address property of section 3.1.2).
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/routing.h"

namespace ultra::net
{
namespace
{

struct TopoParam
{
    std::uint32_t n;
    unsigned k;
};

class OmegaTopologyTest : public ::testing::TestWithParam<TopoParam>
{};

TEST_P(OmegaTopologyTest, ShuffleIsBijectionAndInverse)
{
    const OmegaTopology topo(GetParam().n, GetParam().k);
    std::vector<bool> seen(topo.numPorts(), false);
    for (std::uint32_t line = 0; line < topo.numPorts(); ++line) {
        const std::uint32_t s = topo.shuffle(line);
        ASSERT_LT(s, topo.numPorts());
        ASSERT_FALSE(seen[s]);
        seen[s] = true;
        ASSERT_EQ(topo.unshuffle(s), line);
    }
}

TEST_P(OmegaTopologyTest, EveryPairRoutesToItsMM)
{
    const OmegaTopology topo(GetParam().n, GetParam().k);
    std::vector<std::uint32_t> lines(topo.stages() + 1);
    for (std::uint32_t pe = 0; pe < topo.numPorts(); ++pe) {
        for (std::uint32_t mm = 0; mm < topo.numPorts(); ++mm) {
            topo.tracePath(pe, mm, lines.data());
            ASSERT_EQ(lines[topo.stages()], mm)
                << "PE " << pe << " -> MM " << mm;
        }
    }
}

TEST_P(OmegaTopologyTest, ReverseHopInvertsForwardHop)
{
    const OmegaTopology topo(GetParam().n, GetParam().k);
    std::vector<std::uint32_t> lines(topo.stages() + 1);
    for (std::uint32_t pe = 0; pe < topo.numPorts(); ++pe) {
        for (std::uint32_t mm = 0; mm < topo.numPorts();
             mm += 1 + topo.numPorts() / 16) {
            topo.tracePath(pe, mm, lines.data());
            // Walk the reply backwards: it must retrace the path.
            for (unsigned s = topo.stages(); s-- > 0;) {
                ASSERT_EQ(topo.reverseHop(lines[s + 1], s, pe),
                          lines[s]);
            }
        }
    }
}

TEST_P(OmegaTopologyTest, PathsSharePrefixOnlyThroughSameSwitches)
{
    // Sanity: a message's switch at stage s is determined by its
    // current line, and output lines always lie in [0, n).
    const OmegaTopology topo(GetParam().n, GetParam().k);
    std::vector<std::uint32_t> lines(topo.stages() + 1);
    for (std::uint32_t pe = 0; pe < topo.numPorts();
         pe += 1 + topo.numPorts() / 32) {
        for (std::uint32_t mm = 0; mm < topo.numPorts();
             mm += 1 + topo.numPorts() / 32) {
            topo.tracePath(pe, mm, lines.data());
            for (unsigned s = 0; s <= topo.stages(); ++s)
                ASSERT_LT(lines[s], topo.numPorts());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OmegaTopologyTest,
    ::testing::Values(TopoParam{8, 2}, TopoParam{16, 2}, TopoParam{64, 2},
                      TopoParam{16, 4}, TopoParam{64, 4},
                      TopoParam{256, 4}, TopoParam{64, 8},
                      TopoParam{2, 2}, TopoParam{4, 4}),
    [](const auto &info) {
        return "n" + std::to_string(info.param.n) + "k" +
               std::to_string(info.param.k);
    });

TEST(OmegaTopologyTest, PaperFigure2Geometry)
{
    // Figure 2 is the N=8 network of 2x2 switches: 3 stages of 4.
    const OmegaTopology topo(8, 2);
    EXPECT_EQ(topo.stages(), 3u);
    EXPECT_EQ(topo.switchesPerStage(), 4u);
    // Routing digit at stage j is bit m_{D-1-j} of the destination.
    EXPECT_EQ(topo.routeDigit(0b110, 0), 1u);
    EXPECT_EQ(topo.routeDigit(0b110, 1), 1u);
    EXPECT_EQ(topo.routeDigit(0b110, 2), 0u);
}

TEST(OmegaTopologyTest, Table1Geometry)
{
    // The Table-1 simulation: six stages of 4x4 switches, 4096 ports.
    const OmegaTopology topo(4096, 4);
    EXPECT_EQ(topo.stages(), 6u);
    EXPECT_EQ(topo.switchesPerStage(), 1024u);
}

} // namespace
} // namespace ultra::net
