/**
 * @file
 * Determinism/conservation battery for the sharded network tick
 * (DESIGN.md "Sharding the network tick"):
 *
 *   - the StageColumnPlan partition binds every switch column of every
 *     copy to exactly one unit,
 *   - the PhaseChecker's network compute domain flags cross-shard and
 *     unit-less mutations (driven directly, so it runs in every build),
 *   - per-unit message pools conserve messages and route frees home
 *     under a combining storm distributed over engine shards,
 *   - shardGroupTarget is a pure parallelism-granularity knob: any
 *     group partition yields byte-identical statistics,
 *   - a 200-seed sweep over randomized Table-1-style traffic (rates,
 *     hot-spot fractions, Burroughs-kill episodes) pins --threads
 *     {2,4,8} runs byte-identical to --threads 1, arrival-phase
 *     sharding on and off,
 *   - TRED2 end-to-end reproduces cycles and stats across thread
 *     counts on randomized inputs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/tred2.h"
#include "check/phase_check.h"
#include "core/machine.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "net/traffic.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "par/shard.h"
#include "par/tick_engine.h"

namespace ultra::net
{
namespace
{

using check::PhaseChecker;
using check::Violation;

// ------------------------------------------------------------------
// Partition sanity
// ------------------------------------------------------------------

TEST(NetShardTest, StageColumnPlanBindsEveryColumnOnce)
{
    NetSimConfig cfg;
    cfg.numPorts = 64;
    cfg.k = 2;
    cfg.d = 2;
    cfg.shardGroupTarget = 5; // deliberately not a divisor
    mem::MemoryConfig mc;
    mc.numModules = cfg.numPorts;
    mc.wordsPerModule = 64;
    mem::MemorySystem memory(mc);
    Network network(cfg, memory);

    const par::StageColumnPlan &plan = network.shardPlan();
    const unsigned stages = network.topology().stages();
    const std::uint32_t columns = network.topology().switchesPerStage();
    ASSERT_EQ(plan.units(),
              std::size_t{cfg.d} * stages * plan.groupsPerStage());

    std::vector<unsigned> hits(plan.units(), 0);
    for (unsigned c = 0; c < cfg.d; ++c) {
        for (unsigned s = 0; s < stages; ++s) {
            for (std::uint32_t col = 0; col < columns; ++col) {
                const std::size_t u = plan.unitOf(c, s, col);
                ASSERT_LT(u, plan.units());
                EXPECT_EQ(plan.copyOf(u), c);
                EXPECT_EQ(plan.stageOf(u), s);
                const par::ShardRange r = plan.columnsOf(u);
                EXPECT_GE(col, r.begin);
                EXPECT_LT(col, r.end);
                ++hits[u];
            }
        }
    }
    // Every unit owns at least one column and the column counts add up.
    std::size_t total = 0;
    for (std::size_t u = 0; u < plan.units(); ++u) {
        EXPECT_GT(hits[u], 0u) << "empty unit " << u;
        const par::ShardRange r = plan.columnsOf(u);
        EXPECT_EQ(hits[u], r.end - r.begin);
        total += hits[u];
    }
    EXPECT_EQ(total, std::size_t{cfg.d} * stages * columns);
}

// ------------------------------------------------------------------
// PhaseChecker network compute domain (runs in every build)
// ------------------------------------------------------------------

/** RAII reset covering the network domain as well as the PE domain. */
struct NetCheckerGuard
{
    NetCheckerGuard()
    {
        PhaseChecker::instance().clear();
        PhaseChecker::instance().setFailFast(false);
    }
    ~NetCheckerGuard()
    {
        PhaseChecker::instance().endCompute();
        PhaseChecker::instance().endNetCompute();
        PhaseChecker::unbindShard();
        PhaseChecker::instance().clear();
        PhaseChecker::instance().setOwners(1, {});
        PhaseChecker::instance().setNetOwners(1, {});
    }
};

TEST(NetShardCheckTest, OwningShardMayMutateOthersMayNot)
{
    NetCheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setNetOwners(2, {0, 0, 1, 1});

    // The sequential phase may touch any unit.
    checker.onNetMutate("net.out_queue.enqueue", 3);
    EXPECT_EQ(checker.violationCount(), 0u);

    checker.beginNetCompute(5);
    PhaseChecker::bindShard(0);
    checker.onNetMutate("net.out_queue.enqueue", 1); // own unit: legal
    EXPECT_EQ(checker.violationCount(), 0u);

    checker.onNetMutate("net.out_queue.dequeue", 3); // shard 1's unit
    ASSERT_EQ(checker.violationCount(), 1u);
    const Violation v = checker.violations().front();
    EXPECT_EQ(v.kind, Violation::Kind::CrossShardWrite);
    EXPECT_EQ(v.component, "net.out_queue.dequeue");
    EXPECT_EQ(v.owner, 3u);
    EXPECT_EQ(v.ownerShard, 1u);
    EXPECT_EQ(v.actingShard, 0);
    EXPECT_EQ(v.cycle, 5u);
}

TEST(NetShardCheckTest, UnitLessStateIsUntouchableDuringNetCompute)
{
    NetCheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setNetOwners(2, {0, 1});

    checker.beginNetCompute(9);
    PhaseChecker::bindShard(1);
    // An MNI pending queue keeps the default ~0 owner: no shard may
    // ever touch it during the network compute phase.
    checker.onNetMutate("net.out_queue.enqueue", ~std::uint64_t{0});
    ASSERT_EQ(checker.violationCount(), 1u);
    EXPECT_EQ(checker.violations().front().kind,
              Violation::Kind::CrossShardWrite);
}

TEST(NetShardCheckTest, NetworkIsFrozenDuringPeCompute)
{
    NetCheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 1});
    checker.setNetOwners(2, {0, 1});

    checker.beginCompute(11);
    PhaseChecker::bindShard(0);
    // Even the unit's own would-be shard may not mutate network state
    // while PE coroutines run.
    checker.onNetMutate("net.wait_buffer.insert", 0);
    PhaseChecker::unbindShard();
    checker.endCompute();

    ASSERT_EQ(checker.violationCount(), 1u);
    EXPECT_EQ(checker.violations().front().kind,
              Violation::Kind::CommitOnlyInCompute);
    EXPECT_EQ(checker.violations().front().cycle, 11u);
}

TEST(NetShardCheckTest, CommitOnlySitesFlagDuringNetCompute)
{
    NetCheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setNetOwners(2, {0, 1});

    checker.beginNetCompute(3);
    PhaseChecker::bindShard(0);
    checker.onCommitOnly("net.network.inject");
    ASSERT_EQ(checker.violationCount(), 1u);
    EXPECT_EQ(checker.violations().front().kind,
              Violation::Kind::CommitOnlyInCompute);
}

// ------------------------------------------------------------------
// Pool isolation and conservation under the sharded tick
// ------------------------------------------------------------------

TEST(NetShardTest, CombiningStormConservesWithShardedArrivals)
{
    NetSimConfig cfg;
    cfg.numPorts = 64;
    cfg.k = 2;
    cfg.combinePolicy = CombinePolicy::Full;
    cfg.shardGroupTarget = 4;
    mem::MemoryConfig mc;
    mc.numModules = cfg.numPorts;
    mc.wordsPerModule = 256;
    mem::MemorySystem memory(mc);
    Network network(cfg, memory);
    par::TickEngine engine(4);
    network.setTickEngine(&engine);
#ifdef ULTRA_CHECK_ENABLED
    PhaseChecker::instance().clear();
#endif

    std::uint64_t delivered = 0;
    network.setDeliverCallback(
        [&](PEId, std::uint64_t, Word) { ++delivered; });

    // Hot-spot fetch-and-add storm: combining moves messages between
    // stages constantly, so combined-away messages die in units far
    // from the pool that allocated them -- exactly the cross-unit free
    // traffic the per-unit staging must route home.
    std::uint64_t injected = 0;
    Word expect = 0;
    for (int burst = 0; burst < 6; ++burst) {
        for (PEId pe = 0; pe < cfg.numPorts; ++pe) {
            const Word inc = 1 + (pe % 7);
            while (!network.tryInject(pe, Op::FetchAdd, 5, inc, pe))
                network.tick();
            ++injected;
            expect += inc;
        }
        ASSERT_TRUE(network.drain(200000)) << "burst " << burst;
        ASSERT_EQ(network.inFlight(), 0u)
            << "a message leaked (or was freed into a foreign pool, "
               "corrupting liveCount) in burst "
            << burst;
    }
    EXPECT_EQ(delivered, injected);
    EXPECT_EQ(memory.peek(5), expect);
    EXPECT_GT(network.stats().combined, 0u);
    EXPECT_EQ(network.stats().combined, network.stats().decombined);
#ifdef ULTRA_CHECK_ENABLED
    const auto violations = PhaseChecker::instance().violations();
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations, first: "
        << violations.front().describe();
#endif
}

// ------------------------------------------------------------------
// Group partition is a pure parallelism knob
// ------------------------------------------------------------------

namespace
{

/** Open-loop traffic run; returns the full registry JSON. */
std::string
runTraffic(const NetSimConfig &ncfg, const TrafficConfig &tcfg,
           unsigned threads, bool sharded, Cycle cycles)
{
    mem::MemoryConfig mc;
    mc.numModules = ncfg.numPorts;
    mc.wordsPerModule = 1 << 10;
    mc.accessTime = ncfg.mmAccessTime;
    mem::MemorySystem memory(mc);
    Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), true);
    net::PniConfig pcfg;
    pcfg.maxOutstanding = 8;
    PniArray pni(pcfg, network, hash);
    TrafficGenerator traffic(tcfg, pni, network);

    obs::Registry registry;
    network.registerStats(registry, "net");
    pni.registerStats(registry, "pni");
    memory.registerStats(registry, "mem");

    par::TickEngine engine(threads);
    if (sharded)
        network.setTickEngine(&engine);

    for (Cycle c = 0; c < cycles; ++c) {
        traffic.tickRange(0, static_cast<PEId>(tcfg.activePes));
        pni.tick();
        network.tick();
    }
    network.drain(5000);
    return registry.jsonDump(network.now());
}

} // namespace

TEST(NetShardTest, GroupTargetIsAPureParallelismKnob)
{
    NetSimConfig ncfg;
    ncfg.numPorts = 64;
    ncfg.k = 4;
    ncfg.sizing = PacketSizing::ByContent;
    ncfg.dataPackets = 3;
    ncfg.combinePolicy = CombinePolicy::Full;
    TrafficConfig tcfg;
    tcfg.activePes = ncfg.numPorts;
    tcfg.rate = 0.25;
    tcfg.hotFraction = 0.2;
    tcfg.hotAddr = 9;
    tcfg.addrSpaceWords = 1 << 10;
    tcfg.seed = 7;

    ncfg.shardGroupTarget = 1; // one unit per (copy, stage)
    const std::string whole = runTraffic(ncfg, tcfg, 4, true, 400);
    ASSERT_FALSE(whole.empty());
    ncfg.shardGroupTarget = 3; // uneven split
    EXPECT_EQ(whole, runTraffic(ncfg, tcfg, 4, true, 400));
    ncfg.shardGroupTarget = 64; // clamped to one column per unit
    EXPECT_EQ(whole, runTraffic(ncfg, tcfg, 4, true, 400));
}

// ------------------------------------------------------------------
// 200-seed randomized thread-identity sweep
// ------------------------------------------------------------------

TEST(NetShardTest, TwoHundredSeedThreadIdentitySweep)
{
    // Table-1-style geometry (k=4 switches, by-content sizing,
    // 3-packet data messages, 15-packet queues) scaled to 64 ports so
    // 200 seeds stay fast.  Each seed randomizes the departure sets:
    // offered load, hot-spot fraction, combining policy, and an
    // occasional Burroughs-kill episode.  Every run must be
    // byte-identical across thread counts; seeds rotate through the
    // alternate counts {2, 4, 8} (and every 4th seed also pins the
    // serial arrival sweep against the sharded one).
    const unsigned alts[] = {2, 4, 8};
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        NetSimConfig ncfg;
        ncfg.numPorts = 64;
        ncfg.k = 4;
        ncfg.sizing = PacketSizing::ByContent;
        ncfg.dataPackets = 3;
        ncfg.queueCapacityPackets = 15;
        ncfg.mmPendingCapacityPackets = 15;
        ncfg.combinePolicy = seed % 3 == 2 ? CombinePolicy::Homogeneous
                                           : CombinePolicy::Full;
        if (seed % 11 == 10) {
            ncfg.burroughsKill = true; // kill staging under fire
            ncfg.combinePolicy = CombinePolicy::None;
        }
        TrafficConfig tcfg;
        tcfg.activePes = ncfg.numPorts;
        tcfg.rate = 0.05 + 0.05 * static_cast<double>(seed % 7);
        tcfg.hotFraction = 0.1 * static_cast<double>(seed % 5);
        tcfg.hotAddr = 13;
        tcfg.addrSpaceWords = 1 << 10;
        tcfg.seed = seed;

        const std::string base = runTraffic(ncfg, tcfg, 1, true, 60);
        ASSERT_FALSE(base.empty());
        const unsigned alt = alts[seed % 3];
        ASSERT_EQ(base, runTraffic(ncfg, tcfg, alt, true, 60))
            << "seed " << seed << ": --threads " << alt
            << " diverged from --threads 1";
        if (seed % 4 == 0) {
            ASSERT_EQ(base, runTraffic(ncfg, tcfg, alt, false, 60))
                << "seed " << seed
                << ": serial arrival sweep diverged from sharded";
        }
    }
}

// ------------------------------------------------------------------
// Slab-pool accounting: every packet dies in its home slab
// ------------------------------------------------------------------

namespace
{

/** Drive @p network through a traffic episode and then audit every
 *  unit's slab pool: live + free must equal capacity (no double free,
 *  no foreign-slab free corrupted the accounting) and nothing may be
 *  live once the network drained. */
void
auditPools(const Network &network, const char *what)
{
    std::size_t live = 0;
    const auto audits = network.poolAudits();
    ASSERT_FALSE(audits.empty());
    for (std::size_t u = 0; u < audits.size(); ++u) {
        const MessagePool::Audit &a = audits[u];
        EXPECT_TRUE(a.consistent())
            << what << ": unit " << u << " slab accounting broke ("
            << a.live << " live + " << a.freeSlots << " free != "
            << a.capacity << " capacity)";
        live += a.live;
    }
    EXPECT_EQ(live, 0u)
        << what << ": messages leaked across unit pools at teardown";
}

} // namespace

TEST(NetShardTest, SlabPoolsConserveUnderCombiningStorm)
{
    // Combined-away messages die in units far from the slab that
    // allocated them; the home-slab discipline must route every free
    // back (MessagePool::free asserts the pool identity, poolAudits
    // exposes the ledger).  Exercised at 1, 2 and 8 threads with the
    // departure window both on and off.
    for (const unsigned threads : {1u, 2u, 8u}) {
        for (const bool window : {true, false}) {
            NetSimConfig cfg;
            cfg.numPorts = 64;
            cfg.k = 2;
            cfg.combinePolicy = CombinePolicy::Full;
            cfg.shardGroupTarget = 4;
            cfg.parallelDeparture = window;
            mem::MemoryConfig mc;
            mc.numModules = cfg.numPorts;
            mc.wordsPerModule = 256;
            mem::MemorySystem memory(mc);
            Network network(cfg, memory);
            par::TickEngine engine(threads);
            network.setTickEngine(&engine);

            for (int burst = 0; burst < 3; ++burst) {
                for (PEId pe = 0; pe < cfg.numPorts; ++pe) {
                    while (!network.tryInject(pe, Op::FetchAdd, 5, 1,
                                              pe)) {
                        network.tick();
                    }
                }
                ASSERT_TRUE(network.drain(200000));
            }
            EXPECT_GT(network.stats().combined, 0u);
            auditPools(network, window ? "storm/window"
                                       : "storm/sweep");
        }
    }
}

TEST(NetShardTest, SlabPoolsConserveUnderBurroughsKills)
{
    // Burroughs kill-on-conflict frees messages from both the staged
    // arrival path and the sequential MNI handoff; every kill must
    // land in its home slab at 1, 2 and 8 threads.
    for (const unsigned threads : {1u, 2u, 8u}) {
        NetSimConfig cfg;
        cfg.numPorts = 64;
        cfg.k = 2;
        cfg.burroughsKill = true;
        cfg.combinePolicy = CombinePolicy::None;
        cfg.shardGroupTarget = 4;
        mem::MemoryConfig mc;
        mc.numModules = cfg.numPorts;
        mc.wordsPerModule = 256;
        mem::MemorySystem memory(mc);
        Network network(cfg, memory);
        par::TickEngine engine(threads);
        network.setTickEngine(&engine);

        std::uint64_t attempted = 0;
        for (int burst = 0; burst < 4; ++burst) {
            for (PEId pe = 0; pe < cfg.numPorts; ++pe) {
                // Everyone storms the same module: plenty of kills.
                if (network.tryInject(pe, Op::Load, 7, 0, pe))
                    ++attempted;
            }
            network.tick();
        }
        ASSERT_TRUE(network.drain(200000));
        ASSERT_GT(attempted, 0u);
        EXPECT_GT(network.stats().killed, 0u);
        auditPools(network, "burroughs");
    }
}

// ------------------------------------------------------------------
// 200-seed serial-vs-parallel-departure identity sweep
// ------------------------------------------------------------------

TEST(NetShardTest, TwoHundredSeedDepartureWindowIdentitySweep)
{
    // The receiver-pull departure window must be byte-identical to the
    // legacy sender sweep for every seed, thread count and traffic
    // shape (mirrors the arrival-phase sweep above): randomized load,
    // hot-spot fraction, combining policy, and Burroughs-kill
    // episodes.  The baseline runs the legacy sweep single-threaded;
    // each seed pins the window against it at a rotating thread count.
    const unsigned alts[] = {1, 2, 8};
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        NetSimConfig ncfg;
        ncfg.numPorts = 64;
        ncfg.k = 4;
        ncfg.sizing = PacketSizing::ByContent;
        ncfg.dataPackets = 3;
        ncfg.queueCapacityPackets = 15;
        ncfg.mmPendingCapacityPackets = 15;
        ncfg.combinePolicy = seed % 3 == 2 ? CombinePolicy::Homogeneous
                                           : CombinePolicy::Full;
        if (seed % 11 == 10) {
            ncfg.burroughsKill = true;
            ncfg.combinePolicy = CombinePolicy::None;
        }
        TrafficConfig tcfg;
        tcfg.activePes = ncfg.numPorts;
        tcfg.rate = 0.05 + 0.05 * static_cast<double>(seed % 7);
        tcfg.hotFraction = 0.1 * static_cast<double>(seed % 5);
        tcfg.hotAddr = 13;
        tcfg.addrSpaceWords = 1 << 10;
        tcfg.seed = seed;

        ncfg.parallelDeparture = false;
        const std::string sweep = runTraffic(ncfg, tcfg, 1, true, 60);
        ASSERT_FALSE(sweep.empty());
        ncfg.parallelDeparture = true;
        const unsigned alt = alts[seed % 3];
        ASSERT_EQ(sweep, runTraffic(ncfg, tcfg, alt, true, 60))
            << "seed " << seed << ": departure window at --threads "
            << alt << " diverged from the serial sender sweep";
    }
}

TEST(NetShardTest, DepartureWindowKeepsLatencyInvariantOnHotspot)
{
    // Hot-spot combining traffic with the full latency observatory
    // attached: the per-stage depart stamps staged by the window must
    // still satisfy the decomposition invariant (lat.violations == 0)
    // and fold to byte-identical aggregates in both departure modes.
    auto run = [](bool window, unsigned threads) {
        NetSimConfig ncfg;
        ncfg.numPorts = 64;
        ncfg.k = 2;
        ncfg.combinePolicy = CombinePolicy::Full;
        ncfg.parallelDeparture = window;
        mem::MemoryConfig mc;
        mc.numModules = ncfg.numPorts;
        mc.wordsPerModule = 1 << 10;
        mc.accessTime = ncfg.mmAccessTime;
        mem::MemorySystem memory(mc);
        Network network(ncfg, memory);
        mem::AddressHash hash(log2Exact(memory.totalWords()), true);
        PniConfig pcfg;
        pcfg.maxOutstanding = 8;
        PniArray pni(pcfg, network, hash);
        obs::LatencyShape shape;
        shape.stages = network.topology().stages();
        shape.switchesPerStage = network.topology().switchesPerStage();
        shape.mmAccessTime = ncfg.mmAccessTime;
        obs::LatencyObservatory latency(shape);
        network.setLatencyObservatory(&latency);

        TrafficConfig tcfg;
        tcfg.activePes = ncfg.numPorts;
        tcfg.rate = 0.2;
        tcfg.hotFraction = 0.5;
        tcfg.hotAddr = 21;
        tcfg.addrSpaceWords = 1 << 10;
        tcfg.seed = 77;
        TrafficGenerator traffic(tcfg, pni, network);

        par::TickEngine engine(threads);
        network.setTickEngine(&engine);
        for (Cycle c = 0; c < 600; ++c) {
            traffic.tickRange(0, static_cast<PEId>(tcfg.activePes));
            pni.tick();
            network.tick();
        }
        network.drain(5000);
        EXPECT_EQ(latency.violations(), 0u)
            << (window ? "window" : "sweep") << " @" << threads
            << " threads broke the decomposition invariant";
        EXPECT_GT(latency.delivered(), 0u);
        EXPECT_GT(latency.combinedDelivered(), 0u);
        return latency.summaryJson();
    };
    const std::string sweep = run(false, 1);
    EXPECT_EQ(sweep, run(true, 1));
    EXPECT_EQ(sweep, run(true, 8));
}

// ------------------------------------------------------------------
// TRED2 end-to-end across thread counts
// ------------------------------------------------------------------

TEST(NetShardTest, Tred2ReproducesAcrossThreadCounts)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const std::size_t n = 12;
        const auto matrix = apps::randomSymmetric(n, seed);

        auto run = [&](unsigned threads) {
            core::MachineConfig cfg = core::MachineConfig::small(64, 2);
            cfg.threads = threads;
            core::Machine machine(cfg);
            const auto result =
                apps::tred2Parallel(machine, 8, matrix, n);
            std::string out = std::to_string(result.cycles) + "|" +
                              machine.statsJson();
            for (double d : result.tri.diag)
                out += "," + std::to_string(d);
            return out;
        };
        const std::string solo = run(1);
        EXPECT_EQ(solo, run(4)) << "seed " << seed;
    }
}

} // namespace
} // namespace ultra::net
