/**
 * @file
 * Tests of the packet-lifecycle latency observatory (obs/latency.h),
 * the Kruskal-Snir model cross-check (obs/model_check.h), and their
 * CLI/machine integration properties:
 *
 *   - the decomposition invariant (per-stage waits + wire hops + pipe
 *     fill + memory service == observed round trip) holds for every
 *     delivered record across uniform, hot-spot/combining, Burroughs
 *     and app workloads;
 *   - latency aggregates are bit-identical for --threads {1, 2, 8};
 *   - registering lat.* / model.* stats is opt-in, so default stats
 *     output is byte-identical to an instrumentation-free build;
 *   - Histogram::merge, drift arithmetic, and the tolerance gate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analytic/config.h"
#include "analytic/drift.h"
#include "analytic/queueing.h"
#include "apps/tred2.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/machine.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "net/traffic.h"
#include "obs/latency.h"
#include "obs/model_check.h"
#include "obs/registry.h"

namespace
{

using namespace ultra;

/** A network + observatory rig driven by synthetic traffic. */
struct LatRig
{
    explicit LatRig(const net::NetSimConfig &ncfg,
                    net::PniConfig pcfg = {})
        : memory(memCfg(ncfg)), network(ncfg, memory),
          hash(log2Exact(memory.totalWords()), true),
          pni(pcfg, network, hash),
          latency(shapeFor(network, ncfg))
    {
        network.setLatencyObservatory(&latency);
    }

    static mem::MemoryConfig
    memCfg(const net::NetSimConfig &ncfg)
    {
        mem::MemoryConfig mc;
        mc.numModules = ncfg.numPorts;
        mc.wordsPerModule = 1 << 12;
        mc.accessTime = ncfg.mmAccessTime;
        return mc;
    }

    static obs::LatencyShape
    shapeFor(const net::Network &network, const net::NetSimConfig &ncfg)
    {
        obs::LatencyShape shape;
        shape.stages = network.topology().stages();
        shape.switchesPerStage = network.topology().switchesPerStage();
        shape.mmAccessTime = ncfg.mmAccessTime;
        return shape;
    }

    mem::MemorySystem memory;
    net::Network network;
    mem::AddressHash hash;
    net::PniArray pni;
    obs::LatencyObservatory latency;
};

net::NetSimConfig
smallNet(std::uint32_t ports = 64, unsigned k = 2)
{
    net::NetSimConfig cfg;
    cfg.numPorts = ports;
    cfg.k = k;
    cfg.m = k;
    cfg.combinePolicy = net::CombinePolicy::Full;
    return cfg;
}

void
driveTraffic(LatRig &rig, const net::TrafficConfig &tcfg, Cycle cycles)
{
    net::TrafficGenerator gen(tcfg, rig.pni, rig.network);
    gen.run(cycles);
    rig.network.drain(50'000);
}

TEST(LatencyTest, UniformTrafficSatisfiesDecomposition)
{
    LatRig rig(smallNet());
    net::TrafficConfig tcfg;
    tcfg.activePes = 64;
    tcfg.rate = 0.15;
    tcfg.addrSpaceWords = 1 << 14;
    driveTraffic(rig, tcfg, 3000);

    EXPECT_GT(rig.latency.delivered(), 1000u);
    EXPECT_EQ(rig.latency.violations(), 0u)
        << "per-stage components must sum to the observed round trip "
           "for every delivered request";
    EXPECT_EQ(rig.latency.liveRecords(), 0u) << "drained network";
    EXPECT_EQ(rig.latency.endToEnd().count(), rig.latency.delivered());
}

TEST(LatencyTest, HotSpotCombiningSatisfiesDecomposition)
{
    // The Table-1-style hot-spot workload: deep multi-level combining
    // trees, wait-buffer residence, fission chains.
    LatRig rig(smallNet());
    net::TrafficConfig tcfg;
    tcfg.activePes = 64;
    tcfg.rate = 0.2;
    tcfg.hotFraction = 0.9;
    tcfg.hotAddr = 13;
    tcfg.addrSpaceWords = 1 << 14;
    driveTraffic(rig, tcfg, 4000);

    EXPECT_GT(rig.latency.combinedDelivered(), 100u)
        << "the workload must actually exercise combining";
    EXPECT_EQ(rig.latency.violations(), 0u);
    EXPECT_GT(rig.latency.mmCyclesSaved(), 0u);
    // Every combined-away delivered record passed through a wait
    // buffer, so residence times were observed.
    EXPECT_EQ(rig.latency.wbWait().count(),
              rig.latency.combinedDelivered());
    // Fan-in histogram counts one entry per MM service.
    EXPECT_GT(rig.latency.fanInHist().percentile(0.95), 1u);
}

TEST(LatencyTest, BurroughsKillsCloseRecords)
{
    net::NetSimConfig ncfg = smallNet();
    ncfg.burroughsKill = true;
    ncfg.combinePolicy = net::CombinePolicy::None;
    LatRig rig(ncfg);
    net::TrafficConfig tcfg;
    tcfg.activePes = 64;
    tcfg.rate = 0.2;
    tcfg.addrSpaceWords = 1 << 14;
    driveTraffic(rig, tcfg, 3000);

    EXPECT_GT(rig.latency.killed(), 0u)
        << "kill-on-conflict at this load must kill something";
    EXPECT_EQ(rig.latency.violations(), 0u)
        << "delivered Burroughs requests obey the same decomposition";
    EXPECT_EQ(rig.latency.liveRecords(), 0u)
        << "kills and deliveries must recycle every record";
}

TEST(LatencyTest, HeatmapCountsStageVisits)
{
    LatRig rig(smallNet());
    net::TrafficConfig tcfg;
    tcfg.activePes = 64;
    tcfg.rate = 0.1;
    tcfg.addrSpaceWords = 1 << 14;
    driveTraffic(rig, tcfg, 2000);

    const unsigned stages = rig.network.topology().stages();
    std::uint64_t fwd_visits = 0;
    for (unsigned s = 0; s < stages; ++s) {
        for (std::uint32_t sw = 0;
             sw < rig.network.topology().switchesPerStage(); ++sw) {
            fwd_visits += rig.latency.heatCell(true, s, sw).visits;
        }
    }
    // Every non-combined delivered request crossed every stage once.
    EXPECT_GE(fwd_visits, rig.latency.delivered());
    const std::string csv = rig.latency.heatmapCsv();
    EXPECT_NE(csv.find("direction,stage,switch,visits,wait_cycles,"
                       "mean_wait,combines"),
              std::string::npos);
    EXPECT_NE(csv.find("fwd,0,0,"), std::string::npos);
    EXPECT_NE(csv.find("rev,0,0,"), std::string::npos);
}

TEST(LatencyTest, MachineAppWorkloadSatisfiesDecomposition)
{
    core::MachineConfig cfg = core::MachineConfig::small(16, 2);
    core::Machine machine(cfg);
    machine.enableLatency();
    (void)apps::tred2Parallel(machine, 8, apps::randomSymmetric(10, 1),
                              10);
    ASSERT_NE(machine.latency(), nullptr);
    EXPECT_GT(machine.latency()->delivered(), 100u);
    EXPECT_EQ(machine.latency()->violations(), 0u);
    const std::string json = machine.latencyJson();
    EXPECT_NE(json.find("\"pe_wait\""), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
}

TEST(LatencyTest, AggregatesBitIdenticalAcrossThreadCounts)
{
    // The compute/commit contract: all stamping happens in the
    // sequential commit phase, so every latency aggregate -- including
    // the merged PE wait histogram -- is bit-identical for any host
    // thread count.
    std::string baseline;
    for (unsigned threads : {1u, 2u, 8u}) {
        core::MachineConfig cfg = core::MachineConfig::small(16, 2);
        cfg.threads = threads;
        core::Machine machine(cfg);
        machine.enableLatency();
        (void)apps::tred2Parallel(machine, 8,
                                  apps::randomSymmetric(10, 1), 10);
        const std::string json = machine.latencyJson();
        if (threads == 1)
            baseline = json;
        else
            EXPECT_EQ(json, baseline) << "threads=" << threads;
    }
    EXPECT_FALSE(baseline.empty());
}

TEST(LatencyTest, StatsRegistrationIsOptIn)
{
    core::MachineConfig cfg = core::MachineConfig::small(16, 2);
    // Two machines, same workload; only one enables the observatory.
    core::Machine plain(cfg);
    core::Machine instrumented(cfg);
    instrumented.enableLatency();
    (void)apps::tred2Parallel(plain, 4, apps::randomSymmetric(8, 1), 8);
    (void)apps::tred2Parallel(instrumented, 4,
                              apps::randomSymmetric(8, 1), 8);

    const std::string off = plain.statsJson();
    const std::string on = instrumented.statsJson();
    EXPECT_EQ(off.find("\"lat."), std::string::npos)
        << "no lat.* lines unless enabled";
    EXPECT_NE(on.find("\"lat.delivered\""), std::string::npos);
    EXPECT_NE(on.find("\"lat.end_to_end\""), std::string::npos);
    EXPECT_NE(on.find("\"lat.stage0.fwd_wait_hist\""),
              std::string::npos);
    // And the timing itself is identical: instrumentation must not
    // change simulated behaviour.
    EXPECT_EQ(plain.now(), instrumented.now());
}

TEST(LatencyTest, SortedDumpIsSortedAndCompactStable)
{
    core::MachineConfig cfg = core::MachineConfig::small(16, 2);
    core::Machine machine(cfg);
    (void)apps::tred2Parallel(machine, 4, apps::randomSymmetric(8, 1),
                              8);
    const obs::DumpOptions sorted{.sortKeys = true, .pretty = false};
    const std::string a = machine.statsJson(sorted);
    const std::string b = machine.statsJson(sorted);
    EXPECT_EQ(a, b);
    // Keys appear in sorted order: mem.* before net.* before pe.*.
    const std::size_t mem_pos = a.find("\"mem.executed\"");
    const std::size_t net_pos = a.find("\"net.injected\"");
    const std::size_t pe_pos = a.find("\"pe.instructions\"");
    ASSERT_NE(mem_pos, std::string::npos);
    ASSERT_NE(net_pos, std::string::npos);
    ASSERT_NE(pe_pos, std::string::npos);
    EXPECT_LT(mem_pos, net_pos);
    EXPECT_LT(net_pos, pe_pos);
    // Compact mode is single-line.
    EXPECT_EQ(a.find("\n"), a.size() - 1);
    // The default (golden-pinned) rendering is unchanged by the
    // overload's existence: pretty, insertion order.
    EXPECT_EQ(machine.statsJson(),
              machine.statsJson(obs::DumpOptions{}));
}

TEST(HistogramTest, MergeAddsSamplesAndPreservesShape)
{
    Histogram a{2, 16};
    Histogram b{2, 16};
    a.add(1);
    a.add(5);
    b.add(5);
    b.add(100); // overflow bin
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), (1 + 5 + 5 + 100) / 4.0);
    Histogram all{2, 16};
    for (std::uint64_t x : {1u, 5u, 5u, 100u})
        all.add(x);
    for (std::size_t i = 0; i < all.numBins(); ++i)
        EXPECT_EQ(a.binCount(i), all.binCount(i)) << "bin " << i;
    EXPECT_EQ(a.percentile(0.5), all.percentile(0.5));
}

TEST(ModelCheckTest, DriftArithmetic)
{
    analytic::NetworkConfig cfg;
    cfg.n = 1024;
    cfg.k = 4;
    cfg.m = 4;
    cfg.d = 1;
    const double p = 0.1;
    const double predicted = analytic::predictedSimTransit(cfg, p);
    EXPECT_DOUBLE_EQ(predicted, analytic::transitTime(cfg, p) + 1.0)
        << "the sim's one-way transit includes the injection hop";
    EXPECT_DOUBLE_EQ(analytic::transitDrift(cfg, p, predicted), 0.0);
    EXPECT_GT(analytic::transitDrift(cfg, p, predicted * 1.2), 0.19);
    EXPECT_LT(analytic::transitDrift(cfg, p, predicted * 0.8), -0.19);
    // Past saturation the prediction is infinite: drift undefined.
    EXPECT_FALSE(std::isfinite(
        analytic::transitDrift(cfg, cfg.capacity() * 2.0, 30.0)));
}

TEST(ModelCheckTest, ToleranceGateAndRegistration)
{
    analytic::NetworkConfig cfg;
    cfg.n = 1024;
    cfg.k = 4;
    cfg.m = 4;
    cfg.d = 1;
    const double p = 0.1;
    const double predicted = analytic::predictedSimTransit(cfg, p);

    const obs::ModelCrossCheck good(cfg, p, predicted * 1.05, true,
                                    0.15);
    EXPECT_TRUE(good.report().withinTolerance());
    EXPECT_TRUE(good.check());

    const obs::ModelCrossCheck bad(cfg, p, predicted * 1.5, true, 0.15);
    EXPECT_FALSE(bad.report().withinTolerance());
    EXPECT_FALSE(bad.check());

    // Non-applicable runs vacuously pass regardless of drift.
    const obs::ModelCrossCheck na(cfg, p, predicted * 9.0, false, 0.15);
    EXPECT_TRUE(na.report().withinTolerance());

    obs::Registry registry;
    bad.registerStats(registry, "model");
    const std::string dump = registry.jsonDump(0);
    EXPECT_NE(dump.find("\"model.drift\""), std::string::npos);
    EXPECT_NE(dump.find("\"model.predicted_transit\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"model.applicable\""), std::string::npos);
    const std::string json = bad.json();
    EXPECT_NE(json.find("\"within_tolerance\": false"),
              std::string::npos);
}

TEST(LatencyTest, SimTracksModelOnConformingConfig)
{
    // End-to-end drift check at library level: a model-conforming
    // config (uniform sizing, no combining, unbounded queues, open
    // loop) must track the Kruskal-Snir prediction within tolerance.
    net::NetSimConfig ncfg;
    ncfg.numPorts = 256;
    ncfg.k = 4;
    ncfg.m = 4;
    ncfg.sizing = net::PacketSizing::Uniform;
    ncfg.queueCapacityPackets = 0;
    ncfg.mmPendingCapacityPackets = 0;
    ncfg.combinePolicy = net::CombinePolicy::None;
    net::PniConfig pcfg;
    pcfg.maxOutstanding = 0; // open loop

    LatRig rig(ncfg, pcfg);
    net::TrafficConfig tcfg;
    tcfg.activePes = 256;
    tcfg.rate = 0.1;
    tcfg.loadFraction = 0.0;
    tcfg.storeFraction = 1.0;
    tcfg.addrSpaceWords = 1 << 16;
    net::TrafficGenerator gen(tcfg, rig.pni, rig.network);
    gen.run(1000); // warm up
    rig.network.resetStats();
    gen.run(4000);

    analytic::NetworkConfig acfg;
    acfg.n = ncfg.numPorts;
    acfg.k = ncfg.k;
    acfg.m = ncfg.m;
    acfg.d = ncfg.d;
    const auto &stats = rig.network.stats();
    const double offered = static_cast<double>(stats.injected) /
                           4000.0 / ncfg.numPorts;
    const obs::ModelCrossCheck check(acfg, offered,
                                     stats.oneWayTransit.mean(), true);
    EXPECT_TRUE(check.check())
        << "drift " << check.report().drift << " vs predicted "
        << check.report().predictedTransit;
    rig.network.drain(50'000);
    EXPECT_EQ(rig.latency.violations(), 0u);
}

TEST(LatencyTest, HotCellsTieBreakOnCoordinates)
{
    // Regression for the hot_cells ranking: cells with *equal*
    // accumulated wait must order by (direction, stage, switch), not by
    // whatever the library sort leaves behind.  Seed four equal-wait
    // cells in scrambled fold order and one strictly hotter cell.
    obs::LatencyShape shape;
    shape.stages = 2;
    shape.switchesPerStage = 3;
    obs::LatencyObservatory lat(shape);
    lat.foldDepartWait(false, 1, 2, 7); // rev, equal block, folded first
    lat.foldDepartWait(true, 1, 0, 7);
    lat.foldDepartWait(true, 0, 2, 7);
    lat.foldDepartWait(true, 0, 1, 9); // strictly hottest
    lat.foldDepartWait(false, 0, 0, 7);
    const std::string json = lat.summaryJson();
    const std::size_t at = json.find("\"hot_cells\"");
    ASSERT_NE(at, std::string::npos);
    const std::vector<std::string> expect = {
        "{\"direction\": \"fwd\", \"stage\": 0, \"switch\": 1",
        "{\"direction\": \"fwd\", \"stage\": 0, \"switch\": 2",
        "{\"direction\": \"fwd\", \"stage\": 1, \"switch\": 0",
        "{\"direction\": \"rev\", \"stage\": 0, \"switch\": 0",
        "{\"direction\": \"rev\", \"stage\": 1, \"switch\": 2",
    };
    std::size_t pos = at;
    for (const std::string &cell : expect) {
        const std::size_t next = json.find(cell, pos);
        ASSERT_NE(next, std::string::npos) << cell << "\n" << json;
        pos = next + cell.size();
    }
}

} // namespace
