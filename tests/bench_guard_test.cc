/**
 * @file
 * The par_speedup small-host honesty guard, driven as a subprocess:
 *
 *   - writing the canonical artifact name BENCH_par.json on a host
 *     with < 4 usable cores is REFUSED (exit 3, explicit message,
 *     nothing written) — the committed artifact must come from a host
 *     that can actually exercise the parallelism it quotes;
 *   - --force-cores is the test hook on both sides of the guard: a
 *     forced small host is still refused, a forced large host
 *     proceeds but the artifact is watermarked "forced_cores": true
 *     so a fabricated BENCH_par.json is self-identifying;
 *   - non-canonical output names are never refused (local numbers
 *     stay possible on any host).
 *
 * The passing-side runs use --iterations 1 to keep the battery fast;
 * the guard decision itself happens before any simulation.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_lite.h"

#ifndef PAR_SPEEDUP_BIN
#error "build must define PAR_SPEEDUP_BIN (see tests/CMakeLists.txt)"
#endif

namespace
{

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") +
           "/ultra_bench_guard_" + name;
}

/** Run par_speedup with @p args; capture exit status and stderr. */
int
runBench(const std::string &args, std::string *err_text = nullptr)
{
    const std::string err = tmpPath("stderr.txt");
    const int rc = std::system((std::string(PAR_SPEEDUP_BIN) + " " +
                                args + " > /dev/null 2> " + err)
                                   .c_str());
    if (err_text != nullptr) {
        std::ifstream in(err);
        std::ostringstream os;
        os << in.rdbuf();
        *err_text = os.str();
    }
    std::remove(err.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(BenchGuardTest, RefusesCanonicalArtifactOnSmallHost)
{
    // The guard keys on the artifact's basename, so park a real
    // BENCH_par.json path inside a scratch directory.
    const std::string dir = tmpPath("refused");
    ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
    const std::string out = dir + "/BENCH_par.json";
    std::remove(out.c_str());
    std::string err;
    EXPECT_EQ(runBench("--force-cores 2 " + out, &err), 3);
    EXPECT_NE(err.find("REFUSED"), std::string::npos)
        << "stderr was: " << err;
    EXPECT_NE(err.find(">= 4"), std::string::npos);
    // Nothing may have been written.
    std::ifstream in(out);
    EXPECT_FALSE(in.good());
}

TEST(BenchGuardTest, ForcedLargeHostProceedsButIsWatermarked)
{
    const std::string out = tmpPath("forced_BENCH.json");
    ASSERT_EQ(runBench("--force-cores 8 --iterations 1 " + out), 0);
    const std::ifstream probe(out);
    ASSERT_TRUE(probe.good());
    std::ifstream in(out);
    std::ostringstream os;
    os << in.rdbuf();
    const jsonlite::JsonValue doc = jsonlite::parse(os.str());
    EXPECT_TRUE(doc["forced_cores"].boolean)
        << "a --force-cores artifact must be self-identifying";
    EXPECT_EQ(doc["host_cores"].number, 8.0);
    EXPECT_TRUE(doc["deterministic"].boolean);
    ASSERT_FALSE(doc["runs"].array.empty());
    std::remove(out.c_str());
}

TEST(BenchGuardTest, NonCanonicalNameIsNeverRefused)
{
    const std::string out = tmpPath("local_numbers.json");
    ASSERT_EQ(runBench("--force-cores 1 --iterations 1 " + out), 0);
    std::ifstream in(out);
    ASSERT_TRUE(in.good());
    std::ostringstream os;
    os << in.rdbuf();
    const jsonlite::JsonValue doc = jsonlite::parse(os.str());
    EXPECT_EQ(doc["host_cores"].number, 1.0);
    EXPECT_TRUE(doc["forced_cores"].boolean);
    std::remove(out.c_str());
}

} // namespace
