/**
 * @file
 * Unit tests for ultra::obs: the stats registry and its JSON dump, the
 * time-series sampler, and the Chrome trace-event recorder -- including
 * an end-to-end schema check of a small hot-spot machine run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>

#include "core/machine.h"
#include "common/json_lite.h"
#include "obs/event_trace.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "pe/task.h"

namespace ultra
{
namespace
{

// ------------------------------------------------------------------
// JSON primitives
// ------------------------------------------------------------------

std::string
escaped(const std::string &s)
{
    std::ostringstream os;
    obs::writeJsonString(os, s);
    return os.str();
}

TEST(JsonWriterTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(escaped("plain"), "\"plain\"");
    EXPECT_EQ(escaped("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(escaped("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(escaped("a\nb\tc"), "\"a\\nb\\tc\"");
    // Control characters become \u escapes; the result must parse.
    const std::string ctrl = escaped(std::string("x\x01y", 3));
    const auto v = jsonlite::parse(ctrl);
    EXPECT_TRUE(v.isString());
}

TEST(JsonWriterTest, NumbersRoundTrip)
{
    std::ostringstream os;
    obs::writeJsonNumber(os, 42.0);
    os << ' ';
    obs::writeJsonNumber(os, -3.5);
    EXPECT_EQ(os.str(), "42 -3.5");

    std::ostringstream inf;
    obs::writeJsonNumber(inf, 1.0 / 0.0);
    EXPECT_EQ(inf.str(), "null"); // non-finite is not valid JSON
}

// ------------------------------------------------------------------
// Registry
// ------------------------------------------------------------------

TEST(RegistryTest, ScalarReadsThrough)
{
    obs::Registry reg;
    double counter = 0.0;
    reg.addScalar("a.count", [&] { return counter; }, "a counter");
    EXPECT_TRUE(reg.has("a.count"));
    EXPECT_FALSE(reg.has("a.missing"));
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.value("a.count"), 0.0);
    counter = 7.0; // no re-registration needed: getters are live
    EXPECT_EQ(reg.value("a.count"), 7.0);
}

TEST(RegistryTest, PathsInRegistrationOrder)
{
    obs::Registry reg;
    reg.addScalar("z.last", [] { return 0.0; });
    reg.addScalar("a.first", [] { return 0.0; });
    const auto paths = reg.paths();
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], "z.last");
    EXPECT_EQ(paths[1], "a.first");
}

TEST(RegistryDeathTest, DuplicatePathPanics)
{
    obs::Registry reg;
    reg.addScalar("dup", [] { return 0.0; });
    EXPECT_DEATH(reg.addScalar("dup", [] { return 1.0; }), "dup");
}

TEST(RegistryDeathTest, EmptyPathPanics)
{
    obs::Registry reg;
    EXPECT_DEATH(reg.addScalar("", [] { return 0.0; }), "");
}

TEST(RegistryTest, AccumulatorAndHistogramAccess)
{
    obs::Registry reg;
    Accumulator acc;
    acc.add(2.0);
    acc.add(4.0);
    Histogram hist(1, 16);
    hist.add(3);
    reg.addAccumulator("lat", &acc);
    reg.addHistogram("lat_hist", &hist);
    EXPECT_DOUBLE_EQ(reg.value("lat"), 3.0); // mean
    EXPECT_DOUBLE_EQ(reg.accumulator("lat").max(), 4.0);
    EXPECT_EQ(reg.histogram("lat_hist").count(), 1u);
}

TEST(RegistryTest, JsonDumpRoundTrips)
{
    obs::Registry reg;
    reg.addScalar("net.injected", [] { return 42.0; });
    Accumulator acc;
    acc.add(1.0);
    acc.add(5.0);
    reg.addAccumulator("net.round_trip", &acc);
    Histogram hist(2, 8);
    for (std::uint64_t x : {2, 2, 4, 9})
        hist.add(x);
    reg.addHistogram("net.round_trip_hist", &hist);

    const auto dump = jsonlite::parse(reg.jsonDump(1234));
    EXPECT_EQ(dump["cycle"].number, 1234.0);
    const auto &stats = dump["stats"];
    EXPECT_EQ(stats["net.injected"].number, 42.0);
    const auto &rt = stats["net.round_trip"];
    EXPECT_EQ(rt["count"].number, 2.0);
    EXPECT_EQ(rt["mean"].number, 3.0);
    EXPECT_EQ(rt["min"].number, 1.0);
    EXPECT_EQ(rt["max"].number, 5.0);
    const auto &hd = stats["net.round_trip_hist"];
    EXPECT_EQ(hd["count"].number, 4.0);
    EXPECT_EQ(hd["bin_width"].number, 2.0);
    EXPECT_TRUE(hd["bins"].isArray());
    EXPECT_GE(hd["p99"].number, hd["p50"].number);
}

// ------------------------------------------------------------------
// Sampler
// ------------------------------------------------------------------

TEST(SamplerTest, RowsAndCsv)
{
    obs::Sampler sampler;
    double x = 0.0;
    sampler.addColumn("x", [&] { return x; });
    sampler.addColumn("twice_x", [&] { return 2.0 * x; });
    for (Cycle c = 0; c < 300; c += 100) {
        x = static_cast<double>(c);
        sampler.sample(c);
    }
    EXPECT_EQ(sampler.numColumns(), 2u);
    ASSERT_EQ(sampler.numRows(), 3u);
    EXPECT_EQ(sampler.at(2, 1), 400.0);

    const std::string csv = sampler.csv();
    EXPECT_EQ(csv.substr(0, csv.find('\n')), "cycle,x,twice_x");
    EXPECT_NE(csv.find("200,200,400"), std::string::npos);
}

TEST(SamplerTest, CycleColumnMonotone)
{
    obs::Sampler sampler;
    sampler.addColumn("zero", [] { return 0.0; });
    for (Cycle c = 0; c <= 500; c += 50)
        sampler.sample(c);
    for (std::size_t row = 1; row < sampler.numRows(); ++row)
        EXPECT_LT(sampler.cycleAt(row - 1), sampler.cycleAt(row));
}

TEST(SamplerTest, RegistryColumnReadsThrough)
{
    obs::Registry reg;
    double gauge = 3.0;
    reg.addScalar("q.fill", [&] { return gauge; });
    obs::Sampler sampler;
    sampler.addRegistryColumn(reg, "q.fill");
    sampler.sample(0);
    gauge = 9.0;
    sampler.sample(1);
    EXPECT_EQ(sampler.columnNames().front(), "q.fill");
    EXPECT_EQ(sampler.at(0, 0), 3.0);
    EXPECT_EQ(sampler.at(1, 0), 9.0);
}

TEST(SamplerTest, ClearKeepsColumns)
{
    obs::Sampler sampler;
    sampler.addColumn("x", [] { return 1.0; });
    sampler.sample(10);
    sampler.clear();
    EXPECT_EQ(sampler.numRows(), 0u);
    EXPECT_EQ(sampler.numColumns(), 1u);
    sampler.sample(20);
    EXPECT_EQ(sampler.cycleAt(0), 20u);
}

// ------------------------------------------------------------------
// EventTrace
// ------------------------------------------------------------------

TEST(EventTraceTest, TrackInterningIsIdempotent)
{
    obs::EventTrace trace;
    const auto a = trace.track("pe");
    const auto b = trace.track("mm");
    EXPECT_NE(a, b);
    EXPECT_EQ(trace.track("pe"), a);
    EXPECT_EQ(trace.numTracks(), 2u);
}

TEST(EventTraceTest, BoundedBufferCountsDrops)
{
    obs::EventTrace trace(2);
    const auto t = trace.track("pe");
    trace.instant(t, 0, "a", 1);
    trace.instant(t, 0, "b", 2);
    trace.instant(t, 0, "c", 3);
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.dropped(), 1u);
}

TEST(EventTraceTest, JsonSchemaForAllShapes)
{
    obs::EventTrace trace;
    const auto pe = trace.track("pe");
    const auto q = trace.track("net.copy0.stage0.tomm");
    trace.instant(pe, 3, "inject", 10);
    trace.complete(q, 1, "hop", 11, 2);
    trace.complete(q, 1, "zero_dur", 11, 0); // must clamp to dur >= 1
    trace.counter(q, "occupancy", 12, 7.5);

    const auto doc = jsonlite::parse(trace.json());
    const auto &events = doc["traceEvents"];
    ASSERT_TRUE(events.isArray());

    std::set<std::string> phases;
    std::size_t metadata = 0;
    for (const auto &e : events.array) {
        const std::string ph = e["ph"].string;
        phases.insert(ph);
        if (ph == "M") {
            ++metadata;
            EXPECT_EQ(e["name"].string, "process_name");
            EXPECT_TRUE(e["args"]["name"].isString());
            continue;
        }
        EXPECT_TRUE(e["pid"].isNumber());
        EXPECT_TRUE(e["tid"].isNumber());
        EXPECT_TRUE(e["ts"].isNumber());
        if (ph == "X")
            EXPECT_GE(e["dur"].number, 1.0);
        if (ph == "i")
            EXPECT_EQ(e["s"].string, "t");
        if (ph == "C")
            EXPECT_EQ(e["args"]["value"].number, 7.5);
    }
    EXPECT_EQ(metadata, 2u); // one process_name per track
    EXPECT_EQ(phases, (std::set<std::string>{"M", "X", "i", "C"}));
}

TEST(EventTraceTest, IdAndLinkArgsSurfaceInJson)
{
    // Message-id correlation for tools/ultrascope: nonzero id / link
    // become args.id / args.link; zero (the default) stays silent so
    // uncorrelated events carry no args clutter.
    obs::EventTrace trace;
    const auto q = trace.track("net");
    trace.instant(q, 0, "combine", 5, 42, 17); // absorbed 42 -> 17
    trace.complete(q, 1, "hop", 6, 2, 42);
    trace.instant(q, 0, "plain", 7);

    const auto doc = jsonlite::parse(trace.json());
    bool saw_combine = false;
    bool saw_hop = false;
    bool saw_plain = false;
    for (const auto &e : doc["traceEvents"].array) {
        if (e["ph"].string == "M")
            continue;
        const std::string name = e["name"].string;
        if (name == "combine") {
            saw_combine = true;
            EXPECT_EQ(e["args"]["id"].number, 42.0);
            EXPECT_EQ(e["args"]["link"].number, 17.0);
        } else if (name == "hop") {
            saw_hop = true;
            EXPECT_EQ(e["args"]["id"].number, 42.0);
            EXPECT_FALSE(e["args"].has("link"));
        } else if (name == "plain") {
            saw_plain = true;
            EXPECT_FALSE(e.has("args"));
        }
    }
    EXPECT_TRUE(saw_combine);
    EXPECT_TRUE(saw_hop);
    EXPECT_TRUE(saw_plain);
}

// ------------------------------------------------------------------
// End to end: a hot-spot run through the Machine wiring
// ------------------------------------------------------------------

core::Machine
hotSpotMachine()
{
    return core::Machine(core::MachineConfig::small(16, 2));
}

void
runHotSpot(core::Machine &machine)
{
    const Addr hot = machine.allocShared(1, "hot");
    machine.launchAll(16, [hot](pe::Pe &p) -> pe::Task {
        for (int i = 0; i < 8; ++i)
            co_await p.fetchAdd(hot, 1);
    });
    ASSERT_TRUE(machine.run(100'000));
}

TEST(MachineObsTest, StatsJsonContainsComponentStats)
{
    core::Machine machine = hotSpotMachine();
    runHotSpot(machine);
    const auto doc = jsonlite::parse(machine.statsJson());
    const auto &stats = doc["stats"];
    EXPECT_EQ(stats["net.injected"].number, 16.0 * 8.0);
    EXPECT_GT(stats["net.combined"].number, 0.0);
    EXPECT_TRUE(stats.has("net.stage0.combines"));
    EXPECT_EQ(stats["pe.shared_refs"].number, 16.0 * 8.0);
    EXPECT_EQ(stats["pni.completed"].number, 16.0 * 8.0);
    EXPECT_TRUE(stats["net.round_trip"].has("mean"));
    // 16 PEs fetch-adding one cell: all traffic on one module.
    EXPECT_EQ(stats["mem.fa_ops"].number, stats["mem.executed"].number);
}

TEST(MachineObsTest, StatsReportMatchesRegistry)
{
    core::Machine machine = hotSpotMachine();
    runHotSpot(machine);
    const std::string report = machine.statsReport();
    EXPECT_NE(report.find("16 PEs engaged"), std::string::npos);
    EXPECT_NE(report.find("combines by stage"), std::string::npos);
    // The report's injected count is the registry's.
    const auto doc = jsonlite::parse(machine.statsJson());
    const auto injected = static_cast<std::uint64_t>(
        doc["stats"]["net.injected"].number);
    EXPECT_NE(report.find(std::to_string(injected) + " injected"),
              std::string::npos);
}

TEST(MachineObsTest, SamplingProducesMonotoneRows)
{
    core::Machine machine = hotSpotMachine();
    machine.enableSampling(10);
    runHotSpot(machine);
    const obs::Sampler &sampler = machine.sampler();
    ASSERT_GT(sampler.numRows(), 1u);
    EXPECT_GT(sampler.numColumns(), 2u);
    for (std::size_t row = 1; row < sampler.numRows(); ++row)
        EXPECT_LT(sampler.cycleAt(row - 1), sampler.cycleAt(row));
    const std::string csv = sampler.csv();
    EXPECT_EQ(csv.rfind("cycle,", 0), 0u);
    EXPECT_NE(csv.find("net.stage0.tomm_pkts"), std::string::npos);
}

TEST(MachineObsTest, EventTraceRecordsHotSpotActivity)
{
    core::Machine machine = hotSpotMachine();
    obs::EventTrace trace;
    machine.attachEventTrace(&trace);
    runHotSpot(machine);
    machine.attachEventTrace(nullptr);

    EXPECT_EQ(trace.dropped(), 0u);
    const auto doc = jsonlite::parse(trace.json());
    const auto &events = doc["traceEvents"];
    ASSERT_TRUE(events.isArray());
    ASSERT_GT(events.array.size(), 0u);

    std::set<std::string> names;
    std::set<std::string> track_names;
    for (const auto &e : events.array) {
        if (e["ph"].string == "M") {
            track_names.insert(e["args"]["name"].string);
            continue;
        }
        names.insert(e["name"].string);
    }
    // The full pipeline shows up: inject, per-stage hops (op names),
    // combining, fission, service, reply and PE waiting.
    EXPECT_TRUE(names.count("inject"));
    EXPECT_TRUE(names.count("combine"));
    EXPECT_TRUE(names.count("decombine"));
    EXPECT_TRUE(names.count("FetchAdd"));
    EXPECT_TRUE(names.count("reply"));
    EXPECT_TRUE(names.count("wait"));
    EXPECT_TRUE(track_names.count("pe"));
    EXPECT_TRUE(track_names.count("mm"));
    EXPECT_TRUE(track_names.count("net.copy0.stage0.tomm"));
}

} // namespace
} // namespace ultra
