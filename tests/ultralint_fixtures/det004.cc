// Fixture: UL-DET-004 -- sorting pointer elements with the default
// comparator orders by address, which varies run to run.

#include <algorithm>
#include <vector>

struct Cell
{
    long wait = 0;
};

void
rankCells(std::vector<Cell> &storage)
{
    std::vector<Cell *> hot;
    for (Cell &c : storage)
        hot.push_back(&c);
    std::sort(hot.begin(), hot.end());
}
