// Fixture: UL-DET-005 -- std::sort with a single-key comparator: the
// order of equal keys falls to the library implementation.

#include <algorithm>
#include <vector>

struct Sample
{
    long wait = 0;
    int sw = 0;
};

void
rankSamples(std::vector<Sample> &samples)
{
    std::sort(samples.begin(), samples.end(),
              [](const Sample &a, const Sample &b) {
                  return a.wait > b.wait;
              });
}
