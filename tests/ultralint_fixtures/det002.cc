// Fixture: UL-DET-002 -- raw entropy outside common/rng.

#include <cstdlib>

int
pickVictim(int n)
{
    return std::rand() % n;
}
