// Fixture: UL-PHASE-001 -- a compute-phase entry point reaches a
// COMMIT_ONLY-annotated mutator through a helper.

#include "check/phase_check.h"

struct Network
{
    void
    arrivalPhaseUnit(int unit)
    {
        staged_ += unit;
        flushHelper();
    }

    void
    flushHelper()
    {
        publishStats();
    }

    void
    publishStats()
    {
        ULTRA_CHECK_COMMIT_ONLY("net.stats");
        committed_ += staged_;
    }

    int staged_ = 0;
    int committed_ = 0;
};
