// Fixture: UL-COV-002 -- an annotation whose owner argument is a
// numeric literal instead of a bound owner field.

#include "check/phase_check.h"

class OutQueue
{
  public:
    void
    enqueue(int pkts)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.enqueue", 7);
        used_ += pkts;
    }

  private:
    int used_ = 0;
};
