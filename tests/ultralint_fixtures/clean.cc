// Fixture: clean -- a net-domain class written to the contract; the
// tool must emit no diagnostics and exit 0.

#include <algorithm>
#include <map>
#include <vector>

#include "check/phase_check.h"

class OutQueue
{
  public:
    void
    enqueue(int pkts)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.enqueue", checkOwner_);
        used_ += pkts;
    }

    int size() const { return used_; }

  private:
    int used_ = 0;
    unsigned long long checkOwner_ = ~0ULL;
};

struct Sample
{
    long wait = 0;
    int sw = 0;
};

void
rankSamples(std::vector<Sample> &samples)
{
    std::sort(samples.begin(), samples.end(),
              [](const Sample &a, const Sample &b) {
                  if (a.wait != b.wait)
                      return a.wait > b.wait;
                  return a.sw < b.sw;
              });
}

long
sumCells(const std::map<int, long> &cells)
{
    long total = 0;
    for (const auto &kv : cells)
        total += kv.second;
    return total;
}
