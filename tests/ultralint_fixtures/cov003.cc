// Fixture: UL-COV-003 -- annotation macros used without a direct
// include of "check/phase_check.h" (transitive includes rot when the
// intermediate header is refactored).

#include "net/out_queue_fwd.h"

class OutQueue
{
  public:
    void
    enqueue(int pkts)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.enqueue", checkOwner_);
        used_ += pkts;
    }

  private:
    int used_ = 0;
    unsigned long long checkOwner_ = ~0ULL;
};
