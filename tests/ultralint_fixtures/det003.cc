// Fixture: UL-DET-003 -- thread_local state in simulation code (its
// value depends on which thread ran the shard).

thread_local int scratchDepth = 0;

int
enterScratch()
{
    return ++scratchDepth;
}
