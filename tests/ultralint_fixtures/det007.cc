// Fixture: UL-DET-007 -- raw wall-clock read in simulation code.

#include <chrono>

long
stampNow()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
