// Fixture: UL-COV-001 -- a net-domain class with a public mutating
// method that carries no ULTRA_CHECK annotation.  Scanned, never
// compiled.

class OutQueue
{
  public:
    void
    enqueue(int pkts)
    {
        used_ += pkts;
    }

    int size() const { return used_; }

  private:
    int used_ = 0;
};
