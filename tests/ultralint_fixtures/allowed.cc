// Fixture: inline suppression -- the same seeded UL-DET-003 violation
// as det003.cc, silenced by an `ultralint: allow` marker with a
// reason.  The tool must exit 0.

// ultralint: allow(UL-DET-003): debug-only scratch depth, never feeds
// committed state; kept per-thread so instrumented builds stay lock-free.
thread_local int scratchDepth = 0;

int
enterScratch()
{
    return ++scratchDepth;
}
