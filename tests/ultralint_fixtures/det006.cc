// Fixture: UL-DET-006 -- atomic floating-point accumulation: the sum
// depends on the order shards happen to arrive.

#include <atomic>

std::atomic<double> totalWait{0.0};

void
accumulate(double wait)
{
    double cur = totalWait.load();
    while (!totalWait.compare_exchange_weak(cur, cur + wait)) {
    }
}
