// Fixture: UL-DET-001 -- iterating an unordered container (hash order
// leaks into whatever consumes the loop).

#include <string>
#include <unordered_map>

long
sumCells(const std::unordered_map<int, long> &)
{
    std::unordered_map<int, long> cells;
    cells[3] = 30;
    long total = 0;
    for (const auto &kv : cells)
        total += kv.second;
    return total;
}
