/**
 * @file
 * Tests for the PE-local write-back cache with release and flush
 * (sections 3.2 and 3.4).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache.h"

namespace ultra::cache
{
namespace
{

CacheConfig
tinyConfig()
{
    CacheConfig cfg;
    cfg.numSets = 2;
    cfg.associativity = 2;
    cfg.blockWords = 4;
    return cfg;
}

std::vector<Word>
block(Word base_value)
{
    return {base_value, base_value + 1, base_value + 2, base_value + 3};
}

TEST(CacheTest, MissThenHit)
{
    Cache cache(tinyConfig());
    auto miss = cache.read(0);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.writeBacks.empty());
    cache.installBlock(0, block(100).data());
    auto hit = cache.read(2);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.value, 102);
    EXPECT_EQ(cache.stats().readMisses, 1u);
    EXPECT_EQ(cache.stats().readHits, 1u);
}

TEST(CacheTest, WriteBackOnlyOnEviction)
{
    // Write-back policy: writes are not written through; dirty words
    // surface only when the block is evicted.
    Cache cache(tinyConfig());
    cache.installBlock(0, block(0).data());
    EXPECT_TRUE(cache.write(1, 42).hit);
    EXPECT_EQ(cache.stats().wordsWrittenBack, 0u);

    // Fill the set (set 0 holds blocks at 0, 32, 64 ... for this
    // geometry: setOf = (addr/4) & 1).
    cache.installBlock(8, block(200).data());
    // Next miss in set 0 evicts the LRU block (base 0, dirty word 1).
    auto miss = cache.read(16);
    EXPECT_FALSE(miss.hit);
    ASSERT_EQ(miss.writeBacks.size(), 1u);
    EXPECT_EQ(miss.writeBacks[0].vaddr, 1u);
    EXPECT_EQ(miss.writeBacks[0].value, 42);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, LruVictimSelection)
{
    Cache cache(tinyConfig());
    cache.installBlock(0, block(0).data());
    cache.installBlock(8, block(8).data());
    // Touch block 0 so block 8 is LRU.
    EXPECT_TRUE(cache.read(0).hit);
    cache.read(16); // miss; victim should be block 8
    cache.installBlock(16, block(16).data());
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(8));
    EXPECT_TRUE(cache.contains(16));
}

TEST(CacheTest, ReleaseDropsWithoutWriteBack)
{
    // Release marks entries available without a central-memory update:
    // write-back traffic for dead private variables is avoided.
    Cache cache(tinyConfig());
    cache.installBlock(0, block(0).data());
    cache.write(0, 7);
    cache.release(0, 3);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.stats().releasedDirtyWords, 1u);
    EXPECT_EQ(cache.stats().wordsWrittenBack, 0u);
}

TEST(CacheTest, ReleaseRangeIsSelective)
{
    Cache cache(tinyConfig());
    cache.installBlock(0, block(0).data());
    cache.installBlock(8, block(8).data());
    cache.release(8, 11);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(8));
}

TEST(CacheTest, FlushWritesDirtyAndKeepsClean)
{
    // Flush forces the write-back (for task switches) but the data
    // stays cached and clean.
    Cache cache(tinyConfig());
    cache.installBlock(0, block(0).data());
    cache.write(2, 99);
    auto flushed = cache.flush(0, 3);
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0].vaddr, 2u);
    EXPECT_EQ(flushed[0].value, 99);
    EXPECT_TRUE(cache.contains(2));
    // A second flush finds nothing dirty.
    EXPECT_TRUE(cache.flush(0, 3).empty());
    // And eviction after flush writes nothing back.
    cache.installBlock(8, block(0).data());
    auto miss = cache.read(16);
    EXPECT_TRUE(miss.writeBacks.empty());
}

TEST(CacheTest, FlushAllCoversEverything)
{
    Cache cache(tinyConfig());
    cache.installBlock(0, block(0).data());
    cache.installBlock(4, block(4).data());
    cache.write(0, 1);
    cache.write(4, 2);
    auto flushed = cache.flushAll();
    EXPECT_EQ(flushed.size(), 2u);
}

TEST(CacheTest, WriteMissIsWriteAllocate)
{
    Cache cache(tinyConfig());
    auto miss = cache.write(0, 5);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(cache.stats().writeMisses, 1u);
    cache.installBlock(0, block(0).data());
    EXPECT_TRUE(cache.write(0, 5).hit);
}

TEST(CacheTest, HitRate)
{
    Cache cache(tinyConfig());
    cache.installBlock(0, block(0).data());
    for (int i = 0; i < 19; ++i)
        cache.read(i % 4);
    cache.read(100); // one miss
    EXPECT_NEAR(cache.stats().hitRate(), 19.0 / 20.0, 1e-9);
}

TEST(CacheTest, SharePrivatizeProtocol)
{
    // Section 3.4: task T treats V as private (cached), then flushes,
    // releases, and marks it shared before spawning subtasks; after
    // they complete T may cache it again.  The cache-side mechanics:
    Cache cache(tinyConfig());
    cache.installBlock(0, block(10).data());
    cache.write(1, 77); // T updates V privately

    // Before spawning: flush (main memory current) + release (no stale
    // reuse).
    auto flushed = cache.flush(0, 3);
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0].value, 77);
    cache.release(0, 3);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_EQ(cache.stats().wordsWrittenBack, 0u); // flush, not evict

    // After subtasks finish, T re-caches the (possibly updated) block.
    cache.installBlock(0, block(20).data());
    EXPECT_EQ(cache.read(1).value, 21);
}

} // namespace
} // namespace ultra::cache
