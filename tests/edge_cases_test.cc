/**
 * @file
 * Edge-case and failure-path coverage: rendering helpers, run/drain
 * timeouts, and the assertion guard rails (death tests).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/coord.h"
#include "core/machine.h"
#include "mem/memory_system.h"
#include "net/network.h"

namespace ultra
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

TEST(HistogramRenderTest, ShowsOccupiedBins)
{
    Histogram h(10, 8);
    h.add(5);
    h.add(5);
    h.add(25);
    const std::string out = h.render();
    EXPECT_NE(out.find("[0)"), std::string::npos);
    EXPECT_NE(out.find("[20)"), std::string::npos);
    EXPECT_EQ(out.find("[10)"), std::string::npos) << "empty bin shown";
}

TEST(TextTableTest, SeparatorRendersAsRule)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    const std::string out = t.render();
    // Header rule + top + separator + bottom = at least 4 rules.
    int rules = 0;
    for (std::size_t pos = 0; (pos = out.find("+--", pos)) !=
                              std::string::npos;
         ++pos) {
        ++rules;
    }
    EXPECT_GE(rules, 4);
}

TEST(LogTest, WarnAndInformDoNotDie)
{
    warn("this is a survivable warning: ", 42);
    inform("status message ", 3.14);
}

TEST(MachineTest, RunTimesOutOnSpinningProgram)
{
    Machine machine(MachineConfig::small(16, 2));
    const Addr flag = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        // Wait for a flag nobody will ever set.
        while (true) {
            const Word v = co_await pe.load(flag);
            if (v != 0)
                break;
            co_await pe.compute(4);
        }
    });
    EXPECT_FALSE(machine.run(5000)) << "must time out, not hang";
    // The machine is still usable: set the flag and finish.
    machine.poke(flag, 1);
    EXPECT_TRUE(machine.run(100000));
}

TEST(NetworkTest, DrainTimesOutWhileTrafficPending)
{
    net::NetSimConfig cfg;
    cfg.numPorts = 16;
    mem::MemoryConfig mc;
    mc.numModules = 16;
    mc.wordsPerModule = 64;
    mem::MemorySystem memory(mc);
    net::Network network(cfg, memory);
    network.setDeliverCallback([](PEId, std::uint64_t, Word) {});
    ASSERT_TRUE(network.tryInject(0, net::Op::Load, 3, 0, 0));
    EXPECT_FALSE(network.drain(1)) << "one cycle cannot finish an RTT";
    EXPECT_TRUE(network.drain(1000));
}

using EdgeDeathTest = ::testing::Test;

TEST(EdgeDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom"), "boom");
}

TEST(EdgeDeathTest, BadMachineAddressAborts)
{
    EXPECT_DEATH(
        {
            mem::MemoryConfig mc;
            mc.numModules = 4;
            mc.wordsPerModule = 4;
            mem::MemorySystem memory(mc);
            memory.peek(16); // out of range
        },
        "out of range");
}

TEST(EdgeDeathTest, LaunchOnBusyPeAborts)
{
    EXPECT_DEATH(
        {
            Machine machine(MachineConfig::small(16, 2));
            const Addr a = machine.allocShared(1);
            machine.launch(0, [&](Pe &pe) -> Task {
                const Word v = co_await pe.load(a);
                (void)v;
            });
            // Relaunch without running: the first program never ran.
            machine.launch(0, [&](Pe &pe) -> Task {
                co_await pe.compute(1);
            });
        },
        "still running");
}

TEST(EdgeDeathTest, AllocBeyondMemoryAborts)
{
    EXPECT_DEATH(
        {
            MachineConfig cfg = MachineConfig::small(16, 2);
            cfg.wordsPerModule = 16;
            Machine machine(cfg);
            machine.allocShared(16 * 16 + 1, "too-big");
        },
        "exhausted");
}

} // namespace
} // namespace ultra
