/**
 * @file
 * Tests of the coroutine PE model (section 3.5): blocking and
 * non-blocking memory operations, register locking via LoadHandle,
 * instruction timing, idle-cycle accounting, and nested-task
 * composition.
 */

#include <gtest/gtest.h>

#include "core/machine.h"
#include "pe/pe.h"

namespace ultra
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

MachineConfig
testConfig()
{
    MachineConfig cfg = MachineConfig::small(16, 2);
    cfg.hashAddresses = false; // direct addressing for checks
    return cfg;
}

TEST(PeTest, BlockingOpsRoundTrip)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(4);
    machine.poke(a, 7);

    Word loaded = -1, old_fa = -1, old_swap = -1, old_tas = -1;
    machine.launch(0, [&](Pe &pe) -> Task {
        loaded = co_await pe.load(a);
        old_fa = co_await pe.fetchAdd(a, 10);
        old_swap = co_await pe.swap(a, 50);
        old_tas = co_await pe.testAndSet(a + 1);
        co_await pe.store(a + 2, 123);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(loaded, 7);
    EXPECT_EQ(old_fa, 7);
    EXPECT_EQ(old_swap, 17);
    EXPECT_EQ(old_tas, 0);
    EXPECT_EQ(machine.peek(a), 50);
    EXPECT_EQ(machine.peek(a + 1), 1);
    EXPECT_EQ(machine.peek(a + 2), 123);
}

TEST(PeTest, GenericFetchPhi)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);
    machine.poke(a, 0b1100);
    Word old_or = -1;
    machine.launch(0, [&](Pe &pe) -> Task {
        old_or = co_await pe.fetchPhi(net::Op::FetchOr, a, 0b0011);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(old_or, 0b1100);
    EXPECT_EQ(machine.peek(a), 0b1111);
}

TEST(PeTest, ComputeAdvancesTime)
{
    Machine machine(testConfig());
    machine.launch(0, [&](Pe &pe) -> Task {
        co_await pe.compute(100); // 100 instructions x 2 cycles
    });
    ASSERT_TRUE(machine.run());
    EXPECT_GE(machine.now(), 200u);
    EXPECT_LE(machine.now(), 230u);
    const auto &stats = machine.peAt(0).stats();
    EXPECT_EQ(stats.instructions, 100u);
    EXPECT_EQ(stats.busyCycles, 200u);
    EXPECT_EQ(stats.idleCycles, 0u);
}

TEST(PeTest, BlockingLoadAccruesIdleCycles)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        (void)co_await pe.load(a);
    });
    ASSERT_TRUE(machine.run());
    const auto &stats = machine.peAt(0).stats();
    EXPECT_EQ(stats.instructions, 1u);
    EXPECT_EQ(stats.sharedRefs, 1u);
    // RTT through an 8-stage round trip: blocked well over 4 cycles.
    EXPECT_GT(stats.idleCycles, 4u);
}

TEST(PeTest, PrefetchOverlapsComputation)
{
    // The register-locking behaviour: a prefetched load costs less
    // idle time than a blocking one when there is work to overlap.
    auto idle_with = [](bool prefetch) {
        Machine machine(testConfig());
        const Addr a = machine.allocShared(1);
        machine.launch(0, [&, prefetch](Pe &pe) -> Task {
            if (prefetch) {
                auto handle = pe.startLoad(a);
                co_await pe.compute(30);
                (void)co_await handle;
            } else {
                (void)co_await pe.load(a);
                co_await pe.compute(30);
            }
        });
        machine.run();
        return machine.peAt(0).stats().idleCycles;
    };
    EXPECT_LT(idle_with(true), idle_with(false));
    EXPECT_EQ(idle_with(true), 0u); // 60 cycles fully covers the RTT
}

TEST(PeTest, AwaitingReadyHandleIsFree)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);
    machine.poke(a, 5);
    Word v = -1;
    machine.launch(0, [&](Pe &pe) -> Task {
        auto handle = pe.startLoad(a);
        co_await pe.compute(50);
        EXPECT_TRUE(handle.ready());
        v = co_await handle;
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(v, 5);
}

TEST(PeTest, PostStoreAndFence)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(8);
    machine.launch(0, [&](Pe &pe) -> Task {
        for (Addr i = 0; i < 8; ++i)
            pe.postStore(a + i, static_cast<Word>(i * i));
        co_await pe.fence();
    });
    ASSERT_TRUE(machine.run());
    for (Addr i = 0; i < 8; ++i)
        EXPECT_EQ(machine.peek(a + i), static_cast<Word>(i * i));
}

TEST(PeTest, TaskEndWaitsForOutstandingAsyncOps)
{
    // A program ending with un-fenced postStores is only finished()
    // once they complete; the machine must not report success before
    // the stores land.
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        pe.postStore(a, 42);
        co_return;
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(a), 42);
}

TEST(PeTest, NestedTasksCompose)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);

    // A subroutine that performs two memory operations.
    auto subroutine = [](Pe &pe, Addr addr, Word delta) -> Task {
        const Word old_value = co_await pe.fetchAdd(addr, delta);
        co_await pe.store(addr + 0, old_value + delta); // idempotent
    };

    machine.launch(0, [&](Pe &pe) -> Task {
        co_await subroutine(pe, a, 3);
        co_await subroutine(pe, a, 4);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(a), 7);
}

TEST(PeTest, DeeplyNestedTasks)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);

    std::function<Task(Pe &, int)> recurse = [&](Pe &pe,
                                                 int depth) -> Task {
        co_await pe.fetchAdd(a, 1);
        if (depth > 0)
            co_await recurse(pe, depth - 1);
    };
    machine.launch(0,
                   [&](Pe &pe) -> Task { co_await recurse(pe, 9); });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(a), 10);
}

TEST(PeTest, TwoPesInterleaveOnSharedCounter)
{
    Machine machine(testConfig());
    const Addr ctr = machine.allocShared(1);
    const Addr results = machine.allocShared(64);
    auto worker = [&](Pe &pe) -> Task {
        for (int i = 0; i < 16; ++i) {
            const Word idx = co_await pe.fetchAdd(ctr, 1);
            co_await pe.store(results + idx, 1);
        }
    };
    machine.launch(0, worker);
    machine.launch(1, worker);
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(ctr), 32);
    // Every index was claimed exactly once.
    for (Addr i = 0; i < 32; ++i)
        EXPECT_EQ(machine.peek(results + i), 1);
}

TEST(PeTest, StatsCountPrivateRefs)
{
    Machine machine(testConfig());
    machine.launch(0, [&](Pe &pe) -> Task {
        co_await pe.privateRefs(10);
        co_await pe.compute(5);
    });
    ASSERT_TRUE(machine.run());
    const auto &stats = machine.peAt(0).stats();
    EXPECT_EQ(stats.privateRefs, 10u);
    EXPECT_EQ(stats.instructions, 15u);
    EXPECT_EQ(stats.sharedRefs, 0u);
}

} // namespace
} // namespace ultra
