/**
 * @file
 * Tests of the parallel shortest-path application (the appendix's
 * motivating workload): correctness against serial Dijkstra across
 * graph shapes and PE counts, with and without the read-only graph
 * cache, plus the refutation of the "constant upper bound on speedup"
 * claim -- queue concurrency does scale.
 */

#include <gtest/gtest.h>

#include "apps/shortest_path.h"

namespace ultra::apps
{
namespace
{

core::MachineConfig
machineFor(std::uint32_t pes)
{
    core::MachineConfig cfg = core::MachineConfig::small(
        std::max<std::uint32_t>(16, pes), 2);
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    return cfg;
}

TEST(SsspSerialTest, GridDistancesAreManhattan)
{
    const Graph graph = gridGraph(5);
    const auto dist = shortestPathsSerial(graph, 0);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_EQ(dist[r * 5 + c], static_cast<Word>(r + c));
}

TEST(SsspSerialTest, RingGraphIsConnected)
{
    const Graph graph = randomGraph(32, 3, 7);
    const auto dist = shortestPathsSerial(graph, 0);
    for (std::size_t v = 0; v < graph.numVertices; ++v)
        EXPECT_LT(dist[v], kUnreachable) << "vertex " << v;
}

struct SsspParam
{
    std::uint32_t pes;
    bool useCache;
};

class SsspParallelTest : public ::testing::TestWithParam<SsspParam>
{};

TEST_P(SsspParallelTest, RandomGraphMatchesDijkstra)
{
    const auto [pes, use_cache] = GetParam();
    const Graph graph = randomGraph(48, 4, 11);
    const auto expect = shortestPathsSerial(graph, 3);

    core::Machine machine(machineFor(pes));
    const SsspResult result =
        shortestPathsParallel(machine, pes, graph, 3, use_cache);
    ASSERT_EQ(result.dist.size(), expect.size());
    for (std::size_t v = 0; v < expect.size(); ++v)
        EXPECT_EQ(result.dist[v], expect[v]) << "vertex " << v;
    // Label correcting may relax more than V times, never less.
    EXPECT_GE(result.relaxations, graph.numVertices / 2);
}

TEST_P(SsspParallelTest, GridGraphMatchesDijkstra)
{
    const auto [pes, use_cache] = GetParam();
    const Graph graph = gridGraph(6);
    const auto expect = shortestPathsSerial(graph, 0);
    core::Machine machine(machineFor(pes));
    const SsspResult result =
        shortestPathsParallel(machine, pes, graph, 0, use_cache);
    for (std::size_t v = 0; v < expect.size(); ++v)
        EXPECT_EQ(result.dist[v], expect[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SsspParallelTest,
    ::testing::Values(SsspParam{1, false}, SsspParam{4, false},
                      SsspParam{8, false}, SsspParam{4, true},
                      SsspParam{16, true}),
    [](const auto &info) {
        return "P" + std::to_string(info.param.pes) +
               (info.param.useCache ? "cached" : "plain");
    });

TEST(SsspTest, QueueConcurrencyScales)
{
    // The Deo-Pang-Lord refutation: with the critical-section-free
    // queue, more PEs make the search faster, not constant-bounded.
    const Graph graph = randomGraph(96, 4, 5);
    core::Machine m1(machineFor(1));
    core::Machine m8(machineFor(8));
    const auto r1 = shortestPathsParallel(m1, 1, graph, 0, false);
    const auto r8 = shortestPathsParallel(m8, 8, graph, 0, false);
    EXPECT_EQ(r1.dist, r8.dist);
    EXPECT_LT(r8.cycles, r1.cycles * 2 / 3)
        << "8 PEs should be well faster than 1";
}

TEST(SsspTest, CacheCutsSharedTraffic)
{
    // The CSR arrays are read-only shared data: cached, they stop
    // costing network traffic after the first touch.  (The graph must
    // fit the 512-word PE cache for re-touches to hit: 32 vertices x 4
    // edges is ~290 CSR words; a graph much larger than the cache
    // makes block fetches a net loss, as the weather/TRED2 codes'
    // block-copy style acknowledges.)
    const Graph graph = randomGraph(24, 8, 13);
    core::Machine plain(machineFor(4));
    core::Machine cached(machineFor(4));
    const auto r_plain =
        shortestPathsParallel(plain, 4, graph, 0, false);
    const auto r_cached =
        shortestPathsParallel(cached, 4, graph, 0, true);
    EXPECT_EQ(r_plain.dist, r_cached.dist);
    // Graph re-reads become cache hits (total sharedRefs is a noisy
    // comparator: the faster cached run spends more requests polling
    // the idle work queue, so we assert the cache behaviour itself).
    EXPECT_GT(r_cached.peTotals.privateRefs,
              r_plain.peTotals.privateRefs);
    for (PEId p = 0; p < 4; ++p) {
        const auto &cstats = cached.peAt(p).cache().stats();
        const std::uint64_t accesses =
            cstats.readHits + cstats.readMisses;
        ASSERT_GT(accesses, 0u);
        EXPECT_GT(cstats.hitRate(), 0.5)
            << "PE " << p << " graph reuse should mostly hit";
    }
}

} // namespace
} // namespace ultra::apps
