/**
 * @file
 * Host-threaded tests of the ultra::rt runtime: fetch-and-phi on real
 * atomics, the critical-section-free parallel queue, the sense-
 * reversing barrier, the readers-writers protocol, and the
 * decentralized scheduler (sections 2.2-2.4, appendix).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "rt/barrier.h"
#include "rt/parallel_for.h"
#include "rt/fetch_and_add.h"
#include "rt/parallel_queue.h"
#include "rt/readers_writers.h"
#include "rt/scheduler.h"

namespace ultra::rt
{
namespace
{

unsigned
threadsFor(unsigned want)
{
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(2u, std::min(want, hw ? hw * 2 : 2));
}

TEST(FetchPhiTest, FetchAddReturnsOldValue)
{
    std::atomic<long> v{10};
    EXPECT_EQ(fetchAdd(v, 5L), 10);
    EXPECT_EQ(v.load(), 15);
}

TEST(FetchPhiTest, SwapAndTestAndSet)
{
    std::atomic<int> v{3};
    EXPECT_EQ(swap(v, 9), 3);
    EXPECT_EQ(v.load(), 9);
    std::atomic<bool> flag{false};
    EXPECT_FALSE(testAndSet(flag));
    EXPECT_TRUE(testAndSet(flag));
}

TEST(FetchPhiTest, GenericPhiMax)
{
    std::atomic<int> v{4};
    const int old_value =
        fetchPhi(v, 9, [](int a, int b) { return a > b ? a : b; });
    EXPECT_EQ(old_value, 4);
    EXPECT_EQ(v.load(), 9);
}

TEST(FetchPhiTest, ConcurrentFetchAddIsExact)
{
    std::atomic<long> v{0};
    const unsigned nthreads = threadsFor(4);
    const long per = 10000;
    std::vector<std::thread> threads;
    std::atomic<long> sum_of_olds{0};
    for (unsigned t = 0; t < nthreads; ++t) {
        threads.emplace_back([&] {
            for (long i = 0; i < per; ++i)
                sum_of_olds.fetch_add(fetchAdd(v, 1L) % 2 == 0 ? 0 : 0);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(v.load(), static_cast<long>(nthreads) * per);
}

TEST(ParallelQueueTest, SerialFifo)
{
    ParallelQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.tryInsert(i));
    int v;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.tryDelete(&v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.tryDelete(&v));
}

TEST(ParallelQueueTest, OverflowAndUnderflow)
{
    ParallelQueue<int> q(2);
    EXPECT_TRUE(q.tryInsert(1));
    EXPECT_TRUE(q.tryInsert(2));
    EXPECT_FALSE(q.tryInsert(3)) << "QueueOverflow expected";
    int v;
    EXPECT_TRUE(q.tryDelete(&v));
    EXPECT_TRUE(q.tryDelete(&v));
    EXPECT_FALSE(q.tryDelete(&v)) << "QueueUnderflow expected";
}

TEST(ParallelQueueTest, WrapAroundFifo)
{
    ParallelQueue<int> q(4);
    int v;
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(q.tryInsert(round * 2));
        EXPECT_TRUE(q.tryInsert(round * 2 + 1));
        ASSERT_TRUE(q.tryDelete(&v));
        EXPECT_EQ(v, round * 2);
        ASSERT_TRUE(q.tryDelete(&v));
        EXPECT_EQ(v, round * 2 + 1);
    }
}

TEST(ParallelQueueTest, OccupancyBounds)
{
    ParallelQueue<int> q(8);
    q.tryInsert(1);
    q.tryInsert(2);
    EXPECT_EQ(q.occupancyLowerBound(), 2);
    EXPECT_EQ(q.occupancyUpperBound(), 2);
    int v;
    q.tryDelete(&v);
    EXPECT_EQ(q.occupancyLowerBound(), 1);
}

TEST(ParallelQueueTest, ConcurrentConservation)
{
    // Producers and consumers hammer the queue; every item is consumed
    // exactly once and nothing is lost.
    ParallelQueue<std::uint64_t> q(64);
    const unsigned producers = threadsFor(4) / 2;
    const unsigned consumers = producers;
    const std::uint64_t per = 5000;
    std::vector<std::thread> threads;
    std::vector<std::vector<std::uint64_t>> got(consumers);
    std::atomic<bool> done{false};

    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < per; ++i) {
                const std::uint64_t item = p * per + i;
                while (!q.tryInsert(item))
                    std::this_thread::yield();
            }
        });
    }
    for (unsigned c = 0; c < consumers; ++c) {
        threads.emplace_back([&, c] {
            // Every successful tryDelete must be recorded: once the
            // claim lands the item belongs to this consumer, so a
            // dropped result is a lost item, not a retry.
            std::uint64_t item;
            while (true) {
                if (q.tryDelete(&item))
                    got[c].push_back(item);
                else if (done.load(std::memory_order_acquire))
                    break;
                else
                    std::this_thread::yield();
            }
        });
    }
    for (unsigned p = 0; p < producers; ++p)
        threads[p].join();
    done.store(true, std::memory_order_release);
    for (unsigned c = 0; c < consumers; ++c)
        threads[producers + c].join();

    std::set<std::uint64_t> all;
    std::size_t total = 0;
    for (const auto &v : got) {
        total += v.size();
        all.insert(v.begin(), v.end());
    }
    EXPECT_EQ(total, producers * per);
    EXPECT_EQ(all.size(), producers * per) << "duplicate consumption";
}

TEST(ParallelQueueTest, PerProducerOrderPreserved)
{
    // FIFO per producer: a consumer must see each producer's items in
    // increasing order.
    ParallelQueue<std::uint64_t> q(32);
    const std::uint64_t per = 20000;
    std::vector<std::uint64_t> seen;
    seen.reserve(per);
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < per; ++i)
            while (!q.tryInsert(i))
                std::this_thread::yield();
    });
    std::uint64_t item;
    while (seen.size() < per) {
        if (q.tryDelete(&item))
            seen.push_back(item);
    }
    producer.join();
    for (std::uint64_t i = 0; i < per; ++i)
        ASSERT_EQ(seen[i], i);
}

TEST(BarrierTest, PhasesStaySynchronized)
{
    const unsigned nthreads = threadsFor(4);
    Barrier barrier(nthreads);
    std::atomic<int> arrivals{0};
    std::atomic<bool> error{false};
    const int phases = 50;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < nthreads; ++t) {
        threads.emplace_back([&] {
            for (int ph = 0; ph < phases; ++ph) {
                arrivals.fetch_add(1);
                barrier.arriveAndWait();
                // Everyone must have arrived for this phase.
                if (arrivals.load() <
                    static_cast<int>(nthreads) * (ph + 1)) {
                    error.store(true);
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(error.load());
    EXPECT_EQ(arrivals.load(), static_cast<int>(nthreads) * phases);
}

TEST(ReadersWritersTest, WritersExcludeReaders)
{
    ReadersWriters lock;
    std::atomic<long> a{0}, b{0};
    std::atomic<bool> torn{false};
    const unsigned readers = threadsFor(4) / 2;
    const int rounds = 2000;
    std::vector<std::thread> threads;
    threads.emplace_back([&] { // writer
        for (int r = 0; r < rounds; ++r) {
            lock.writerLock();
            a.store(r, std::memory_order_relaxed);
            b.store(r, std::memory_order_relaxed);
            lock.writerUnlock();
        }
    });
    for (unsigned t = 0; t < readers; ++t) {
        threads.emplace_back([&] {
            for (int r = 0; r < rounds; ++r) {
                lock.readerLock();
                const long x = a.load(std::memory_order_relaxed);
                const long y = b.load(std::memory_order_relaxed);
                if (x != y)
                    torn.store(true);
                lock.readerUnlock();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(torn.load());
    EXPECT_EQ(lock.activeReaders(), 0);
}

TEST(ReadersWritersTest, WritersAreMutuallyExclusive)
{
    ReadersWriters lock;
    std::atomic<int> inside{0};
    std::atomic<bool> overlap{false};
    const int rounds = 1000;
    std::vector<std::thread> threads;
    for (int w = 0; w < 3; ++w) {
        threads.emplace_back([&] {
            for (int r = 0; r < rounds; ++r) {
                lock.writerLock();
                if (inside.fetch_add(1) != 0)
                    overlap.store(true);
                inside.fetch_sub(1);
                lock.writerUnlock();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(overlap.load());
}

TEST(ParallelForTest, CoversSpaceExactlyOnce)
{
    const std::uint64_t total = 10000;
    std::vector<std::atomic<int>> marks(total);
    parallelFor(total, 64, threadsFor(4),
                [&](std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t i = begin; i < end; ++i)
                        marks[i].fetch_add(1);
                });
    for (std::uint64_t i = 0; i < total; ++i)
        ASSERT_EQ(marks[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, SingleThreadAndOddChunks)
{
    std::atomic<std::uint64_t> sum{0};
    parallelFor(103, 7, 1, [&](std::uint64_t begin, std::uint64_t end) {
        sum.fetch_add(end - begin);
    });
    EXPECT_EQ(sum.load(), 103u);
}

TEST(SchedulerTest, RunsAllSubmittedTasks)
{
    Scheduler sched(threadsFor(4));
    std::atomic<int> ran{0};
    for (int i = 0; i < 500; ++i)
        sched.submit([&] { ran.fetch_add(1); });
    sched.wait();
    EXPECT_EQ(ran.load(), 500);
    EXPECT_EQ(sched.executed(), 500u);
}

TEST(SchedulerTest, TasksCanSpawnTasks)
{
    // Decentralized scheduling: tasks submit subtasks, like the paper's
    // task-spawning programs; wait() covers the transitive closure.
    Scheduler sched(threadsFor(4));
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i) {
        sched.submit([&sched, &ran] {
            ran.fetch_add(1);
            for (int j = 0; j < 10; ++j)
                sched.submit([&ran] { ran.fetch_add(1); });
        });
    }
    sched.wait();
    EXPECT_EQ(ran.load(), 20 + 200);
}

} // namespace
} // namespace ultra::rt
