/**
 * @file
 * Integration tests of the scientific workloads (section 5): parallel
 * runs must numerically agree with their serial references, scale with
 * PEs, and feed the Table-1/2/3 statistics pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/accounts.h"
#include "apps/efficiency_model.h"
#include "apps/montecarlo.h"
#include "apps/multigrid.h"
#include "apps/tred2.h"
#include "apps/weather.h"

namespace ultra::apps
{
namespace
{

core::MachineConfig
machineFor(std::uint32_t pes)
{
    core::MachineConfig cfg = core::MachineConfig::small(
        std::max<std::uint32_t>(16, pes), 2);
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    return cfg;
}

// ---------------------------------------------------------------- TRED2

TEST(Tred2Test, SerialReducesKnownMatrix)
{
    // 2x2: [[a, b], [b, c]] is already "tridiagonal": d = diag, e = b.
    std::vector<double> a = {4.0, 1.0, 1.0, 3.0};
    const Tridiagonal tri = tred2Serial(a, 2);
    EXPECT_NEAR(std::fabs(tri.offdiag[1]), 1.0, 1e-12);
    // Trace preserved.
    EXPECT_NEAR(tri.diag[0] + tri.diag[1], 7.0, 1e-12);
}

TEST(Tred2Test, SerialPreservesInvariants)
{
    for (std::size_t n : {3u, 8u, 16u}) {
        const auto a = randomSymmetric(n, 42 + n);
        const Tridiagonal tri = tred2Serial(a, n);
        EXPECT_TRUE(tridiagonalConsistent(a, n, tri, 1e-10))
            << "n = " << n;
    }
}

TEST(Tred2Test, SerialDiagonalMatrixIsFixedPoint)
{
    const std::size_t n = 6;
    std::vector<double> a(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        a[i * n + i] = static_cast<double>(i + 1);
    const Tridiagonal tri = tred2Serial(a, n);
    for (std::size_t i = 1; i < n; ++i)
        EXPECT_NEAR(tri.offdiag[i], 0.0, 1e-12);
}

class Tred2ParallelTest : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(Tred2ParallelTest, MatchesSerialReference)
{
    const std::uint32_t pes = GetParam();
    const std::size_t n = 12;
    const auto a = randomSymmetric(n, 7);
    const Tridiagonal serial = tred2Serial(a, n);

    core::Machine machine(machineFor(pes));
    const Tred2Result result = tred2Parallel(machine, pes, a, n);

    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(result.tri.diag[i], serial.diag[i], 1e-9)
            << "diag " << i << " with P = " << pes;
    }
    for (std::size_t i = 1; i < n; ++i) {
        EXPECT_NEAR(std::fabs(result.tri.offdiag[i]),
                    std::fabs(serial.offdiag[i]), 1e-9)
            << "offdiag " << i;
    }
    EXPECT_TRUE(tridiagonalConsistent(a, n, result.tri, 1e-9));
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.peTotals.sharedRefs, 0u);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, Tred2ParallelTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Tred2Test, MorePesRunFaster)
{
    const std::size_t n = 16;
    const auto a = randomSymmetric(n, 3);
    core::Machine m1(machineFor(1));
    core::Machine m4(machineFor(4));
    const auto r1 = tred2Parallel(m1, 1, a, n);
    const auto r4 = tred2Parallel(m4, 4, a, n);
    EXPECT_LT(r4.cycles, r1.cycles);
    // ...but not superlinearly.
    EXPECT_GT(r4.cycles * 8, r1.cycles);
}

// -------------------------------------------------------------- Weather

TEST(WeatherTest, SerialConservesHeat)
{
    WeatherConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.steps = 5;
    const auto init = weatherInitial(cfg, 9);
    const double before =
        std::accumulate(init.begin(), init.end(), 0.0);
    const auto out = weatherSerial(cfg, init);
    const double after = std::accumulate(out.begin(), out.end(), 0.0);
    EXPECT_NEAR(before, after, 1e-9) << "periodic diffusion conserves";
}

class WeatherParallelTest : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(WeatherParallelTest, MatchesSerialReference)
{
    const std::uint32_t pes = GetParam();
    WeatherConfig cfg;
    cfg.rows = 12;
    cfg.cols = 8;
    cfg.steps = 3;
    const auto init = weatherInitial(cfg, 11);
    const auto serial = weatherSerial(cfg, init);

    core::Machine machine(machineFor(pes));
    const WeatherResult result =
        weatherParallel(machine, pes, cfg, init);
    ASSERT_EQ(result.grid.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_NEAR(result.grid[i], serial[i], 1e-12) << "cell " << i;
}

INSTANTIATE_TEST_SUITE_P(PeCounts, WeatherParallelTest,
                         ::testing::Values(1u, 3u, 4u, 13u));

TEST(WeatherTest, ReferenceMixLandsNearTable1)
{
    // Program 1's columns: ~0.21 memory refs per instruction, ~0.08
    // shared; we accept a generous band around the paper's values.
    WeatherConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    cfg.steps = 2;
    core::Machine machine(machineFor(8));
    const auto result =
        weatherParallel(machine, 8, cfg, weatherInitial(cfg, 1));
    const auto &t = result.peTotals;
    const double mem_per_instr =
        static_cast<double>(t.sharedRefs + t.privateRefs) /
        static_cast<double>(t.instructions);
    const double shared_per_instr =
        static_cast<double>(t.sharedRefs) /
        static_cast<double>(t.instructions);
    EXPECT_GT(mem_per_instr, 0.12);
    EXPECT_LT(mem_per_instr, 0.32);
    EXPECT_GT(shared_per_instr, 0.04);
    EXPECT_LT(shared_per_instr, 0.14);
}

// ------------------------------------------------------------ Multigrid

TEST(MultigridTest, SerialSolvesPolynomialExactly)
{
    // f = 2[x(1-x) + y(1-y)] has discrete solution u = x(1-x)y(1-y).
    MultigridConfig cfg;
    cfg.level = 4;
    cfg.vCycles = 12;
    const auto rhs = multigridRhs(cfg.level);
    const auto result = multigridSerial(cfg, rhs);
    const std::size_t n = multigridSide(cfg.level);
    const double h = 1.0 / static_cast<double>(n - 1);
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double x = static_cast<double>(j) * h;
            const double y = static_cast<double>(i) * h;
            const double exact =
                x * (1.0 - x) * y * (1.0 - y);
            worst = std::max(worst, std::fabs(result.solution[i * n + j] -
                                              exact));
        }
    }
    EXPECT_LT(worst, 1e-4);
}

TEST(MultigridTest, ResidualDropsWithCycles)
{
    MultigridConfig one;
    one.level = 4;
    one.vCycles = 1;
    MultigridConfig four = one;
    four.vCycles = 4;
    const auto rhs = multigridRhs(one.level);
    const double r1 = multigridSerial(one, rhs).residualNorm;
    const double r4 = multigridSerial(four, rhs).residualNorm;
    EXPECT_LT(r4, r1 * 0.5);
}

class MultigridParallelTest
    : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(MultigridParallelTest, MatchesSerialBitForBit)
{
    // Parallel phases compute each point from the same inputs in the
    // same FP order, so results are identical, not merely close.
    const std::uint32_t pes = GetParam();
    MultigridConfig cfg;
    cfg.level = 3;
    cfg.vCycles = 2;
    const auto rhs = multigridRhs(cfg.level);
    const auto serial = multigridSerial(cfg, rhs);

    core::Machine machine(machineFor(pes));
    const auto result = multigridParallel(machine, pes, cfg, rhs);
    ASSERT_EQ(result.solution.size(), serial.solution.size());
    for (std::size_t i = 0; i < serial.solution.size(); ++i)
        ASSERT_EQ(result.solution[i], serial.solution[i])
            << "cell " << i << " P=" << pes;
}

INSTANTIATE_TEST_SUITE_P(PeCounts, MultigridParallelTest,
                         ::testing::Values(1u, 2u, 5u, 8u));

// ---------------------------------------------------------- Monte Carlo

TEST(MonteCarloTest, SerialTallyCountsAllParticles)
{
    MonteCarloConfig cfg;
    cfg.particles = 200;
    const auto result = monteCarloSerial(cfg);
    const std::int64_t total = std::accumulate(
        result.tally.begin(), result.tally.end(), std::int64_t{0});
    EXPECT_EQ(total, 200);
}

TEST(MonteCarloTest, ParallelTallyMatchesSerialExactly)
{
    // Per-particle determinism: self-scheduled parallel tracking must
    // produce the identical histogram.
    MonteCarloConfig cfg;
    cfg.particles = 150;
    cfg.stepsPerParticle = 24;
    const auto serial = monteCarloSerial(cfg);
    core::Machine machine(machineFor(8));
    const auto parallel = monteCarloParallel(machine, 8, cfg);
    EXPECT_EQ(parallel.tally, serial.tally);
}

TEST(MonteCarloTest, SelfSchedulingBalancesWork)
{
    MonteCarloConfig cfg;
    cfg.particles = 128;
    core::Machine machine(machineFor(8));
    const auto result = monteCarloParallel(machine, 8, cfg);
    // Every PE got a meaningful share (private refs scale with
    // particles tracked).
    for (PEId p = 0; p < 8; ++p) {
        EXPECT_GT(machine.peAt(p).stats().privateRefs,
                  cfg.particles / 8 / 4 * cfg.stepsPerParticle)
            << "PE " << p << " starved";
    }
    (void)result;
}

// -------------------------------------------------------------- Accounts

TEST(AccountsTest, TotalConservedUnderContention)
{
    apps::AccountsConfig cfg;
    cfg.numAccounts = 32;
    cfg.transfersPerPe = 24;
    cfg.hotFraction = 0.5; // heavy collisions on account 0
    core::Machine machine(machineFor(16));
    const auto result = apps::runAccounts(machine, 16, cfg);
    EXPECT_EQ(result.total,
              static_cast<Word>(32) * cfg.initialBalance)
        << "the serialization principle conserves the total";
    EXPECT_GT(result.combined, 0u)
        << "hot-account F&As should combine";
}

TEST(AccountsTest, LockBaselineAlsoConservesButSlower)
{
    apps::AccountsConfig cfg;
    cfg.numAccounts = 32;
    cfg.transfersPerPe = 12;
    core::Machine fa_machine(machineFor(8));
    core::Machine lock_machine(machineFor(8));
    apps::AccountsConfig lock_cfg = cfg;
    lock_cfg.useGlobalLock = true;
    const auto fa = apps::runAccounts(fa_machine, 8, cfg);
    const auto locked = apps::runAccounts(lock_machine, 8, lock_cfg);
    EXPECT_EQ(fa.total, locked.total);
    EXPECT_LT(fa.cycles * 2, locked.cycles)
        << "critical-section-free transfers should be far faster";
}

TEST(AccountsTest, SinglePeMatchesExpectedTotal)
{
    apps::AccountsConfig cfg;
    cfg.numAccounts = 8;
    cfg.transfersPerPe = 10;
    core::Machine machine(machineFor(1));
    const auto result = apps::runAccounts(machine, 1, cfg);
    EXPECT_EQ(result.total, static_cast<Word>(8) * cfg.initialBalance);
}

// ----------------------------------------------------- Efficiency model

TEST(EfficiencyModelTest, RecoversPlantedConstants)
{
    // Synthesize samples from known constants and refit.
    const double a = 120.0, d = 2.5, w = 9.0;
    std::vector<EfficiencySample> samples;
    for (std::uint32_t p : {2u, 4u, 8u, 16u}) {
        for (std::size_t n : {16u, 24u, 32u}) {
            EfficiencySample s;
            s.pes = p;
            s.n = n;
            s.waitingTime =
                w * std::max(static_cast<double>(n),
                             std::sqrt(static_cast<double>(p)));
            s.totalTime = a * static_cast<double>(n) +
                          d * std::pow(static_cast<double>(n), 3) /
                              static_cast<double>(p) +
                          s.waitingTime;
            samples.push_back(s);
        }
    }
    const EfficiencyFit fit = fitEfficiencyModel(samples);
    EXPECT_NEAR(fit.a, a, 1e-6);
    EXPECT_NEAR(fit.d, d, 1e-9);
    EXPECT_NEAR(fit.w, w, 1e-6);
}

TEST(EfficiencyModelTest, EfficiencyShapesMatchPaper)
{
    // Table 2's qualitative shape: efficiency falls with P at fixed N,
    // rises with N at fixed P, and removing W (Table 3) never hurts.
    EfficiencyFit fit;
    fit.a = 100.0;
    fit.d = 3.0;
    fit.w = 10.0;
    EXPECT_GT(fit.efficiency(16, 256, true),
              fit.efficiency(256, 256, true));
    EXPECT_GT(fit.efficiency(64, 512, true),
              fit.efficiency(64, 64, true));
    for (std::uint32_t p : {16u, 64u, 256u}) {
        for (std::size_t n : {64u, 256u}) {
            EXPECT_GE(fit.efficiency(p, n, false) + 1e-12,
                      fit.efficiency(p, n, true));
        }
    }
    // E(1, N) is 1 by definition.
    EXPECT_NEAR(fit.efficiency(1, 128, true), 1.0, 1e-12);
}

TEST(EfficiencyModelTest, FitFromRealRunsPredictsHeldOutRun)
{
    // Fit on a few simulated TRED2 runs, predict a held-out (P, N).
    std::vector<EfficiencySample> samples;
    for (const auto &[p, n] :
         std::vector<std::pair<std::uint32_t, std::size_t>>{
             {1, 8}, {2, 8}, {4, 8}, {1, 12}, {2, 12}, {4, 12}}) {
        core::Machine machine(machineFor(p));
        const auto r =
            tred2Parallel(machine, p, randomSymmetric(n, 5), n);
        samples.push_back({p, n, static_cast<double>(r.cycles),
                           r.waitingTime});
    }
    const EfficiencyFit fit = fitEfficiencyModel(samples);
    EXPECT_GT(fit.a, 0.0);
    EXPECT_GT(fit.d, 0.0);

    core::Machine machine(machineFor(8));
    const std::size_t n = 16;
    const auto held =
        tred2Parallel(machine, 8, randomSymmetric(n, 6), n);
    const double predicted = fit.time(8, n, true);
    const double actual = static_cast<double>(held.cycles);
    // The paper reports predictions within 1%; across our small sizes
    // we accept 35% (overheads are proportionally larger).
    EXPECT_NEAR(predicted / actual, 1.0, 0.35);
}

} // namespace
} // namespace ultra::apps
