/**
 * @file
 * `ultrasim serve` end-to-end over a unix socket (ultra.serve.v1).
 *
 * A real server subprocess, driven through the ultra::inspect client
 * transport: ping/status schema, sim jobs whose "out" files are
 * byte-identical to standalone `ultrasim net --stats-json` runs, the
 * warmed-configuration cache (second same-config job replies
 * "cached": 1 with identical bytes), the per-job Profiler reset (a
 * profiled job's cycle count never accumulates across jobs), and the
 * resilience contract: a client that vanishes mid-job never wedges
 * the server -- the next client attaches to a clean line.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/json_lite.h"
#include "inspect/server.h"

#ifndef ULTRASIM_BIN
#error "build must define ULTRASIM_BIN (see tests/CMakeLists.txt)"
#endif

namespace ultra
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") + "/ultraserve_" +
           name;
}

int
runCommand(const std::string &cmd)
{
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Poll until @p path appears on disk (the serve socket). */
bool
awaitPath(const std::string &path, int timeout_ms)
{
    for (int waited = 0; waited < timeout_ms; waited += 50) {
        if (::access(path.c_str(), F_OK) == 0)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

/** One server subprocess on its own unix socket.  Declare FIRST in a
 *  test body so clients (declared after) die before the destructor's
 *  best-effort shutdown connects. */
class ServeSession
{
  public:
    explicit ServeSession(const std::string &name)
        : sock_(tmpPath(name + ".sock")), log_(tmpPath(name + ".log"))
    {
        std::remove(sock_.c_str());
        runCommand(std::string(ULTRASIM_BIN) + " serve " + sock_ +
                   " > " + log_ + " 2>&1 &");
        bound_ = awaitPath(sock_, 15000);
    }

    ~ServeSession()
    {
        // Best effort: never leave an orphan server holding the
        // socket.  Harmless when a test already shut it down.
        std::string err;
        auto client = inspect::InspectClient::connect(sock_, err);
        if (client != nullptr && client->sendLine("{\"cmd\": "
                                                  "\"shutdown\"}")) {
            std::string line;
            client->recvLineEx(line, 5000);
        }
        std::remove(sock_.c_str());
        std::remove(log_.c_str());
    }

    bool bound() const { return bound_; }
    const std::string &sock() const { return sock_; }
    std::string log() const { return readFile(log_); }

  private:
    std::string sock_;
    std::string log_;
    bool bound_ = false;
};

/** Send one request line and parse the one-line JSON reply. */
jsonlite::JsonValue
roundTrip(inspect::InspectClient &client, const std::string &request,
          int timeout_ms = 60000)
{
    EXPECT_TRUE(client.sendLine(request));
    std::string line;
    const auto rc = client.recvLineEx(line, timeout_ms);
    EXPECT_EQ(rc, inspect::InspectClient::Recv::Line)
        << "no reply to: " << request;
    return jsonlite::parse(line.empty() ? "{}" : line);
}

TEST(ServeTest, PingStatusAndErrorReplies)
{
    ServeSession session("ping");
    ASSERT_TRUE(session.bound()) << "serve socket never bound";
    std::string err;
    auto client = inspect::InspectClient::connect(session.sock(), err);
    ASSERT_NE(client, nullptr) << err;

    jsonlite::JsonValue pong = roundTrip(*client, "{\"cmd\": \"ping\"}");
    EXPECT_EQ(pong["event"].string, "pong");
    EXPECT_EQ(pong["ok"].number, 1.0);
    EXPECT_EQ(pong["schema"].string, "ultra.serve.v1");

    // Garbage and unknown commands produce error replies, not a dead
    // server: the follow-up status must still answer.
    jsonlite::JsonValue bad = roundTrip(*client, "this is not json");
    EXPECT_EQ(bad["event"].string, "error");
    EXPECT_EQ(bad["ok"].number, 0.0);
    bad = roundTrip(*client, "{\"cmd\": \"frobnicate\"}");
    EXPECT_EQ(bad["event"].string, "error");
    // A sim job with an unknown parameter is rejected the same way the
    // CLI rejects an unknown flag.
    bad = roundTrip(*client,
                    "{\"cmd\": \"sim\", \"params\": {\"protz\": 1}}");
    EXPECT_EQ(bad["event"].string, "error");

    jsonlite::JsonValue status =
        roundTrip(*client, "{\"cmd\": \"status\"}");
    EXPECT_EQ(status["event"].string, "status");
    EXPECT_EQ(status["jobs_done"].number, 0.0);
    EXPECT_EQ(status["schema"].string, "ultra.serve.v1");

    jsonlite::JsonValue bye =
        roundTrip(*client, "{\"cmd\": \"shutdown\"}");
    EXPECT_EQ(bye["event"].string, "bye");
}

TEST(ServeTest, JobsMatchStandaloneUltrasimByteForByte)
{
    ServeSession session("jobs");
    ASSERT_TRUE(session.bound()) << "serve socket never bound";
    std::string err;
    auto client = inspect::InspectClient::connect(session.sock(), err);
    ASSERT_NE(client, nullptr) << err;

    struct Job
    {
        const char *params;
        const char *flags;
    };
    // Two different configurations through one persistent server; the
    // second exercises hot-spot traffic and a different seed.
    const Job jobs[] = {
        {"{\"ports\": 16, \"k\": 2, \"m\": 2, \"queue\": 15, "
         "\"cycles\": 400, \"rate\": 0.1, \"seed\": 5}",
         " net --ports 16 --k 2 --m 2 --queue 15 --cycles 400"
         " --rate 0.1 --seed 5"},
        {"{\"ports\": 16, \"k\": 2, \"m\": 2, \"queue\": 15, "
         "\"cycles\": 400, \"rate\": 0.05, \"hot\": 0.25, "
         "\"seed\": 11}",
         " net --ports 16 --k 2 --m 2 --queue 15 --cycles 400"
         " --rate 0.05 --hot 0.25 --seed 11"},
    };
    for (int i = 0; i < 2; ++i) {
        const std::string served =
            tmpPath("job" + std::to_string(i) + ".served.json");
        const std::string standalone =
            tmpPath("job" + std::to_string(i) + ".standalone.json");
        std::ostringstream req;
        req << "{\"cmd\": \"sim\", \"params\": " << jobs[i].params
            << ", \"out\": \"" << served << "\"}";
        const jsonlite::JsonValue reply = roundTrip(*client, req.str());
        ASSERT_EQ(reply["ok"].number, 1.0) << req.str();
        EXPECT_EQ(reply["event"].string, "result");
        EXPECT_EQ(reply["index"].number, static_cast<double>(i));
        ASSERT_TRUE(reply["stats"].isObject());
        ASSERT_TRUE(reply["summary"].isObject());

        ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) + jobs[i].flags +
                             " --stats-json " + standalone +
                             " > /dev/null 2>&1"),
                  0);
        const std::string servedBytes = readFile(served);
        ASSERT_FALSE(servedBytes.empty());
        EXPECT_EQ(servedBytes, readFile(standalone))
            << "job " << i
            << ": served stats diverged from standalone ultrasim";
        std::remove(served.c_str());
        std::remove(standalone.c_str());
    }
    roundTrip(*client, "{\"cmd\": \"shutdown\"}");
}

TEST(ServeTest, WarmedCacheIsByteNeutralAndCounted)
{
    ServeSession session("cache");
    ASSERT_TRUE(session.bound()) << "serve socket never bound";
    std::string err;
    auto client = inspect::InspectClient::connect(session.sock(), err);
    ASSERT_NE(client, nullptr) << err;

    const char *params =
        "{\"ports\": 16, \"k\": 2, \"m\": 2, \"queue\": 15, "
        "\"cycles\": 400, \"rate\": 0.1, \"seed\": 3}";
    std::string outs[2];
    int cached[2] = {-1, -1};
    for (int i = 0; i < 2; ++i) {
        outs[i] = tmpPath("cache" + std::to_string(i) + ".json");
        std::ostringstream req;
        req << "{\"cmd\": \"sim\", \"params\": " << params
            << ", \"out\": \"" << outs[i] << "\"}";
        const jsonlite::JsonValue reply = roundTrip(*client, req.str());
        ASSERT_EQ(reply["ok"].number, 1.0);
        cached[i] = static_cast<int>(reply["cached"].number);
    }
    // First job cold-builds; the refill hands the second a warmed
    // pristine rig -- and a cache hit must not move a single byte.
    EXPECT_EQ(cached[0], 0);
    EXPECT_EQ(cached[1], 1);
    const std::string bytes = readFile(outs[0]);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(readFile(outs[1]), bytes)
        << "warmed rig diverged from cold build";

    const jsonlite::JsonValue status =
        roundTrip(*client, "{\"cmd\": \"status\"}");
    EXPECT_EQ(status["jobs_done"].number, 2.0);
    EXPECT_EQ(status["cache_hits"].number, 1.0);

    std::remove(outs[0].c_str());
    std::remove(outs[1].c_str());
    roundTrip(*client, "{\"cmd\": \"shutdown\"}");
}

TEST(ServeTest, ProfilerResetsBetweenJobs)
{
    ServeSession session("prof");
    ASSERT_TRUE(session.bound()) << "serve socket never bound";
    std::string err;
    auto client = inspect::InspectClient::connect(session.sock(), err);
    ASSERT_NE(client, nullptr) << err;

    const char *req =
        "{\"cmd\": \"sim\", \"prof\": true, \"params\": "
        "{\"ports\": 16, \"k\": 2, \"m\": 2, \"queue\": 15, "
        "\"cycles\": 400, \"rate\": 0.1}}";
    double cycles[2] = {0, 0};
    double arrivalCalls[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        const jsonlite::JsonValue reply = roundTrip(*client, req);
        ASSERT_EQ(reply["ok"].number, 1.0);
        ASSERT_TRUE(reply["prof"].isObject()) << "no prof report";
        cycles[i] = reply["prof"]["cycles"].number;
        arrivalCalls[i] =
            reply["prof"]["phases"]["net.arrival"]["calls"].number;
    }
    // One Profiler serves every job; without the per-job reset the
    // second report would carry the first job's laps on top.  Phase
    // call counts are deterministic per run, so any leak shows up as
    // the second job's count growing past the first.
    EXPECT_GT(cycles[0], 0.0);
    EXPECT_EQ(cycles[1], cycles[0]);
    EXPECT_GT(arrivalCalls[0], 0.0);
    EXPECT_EQ(arrivalCalls[1], arrivalCalls[0])
        << "profiler state leaked across jobs";
    roundTrip(*client, "{\"cmd\": \"shutdown\"}");
}

TEST(ServeTest, ClientDisconnectMidJobDoesNotWedgeServer)
{
    ServeSession session("dc");
    ASSERT_TRUE(session.bound()) << "serve socket never bound";
    const std::string out = tmpPath("dc_job.json");
    std::remove(out.c_str());

    {
        // Client A submits a job and vanishes without reading the
        // reply -- the worst-case disconnect, mid-flight.
        std::string err;
        auto doomed =
            inspect::InspectClient::connect(session.sock(), err);
        ASSERT_NE(doomed, nullptr) << err;
        ASSERT_TRUE(doomed->sendLine(
            "{\"cmd\": \"sim\", \"params\": {\"ports\": 16, "
            "\"k\": 2, \"cycles\": 400}, \"out\": \"" +
            out + "\"}"));
    }

    // Client B must get a clean line and full service.  The connect
    // itself may queue while the abandoned job still runs, so the
    // generous reply timeout inside roundTrip does the waiting.
    std::string err;
    auto client = inspect::InspectClient::connect(session.sock(), err);
    ASSERT_NE(client, nullptr) << err;
    const jsonlite::JsonValue pong =
        roundTrip(*client, "{\"cmd\": \"ping\"}");
    EXPECT_EQ(pong["event"].string, "pong");

    // The abandoned job itself completed server-side: its "out" file
    // landed and the job counter advanced.
    const jsonlite::JsonValue status =
        roundTrip(*client, "{\"cmd\": \"status\"}");
    EXPECT_EQ(status["jobs_done"].number, 1.0);
    EXPECT_FALSE(readFile(out).empty())
        << "abandoned job never finished";

    const jsonlite::JsonValue reply = roundTrip(
        *client,
        "{\"cmd\": \"sim\", \"params\": {\"ports\": 16, \"k\": 2, "
        "\"cycles\": 400}}");
    EXPECT_EQ(reply["ok"].number, 1.0)
        << "server wedged after client disconnect";

    std::remove(out.c_str());
    roundTrip(*client, "{\"cmd\": \"shutdown\"}");
}

} // namespace
} // namespace ultra
