/**
 * @file
 * Tests of the decentralized TaskPool scheduler and the
 * self-scheduling parallelFor (sections 2.2, 2.3) on the simulated
 * machine: every submitted task runs exactly once, spawning works,
 * quiescence terminates all workers, and dynamic chunking covers the
 * iteration space with automatic load balance.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/task_pool.h"

namespace ultra
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

MachineConfig
testConfig()
{
    return MachineConfig::small(16, 2);
}

TEST(TaskPoolTest, EveryTaskRunsExactlyOnce)
{
    Machine machine(testConfig());
    auto pool = core::TaskPool::create(machine, 128);
    const Addr marks = machine.allocShared(64);
    const int tasks = 48;

    core::PoolHandler handler = [&](Pe &pe, Word desc) -> Task {
        co_await pe.compute(10);
        const Word was = co_await pe.fetchAdd(marks + desc, 1);
        (void)was;
    };
    for (PEId p = 0; p < 8; ++p) {
        machine.launch(p, [&, pool, handler, p](Pe &pe) -> Task {
            // Workers double as submitters: PE p seeds tasks
            // p, p+8, p+16 ... (fully decentralized, no master).
            for (Word desc = p; desc < tasks; desc += 8)
                co_await core::poolSubmit(pe, pool, desc);
            co_await core::poolWorker(pe, pool, handler);
        });
    }
    ASSERT_TRUE(machine.run());
    for (Word desc = 0; desc < tasks; ++desc)
        EXPECT_EQ(machine.peek(marks + desc), 1) << "task " << desc;
    EXPECT_EQ(machine.peek(pool.executed), tasks);
    EXPECT_EQ(machine.peek(pool.pending), 0);
}

TEST(TaskPoolTest, TasksSpawnTasks)
{
    // A two-level spawn tree: descriptors encode remaining depth.
    Machine machine(testConfig());
    auto pool = core::TaskPool::create(machine, 256);
    const Addr count = machine.allocShared(1);

    core::PoolHandler handler = [&, pool](Pe &pe, Word depth) -> Task {
        const Word was = co_await pe.fetchAdd(count, 1);
        (void)was;
        if (depth > 0) {
            co_await core::poolSubmit(pe, pool, depth - 1);
            co_await core::poolSubmit(pe, pool, depth - 1);
        }
    };
    machine.launch(0, [&, pool, handler](Pe &pe) -> Task {
        co_await core::poolSubmit(pe, pool, 3); // 1+2+4+8 = 15 tasks
        co_await core::poolWorker(pe, pool, handler);
    });
    for (PEId p = 1; p < 6; ++p) {
        machine.launch(p, [pool, handler](Pe &pe) -> Task {
            co_await core::poolWorker(pe, pool, handler);
        });
    }
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(count), 15);
}

TEST(TaskPoolTest, WorkersExitWhenPoolStartsEmpty)
{
    Machine machine(testConfig());
    auto pool = core::TaskPool::create(machine, 16);
    core::PoolHandler handler = [](Pe &pe, Word) -> Task {
        co_await pe.compute(1);
    };
    for (PEId p = 0; p < 4; ++p) {
        machine.launch(p, [pool, handler](Pe &pe) -> Task {
            co_await core::poolWorker(pe, pool, handler);
        });
    }
    ASSERT_TRUE(machine.run(100000)) << "empty pool must quiesce";
}

TEST(ParallelForTest, CoversIterationSpaceExactlyOnce)
{
    Machine machine(testConfig());
    const Addr counter = machine.allocShared(1);
    const Addr marks = machine.allocShared(256);
    const Word total = 200;

    for (PEId p = 0; p < 8; ++p) {
        machine.launch(p, [&, counter](Pe &pe) -> Task {
            co_await core::parallelFor(
                pe, counter, total, 7,
                [&](Pe &body_pe, Word begin, Word end) -> Task {
                    for (Word i = begin; i < end; ++i) {
                        const Word was =
                            co_await body_pe.fetchAdd(marks + i, 1);
                        (void)was;
                    }
                });
        });
    }
    ASSERT_TRUE(machine.run());
    for (Word i = 0; i < total; ++i)
        EXPECT_EQ(machine.peek(marks + i), 1) << "index " << i;
    EXPECT_GE(machine.peek(counter), static_cast<Word>(total));
}

TEST(ParallelForTest, UnevenWorkBalancesDynamically)
{
    // Iteration cost varies 30x; dynamic chunking keeps PEs busy:
    // no PE should end up with a tiny share of the work.
    Machine machine(testConfig());
    const Addr counter = machine.allocShared(1);
    const Word total = 64;

    for (PEId p = 0; p < 4; ++p) {
        machine.launch(p, [&, counter](Pe &pe) -> Task {
            co_await core::parallelFor(
                pe, counter, total, 1,
                [](Pe &body_pe, Word begin, Word end) -> Task {
                    for (Word i = begin; i < end; ++i)
                        co_await body_pe.compute((i % 8) * 30 + 10);
                });
        });
    }
    ASSERT_TRUE(machine.run());
    std::uint64_t min_busy = ~0ULL, max_busy = 0;
    for (PEId p = 0; p < 4; ++p) {
        const auto busy = machine.peAt(p).stats().busyCycles;
        min_busy = std::min(min_busy, busy);
        max_busy = std::max(max_busy, busy);
    }
    EXPECT_GT(min_busy * 3, max_busy)
        << "self-scheduling should balance uneven iterations";
}

TEST(ParallelForTest, ChunkLargerThanSpace)
{
    Machine machine(testConfig());
    const Addr counter = machine.allocShared(1);
    const Addr sum = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        co_await core::parallelFor(
            pe, counter, 5, 100,
            [&](Pe &body_pe, Word begin, Word end) -> Task {
                const Word was = co_await body_pe.fetchAdd(
                    sum, static_cast<Word>(end - begin));
                (void)was;
            });
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(sum), 5);
}

} // namespace
} // namespace ultra
