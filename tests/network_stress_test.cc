/**
 * @file
 * Property and stress tests of the network across the configuration
 * space: conservation (every request answered exactly once, the
 * message pool drains), the serialization principle for swap chains
 * and fetch-and-add storms under every switch geometry, and stability
 * across repeated bursts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/coord.h"
#include "core/machine.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "net/traffic.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "par/tick_engine.h"

namespace ultra::net
{
namespace
{

struct StressParam
{
    std::uint32_t ports;
    unsigned k;
    unsigned m;
    unsigned d;
    PacketSizing sizing;
    CombinePolicy policy;
    std::uint32_t queueCap;

    std::string
    name() const
    {
        std::string s = "n" + std::to_string(ports) + "k" +
                        std::to_string(k) + "m" + std::to_string(m) +
                        "d" + std::to_string(d);
        s += sizing == PacketSizing::Uniform ? "U" : "C";
        s += policy == CombinePolicy::None         ? "none"
             : policy == CombinePolicy::Homogeneous ? "homo"
                                                     : "full";
        s += "q" + std::to_string(queueCap);
        return s;
    }
};

class NetworkSweepTest : public ::testing::TestWithParam<StressParam>
{
  protected:
    NetSimConfig
    makeConfig() const
    {
        const StressParam &p = GetParam();
        NetSimConfig cfg;
        cfg.numPorts = p.ports;
        cfg.k = p.k;
        cfg.m = p.m;
        cfg.d = p.d;
        cfg.sizing = p.sizing;
        cfg.combinePolicy = p.policy;
        cfg.queueCapacityPackets = p.queueCap;
        cfg.mmPendingCapacityPackets = p.queueCap;
        return cfg;
    }

    mem::MemoryConfig
    makeMemConfig() const
    {
        mem::MemoryConfig mc;
        mc.numModules = GetParam().ports;
        mc.wordsPerModule = 256;
        return mc;
    }
};

TEST_P(NetworkSweepTest, FetchAddStormSerializes)
{
    mem::MemorySystem memory(makeMemConfig());
    Network network(makeConfig(), memory);
    std::vector<std::pair<PEId, Word>> deliveries;
    network.setDeliverCallback(
        [&](PEId pe, std::uint64_t, Word value) {
            deliveries.emplace_back(pe, value);
        });

    const std::uint32_t ports = GetParam().ports;
    const Addr target = 7;
    std::vector<Word> increments(ports);
    for (PEId pe = 0; pe < ports; ++pe) {
        increments[pe] = 1 + static_cast<Word>((pe * 13) % 11);
        while (!network.tryInject(pe, Op::FetchAdd, target,
                                  increments[pe], pe)) {
            network.tick();
        }
    }
    ASSERT_TRUE(network.drain(500000));
    ASSERT_EQ(deliveries.size(), ports);

    Word total = 0;
    for (Word inc : increments)
        total += inc;
    EXPECT_EQ(memory.peek(target), total);

    // Returned values must be the partial sums of some permutation.
    std::vector<std::pair<Word, Word>> seen;
    for (const auto &[pe, value] : deliveries)
        seen.emplace_back(value, increments[pe]);
    std::sort(seen.begin(), seen.end());
    Word running = 0;
    for (const auto &[old_value, inc] : seen) {
        ASSERT_EQ(old_value, running) << GetParam().name();
        running += inc;
    }
}

TEST_P(NetworkSweepTest, SwapChainConserves)
{
    // N swaps of distinct values into one cell: every swap returns the
    // previous occupant, so {returned values} + {final value} must be
    // exactly {initial value} + {swapped-in values} as multisets.
    mem::MemorySystem memory(makeMemConfig());
    Network network(makeConfig(), memory);
    std::vector<Word> returned;
    network.setDeliverCallback(
        [&](PEId, std::uint64_t, Word value) {
            returned.push_back(value);
        });

    const std::uint32_t ports = GetParam().ports;
    const Addr target = 3;
    memory.poke(target, 1'000'000);
    std::multiset<Word> put = {1'000'000};
    for (PEId pe = 0; pe < ports; ++pe) {
        const Word value = 500 + pe;
        put.insert(value);
        while (!network.tryInject(pe, Op::Swap, target, value, pe))
            network.tick();
    }
    ASSERT_TRUE(network.drain(500000));
    ASSERT_EQ(returned.size(), ports);

    std::multiset<Word> got(returned.begin(), returned.end());
    got.insert(memory.peek(target));
    EXPECT_EQ(got, put) << GetParam().name();
}

TEST_P(NetworkSweepTest, RandomMixDrainsAndConserves)
{
    mem::MemorySystem memory(makeMemConfig());
    Network network(makeConfig(), memory);
    std::uint64_t delivered = 0;
    network.setDeliverCallback(
        [&](PEId, std::uint64_t, Word) { ++delivered; });

    Rng rng(GetParam().ports * 31 + GetParam().k);
    const std::uint32_t ports = GetParam().ports;
    std::uint64_t injected = 0;
    // Addresses confined to a small window to force combining and
    // queueing interplay; only F&A mutates, so sums stay checkable.
    std::map<Addr, Word> fa_sums;
    for (int burst = 0; burst < 3; ++burst) {
        for (int round = 0; round < 6; ++round) {
            for (PEId pe = 0; pe < ports; ++pe) {
                if (!rng.bernoulli(0.6))
                    continue;
                const Addr addr = rng.uniformInt(8);
                const double pick = rng.uniformDouble();
                Op op;
                Word data = 0;
                if (pick < 0.5) {
                    op = Op::FetchAdd;
                    data = 1 + static_cast<Word>(rng.uniformInt(5));
                    fa_sums[addr] += data;
                } else {
                    op = Op::Load;
                }
                if (network.tryInject(pe, op, addr, data, injected))
                    ++injected;
                else
                    fa_sums[addr] -= op == Op::FetchAdd ? data : 0;
            }
            network.tick();
        }
        ASSERT_TRUE(network.drain(500000)) << GetParam().name();
        EXPECT_EQ(network.inFlight(), 0u);
    }
    EXPECT_EQ(delivered, injected);
    for (const auto &[addr, sum] : fa_sums)
        EXPECT_EQ(memory.peek(addr), sum) << "addr " << addr;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, NetworkSweepTest,
    ::testing::Values(
        StressParam{16, 2, 2, 1, PacketSizing::ByContent,
                    CombinePolicy::Full, 15},
        StressParam{16, 2, 2, 1, PacketSizing::ByContent,
                    CombinePolicy::None, 15},
        StressParam{64, 4, 4, 1, PacketSizing::Uniform,
                    CombinePolicy::Full, 16},
        StressParam{64, 4, 2, 2, PacketSizing::ByContent,
                    CombinePolicy::Homogeneous, 15},
        StressParam{64, 8, 8, 3, PacketSizing::Uniform,
                    CombinePolicy::Full, 24},
        StressParam{256, 2, 2, 1, PacketSizing::ByContent,
                    CombinePolicy::Full, 6},
        StressParam{64, 2, 2, 1, PacketSizing::ByContent,
                    CombinePolicy::Full, 0},
        StressParam{32, 2, 3, 1, PacketSizing::Uniform,
                    CombinePolicy::Homogeneous, 15}),
    [](const auto &info) { return info.param.name(); });

TEST(NetworkStressTest, TestAndSetExactlyOneWinner)
{
    // The classic mutual-exclusion primitive: of N concurrent
    // test-and-sets, exactly one sees 0.
    NetSimConfig cfg;
    cfg.numPorts = 64;
    cfg.combinePolicy = CombinePolicy::Full;
    mem::MemoryConfig mc;
    mc.numModules = 64;
    mc.wordsPerModule = 64;
    mem::MemorySystem memory(mc);
    Network network(cfg, memory);
    int winners = 0;
    network.setDeliverCallback([&](PEId, std::uint64_t, Word value) {
        winners += value == 0 ? 1 : 0;
    });
    for (PEId pe = 0; pe < 64; ++pe) {
        while (!network.tryInject(pe, Op::TestAndSet, 9, 0, pe))
            network.tick();
    }
    ASSERT_TRUE(network.drain(100000));
    EXPECT_EQ(winners, 1);
    EXPECT_EQ(memory.peek(9), 1);
}

TEST(NetworkStressTest, FetchMaxFindsGlobalMax)
{
    // Associative fetch-and-phi beyond add: concurrent FetchMax ops
    // combine in the switches; the final value is the maximum.
    NetSimConfig cfg;
    cfg.numPorts = 64;
    cfg.combinePolicy = CombinePolicy::Full;
    mem::MemoryConfig mc;
    mc.numModules = 64;
    mc.wordsPerModule = 64;
    mem::MemorySystem memory(mc);
    Network network(cfg, memory);
    network.setDeliverCallback([](PEId, std::uint64_t, Word) {});
    Word expect_max = 0;
    Rng rng(4);
    for (PEId pe = 0; pe < 64; ++pe) {
        const Word v = static_cast<Word>(rng.uniformInt(100000));
        expect_max = std::max(expect_max, v);
        while (!network.tryInject(pe, Op::FetchMax, 2, v, pe))
            network.tick();
    }
    ASSERT_TRUE(network.drain(100000));
    EXPECT_EQ(memory.peek(2), expect_max);
    EXPECT_GT(network.stats().combined, 0u);
}

TEST(NetworkStressTest, LongMessagesDoNotStarveBehindShortOnes)
{
    // Regression for a real starvation found by the barrier benchmark:
    // under saturation, every packet freed at a congested merge point
    // was snatched by 1-packet loads from one input before a 3-packet
    // fetch-and-add on the other input could ever accumulate its 3
    // packets.  Age-fair claims (OutQueue) must let the F&As through.
    NetSimConfig cfg;
    cfg.numPorts = 64;
    cfg.k = 2;
    cfg.combinePolicy = CombinePolicy::None; // no combining relief
    cfg.queueCapacityPackets = 15;
    cfg.mmPendingCapacityPackets = 15;
    mem::MemoryConfig mc;
    mc.numModules = 64;
    mc.wordsPerModule = 1024;
    mem::MemorySystem memory(mc);
    Network network(cfg, memory);

    std::uint64_t fa_done = 0;
    network.setDeliverCallback([&](PEId pe, std::uint64_t, Word) {
        fa_done += pe >= 48 ? 1 : 0;
    });

    // PEs 0-47: an endless storm of 1-packet loads of module 0.
    // PEs 48-63: one 3-packet F&A each, to a different word of the
    // same module.
    std::vector<bool> fa_sent(64, false);
    Cycle guard = 0;
    while (fa_done < 16 && guard++ < 150000) {
        for (PEId pe = 0; pe < 48; ++pe)
            network.tryInject(pe, Op::Load, 0, 0, pe); // best effort
        for (PEId pe = 48; pe < 64; ++pe) {
            if (!fa_sent[pe]) {
                fa_sent[pe] = network.tryInject(
                    pe, Op::FetchAdd, 64 + pe, 1, pe);
            }
        }
        network.tick();
    }
    EXPECT_EQ(fa_done, 16u)
        << "3-packet F&As starved behind the 1-packet load storm";
}

TEST(NetworkStressTest, LargeBarrierWithoutCombiningCompletes)
{
    // End-to-end version of the starvation regression: a 128-PE
    // F&A barrier with combining disabled must still finish.
    core::MachineConfig cfg = core::MachineConfig::small(128, 2);
    cfg.net.combinePolicy = CombinePolicy::None;
    core::Machine machine(cfg);
    auto barrier = core::Barrier::create(machine, 128);
    for (PEId p = 0; p < 128; ++p) {
        machine.launch(p, [barrier](pe::Pe &pe) -> pe::Task {
            Word sense = 0;
            for (int e = 0; e < 3; ++e)
                co_await core::barrierWait(pe, barrier, &sense);
        });
    }
    EXPECT_TRUE(machine.run(2'000'000));
}

TEST(NetworkStressTest, IdealParacomputerSingleCycleSemantics)
{
    // Section 2.1: every PE reads or writes shared memory in one
    // cycle; simultaneous F&As to one cell still serialize correctly.
    NetSimConfig cfg;
    cfg.numPorts = 64;
    cfg.idealParacomputer = true;
    mem::MemoryConfig mc;
    mc.numModules = 64;
    mc.wordsPerModule = 64;
    mem::MemorySystem memory(mc);
    Network network(cfg, memory);
    std::vector<Word> values;
    network.setDeliverCallback([&](PEId, std::uint64_t, Word value) {
        values.push_back(value);
    });
    for (PEId pe = 0; pe < 64; ++pe)
        ASSERT_TRUE(network.tryInject(pe, Op::FetchAdd, 5, 1, pe))
            << "the paracomputer never refuses an injection";
    network.tick(); // inject cycle
    network.tick(); // completion cycle
    EXPECT_EQ(values.size(), 64u);
    EXPECT_EQ(memory.peek(5), 64);
    // All 64 simultaneous F&As completed in one cycle and returned
    // the partial sums 0..63.
    std::sort(values.begin(), values.end());
    for (Word i = 0; i < 64; ++i)
        EXPECT_EQ(values[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(network.inFlight(), 0u);
}

TEST(NetworkStressTest, IdealModeRunsWholeMachine)
{
    core::MachineConfig cfg = core::MachineConfig::small(16, 2);
    cfg.net.idealParacomputer = true;
    core::Machine machine(cfg);
    const Addr counter = machine.allocShared(1);
    machine.launchAll(16, [&](pe::Pe &pe) -> pe::Task {
        for (int i = 0; i < 8; ++i) {
            const Word was = co_await pe.fetchAdd(counter, 1);
            (void)was;
        }
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(counter), 16 * 8);
}

TEST(NetworkStressTest, RepeatedBurstsLeaveNoResidue)
{
    NetSimConfig cfg;
    cfg.numPorts = 32;
    cfg.combinePolicy = CombinePolicy::Full;
    mem::MemoryConfig mc;
    mc.numModules = 32;
    mc.wordsPerModule = 256;
    mem::MemorySystem memory(mc);
    Network network(cfg, memory);
    std::uint64_t delivered = 0;
    network.setDeliverCallback(
        [&](PEId, std::uint64_t, Word) { ++delivered; });
    std::uint64_t injected = 0;
    for (int burst = 0; burst < 20; ++burst) {
        for (PEId pe = 0; pe < 32; ++pe) {
            while (!network.tryInject(pe, Op::FetchAdd,
                                      (burst * 3) % 16, 1, injected)) {
                network.tick();
            }
            ++injected;
        }
        ASSERT_TRUE(network.drain(100000));
        ASSERT_EQ(network.inFlight(), 0u) << "burst " << burst;
    }
    EXPECT_EQ(delivered, injected);
}

// ------------------------------------------------------------------
// Sharded-tick identity under the nastiest configurations
// ------------------------------------------------------------------

/** One observed run: the full stats-registry dump plus the latency
 *  observatory's decomposition-violation count and kill tally. */
struct ObservedRun
{
    std::string json;
    std::uint64_t latViolations = 0;
    std::uint64_t kills = 0;
};

/**
 * Drive @p ncfg with PNI-mediated traffic for @p cycles with a latency
 * observatory attached, the network's arrival phase sharded over
 * @p threads engine workers.  Exercises the staged kill path (PNI
 * retries) and the staged combining paths at once.
 */
ObservedRun
observeRun(const NetSimConfig &ncfg, const TrafficConfig &tcfg,
           unsigned threads, Cycle cycles)
{
    mem::MemoryConfig mc;
    mc.numModules = ncfg.numPorts;
    mc.wordsPerModule = 1 << 10;
    mc.accessTime = ncfg.mmAccessTime;
    mem::MemorySystem memory(mc);
    Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), true);
    PniConfig pcfg;
    pcfg.maxOutstanding = 4;
    PniArray pni(pcfg, network, hash);
    TrafficGenerator traffic(tcfg, pni, network);

    obs::LatencyShape shape;
    shape.stages = network.topology().stages();
    shape.switchesPerStage = network.topology().switchesPerStage();
    shape.mmAccessTime = ncfg.mmAccessTime;
    obs::LatencyObservatory latency(shape);
    network.setLatencyObservatory(&latency);

    obs::Registry registry;
    network.registerStats(registry, "net");
    pni.registerStats(registry, "pni");
    memory.registerStats(registry, "mem");
    latency.registerStats(registry, "lat");

    par::TickEngine engine(threads);
    network.setTickEngine(&engine);

    for (Cycle c = 0; c < cycles; ++c) {
        traffic.tickRange(0, static_cast<PEId>(tcfg.activePes));
        pni.tick();
        network.tick();
    }
    network.drain(20'000);

    ObservedRun run;
    run.json = registry.jsonDump(network.now());
    run.latViolations = latency.violations();
    run.kills = network.stats().killed;
    return run;
}

TEST(NetworkStressTest, HotSpotStormIdenticalAcrossThreads)
{
    // The paper's pathological case: most of the offered load aimed at
    // one hot word, full combining on, tight queues -- maximal
    // cross-unit staging traffic (combined-away frees, decombine
    // fission, wait-buffer churn).  An 8-thread run must reproduce the
    // 1-thread registry dump byte-for-byte, with a clean decomposition
    // invariant in both.
    NetSimConfig ncfg;
    ncfg.numPorts = 64;
    ncfg.k = 2;
    ncfg.sizing = PacketSizing::ByContent;
    ncfg.dataPackets = 3;
    ncfg.queueCapacityPackets = 8;
    ncfg.mmPendingCapacityPackets = 8;
    ncfg.combinePolicy = CombinePolicy::Full;
    TrafficConfig tcfg;
    tcfg.activePes = ncfg.numPorts;
    tcfg.rate = 0.5;
    tcfg.hotFraction = 0.8;
    tcfg.hotAddr = 21;
    tcfg.addrSpaceWords = 1 << 10;
    tcfg.seed = 99;

    const ObservedRun solo = observeRun(ncfg, tcfg, 1, 800);
    ASSERT_FALSE(solo.json.empty());
    EXPECT_EQ(solo.latViolations, 0u)
        << "latency decomposition invariant broken in the serial run";
    const ObservedRun sharded = observeRun(ncfg, tcfg, 8, 800);
    EXPECT_EQ(solo.json, sharded.json)
        << "8-thread hot-spot run diverged from the 1-thread run";
    EXPECT_EQ(sharded.latViolations, 0u)
        << "latency decomposition invariant broken under sharding";
}

TEST(NetworkStressTest, BurroughsKillStormIdenticalAcrossThreads)
{
    // Burroughs mode under saturation: blocked switches kill queued
    // requests, the PNIs retry them after a delay.  Kills are staged
    // per unit during the parallel arrival phase and executed at the
    // sequential merge, so the kill *order* (and hence the retry
    // schedule) must also be thread-count invariant.
    NetSimConfig ncfg;
    ncfg.numPorts = 64;
    ncfg.k = 2;
    ncfg.combinePolicy = CombinePolicy::None;
    ncfg.burroughsKill = true;
    ncfg.queueCapacityPackets = 4;
    ncfg.mmPendingCapacityPackets = 4;
    TrafficConfig tcfg;
    tcfg.activePes = ncfg.numPorts;
    tcfg.rate = 0.6;
    tcfg.hotFraction = 0.5;
    tcfg.hotAddr = 3;
    tcfg.addrSpaceWords = 1 << 9;
    tcfg.seed = 17;

    const ObservedRun solo = observeRun(ncfg, tcfg, 1, 800);
    ASSERT_FALSE(solo.json.empty());
    EXPECT_GT(solo.kills, 0u)
        << "config failed to provoke any Burroughs kills; the staged "
           "kill path went unexercised";
    EXPECT_EQ(solo.latViolations, 0u);
    const ObservedRun sharded = observeRun(ncfg, tcfg, 8, 800);
    EXPECT_EQ(solo.json, sharded.json)
        << "8-thread Burroughs-kill run diverged from the 1-thread run";
    EXPECT_EQ(sharded.latViolations, 0u);
}

} // namespace
} // namespace ultra::net
