/**
 * @file
 * Tests for the serialization-principle verifier (src/check/serial.h):
 * the linearizability judge, the explorer's reduction and detection
 * power (it must catch the broken load-then-store counter), and
 * exhaustive verification of the rt primitive models at small scale.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "check/models.h"
#include "check/serial.h"

namespace ultra::check
{
namespace
{

// ------------------------------------------------------------------
// linearizable(): the judge itself
// ------------------------------------------------------------------

/** Sequential counter spec: FA must return the value before its add. */
struct CounterSpec
{
    std::int64_t value = 0;

    bool
    apply(const HistOp &op)
    {
        if (op.result != value)
            return false;
        value += op.arg;
        return true;
    }
};

HistOp
histOp(unsigned proc, std::int64_t arg, std::int64_t result,
       std::uint64_t invoke, std::uint64_t response)
{
    HistOp op;
    op.proc = proc;
    op.kind = kOpFetchAdd;
    op.arg = arg;
    op.result = result;
    op.invokeStep = invoke;
    op.responseStep = response;
    return op;
}

TEST(LinearizableTest, ConcurrentOpsMayReorder)
{
    // Two overlapping FAs: results consistent with B-then-A only.
    const std::vector<HistOp> history = {
        histOp(0, 1, 2, 1, 4), // returned 2: serialized after B
        histOp(1, 2, 0, 2, 3), // returned 0: serialized first
    };
    EXPECT_TRUE(linearizable(history, CounterSpec{}));
}

TEST(LinearizableTest, RealTimeOrderIsBinding)
{
    // A responded (step 2) before B was invoked (step 3), so A must
    // serialize first -- but the results claim the opposite order.
    const std::vector<HistOp> history = {
        histOp(0, 1, 2, 1, 2), // A: returned 2 (claims to be second)
        histOp(1, 2, 0, 3, 4), // B: returned 0 (claims to be first)
    };
    EXPECT_FALSE(linearizable(history, CounterSpec{}));
}

TEST(LinearizableTest, ImpossibleResultIsRejected)
{
    const std::vector<HistOp> history = {
        histOp(0, 1, 0, 1, 2),
        histOp(1, 1, 0, 3, 4), // lost update: also returned 0
    };
    EXPECT_FALSE(linearizable(history, CounterSpec{}));
}

TEST(LinearizableTest, EmptyHistoryIsLinearizable)
{
    EXPECT_TRUE(linearizable({}, CounterSpec{}));
}

// ------------------------------------------------------------------
// explore(): detection power and reduction
// ------------------------------------------------------------------

TEST(ExploreTest, FetchAddSerializesAtEveryWidth)
{
    for (unsigned procs = 2; procs <= 4; ++procs) {
        const ExploreResult res = explore(*makeFetchAddModel(procs));
        EXPECT_TRUE(res.ok()) << "P=" << procs << ": "
                              << (res.violations.empty()
                                      ? "truncated"
                                      : res.violations.front());
        EXPECT_GT(res.schedules, 0u);
    }
}

TEST(ExploreTest, BrokenCounterIsCaught)
{
    // Load-then-store increments are NOT serializable; the explorer
    // must find the lost-update interleaving (this is the test that
    // proves the harness has teeth).
    const ExploreResult res = explore(*makeBrokenCounter(2));
    ASSERT_FALSE(res.violations.empty());
    EXPECT_FALSE(res.truncated);
}

TEST(ExploreTest, SleepSetsPruneWithoutChangingTheVerdict)
{
    const auto model = makeParallelQueueModel("id", 1);
    ExploreOptions with;
    ExploreOptions without;
    without.sleepSets = false;

    const ExploreResult reduced = explore(*model, with);
    const ExploreResult full = explore(*model, without);

    EXPECT_TRUE(reduced.ok());
    EXPECT_TRUE(full.ok());
    EXPECT_GT(reduced.sleepPruned, 0u);
    EXPECT_LT(reduced.statesExplored, full.statesExplored);
}

TEST(ExploreTest, StateBudgetTruncationIsReported)
{
    ExploreOptions opts;
    opts.maxStates = 10;
    const ExploreResult res = explore(*makeFetchAddModel(4), opts);
    EXPECT_TRUE(res.truncated);
    EXPECT_FALSE(res.ok());
}

// ------------------------------------------------------------------
// The rt primitive models (exhaustive at small P; ultracheck goes
// bigger -- these keep ctest fast)
// ------------------------------------------------------------------

TEST(ModelTest, ParallelQueueSerializesAtP2)
{
    for (const char *shape : {"ii", "id", "dd"}) {
        for (unsigned capacity : {1u, 2u}) {
            const ExploreResult res =
                explore(*makeParallelQueueModel(shape, capacity));
            EXPECT_TRUE(res.ok())
                << shape << " cap=" << capacity << ": "
                << (res.violations.empty() ? "truncated"
                                           : res.violations.front());
        }
    }
}

TEST(ModelTest, ParallelQueueSerializesAtP3Capacity1)
{
    // Three processes against one cell: the TIR/TDR full/empty paths
    // and the round counters all get exercised.
    const ExploreResult res = explore(*makeParallelQueueModel("iid", 1));
    EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                  ? "truncated"
                                  : res.violations.front());
}

/** Strict bounded-FIFO spec, failures included (judge-side only). */
struct StrictFifoSpec
{
    std::deque<std::int64_t> items;
    std::size_t capacity = 0;

    bool
    apply(const HistOp &op)
    {
        if (op.kind == kOpInsert) {
            if (op.result == kQueueFail)
                return items.size() >= capacity;
            if (items.size() >= capacity)
                return false;
            items.push_back(op.arg);
            return true;
        }
        if (op.result == kQueueFail)
            return items.empty();
        if (items.empty() || items.front() != op.result)
            return false;
        items.pop_front();
        return true;
    }
};

TEST(ModelTest, QueueFailureReturnsAreOnlyBoundConsistent)
{
    // Pinned counterexample, found by the exhaustive search on
    // parallel_queue[iid, cap=1]: while p0's insert is in flight it is
    // already counted in #Qu (p1 sees "full") but not yet in #Qi (p2
    // sees "empty").  p1's response precedes p2's invocation, so every
    // serialization must order full-then-empty around one successful
    // insert -- impossible for a serial bounded FIFO.  This is the
    // appendix's intended conservative bound semantics, and why the
    // queue model linearizes successful operations only.
    auto queueOp = [](unsigned proc, OpKind kind, std::int64_t arg,
                      std::int64_t result, std::uint64_t invoke,
                      std::uint64_t response) {
        HistOp op;
        op.proc = proc;
        op.kind = kind;
        op.arg = arg;
        op.result = result;
        op.invokeStep = invoke;
        op.responseStep = response;
        return op;
    };
    const std::vector<HistOp> history = {
        queueOp(0, kOpInsert, 100, 0, 1, 9),
        queueOp(1, kOpInsert, 101, kQueueFail, 7, 7),
        queueOp(2, kOpDelete, 0, kQueueFail, 8, 8),
    };
    EXPECT_FALSE(linearizable(history, StrictFifoSpec{{}, 1}));

    // Dropping the failed returns leaves a trivially serial history.
    const std::vector<HistOp> successes = {history[0]};
    EXPECT_TRUE(linearizable(successes, StrictFifoSpec{{}, 1}));
}

TEST(ModelTest, ReadersWritersExcludeAtP3)
{
    for (const char *shape : {"rw", "ww", "rrw", "rww"}) {
        const ExploreResult res = explore(*makeReadersWritersModel(shape));
        EXPECT_TRUE(res.ok())
            << shape << ": "
            << (res.violations.empty() ? "truncated"
                                       : res.violations.front());
    }
}

TEST(ModelTest, BarrierReusesSafelyAtP3)
{
    const ExploreResult res = explore(*makeBarrierModel(3, 2));
    EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                  ? "truncated"
                                  : res.violations.front());
}

TEST(ModelTest, DepartWindowIsSafeWithStageBarrier)
{
    // The PR-7 receiver-pull protocol: per-unit pull lists + stage-rank
    // barriers keep every queue single-owner and conserve messages and
    // staged frees under every interleaving.
    for (unsigned units : {2u, 3u}) {
        for (unsigned msgs : {1u, 2u}) {
            const ExploreResult res =
                explore(*makeDepartWindowModel(units, msgs, true));
            EXPECT_TRUE(res.ok())
                << "u=" << units << " m=" << msgs << ": "
                << (res.violations.empty() ? "truncated"
                                           : res.violations.front());
        }
    }
}

TEST(ModelTest, DepartWindowWithoutBarrierIsCaught)
{
    // Remove the stage-rank barrier and the explorer must find two
    // units mid-update on the same stage queue (the exact hazard the
    // ownership window exists to exclude).
    const ExploreResult res =
        explore(*makeDepartWindowModel(2, 2, false));
    ASSERT_FALSE(res.violations.empty());
    EXPECT_NE(res.violations.front().find(
                  "mid-update on stage queue"),
              std::string::npos)
        << res.violations.front();
}

// ------------------------------------------------------------------
// randomWalks(): the sampling fallback
// ------------------------------------------------------------------

TEST(RandomWalkTest, SamplesCompleteSchedules)
{
    const ExploreResult res =
        randomWalks(*makeParallelQueueModel("id", 1), 50, 12345);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_EQ(res.schedules, 50u);
}

TEST(RandomWalkTest, FindsTheBrokenCounterBug)
{
    // 2 procs x 2 steps: a random walk hits the bad interleaving fast.
    const ExploreResult res = randomWalks(*makeBrokenCounter(2), 200, 7);
    EXPECT_FALSE(res.violations.empty());
}

} // namespace
} // namespace ultra::check
