/**
 * @file
 * Tests for the ultra::check phase-contract checker: the PhaseChecker
 * recording machinery (always compiled), and -- when the build has
 * ULTRA_CHECK=ON -- the annotations woven into the real components,
 * including an injected cross-shard violation that must be reported
 * with its component path and cycle number.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/phase_check.h"
#include "core/machine.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "pe/task.h"

namespace ultra
{
namespace
{

using check::PhaseChecker;
using check::Violation;
using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

/** RAII reset so tests cannot leak checker state into each other. */
struct CheckerGuard
{
    CheckerGuard()
    {
        PhaseChecker::instance().clear();
        PhaseChecker::instance().setFailFast(false);
    }
    ~CheckerGuard()
    {
        PhaseChecker::instance().endCompute();
        PhaseChecker::unbindShard();
        PhaseChecker::instance().clear();
        PhaseChecker::instance().setOwners(1, {});
    }
};

// ------------------------------------------------------------------
// PhaseChecker core (runs in every build)
// ------------------------------------------------------------------

TEST(PhaseCheckerTest, CleanComputePhaseRecordsNothing)
{
    CheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 0, 1, 1});

    checker.beginCompute(7);
    PhaseChecker::bindShard(0);
    checker.onComputeWrite("test.site", 1); // PE 1 belongs to shard 0
    checker.onComputeRead("test.site", 0);
    PhaseChecker::unbindShard();
    checker.endCompute();
    checker.onCommitOnly("test.commit"); // legal outside compute

    EXPECT_EQ(checker.violationCount(), 0u);
    EXPECT_TRUE(checker.violations().empty());
}

TEST(PhaseCheckerTest, CrossShardWriteIsRecordedWithContext)
{
    CheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 0, 1, 1});

    checker.beginCompute(42);
    PhaseChecker::bindShard(0);
    checker.onComputeWrite("net.pni.request", 3); // PE 3 is shard 1's
    PhaseChecker::unbindShard();
    checker.endCompute();

    ASSERT_EQ(checker.violationCount(), 1u);
    const std::vector<Violation> violations = checker.violations();
    ASSERT_EQ(violations.size(), 1u);
    const Violation &v = violations.front();
    EXPECT_EQ(v.kind, Violation::Kind::CrossShardWrite);
    EXPECT_EQ(v.component, "net.pni.request");
    EXPECT_EQ(v.owner, 3u);
    EXPECT_EQ(v.ownerShard, 1u);
    EXPECT_EQ(v.actingShard, 0);
    EXPECT_EQ(v.cycle, 42u);
    // The report names the component and the cycle.
    EXPECT_NE(v.describe().find("net.pni.request"), std::string::npos);
    EXPECT_NE(v.describe().find("42"), std::string::npos);
}

TEST(PhaseCheckerTest, CommitOnlyDuringComputeIsAViolation)
{
    CheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 1});

    checker.onCommitOnly("net.network.tick"); // fine: not in compute
    EXPECT_EQ(checker.violationCount(), 0u);

    checker.beginCompute(9);
    PhaseChecker::bindShard(1);
    checker.onCommitOnly("net.network.tick");
    PhaseChecker::unbindShard();
    checker.endCompute();

    ASSERT_EQ(checker.violationCount(), 1u);
    const Violation v = checker.violations().front();
    EXPECT_EQ(v.kind, Violation::Kind::CommitOnlyInCompute);
    EXPECT_EQ(v.component, "net.network.tick");
    EXPECT_EQ(v.cycle, 9u);
    EXPECT_EQ(v.actingShard, 1);
}

TEST(PhaseCheckerTest, CrossShardReadIsAViolation)
{
    CheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 1});

    checker.beginCompute(3);
    PhaseChecker::bindShard(0);
    checker.onComputeRead("net.pni.pending", 1);
    PhaseChecker::unbindShard();
    checker.endCompute();

    ASSERT_EQ(checker.violationCount(), 1u);
    EXPECT_EQ(checker.violations().front().kind,
              Violation::Kind::CrossShardRead);
}

TEST(PhaseCheckerTest, UnmappedOwnerIsNotChecked)
{
    CheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 1});

    checker.beginCompute(1);
    PhaseChecker::bindShard(0);
    checker.onComputeWrite("test.site", 77); // beyond the owner map
    checker.onComputeWrite("test.site", Violation::kNoOwner);
    PhaseChecker::unbindShard();
    checker.endCompute();

    EXPECT_EQ(checker.violationCount(), 0u);
}

TEST(PhaseCheckerTest, RecordCapKeepsCounting)
{
    CheckerGuard guard;
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 1});

    checker.beginCompute(1);
    PhaseChecker::bindShard(0);
    const std::size_t total = PhaseChecker::recordLimit() + 10;
    for (std::size_t i = 0; i < total; ++i)
        checker.onComputeWrite("test.flood", 1);
    PhaseChecker::unbindShard();
    checker.endCompute();

    EXPECT_EQ(checker.violationCount(), total);
    EXPECT_EQ(checker.violations().size(), PhaseChecker::recordLimit());

    checker.clear();
    EXPECT_EQ(checker.violationCount(), 0u);
}

// ------------------------------------------------------------------
// Woven annotations (need ULTRA_CHECK=ON)
// ------------------------------------------------------------------

/**
 * Injected contract violation through the real annotation in
 * PniArray::request: a thread bound to shard 0 issues a request for a
 * PE owned by shard 1 during a compute phase.  The checker must report
 * it with the component path and the cycle (acceptance criterion).
 */
TEST(PhaseCheckAnnotationTest, InjectedCrossShardRequestIsDetected)
{
    if (!PhaseChecker::annotationsEnabled())
        GTEST_SKIP() << "build with -DULTRA_CHECK=ON";
    CheckerGuard guard;

    net::NetSimConfig ncfg;
    ncfg.numPorts = 4;
    mem::MemoryConfig mcfg;
    mcfg.numModules = ncfg.numPorts;
    mcfg.wordsPerModule = 1 << 8;
    mem::MemorySystem memory(mcfg);
    net::Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), false);
    net::PniArray pni(net::PniConfig{}, network, hash);

    // PEs 0-1 on shard 0, PEs 2-3 on shard 1.
    pni.setShardMap(2, {0, 0, 1, 1});
    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 0, 1, 1});

    checker.beginCompute(17);
    PhaseChecker::bindShard(0);
    pni.request(2, net::Op::Load, 0, 0); // PE 2: owned by shard 1!
    PhaseChecker::unbindShard();
    checker.endCompute();

    ASSERT_GE(checker.violationCount(), 1u);
    const Violation v = checker.violations().front();
    EXPECT_EQ(v.kind, Violation::Kind::CrossShardWrite);
    EXPECT_EQ(v.component, "net.pni.request");
    EXPECT_EQ(v.owner, 2u);
    EXPECT_EQ(v.ownerShard, 1u);
    EXPECT_EQ(v.actingShard, 0);
    EXPECT_EQ(v.cycle, 17u);
}

/** Commit-only components called during compute must be flagged too. */
TEST(PhaseCheckAnnotationTest, NetworkTickDuringComputeIsDetected)
{
    if (!PhaseChecker::annotationsEnabled())
        GTEST_SKIP() << "build with -DULTRA_CHECK=ON";
    CheckerGuard guard;

    net::NetSimConfig ncfg;
    ncfg.numPorts = 4;
    mem::MemoryConfig mcfg;
    mcfg.numModules = ncfg.numPorts;
    mcfg.wordsPerModule = 1 << 8;
    mem::MemorySystem memory(mcfg);
    net::Network network(ncfg, memory);

    PhaseChecker &checker = PhaseChecker::instance();
    checker.setOwners(2, {0, 0, 1, 1});
    checker.beginCompute(5);
    PhaseChecker::bindShard(0);
    network.tick();
    PhaseChecker::unbindShard();
    checker.endCompute();

    ASSERT_GE(checker.violationCount(), 1u);
    EXPECT_EQ(checker.violations().front().component, "net.network.tick");
    EXPECT_EQ(checker.violations().front().cycle, 5u);
}

/**
 * A real multi-threaded machine run must be violation-free: the
 * compute/commit contract the whole simulator is built on holds on the
 * components as actually woven.
 */
TEST(PhaseCheckAnnotationTest, ParallelMachineRunIsClean)
{
    if (!PhaseChecker::annotationsEnabled())
        GTEST_SKIP() << "build with -DULTRA_CHECK=ON";
    CheckerGuard guard;

    MachineConfig cfg = MachineConfig::small(16, 2);
    cfg.threads = 2;
    Machine machine(cfg);
    const Addr counter = machine.allocShared(1);
    machine.launchAll(8, [&](Pe &pe) -> Task {
        for (int i = 0; i < 4; ++i) {
            (void)co_await pe.fetchAdd(counter, 1);
            co_await pe.compute(5);
        }
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(counter), 32);

    EXPECT_EQ(PhaseChecker::instance().violationCount(), 0u);
    // The count is exported through the obs registry.
    const std::string json = machine.statsJson();
    EXPECT_NE(json.find("check.violations"), std::string::npos);
}

} // namespace
} // namespace ultra
