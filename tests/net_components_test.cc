/**
 * @file
 * Unit tests for the network's building blocks: OutQueue reservation
 * and occupancy accounting, message growth, the MessagePool's id
 * discipline, and packet sizing rules.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "net/out_queue.h"
#include "net/wait_buffer.h"

namespace ultra::net
{
namespace
{

Message *
makeMsg(MessagePool &pool, std::uint32_t packets)
{
    Message *msg = pool.alloc();
    msg->packets = packets;
    return msg;
}

TEST(OutQueueTest, ReserveEnqueueDequeueAccounting)
{
    MessagePool pool;
    OutQueue queue(10);
    EXPECT_TRUE(queue.canAccept(10));
    EXPECT_FALSE(queue.canAccept(11));

    queue.reserve(3);
    EXPECT_EQ(queue.reservedPackets(), 3u);
    EXPECT_TRUE(queue.canAccept(7));
    EXPECT_FALSE(queue.canAccept(8));

    Message *msg = makeMsg(pool, 3);
    queue.enqueue(msg);
    EXPECT_EQ(queue.reservedPackets(), 0u);
    EXPECT_EQ(queue.usedPackets(), 3u);
    EXPECT_EQ(queue.sizeMessages(), 1u);

    Message *out = queue.dequeue();
    EXPECT_EQ(out, msg);
    EXPECT_EQ(queue.usedPackets(), 0u);
    EXPECT_TRUE(queue.empty());
    pool.free(msg);
}

TEST(OutQueueTest, CancelReservation)
{
    OutQueue queue(6);
    queue.reserve(3);
    queue.cancelReservation(3);
    EXPECT_EQ(queue.reservedPackets(), 0u);
    EXPECT_TRUE(queue.canAccept(6));
}

TEST(OutQueueTest, UnboundedAcceptsEverything)
{
    MessagePool pool;
    OutQueue queue(0);
    EXPECT_TRUE(queue.unbounded());
    for (int i = 0; i < 100; ++i) {
        queue.reserve(3);
        queue.enqueue(makeMsg(pool, 3));
    }
    EXPECT_EQ(queue.usedPackets(), 300u);
}

TEST(OutQueueTest, GrowRespectsCapacity)
{
    MessagePool pool;
    OutQueue queue(8);
    queue.reserve(3);
    Message *msg = makeMsg(pool, 3);
    queue.enqueue(msg);
    EXPECT_TRUE(queue.grow(msg, 2));
    EXPECT_EQ(msg->packets, 5u);
    EXPECT_EQ(queue.usedPackets(), 5u);
    EXPECT_FALSE(queue.grow(msg, 4)) << "5 + 4 > 8 must fail";
    EXPECT_EQ(msg->packets, 5u);
    EXPECT_TRUE(queue.grow(msg, 0));
    pool.free(queue.dequeue());
}

TEST(OutQueueTest, FifoOrderAndSearchAccess)
{
    MessagePool pool;
    OutQueue queue(0);
    std::vector<Message *> msgs;
    for (int i = 0; i < 5; ++i) {
        Message *msg = makeMsg(pool, 1);
        msg->paddr = static_cast<Addr>(i);
        queue.reserve(1);
        queue.enqueue(msg);
        msgs.push_back(msg);
    }
    // Middle entries remain searchable ("entries within the middle of
    // the queue may also be accessed").
    EXPECT_EQ(queue.entries()[2]->paddr, 2u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(queue.dequeue(), msgs[i]);
}

TEST(OutQueueTest, DequeueResetsCombineMarker)
{
    MessagePool pool;
    OutQueue queue(0);
    Message *msg = makeMsg(pool, 1);
    msg->combinedAtThisQueue = 3;
    queue.reserve(1);
    queue.enqueue(msg);
    queue.dequeue();
    EXPECT_EQ(msg->combinedAtThisQueue, 0u)
        << "a message may combine again at later switches";
    pool.free(msg);
}

TEST(OutQueueTest, ClaimsAreServedInAgeOrder)
{
    MessagePool pool;
    OutQueue queue(6);
    // Fill the queue completely.
    queue.reserve(6);
    Message *big = makeMsg(pool, 6);
    queue.enqueue(big);

    // A 3-packet claim arrives first, then 1-packet newcomers try.
    const auto claim = queue.openClaim(3);
    EXPECT_FALSE(queue.claimReady(claim));
    EXPECT_FALSE(queue.tryReserve(1))
        << "newcomers must not overtake a waiting claim";

    // Drain: freed space is granted to the claim, not to tryReserve.
    queue.dequeue();
    EXPECT_TRUE(queue.claimReady(claim));
    EXPECT_FALSE(queue.tryReserve(1))
        << "granted claim space is not up for grabs";
    queue.consumeClaim(claim);
    // Claim space became a reservation; 3 packets remain free.
    EXPECT_TRUE(queue.tryReserve(3));
    EXPECT_FALSE(queue.tryReserve(1));
    pool.free(big);
}

TEST(OutQueueTest, PartialGrantsAccumulate)
{
    MessagePool pool;
    OutQueue queue(4);
    queue.reserve(4);
    Message *a = makeMsg(pool, 1);
    Message *b = makeMsg(pool, 3);
    // Occupy 4 packets as 1 + 3.
    queue.enqueue(a);
    queue.enqueue(b);
    const auto claim = queue.openClaim(3);
    queue.dequeue(); // frees 1: partial grant
    EXPECT_FALSE(queue.claimReady(claim));
    EXPECT_FALSE(queue.tryReserve(1)) << "partial grant held";
    queue.dequeue(); // frees 3 more: claim complete
    EXPECT_TRUE(queue.claimReady(claim));
    queue.consumeClaim(claim);
    pool.free(a);
    pool.free(b);
}

TEST(OutQueueTest, CancelClaimReleasesGrants)
{
    OutQueue queue(4);
    queue.reserve(4);
    const auto claim = queue.openClaim(2);
    queue.cancelReservation(4); // space frees; pump grants it
    EXPECT_TRUE(queue.claimReady(claim));
    queue.cancelClaim(claim);
    EXPECT_TRUE(queue.tryReserve(4)) << "cancelled grant returned";
}

TEST(OutQueueTest, SecondClaimWaitsForFirst)
{
    OutQueue queue(4);
    queue.reserve(4);
    const auto first = queue.openClaim(2);
    const auto second = queue.openClaim(2);
    queue.cancelReservation(4);
    EXPECT_TRUE(queue.claimReady(first));
    EXPECT_FALSE(queue.claimReady(second))
        << "strict FIFO: second claim waits for the first to consume";
    queue.consumeClaim(first);
    queue.cancelReservation(2); // pretend the first message passed
    EXPECT_TRUE(queue.claimReady(second));
    queue.consumeClaim(second);
}

TEST(OutQueueTest, BackpressureAtExactCapacity)
{
    MessagePool pool;
    OutQueue queue(4);
    ASSERT_TRUE(queue.tryReserve(4));
    // Exactly full: nothing more fits, not even one packet.
    EXPECT_FALSE(queue.canAccept(1));
    EXPECT_FALSE(queue.tryReserve(1));
    Message *msg = makeMsg(pool, 4);
    queue.enqueue(msg);
    EXPECT_FALSE(queue.tryReserve(1));
    // Draining the single message frees the whole capacity at once.
    queue.dequeue();
    EXPECT_TRUE(queue.canAccept(4));
    EXPECT_TRUE(queue.tryReserve(4));
    pool.free(msg);
}

TEST(OutQueueTest, GrowOnFullQueueFailsWithoutSideEffects)
{
    // Combine-on-full: upgrading a queued 1-packet load into a
    // data-carrying request must fail cleanly when the extra packets
    // do not fit, leaving the message and the accounting untouched.
    MessagePool pool;
    OutQueue queue(3);
    queue.reserve(3);
    Message *a = makeMsg(pool, 1);
    Message *b = makeMsg(pool, 2);
    queue.enqueue(a);
    queue.enqueue(b);
    EXPECT_FALSE(queue.grow(a, 2));
    EXPECT_EQ(a->packets, 1u);
    EXPECT_EQ(queue.usedPackets(), 3u);
    // Freeing b's packets makes the same grow succeed.
    queue.dequeue(); // a leaves (head)
    ASSERT_TRUE(queue.tryReserve(1));
    queue.enqueue(a); // re-admit behind b
    queue.dequeue(); // b leaves
    EXPECT_TRUE(queue.grow(a, 2));
    EXPECT_EQ(a->packets, 3u);
    EXPECT_EQ(queue.usedPackets(), 3u);
    pool.free(a);
    pool.free(b);
}

TEST(OutQueueTest, DrainPreservesEnqueueOrderUnderClaims)
{
    // Messages admitted through the claim path must still drain in
    // arrival order relative to messages admitted by tryReserve.
    MessagePool pool;
    OutQueue queue(4);
    ASSERT_TRUE(queue.tryReserve(4));
    Message *first = makeMsg(pool, 4);
    queue.enqueue(first);

    const auto claim = queue.openClaim(3);
    queue.dequeue(); // first leaves; the claim absorbs the space
    ASSERT_TRUE(queue.claimReady(claim));
    queue.consumeClaim(claim);
    Message *second = makeMsg(pool, 3);
    queue.enqueue(second);
    ASSERT_TRUE(queue.tryReserve(1));
    Message *third = makeMsg(pool, 1);
    queue.enqueue(third);

    EXPECT_EQ(queue.dequeue(), second);
    EXPECT_EQ(queue.dequeue(), third);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.usedPackets(), 0u);
    pool.free(first);
    pool.free(second);
    pool.free(third);
}

// ------------------------------------------------------------------
// WaitBuffer
// ------------------------------------------------------------------

WaitEntry
makeEntry(std::uint64_t wait_key, std::uint64_t satisfied_id)
{
    WaitEntry entry;
    entry.waitKey = wait_key;
    entry.satisfiedId = satisfied_id;
    return entry;
}

TEST(WaitBufferTest, CapacityGatesFullNotInsert)
{
    WaitBuffer buffer(2);
    EXPECT_FALSE(buffer.full());
    buffer.insert(makeEntry(1, 10));
    EXPECT_FALSE(buffer.full());
    buffer.insert(makeEntry(2, 20));
    // The switch checks full() before combining; at capacity no new
    // combine may be recorded.
    EXPECT_TRUE(buffer.full());
    EXPECT_EQ(buffer.size(), 2u);

    std::vector<WaitEntry> out;
    EXPECT_EQ(buffer.takeMatches(1, out), 1u);
    EXPECT_FALSE(buffer.full());
}

TEST(WaitBufferTest, UnboundedNeverFull)
{
    WaitBuffer buffer(0);
    for (int i = 0; i < 100; ++i)
        buffer.insert(makeEntry(static_cast<std::uint64_t>(i), 0));
    EXPECT_FALSE(buffer.full());
    EXPECT_EQ(buffer.size(), 100u);
}

TEST(WaitBufferTest, TakeMatchesDrainsInInsertionOrder)
{
    // Multi-way combining (the ablation knob) relies on matched
    // entries firing in their serialization (insertion) order.
    WaitBuffer buffer;
    buffer.insert(makeEntry(7, 1));
    buffer.insert(makeEntry(5, 2));
    buffer.insert(makeEntry(7, 3));
    buffer.insert(makeEntry(7, 4));

    std::vector<WaitEntry> out;
    EXPECT_EQ(buffer.takeMatches(7, out), 3u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].satisfiedId, 1u);
    EXPECT_EQ(out[1].satisfiedId, 3u);
    EXPECT_EQ(out[2].satisfiedId, 4u);
    // Non-matching entries stay behind.
    EXPECT_EQ(buffer.size(), 1u);
    EXPECT_EQ(buffer.entries().front().waitKey, 5u);

    // A second search for the same key finds nothing.
    out.clear();
    EXPECT_EQ(buffer.takeMatches(7, out), 0u);
    EXPECT_TRUE(out.empty());
}

TEST(WaitBufferTest, TakeMatchesAppendsToExistingOutput)
{
    WaitBuffer buffer;
    buffer.insert(makeEntry(3, 30));
    std::vector<WaitEntry> out;
    out.push_back(makeEntry(9, 90)); // pre-existing content
    EXPECT_EQ(buffer.takeMatches(3, out), 1u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].satisfiedId, 30u);
}

TEST(MessagePoolTest, IdsAreUniqueAcrossRecycling)
{
    // Wait-buffer keys are message ids; recycling an id could misroute
    // a reply, so ids must never repeat even when slots do.
    MessagePool pool;
    std::set<std::uint64_t> ids;
    std::vector<Message *> live;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 40; ++i) {
            Message *msg = pool.alloc();
            ASSERT_TRUE(ids.insert(msg->id).second)
                << "id " << msg->id << " reused";
            live.push_back(msg);
        }
        for (Message *msg : live)
            pool.free(msg);
        live.clear();
    }
    EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(MessagePoolTest, AllocResetsFields)
{
    MessagePool pool;
    Message *a = pool.alloc();
    a->paddr = 99;
    a->timesCombined = 7;
    a->isReply = true;
    pool.free(a);
    Message *b = pool.alloc(); // likely the same slot
    EXPECT_EQ(b->paddr, kBadAddr);
    EXPECT_EQ(b->timesCombined, 0u);
    EXPECT_FALSE(b->isReply);
    pool.free(b);
}

TEST(PacketSizingTest, ByContentFollowsDataDirection)
{
    NetSimConfig cfg;
    cfg.sizing = PacketSizing::ByContent;
    cfg.dataPackets = 3;
    // Requests: loads carry no data, stores and F&As do.
    EXPECT_EQ(cfg.packetsFor(Op::Load, false), 1u);
    EXPECT_EQ(cfg.packetsFor(Op::Store, false), 3u);
    EXPECT_EQ(cfg.packetsFor(Op::FetchAdd, false), 3u);
    EXPECT_EQ(cfg.packetsFor(Op::TestAndSet, false), 1u);
    // Replies: loads and F&As return data, store acks do not.
    EXPECT_EQ(cfg.packetsFor(Op::Load, true), 3u);
    EXPECT_EQ(cfg.packetsFor(Op::Store, true), 1u);
    EXPECT_EQ(cfg.packetsFor(Op::FetchAdd, true), 3u);
}

TEST(PacketSizingTest, UniformIgnoresContent)
{
    NetSimConfig cfg;
    cfg.sizing = PacketSizing::Uniform;
    cfg.m = 4;
    for (Op op : {Op::Load, Op::Store, Op::FetchAdd}) {
        EXPECT_EQ(cfg.packetsFor(op, false), 4u);
        EXPECT_EQ(cfg.packetsFor(op, true), 4u);
    }
}

} // namespace
} // namespace ultra::net
