/**
 * @file
 * Integration tests of the assembled machine (Figure 1) and the
 * critical-section-free coordination library (section 2.3, appendix):
 * the parallel queue with TIR/TDR, the fetch-and-add barrier, and the
 * readers-writers protocol, all running on the simulated network.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/coord.h"
#include "core/machine.h"

namespace ultra
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

MachineConfig
testConfig(std::uint32_t ports = 16)
{
    return MachineConfig::small(ports, 2);
}

TEST(MachineTest, HashedAddressingIsTransparent)
{
    MachineConfig cfg = testConfig();
    cfg.hashAddresses = true;
    Machine machine(cfg);
    const Addr a = machine.allocShared(16);
    machine.poke(a + 3, 99);
    Word v = -1;
    machine.launch(0, [&](Pe &pe) -> Task {
        v = co_await pe.load(a + 3);
        co_await pe.store(a + 4, 55);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(v, 99);
    EXPECT_EQ(machine.peek(a + 4), 55);
}

TEST(MachineTest, AllocSharedIsDisjoint)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(10, "a");
    const Addr b = machine.allocShared(5, "b");
    EXPECT_GE(b, a + 10);
}

TEST(MachineTest, ConcurrentFetchAddIndexDispensing)
{
    // The section-2.2 example: PEs fetch-and-add a shared array index;
    // each obtains a distinct element and the index gets the total.
    Machine machine(testConfig());
    const Addr index = machine.allocShared(1);
    const Addr owner = machine.allocShared(256);
    const int per_pe = 8;
    for (PEId p = 0; p < 16; ++p) {
        machine.launch(p, [&, p](Pe &pe) -> Task {
            for (int i = 0; i < per_pe; ++i) {
                const Word slot = co_await pe.fetchAdd(index, 1);
                co_await pe.store(owner + slot,
                                  static_cast<Word>(p) + 1);
            }
        });
    }
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(index), 16 * per_pe);
    for (Addr s = 0; s < 16 * per_pe; ++s)
        EXPECT_NE(machine.peek(owner + s), 0) << "slot " << s;
}

TEST(CoordTest, TirClaimsRespectBound)
{
    Machine machine(testConfig());
    const Addr s = machine.allocShared(1);
    const Word bound = 10;
    int successes = 0;
    for (PEId p = 0; p < 16; ++p) {
        machine.launch(p, [&](Pe &pe) -> Task {
            bool ok = false;
            co_await core::tirTask(pe, s, 1, bound, &ok);
            if (ok)
                ++successes;
        });
    }
    ASSERT_TRUE(machine.run());
    // Exactly `bound` of the 16 claims fit, and S ends at the bound.
    EXPECT_EQ(successes, 10);
    EXPECT_EQ(machine.peek(s), bound);
}

TEST(CoordTest, TdrRefusesWhenEmpty)
{
    Machine machine(testConfig());
    const Addr s = machine.allocShared(1);
    machine.poke(s, 3);
    int successes = 0;
    for (PEId p = 0; p < 8; ++p) {
        machine.launch(p, [&](Pe &pe) -> Task {
            bool ok = false;
            co_await core::tdrTask(pe, s, 1, &ok);
            if (ok)
                ++successes;
        });
    }
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(successes, 3);
    EXPECT_EQ(machine.peek(s), 0);
}

TEST(CoordTest, QueueInsertThenDeleteFifo)
{
    Machine machine(testConfig());
    auto queue = core::ParallelQueue::create(machine, 32);
    std::vector<Word> got;
    machine.launch(0, [&](Pe &pe) -> Task {
        bool flag = false;
        for (Word v = 10; v < 15; ++v) {
            co_await core::queueInsert(pe, queue, v, &flag);
            EXPECT_FALSE(flag);
        }
        for (int i = 0; i < 5; ++i) {
            Word v = -1;
            co_await core::queueDelete(pe, queue, &v, &flag);
            EXPECT_FALSE(flag);
            got.push_back(v);
        }
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(got, (std::vector<Word>{10, 11, 12, 13, 14}));
}

TEST(CoordTest, QueueOverflowAndUnderflowFlags)
{
    Machine machine(testConfig());
    auto queue = core::ParallelQueue::create(machine, 2);
    machine.launch(0, [&](Pe &pe) -> Task {
        bool flag = false;
        co_await core::queueInsert(pe, queue, 1, &flag);
        EXPECT_FALSE(flag);
        co_await core::queueInsert(pe, queue, 2, &flag);
        EXPECT_FALSE(flag);
        co_await core::queueInsert(pe, queue, 3, &flag);
        EXPECT_TRUE(flag) << "insert into a full queue must overflow";
        Word v;
        co_await core::queueDelete(pe, queue, &v, &flag);
        EXPECT_FALSE(flag);
        co_await core::queueDelete(pe, queue, &v, &flag);
        EXPECT_FALSE(flag);
        co_await core::queueDelete(pe, queue, &v, &flag);
        EXPECT_TRUE(flag) << "delete from an empty queue must underflow";
    });
    ASSERT_TRUE(machine.run());
}

TEST(CoordTest, ConcurrentQueueConservesItems)
{
    // Thousands of concurrent inserts and deletes with no critical
    // section: every inserted item is deleted exactly once.
    Machine machine(testConfig());
    auto queue = core::ParallelQueue::create(machine, 64);
    const int producers = 8, consumers = 8, per_pe = 12;
    std::vector<Word> consumed;
    for (PEId p = 0; p < producers; ++p) {
        machine.launch(p, [&, p](Pe &pe) -> Task {
            for (int i = 0; i < per_pe; ++i) {
                bool overflow = true;
                const Word item =
                    static_cast<Word>(p) * 1000 + i;
                while (overflow) {
                    co_await core::queueInsert(pe, queue, item,
                                               &overflow);
                }
            }
        });
    }
    for (PEId p = producers; p < producers + consumers; ++p) {
        machine.launch(p, [&](Pe &pe) -> Task {
            for (int i = 0; i < per_pe; ++i) {
                bool underflow = true;
                Word item = -1;
                while (underflow) {
                    co_await core::queueDelete(pe, queue, &item,
                                               &underflow);
                }
                consumed.push_back(item);
            }
        });
    }
    ASSERT_TRUE(machine.run());
    ASSERT_EQ(consumed.size(),
              static_cast<std::size_t>(producers * per_pe));
    std::set<Word> unique(consumed.begin(), consumed.end());
    EXPECT_EQ(unique.size(), consumed.size()) << "item consumed twice";
    // Queue ends empty.
    EXPECT_EQ(machine.peek(queue.upper), 0);
    EXPECT_EQ(machine.peek(queue.lower), 0);
}

TEST(CoordTest, QueueFifoAcrossWraparound)
{
    // The "basic first-in first-out property" with a queue smaller
    // than the item count: one producer, one consumer, strict order.
    Machine machine(testConfig());
    auto queue = core::ParallelQueue::create(machine, 4);
    const int items = 20;
    std::vector<Word> got;
    machine.launch(0, [&](Pe &pe) -> Task {
        for (Word v = 0; v < items; ++v) {
            bool overflow = true;
            while (overflow)
                co_await core::queueInsert(pe, queue, v, &overflow);
        }
    });
    machine.launch(1, [&](Pe &pe) -> Task {
        for (int i = 0; i < items; ++i) {
            bool underflow = true;
            Word v = -1;
            while (underflow)
                co_await core::queueDelete(pe, queue, &v, &underflow);
            got.push_back(v);
        }
    });
    ASSERT_TRUE(machine.run());
    for (int i = 0; i < items; ++i)
        EXPECT_EQ(got[i], i) << "FIFO violated at " << i;
}

TEST(CoordTest, BarrierSynchronizesPhases)
{
    Machine machine(testConfig());
    const std::uint32_t pes = 8;
    auto barrier = core::Barrier::create(machine, pes);
    const Addr phase_count = machine.allocShared(4);
    bool phase_error = false;
    for (PEId p = 0; p < pes; ++p) {
        machine.launch(p, [&, p](Pe &pe) -> Task {
            Word sense = 0;
            for (int phase = 0; phase < 3; ++phase) {
                co_await pe.fetchAdd(phase_count + phase, 1);
                // Uneven work so PEs arrive staggered.
                co_await pe.compute((p + 1) * 7);
                co_await core::barrierWait(pe, barrier, &sense);
                // After the barrier everyone must have checked in.
                const Word arrived =
                    co_await pe.load(phase_count + phase);
                if (arrived != static_cast<Word>(pes))
                    phase_error = true;
            }
        });
    }
    ASSERT_TRUE(machine.run());
    EXPECT_FALSE(phase_error);
}

TEST(CoordTest, ReadersWritersExclusion)
{
    Machine machine(testConfig());
    auto lock = core::RwLock::create(machine);
    const Addr data = machine.allocShared(2); // two cells, kept equal
    bool torn_read = false;
    const int writers = 3, readers = 5, rounds = 6;
    for (PEId p = 0; p < writers; ++p) {
        machine.launch(p, [&, p](Pe &pe) -> Task {
            for (int r = 0; r < rounds; ++r) {
                co_await core::writerLock(pe, lock);
                const Word v = static_cast<Word>(p * 100 + r);
                co_await pe.store(data, v);
                co_await pe.compute(20);
                co_await pe.store(data + 1, v);
                co_await core::writerUnlock(pe, lock);
                co_await pe.compute(10);
            }
        });
    }
    for (PEId p = writers; p < writers + readers; ++p) {
        machine.launch(p, [&](Pe &pe) -> Task {
            for (int r = 0; r < rounds; ++r) {
                co_await core::readerLock(pe, lock);
                const Word a = co_await pe.load(data);
                const Word b = co_await pe.load(data + 1);
                if (a != b)
                    torn_read = true;
                co_await core::readerUnlock(pe, lock);
                co_await pe.compute(5);
            }
        });
    }
    ASSERT_TRUE(machine.run());
    EXPECT_FALSE(torn_read)
        << "a reader observed a half-finished write";
}

TEST(MachineTest, StatsReportSummarizesRun)
{
    Machine machine(testConfig());
    const Addr counter = machine.allocShared(1);
    machine.launchAll(8, [&](Pe &pe) -> Task {
        for (int i = 0; i < 4; ++i) {
            const Word was = co_await pe.fetchAdd(counter, 1);
            (void)was;
            co_await pe.compute(10);
        }
    });
    ASSERT_TRUE(machine.run());
    const std::string report = machine.statsReport();
    EXPECT_NE(report.find("8 PEs engaged"), std::string::npos);
    EXPECT_NE(report.find("instructions"), std::string::npos);
    EXPECT_NE(report.find("round trip mean"), std::string::npos);
    EXPECT_NE(report.find("hottest module"), std::string::npos);
}

TEST(MachineTest, PaperTable1ConfigRuns)
{
    // The full 4096-port machine is constructible and a few PEs can
    // talk across it (only touched switches are simulated).
    core::MachineConfig cfg = core::MachineConfig::paperTable1();
    cfg.wordsPerModule = 64;
    Machine machine(cfg);
    EXPECT_EQ(machine.network().topology().stages(), 6u);
    const Addr ctr = machine.allocShared(1);
    for (PEId p = 0; p < 8; ++p) {
        machine.launch(p, [&](Pe &pe) -> Task {
            co_await pe.fetchAdd(ctr, 1);
        });
    }
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(ctr), 8);
}

} // namespace
} // namespace ultra
