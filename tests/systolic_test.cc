/**
 * @file
 * Tests of the systolic ToMM-queue hardware model (section 3.3.1,
 * Figure 4): the paper's four observations plus combining-pair
 * simultaneous exit, under the even-insertion-gap discipline the paper
 * notes.
 */

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "net/systolic_queue.h"

namespace ultra::net
{
namespace
{

SystolicItem
item(std::uint64_t key, std::uint64_t seq)
{
    return SystolicItem{key, seq * 10, seq};
}

TEST(SystolicQueueTest, PassThroughWhenEmpty)
{
    SystolicQueue q(8, false);
    auto r0 = q.step(item(1, 0), true);
    EXPECT_TRUE(r0.accepted);
    EXPECT_FALSE(r0.exited.has_value());
    // The item hops to the right column next cycle and exits the one
    // after: a short fixed latency when the queue is empty.
    auto r1 = q.step(std::nullopt, true);
    auto r2 = q.step(std::nullopt, true);
    const bool exited_by_2 =
        r1.exited.has_value() || r2.exited.has_value();
    EXPECT_TRUE(exited_by_2);
    EXPECT_TRUE(q.empty());
}

TEST(SystolicQueueTest, FifoUnderEvenGapInsertions)
{
    // Insert with a gap of 2 cycles (the paper: "the number of cycles
    // between successive insertions must be even"), drain continuously,
    // and check strict FIFO.
    SystolicQueue q(16, false);
    std::uint64_t next_seq = 0;
    std::uint64_t expect_seq = 0;
    Rng rng(5);
    for (int cycle = 0; cycle < 4000; ++cycle) {
        std::optional<SystolicItem> input;
        if (cycle % 2 == 0 && next_seq < 500 && rng.bernoulli(0.6))
            input = item(100 + next_seq, next_seq);
        const bool ready = rng.bernoulli(0.7);
        auto r = q.step(input, ready);
        if (input && r.accepted)
            ++next_seq;
        if (r.exited) {
            ASSERT_EQ(r.exited->seq, expect_seq);
            ++expect_seq;
        }
    }
    // Drain the tail.
    for (int cycle = 0; cycle < 200; ++cycle) {
        auto r = q.step(std::nullopt, true);
        if (r.exited) {
            ASSERT_EQ(r.exited->seq, expect_seq);
            ++expect_seq;
        }
    }
    EXPECT_EQ(expect_seq, next_seq);
    EXPECT_TRUE(q.empty());
}

TEST(SystolicQueueTest, OneExitPerCycleWhenBacklogged)
{
    SystolicQueue q(16, false);
    // Fill with 6 items (gap 2).
    std::uint64_t inserted = 0;
    for (int cycle = 0; cycle < 12; ++cycle) {
        std::optional<SystolicItem> input;
        if (cycle % 2 == 0)
            input = item(cycle, inserted);
        auto r = q.step(input, false);
        if (input && r.accepted)
            ++inserted;
    }
    ASSERT_EQ(inserted, 6u);
    // Let the columns settle, then drain: the 6 items must come out
    // in order within items + height cycles (near one per cycle).
    for (int i = 0; i < 16; ++i)
        q.step(std::nullopt, false);
    std::uint64_t got = 0;
    int cycles = 0;
    while (got < 6 && cycles < 6 + 16) {
        auto r = q.step(std::nullopt, true);
        ++cycles;
        if (r.exited) {
            EXPECT_EQ(r.exited->seq, got);
            ++got;
        }
    }
    EXPECT_EQ(got, 6u);
    EXPECT_LE(cycles, 6 + 16);
}

TEST(SystolicQueueTest, StallsWhenReceiverNotReady)
{
    SystolicQueue q(8, false);
    q.step(item(1, 0), false);
    for (int i = 0; i < 10; ++i) {
        auto r = q.step(std::nullopt, false);
        EXPECT_FALSE(r.exited.has_value());
    }
    EXPECT_EQ(q.occupancy(), 1u);
}

TEST(SystolicQueueTest, RejectsWhenFull)
{
    SystolicQueue q(2, false);
    int accepted = 0;
    for (int i = 0; i < 20; ++i) {
        auto r = q.step(item(i, i), false);
        accepted += r.accepted;
    }
    // Capacity is bounded by the column structure; nothing exits, so
    // acceptance must stop.
    EXPECT_LE(accepted, 4);
    EXPECT_GE(accepted, 2);
}

TEST(SystolicQueueTest, MatchingPairExitsSimultaneously)
{
    SystolicQueue q(8, true);
    // Insert an item, let it settle into the right column, then insert
    // a matching one: the second must end up in the match column and
    // the pair must exit in the same cycle.
    q.step(item(7, 0), false);
    q.step(std::nullopt, false);
    q.step(item(7, 1), false);
    // Allow the climb/compare to happen.
    for (int i = 0; i < 4; ++i)
        q.step(std::nullopt, false);
    bool paired = false;
    for (int i = 0; i < 10 && !paired; ++i) {
        auto r = q.step(std::nullopt, true);
        if (r.exited) {
            EXPECT_TRUE(r.partner.has_value())
                << "matched pair split on exit";
            if (r.partner) {
                EXPECT_EQ(r.exited->key, r.partner->key);
                EXPECT_EQ(r.exited->seq, 0u);
                EXPECT_EQ(r.partner->seq, 1u);
                paired = true;
            }
        }
    }
    EXPECT_TRUE(paired);
    EXPECT_TRUE(q.empty());
}

TEST(SystolicQueueTest, NonMatchingKeysDoNotPair)
{
    SystolicQueue q(8, true);
    q.step(item(1, 0), false);
    q.step(std::nullopt, false);
    q.step(item(2, 1), false);
    for (int i = 0; i < 4; ++i)
        q.step(std::nullopt, false);
    int exits = 0;
    for (int i = 0; i < 20; ++i) {
        auto r = q.step(std::nullopt, true);
        if (r.exited) {
            EXPECT_FALSE(r.partner.has_value());
            ++exits;
        }
    }
    EXPECT_EQ(exits, 2);
}

TEST(SystolicQueueTest, MatchesAbstractQueueOrder)
{
    // Differential test: with combining off, the systolic structure
    // must deliver the same item order as an ideal FIFO fed the same
    // accept/drain schedule (the paper's claim that the hardware
    // realizes the abstract ToMM queue).
    SystolicQueue hardware(16, false);
    std::deque<SystolicItem> ideal;
    Rng rng(123);
    std::uint64_t seq = 0;
    for (int cycle = 0; cycle < 6000; ++cycle) {
        std::optional<SystolicItem> input;
        if (cycle % 2 == 0 && rng.bernoulli(0.5))
            input = item(rng.uniformInt(8), seq);
        const bool ready = rng.bernoulli(0.6);
        auto r = hardware.step(input, ready);
        if (input && r.accepted) {
            ideal.push_back(*input);
            ++seq;
        }
        if (r.exited) {
            ASSERT_FALSE(ideal.empty());
            EXPECT_EQ(r.exited->seq, ideal.front().seq);
            EXPECT_EQ(r.exited->key, ideal.front().key);
            ideal.pop_front();
        }
    }
    // Drain the remainder.
    for (int cycle = 0; cycle < 200 && !ideal.empty(); ++cycle) {
        auto r = hardware.step(std::nullopt, true);
        if (r.exited) {
            EXPECT_EQ(r.exited->seq, ideal.front().seq);
            ideal.pop_front();
        }
    }
    EXPECT_TRUE(ideal.empty());
    EXPECT_TRUE(hardware.empty());
}

TEST(SystolicQueueTest, RandomizedConservation)
{
    // No item is ever lost or duplicated under random traffic.
    SystolicQueue q(12, true);
    Rng rng(77);
    std::uint64_t in = 0, out = 0;
    for (int cycle = 0; cycle < 10000; ++cycle) {
        std::optional<SystolicItem> input;
        if (cycle % 2 == 0 && rng.bernoulli(0.5))
            input = item(rng.uniformInt(4), in);
        auto r = q.step(input, rng.bernoulli(0.6));
        if (input && r.accepted)
            ++in;
        out += r.exited.has_value() + r.partner.has_value();
    }
    for (int cycle = 0; cycle < 100; ++cycle) {
        auto r = q.step(std::nullopt, true);
        out += r.exited.has_value() + r.partner.has_value();
    }
    EXPECT_EQ(in, out);
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace ultra::net
