/**
 * @file
 * Sweep fabric battery (ultra::sweep + the ultrasweep driver).
 *
 * Unit half: grid expansion is a canonical cartesian product (axes in
 * sorted key order, last key fastest, seed replication innermost) and
 * the per-point seed is a pure function of (seed_base, point index).
 * Subprocess half: the committed smoke grid driven through the real
 * ultrasweep binary at worker counts 1/2/8 merges to byte-identical
 * files, each point's stats file is byte-identical to the same
 * configuration run standalone through `ultrasim net --stats-json`,
 * and a worker killed mid-job (ULTRASWEEP_CRASH_POINT) is retried
 * without perturbing the merged bytes.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_lite.h"
#include "sweep/grid.h"
#include "sweep/pool.h"

#ifndef ULTRASIM_BIN
#error "build must define ULTRASIM_BIN (see tests/CMakeLists.txt)"
#endif
#ifndef ULTRASWEEP_BIN
#error "build must define ULTRASWEEP_BIN (see tests/CMakeLists.txt)"
#endif
#ifndef ULTRA_SMOKE_GRID
#error "build must define ULTRA_SMOKE_GRID (see tests/CMakeLists.txt)"
#endif

namespace ultra
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") + "/ultrasweep_" +
           name;
}

int
runCommand(const std::string &cmd)
{
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** The committed smoke grid, as text (shared with the CI smoke job). */
std::string
smokeGridText()
{
    return readFile(ULTRA_SMOKE_GRID);
}

double
num(const sweep::ParamMap &params, const std::string &name)
{
    auto it = params.find(name);
    EXPECT_NE(it, params.end()) << "missing param " << name;
    return it == params.end() ? -1.0 : it->second.num;
}

TEST(GridTest, ExpansionIsCanonicalCartesianProduct)
{
    std::string err;
    const std::vector<sweep::Point> points =
        sweep::expandGridFile(smokeGridText(), err);
    ASSERT_TRUE(err.empty()) << err;
    // 2 rates x 2 hot fractions x 2 seed replications.
    ASSERT_EQ(points.size(), 8u);

    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
        EXPECT_EQ(points[i].tag, "smoke");
        // Base parameters ride along on every point.
        EXPECT_EQ(num(points[i].params, "ports"), 16.0);
        EXPECT_EQ(num(points[i].params, "cycles"), 400.0);
    }

    // Axes iterate in sorted key order (hot < rate) with the last key
    // fastest and the seed replication innermost: index =
    // (hot_idx * 2 + rate_idx) * 2 + rep.
    EXPECT_EQ(num(points[0].params, "hot"), 0.0);
    EXPECT_EQ(num(points[0].params, "rate"), 0.05);
    EXPECT_EQ(num(points[1].params, "hot"), 0.0);
    EXPECT_EQ(num(points[1].params, "rate"), 0.05);
    EXPECT_EQ(num(points[2].params, "hot"), 0.0);
    EXPECT_EQ(num(points[2].params, "rate"), 0.1);
    EXPECT_EQ(num(points[4].params, "hot"), 0.25);
    EXPECT_EQ(num(points[4].params, "rate"), 0.05);
    EXPECT_EQ(num(points[7].params, "hot"), 0.25);
    EXPECT_EQ(num(points[7].params, "rate"), 0.1);

    // Every point's seed is derivePointSeed(seed_base, global index):
    // a pure function of the point's position, never of scheduling.
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(num(points[i].params, "seed"),
                  static_cast<double>(sweep::derivePointSeed(7, i)))
            << "point " << i;
    }
    // Replications of the same combo differ only in seed.
    EXPECT_NE(num(points[0].params, "seed"),
              num(points[1].params, "seed"));
}

TEST(GridTest, SeedDerivationIsPureAndCliFriendly)
{
    for (std::uint64_t base : {0ull, 1ull, 7ull, 123456789ull}) {
        for (std::size_t index = 0; index < 64; ++index) {
            const std::uint64_t a = sweep::derivePointSeed(base, index);
            const std::uint64_t b = sweep::derivePointSeed(base, index);
            EXPECT_EQ(a, b) << "not repeatable";
            EXPECT_GE(a, 1u) << "zero seed would collide with the "
                                "flag-absent default semantics";
            EXPECT_LT(a, 1000000007u) << "must round-trip --seed text";
        }
    }
    // Neighboring indices must not alias (splitmix64 mixing).
    EXPECT_NE(sweep::derivePointSeed(7, 0), sweep::derivePointSeed(7, 1));
    EXPECT_NE(sweep::derivePointSeed(7, 0), sweep::derivePointSeed(8, 0));
}

TEST(GridTest, RejectsUnknownParamsAndMalformedJson)
{
    std::string err;
    // A typo'd parameter must never become a default-configured run.
    auto points = sweep::expandGridFile(
        R"({"schema": "sweep.grid.v1",
            "grids": [{"base": {"protz": 16}}]})",
        err);
    EXPECT_TRUE(points.empty());
    EXPECT_NE(err.find("protz"), std::string::npos) << err;

    points = sweep::expandGridFile("{not json", err);
    EXPECT_TRUE(points.empty());
    EXPECT_FALSE(err.empty());

    points = sweep::expandGridFile(
        R"({"schema": "sweep.grid.v2", "grids": []})", err);
    EXPECT_TRUE(points.empty());
    EXPECT_FALSE(err.empty());

    // An axis must be a non-empty array.
    points = sweep::expandGridFile(
        R"({"schema": "sweep.grid.v1",
            "grids": [{"axes": {"rate": []}}]})",
        err);
    EXPECT_TRUE(points.empty());
    EXPECT_FALSE(err.empty());
}

TEST(GridTest, SpecFromParamsMirrorsCliDefaults)
{
    std::string err;
    const sweep::NetPointSpec def =
        sweep::specFromParams(sweep::ParamMap{}, err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(def.net.numPorts, 256u);
    EXPECT_EQ(def.cycles, 10000u);
    EXPECT_DOUBLE_EQ(def.traffic.rate, 0.1);
    EXPECT_EQ(def.traffic.seed, 1u);
    EXPECT_EQ(def.pni.maxOutstanding, 8u); // open loop

    sweep::ParamMap closed;
    closed["closed"] = sweep::ParamValue::number(4);
    const sweep::NetPointSpec cl = sweep::specFromParams(closed, err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(cl.traffic.closedLoop);
    EXPECT_EQ(cl.traffic.window, 4u);
    EXPECT_EQ(cl.pni.maxOutstanding, 0u);

    sweep::ParamMap bad;
    bad["policy"] = sweep::ParamValue::text("bogus");
    sweep::specFromParams(bad, err);
    EXPECT_FALSE(err.empty());
}

TEST(GridTest, MergeIsPureConcatenation)
{
    const std::string merged =
        sweep::mergeSweepJson({"{\"index\": 0}", "{\"index\": 1}"});
    EXPECT_TRUE(sweep::isSweepDocument(merged)) << merged;
    const jsonlite::JsonValue doc = jsonlite::parse(merged);
    EXPECT_EQ(doc["point_count"].number, 2.0);
    ASSERT_EQ(doc["points"].array.size(), 2u);
    EXPECT_FALSE(sweep::isSweepDocument("{\"schema\": \"other\"}"));
}

// ---------------------------------------------------------------------
// Subprocess half: the real binaries on the committed smoke grid.
// ---------------------------------------------------------------------

/** Run ultrasweep on the smoke grid; returns the exit status. */
int
runSweep(const std::string &outPath, unsigned workers,
         const std::string &pointsDir, const std::string &envPrefix = "")
{
    std::ostringstream cmd;
    cmd << envPrefix << ULTRASWEEP_BIN << " --grid " << ULTRA_SMOKE_GRID
        << " --out " << outPath << " --workers " << workers;
    if (!pointsDir.empty())
        cmd << " --points-dir " << pointsDir;
    cmd << " > /dev/null 2>&1";
    return runCommand(cmd.str());
}

TEST(UltrasweepTest, MergedOutputIsWorkerCountInvariant)
{
    std::string first;
    for (unsigned workers : {1u, 2u, 8u}) {
        const std::string out =
            tmpPath("w" + std::to_string(workers) + ".json");
        const std::string dir = out + ".points.d";
        ASSERT_EQ(runSweep(out, workers, dir), 0)
            << "workers=" << workers;
        const std::string merged = readFile(out);
        ASSERT_FALSE(merged.empty());
        EXPECT_TRUE(sweep::isSweepDocument(merged));
        if (first.empty()) {
            first = merged;
            const jsonlite::JsonValue doc = jsonlite::parse(merged);
            EXPECT_EQ(doc["point_count"].number, 8.0);
        } else {
            EXPECT_EQ(merged, first)
                << "merged bytes depend on worker count (" << workers
                << ")";
        }
        ASSERT_EQ(runCommand("rm -rf " + dir), 0);
        std::remove(out.c_str());
    }
}

TEST(UltrasweepTest, PointStatsMatchStandaloneUltrasim)
{
    const std::string out = tmpPath("standalone.json");
    const std::string dir = out + ".points.d";
    ASSERT_EQ(runSweep(out, 4, dir), 0);
    const jsonlite::JsonValue doc = jsonlite::parse(readFile(out));
    ASSERT_EQ(doc["points"].array.size(), 8u);

    // Two representative points (uniform and hot-spot): replay each
    // recorded argv through the real ultrasim binary and demand the
    // standalone --stats-json bytes equal the sweep worker's.
    for (std::size_t index : {0ul, 5ul}) {
        const jsonlite::JsonValue &pt = doc["points"].array[index];
        ASSERT_TRUE(pt["argv"].isArray());
        std::ostringstream cmd;
        cmd << ULTRASIM_BIN;
        for (const jsonlite::JsonValue &arg : pt["argv"].array)
            cmd << " " << arg.string;
        const std::string statsPath =
            tmpPath("standalone_" + std::to_string(index) + ".stats");
        cmd << " --stats-json " << statsPath << " > /dev/null 2>&1";
        ASSERT_EQ(runCommand(cmd.str()), 0) << cmd.str();

        char name[64];
        std::snprintf(name, sizeof name, "/point_%05zu.stats.json",
                      index);
        const std::string sweepStats = readFile(dir + name);
        const std::string standalone = readFile(statsPath);
        ASSERT_FALSE(sweepStats.empty());
        ASSERT_FALSE(standalone.empty());
        EXPECT_EQ(sweepStats, standalone)
            << "point " << index
            << ": sweep worker diverged from standalone ultrasim";
        std::remove(statsPath.c_str());
    }
    ASSERT_EQ(runCommand("rm -rf " + dir), 0);
    std::remove(out.c_str());
}

TEST(UltrasweepTest, CrashedWorkerIsRetriedWithoutTrace)
{
    const std::string clean = tmpPath("clean.json");
    const std::string cleanDir = clean + ".points.d";
    ASSERT_EQ(runSweep(clean, 2, cleanDir), 0);

    // Kill point 3's first attempt the way a real crashed worker dies;
    // the pool must retry it and the merged bytes must not notice.
    const std::string crashed = tmpPath("crashed.json");
    const std::string crashedDir = crashed + ".points.d";
    ASSERT_EQ(runSweep(crashed, 2, crashedDir,
                       "ULTRASWEEP_CRASH_POINT=3 "),
              0)
        << "crashed point was not retried to success";
    EXPECT_EQ(readFile(crashed), readFile(clean))
        << "a retried point changed the merged bytes";

    ASSERT_EQ(runCommand("rm -rf " + cleanDir + " " + crashedDir), 0);
    std::remove(clean.c_str());
    std::remove(crashed.c_str());
}

TEST(PoolTest, DetectHostCoresIsPositive)
{
    EXPECT_GE(sweep::detectHostCores(), 1u);
}

TEST(PoolTest, OutcomeCountsRetriesAndFailures)
{
    // In-process pool exercise: fn's exit status drives retry
    // accounting.  Index 0 fails its first attempt only; index 1
    // always fails and must exhaust maxAttempts.
    sweep::PoolOptions opts;
    opts.workers = 2;
    opts.maxAttempts = 2;
    const sweep::PoolOutcome outcome = sweep::runForkPool(
        2,
        [](std::size_t index, unsigned attempt) {
            if (index == 0)
                return attempt == 0 ? 1 : 0;
            return 1;
        },
        opts);
    EXPECT_EQ(outcome.succeeded, 1u);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.retried, 2u);
}

} // namespace
} // namespace ultra
