/**
 * @file
 * Tests of hardware multiprogramming (section 3.5) and the cached PE
 * memory operations (sections 3.2, 3.4): contexts share the pipeline,
 * waiting time is recovered, k-fold multiprogramming behaves like k
 * PEs of relative performance 1/k, and cached loads/stores hit, miss,
 * write back, flush and release correctly against central memory.
 */

#include <gtest/gtest.h>

#include "core/coord.h"
#include "core/machine.h"

namespace ultra
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

MachineConfig
testConfig()
{
    MachineConfig cfg = MachineConfig::small(16, 2);
    cfg.hashAddresses = false;
    return cfg;
}

// ----------------------------------------------------- multiprogramming

TEST(MultiprogramTest, TwoContextsBothComplete)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(2);
    machine.launch(0, [&](Pe &pe) -> Task {
        for (int i = 0; i < 10; ++i) {
            const Word was = co_await pe.fetchAdd(a, 1);
            (void)was;
        }
    });
    machine.launchExtra(0, [&](Pe &pe) -> Task {
        for (int i = 0; i < 10; ++i) {
            const Word was = co_await pe.fetchAdd(a + 1, 1);
            (void)was;
        }
    });
    EXPECT_EQ(machine.peAt(0).numContexts(), 2u);
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(a), 10);
    EXPECT_EQ(machine.peek(a + 1), 10);
}

TEST(MultiprogramTest, SecondContextRecoversWaitingTime)
{
    // A memory-bound program leaves the pipeline idle while blocked;
    // adding a second context overlaps that idle time, so two
    // multiprogrammed copies finish much sooner than two sequential
    // runs (and not much later than one).
    auto run_with_contexts = [](int contexts) {
        Machine machine(testConfig());
        const Addr region = machine.allocShared(1024);
        auto body = [&, region](Pe &pe) -> Task {
            // Serialized blocking loads: almost pure waiting.
            for (int i = 0; i < 50; ++i) {
                const Word v =
                    co_await pe.load(region + (i * 17) % 512);
                (void)v;
                co_await pe.compute(1);
            }
        };
        machine.launch(0, body);
        for (int c = 1; c < contexts; ++c)
            machine.launchExtra(0, body);
        EXPECT_TRUE(machine.run());
        return machine.now();
    };
    const Cycle one = run_with_contexts(1);
    const Cycle two = run_with_contexts(2);
    // Two contexts do twice the work; with recovery the time is far
    // below 2x (the paper's premise for Table 3).
    EXPECT_LT(two, one * 3 / 2);
    EXPECT_GE(two, one);
}

TEST(MultiprogramTest, ComputeBoundContextsSerialize)
{
    // Pure compute cannot be overlapped: the pipeline is the resource.
    // k-fold multiprogramming of compute-bound work takes ~k times as
    // long ("each having relative performance 1/k").
    auto run_with_contexts = [](int contexts) {
        Machine machine(testConfig());
        auto body = [](Pe &pe) -> Task { co_await pe.compute(500); };
        machine.launch(0, body);
        for (int c = 1; c < contexts; ++c)
            machine.launchExtra(0, body);
        EXPECT_TRUE(machine.run());
        return machine.now();
    };
    const Cycle one = run_with_contexts(1);
    const Cycle three = run_with_contexts(3);
    EXPECT_GE(three, one * 5 / 2);
}

TEST(MultiprogramTest, ContextsShareCoordination)
{
    // Contexts on different PEs and on the same PE all meet at one
    // barrier; nothing deadlocks even though co-resident contexts
    // cannot execute simultaneously.
    Machine machine(testConfig());
    auto barrier = core::Barrier::create(machine, 8);
    const Addr counter = machine.allocShared(1);
    auto body = [&, barrier](Pe &pe) -> Task {
        Word sense = 0;
        for (int phase = 0; phase < 3; ++phase) {
            const Word was = co_await pe.fetchAdd(counter, 1);
            (void)was;
            co_await core::barrierWait(pe, barrier, &sense);
        }
    };
    for (PEId p = 0; p < 4; ++p) {
        machine.launch(p, body);
        machine.launchExtra(p, body);
    }
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(counter), 8 * 3);
}

TEST(MultiprogramTest, RelaunchClearsContexts)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        const Word was = co_await pe.fetchAdd(a, 1);
        (void)was;
    });
    machine.launchExtra(0, [&](Pe &pe) -> Task {
        const Word was = co_await pe.fetchAdd(a, 1);
        (void)was;
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peAt(0).numContexts(), 2u);
    machine.launch(0, [&](Pe &pe) -> Task {
        const Word was = co_await pe.fetchAdd(a, 10);
        (void)was;
    });
    EXPECT_EQ(machine.peAt(0).numContexts(), 1u);
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(machine.peek(a), 12);
}

TEST(MultiprogramTest, FencesAreIsolatedPerContext)
{
    // Context A posts async stores and fences; context B's fence must
    // not wait for A's stores (per-context pendingAsync accounting).
    Machine machine(testConfig());
    const Addr a = machine.allocShared(64);
    bool b_fenced_early = false;
    machine.launch(0, [&](Pe &pe) -> Task {
        for (Addr i = 0; i < 16; ++i)
            pe.postStore(a + i, 1);
        co_await pe.compute(200); // hold the stores in flight a while
        co_await pe.fence();
    });
    machine.launchExtra(0, [&](Pe &pe) -> Task {
        co_await pe.fence(); // nothing of B's outstanding: immediate
        b_fenced_early = true;
        co_await pe.compute(1);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_TRUE(b_fenced_early);
}

TEST(MultiprogramTest, DumpStateShowsBusyNetwork)
{
    Machine machine(testConfig());
    const Addr a = machine.allocShared(1);
    machine.launch(0, [&](Pe &pe) -> Task {
        pe.postStore(a, 1);
        co_await pe.fence();
    });
    // Step a couple of cycles by running with a tiny budget... the
    // machine API runs to completion, so instead inspect after: an
    // idle network dumps only the header.
    ASSERT_TRUE(machine.run());
    const std::string dump = machine.network().dumpState();
    EXPECT_NE(dump.find("live messages 0"), std::string::npos);
}

// --------------------------------------------------------- cached PE ops

TEST(CachedOpsTest, LoadMissFetchesBlockThenHits)
{
    Machine machine(testConfig());
    const Addr arr = machine.allocShared(64);
    for (Addr i = 0; i < 64; ++i)
        machine.poke(arr + i, static_cast<Word>(100 + i));

    cache::CacheConfig ccfg;
    ccfg.numSets = 4;
    ccfg.associativity = 2;
    ccfg.blockWords = 4;
    machine.peAt(0).attachCache(ccfg);

    Word v0 = -1, v1 = -1;
    machine.launch(0, [&](Pe &pe) -> Task {
        co_await pe.cachedLoad(arr + 8, &v0);  // miss: fetch block
        co_await pe.cachedLoad(arr + 9, &v1);  // hit: same block
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(v0, 108);
    EXPECT_EQ(v1, 109);
    const auto &cstats = machine.peAt(0).cache().stats();
    EXPECT_EQ(cstats.readMisses, 1u);
    EXPECT_EQ(cstats.readHits, 1u);
    // The block fetch went to central memory (4 words).
    EXPECT_EQ(machine.peAt(0).stats().sharedRefs, 4u);
}

TEST(CachedOpsTest, WriteBackOnlyOnEvictionOrFlush)
{
    Machine machine(testConfig());
    const Addr arr = machine.allocShared(64);
    cache::CacheConfig ccfg;
    ccfg.numSets = 1; // one set: easy to force eviction
    ccfg.associativity = 1;
    ccfg.blockWords = 4;
    machine.peAt(0).attachCache(ccfg);

    machine.launch(0, [&](Pe &pe) -> Task {
        co_await pe.cachedStore(arr + 1, 77); // miss, fill, dirty
        // Central memory must NOT see the store yet (write-back).
        EXPECT_EQ(machine.peek(arr + 1), 0);
        // Touch a conflicting block: evicts and writes back.
        Word v = -1;
        co_await pe.cachedLoad(arr + 32, &v);
        co_await pe.fence(); // drain the pipelined write-back
        EXPECT_EQ(machine.peek(arr + 1), 77);
    });
    ASSERT_TRUE(machine.run());
}

TEST(CachedOpsTest, FlushMakesMemoryCurrent)
{
    Machine machine(testConfig());
    const Addr arr = machine.allocShared(16);
    cache::CacheConfig ccfg;
    ccfg.numSets = 2;
    ccfg.associativity = 2;
    ccfg.blockWords = 4;
    machine.peAt(0).attachCache(ccfg);

    machine.launch(0, [&](Pe &pe) -> Task {
        co_await pe.cachedStore(arr + 2, 55);
        EXPECT_EQ(machine.peek(arr + 2), 0);
        co_await pe.cacheFlush(arr, arr + 15);
        EXPECT_EQ(machine.peek(arr + 2), 55);
        // Still cached (flush keeps, clean): next access is a hit.
        Word v = -1;
        co_await pe.cachedLoad(arr + 2, &v);
        EXPECT_EQ(v, 55);
    });
    ASSERT_TRUE(machine.run());
    EXPECT_GE(machine.peAt(0).cache().stats().readHits, 1u);
}

TEST(CachedOpsTest, ReleaseDropsWithoutTraffic)
{
    Machine machine(testConfig());
    const Addr arr = machine.allocShared(16);
    cache::CacheConfig ccfg;
    ccfg.numSets = 2;
    ccfg.associativity = 2;
    ccfg.blockWords = 4;
    machine.peAt(0).attachCache(ccfg);

    machine.launch(0, [&](Pe &pe) -> Task {
        co_await pe.cachedStore(arr + 1, 99);
        const std::uint64_t refs_before = pe.stats().sharedRefs;
        pe.cacheRelease(arr, arr + 15); // dead private data
        EXPECT_EQ(pe.stats().sharedRefs, refs_before)
            << "release must generate no network traffic";
        co_return;
    });
    ASSERT_TRUE(machine.run());
    // The dropped dirty word never reached memory (by design).
    EXPECT_EQ(machine.peek(arr + 1), 0);
    EXPECT_FALSE(machine.peAt(0).cache().contains(arr + 1));
}

TEST(CachedOpsTest, SharePrivatizeProtocolOnMachine)
{
    // Section 3.4 end to end: task T caches V privately, updates it,
    // flushes + releases before "spawning" a subtask on another PE;
    // the subtask reads the current value from central memory.
    Machine machine(testConfig());
    const Addr v = machine.allocShared(4);
    cache::CacheConfig ccfg;
    machine.peAt(0).attachCache(ccfg);

    Word subtask_saw = -1;
    machine.launch(0, [&](Pe &pe) -> Task {
        co_await pe.cachedStore(v, 41);
        co_await pe.cachedStore(v, 42);
        // Before spawning: flush then release, mark shared.
        co_await pe.cacheFlush(v, v + 3);
        pe.cacheRelease(v, v + 3);
        co_return;
    });
    ASSERT_TRUE(machine.run());
    machine.launch(1, [&](Pe &pe) -> Task {
        subtask_saw = co_await pe.load(v); // uncached shared access
    });
    ASSERT_TRUE(machine.run());
    EXPECT_EQ(subtask_saw, 42);
}

TEST(CachedOpsTest, CacheHitCostsOneInstruction)
{
    Machine machine(testConfig());
    const Addr arr = machine.allocShared(16);
    cache::CacheConfig ccfg;
    machine.peAt(0).attachCache(ccfg);
    machine.launch(0, [&](Pe &pe) -> Task {
        Word v = 0;
        co_await pe.cachedLoad(arr, &v); // miss
        const auto before = pe.stats();
        for (int i = 0; i < 10; ++i)
            co_await pe.cachedLoad(arr, &v); // hits
        const auto after = pe.stats();
        EXPECT_EQ(after.privateRefs - before.privateRefs, 10u);
        EXPECT_EQ(after.sharedRefs, before.sharedRefs);
        EXPECT_EQ(after.instructions - before.instructions, 10u);
    });
    ASSERT_TRUE(machine.run());
}

} // namespace
} // namespace ultra
