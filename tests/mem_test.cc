/**
 * @file
 * Tests for the memory substrate: fetch-and-phi semantics (sections
 * 2.2, 2.4), the bijective address hash (section 3.1.4), and the
 * memory-module array.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "mem/address_hash.h"
#include "mem/fetch_phi.h"
#include "mem/memory_system.h"

namespace ultra::mem
{
namespace
{

TEST(FetchPhiTest, ApplySemantics)
{
    EXPECT_EQ(applyPhi(Op::Load, 5, 99), 5);
    EXPECT_EQ(applyPhi(Op::Store, 5, 99), 99);
    EXPECT_EQ(applyPhi(Op::FetchAdd, 5, 3), 8);
    EXPECT_EQ(applyPhi(Op::Swap, 5, 7), 7);
    EXPECT_EQ(applyPhi(Op::TestAndSet, 0, 0), 1);
    EXPECT_EQ(applyPhi(Op::FetchAnd, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(applyPhi(Op::FetchOr, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(applyPhi(Op::FetchMax, 4, 9), 9);
    EXPECT_EQ(applyPhi(Op::FetchMin, 4, 9), 4);
}

TEST(FetchPhiTest, DataDirections)
{
    EXPECT_FALSE(opCarriesData(Op::Load));
    EXPECT_TRUE(opCarriesData(Op::Store));
    EXPECT_TRUE(opCarriesData(Op::FetchAdd));
    EXPECT_FALSE(opCarriesData(Op::TestAndSet));
    EXPECT_TRUE(opReturnsData(Op::Load));
    EXPECT_FALSE(opReturnsData(Op::Store));
    EXPECT_TRUE(opReturnsData(Op::FetchAdd));
}

/**
 * The defining property of combining (section 3.1.3): applying the
 * combined request once must equal applying the two originals in
 * order, and decombineReply must reproduce the second request's value.
 */
class CombineAlgebraTest : public ::testing::TestWithParam<Op>
{};

TEST_P(CombineAlgebraTest, CombineMatchesSerialOrder)
{
    const Op op = GetParam();
    Rng rng(1234);
    for (int trial = 0; trial < 200; ++trial) {
        const Word x = rng.uniformRange(-1000, 1000);
        const Word e = rng.uniformRange(-100, 100);
        const Word f = rng.uniformRange(-100, 100);

        // Serial execution: phi(X, e) then phi(X, f).
        const Word y1 = x;                  // first request's return
        const Word m1 = applyPhi(op, x, e); // memory after first
        const Word y2 = m1;                 // second request's return
        const Word m2 = applyPhi(op, m1, f);

        // Combined execution.
        const Word g = combineOperands(op, e, f);
        const Word y = applyPhi(op, x, g); // memory after combined
        EXPECT_EQ(y, m2) << opName(op) << " memory mismatch";
        EXPECT_EQ(x, y1) << opName(op);
        if (op == Op::Store) {
            // Stores answer with an acknowledgement, not a value.
            EXPECT_EQ(decombineReply(op, x, e), 0);
        } else {
            EXPECT_EQ(decombineReply(op, x, e), y2)
                << opName(op) << " second reply mismatch";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllOps, CombineAlgebraTest,
                         ::testing::Values(Op::Load, Op::Store,
                                           Op::FetchAdd, Op::Swap,
                                           Op::TestAndSet, Op::FetchAnd,
                                           Op::FetchOr, Op::FetchMax,
                                           Op::FetchMin),
                         [](const auto &info) {
                             return opName(info.param);
                         });

class AddressHashTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(AddressHashTest, Bijection)
{
    const unsigned bits = GetParam();
    AddressHash hash(bits);
    const Addr space = Addr{1} << bits;
    if (bits <= 16) {
        std::vector<bool> seen(space, false);
        for (Addr v = 0; v < space; ++v) {
            const Addr p = hash.toPhysical(v);
            ASSERT_LT(p, space);
            ASSERT_FALSE(seen[p]) << "collision at " << v;
            seen[p] = true;
            ASSERT_EQ(hash.toVirtual(p), v);
        }
    } else {
        Rng rng(99);
        for (int i = 0; i < 10000; ++i) {
            const Addr v = rng.uniformInt(space);
            ASSERT_EQ(hash.toVirtual(hash.toPhysical(v)), v);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AddressHashTest,
                         ::testing::Values(4u, 8u, 12u, 16u, 24u, 40u));

TEST(AddressHashTest, DisabledIsIdentity)
{
    AddressHash hash(16, false);
    for (Addr v = 0; v < 100; ++v)
        EXPECT_EQ(hash.toPhysical(v), v);
}

TEST(AddressHashTest, SpreadsConsecutiveAddressesAcrossModules)
{
    // The reason the hash exists: consecutive virtual addresses (an
    // array walked by one PE, or a vector hit by all PEs) must not pile
    // onto one module.
    const unsigned bits = 16;
    const std::uint32_t modules = 64;
    AddressHash hash(bits);
    std::vector<int> load(modules, 0);
    const int count = 4096;
    for (Addr v = 0; v < count; ++v)
        ++load[hash.toPhysical(v) % modules];
    const int expected = count / modules;
    for (std::uint32_t m = 0; m < modules; ++m) {
        EXPECT_GT(load[m], expected / 4) << "module " << m << " starved";
        EXPECT_LT(load[m], expected * 4) << "module " << m << " hot";
    }
}

TEST(MemorySystemTest, ModuleInterleaving)
{
    MemoryConfig cfg;
    cfg.numModules = 8;
    cfg.wordsPerModule = 16;
    MemorySystem mem(cfg);
    EXPECT_EQ(mem.totalWords(), 128u);
    EXPECT_EQ(mem.moduleOf(0), 0u);
    EXPECT_EQ(mem.moduleOf(7), 7u);
    EXPECT_EQ(mem.moduleOf(8), 0u);
    EXPECT_EQ(mem.offsetOf(17), 2u);
}

TEST(MemorySystemTest, ExecuteAppliesPhiAndReturnsOld)
{
    MemoryConfig cfg;
    cfg.numModules = 4;
    cfg.wordsPerModule = 8;
    MemorySystem mem(cfg);
    mem.poke(5, 10);
    EXPECT_EQ(mem.execute(Op::FetchAdd, 5, 7), 10);
    EXPECT_EQ(mem.peek(5), 17);
    EXPECT_EQ(mem.execute(Op::Swap, 5, 2), 17);
    EXPECT_EQ(mem.peek(5), 2);
    EXPECT_EQ(mem.execute(Op::Load, 5, 0), 2);
    EXPECT_EQ(mem.peek(5), 2);
}

TEST(MemorySystemTest, ModuleLoadCounters)
{
    MemoryConfig cfg;
    cfg.numModules = 4;
    cfg.wordsPerModule = 8;
    MemorySystem mem(cfg);
    mem.execute(Op::Store, 0, 1);
    mem.execute(Op::Store, 4, 1);
    mem.execute(Op::Store, 1, 1);
    EXPECT_EQ(mem.moduleLoad()[0], 2u);
    EXPECT_EQ(mem.moduleLoad()[1], 1u);
    mem.resetStats();
    EXPECT_EQ(mem.moduleLoad()[0], 0u);
}

} // namespace
} // namespace ultra::mem
