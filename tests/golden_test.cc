/**
 * @file
 * Golden-model regression suite: pins the paper-anchored results --
 * Table-1-style network traffic on a scaled Table-1 configuration,
 * Fig-7 transit times across offered loads, and end-to-end application
 * runs (TRED2, multigrid) -- as checked-in JSON, and asserts that 1-,
 * 2-, and 8-thread runs, with the network's arrival phase sharded over
 * the engine and with the serial inline sweep, all reproduce each
 * golden byte-for-byte.
 *
 * Regenerating (after an intentional simulation-semantics change):
 *
 *     ULTRA_REGEN_GOLDEN=1 ./golden_test
 *
 * then commit the rewritten tests/golden JSON files alongside the change
 * that moved the numbers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/multigrid.h"
#include "apps/tred2.h"
#include "core/machine.h"
#include "inspect/inspector.h"
#include "inspect/server.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "net/traffic.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "par/shard.h"
#include "par/tick_engine.h"
#include "pe/task.h"

#ifndef ULTRA_GOLDEN_DIR
#error "build must define ULTRA_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace ultra
{
namespace
{

const unsigned kThreadCounts[] = {1, 2, 8};

std::string
goldenPath(const std::string &name)
{
    return std::string(ULTRA_GOLDEN_DIR) + "/" + name + ".json";
}

bool
regenRequested()
{
    const char *env = std::getenv("ULTRA_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Produce @p name with every thread count (network sharding on) plus
 * once with the network's serial path, assert all runs agree
 * byte-for-byte, and compare (or regenerate) the golden file.
 */
void
checkGolden(const std::string &name,
            const std::string (*produce)(unsigned threads,
                                         bool sharded_net))
{
    const std::string solo = produce(1, true);
    ASSERT_FALSE(solo.empty());
    for (unsigned threads : kThreadCounts) {
        if (threads == 1)
            continue;
        ASSERT_EQ(solo, produce(threads, true))
            << name << ": " << threads
            << "-thread run diverged from the 1-thread run";
    }
    ASSERT_EQ(solo, produce(8, false))
        << name << ": the unsharded (serial) network path diverged "
        << "from the sharded one";
    const std::string path = goldenPath(name);
    if (regenRequested()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << solo;
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden " << path
        << "; run with ULTRA_REGEN_GOLDEN=1 to create it";
    EXPECT_EQ(solo, golden)
        << name << " diverged from its golden; if the simulation "
        << "semantics changed intentionally, regenerate with "
        << "ULTRA_REGEN_GOLDEN=1";
}

std::string
fmt(double value)
{
    std::ostringstream os;
    obs::writeJsonNumber(os, value);
    return os.str();
}

// ------------------------------------------------------------------
// Scaled Table-1 network traffic
// ------------------------------------------------------------------

/**
 * The Table-1 machine scaled to 256 ports (same k=4 switches,
 * by-content packet sizing, 3-packet data messages, 15-packet queues,
 * 2-cycle MMs) driven open-loop at the paper's nominal intensity.
 */
const std::string
netTable1Scaled(unsigned threads, bool sharded_net)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = 256;
    ncfg.k = 4;
    ncfg.m = 2;
    ncfg.d = 1;
    ncfg.sizing = net::PacketSizing::ByContent;
    ncfg.dataPackets = 3;
    ncfg.queueCapacityPackets = 15;
    ncfg.mmPendingCapacityPackets = 15;
    ncfg.combinePolicy = net::CombinePolicy::Full;
    ncfg.mmAccessTime = 2;

    mem::MemoryConfig mcfg;
    mcfg.numModules = ncfg.numPorts;
    mcfg.wordsPerModule = 1 << 12;
    mcfg.accessTime = ncfg.mmAccessTime;
    mem::MemorySystem memory(mcfg);
    net::Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), true);
    net::PniConfig pcfg;
    pcfg.maxOutstanding = 8;
    net::PniArray pni(pcfg, network, hash);

    net::TrafficConfig tcfg;
    tcfg.activePes = ncfg.numPorts;
    tcfg.rate = 0.12;
    tcfg.hotFraction = 0.05;
    tcfg.hotAddr = 13;
    tcfg.addrSpaceWords = std::uint64_t{ncfg.numPorts} << 8;
    tcfg.seed = 1;
    net::TrafficGenerator traffic(tcfg, pni, network);

    obs::Registry registry;
    network.registerStats(registry, "net");
    pni.registerStats(registry, "pni");
    memory.registerStats(registry, "mem");

    par::TickEngine engine(threads);
    if (sharded_net)
        network.setTickEngine(&engine);
    const auto plan =
        par::ShardPlan::contiguous(tcfg.activePes, threads);
    std::vector<unsigned> shard_of(ncfg.numPorts, 0);
    for (std::uint32_t pe = 0; pe < tcfg.activePes; ++pe)
        shard_of[pe] = plan.shardOf(pe);
    pni.setShardMap(threads, std::move(shard_of));

    for (Cycle c = 0; c < 2000; ++c) {
        engine.forEachShard([&](unsigned shard) {
            const par::ShardRange r = plan.range(shard);
            traffic.tickRange(static_cast<PEId>(r.begin),
                              static_cast<PEId>(r.end));
        });
        pni.tick();
        network.tick();
    }
    return registry.jsonDump(network.now());
}

TEST(GoldenTest, NetTable1Scaled)
{
    checkGolden("net_table1_scaled", netTable1Scaled);
}

// ------------------------------------------------------------------
// Fig-7 transit times across offered loads
// ------------------------------------------------------------------

/** Uniform-sizing 64-port network (the Fig-7 simulation setup) swept
 *  over three offered loads; each load contributes its full registry
 *  dump, keyed by rate. */
const std::string
fig7Transit(unsigned threads, bool sharded_net)
{
    std::ostringstream doc;
    doc << "{\n";
    const double rates[] = {0.1, 0.25, 0.4};
    bool first = true;
    for (double rate : rates) {
        net::NetSimConfig ncfg;
        ncfg.numPorts = 64;
        ncfg.k = 2;
        ncfg.m = 2;
        ncfg.sizing = net::PacketSizing::Uniform;
        ncfg.combinePolicy = net::CombinePolicy::Full;

        mem::MemoryConfig mcfg;
        mcfg.numModules = ncfg.numPorts;
        mcfg.wordsPerModule = 1 << 10;
        mem::MemorySystem memory(mcfg);
        net::Network network(ncfg, memory);
        mem::AddressHash hash(log2Exact(memory.totalWords()), true);
        net::PniArray pni(net::PniConfig{}, network, hash);

        net::TrafficConfig tcfg;
        tcfg.activePes = ncfg.numPorts;
        tcfg.rate = rate;
        tcfg.addrSpaceWords = 1 << 12;
        tcfg.seed = 42;
        net::TrafficGenerator traffic(tcfg, pni, network);

        obs::Registry registry;
        network.registerStats(registry, "net");
        pni.registerStats(registry, "pni");

        par::TickEngine engine(threads);
        if (sharded_net)
            network.setTickEngine(&engine);
        const auto plan =
            par::ShardPlan::contiguous(tcfg.activePes, threads);
        std::vector<unsigned> shard_of(ncfg.numPorts, 0);
        for (std::uint32_t pe = 0; pe < tcfg.activePes; ++pe)
            shard_of[pe] = plan.shardOf(pe);
        pni.setShardMap(threads, std::move(shard_of));

        for (Cycle c = 0; c < 1500; ++c) {
            engine.forEachShard([&](unsigned shard) {
                const par::ShardRange r = plan.range(shard);
                traffic.tickRange(static_cast<PEId>(r.begin),
                                  static_cast<PEId>(r.end));
            });
            pni.tick();
            network.tick();
        }
        if (!first)
            doc << ",\n";
        first = false;
        doc << "\"rate=" << fmt(rate)
            << "\": " << registry.jsonDump(network.now());
    }
    doc << "\n}\n";
    return doc.str();
}

TEST(GoldenTest, Fig7TransitTimes)
{
    checkGolden("fig7_transit", fig7Transit);
}

// ------------------------------------------------------------------
// End-to-end applications
// ------------------------------------------------------------------

/** Run TRED2 on @p machine and render the golden document (numerical
 *  result, completion time, full stats); shared between the plain
 *  produce function and the inspected-run identity test below. */
const std::string
tred2Doc(core::Machine &machine)
{
    const std::size_t n = 16;
    const auto matrix = apps::randomSymmetric(n, 1);
    const auto result = apps::tred2Parallel(machine, 8, matrix, n);

    std::ostringstream doc;
    doc << "{\n\"cycles\": " << result.cycles << ",\n\"diag\": [";
    for (std::size_t i = 0; i < result.tri.diag.size(); ++i)
        doc << (i ? ", " : "") << fmt(result.tri.diag[i]);
    doc << "],\n\"offdiag\": [";
    for (std::size_t i = 1; i < result.tri.offdiag.size(); ++i)
        doc << (i > 1 ? ", " : "") << fmt(result.tri.offdiag[i]);
    doc << "],\n\"stats\": " << machine.statsJson() << "\n}\n";
    return doc.str();
}

/** TRED2 (the paper's flagship workload): pins the numerical result
 *  (tridiagonal entries), the simulated completion time, and the full
 *  machine stats. */
const std::string
appTred2(unsigned threads, bool sharded_net)
{
    core::MachineConfig cfg = core::MachineConfig::small(64, 2);
    cfg.threads = threads;
    cfg.shardedNetwork = sharded_net;
    core::Machine machine(cfg);
    return tred2Doc(machine);
}

TEST(GoldenTest, AppTred2)
{
    checkGolden("app_tred2", appTred2);
}

/** The TRED2 run with a live inspection session riding along: start
 *  paused, arm a cycle watchpoint, dump a switch and the live stats at
 *  the hit, then detach and let it finish.  Read-only inspection must
 *  not move a single byte of the golden document. */
const std::string
appTred2Inspected(unsigned threads)
{
    core::MachineConfig cfg = core::MachineConfig::small(64, 2);
    cfg.threads = threads;
    core::Machine machine(cfg);

    std::string err;
    auto server = inspect::InspectServer::listen("0", err);
    EXPECT_NE(server, nullptr) << err;
    if (server == nullptr)
        return "";
    inspect::Targets targets;
    targets.network = &machine.network();
    targets.memory = &machine.memory();
    targets.hash = &machine.addressHash();
    targets.registry = &machine.registry();
    inspect::Inspector inspector(*server, targets, true);
    machine.setCycleHook([&inspector](Cycle now) {
        inspector.atCycleBoundary(now);
    });

    // The attached client, scripted on a side thread; the simulation
    // holds at cycle 0 until its "resume" arrives.
    std::thread driver([port = server->port()] {
        std::string cerr;
        auto client =
            inspect::InspectClient::connect(std::to_string(port), cerr);
        EXPECT_NE(client, nullptr) << cerr;
        if (client == nullptr)
            return;
        auto req = [&client](const std::string &line) {
            EXPECT_TRUE(client->sendLine(line));
            std::string reply;
            while (client->recvLine(reply, 15000)) {
                if (reply.find("\"ok\"") != std::string::npos)
                    return;
            }
            ADD_FAILURE() << "no reply to " << line;
        };
        req("{\"cmd\":\"watch\",\"cycle\":40}");
        req("{\"cmd\":\"resume\"}");
        std::string line;
        while (client->recvLine(line, 15000)) {
            if (line.find("\"watchpoint\"") != std::string::npos)
                break;
        }
        req("{\"cmd\":\"switch\",\"copy\":0,\"stage\":0,\"index\":0}");
        req("{\"cmd\":\"stats\",\"prefix\":\"\"}");
        req("{\"cmd\":\"detach\"}");
    });

    const std::string doc = tred2Doc(machine);
    driver.join();
    machine.setCycleHook(nullptr);
    EXPECT_FALSE(inspector.pokeUsed());
    return doc;
}

TEST(GoldenTest, InspectedRunMatchesGolden)
{
    if (regenRequested())
        GTEST_SKIP() << "golden regeneration run";
    const std::string golden = readFile(goldenPath("app_tred2"));
    ASSERT_FALSE(golden.empty())
        << "missing golden " << goldenPath("app_tred2")
        << "; run golden_test with ULTRA_REGEN_GOLDEN=1 first";
    for (unsigned threads : {1u, 4u}) {
        EXPECT_EQ(appTred2Inspected(threads), golden)
            << "live inspection perturbed the run at threads="
            << threads;
    }
}

/** Multigrid Poisson solve: pins the residual, a solution checksum,
 *  the completion time, and the full machine stats. */
const std::string
appMultigrid(unsigned threads, bool sharded_net)
{
    core::MachineConfig cfg = core::MachineConfig::small(64, 2);
    cfg.threads = threads;
    cfg.shardedNetwork = sharded_net;
    core::Machine machine(cfg);
    apps::MultigridConfig gcfg;
    gcfg.level = 4;
    const auto rhs = apps::multigridRhs(gcfg.level);
    const auto result =
        apps::multigridParallel(machine, 8, gcfg, rhs);

    double checksum = 0.0;
    for (double u : result.solution)
        checksum += u;
    std::ostringstream doc;
    doc << "{\n\"cycles\": " << result.cycles
        << ",\n\"residual\": " << fmt(result.residualNorm)
        << ",\n\"solution_sum\": " << fmt(checksum)
        << ",\n\"stats\": " << machine.statsJson() << "\n}\n";
    return doc.str();
}

TEST(GoldenTest, AppMultigrid)
{
    checkGolden("app_multigrid", appMultigrid);
}

} // namespace
} // namespace ultra
