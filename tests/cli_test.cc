/**
 * @file
 * End-to-end tests of the ultrasim command-line tool -- the first
 * coverage that actually executes the binary.  Runs `ultrasim net` and
 * `ultrasim app` as subprocesses, validates the --stats-json output
 * with the jsonlite parser, and checks the headline ultra::par
 * property from the outside: --threads N output is byte-identical to
 * --threads 1.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_lite.h"

#ifndef ULTRASIM_BIN
#error "build must define ULTRASIM_BIN (see tests/CMakeLists.txt)"
#endif
#ifndef ULTRASWEEP_BIN
#error "build must define ULTRASWEEP_BIN (see tests/CMakeLists.txt)"
#endif

namespace
{

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") + "/ultrasim_cli_" +
           name;
}

/** Run a shell command and return the child's exit status. */
int
runCommand(const std::string &cmd)
{
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

int
runTool(const std::string &args)
{
    return runCommand(std::string(ULTRASIM_BIN) + " " + args +
                      " > /dev/null 2>&1");
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(CliTest, NetStatsJsonIsValidAndComplete)
{
    const std::string out = tmpPath("net_stats.json");
    ASSERT_EQ(runTool("net --ports 64 --k 2 --cycles 1000 "
                      "--threads 4 --stats-json " +
                      out),
              0);
    const std::string text = readFile(out);
    ASSERT_FALSE(text.empty());
    const jsonlite::JsonValue doc = jsonlite::parse(text);
    ASSERT_TRUE(doc.isObject());
    const jsonlite::JsonValue &stats = doc["stats"];
    ASSERT_TRUE(stats.isObject());
    // The core Table-1 quantities must be present and sane.
    for (const char *key :
         {"net.injected", "net.delivered", "net.combined",
          "pni.requested", "pni.completed", "mem.executed"}) {
        ASSERT_TRUE(stats.has(key)) << key;
        EXPECT_GE(stats[key].number, 0.0) << key;
    }
    // Note: delivered can slightly exceed injected because the tool
    // resets stats after warmup while warmup messages are in flight.
    EXPECT_GT(stats["net.injected"].number, 0.0);
    EXPECT_GT(stats["net.delivered"].number, 0.0);
    std::remove(out.c_str());
}

TEST(CliTest, NetThreadsOutputByteIdentical)
{
    const std::string solo = tmpPath("net_t1.json");
    const std::string quad = tmpPath("net_t4.json");
    const std::string common =
        "net --ports 64 --k 2 --rate 0.15 --hot 0.05 --cycles 1500 ";
    ASSERT_EQ(runTool(common + "--threads 1 --stats-json " + solo), 0);
    ASSERT_EQ(runTool(common + "--threads 4 --stats-json " + quad), 0);
    const std::string solo_text = readFile(solo);
    ASSERT_FALSE(solo_text.empty());
    EXPECT_EQ(solo_text, readFile(quad))
        << "--threads 4 must reproduce --threads 1 byte-for-byte";
    std::remove(solo.c_str());
    std::remove(quad.c_str());
}

TEST(CliTest, UnknownFlagsExitTwoWithUsage)
{
    const std::string err = tmpPath("unknown_flag.err");
    ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) +
                         " net --bogus > /dev/null 2> " + err),
              2);
    const std::string text = readFile(err);
    EXPECT_NE(text.find("unknown flag '--bogus'"), std::string::npos)
        << text;
    EXPECT_NE(text.find("usage:"), std::string::npos) << text;
    std::remove(err.c_str());

    // Every subcommand has its own allowlist: flags that are valid
    // elsewhere are still rejected where they make no sense.
    EXPECT_EQ(runTool("app --frobnicate"), 2);
    EXPECT_EQ(runTool("model --cycles 10"), 2);
    EXPECT_EQ(runTool("model --inspect 0"), 2);
    EXPECT_EQ(runTool("pack --k 4"), 2);
    EXPECT_EQ(runTool("trace --stats-json out.json"), 2);
}

TEST(CliTest, AppThreadsOutputByteIdentical)
{
    const std::string solo = tmpPath("app_t1.json");
    const std::string dual = tmpPath("app_t2.json");
    const std::string common = "app --app tred2 --n 12 --pes 8 ";
    ASSERT_EQ(runTool(common + "--threads 1 --stats-json " + solo), 0);
    ASSERT_EQ(runTool(common + "--threads 2 --stats-json " + dual), 0);
    const std::string solo_text = readFile(solo);
    ASSERT_FALSE(solo_text.empty());
    const jsonlite::JsonValue doc = jsonlite::parse(solo_text);
    ASSERT_TRUE(doc.isObject());
    EXPECT_GT(doc["stats"]["pe.instructions"].number, 0.0);
    EXPECT_EQ(solo_text, readFile(dual));
    std::remove(solo.c_str());
    std::remove(dual.c_str());
}

TEST(CliTest, ProfJsonLeavesSimulationOutputByteIdentical)
{
    // The profiler's write-only-to-its-own-channel contract: the same
    // workload with and without --prof-json dumps byte-identical
    // stats, at one thread and at eight.
    const std::string base = tmpPath("prof_off.json");
    const std::string probed = tmpPath("prof_on.json");
    const std::string prof = tmpPath("prof_report.json");
    const std::string common =
        "net --ports 64 --k 2 --rate 0.15 --hot 0.05 --cycles 1500 ";
    for (const char *threads : {"--threads 1 ", "--threads 8 "}) {
        ASSERT_EQ(runTool(common + threads + "--stats-json " + base),
                  0);
        ASSERT_EQ(runTool(common + threads + "--stats-json " + probed +
                          " --prof-json " + prof),
                  0);
        const std::string base_text = readFile(base);
        ASSERT_FALSE(base_text.empty());
        EXPECT_EQ(base_text, readFile(probed))
            << "--prof-json must not perturb simulation output at "
            << threads;
        EXPECT_FALSE(readFile(prof).empty());
    }
    std::remove(base.c_str());
    std::remove(probed.c_str());
    std::remove(prof.c_str());
}

TEST(CliTest, ProfJsonCoversMeasuredWallOnTable1)
{
    // The acceptance bar: on the Table-1 network at --threads 8 the
    // per-phase wall timers must account for >= 95% of the measured
    // elapsed time -- anything less means a phase boundary is missing
    // a lap stamp.
    const std::string prof = tmpPath("prof_table1.json");
    ASSERT_EQ(runTool("net --ports 4096 --k 4 --queue 15 --rate 0.1 "
                      "--cycles 300 --threads 8 --prof-json " +
                      prof),
              0);
    const std::string text = readFile(prof);
    ASSERT_FALSE(text.empty());
    const jsonlite::JsonValue doc = jsonlite::parse(text);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc["schema"].string, "ultra.prof.v1");
    EXPECT_EQ(static_cast<unsigned>(doc["threads"].number), 8u);
    // 6 stages x 8 column groups x 1 copy.
    EXPECT_EQ(doc["units"].array.size(), 48u);

    const double elapsed = doc["elapsed_seconds"].number;
    ASSERT_GT(elapsed, 0.0);
    double phase_sum = 0.0;
    for (const auto &[name, phase] : doc["phases"].object) {
        (void)name;
        phase_sum += phase["seconds"].number;
    }
    EXPECT_GE(phase_sum, 0.95 * elapsed)
        << "phase timers cover only " << (phase_sum / elapsed)
        << " of the measured wall";
    EXPECT_LE(phase_sum, elapsed * 1.001);
    EXPECT_GE(doc["attribution"]["coverage"].number, 0.95);

    // The stage-rank barrier steps of the departure window were
    // actually timed (8 threads on the sharded departure path).
    EXPECT_GT(doc["attribution"]["barrier_wait_seconds"].number, 0.0);
    std::remove(prof.c_str());
}

TEST(CliTest, StatsJsonByteStableAcrossRunsAndSorted)
{
    const std::string first = tmpPath("stable_a.json");
    const std::string second = tmpPath("stable_b.json");
    const std::string common =
        "net --ports 64 --k 2 --rate 0.1 --cycles 1000 --stats-json ";
    ASSERT_EQ(runTool(common + first), 0);
    ASSERT_EQ(runTool(common + second), 0);
    const std::string text = readFile(first);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text, readFile(second))
        << "repeated identical runs must dump byte-identical stats";
    // The dump is sorted by key, so it diffs cleanly when statistics
    // are added or code is reordered.
    const jsonlite::JsonValue doc = jsonlite::parse(text);
    std::string prev;
    std::size_t keys = 0;
    for (const auto &[key, value] : doc["stats"].object) {
        (void)value;
        EXPECT_LT(prev, key);
        prev = key;
        ++keys;
    }
    EXPECT_GT(keys, 10u);
    // Default is compact (one line per the whole stats object);
    // --stats-pretty restores one-entry-per-line.
    EXPECT_EQ(text.find("\n  "), std::string::npos);
    const std::string pretty = tmpPath("stable_pretty.json");
    ASSERT_EQ(runTool(common + pretty + " --stats-pretty"), 0);
    const std::string pretty_text = readFile(pretty);
    EXPECT_NE(pretty_text.find("\n"), std::string::npos);
    EXPECT_NE(pretty_text, text);
    // Same content either way.
    EXPECT_EQ(jsonlite::parse(pretty_text)["stats"].object.size(),
              keys);
    std::remove(first.c_str());
    std::remove(second.c_str());
    std::remove(pretty.c_str());
}

TEST(CliTest, LatencyJsonReportsDecompositionAndModel)
{
    const std::string out = tmpPath("latency.json");
    ASSERT_EQ(runTool("net --ports 64 --k 2 --rate 0.15 --hot 0.1 "
                      "--cycles 2000 --latency-json " +
                      out),
              0);
    const std::string text = readFile(out);
    ASSERT_FALSE(text.empty());
    const jsonlite::JsonValue doc = jsonlite::parse(text);
    ASSERT_TRUE(doc.isObject());
    EXPECT_GT(doc["requests"]["delivered"].number, 0.0);
    EXPECT_EQ(doc["requests"]["violations"].number, 0.0)
        << "stage components must sum to end-to-end for every record";
    EXPECT_GT(doc["combining"]["combined_delivered"].number, 0.0)
        << "hot-spot run must combine";
    ASSERT_TRUE(doc["waits"]["stages"].isArray());
    EXPECT_FALSE(doc["waits"]["stages"].array.empty());
    ASSERT_TRUE(doc.has("model"));
    // Combining run: the Kruskal-Snir check must report itself
    // non-applicable rather than fake a verdict.
    EXPECT_FALSE(doc["model"]["applicable"].boolean);
    std::remove(out.c_str());
}

TEST(CliTest, HeatmapCsvCoversBothDirections)
{
    const std::string out = tmpPath("heatmap.csv");
    ASSERT_EQ(runTool("net --ports 64 --k 2 --rate 0.1 --cycles 1000 "
                      "--heatmap-csv " +
                      out),
              0);
    const std::string text = readFile(out);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.find("direction,stage,switch,visits,wait_cycles,"
                        "mean_wait,combines"),
              0u);
    EXPECT_NE(text.find("\nfwd,"), std::string::npos);
    EXPECT_NE(text.find("\nrev,"), std::string::npos);
    std::remove(out.c_str());
}

TEST(CliTest, SerialDeparturesAreByteIdenticalAndDriftClean)
{
    // The receiver-pull departure window is a pure timing knob: stats
    // must be byte-identical with it disabled, and the Kruskal-Snir
    // drift gate must reach the same verdict either way.
    const std::string window = tmpPath("dep_window.json");
    const std::string sweep = tmpPath("dep_sweep.json");
    ASSERT_EQ(runTool("net --ports 64 --k 2 --rate 0.15 --hot 0.2 "
                      "--threads 4 --cycles 800 --stats-json " +
                      window),
              0);
    ASSERT_EQ(runTool("net --ports 64 --k 2 --rate 0.15 --hot 0.2 "
                      "--threads 4 --cycles 800 --serial-departures "
                      "--stats-json " +
                      sweep),
              0);
    const std::string window_text = readFile(window);
    ASSERT_FALSE(window_text.empty());
    EXPECT_EQ(window_text, readFile(sweep));
    EXPECT_EQ(runTool("net --ports 256 --k 4 --m 4 --uniform "
                      "--policy none --queue 0 --rate 0.15 "
                      "--cycles 3000 --serial-departures "
                      "--check-drift"),
              0);
    std::remove(window.c_str());
    std::remove(sweep.c_str());
}

TEST(CliTest, CheckDriftPassesOnConformingConfig)
{
    // A Fig-7-style model-conforming configuration must track the
    // analytic prediction (exit 0); a combining hot-spot run violates
    // the model's assumptions and must be rejected as non-applicable
    // (exit 2), not silently scored.
    EXPECT_EQ(runTool("net --ports 256 --k 4 --m 4 --uniform "
                      "--policy none --queue 0 --rate 0.15 "
                      "--cycles 3000 --check-drift"),
              0);
    EXPECT_EQ(runTool("net --ports 64 --k 2 --rate 0.15 --hot 0.2 "
                      "--cycles 1000 --check-drift"),
              2);
}

TEST(CliTest, UltrascopeAnalyzesTrace)
{
    const std::string trace = tmpPath("scope_trace.json");
    ASSERT_EQ(runTool("net --ports 64 --k 2 --rate 0.15 --hot 0.1 "
                      "--cycles 800 --trace-events " +
                      trace),
              0);
    const std::string report = tmpPath("scope_report.txt");
    const std::string cmd = std::string(ULTRASCOPE_BIN) + " " + trace +
                            " --top 5 --slowest 5 > " + report +
                            " 2>&1";
    ASSERT_EQ(runCommand(cmd), 0);
    const std::string text = readFile(report);
    EXPECT_NE(text.find("top congested lanes"), std::string::npos);
    EXPECT_NE(text.find("combine forest"), std::string::npos)
        << "hot-spot trace must contain combine events";
    EXPECT_NE(text.find("slowest request paths"), std::string::npos);
    // Malformed input is a clean failure, not a crash.
    const std::string junk = tmpPath("scope_junk.json");
    std::ofstream(junk) << "{ not json";
    const std::string junk_cmd = std::string(ULTRASCOPE_BIN) + " " +
                                 junk + " > /dev/null 2>&1";
    EXPECT_EQ(runCommand(junk_cmd), 2);
    std::remove(trace.c_str());
    std::remove(report.c_str());
    std::remove(junk.c_str());
}

TEST(CliTest, BadSubcommandFails)
{
    EXPECT_NE(runTool("frobnicate"), 0);
}

TEST(CliTest, NetSeedFlagIsDeterministic)
{
    // --seed rides the net allowlist: same seed, same bytes; a
    // different seed must actually steer the traffic generator.
    const std::string a = tmpPath("seed_a.json");
    const std::string b = tmpPath("seed_b.json");
    const std::string c = tmpPath("seed_c.json");
    const std::string common =
        "net --ports 16 --k 2 --cycles 300 --rate 0.1 --stats-json ";
    ASSERT_EQ(runTool(common + a + " --seed 42"), 0);
    ASSERT_EQ(runTool(common + b + " --seed 42"), 0);
    ASSERT_EQ(runTool(common + c + " --seed 43"), 0);
    const std::string bytes = readFile(a);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(readFile(b), bytes) << "same seed must reproduce bytes";
    EXPECT_NE(readFile(c), bytes) << "different seed changed nothing";
    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(c.c_str());
}

TEST(CliTest, ServeRejectsBadInvocations)
{
    const std::string err = tmpPath("serve_usage.err");
    // No address operand.
    ASSERT_EQ(runCommand(std::string(ULTRASIM_BIN) +
                         " serve > /dev/null 2> " + err),
              2);
    EXPECT_NE(readFile(err).find("usage:"), std::string::npos)
        << readFile(err);
    // A flag where the address belongs.
    EXPECT_EQ(runTool("serve --threads 2"), 2);
    // Unknown flags honor the allowlist convention.
    EXPECT_EQ(runTool("serve 0 --frobnicate 1"), 2);
    std::remove(err.c_str());
}

TEST(CliTest, UltrasweepRejectsBadInvocations)
{
    const std::string err = tmpPath("sweep_usage.err");
    // Unknown flag.
    ASSERT_EQ(runCommand(std::string(ULTRASWEEP_BIN) +
                         " --frobnicate > /dev/null 2> " + err),
              2);
    const std::string text = readFile(err);
    EXPECT_NE(text.find("unknown flag '--frobnicate'"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("usage:"), std::string::npos) << text;

    // --grid is required; a missing or malformed grid file is exit 2.
    EXPECT_EQ(runCommand(std::string(ULTRASWEEP_BIN) +
                         " > /dev/null 2>&1"),
              2);
    EXPECT_EQ(runCommand(std::string(ULTRASWEEP_BIN) +
                         " --grid /no/such/grid.json > /dev/null 2>&1"),
              2);
    const std::string junk = tmpPath("sweep_junk_grid.json");
    std::ofstream(junk) << "{ not json";
    EXPECT_EQ(runCommand(std::string(ULTRASWEEP_BIN) + " --grid " +
                         junk + " > /dev/null 2>&1"),
              2);
    // Well-formed JSON with a typo'd parameter is still exit 2: a
    // typo must never become a default-configured sweep.
    std::ofstream(junk) << "{\"schema\": \"sweep.grid.v1\", \"grids\":"
                           " [{\"base\": {\"protz\": 16}}]}";
    EXPECT_EQ(runCommand(std::string(ULTRASWEEP_BIN) + " --grid " +
                         junk + " > /dev/null 2>&1"),
              2);
    std::remove(junk.c_str());
    std::remove(err.c_str());
}

TEST(CliTest, UltrascopeSweepModeRendersAndRejects)
{
    // A real two-point sweep renders a per-point table...
    const std::string grid = tmpPath("scope_sweep_grid.json");
    std::ofstream(grid)
        << "{\"schema\": \"sweep.grid.v1\", \"grids\": [{\"tag\": "
           "\"mini\", \"base\": {\"ports\": 16, \"k\": 2, \"cycles\": "
           "200}, \"axes\": {\"rate\": [0.05, 0.1]}}]}";
    const std::string out = tmpPath("scope_sweep.json");
    const std::string dir = out + ".points.d";
    ASSERT_EQ(runCommand(std::string(ULTRASWEEP_BIN) + " --grid " +
                         grid + " --out " + out + " --points-dir " +
                         dir + " > /dev/null 2>&1"),
              0);
    const std::string report = tmpPath("scope_sweep_report.txt");
    ASSERT_EQ(runCommand(std::string(ULTRASCOPE_BIN) + " --sweep " +
                         out + " > " + report + " 2>&1"),
              0);
    const std::string text = readFile(report);
    EXPECT_NE(text.find("mini"), std::string::npos) << text;
    EXPECT_NE(text.find("2 points"), std::string::npos) << text;

    // ...while non-sweep input and a missing operand are exit 2.
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) + " --sweep " +
                         grid + " > /dev/null 2>&1"),
              2)
        << "a grid file is not a sweep.v1 result";
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) +
                         " --sweep > /dev/null 2>&1"),
              2);
    EXPECT_EQ(runCommand(std::string(ULTRASCOPE_BIN) +
                         " --sweep /no/such/sweep.json"
                         " > /dev/null 2>&1"),
              2);

    runCommand("rm -rf " + dir);
    std::remove(grid.c_str());
    std::remove(out.c_str());
    std::remove(report.c_str());
}

} // namespace
