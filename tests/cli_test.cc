/**
 * @file
 * End-to-end tests of the ultrasim command-line tool -- the first
 * coverage that actually executes the binary.  Runs `ultrasim net` and
 * `ultrasim app` as subprocesses, validates the --stats-json output
 * with the jsonlite parser, and checks the headline ultra::par
 * property from the outside: --threads N output is byte-identical to
 * --threads 1.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "json_lite.h"

#ifndef ULTRASIM_BIN
#error "build must define ULTRASIM_BIN (see tests/CMakeLists.txt)"
#endif

namespace
{

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") + "/ultrasim_cli_" +
           name;
}

int
runTool(const std::string &args)
{
    const std::string cmd =
        std::string(ULTRASIM_BIN) + " " + args + " > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return rc;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(CliTest, NetStatsJsonIsValidAndComplete)
{
    const std::string out = tmpPath("net_stats.json");
    ASSERT_EQ(runTool("net --ports 64 --k 2 --cycles 1000 "
                      "--threads 4 --stats-json " +
                      out),
              0);
    const std::string text = readFile(out);
    ASSERT_FALSE(text.empty());
    const jsonlite::JsonValue doc = jsonlite::parse(text);
    ASSERT_TRUE(doc.isObject());
    const jsonlite::JsonValue &stats = doc["stats"];
    ASSERT_TRUE(stats.isObject());
    // The core Table-1 quantities must be present and sane.
    for (const char *key :
         {"net.injected", "net.delivered", "net.combined",
          "pni.requested", "pni.completed", "mem.executed"}) {
        ASSERT_TRUE(stats.has(key)) << key;
        EXPECT_GE(stats[key].number, 0.0) << key;
    }
    // Note: delivered can slightly exceed injected because the tool
    // resets stats after warmup while warmup messages are in flight.
    EXPECT_GT(stats["net.injected"].number, 0.0);
    EXPECT_GT(stats["net.delivered"].number, 0.0);
    std::remove(out.c_str());
}

TEST(CliTest, NetThreadsOutputByteIdentical)
{
    const std::string solo = tmpPath("net_t1.json");
    const std::string quad = tmpPath("net_t4.json");
    const std::string common =
        "net --ports 64 --k 2 --rate 0.15 --hot 0.05 --cycles 1500 ";
    ASSERT_EQ(runTool(common + "--threads 1 --stats-json " + solo), 0);
    ASSERT_EQ(runTool(common + "--threads 4 --stats-json " + quad), 0);
    const std::string solo_text = readFile(solo);
    ASSERT_FALSE(solo_text.empty());
    EXPECT_EQ(solo_text, readFile(quad))
        << "--threads 4 must reproduce --threads 1 byte-for-byte";
    std::remove(solo.c_str());
    std::remove(quad.c_str());
}

TEST(CliTest, AppThreadsOutputByteIdentical)
{
    const std::string solo = tmpPath("app_t1.json");
    const std::string dual = tmpPath("app_t2.json");
    const std::string common = "app --app tred2 --n 12 --pes 8 ";
    ASSERT_EQ(runTool(common + "--threads 1 --stats-json " + solo), 0);
    ASSERT_EQ(runTool(common + "--threads 2 --stats-json " + dual), 0);
    const std::string solo_text = readFile(solo);
    ASSERT_FALSE(solo_text.empty());
    const jsonlite::JsonValue doc = jsonlite::parse(solo_text);
    ASSERT_TRUE(doc.isObject());
    EXPECT_GT(doc["stats"]["pe.instructions"].number, 0.0);
    EXPECT_EQ(solo_text, readFile(dual));
    std::remove(solo.c_str());
    std::remove(dual.c_str());
}

TEST(CliTest, BadSubcommandFails)
{
    EXPECT_NE(runTool("frobnicate"), 0);
}

} // namespace
