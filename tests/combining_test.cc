/**
 * @file
 * Exhaustive tests of the pairwise combining rules (sections 3.1.2,
 * 3.1.3): every combinable op pair must effect *some* serialization of
 * the two requests -- correct values returned to both requesters and
 * the correct final memory value, as checked against both serial
 * orders.
 */

#include <gtest/gtest.h>

#include <optional>

#include "mem/fetch_phi.h"
#include "net/combining.h"
#include "net/message.h"
#include "net/wait_buffer.h"

namespace ultra::net
{
namespace
{

using mem::applyPhi;
using mem::decombineReply;

Message
makeReq(Op op, Word data, PEId origin, std::uint64_t id)
{
    Message msg;
    msg.id = id;
    msg.op = op;
    msg.paddr = 42;
    msg.data = data;
    msg.origin = origin;
    msg.packets = mem::opCarriesData(op) ? 3 : 1;
    return msg;
}

/** Result of the combined execution, reconstructed from the plan. */
struct Outcome
{
    Word oldReply;  //!< value delivered for R-old
    Word newReply;  //!< value delivered for R-new
    Word memory;    //!< final memory value
};

/**
 * Execute the combined request against initial value @p x and rebuild
 * both replies the way the switch and wait buffer would.
 */
Outcome
executeCombined(const Message &r_old, const CombinePlan &plan, Word x)
{
    Outcome out;
    // Memory executes the (rewritten) combined request.
    const Word y = x;
    out.memory = applyPhi(plan.newOldOp, x, plan.newOldData);
    // The returning reply (for R-old) and the spawned reply (R-new).
    const WaitEntry &e = plan.entry;
    out.newReply = e.rule == ReplyRule::Decombine
                       ? decombineReply(e.decombineOp, y, e.datum)
                       : e.datum;
    // The reply to R-old's originator: possibly rewritten in flight;
    // a store's reply is an acknowledgement whose value is ignored by
    // the PNI, so normalize it to 0 as expectedReply() does.
    const Word raw = e.rewriteReturning ? e.rewriteDatum : y;
    out.oldReply = r_old.op == Op::Store ? 0 : raw;
    return out;
}

/** What a request should receive when executed against value v. */
Word
expectedReply(Op op, Word v)
{
    return op == Op::Store ? 0 : v;
}

/**
 * Check the outcome is consistent with one of the two serial orders of
 * (op_a, ea) and (op_b, eb) starting from x.
 */
bool
consistentWithSomeOrder(Op op_a, Word ea, Op op_b, Word eb, Word x,
                        const Outcome &out)
{
    // Order 1: a then b.
    {
        const Word ya = x;
        const Word m1 = applyPhi(op_a, x, ea);
        const Word yb = m1;
        const Word m2 = applyPhi(op_b, m1, eb);
        if (out.oldReply == expectedReply(op_a, ya) &&
            out.newReply == expectedReply(op_b, yb) &&
            out.memory == m2) {
            return true;
        }
    }
    // Order 2: b then a.
    {
        const Word yb = x;
        const Word m1 = applyPhi(op_b, x, eb);
        const Word ya = m1;
        const Word m2 = applyPhi(op_a, m1, ea);
        if (out.oldReply == expectedReply(op_a, ya) &&
            out.newReply == expectedReply(op_b, yb) &&
            out.memory == m2) {
            return true;
        }
    }
    return false;
}

struct PairParam
{
    Op opOld;
    Op opNew;
};

class CombinePairTest : public ::testing::TestWithParam<PairParam>
{};

TEST_P(CombinePairTest, SerializationPrinciple)
{
    const auto [op_old, op_new] = GetParam();
    for (Word x : {0, 5, -3, 100}) {
        for (Word ea : {1, -2, 7}) {
            for (Word eb : {1, 3, -4}) {
                Message r_old = makeReq(op_old, ea, 1, 10);
                Message r_new = makeReq(op_new, eb, 2, 11);
                const auto plan = planCombine(
                    r_old, r_new, CombinePolicy::Full, 3);
                ASSERT_TRUE(plan.has_value())
                    << mem::opName(op_old) << "+"
                    << mem::opName(op_new);
                const Outcome out = executeCombined(r_old, *plan, x);
                EXPECT_TRUE(consistentWithSomeOrder(op_old, ea, op_new,
                                                    eb, x, out))
                    << mem::opName(op_old) << "(" << ea << ") + "
                    << mem::opName(op_new) << "(" << eb << ") @ " << x
                    << " -> old=" << out.oldReply
                    << " new=" << out.newReply << " mem=" << out.memory;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CombinePairTest,
    ::testing::Values(
        // Homogeneous (section 3.1.2 / 3.3).
        PairParam{Op::Load, Op::Load}, PairParam{Op::Store, Op::Store},
        PairParam{Op::FetchAdd, Op::FetchAdd},
        PairParam{Op::Swap, Op::Swap},
        PairParam{Op::TestAndSet, Op::TestAndSet},
        PairParam{Op::FetchAnd, Op::FetchAnd},
        PairParam{Op::FetchOr, Op::FetchOr},
        PairParam{Op::FetchMax, Op::FetchMax},
        PairParam{Op::FetchMin, Op::FetchMin},
        // Heterogeneous (section 3.1.3).
        PairParam{Op::FetchAdd, Op::Load},
        PairParam{Op::Load, Op::FetchAdd},
        PairParam{Op::FetchAdd, Op::Store},
        PairParam{Op::Store, Op::FetchAdd},
        PairParam{Op::Load, Op::Store},
        PairParam{Op::Store, Op::Load}),
    [](const auto &info) {
        return std::string(mem::opName(info.param.opOld)) + "_" +
               mem::opName(info.param.opNew);
    });

TEST(CombinePolicyTest, NonePolicyNeverCombines)
{
    Message a = makeReq(Op::FetchAdd, 1, 0, 1);
    Message b = makeReq(Op::FetchAdd, 2, 1, 2);
    EXPECT_FALSE(planCombine(a, b, CombinePolicy::None, 3).has_value());
}

TEST(CombinePolicyTest, HomogeneousPolicyRejectsMixedPairs)
{
    Message a = makeReq(Op::FetchAdd, 1, 0, 1);
    Message b = makeReq(Op::Load, 0, 1, 2);
    EXPECT_FALSE(
        planCombine(a, b, CombinePolicy::Homogeneous, 3).has_value());
    Message c = makeReq(Op::FetchAdd, 2, 2, 3);
    EXPECT_TRUE(
        planCombine(a, c, CombinePolicy::Homogeneous, 3).has_value());
}

TEST(CombinePolicyTest, LoadUpgradeGrowsMessage)
{
    // Load(X) + FetchAdd(X, f) upgrades the queued 1-packet load to a
    // 3-packet data-carrying request under ByContent sizing.
    Message a = makeReq(Op::Load, 0, 0, 1);
    Message b = makeReq(Op::FetchAdd, 5, 1, 2);
    const auto plan = planCombine(a, b, CombinePolicy::Full, 3);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->newOldOp, Op::FetchAdd);
    EXPECT_EQ(plan->growOldBy, 2u);
    // Under Uniform sizing no growth is needed.
    const auto uniform = planCombine(a, b, CombinePolicy::Full, 0);
    ASSERT_TRUE(uniform.has_value());
    EXPECT_EQ(uniform->growOldBy, 0u);
}

TEST(CombinePolicyTest, WaitEntryIdentityFields)
{
    Message a = makeReq(Op::FetchAdd, 1, 3, 10);
    Message b = makeReq(Op::FetchAdd, 2, 9, 11);
    b.tag = 777;
    b.injectedAt = 123;
    const auto plan = planCombine(a, b, CombinePolicy::Full, 3);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->entry.satisfiedId, 11u);
    EXPECT_EQ(plan->entry.satisfiedOrigin, 9u);
    EXPECT_EQ(plan->entry.satisfiedTag, 777u);
    EXPECT_EQ(plan->entry.satisfiedInjectedAt, 123u);
    EXPECT_EQ(plan->entry.satisfiedOp, Op::FetchAdd);
}

TEST(WaitBufferTest, TakeMatchesInInsertionOrder)
{
    WaitBuffer wb;
    WaitEntry e1;
    e1.waitKey = 5;
    e1.datum = 1;
    WaitEntry e2;
    e2.waitKey = 5;
    e2.datum = 2;
    WaitEntry other;
    other.waitKey = 9;
    wb.insert(e1);
    wb.insert(other);
    wb.insert(e2);
    std::vector<WaitEntry> out;
    EXPECT_EQ(wb.takeMatches(5, out), 2u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].datum, 1);
    EXPECT_EQ(out[1].datum, 2);
    EXPECT_EQ(wb.size(), 1u);
    out.clear();
    EXPECT_EQ(wb.takeMatches(5, out), 0u);
}

TEST(WaitBufferTest, CapacityLimit)
{
    WaitBuffer wb(2);
    EXPECT_FALSE(wb.full());
    wb.insert(WaitEntry{});
    wb.insert(WaitEntry{});
    EXPECT_TRUE(wb.full());
}

} // namespace
} // namespace ultra::net
