/**
 * @file
 * Wall-clock self-profiler (ultra::prof) unit tests: the accounting
 * identities the report's Amdahl attribution rests on, the sorted-key
 * JSON schema, and the engine/network/machine wiring -- including the
 * contract that profiling never changes simulation output.
 *
 * Wall-clock magnitudes are host-dependent, so the assertions pin
 * *identities* (work + barrier wait vs episode wall, phase tiling vs
 * elapsed) and *shape* (key order, slot counts), never durations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/json_lite.h"
#include "core/machine.h"
#include "par/tick_engine.h"
#include "prof/profiler.h"

namespace ultra
{
namespace
{

using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

TEST(ProfTest, PhaseNamesAreSortedAndUnique)
{
    // reportJson emits phases by enum order; the sorted-keys contract
    // therefore requires the names themselves to be sorted.
    std::vector<std::string> names;
    for (unsigned p = 0; p < prof::kPhaseCount; ++p)
        names.emplace_back(prof::phaseName(static_cast<prof::Phase>(p)));
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LT(names[i - 1], names[i]) << names[i];
}

TEST(ProfTest, EngineAccountingIdentity)
{
    // Per shard: barrier wait is defined as episode wall minus that
    // shard's own work (clamped at the wall), so summed over episodes
    // work + wait >= total episode wall holds exactly, and the wait
    // alone can never exceed the episode wall.
    prof::Profiler prof;
    par::TickEngine engine(2);
    engine.setProfiler(&prof);
    std::atomic<std::uint64_t> sink{0};
    for (int episode = 0; episode < 50; ++episode) {
        engine.forEachShard([&](unsigned shard) {
            std::uint64_t acc = shard;
            for (int i = 0; i < 20000; ++i)
                acc = acc * 2654435761u + 1;
            sink += acc;
        });
    }
    ASSERT_EQ(prof.threads(), 2u);
    const std::uint64_t episodes = prof.totalEpisodeNs();
    EXPECT_GT(episodes, 0u);
    for (unsigned s = 0; s < prof.threads(); ++s) {
        const std::uint64_t work = prof.shardWorkNs(s);
        const std::uint64_t wait = prof.shardBarrierWaitNs(s);
        EXPECT_GT(work, 0u) << "shard " << s;
        EXPECT_GE(work + wait, episodes) << "shard " << s;
        EXPECT_LE(wait, episodes) << "shard " << s;
    }
}

TEST(ProfTest, InlineEngineHasNoBarrierWait)
{
    // threads == 1 runs the task inline: the episode wall is the
    // shard's own work, so the computed barrier wait stays ~zero
    // (bounded by the clamp, i.e. never above the episode wall minus
    // work, which is the timer-call overhead itself).
    prof::Profiler prof;
    par::TickEngine engine(1);
    engine.setProfiler(&prof);
    std::uint64_t sink = 0;
    for (int episode = 0; episode < 10; ++episode) {
        engine.forEachShard([&](unsigned) {
            for (int i = 0; i < 1000; ++i)
                sink = sink * 31 + 7;
        });
    }
    EXPECT_GT(sink, 0u);
    const std::uint64_t episodes = prof.totalEpisodeNs();
    EXPECT_GE(prof.shardWorkNs(0) + prof.shardBarrierWaitNs(0),
              episodes);
}

/** Assert every object's keys appear in strictly sorted order, at
 *  every nesting level. */
void
expectSortedKeys(const jsonlite::JsonValue &v, const std::string &where)
{
    if (v.isObject()) {
        std::string prev;
        for (const auto &[key, child] : v.object) {
            if (!prev.empty()) {
                EXPECT_LT(prev, key) << where;
            }
            prev = key;
            expectSortedKeys(child, where + "." + key);
        }
        // std::map iterates sorted; the real contract is that the
        // *emitted bytes* are sorted, checked below against the raw
        // text positions.
    } else if (v.isArray()) {
        for (const jsonlite::JsonValue &child : v.array)
            expectSortedKeys(child, where + "[]");
    }
}

/** Scan raw JSON text: within each object, keys must appear in
 *  ascending byte order.  A tiny bracket-matcher is enough because the
 *  report contains no strings with braces. */
void
expectEmittedKeysSorted(const std::string &text)
{
    struct Frame
    {
        std::string lastKey;
        bool isObject;
    };
    std::vector<Frame> stack;
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        if (c == '{') {
            stack.push_back({"", true});
            ++i;
        } else if (c == '[') {
            stack.push_back({"", false});
            ++i;
        } else if (c == '}' || c == ']') {
            ASSERT_FALSE(stack.empty());
            stack.pop_back();
            ++i;
        } else if (c == '"') {
            const std::size_t close = text.find('"', i + 1);
            ASSERT_NE(close, std::string::npos);
            const std::string word = text.substr(i + 1, close - i - 1);
            std::size_t after = close + 1;
            while (after < text.size() && text[after] == ' ')
                ++after;
            const bool is_key = after < text.size() &&
                                text[after] == ':' &&
                                !stack.empty() && stack.back().isObject;
            if (is_key) {
                if (!stack.back().lastKey.empty()) {
                    EXPECT_LT(stack.back().lastKey, word);
                }
                stack.back().lastKey = word;
            }
            i = close + 1;
        } else {
            ++i;
        }
    }
}

TEST(ProfTest, MachineReportSchemaAndCoverage)
{
    MachineConfig cfg = MachineConfig::small(64, 2);
    cfg.threads = 2;
    Machine machine(cfg);
    machine.enableProfiling();
    const Addr ctr = machine.allocShared(1);
    machine.launchAll(16, [&](Pe &pe) -> Task {
        for (int i = 0; i < 40; ++i)
            co_await pe.fetchAdd(ctr, 1);
    });
    ASSERT_TRUE(machine.run());
    ASSERT_NE(machine.profiler(), nullptr);
    const prof::Profiler &prof = *machine.profiler();

    // Phase timers tile the run loop: their sum can never exceed the
    // measured elapsed wall, and on any host it covers most of it
    // (the acceptance bar of >= 95% on the Table-1 workload lives in
    // cli_test; here a loose 50% floor guards against a broken lap
    // chain without inviting noise flakes).
    const double elapsed = prof.elapsedSeconds();
    const double phases =
        static_cast<double>(prof.totalPhaseNs()) * 1e-9;
    EXPECT_GT(elapsed, 0.0);
    EXPECT_LE(phases, elapsed * 1.001);
    EXPECT_GE(phases, elapsed * 0.5);
    EXPECT_EQ(prof.cycles(), machine.now());

    const std::string text = prof.reportJson();
    expectEmittedKeysSorted(text);
    const jsonlite::JsonValue doc = jsonlite::parse(text);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc["schema"].string, "ultra.prof.v1");
    EXPECT_EQ(static_cast<unsigned>(doc["threads"].number), 2u);
    ASSERT_TRUE(doc["thread_slots"].isArray());
    EXPECT_EQ(doc["thread_slots"].array.size(), 2u);
    ASSERT_TRUE(doc["attribution"].isObject());
    const jsonlite::JsonValue &at = doc["attribution"];
    for (const char *key :
         {"barrier_wait_fraction", "barrier_wait_seconds", "coverage",
          "imbalance_fraction", "overhead_fraction", "parallel_seconds",
          "serial_fraction", "serial_seconds", "stage_wait_fraction",
          "stage_wait_seconds", "work_seconds"}) {
        EXPECT_TRUE(at.has(key)) << key;
    }
    // Fractions of elapsed wall land in [0, 1] (barrier wait is
    // normalised by threads * elapsed).
    for (const char *key :
         {"serial_fraction", "barrier_wait_fraction",
          "stage_wait_fraction", "overhead_fraction", "coverage"}) {
        EXPECT_GE(at[key].number, 0.0) << key;
        EXPECT_LE(at[key].number, 1.0 + 1e-9) << key;
    }
    expectSortedKeys(doc, "report");

    // Sharded-network unit slots carry their grid coordinates; the
    // small config has one copy, so unit index == stage * groups +
    // group and the slots appear in index order.
    ASSERT_TRUE(doc["units"].isArray());
    ASSERT_FALSE(doc["units"].array.empty());
    const jsonlite::JsonValue &u1 = doc["units"].array.back();
    EXPECT_EQ(static_cast<std::size_t>(u1["unit"].number),
              doc["units"].array.size() - 1);
    EXPECT_EQ(u1["copy"].number, 0.0);
}

TEST(ProfTest, ProfilingDoesNotChangeSimulation)
{
    // The byte-identity contract at library level: the same program
    // with and without the profiler yields identical stats dumps and
    // identical memory results (the CLI-level golden check rides in
    // cli_test).
    auto runOnce = [](bool profiled) {
        MachineConfig cfg = MachineConfig::small(64, 2);
        cfg.threads = 2;
        Machine machine(cfg);
        if (profiled)
            machine.enableProfiling();
        const Addr ctr = machine.allocShared(1);
        machine.launchAll(8, [&](Pe &pe) -> Task {
            for (int i = 0; i < 25; ++i)
                co_await pe.fetchAdd(ctr, 1);
        });
        EXPECT_TRUE(machine.run());
        return machine.statsJson() + "|" +
               std::to_string(machine.peek(ctr)) + "|" +
               std::to_string(machine.now());
    };
    EXPECT_EQ(runOnce(false), runOnce(true));
}

TEST(ProfTest, ReportIsCallableMidRunAndEmpty)
{
    // A fresh profiler (the live `prof` inspect command can hit one
    // before the first episode) must produce a complete, parseable
    // report rather than divide-by-zero garbage.
    prof::Profiler prof;
    const std::string text = prof.reportJson();
    expectEmittedKeysSorted(text);
    const jsonlite::JsonValue doc = jsonlite::parse(text);
    EXPECT_EQ(doc["schema"].string, "ultra.prof.v1");
    EXPECT_EQ(doc["cycles"].number, 0.0);
}

TEST(ProfTest, ResetClearsCountersKeepsGeometry)
{
    // One profiler serves every job of a persistent server
    // (`ultrasim serve`); reset must return it to the fresh state
    // while keeping the configured shard/unit geometry, which
    // describes the attached machine rather than any one run.
    prof::Profiler prof;
    prof.configureThreads(2);
    prof.configureUnits(3);
    prof.setUnitGeometry(2, 1, 4, 7);

    prof.runBegin();
    prof.phaseAdd(prof::Phase::Pni, 1000);
    prof.setEpisodePhase(prof::Phase::NetArrival);
    prof.episodeBegin();
    prof.shardBegin(0);
    prof.shardEnd(0);
    prof.episodeEnd();
    prof.unitMessages(2, 5);
    prof.unitPool(2, 4, 16);
    prof.runEnd(480);
    ASSERT_GT(prof.phaseNs(prof::Phase::Pni), 0u);
    ASSERT_GT(prof.totalEpisodeNs(), 0u);
    ASSERT_EQ(prof.cycles(), 480u);

    prof.reset();

    EXPECT_EQ(prof.threads(), 2u) << "geometry must survive reset";
    EXPECT_EQ(prof.cycles(), 0u);
    EXPECT_EQ(prof.totalPhaseNs(), 0u);
    EXPECT_EQ(prof.totalEpisodeNs(), 0u);
    for (unsigned p = 0; p < prof::kPhaseCount; ++p) {
        EXPECT_EQ(prof.phaseNs(static_cast<prof::Phase>(p)), 0u);
        EXPECT_EQ(prof.episodeNs(static_cast<prof::Phase>(p)), 0u);
    }
    for (unsigned s = 0; s < prof.threads(); ++s) {
        EXPECT_EQ(prof.shardWorkNs(s), 0u);
        EXPECT_EQ(prof.shardBarrierWaitNs(s), 0u);
    }

    // The post-reset report equals a fresh-but-configured profiler's
    // report: same geometry, all-zero counters.
    prof::Profiler fresh;
    fresh.configureThreads(2);
    fresh.configureUnits(3);
    fresh.setUnitGeometry(2, 1, 4, 7);
    // Elapsed is wall-measured to the call when no run window is set,
    // so compare everything except that one host-dependent field.
    const jsonlite::JsonValue a = jsonlite::parse(prof.reportJson());
    const jsonlite::JsonValue b = jsonlite::parse(fresh.reportJson());
    EXPECT_EQ(a["cycles"].number, b["cycles"].number);
    EXPECT_EQ(a["threads"].number, b["threads"].number);
    EXPECT_EQ(a["units"].array.size(), b["units"].array.size());
    for (unsigned p = 0; p < prof::kPhaseCount; ++p) {
        const char *name = prof::phaseName(static_cast<prof::Phase>(p));
        EXPECT_EQ(a["phases"][name]["calls"].number, 0.0) << name;
        EXPECT_EQ(a["phases"][name]["seconds"].number, 0.0) << name;
    }
}

} // namespace
} // namespace ultra
