/**
 * @file
 * Tests for the analytic models: the Kruskal-Snir transit-time formula
 * (section 4.1), configuration cost, and the section-3.6 packaging
 * arithmetic (the 65,000-chip estimate).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analytic/config.h"
#include "analytic/packaging.h"
#include "analytic/queueing.h"

namespace ultra::analytic
{
namespace
{

NetworkConfig
makeConfig(std::uint64_t n, unsigned k, unsigned m, unsigned d)
{
    NetworkConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.m = m;
    cfg.d = d;
    return cfg;
}

TEST(ConfigTest, StagesAndSwitchCounts)
{
    const NetworkConfig cfg = makeConfig(4096, 4, 4, 1);
    EXPECT_EQ(cfg.stages(), 6u);
    EXPECT_EQ(cfg.switchesPerCopy(), 6144u);
    EXPECT_EQ(cfg.totalSwitches(), 6144u);
}

TEST(ConfigTest, CostFactor)
{
    // C = d / (k lg k): 2x2 single copy -> 1/2; 4x4 duplexed -> 1/4.
    EXPECT_DOUBLE_EQ(makeConfig(4096, 2, 2, 1).costFactor(), 0.5);
    EXPECT_DOUBLE_EQ(makeConfig(4096, 4, 4, 2).costFactor(), 0.25);
    // The paper's comparison: 4x4 d=2 and 8x8 d=6 cost about the same.
    const double c44 = makeConfig(4096, 4, 4, 2).costFactor();
    const double c88 = makeConfig(4096, 8, 8, 6).costFactor();
    EXPECT_NEAR(c44, c88, 0.01);
}

TEST(ConfigTest, Capacity)
{
    // Per-PE capacity d/m: the bandwidths 0.5 and 0.75 from the paper.
    EXPECT_DOUBLE_EQ(makeConfig(4096, 4, 4, 2).capacity(), 0.5);
    EXPECT_DOUBLE_EQ(makeConfig(4096, 8, 8, 6).capacity(), 0.75);
}

TEST(ConfigTest, Validity)
{
    EXPECT_TRUE(makeConfig(4096, 4, 4, 1).valid());
    EXPECT_TRUE(makeConfig(64, 2, 2, 3).valid());
    // 8 is not a power of 4.
    EXPECT_FALSE(makeConfig(8, 4, 4, 1).valid());
    EXPECT_FALSE(makeConfig(64, 3, 3, 1).valid());
    EXPECT_FALSE(makeConfig(64, 2, 0, 1).valid());
    EXPECT_FALSE(makeConfig(64, 2, 2, 0).valid());
}

TEST(QueueingTest, ZeroLoadDelayIsZero)
{
    EXPECT_DOUBLE_EQ(switchQueueingDelay(2, 2, 0.0), 0.0);
}

TEST(QueueingTest, MatchesClosedForm)
{
    // 1 + queueing where queueing = m^2 p (1 - 1/k) / (2 (1 - m p)).
    const double q = switchQueueingDelay(4, 4, 0.05);
    EXPECT_NEAR(q, 16.0 * 0.05 * 0.75 / (2.0 * (1.0 - 0.2)), 1e-12);
}

TEST(QueueingTest, SaturationIsInfinite)
{
    EXPECT_TRUE(std::isinf(switchQueueingDelay(2, 2, 0.5)));
    EXPECT_TRUE(std::isinf(switchQueueingDelay(2, 2, 0.7)));
}

TEST(QueueingTest, MonotoneInLoad)
{
    double prev = -1.0;
    for (double p = 0.0; p < 0.24; p += 0.01) {
        const double q = switchQueueingDelay(4, 4, p);
        EXPECT_GT(q, prev);
        prev = q;
    }
}

TEST(TransitTest, UnloadedTransitIsStagesPlusPipeFill)
{
    // T(0) = lg n / lg k + m - 1.
    const NetworkConfig cfg = makeConfig(4096, 4, 4, 1);
    EXPECT_DOUBLE_EQ(transitTime(cfg, 0.0), 6.0 + 3.0);
}

TEST(TransitTest, PaperFormulaWithCopies)
{
    // T = (1 + k (k-1) p / (2 (d - k p))) lg n / lg k + k - 1.
    const NetworkConfig cfg = makeConfig(4096, 4, 4, 2);
    const double p = 0.2;
    const double expected =
        (1.0 + 4.0 * 3.0 * p / (2.0 * (2.0 - 4.0 * p))) * 6.0 + 3.0;
    EXPECT_NEAR(transitTime(cfg, p), expected, 1e-12);
}

TEST(TransitTest, InfiniteAtCapacity)
{
    const NetworkConfig cfg = makeConfig(4096, 4, 4, 2);
    EXPECT_TRUE(std::isinf(transitTime(cfg, cfg.capacity())));
    EXPECT_FALSE(std::isinf(transitTime(cfg, cfg.capacity() - 0.01)));
}

TEST(TransitTest, DuplexBeatsSimplex)
{
    const NetworkConfig one = makeConfig(4096, 4, 4, 1);
    const NetworkConfig two = makeConfig(4096, 4, 4, 2);
    for (double p = 0.05; p < 0.24; p += 0.05)
        EXPECT_LT(transitTime(two, p), transitTime(one, p));
}

TEST(TransitTest, Figure7Ranking)
{
    // "For reasonable traffic intensities a duplexed network composed of
    // 4x4 switches yields the best performance."  At p = 0.2 the 4x4
    // d=2 configuration beats 2x2 d=1, 2x2 d=2, and 8x8 d=6 is close.
    const double p = 0.20;
    const double t44d2 = transitTime(makeConfig(4096, 4, 4, 2), p);
    // ... beating the 2x2 simplex (which even costs twice as much,
    // C = 0.5 vs 0.25) and the un-duplexed 4x4.
    EXPECT_LT(t44d2, transitTime(makeConfig(4096, 2, 2, 1), p));
    EXPECT_LT(t44d2, transitTime(makeConfig(4096, 4, 4, 1), p));
    // The 8x8 d=6 network (same cost) has more headroom at high loads:
    // bandwidth 0.75 vs 0.5, so "for a given traffic level the second
    // network is less heavily loaded".
    const double high = 0.6;
    EXPECT_TRUE(std::isinf(transitTime(makeConfig(4096, 4, 4, 2), high)));
    EXPECT_FALSE(std::isinf(transitTime(makeConfig(4096, 8, 8, 6), high)));
}

TEST(TransitTest, LoadAtTransitTimeInverts)
{
    const NetworkConfig cfg = makeConfig(4096, 4, 4, 2);
    const double target = 15.0;
    const double p = loadAtTransitTime(cfg, target);
    EXPECT_NEAR(transitTime(cfg, p), target, 1e-6);
}

TEST(TransitTest, LoadAtUnreachableTargetIsZero)
{
    const NetworkConfig cfg = makeConfig(4096, 4, 4, 1);
    EXPECT_DOUBLE_EQ(loadAtTransitTime(cfg, 1.0), 0.0);
}

TEST(SweepTest, CurveShape)
{
    const NetworkConfig cfg = makeConfig(4096, 4, 4, 2);
    const TransitCurve curve = sweepTransitTime(cfg, 0.35, 35);
    ASSERT_EQ(curve.load.size(), 36u);
    EXPECT_DOUBLE_EQ(curve.load.front(), 0.0);
    EXPECT_NEAR(curve.load.back(), 0.35, 1e-12);
    // Monotone nondecreasing, finite below capacity.
    for (std::size_t i = 1; i < curve.transit.size(); ++i)
        EXPECT_GE(curve.transit[i], curve.transit[i - 1]);
}

TEST(ConfigSearchTest, FindsCheapestFeasible)
{
    // At p = 0.2 with a 20-cycle budget on 4096 ports, the duplexed
    // 4x4 network (C = 0.25) is feasible and cheaper than any feasible
    // 2x2 variant (C >= 0.5).
    const NetworkConfig best = cheapestConfiguration(4096, 0.2, 20.0);
    ASSERT_GT(best.d, 0u) << "a feasible configuration exists";
    EXPECT_LE(transitTime(best, 0.2), 20.0);
    EXPECT_LE(best.costFactor(), 0.251);
}

TEST(ConfigSearchTest, InfeasibleBudgetReturnsSentinel)
{
    // Nothing can beat the unloaded minimum of lg n / lg k + k - 1.
    const NetworkConfig best = cheapestConfiguration(4096, 0.1, 3.0);
    EXPECT_EQ(best.d, 0u);
}

TEST(ConfigSearchTest, GenerousBudgetPicksCheapestOverall)
{
    // With latency no object, cost alone decides: larger k wins
    // (C = d/(k lg k) falls as k grows).
    const NetworkConfig best = cheapestConfiguration(4096, 0.05, 1000.0);
    ASSERT_GT(best.d, 0u);
    EXPECT_GE(best.k, 8u);
    EXPECT_EQ(best.d, 1u);
}

TEST(ConfigSearchTest, HighLoadNeedsMoreCopies)
{
    // Past a single network's capacity the search must add copies.
    const NetworkConfig best = cheapestConfiguration(4096, 0.6, 60.0);
    ASSERT_GT(best.d, 0u);
    EXPECT_GT(best.capacity(), 0.6);
}

TEST(PackagingTest, PaperChipCounts)
{
    // Section 3.6: a 4096-PE machine needs roughly 65,000 chips, 19%
    // of them network chips; 64 PE boards of 352 chips and 64 MM
    // boards of 672 chips.
    const MachinePackage pkg = packageMachine(4096);
    EXPECT_EQ(pkg.peChips, 4096u * 4u);
    EXPECT_EQ(pkg.mmChips, 4096u * 9u);
    EXPECT_EQ(pkg.numSwitches, 6144u);
    EXPECT_EQ(pkg.networkChips, 12288u);
    EXPECT_EQ(pkg.totalChips(), 65536u);
    EXPECT_NEAR(pkg.networkFraction(), 0.19, 0.01);
    EXPECT_EQ(pkg.peBoards, 64u);
    EXPECT_EQ(pkg.mmBoards, 64u);
    EXPECT_EQ(pkg.chipsPerPeBoard, 352u);
    EXPECT_EQ(pkg.chipsPerMmBoard, 672u);
}

TEST(PackagingTest, MemoryDominatesChipCount)
{
    // "The chip count is still dominated ... by the memory chips."
    const MachinePackage pkg = packageMachine(4096);
    EXPECT_GT(pkg.mmChips, pkg.peChips + pkg.networkChips);
}

TEST(PackagingTest, SmallerMachines)
{
    const MachinePackage pkg = packageMachine(64);
    EXPECT_EQ(pkg.numPe, 64u);
    EXPECT_EQ(pkg.numSwitches, (64u / 4u) * 3u);
    // 64 = 8^2 but 3 stages is odd: no even split into board halves.
    EXPECT_EQ(pkg.peBoards, 0u);

    const MachinePackage pkg256 = packageMachine(256);
    EXPECT_EQ(pkg256.peBoards, 16u);
    EXPECT_EQ(pkg256.chipsPerPeBoard,
              16u * 4u + (16u / 4u) * 2u * 2u);
}

} // namespace
} // namespace ultra::analytic
