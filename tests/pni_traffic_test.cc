/**
 * @file
 * Tests of the processor-network interfaces (section 3.4) and the
 * synthetic traffic sources: FIFO issue, the one-outstanding-reference-
 * per-location rule, outstanding-window limiting, hashing at the PNI,
 * and open/closed-loop generation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/pni.h"
#include "net/traffic.h"

namespace ultra::net
{
namespace
{

struct Rig
{
    explicit Rig(NetSimConfig net_cfg, PniConfig pni_cfg = {},
                 bool hash_on = false)
        : memory(memCfg(net_cfg)), network(net_cfg, memory),
          hash(log2Exact(memory.totalWords()), hash_on),
          pni(pni_cfg, network, hash)
    {
        pni.setCompleteCallback(
            [this](PEId pe, std::uint64_t ticket, Word value) {
                completions.emplace_back(pe, ticket, value);
            });
    }

    static mem::MemoryConfig
    memCfg(const NetSimConfig &cfg)
    {
        mem::MemoryConfig mc;
        mc.numModules = cfg.numPorts;
        mc.wordsPerModule = 1024;
        mc.accessTime = cfg.mmAccessTime;
        return mc;
    }

    void
    runCycles(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i) {
            pni.tick();
            network.tick();
        }
    }

    mem::MemorySystem memory;
    Network network;
    mem::AddressHash hash;
    PniArray pni;
    std::vector<std::tuple<PEId, std::uint64_t, Word>> completions;
};

NetSimConfig
smallNet()
{
    NetSimConfig cfg;
    cfg.numPorts = 16;
    cfg.k = 2;
    cfg.combinePolicy = CombinePolicy::Full;
    return cfg;
}

TEST(PniTest, RequestCompletesWithValue)
{
    Rig rig(smallNet());
    rig.memory.poke(9, 77);
    const auto ticket = rig.pni.request(0, Op::Load, 9, 0);
    rig.runCycles(200);
    ASSERT_EQ(rig.completions.size(), 1u);
    EXPECT_EQ(std::get<1>(rig.completions[0]), ticket);
    EXPECT_EQ(std::get<2>(rig.completions[0]), 77);
    EXPECT_TRUE(rig.pni.idle(0));
}

TEST(PniTest, FifoIssuePerPe)
{
    // Completions of same-PE requests to the same module preserve
    // issue order (FIFO issue + FIFO queues + FIFO module service).
    Rig rig(smallNet());
    for (int i = 0; i < 6; ++i)
        rig.pni.request(0, Op::FetchAdd, 0, 1);
    rig.runCycles(2000);
    ASSERT_EQ(rig.completions.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(std::get<2>(rig.completions[i]), i);
}

TEST(PniTest, UniqueLocationRuleSerializesSameAddress)
{
    // Two requests to one location from one PE must not be in flight
    // together; the second waits for the first's reply.
    PniConfig pni_cfg;
    pni_cfg.enforceUniqueLocation = true;
    Rig rig(smallNet(), pni_cfg);
    rig.pni.request(0, Op::FetchAdd, 5, 1);
    rig.pni.request(0, Op::FetchAdd, 5, 1);
    rig.pni.tick();
    rig.network.tick();
    // After one tick only the first can be outstanding.
    EXPECT_EQ(rig.pni.pendingCount(0), 2u);
    rig.runCycles(500);
    EXPECT_EQ(rig.completions.size(), 2u);
    EXPECT_EQ(rig.memory.peek(5), 2);
}

TEST(PniTest, MaxOutstandingWindow)
{
    PniConfig pni_cfg;
    pni_cfg.maxOutstanding = 2;
    Rig rig(smallNet(), pni_cfg);
    for (Addr a = 0; a < 8; ++a)
        rig.pni.request(0, Op::Load, a, 0);
    // All eventually complete despite the tiny window.
    rig.runCycles(2000);
    EXPECT_EQ(rig.completions.size(), 8u);
    EXPECT_EQ(rig.pni.stats().completed, 8u);
}

TEST(PniTest, HashingStillRoutesCorrectly)
{
    Rig rig(smallNet(), PniConfig{}, true);
    // With hashing on, the PNI translates; values must still come back
    // right because the memory is poked through the same hash.
    const Addr vaddr = 100;
    rig.memory.poke(rig.hash.toPhysical(vaddr), 4242);
    rig.pni.request(0, Op::Load, vaddr, 0);
    rig.runCycles(300);
    ASSERT_EQ(rig.completions.size(), 1u);
    EXPECT_EQ(std::get<2>(rig.completions[0]), 4242);
}

TEST(PniTest, AccessTimeStatIncludesQueueing)
{
    Rig rig(smallNet());
    for (int i = 0; i < 4; ++i)
        rig.pni.request(0, Op::FetchAdd, 3, 1);
    rig.runCycles(1000);
    // Later requests waited on the unique-location rule, so the mean
    // access time well exceeds the raw round trip.
    EXPECT_EQ(rig.pni.stats().completed, 4u);
    EXPECT_GT(rig.pni.stats().accessTime.max(),
              rig.pni.stats().accessTime.min() * 2.0);
}

TEST(TrafficTest, OpenLoopGeneratesAtConfiguredRate)
{
    Rig rig(smallNet());
    TrafficConfig tc;
    tc.activePes = 16;
    tc.rate = 0.1;
    tc.addrSpaceWords = 1024;
    TrafficGenerator gen(tc, rig.pni, rig.network);
    gen.run(2000);
    const double expected = 16 * 0.1 * 2000;
    EXPECT_NEAR(static_cast<double>(gen.generated()), expected,
                expected * 0.15);
    EXPECT_TRUE(gen.drain(50000));
    EXPECT_EQ(rig.pni.stats().completed, gen.generated());
}

TEST(TrafficTest, ClosedLoopKeepsWindowFull)
{
    Rig rig(smallNet());
    TrafficConfig tc;
    tc.activePes = 8;
    tc.closedLoop = true;
    tc.window = 2;
    tc.addrSpaceWords = 1024;
    TrafficGenerator gen(tc, rig.pni, rig.network);
    gen.run(500);
    // A completion in the last cycle may have briefly dropped a PE to
    // window - 1; after the generator's next refill every active PE
    // has exactly `window` requests pending again.
    gen.tick();
    for (PEId pe = 0; pe < 8; ++pe)
        EXPECT_EQ(rig.pni.pendingCount(pe), 2u);
    EXPECT_TRUE(gen.drain(50000));
}

TEST(TrafficTest, HotspotTrafficCombines)
{
    Rig rig(smallNet());
    TrafficConfig tc;
    tc.activePes = 16;
    tc.rate = 0.2;
    tc.hotFraction = 1.0; // everything to one F&A cell
    tc.hotAddr = 7;
    TrafficGenerator gen(tc, rig.pni, rig.network);
    gen.run(2000);
    ASSERT_TRUE(gen.drain(100000));
    // All increments arrived...
    EXPECT_EQ(rig.memory.peek(rig.hash.toPhysical(7)),
              static_cast<Word>(gen.generated()));
    // ...and combining absorbed a good share of them.
    EXPECT_GT(rig.network.stats().combined, gen.generated() / 10);
}

TEST(TrafficTest, BurroughsRetriesThroughPni)
{
    NetSimConfig net_cfg = smallNet();
    net_cfg.burroughsKill = true;
    net_cfg.combinePolicy = CombinePolicy::None;
    Rig rig(net_cfg);
    TrafficConfig tc;
    tc.activePes = 16;
    tc.rate = 0.15;
    tc.addrSpaceWords = 512;
    TrafficGenerator gen(tc, rig.pni, rig.network);
    gen.run(1500);
    ASSERT_TRUE(gen.drain(200000));
    EXPECT_EQ(rig.pni.stats().completed, gen.generated());
    EXPECT_GT(rig.network.stats().killed, 0u);
    EXPECT_EQ(rig.pni.stats().retries, rig.network.stats().killed);
}

} // namespace
} // namespace ultra::net
