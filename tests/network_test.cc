/**
 * @file
 * End-to-end tests of the combining Omega network (section 3):
 * delivery of every op, the serialization principle under
 * fetch-and-add storms (with and without combining), finite-queue
 * backpressure, multiple network copies, and the Burroughs
 * kill-on-conflict baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "mem/memory_system.h"
#include "net/network.h"

namespace ultra::net
{
namespace
{

struct Delivery
{
    PEId pe;
    std::uint64_t tag;
    Word value;
};

struct Harness
{
    explicit Harness(const NetSimConfig &cfg)
        : memory(memCfg(cfg)), network(cfg, memory)
    {
        network.setDeliverCallback(
            [this](PEId pe, std::uint64_t tag, Word value) {
                deliveries.push_back({pe, tag, value});
            });
    }

    static mem::MemoryConfig
    memCfg(const NetSimConfig &cfg)
    {
        mem::MemoryConfig mc;
        mc.numModules = cfg.numPorts;
        mc.wordsPerModule = 1024;
        mc.accessTime = cfg.mmAccessTime;
        return mc;
    }

    /** Inject, retrying across cycles until accepted. */
    void
    injectRetrying(PEId pe, Op op, Addr paddr, Word data,
                   std::uint64_t tag)
    {
        while (!network.tryInject(pe, op, paddr, data, tag))
            network.tick();
    }

    bool
    runUntilDelivered(std::size_t count, Cycle max_cycles = 100000)
    {
        const Cycle deadline = network.now() + max_cycles;
        while (deliveries.size() < count && network.now() < deadline)
            network.tick();
        return deliveries.size() >= count;
    }

    mem::MemorySystem memory;
    Network network;
    std::vector<Delivery> deliveries;
};

NetSimConfig
smallConfig()
{
    NetSimConfig cfg;
    cfg.numPorts = 16;
    cfg.k = 2;
    cfg.combinePolicy = CombinePolicy::Full;
    return cfg;
}

TEST(NetworkTest, LoadRoundTrip)
{
    Harness h(smallConfig());
    h.memory.poke(5, 1234);
    ASSERT_TRUE(h.network.tryInject(3, Op::Load, 5, 0, 99));
    ASSERT_TRUE(h.runUntilDelivered(1));
    EXPECT_EQ(h.deliveries[0].pe, 3u);
    EXPECT_EQ(h.deliveries[0].tag, 99u);
    EXPECT_EQ(h.deliveries[0].value, 1234);
    EXPECT_EQ(h.network.inFlight(), 0u);
}

TEST(NetworkTest, RoundTripTimeAtZeroLoad)
{
    // One message: RTT = 2 hops onto/off the net + 2 transits
    // (stages each way) + pipe fill + memory access; should be close
    // to the analytic minimum and far from any congested value.
    Harness h(smallConfig());
    ASSERT_TRUE(h.network.tryInject(0, Op::Load, 7, 0, 0));
    ASSERT_TRUE(h.runUntilDelivered(1));
    const auto &stats = h.network.stats();
    const double rtt = stats.roundTrip.mean();
    const double stages = 4; // log2(16)
    EXPECT_GE(rtt, 2 * stages);
    EXPECT_LE(rtt, 2 * stages + 16);
}

TEST(NetworkTest, AllOpsExecuteCorrectly)
{
    Harness h(smallConfig());
    h.memory.poke(10, 100);
    std::uint64_t tag = 0;
    h.injectRetrying(0, Op::FetchAdd, 10, 5, tag++); // ->100, mem 105
    ASSERT_TRUE(h.runUntilDelivered(1));
    h.injectRetrying(1, Op::Swap, 10, 7, tag++); // ->105, mem 7
    ASSERT_TRUE(h.runUntilDelivered(2));
    h.injectRetrying(2, Op::Load, 10, 0, tag++); // ->7
    ASSERT_TRUE(h.runUntilDelivered(3));
    h.injectRetrying(3, Op::Store, 10, 9, tag++); // ack, mem 9
    ASSERT_TRUE(h.runUntilDelivered(4));
    h.injectRetrying(4, Op::TestAndSet, 10, 0, tag++); // ->9, mem 1
    ASSERT_TRUE(h.runUntilDelivered(5));

    EXPECT_EQ(h.deliveries[0].value, 100);
    EXPECT_EQ(h.deliveries[1].value, 105);
    EXPECT_EQ(h.deliveries[2].value, 7);
    EXPECT_EQ(h.deliveries[4].value, 9);
    EXPECT_EQ(h.memory.peek(10), 1);
}

/**
 * The serialization principle (section 2.2) under a fetch-and-add
 * storm: every PE adds its increment to one variable; the returned
 * values must be exactly the partial sums of some permutation of the
 * increments, and the final value the total sum.
 */
void
checkFetchAddStorm(NetSimConfig cfg, bool expect_combining)
{
    Harness h(cfg);
    const Addr target = 3;
    const std::uint32_t pes = cfg.numPorts;
    std::vector<Word> increments(pes);
    for (PEId pe = 0; pe < pes; ++pe) {
        increments[pe] = 1 + static_cast<Word>(pe % 7);
        h.injectRetrying(pe, Op::FetchAdd, target, increments[pe],
                         pe);
    }
    ASSERT_TRUE(h.runUntilDelivered(pes));

    Word total = 0;
    for (Word inc : increments)
        total += inc;
    EXPECT_EQ(h.memory.peek(target), total);

    // Reconstruct: sort deliveries by returned value; they must form a
    // chain 0 = v0 < v1 < ... with v_{i+1} = v_i + inc(pe_i) for some
    // ordering, i.e. the multiset { value + its own increment } must
    // equal the multiset { next value } plus { total }.
    std::vector<std::pair<Word, Word>> seen; // (old value, increment)
    for (const auto &d : h.deliveries)
        seen.emplace_back(d.value, increments[d.pe]);
    std::sort(seen.begin(), seen.end());
    Word running = 0;
    for (const auto &[old_value, inc] : seen) {
        EXPECT_EQ(old_value, running)
            << "returned values are not the partial sums of any "
               "serialization";
        running += inc;
    }
    EXPECT_EQ(running, total);

    if (expect_combining)
        EXPECT_GT(h.network.stats().combined, 0u);
    else
        EXPECT_EQ(h.network.stats().combined, 0u);
}

TEST(NetworkTest, FetchAddStormWithCombining)
{
    checkFetchAddStorm(smallConfig(), true);
}

TEST(NetworkTest, FetchAddStormWithoutCombining)
{
    NetSimConfig cfg = smallConfig();
    cfg.combinePolicy = CombinePolicy::None;
    checkFetchAddStorm(cfg, false);
}

TEST(NetworkTest, FetchAddStormHomogeneousPolicy)
{
    NetSimConfig cfg = smallConfig();
    cfg.combinePolicy = CombinePolicy::Homogeneous;
    checkFetchAddStorm(cfg, true);
}

TEST(NetworkTest, FetchAddStormLargerSwitches)
{
    NetSimConfig cfg = smallConfig();
    cfg.k = 4;
    cfg.numPorts = 64;
    checkFetchAddStorm(cfg, true);
}

TEST(NetworkTest, FetchAddStormMultiCombine)
{
    NetSimConfig cfg = smallConfig();
    cfg.maxCombinesPerVisit = 8;
    cfg.combinePolicy = CombinePolicy::Homogeneous;
    checkFetchAddStorm(cfg, true);
}

TEST(NetworkTest, CombiningReducesMemoryTraffic)
{
    // The key property of section 3.1.2: any number of concurrent
    // references to one location can be satisfied with far fewer
    // memory accesses than references.
    NetSimConfig cfg = smallConfig();
    Harness h(cfg);
    for (PEId pe = 0; pe < cfg.numPorts; ++pe)
        h.injectRetrying(pe, Op::FetchAdd, 3, 1, pe);
    ASSERT_TRUE(h.runUntilDelivered(cfg.numPorts));
    EXPECT_LT(h.network.stats().mmServed, cfg.numPorts);
    EXPECT_EQ(h.network.stats().delivered, cfg.numPorts);
    EXPECT_EQ(h.network.stats().combined,
              h.network.stats().decombined);
}

TEST(NetworkTest, MixedOpsToSameLocationWithFullCombining)
{
    // Loads, stores and fetch-and-adds colliding on one location must
    // all complete, and the final value must equal SOME serialization:
    // with stores of the same value and FAs of +1, the end state is
    // checkable exactly.
    NetSimConfig cfg = smallConfig();
    Harness h(cfg);
    const Addr target = 4;
    // 8 FA(+1), 4 Load, 4 Store(1000).
    std::uint64_t tag = 0;
    for (PEId pe = 0; pe < 8; ++pe)
        h.injectRetrying(pe, Op::FetchAdd, target, 1, tag++);
    for (PEId pe = 8; pe < 12; ++pe)
        h.injectRetrying(pe, Op::Load, target, 0, tag++);
    for (PEId pe = 12; pe < 16; ++pe)
        h.injectRetrying(pe, Op::Store, target, 1000, tag++);
    ASSERT_TRUE(h.runUntilDelivered(16));
    // Final value: 1000 + (FAs serialized after the last store), i.e.
    // in [1000, 1008] or [0, 8] if every store preceded... no: the
    // last serialized store resets to 1000, then any remaining FAs
    // add 1 each.  Value must be 1000 + j for some 0 <= j <= 8.
    const Word final_value = h.memory.peek(target);
    EXPECT_GE(final_value, 1000);
    EXPECT_LE(final_value, 1008);
    EXPECT_EQ(h.network.inFlight(), 0u);
}

TEST(NetworkTest, MixedOpsUnderTightQueues)
{
    // Reply fission with rewrites (Load-Store, FA-Store upgrades) must
    // stay consistent even when queues barely hold one data message.
    NetSimConfig cfg = smallConfig();
    cfg.queueCapacityPackets = 3;
    cfg.mmPendingCapacityPackets = 3;
    Harness h(cfg);
    const Addr target = 4;
    std::uint64_t tag = 0;
    for (int wave = 0; wave < 3; ++wave) {
        for (PEId pe = 0; pe < 8; ++pe)
            h.injectRetrying(pe, Op::FetchAdd, target, 1, tag++);
        for (PEId pe = 8; pe < 12; ++pe)
            h.injectRetrying(pe, Op::Load, target, 0, tag++);
        for (PEId pe = 12; pe < 16; ++pe)
            h.injectRetrying(pe, Op::Store, target, 5000, tag++);
    }
    ASSERT_TRUE(h.runUntilDelivered(tag, 300000));
    const Word final_value = h.memory.peek(target);
    // Some serialization of 24 FAs(+1) and 12 Stores(5000): final is
    // 5000 + j for 0 <= j <= 24, or j alone if no store serialized
    // last -- the latter is impossible only if a store exists, so:
    EXPECT_GE(final_value, 5000);
    EXPECT_LE(final_value, 5024);
    EXPECT_EQ(h.network.inFlight(), 0u);
}

TEST(NetworkTest, TinyQueuesBackpressureWithoutLoss)
{
    NetSimConfig cfg = smallConfig();
    cfg.queueCapacityPackets = 3; // one data message
    cfg.mmPendingCapacityPackets = 3;
    Harness h(cfg);
    std::uint64_t tag = 0;
    // Everybody hammers module 0 (worst case for backpressure).
    for (int wave = 0; wave < 4; ++wave)
        for (PEId pe = 0; pe < cfg.numPorts; ++pe)
            h.injectRetrying(pe, Op::FetchAdd, 0, 1, tag++);
    ASSERT_TRUE(h.runUntilDelivered(tag, 200000));
    EXPECT_EQ(h.memory.peek(0), static_cast<Word>(tag));
    EXPECT_EQ(h.network.inFlight(), 0u);
}

TEST(NetworkTest, UniformSizingAndLargeM)
{
    NetSimConfig cfg = smallConfig();
    cfg.sizing = PacketSizing::Uniform;
    cfg.m = 4;
    Harness h(cfg);
    for (PEId pe = 0; pe < cfg.numPorts; ++pe)
        h.injectRetrying(pe, Op::FetchAdd, pe, 2, pe);
    ASSERT_TRUE(h.runUntilDelivered(cfg.numPorts));
    for (PEId pe = 0; pe < cfg.numPorts; ++pe)
        EXPECT_EQ(h.memory.peek(pe), 2);
}

TEST(NetworkTest, MultipleCopiesDeliverEverything)
{
    NetSimConfig cfg = smallConfig();
    cfg.d = 3;
    Harness h(cfg);
    std::uint64_t tag = 0;
    for (int wave = 0; wave < 3; ++wave)
        for (PEId pe = 0; pe < cfg.numPorts; ++pe)
            h.injectRetrying(pe, Op::FetchAdd, (pe + wave) % 16, 1,
                             tag++);
    ASSERT_TRUE(h.runUntilDelivered(tag));
    Word total = 0;
    for (Addr a = 0; a < 16; ++a)
        total += h.memory.peek(a);
    EXPECT_EQ(total, static_cast<Word>(tag));
}

TEST(NetworkTest, CopiesIncreaseInjectionBandwidth)
{
    // A PE can have one message per copy in flight on its links: with
    // d copies, back-to-back injections accept d messages immediately.
    NetSimConfig cfg = smallConfig();
    cfg.d = 2;
    Harness h(cfg);
    EXPECT_TRUE(h.network.tryInject(0, Op::Store, 1, 1, 0));
    EXPECT_TRUE(h.network.tryInject(0, Op::Store, 2, 1, 1));
    EXPECT_FALSE(h.network.tryInject(0, Op::Store, 3, 1, 2));
}

TEST(NetworkTest, BurroughsModeKillsAndRetriesComplete)
{
    NetSimConfig cfg = smallConfig();
    cfg.burroughsKill = true;
    cfg.combinePolicy = CombinePolicy::None;
    Harness h(cfg);

    // Track kills and re-inject on the next cycle.
    std::vector<std::pair<PEId, std::uint64_t>> killed;
    h.network.setKillCallback(
        [&](PEId pe, std::uint64_t tag) { killed.emplace_back(pe, tag); });

    const std::uint32_t pes = cfg.numPorts;
    for (PEId pe = 0; pe < pes; ++pe)
        h.injectRetrying(pe, Op::FetchAdd, 0, 1, pe);

    Cycle guard = 0;
    while (h.deliveries.size() < pes && guard++ < 100000) {
        if (!killed.empty()) {
            auto [pe, tag] = killed.back();
            if (h.network.tryInject(pe, Op::FetchAdd, 0, 1, tag))
                killed.pop_back();
        }
        h.network.tick();
    }
    ASSERT_EQ(h.deliveries.size(), pes);
    EXPECT_EQ(h.memory.peek(0), static_cast<Word>(pes));
    // Conflicts on the hot path must actually have killed something.
    EXPECT_GT(h.network.stats().killed, 0u);
}

TEST(NetworkTest, DeterministicAcrossRuns)
{
    auto run = [] {
        Harness h(smallConfig());
        for (PEId pe = 0; pe < 16; ++pe)
            h.injectRetrying(pe, Op::FetchAdd, pe % 3, 1, pe);
        h.runUntilDelivered(16);
        return std::make_tuple(h.network.now(),
                               h.network.stats().combined,
                               h.network.stats().roundTrip.mean());
    };
    EXPECT_EQ(run(), run());
}

TEST(NetworkTest, InvalidConfigsRejected)
{
    NetSimConfig cfg;
    cfg.numPorts = 24; // not a power of two
    EXPECT_FALSE(cfg.valid());
    cfg = NetSimConfig{};
    cfg.numPorts = 8;
    cfg.k = 4; // 8 is not a power of 4
    EXPECT_FALSE(cfg.valid());
    cfg = NetSimConfig{};
    cfg.queueCapacityPackets = 2; // smaller than one data message
    EXPECT_FALSE(cfg.valid());
    cfg = NetSimConfig{};
    EXPECT_TRUE(cfg.valid());
}

TEST(NetworkTest, DrainCompletesAndReportsTime)
{
    Harness h(smallConfig());
    for (PEId pe = 0; pe < 16; ++pe)
        h.injectRetrying(pe, Op::Store, pe, 7, pe);
    EXPECT_TRUE(h.network.drain(10000));
    EXPECT_EQ(h.network.inFlight(), 0u);
    EXPECT_EQ(h.deliveries.size(), 16u);
}

} // namespace
} // namespace ultra::net
