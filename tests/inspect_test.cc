/**
 * @file
 * The live inspection protocol (ultra::inspect), tested in-process:
 * the request grammar, the socket transport, and a full
 * client-drives-simulation loop -- a Machine running on a worker
 * thread with the Inspector installed as its cycle hook, and an
 * InspectClient pausing, stepping, dumping switches, reading memory,
 * arming watchpoints, and steering from the test thread.
 *
 * The headline guarantee is pinned at the end: an attached, paused,
 * inspected and resumed run produces statsJson() byte-identical to an
 * unattached run, at 1 and 4 host threads.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/json_lite.h"
#include "core/machine.h"
#include "inspect/inspector.h"
#include "inspect/protocol.h"
#include "inspect/server.h"
#include "pe/task.h"

namespace ultra
{
namespace
{

using inspect::Command;
using inspect::CmpOp;
using inspect::InspectClient;
using inspect::InspectServer;
using inspect::Inspector;
using inspect::WatchSpec;

// ------------------------------------------------------------------
// Protocol grammar
// ------------------------------------------------------------------

Command
mustParse(const std::string &line)
{
    Command cmd;
    std::string err;
    EXPECT_TRUE(inspect::parseCommand(line, cmd, err))
        << line << ": " << err;
    return cmd;
}

void
mustReject(const std::string &line)
{
    Command cmd;
    std::string err;
    EXPECT_FALSE(inspect::parseCommand(line, cmd, err)) << line;
    EXPECT_FALSE(err.empty()) << line;
}

TEST(InspectProtocol, ParsesBareCommands)
{
    EXPECT_EQ(mustParse("{\"cmd\":\"ping\"}").kind, Command::Kind::Ping);
    EXPECT_EQ(mustParse("{\"cmd\":\"status\"}").kind,
              Command::Kind::Status);
    EXPECT_EQ(mustParse("{\"cmd\":\"pause\"}").kind,
              Command::Kind::Pause);
    EXPECT_EQ(mustParse("{\"cmd\":\"resume\"}").kind,
              Command::Kind::Resume);
    EXPECT_EQ(mustParse("{\"cmd\":\"watchpoints\"}").kind,
              Command::Kind::Watchpoints);
    EXPECT_EQ(mustParse("{\"cmd\":\"prof\"}").kind,
              Command::Kind::Prof);
    EXPECT_EQ(mustParse("{\"cmd\":\"detach\"}").kind,
              Command::Kind::Detach);
    // "quit" is a courtesy alias for detach.
    EXPECT_EQ(mustParse("{\"cmd\":\"quit\"}").kind,
              Command::Kind::Detach);
}

TEST(InspectProtocol, ParsesStep)
{
    Command by_n = mustParse("{\"cmd\":\"step\",\"n\":100}");
    EXPECT_EQ(by_n.kind, Command::Kind::Step);
    EXPECT_EQ(by_n.stepCount, 100u);
    EXPECT_EQ(by_n.stepTo, kNeverCycle);

    Command to = mustParse("{\"cmd\":\"step\",\"to\":5000}");
    EXPECT_EQ(to.stepTo, 5000u);

    // A bare step is a single cycle.
    EXPECT_EQ(mustParse("{\"cmd\":\"step\"}").stepCount, 1u);

    mustReject("{\"cmd\":\"step\",\"n\":0}");
    mustReject("{\"cmd\":\"step\",\"n\":-3}");
}

TEST(InspectProtocol, ParsesSwitchMniMemPoke)
{
    Command sw = mustParse(
        "{\"cmd\":\"switch\",\"copy\":1,\"stage\":2,\"index\":3}");
    EXPECT_EQ(sw.kind, Command::Kind::Switch);
    EXPECT_EQ(sw.copy, 1u);
    EXPECT_EQ(sw.stage, 2u);
    EXPECT_EQ(sw.index, 3u);

    Command mni = mustParse("{\"cmd\":\"mni\",\"module\":13}");
    EXPECT_EQ(mni.kind, Command::Kind::Mni);
    EXPECT_EQ(mni.module, 13u);

    Command by_vaddr = mustParse("{\"cmd\":\"mem\",\"vaddr\":64}");
    EXPECT_TRUE(by_vaddr.hasVaddr);
    EXPECT_EQ(by_vaddr.vaddr, 64u);

    Command by_module =
        mustParse("{\"cmd\":\"mem\",\"module\":3,\"offset\":7}");
    EXPECT_FALSE(by_module.hasVaddr);
    EXPECT_TRUE(by_module.hasModule);
    EXPECT_EQ(by_module.module, 3u);
    EXPECT_EQ(by_module.offset, 7u);

    Command poke =
        mustParse("{\"cmd\":\"poke\",\"vaddr\":64,\"value\":9}");
    EXPECT_EQ(poke.kind, Command::Kind::Poke);
    EXPECT_EQ(poke.value, 9u);

    mustReject("{\"cmd\":\"mem\"}"); // needs vaddr or module+offset
    mustReject("{\"cmd\":\"poke\",\"vaddr\":64}"); // needs value
}

TEST(InspectProtocol, ParsesWatchSpecs)
{
    Command cyc = mustParse("{\"cmd\":\"watch\",\"cycle\":5000}");
    EXPECT_EQ(cyc.kind, Command::Kind::Watch);
    EXPECT_EQ(cyc.watch.kind, WatchSpec::Kind::Cycle);
    EXPECT_EQ(cyc.watch.cycle, 5000u);

    Command stat = mustParse("{\"cmd\":\"watch\",\"stat\":"
                             "\"net.combined\",\"op\":\">\","
                             "\"value\":10}");
    EXPECT_EQ(stat.watch.kind, WatchSpec::Kind::Stat);
    EXPECT_EQ(stat.watch.stat, "net.combined");
    EXPECT_EQ(stat.watch.op, CmpOp::GT);
    EXPECT_EQ(stat.watch.value, 10.0);

    Command tomm = mustParse("{\"cmd\":\"watch\",\"queue\":\"tomm\","
                             "\"stage\":2,\"op\":\">=\",\"value\":10}");
    EXPECT_EQ(tomm.watch.kind, WatchSpec::Kind::Queue);
    EXPECT_TRUE(tomm.watch.toMm);
    EXPECT_EQ(tomm.watch.stage, 2u);
    EXPECT_EQ(tomm.watch.op, CmpOp::GE);

    Command tope = mustParse("{\"cmd\":\"watch\",\"queue\":\"tope\","
                             "\"stage\":0,\"op\":\"<\",\"value\":4}");
    EXPECT_EQ(tope.watch.kind, WatchSpec::Kind::Queue);
    EXPECT_FALSE(tope.watch.toMm);

    Command wb = mustParse("{\"cmd\":\"watch\",\"queue\":\"wb\","
                           "\"stage\":1,\"op\":\"!=\",\"value\":0}");
    EXPECT_EQ(wb.watch.kind, WatchSpec::Kind::WaitBuffer);
    EXPECT_EQ(wb.watch.op, CmpOp::NE);

    Command drift = mustParse("{\"cmd\":\"watch\",\"drift\":0.15}");
    EXPECT_EQ(drift.watch.kind, WatchSpec::Kind::Drift);
    EXPECT_EQ(drift.watch.value, 0.15);

    mustReject("{\"cmd\":\"watch\"}"); // no spec at all
    mustReject("{\"cmd\":\"watch\",\"queue\":\"sideways\","
               "\"stage\":0,\"op\":\">\",\"value\":1}");
    mustReject("{\"cmd\":\"watch\",\"stat\":\"x\",\"op\":\"~\","
               "\"value\":1}");
    mustReject("{\"cmd\":\"watch\",\"stat\":\"x\",\"value\":1}");
}

TEST(InspectProtocol, RejectsMalformedLines)
{
    mustReject("");
    mustReject("not json at all");
    mustReject("[1,2,3]");
    mustReject("{\"no_cmd\":true}");
    mustReject("{\"cmd\":\"launch-missiles\"}");
    mustReject("{\"cmd\":42}");
}

TEST(InspectProtocol, CmpOpsRoundTripAndEvaluate)
{
    const char *names[] = {">", ">=", "<", "<=", "==", "!="};
    for (const char *name : names) {
        CmpOp op;
        ASSERT_TRUE(inspect::parseCmpOp(name, op)) << name;
        EXPECT_STREQ(inspect::cmpOpName(op), name);
    }
    CmpOp op;
    EXPECT_FALSE(inspect::parseCmpOp("=>", op));
    EXPECT_TRUE(inspect::evalCmp(3.0, CmpOp::GT, 2.0));
    EXPECT_FALSE(inspect::evalCmp(2.0, CmpOp::GT, 2.0));
    EXPECT_TRUE(inspect::evalCmp(2.0, CmpOp::GE, 2.0));
    EXPECT_TRUE(inspect::evalCmp(1.0, CmpOp::LT, 2.0));
    EXPECT_TRUE(inspect::evalCmp(2.0, CmpOp::LE, 2.0));
    EXPECT_TRUE(inspect::evalCmp(2.0, CmpOp::EQ, 2.0));
    EXPECT_TRUE(inspect::evalCmp(2.0, CmpOp::NE, 3.0));
}

TEST(InspectProtocol, ErrorReplyIsParseableJson)
{
    const std::string reply =
        inspect::errorReply("bad \"quoted\" thing\nwith newline");
    const jsonlite::JsonValue doc = jsonlite::parse(reply);
    ASSERT_TRUE(doc.isObject());
    EXPECT_FALSE(doc["ok"].boolean);
    EXPECT_EQ(doc["error"].string, "bad \"quoted\" thing\nwith newline");
}

// ------------------------------------------------------------------
// Socket transport
// ------------------------------------------------------------------

TEST(InspectServerTest, TcpRoundTrip)
{
    std::string err;
    auto server = InspectServer::listen("0", err);
    ASSERT_NE(server, nullptr) << err;
    ASSERT_GT(server->port(), 0);
    EXPECT_FALSE(server->connected());

    std::string line;
    EXPECT_FALSE(server->poll(line)); // nothing queued yet

    auto client =
        InspectClient::connect(std::to_string(server->port()), err);
    ASSERT_NE(client, nullptr) << err;

    ASSERT_TRUE(client->sendLine("hello"));
    ASSERT_TRUE(server->wait(line));
    EXPECT_EQ(line, "hello");

    server->send("world");
    ASSERT_TRUE(client->recvLine(line, 10000));
    EXPECT_EQ(line, "world");

    // A receive with nothing pending times out cleanly.
    EXPECT_EQ(client->recvLineEx(line, 50),
              InspectClient::Recv::Timeout);
    EXPECT_TRUE(line.empty());

    // Dropping the client is eventually observed server-side.
    client.reset();
    unsigned drops = 0;
    for (int i = 0; i < 200 && drops == 0; ++i) {
        drops = server->takeDisconnects();
        if (drops == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(drops, 1u);
}

TEST(InspectServerTest, UnixSocketRoundTrip)
{
    const char *dir = std::getenv("TMPDIR");
    const std::string path = std::string(dir != nullptr ? dir : "/tmp") +
                             "/ultra_inspect_test.sock";
    std::string err;
    auto server = InspectServer::listen(path, err);
    ASSERT_NE(server, nullptr) << err;
    EXPECT_EQ(server->where(), path);
    EXPECT_EQ(server->port(), 0);

    auto client = InspectClient::connect(path, err);
    ASSERT_NE(client, nullptr) << err;
    ASSERT_TRUE(client->sendLine("over unix"));
    std::string line;
    ASSERT_TRUE(server->wait(line));
    EXPECT_EQ(line, "over unix");

    // Listening again on the same path must unlink the stale file.
    client.reset();
    server.reset();
    server = InspectServer::listen(path, err);
    EXPECT_NE(server, nullptr) << err;
}

// ------------------------------------------------------------------
// Full client-drives-machine sessions
// ------------------------------------------------------------------

constexpr std::uint32_t kPes = 8;
constexpr int kIters = 40;

/** A small machine with a fetch-and-add worker loop and an Inspector
 *  wired in as the cycle hook; run() happens on a worker thread so the
 *  test thread can play the attached client. */
struct Harness
{
    explicit Harness(unsigned threads, bool profiled = false)
    {
        core::MachineConfig cfg = core::MachineConfig::small(64, 2);
        cfg.threads = threads;
        machine = std::make_unique<core::Machine>(cfg);
        if (profiled)
            machine->enableProfiling();
        counter = machine->allocShared(1, "counter");
        const Addr c = counter;
        machine->launchAll(kPes, [c](pe::Pe &pe) -> pe::Task {
            for (int i = 0; i < kIters; ++i) {
                co_await pe.compute(4);
                co_await pe.fetchAdd(c, 1);
            }
        });

        std::string err;
        server = InspectServer::listen("0", err);
        EXPECT_NE(server, nullptr) << err;
        if (server == nullptr)
            std::abort(); // cannot run any session without a socket
        inspect::Targets targets;
        targets.network = &machine->network();
        targets.memory = &machine->memory();
        targets.hash = &machine->addressHash();
        targets.registry = &machine->registry();
        targets.prof = machine->profiler();
        inspector =
            std::make_unique<Inspector>(*server, targets, true);
        machine->setCycleHook([this](Cycle now) {
            inspector->atCycleBoundary(now);
        });
        sim = std::thread([this] {
            finished = machine->run();
            inspector->finishRun(machine->now(), finished);
        });
    }

    ~Harness()
    {
        if (sim.joinable())
            sim.join();
    }

    std::unique_ptr<InspectClient>
    attach()
    {
        std::string err;
        auto client =
            InspectClient::connect(std::to_string(server->port()), err);
        EXPECT_NE(client, nullptr) << err;
        return client;
    }

    std::unique_ptr<core::Machine> machine;
    std::unique_ptr<InspectServer> server;
    std::unique_ptr<Inspector> inspector;
    Addr counter = 0;
    std::thread sim;
    bool finished = false;
};

/** Send @p line and return the next reply object, skipping (and
 *  discarding) any interleaved async events. */
jsonlite::JsonValue
request(InspectClient &client, const std::string &line)
{
    EXPECT_TRUE(client.sendLine(line));
    std::string reply;
    for (int i = 0; i < 50; ++i) {
        if (client.recvLineEx(reply, 15000) !=
            InspectClient::Recv::Line) {
            ADD_FAILURE() << "no reply to " << line;
            return jsonlite::JsonValue{};
        }
        jsonlite::JsonValue doc = jsonlite::parse(reply);
        if (doc.isObject() && doc.has("ok"))
            return doc;
    }
    ADD_FAILURE() << "drowned in events waiting for reply to " << line;
    return jsonlite::JsonValue{};
}

/** Wait until the named async event arrives, skipping replies. */
jsonlite::JsonValue
awaitEvent(InspectClient &client, const std::string &name)
{
    std::string line;
    for (int i = 0; i < 50; ++i) {
        if (client.recvLineEx(line, 15000) !=
            InspectClient::Recv::Line) {
            ADD_FAILURE() << "no '" << name << "' event";
            return jsonlite::JsonValue{};
        }
        jsonlite::JsonValue doc = jsonlite::parse(line);
        if (doc.isObject() && doc.has("event") &&
            doc["event"].string == name) {
            return doc;
        }
    }
    ADD_FAILURE() << "event '" << name << "' never arrived";
    return jsonlite::JsonValue{};
}

TEST(InspectorTest, StartPausedThenResumeRunsToCompletion)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    // The run holds at cycle 0 until we say go.
    jsonlite::JsonValue status = request(*client, "{\"cmd\":\"status\"}");
    ASSERT_TRUE(status.isObject());
    EXPECT_TRUE(status["ok"].boolean);
    EXPECT_EQ(status["cycle"].number, 0.0);
    EXPECT_TRUE(status["paused"].boolean);
    // Host-side progress: values are host-dependent, only the shape
    // and sanity are pinned (elapsed grows from attach, rate is
    // cycles / elapsed and cannot be negative).
    ASSERT_TRUE(status["wall"].isObject());
    EXPECT_GE(status["wall"]["elapsed_seconds"].number, 0.0);
    EXPECT_GE(status["wall"]["cycles_per_second"].number, 0.0);

    jsonlite::JsonValue resumed =
        request(*client, "{\"cmd\":\"resume\"}");
    EXPECT_TRUE(resumed["ok"].boolean);

    jsonlite::JsonValue fin = awaitEvent(*client, "finished");
    ASSERT_TRUE(fin.isObject());
    EXPECT_TRUE(fin["completed"].boolean);
    EXPECT_GT(fin["cycle"].number, 0.0);

    EXPECT_TRUE(request(*client, "{\"cmd\":\"detach\"}")["ok"].boolean);
    h.sim.join();
    EXPECT_TRUE(h.finished);
    EXPECT_EQ(h.machine->peek(h.counter),
              static_cast<Word>(kPes) * kIters);
    EXPECT_FALSE(h.inspector->pokeUsed());
}

TEST(InspectorTest, CycleWatchpointPausesForInspection)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    jsonlite::JsonValue armed =
        request(*client, "{\"cmd\":\"watch\",\"cycle\":50}");
    ASSERT_TRUE(armed["ok"].boolean);
    const double watch_id = armed["id"].number;
    EXPECT_GT(watch_id, 0.0);

    request(*client, "{\"cmd\":\"resume\"}");
    jsonlite::JsonValue hit = awaitEvent(*client, "watchpoint");
    ASSERT_TRUE(hit.isObject());
    EXPECT_EQ(hit["id"].number, watch_id);
    EXPECT_EQ(hit["cycle"].number, 50.0);

    // The sim is paused mid-run: committed state is all inspectable.
    jsonlite::JsonValue status = request(*client, "{\"cmd\":\"status\"}");
    EXPECT_TRUE(status["paused"].boolean);
    EXPECT_EQ(status["cycle"].number, 50.0);
    EXPECT_EQ(status["watchpoints"].number, 0.0); // one-shot: disarmed

    jsonlite::JsonValue sw = request(
        *client,
        "{\"cmd\":\"switch\",\"copy\":0,\"stage\":0,\"index\":0}");
    ASSERT_TRUE(sw["ok"].boolean);
    ASSERT_TRUE(sw["switch"].isObject());
    EXPECT_TRUE(sw["switch"]["tomm"].isArray());
    EXPECT_TRUE(sw["switch"]["tope"].isArray());
    EXPECT_TRUE(sw["switch"]["wait_buffer"].isArray());

    jsonlite::JsonValue mni =
        request(*client, "{\"cmd\":\"mni\",\"module\":0}");
    ASSERT_TRUE(mni["ok"].boolean);
    EXPECT_TRUE(mni["mni"].isObject());

    jsonlite::JsonValue stats = request(
        *client, "{\"cmd\":\"stats\",\"prefix\":\"net.\"}");
    ASSERT_TRUE(stats["ok"].boolean);
    ASSERT_TRUE(stats["stats"].isObject());
    EXPECT_TRUE(stats["stats"].has("net.injected"));

    // Out-of-range coordinates get clean errors, not crashes.
    EXPECT_FALSE(request(*client, "{\"cmd\":\"switch\",\"copy\":9,"
                                  "\"stage\":0,\"index\":0}")["ok"]
                     .boolean);
    EXPECT_FALSE(
        request(*client,
                "{\"cmd\":\"mni\",\"module\":9999}")["ok"].boolean);

    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "finished");
    request(*client, "{\"cmd\":\"detach\"}");
    h.sim.join();
    EXPECT_TRUE(h.finished);
}

TEST(InspectorTest, StepAdvancesExactlyNCycles)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    jsonlite::JsonValue step =
        request(*client, "{\"cmd\":\"step\",\"n\":25}");
    ASSERT_TRUE(step["ok"].boolean);
    EXPECT_EQ(step["until"].number, 25.0);
    jsonlite::JsonValue paused = awaitEvent(*client, "paused");
    EXPECT_EQ(paused["cycle"].number, 25.0);

    // step "to" an absolute cycle from the paused state.
    jsonlite::JsonValue to =
        request(*client, "{\"cmd\":\"step\",\"to\":40}");
    ASSERT_TRUE(to["ok"].boolean);
    EXPECT_EQ(awaitEvent(*client, "paused")["cycle"].number, 40.0);

    // A step target in the past is an error, and we stay paused.
    EXPECT_FALSE(
        request(*client,
                "{\"cmd\":\"step\",\"to\":10}")["ok"].boolean);
    EXPECT_TRUE(request(*client, "{\"cmd\":\"status\"}")["paused"]
                    .boolean);

    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "finished");
    request(*client, "{\"cmd\":\"detach\"}");
    h.sim.join();
    EXPECT_TRUE(h.finished);
}

TEST(InspectorTest, ProfCommandSnapshotsTheProfiler)
{
    // A profiled machine serves live wall-clock snapshots mid-run; the
    // report is the same schema-versioned JSON --prof-json writes.
    Harness h(1, /*profiled=*/true);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    request(*client, "{\"cmd\":\"step\",\"n\":30}");
    awaitEvent(*client, "paused");

    jsonlite::JsonValue prof = request(*client, "{\"cmd\":\"prof\"}");
    ASSERT_TRUE(prof.isObject());
    EXPECT_TRUE(prof["ok"].boolean);
    ASSERT_TRUE(prof["prof"].isObject());
    EXPECT_EQ(prof["prof"]["schema"].string, "ultra.prof.v1");
    // Mid-run: elapsed is measured to the call, phases accumulated so
    // far cannot exceed it.
    EXPECT_GT(prof["prof"]["elapsed_seconds"].number, 0.0);
    ASSERT_TRUE(prof["prof"]["phases"].isObject());

    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "finished");
    request(*client, "{\"cmd\":\"detach\"}");
    h.sim.join();
    EXPECT_TRUE(h.finished);
}

TEST(InspectorTest, ProfCommandWithoutProfilerIsCleanError)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    jsonlite::JsonValue prof = request(*client, "{\"cmd\":\"prof\"}");
    ASSERT_TRUE(prof.isObject());
    EXPECT_FALSE(prof["ok"].boolean);
    EXPECT_NE(prof["error"].string.find("--prof-json"),
              std::string::npos);

    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "finished");
    request(*client, "{\"cmd\":\"detach\"}");
    h.sim.join();
}

TEST(InspectorTest, StatWatchpointFiresOnRealTraffic)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    // kPes PEs fetch-adding one hot word in lockstep: the combining
    // network is guaranteed to merge some of them, so a watch on the
    // live net.combined counter must fire mid-run.
    jsonlite::JsonValue armed = request(
        *client, "{\"cmd\":\"watch\",\"stat\":\"net.combined\","
                 "\"op\":\">\",\"value\":0}");
    ASSERT_TRUE(armed["ok"].boolean);
    request(*client, "{\"cmd\":\"resume\"}");
    jsonlite::JsonValue hit = awaitEvent(*client, "watchpoint");
    ASSERT_TRUE(hit.isObject());
    EXPECT_GT(hit["observed"].number, 0.0);
    ASSERT_TRUE(hit["spec"].isObject());
    EXPECT_EQ(hit["spec"]["stat"].string, "net.combined");

    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "finished");
    request(*client, "{\"cmd\":\"detach\"}");
    h.sim.join();
    EXPECT_TRUE(h.finished);
}

TEST(InspectorTest, WatchValidationAndLifecycle)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    // Arm-time validation: bad specs are rejected with ok:false.
    EXPECT_FALSE(request(*client,
                         "{\"cmd\":\"watch\",\"stat\":\"no.such\","
                         "\"op\":\">\",\"value\":0}")["ok"]
                     .boolean);
    EXPECT_FALSE(request(*client,
                         "{\"cmd\":\"watch\",\"queue\":\"tomm\","
                         "\"stage\":99,\"op\":\">\",\"value\":0}")["ok"]
                     .boolean);
    // No analytic model was wired into this run.
    EXPECT_FALSE(
        request(*client,
                "{\"cmd\":\"watch\",\"drift\":0.1}")["ok"].boolean);

    // Arm two, list them, disarm one.
    jsonlite::JsonValue first =
        request(*client, "{\"cmd\":\"watch\",\"cycle\":100000}");
    jsonlite::JsonValue second =
        request(*client, "{\"cmd\":\"watch\",\"cycle\":200000}");
    ASSERT_TRUE(first["ok"].boolean);
    ASSERT_TRUE(second["ok"].boolean);
    jsonlite::JsonValue listed =
        request(*client, "{\"cmd\":\"watchpoints\"}");
    ASSERT_TRUE(listed["watchpoints"].isArray());
    EXPECT_EQ(listed["watchpoints"].array.size(), 2u);

    const std::string unwatch =
        "{\"cmd\":\"unwatch\",\"id\":" +
        std::to_string(
            static_cast<std::uint64_t>(first["id"].number)) +
        "}";
    EXPECT_TRUE(request(*client, unwatch)["ok"].boolean);
    EXPECT_FALSE(request(*client, unwatch)["ok"].boolean); // gone now

    // Detach resumes and clears the leftover watchpoint; the run must
    // finish without anyone listening.
    EXPECT_TRUE(request(*client, "{\"cmd\":\"detach\"}")["ok"].boolean);
    client.reset();
    h.sim.join();
    EXPECT_TRUE(h.finished);
}

TEST(InspectorTest, MemReadAndPokeSteerTheRun)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    // Paused at cycle 0: the counter reads its initial value.
    const std::string vaddr = std::to_string(h.counter);
    jsonlite::JsonValue before = request(
        *client, "{\"cmd\":\"mem\",\"vaddr\":" + vaddr + "}");
    ASSERT_TRUE(before["ok"].boolean);
    EXPECT_EQ(before["value"].number, 0.0);

    // Re-read the same word by module/offset coordinates.
    const std::string by_module =
        "{\"cmd\":\"mem\",\"module\":" +
        std::to_string(
            static_cast<std::uint64_t>(before["module"].number)) +
        ",\"offset\":" +
        std::to_string(
            static_cast<std::uint64_t>(before["offset"].number)) +
        "}";
    jsonlite::JsonValue again = request(*client, by_module);
    ASSERT_TRUE(again["ok"].boolean);
    EXPECT_EQ(again["paddr"].number, before["paddr"].number);

    // Steer: preload the counter, then let the run finish.
    jsonlite::JsonValue poked = request(
        *client,
        "{\"cmd\":\"poke\",\"vaddr\":" + vaddr + ",\"value\":1000}");
    ASSERT_TRUE(poked["ok"].boolean);
    EXPECT_EQ(poked["new_value"].number, 1000.0);
    EXPECT_TRUE(h.inspector->pokeUsed());

    // Past-the-end addresses error cleanly.
    EXPECT_FALSE(request(*client, "{\"cmd\":\"mem\",\"module\":0,"
                                  "\"offset\":99999999}")["ok"]
                     .boolean);

    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "finished");
    request(*client, "{\"cmd\":\"detach\"}");
    h.sim.join();
    EXPECT_TRUE(h.finished);
    EXPECT_EQ(h.machine->peek(h.counter),
              1000u + static_cast<Word>(kPes) * kIters);
}

TEST(InspectorTest, DisconnectWhilePausedAutoResumes)
{
    Harness h(1);
    auto client = h.attach();
    ASSERT_NE(client, nullptr);

    // Arm a far-future watchpoint, confirm we are attached and paused,
    // then vanish without resuming: the Inspector must disarm
    // everything and let the run finish rather than wedge.
    ASSERT_TRUE(request(*client, "{\"cmd\":\"watch\",\"cycle\":"
                                 "100000000}")["ok"]
                    .boolean);
    ASSERT_TRUE(request(*client, "{\"cmd\":\"ping\"}")["ok"].boolean);
    client.reset();

    h.sim.join();
    EXPECT_TRUE(h.finished);
    EXPECT_EQ(h.machine->peek(h.counter),
              static_cast<Word>(kPes) * kIters);
}

// ------------------------------------------------------------------
// The headline guarantee
// ------------------------------------------------------------------

/** statsJson() of an inspected run: attach, pause at a watchpoint,
 *  dump state, step, resume to completion. */
std::string
runInspected(unsigned threads)
{
    Harness h(threads);
    auto client = h.attach();
    if (client == nullptr)
        return "";
    request(*client, "{\"cmd\":\"watch\",\"cycle\":30}");
    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "watchpoint");
    request(*client,
            "{\"cmd\":\"switch\",\"copy\":0,\"stage\":1,\"index\":0}");
    request(*client, "{\"cmd\":\"stats\",\"prefix\":\"\"}");
    request(*client, "{\"cmd\":\"step\",\"n\":10}");
    awaitEvent(*client, "paused");
    request(*client, "{\"cmd\":\"resume\"}");
    awaitEvent(*client, "finished");
    request(*client, "{\"cmd\":\"detach\"}");
    h.sim.join();
    EXPECT_TRUE(h.finished);
    EXPECT_FALSE(h.inspector->pokeUsed());
    return h.machine->statsJson();
}

/** statsJson() of the identical machine with no inspection at all. */
std::string
runPlain(unsigned threads)
{
    core::MachineConfig cfg = core::MachineConfig::small(64, 2);
    cfg.threads = threads;
    core::Machine machine(cfg);
    const Addr counter = machine.allocShared(1, "counter");
    machine.launchAll(kPes, [counter](pe::Pe &pe) -> pe::Task {
        for (int i = 0; i < kIters; ++i) {
            co_await pe.compute(4);
            co_await pe.fetchAdd(counter, 1);
        }
    });
    EXPECT_TRUE(machine.run());
    return machine.statsJson();
}

TEST(InspectorTest, InspectedRunIsByteIdenticalToPlainRun)
{
    const std::string plain = runPlain(1);
    ASSERT_FALSE(plain.empty());
    for (unsigned threads : {1u, 4u}) {
        EXPECT_EQ(runInspected(threads), plain)
            << "inspection perturbed the simulation at threads="
            << threads;
    }
}

} // namespace
} // namespace ultra
