/**
 * @file
 * Regression guard on the simulator-vs-analytic agreement that
 * bench/fig7_transit_time demonstrates at scale: under the model's
 * assumptions (uniform i.i.d. traffic, uniform message length, no
 * combining, infinite queues) the measured one-way transit must track
 * the Kruskal-Snir formula.  A drift here means the network timing
 * model changed semantics.
 */

#include <gtest/gtest.h>

#include "analytic/queueing.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/pni.h"
#include "net/traffic.h"

namespace ultra
{
namespace
{

double
simulateOneWay(std::uint32_t ports, unsigned k, unsigned d, double p)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = ports;
    ncfg.k = k;
    ncfg.m = k;
    ncfg.d = d;
    ncfg.sizing = net::PacketSizing::Uniform;
    ncfg.queueCapacityPackets = 0;
    ncfg.mmPendingCapacityPackets = 0;
    ncfg.combinePolicy = net::CombinePolicy::None;

    mem::MemoryConfig mcfg;
    mcfg.numModules = ports;
    mcfg.wordsPerModule = 1 << 10;
    mem::MemorySystem memory(mcfg);
    net::Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), true);
    net::PniConfig pcfg;
    pcfg.maxOutstanding = 0;
    net::PniArray pni(pcfg, network, hash);

    net::TrafficConfig tcfg;
    tcfg.activePes = ports;
    tcfg.rate = p;
    tcfg.loadFraction = 0.0;
    tcfg.storeFraction = 1.0;
    tcfg.addrSpaceWords = std::uint64_t{ports} << 8;
    tcfg.seed = 99;
    net::TrafficGenerator traffic(tcfg, pni, network);
    traffic.run(1500);
    network.resetStats();
    traffic.run(5000);
    return network.stats().oneWayTransit.mean();
}

struct ModelParam
{
    unsigned k;
    unsigned d;
    double p;
};

class ModelValidationTest : public ::testing::TestWithParam<ModelParam>
{};

TEST_P(ModelValidationTest, SimTracksKruskalSnir)
{
    const auto [k, d, p] = GetParam();
    const std::uint32_t ports = 256;
    analytic::NetworkConfig acfg;
    acfg.n = ports;
    acfg.k = k;
    acfg.m = k;
    acfg.d = d;
    // Measured head transit includes the injection hop: analytic T + 1.
    const double predicted = analytic::transitTime(acfg, p) + 1.0;
    const double measured = simulateOneWay(ports, k, d, p);
    EXPECT_NEAR(measured / predicted, 1.0, 0.12)
        << "k=" << k << " d=" << d << " p=" << p << ": predicted "
        << predicted << ", measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelValidationTest,
    ::testing::Values(ModelParam{2, 1, 0.05}, ModelParam{2, 1, 0.15},
                      ModelParam{4, 1, 0.08}, ModelParam{4, 2, 0.15},
                      ModelParam{2, 2, 0.20}),
    [](const auto &info) {
        return "k" + std::to_string(info.param.k) + "d" +
               std::to_string(info.param.d) + "p" +
               std::to_string(static_cast<int>(info.param.p * 100));
    });

} // namespace
} // namespace ultra
