/**
 * @file
 * Tier-2 performance gate (ctest label "perf"): runs the fixed
 * Table-1 workload — 1024 engaged PEs on the 4096-port k=4 machine,
 * each looping compute(16) + fetchAdd — with the serial engine and
 * with the sharded engine at the thread counts listed in the
 * committed tolerance envelope (tests/perf_envelope.json), and fails
 * when a measured wall-time ratio falls outside its envelope entry.
 *
 * Honesty rules, in order:
 *   - sanitizer builds skip: instrumented wall time measures the
 *     sanitizer, not the tick engine;
 *   - hosts with fewer than 4 usable cores skip the ratio assertions
 *     (a 1-core host cannot exercise parallelism) but still verify
 *     byte-identical stats between the serial and sharded runs;
 *   - envelope entries needing more threads than the host has cores
 *     are measured and reported but not enforced;
 *   - every run's measurement is written to a JSON artifact
 *     (ULTRA_PERF_GATE_OUT, default perf_gate_measured.json) so CI can
 *     upload what was actually measured alongside the pass/fail.
 *
 * Wall times use the best of `repeats` runs per configuration: the
 * minimum is the right noise estimator for a gate (interference only
 * ever adds time).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_lite.h"
#include "core/machine.h"
#include "pe/task.h"
#include "sweep/pool.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ULTRA_PERF_GATE_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define ULTRA_PERF_GATE_SANITIZED 1
#endif

namespace ultra
{
namespace
{

constexpr std::uint32_t kPes = 1024;

/** Honest usable-core count: the shared sweep-pool logic (matches
 *  bench/par_speedup.cc). */
unsigned
detectHostCores()
{
    return sweep::detectHostCores();
}

struct Measurement
{
    unsigned threads = 1;
    bool sharded = true;
    double seconds = 0.0;
    std::string statsJson;
};

Measurement
measure(unsigned threads, bool sharded, int iterations, int repeats)
{
    Measurement m;
    m.threads = threads;
    m.sharded = sharded;
    m.seconds = 1e300;
    for (int rep = 0; rep < repeats; ++rep) {
        core::MachineConfig cfg = core::MachineConfig::paperTable1();
        cfg.threads = threads;
        cfg.shardedNetwork = sharded;
        core::Machine machine(cfg);
        const Addr counter = machine.allocShared(1, "counter");
        machine.launchAll(kPes, [counter, iterations](pe::Pe &pe)
                              -> pe::Task {
            for (int i = 0; i < iterations; ++i) {
                co_await pe.compute(16);
                co_await pe.fetchAdd(counter, 1);
            }
        });
        const auto start = std::chrono::steady_clock::now();
        const bool finished = machine.run();
        const auto stop = std::chrono::steady_clock::now();
        EXPECT_TRUE(finished);
        EXPECT_EQ(machine.peek(counter),
                  static_cast<Word>(kPes) * iterations);
        m.seconds = std::min(
            m.seconds,
            std::chrono::duration<double>(stop - start).count());
        m.statsJson = machine.statsJson();
    }
    return m;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(PerfGateTest, WallTimeRatiosStayInsideEnvelope)
{
#ifdef ULTRA_PERF_GATE_SANITIZED
    GTEST_SKIP() << "sanitizer build: wall time measures the "
                    "instrumentation, not the engine";
#endif
    const std::string envelope_text =
        readFile(ULTRA_PERF_ENVELOPE_PATH);
    ASSERT_FALSE(envelope_text.empty())
        << "cannot read " << ULTRA_PERF_ENVELOPE_PATH;
    const jsonlite::JsonValue envelope =
        jsonlite::parse(envelope_text);
    const int iterations =
        static_cast<int>(envelope["iterations"].number);
    const int repeats = static_cast<int>(envelope["repeats"].number);
    ASSERT_GT(iterations, 0);
    ASSERT_GT(repeats, 0);

    const unsigned host_cores = detectHostCores();
    const bool enforce = host_cores >= 4;
    // A small host only runs the determinism ride-along, so don't
    // burn minutes on statistically meaningless timings there.
    const int eff_iterations =
        enforce ? iterations : std::min(iterations, 10);
    const int eff_repeats = enforce ? repeats : 1;

    // Serial-engine baseline: every ratio is quoted against it.
    const Measurement serial =
        measure(1, false, eff_iterations, eff_repeats);

    struct Row
    {
        Measurement m;
        double minSpeedup = 0.0;
        bool enforced = false;
        bool passed = true;
    };
    std::vector<Row> rows;
    for (const jsonlite::JsonValue &entry :
         envelope["entries"].array) {
        Row row;
        const unsigned threads =
            static_cast<unsigned>(entry["threads"].number);
        row.m = measure(threads, entry["net_sharded"].boolean,
                        eff_iterations, eff_repeats);
        row.minSpeedup = entry["min_speedup"].number;
        // Determinism rides along on every measured run, cores or not.
        EXPECT_EQ(row.m.statsJson, serial.statsJson)
            << "stats diverged at " << threads << " threads";
        row.enforced = enforce && host_cores >= threads;
        const double speedup = serial.seconds / row.m.seconds;
        if (row.enforced && speedup < row.minSpeedup) {
            row.passed = false;
            ADD_FAILURE() << "threads=" << threads << ": speedup "
                          << speedup << " below envelope floor "
                          << row.minSpeedup << " ("
                          << entry["why"].string << ")";
        }
        rows.push_back(std::move(row));
    }

    // One prof-instrumented pass at the widest envelope entry (not a
    // timed rep): the uploaded artifact then carries the speedup-loss
    // attribution next to the ratios it explains, so a gate failure
    // comes with its own diagnosis.  `ultrascope --prof` renders it.
    unsigned widest = 1;
    for (const jsonlite::JsonValue &entry :
         envelope["entries"].array) {
        widest = std::max(
            widest, static_cast<unsigned>(entry["threads"].number));
    }
    std::string prof_report;
    {
        core::MachineConfig cfg = core::MachineConfig::paperTable1();
        cfg.threads = widest;
        core::Machine machine(cfg);
        machine.enableProfiling();
        const Addr counter = machine.allocShared(1, "counter");
        machine.launchAll(kPes,
                          [counter, eff_iterations](pe::Pe &pe)
                              -> pe::Task {
            for (int i = 0; i < eff_iterations; ++i) {
                co_await pe.compute(16);
                co_await pe.fetchAdd(counter, 1);
            }
        });
        ASSERT_TRUE(machine.run());
        prof_report = machine.profiler()->reportJson();
    }

    // The measured artifact: what CI uploads next to the verdict.
    const char *out_env = std::getenv("ULTRA_PERF_GATE_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "perf_gate_measured.json";
    std::ofstream out(out_path);
    ASSERT_TRUE(out.good()) << "cannot write " << out_path;
    out << "{\n  \"workload\": " << '"'
        << envelope["workload"].string << '"' << ",\n"
        << "  \"host_cores\": " << host_cores << ",\n"
        << "  \"iterations\": " << eff_iterations << ",\n"
        << "  \"repeats\": " << eff_repeats << ",\n"
        << "  \"serial_seconds\": " << serial.seconds << ",\n"
        << "  \"enforced\": " << (enforce ? "true" : "false")
        << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        out << "    {\"threads\": " << row.m.threads
            << ", \"net_sharded\": "
            << (row.m.sharded ? "true" : "false")
            << ", \"wall_seconds\": " << row.m.seconds
            << ", \"speedup_vs_serial\": "
            << serial.seconds / row.m.seconds
            << ", \"min_speedup\": " << row.minSpeedup
            << ", \"enforced\": " << (row.enforced ? "true" : "false")
            << ", \"passed\": " << (row.passed ? "true" : "false")
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"prof\": " << prof_report << "\n}\n";

    if (!enforce) {
        GTEST_SKIP() << "ratio envelope needs >= 4 usable host cores "
                        "(have "
                     << host_cores
                     << "); determinism verified, measurements "
                        "written to "
                     << out_path;
    }
}

} // namespace
} // namespace ultra
