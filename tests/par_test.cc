/**
 * @file
 * Tests for ultra::par (PhaseBarrier, ShardPlan, TickEngine) and for
 * the property the subsystem exists to provide: simulation results are
 * bit-identical for every host thread count.  Includes the regression
 * test for Machine::run() flushing observers on a max_cycles timeout.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/tred2.h"
#include "core/machine.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "net/traffic.h"
#include "obs/registry.h"
#include "par/barrier.h"
#include "par/shard.h"
#include "par/tick_engine.h"
#include "pe/task.h"

namespace ultra
{
namespace
{

// ------------------------------------------------------------------
// PhaseBarrier
// ------------------------------------------------------------------

TEST(PhaseBarrierTest, SingleParticipantNeverBlocks)
{
    par::PhaseBarrier barrier(1);
    for (int i = 0; i < 1000; ++i)
        barrier.arriveAndWait();
    EXPECT_EQ(barrier.parties(), 1u);
}

TEST(PhaseBarrierTest, ReuseAcrossManyEpisodes)
{
    // Each episode every thread increments the counter once; the
    // barrier separates episodes, so after each arriveAndWait the
    // counter must be an exact multiple of the thread count.  A reuse
    // bug (stale arrival count or epoch) deadlocks or trips the
    // assertion within a few episodes.
    constexpr unsigned kThreads = 4;
    constexpr int kEpisodes = 2000;
    par::PhaseBarrier barrier(kThreads);
    std::atomic<std::uint64_t> counter{0};
    std::atomic<bool> mismatch{false};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int ep = 1; ep <= kEpisodes; ++ep) {
                counter.fetch_add(1, std::memory_order_relaxed);
                barrier.arriveAndWait();
                if (counter.load(std::memory_order_relaxed) !=
                    static_cast<std::uint64_t>(ep) * kThreads) {
                    mismatch.store(true, std::memory_order_relaxed);
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_FALSE(mismatch.load());
    EXPECT_EQ(counter.load(),
              static_cast<std::uint64_t>(kEpisodes) * kThreads);
}

TEST(PhaseBarrierTest, PublishesWritesAcrossEpisodes)
{
    // Non-atomic writes made before the barrier must be visible to
    // every thread after it (the property the compute phase relies on
    // for reading last-cycle state without further synchronization).
    constexpr unsigned kThreads = 3;
    constexpr int kEpisodes = 500;
    par::PhaseBarrier barrier(kThreads);
    std::vector<std::uint64_t> slots(kThreads, 0);
    std::atomic<bool> bad{false};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int ep = 1; ep <= kEpisodes; ++ep) {
                slots[t] = static_cast<std::uint64_t>(ep);
                barrier.arriveAndWait();
                for (unsigned other = 0; other < kThreads; ++other) {
                    if (slots[other] !=
                        static_cast<std::uint64_t>(ep)) {
                        bad.store(true, std::memory_order_relaxed);
                    }
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_FALSE(bad.load());
}

// ------------------------------------------------------------------
// ShardPlan
// ------------------------------------------------------------------

void
expectExactCover(const par::ShardPlan &plan)
{
    std::size_t next = 0;
    for (unsigned s = 0; s < plan.shards(); ++s) {
        const par::ShardRange r = plan.range(s);
        EXPECT_EQ(r.begin, next);
        EXPECT_LE(r.begin, r.end);
        for (std::size_t i = r.begin; i < r.end; ++i)
            EXPECT_EQ(plan.shardOf(i), s);
        next = r.end;
    }
    EXPECT_EQ(next, plan.items());
}

TEST(ShardPlanTest, EvenSplit)
{
    const auto plan = par::ShardPlan::contiguous(64, 4);
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(plan.range(s).size(), 16u);
    expectExactCover(plan);
}

TEST(ShardPlanTest, OddSizesDifferByAtMostOne)
{
    for (std::size_t items : {1, 7, 63, 100, 4097}) {
        for (unsigned shards : {1u, 2u, 3u, 5u, 8u, 16u}) {
            const auto plan = par::ShardPlan::contiguous(items, shards);
            std::size_t lo = items, hi = 0;
            for (unsigned s = 0; s < shards; ++s) {
                lo = std::min(lo, plan.range(s).size());
                hi = std::max(hi, plan.range(s).size());
            }
            EXPECT_LE(hi - lo, 1u)
                << items << " items over " << shards << " shards";
            expectExactCover(plan);
        }
    }
}

TEST(ShardPlanTest, MoreShardsThanItems)
{
    const auto plan = par::ShardPlan::contiguous(3, 8);
    std::size_t nonempty = 0;
    for (unsigned s = 0; s < 8; ++s) {
        EXPECT_LE(plan.range(s).size(), 1u);
        nonempty += plan.range(s).empty() ? 0 : 1;
    }
    EXPECT_EQ(nonempty, 3u);
    expectExactCover(plan);
}

TEST(ShardPlanTest, SingleShardOwnsEverything)
{
    const auto plan = par::ShardPlan::contiguous(37, 1);
    EXPECT_EQ(plan.range(0).begin, 0u);
    EXPECT_EQ(plan.range(0).end, 37u);
    for (std::size_t i = 0; i < 37; ++i)
        EXPECT_EQ(plan.shardOf(i), 0u);
}

TEST(ShardPlanTest, ZeroItems)
{
    const auto plan = par::ShardPlan::contiguous(0, 4);
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_TRUE(plan.range(s).empty());
}

// ------------------------------------------------------------------
// TickEngine
// ------------------------------------------------------------------

TEST(TickEngineTest, RunsEveryShardExactlyOncePerEpisode)
{
    par::TickEngine engine(4);
    std::vector<std::uint64_t> counts(4, 0);
    for (int episode = 0; episode < 500; ++episode) {
        engine.forEachShard([&](unsigned shard) { ++counts[shard]; });
    }
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(counts[s], 500u);
}

TEST(TickEngineTest, SingleThreadRunsInline)
{
    par::TickEngine engine(1);
    const std::thread::id caller = std::this_thread::get_id();
    bool inline_call = false;
    engine.forEachShard([&](unsigned shard) {
        EXPECT_EQ(shard, 0u);
        inline_call = std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(inline_call);
}

TEST(TickEngineTest, ResolveThreads)
{
    EXPECT_EQ(par::TickEngine::resolveThreads(3), 3u);
    EXPECT_GE(par::TickEngine::resolveThreads(0), 1u);
}

TEST(TickEngineTest, PropagatesShardExceptions)
{
    par::TickEngine engine(4);
    EXPECT_THROW(engine.forEachShard([](unsigned shard) {
                     if (shard == 2)
                         throw std::runtime_error("shard failure");
                 }),
                 std::runtime_error);
    // The engine must stay usable after a failed episode.
    std::atomic<unsigned> ran{0};
    engine.forEachShard(
        [&](unsigned) { ran.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(ran.load(), 4u);
}

TEST(TickEngineTest, SingleFailureRethrowsOriginalException)
{
    par::TickEngine engine(4);
    try {
        engine.forEachShard([](unsigned shard) {
            if (shard == 1)
                throw std::out_of_range("only shard 1");
        });
        FAIL() << "expected an exception";
    } catch (const std::out_of_range &e) {
        // The original type survives when exactly one shard fails.
        EXPECT_STREQ(e.what(), "only shard 1");
    }
}

TEST(TickEngineTest, AggregatesAllShardFailures)
{
    par::TickEngine engine(4);
    try {
        engine.forEachShard([](unsigned shard) {
            if (shard != 0) {
                throw std::runtime_error("boom from shard " +
                                         std::to_string(shard));
            }
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("3 shards failed"), std::string::npos) << what;
        // Every shard's message must survive, in shard order.
        const auto p1 = what.find("[shard 1] boom from shard 1");
        const auto p2 = what.find("[shard 2] boom from shard 2");
        const auto p3 = what.find("[shard 3] boom from shard 3");
        EXPECT_NE(p1, std::string::npos) << what;
        EXPECT_NE(p2, std::string::npos) << what;
        EXPECT_NE(p3, std::string::npos) << what;
        EXPECT_LT(p1, p2);
        EXPECT_LT(p2, p3);
    }
    // Failures must not leak into the next episode.
    std::atomic<unsigned> ran{0};
    engine.forEachShard(
        [&](unsigned) { ran.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(ran.load(), 4u);
}

// ------------------------------------------------------------------
// Determinism: N threads must reproduce the 1-thread run exactly
// ------------------------------------------------------------------

std::string
trafficStatsJson(std::uint64_t seed, unsigned threads, Cycle cycles)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = 16;
    ncfg.k = 2;
    ncfg.combinePolicy = net::CombinePolicy::Full;
    mem::MemoryConfig mcfg;
    mcfg.numModules = ncfg.numPorts;
    mcfg.wordsPerModule = 1 << 10;
    mem::MemorySystem memory(mcfg);
    net::Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), true);
    net::PniArray pni(net::PniConfig{}, network, hash);

    net::TrafficConfig tcfg;
    tcfg.activePes = ncfg.numPorts;
    tcfg.rate = 0.3;
    tcfg.hotFraction = 0.1;
    tcfg.hotAddr = 5;
    tcfg.addrSpaceWords = 1 << 10;
    tcfg.seed = seed;
    net::TrafficGenerator traffic(tcfg, pni, network);

    obs::Registry registry;
    network.registerStats(registry, "net");
    pni.registerStats(registry, "pni");
    memory.registerStats(registry, "mem");

    par::TickEngine engine(threads);
    const auto plan =
        par::ShardPlan::contiguous(tcfg.activePes, threads);
    std::vector<unsigned> shard_of(ncfg.numPorts, 0);
    for (std::uint32_t pe = 0; pe < tcfg.activePes; ++pe)
        shard_of[pe] = plan.shardOf(pe);
    pni.setShardMap(threads, std::move(shard_of));

    for (Cycle c = 0; c < cycles; ++c) {
        engine.forEachShard([&](unsigned shard) {
            const par::ShardRange r = plan.range(shard);
            traffic.tickRange(static_cast<PEId>(r.begin),
                              static_cast<PEId>(r.end));
        });
        pni.tick();
        network.tick();
    }
    return registry.jsonDump(network.now());
}

TEST(ParDeterminismTest, TrafficSweep200Seeds1VersusMoreThreads)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const std::string solo = trafficStatsJson(seed, 1, 150);
        const std::string quad = trafficStatsJson(seed, 4, 150);
        ASSERT_EQ(solo, quad) << "seed " << seed;
    }
}

TEST(ParDeterminismTest, ThreadsExceedingPesStillMatch)
{
    // 16 active PEs, 32 shards: half the shards are empty every cycle.
    const std::string solo = trafficStatsJson(7, 1, 200);
    const std::string wide = trafficStatsJson(7, 32, 200);
    EXPECT_EQ(solo, wide);
}

std::string
tred2StatsJson(unsigned threads)
{
    core::MachineConfig cfg = core::MachineConfig::small(64, 2);
    cfg.threads = threads;
    core::Machine machine(cfg);
    const auto matrix = apps::randomSymmetric(12, 3);
    const auto result = apps::tred2Parallel(machine, 8, matrix, 12);
    EXPECT_GT(result.cycles, 0u);
    return machine.statsJson();
}

TEST(ParDeterminismTest, MachineAppMatchesAcrossThreadCounts)
{
    const std::string solo = tred2StatsJson(1);
    EXPECT_EQ(solo, tred2StatsJson(2));
    EXPECT_EQ(solo, tred2StatsJson(8));
}

TEST(ParDeterminismTest, AutoThreadsMatchesSerial)
{
    // threads = 0 resolves to the host's core count, whatever it is.
    const std::string solo = tred2StatsJson(1);
    EXPECT_EQ(solo, tred2StatsJson(0));
}

// ------------------------------------------------------------------
// Machine::run() max_cycles observer flush (regression)
// ------------------------------------------------------------------

TEST(MachineTimeoutFlushTest, TimeoutStillEmitsFinalSampleRow)
{
    core::MachineConfig cfg = core::MachineConfig::small(16, 2);
    core::Machine machine(cfg);
    machine.enableSampling(1000); // period longer than the whole run
    const Addr cell = machine.allocShared(1);
    machine.launch(0, [cell](pe::Pe &pe) -> pe::Task {
        for (;;) {
            co_await pe.fetchAdd(cell, 1);
            co_await pe.compute(8);
        }
    });
    const bool finished = machine.run(64);
    EXPECT_FALSE(finished);
    // Without the flush no sample period elapsed, so the series would
    // be empty and the truncated run would drop its only window.
    ASSERT_GE(machine.sampler().numRows(), 1u);
    const std::string csv = machine.sampler().csv();
    EXPECT_NE(csv.find("\n" + std::to_string(machine.now()) + ","),
              std::string::npos)
        << "final row must be stamped with the timeout cycle:\n"
        << csv;
}

TEST(MachineTimeoutFlushTest, BlockedWaitTimeIsCreditedAtTimeout)
{
    core::MachineConfig cfg = core::MachineConfig::small(16, 2);
    cfg.net.mmAccessTime = 50; // guarantee the PE is blocked at cutoff
    core::Machine machine(cfg);
    const Addr cell = machine.allocShared(1);
    machine.launch(0, [cell](pe::Pe &pe) -> pe::Task {
        co_await pe.load(cell);
    });
    const bool finished = machine.run(10);
    ASSERT_FALSE(finished);
    const auto timeout_stats = machine.peAt(0).stats();
    EXPECT_GT(timeout_stats.idleCycles, 0u)
        << "waiting accrued before the timeout must be credited";

    // Resuming must not double-count: total idle after completion has
    // to equal the wait actually served, flush or no flush.
    core::Machine reference(cfg);
    const Addr ref_cell = reference.allocShared(1);
    reference.launch(0, [ref_cell](pe::Pe &pe) -> pe::Task {
        co_await pe.load(ref_cell);
    });
    EXPECT_TRUE(reference.run(100'000));
    EXPECT_TRUE(machine.run(100'000));
    EXPECT_EQ(machine.peAt(0).stats().idleCycles,
              reference.peAt(0).stats().idleCycles);
}

} // namespace
} // namespace ultra
