/**
 * @file
 * The fetch-and-phi family (sections 2.2, 2.4) in one tour: how swap,
 * test-and-set, and even plain load and store fall out of one
 * primitive, and how associative phis (min/max/or) combine in the
 * network just like fetch-and-add.
 *
 *   $ ./fetch_phi_zoo
 */

#include <cstdio>

#include "core/machine.h"

using namespace ultra;
using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

int
main()
{
    Machine machine(MachineConfig::small(64));
    const Addr cell = machine.allocShared(8, "phi.cells");
    machine.poke(cell + 0, 100); // fetch-and-add target
    machine.poke(cell + 1, 7);   // swap target
    machine.poke(cell + 3, 42);  // load/store demo

    machine.launch(0, [&](Pe &pe) -> Task {
        std::printf("fetch-and-phi special cases (section 2.4):\n");

        // phi(a, b) = a + b  -> fetch-and-add.
        const Word fa = co_await pe.fetchAdd(cell + 0, 5);
        std::printf("  F&A(V,5):        returned %lld, cell now %lld\n",
                    static_cast<long long>(fa),
                    static_cast<long long>(machine.peek(cell + 0)));

        // phi(a, b) = b  -> swap (fetch-and-pi2).
        const Word sw = co_await pe.swap(cell + 1, 99);
        std::printf("  Swap(V,99):      returned %lld, cell now %lld\n",
                    static_cast<long long>(sw),
                    static_cast<long long>(machine.peek(cell + 1)));

        // phi = pi2 with TRUE -> test-and-set.
        const Word t1 = co_await pe.testAndSet(cell + 2);
        const Word t2 = co_await pe.testAndSet(cell + 2);
        std::printf("  TAS(V) twice:    returned %lld then %lld\n",
                    static_cast<long long>(t1),
                    static_cast<long long>(t2));

        // Load = fetch-and-pi1 (e immaterial); Store = fetch-and-pi2
        // with the result discarded -- "this operation may be used as
        // the sole primitive for accessing central memory".
        const Word ld =
            co_await pe.fetchPhi(net::Op::Load, cell + 3, 12345);
        std::printf("  Fetch&pi1(V,*):  returned %lld (a plain load; "
                    "operand ignored)\n",
                    static_cast<long long>(ld));
        const Word st =
            co_await pe.fetchPhi(net::Op::Swap, cell + 3, 55);
        (void)st; // a store discards the returned old value
        std::printf("  Fetch&pi2(V,55): cell now %lld (a plain "
                    "store)\n",
                    static_cast<long long>(machine.peek(cell + 3)));
    });
    if (!machine.run())
        return 1;

    // Associative phis combine in the switches: a concurrent global
    // max over 64 PEs costs about one memory access.
    const Addr maxcell = machine.allocShared(1, "phi.max");
    machine.launchAll(64, [&](Pe &pe) -> Task {
        const Word mine = static_cast<Word>((pe.id() * 37) % 101);
        const Word before =
            co_await pe.fetchPhi(net::Op::FetchMax, maxcell, mine);
        (void)before;
    });
    if (!machine.run())
        return 1;
    std::printf("\nconcurrent FetchMax over 64 PEs: global max = %lld "
                "(expected 100), %llu of 64\nrequests combined in the "
                "network\n",
                static_cast<long long>(machine.peek(maxcell)),
                static_cast<unsigned long long>(
                    machine.network().stats().combined));
    return 0;
}
