/**
 * @file
 * Quickstart: build a small Ultracomputer, run a program on every PE,
 * and watch fetch-and-add combine in the network.
 *
 * The machine appears to the programmer as a paracomputer: a flat
 * shared address space accessed with load / store / fetch-and-add.
 * Programs are ordinary C++ coroutines; every co_await is a point
 * where simulated time passes.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/machine.h"

using namespace ultra;
using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

int
main()
{
    // A 64-PE machine: 6 stages of 2x2 combining switches, 64 memory
    // modules, hashed addresses -- MachineConfig::small() defaults.
    MachineConfig config = MachineConfig::small(64);
    Machine machine(config);

    // Shared memory is allocated up front, like a linker laying out a
    // data segment.
    const Addr counter = machine.allocShared(1, "counter");
    const Addr slots = machine.allocShared(1024, "slots");

    // The section-2.2 idiom: every PE fetch-and-adds a shared index,
    // obtaining a distinct array element -- no locks, no serial code.
    const int per_pe = 8;
    machine.launchAll(64, [&](Pe &pe) -> Task {
        for (int i = 0; i < per_pe; ++i) {
            const Word my_slot = co_await pe.fetchAdd(counter, 1);
            co_await pe.store(slots + my_slot,
                              static_cast<Word>(pe.id()) + 1);
            co_await pe.compute(10); // ...some local work...
        }
    });

    if (!machine.run()) {
        std::printf("machine did not finish!\n");
        return 1;
    }

    std::printf("counter ended at %lld (expected %d)\n",
                static_cast<long long>(machine.peek(counter)),
                64 * per_pe);

    // Every slot was claimed exactly once.
    int claimed = 0;
    for (Addr s = 0; s < 64 * per_pe; ++s)
        claimed += machine.peek(slots + s) != 0 ? 1 : 0;
    std::printf("slots claimed: %d / %d\n", claimed, 64 * per_pe);

    // The network combined concurrent fetch-and-adds on their way in.
    const auto &stats = machine.network().stats();
    std::printf("requests injected:  %llu\n",
                static_cast<unsigned long long>(stats.injected));
    std::printf("requests combined:  %llu (%.0f%%)\n",
                static_cast<unsigned long long>(stats.combined),
                100.0 * static_cast<double>(stats.combined) /
                    static_cast<double>(stats.injected));
    std::printf("memory accesses:    %llu\n",
                static_cast<unsigned long long>(stats.mmServed));
    std::printf("mean round trip:    %.1f cycles\n",
                stats.roundTrip.mean());
    std::printf("simulated time:     %llu cycles\n",
                static_cast<unsigned long long>(machine.now()));
    return 0;
}
