/**
 * @file
 * The share / re-privatize protocol of section 3.4, end to end.
 *
 * "Consider a variable V that is declared in task T and is shared with
 * T's subtasks.  Prior to spawning these subtasks, T may treat V as
 * private (and thus eligible to be cached and pipelined) providing
 * that V is flushed, released, and marked shared immediately before
 * the subtasks are spawned. ... Once the subtasks have completed T may
 * again consider V as private.  Coherence is maintained since V is
 * cached only during periods of exclusive use by one task."
 *
 *   $ ./share_reprivatize
 */

#include <cstdio>

#include "core/coord.h"
#include "core/machine.h"

using namespace ultra;
using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

int
main()
{
    MachineConfig config = MachineConfig::small(16);
    Machine machine(config);

    const Addr v = machine.allocShared(8, "V");
    const Addr subtasks_done = machine.allocShared(1, "done");
    const std::uint32_t subtask_pes = 4;

    cache::CacheConfig ccfg;
    machine.peAt(0).attachCache(ccfg);

    // Phase 1: T (PE 0) treats V as private: cached, write-back.
    machine.launch(0, [&](Pe &pe) -> Task {
        for (int round = 0; round < 8; ++round) {
            Word value = 0;
            co_await pe.cachedLoad(v, &value);
            co_await pe.cachedStore(v, value + 10);
            co_await pe.compute(5);
        }
        const auto &cstats = pe.cache().stats();
        std::printf("T updated V privately: cache hits %llu, central-"
                    "memory value still %lld (write-back)\n",
                    static_cast<unsigned long long>(cstats.readHits +
                                                    cstats.writeHits),
                    static_cast<long long>(machine.peek(v)));

        // Before spawning: flush (memory current), release (no stale
        // reuse), mark shared (a program-level convention here).
        co_await pe.cacheFlush(v, v + 7);
        pe.cacheRelease(v, v + 7);
        std::printf("after flush+release: central memory sees %lld\n",
                    static_cast<long long>(machine.peek(v)));
        co_return;
    });
    if (!machine.run())
        return 1;

    // Phase 2: subtasks share V through central memory (uncached).
    for (PEId p = 1; p <= subtask_pes; ++p) {
        machine.launch(p, [&](Pe &pe) -> Task {
            const Word was = co_await pe.fetchAdd(v, 1);
            (void)was;
            const Word done = co_await pe.fetchAdd(subtasks_done, 1);
            (void)done;
        });
    }
    if (!machine.run())
        return 1;
    std::printf("%u subtasks each fetch-and-added V: memory now %lld\n",
                subtask_pes, static_cast<long long>(machine.peek(v)));

    // Phase 3: subtasks joined; T re-privatizes V (caches it again).
    machine.launch(0, [&](Pe &pe) -> Task {
        Word value = 0;
        co_await pe.cachedLoad(v, &value); // re-fetches the fresh value
        std::printf("T re-caches V and reads %lld (stale 80 would be "
                    "a coherence bug)\n",
                    static_cast<long long>(value));
        co_await pe.cachedStore(v, value * 2);
        co_await pe.cacheFlush(v, v + 7);
        co_return;
    });
    if (!machine.run())
        return 1;
    std::printf("final V in central memory: %lld (expected %d)\n",
                static_cast<long long>(machine.peek(v)),
                (80 + 4) * 2);
    return machine.peek(v) == (80 + 4) * 2 ? 0 : 1;
}
