/**
 * @file
 * The completely parallel readers-writers solution (section 2.3) on
 * the simulated machine: during periods when no writers are active,
 * readers execute no serial code at all -- entry and exit are one
 * combinable fetch-and-add each.
 *
 * A writer periodically updates a two-word record; readers must never
 * observe a torn (half-updated) record.  The run reports reader
 * concurrency and how many reader entries the network combined.
 *
 *   $ ./readers_writers
 */

#include <cstdio>

#include "core/coord.h"
#include "core/machine.h"

using namespace ultra;
using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

int
main()
{
    MachineConfig config = MachineConfig::small(32);
    Machine machine(config);

    auto lock = core::RwLock::create(machine);
    const Addr record = machine.allocShared(2, "record");
    const Addr torn = machine.allocShared(1, "torn_reads");
    const Addr max_readers = machine.allocShared(1, "max_readers");

    const int writer_rounds = 5;
    const int reader_rounds = 20;
    const std::uint32_t readers = 24;

    // One writer PE.
    machine.launch(0, [&, lock](Pe &pe) -> Task {
        for (int r = 0; r < writer_rounds; ++r) {
            co_await pe.compute(200); // think...
            co_await core::writerLock(pe, lock);
            const Word value = 1000 + r;
            co_await pe.store(record, value);
            co_await pe.compute(30); // a slow two-word update
            co_await pe.store(record + 1, value);
            co_await core::writerUnlock(pe, lock);
        }
    });

    // Many reader PEs.
    for (PEId p = 1; p <= readers; ++p) {
        machine.launch(p, [&, lock](Pe &pe) -> Task {
            for (int r = 0; r < reader_rounds; ++r) {
                co_await core::readerLock(pe, lock);
                // Track the peak number of simultaneous readers.
                const Word now_in =
                    co_await pe.load(lock.readers);
                const Word seen =
                    co_await pe.fetchPhi(net::Op::FetchMax,
                                         max_readers, now_in);
                (void)seen;
                const Word a = co_await pe.load(record);
                const Word b = co_await pe.load(record + 1);
                if (a != b) {
                    const Word was = co_await pe.fetchAdd(torn, 1);
                    (void)was;
                }
                co_await core::readerUnlock(pe, lock);
                co_await pe.compute(20);
            }
        });
    }

    if (!machine.run()) {
        std::printf("machine did not finish!\n");
        return 1;
    }

    std::printf("torn reads observed:       %lld (must be 0)\n",
                static_cast<long long>(machine.peek(torn)));
    std::printf("peak simultaneous readers: %lld of %u\n",
                static_cast<long long>(machine.peek(max_readers)),
                readers);
    std::printf("final record:              (%lld, %lld)\n",
                static_cast<long long>(machine.peek(record)),
                static_cast<long long>(machine.peek(record + 1)));
    const auto &stats = machine.network().stats();
    std::printf("combined requests:         %llu (reader F&As and "
                "polls combining)\n",
                static_cast<unsigned long long>(stats.combined));
    std::printf("simulated time:            %llu cycles\n",
                static_cast<unsigned long long>(machine.now()));
    return 0;
}
