/**
 * @file
 * The totally decentralized scheduler of section 2.3, twice:
 *
 *   1. on the simulated Ultracomputer -- PEs share one appendix-style
 *      parallel queue of task descriptors; idle PEs delete work,
 *      running tasks may insert more, nobody holds a lock;
 *   2. on the host -- the same algorithm on real threads via
 *      ultra::rt::Scheduler.
 *
 *   $ ./decentralized_scheduler
 */

#include <atomic>
#include <cstdio>

#include "core/machine.h"
#include "core/task_pool.h"
#include "rt/scheduler.h"

using namespace ultra;
using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

namespace
{

/**
 * Simulated version, using the core::TaskPool library: descriptors
 * encode remaining spawn depth; executing a task of depth d > 0
 * submits two children of depth d - 1.  Every PE runs the same worker
 * loop -- there is no dispatcher and no scheduler lock.
 */
void
simulatedScheduler()
{
    MachineConfig config = MachineConfig::small(16);
    Machine machine(config);

    auto pool = core::TaskPool::create(machine, 128);
    const int roots = 12;
    const Word total_expected = roots * 7; // 2-level binary trees:
                                           // 1 + 2 + 4 tasks per root

    core::PoolHandler handler = [pool](Pe &pe, Word depth) -> Task {
        co_await pe.compute(40); // "execute" the task
        if (depth > 0) {
            co_await core::poolSubmit(pe, pool, depth - 1);
            co_await core::poolSubmit(pe, pool, depth - 1);
        }
    };

    machine.launchAll(16, [pool, handler, roots](Pe &pe) -> Task {
        // Decentralized seeding: the first PEs contribute the roots.
        if (pe.id() < static_cast<PEId>(roots))
            co_await core::poolSubmit(pe, pool, /*depth=*/2);
        co_await core::poolWorker(pe, pool, handler);
    });

    const bool finished = machine.run();
    std::printf("[simulated] finished=%d tasks executed=%lld "
                "(expected %lld), %llu cycles\n",
                finished,
                static_cast<long long>(machine.peek(pool.executed)),
                static_cast<long long>(total_expected),
                static_cast<unsigned long long>(machine.now()));
}

/** Host version: the same spawning workload on real threads. */
void
hostScheduler()
{
    rt::Scheduler scheduler(4);
    std::atomic<int> executed{0};

    std::function<void(int)> task = [&](int depth) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (depth > 0) {
            for (int child = 0; child < 2; ++child)
                scheduler.submit([&, depth] { task(depth - 1); });
        }
    };
    for (int r = 0; r < 12; ++r)
        scheduler.submit([&] { task(2); });
    scheduler.wait();
    std::printf("[host]      tasks executed=%d (expected %d)\n",
                executed.load(), 12 * 7);
}

} // namespace

int
main()
{
    simulatedScheduler();
    hostScheduler();
    return 0;
}
