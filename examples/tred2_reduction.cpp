/**
 * @file
 * Parallel TRED2 (section 5): reduce a symmetric matrix to tridiagonal
 * form with Householder transforms on the simulated machine, check the
 * answer against the serial EISPACK-style reference, and report the
 * speedup and Table-1-style statistics.
 *
 *   $ ./tred2_reduction [N] [P]     (defaults: N = 32, P = 8)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/tred2.h"
#include "core/machine.h"

using namespace ultra;

int
main(int argc, char **argv)
{
    const std::size_t n =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
    const std::uint32_t pes =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;

    std::printf("TRED2: reducing a %zux%zu symmetric matrix with %u "
                "PEs\n",
                n, n, pes);
    const auto a = apps::randomSymmetric(n, 2026);

    // Serial reference.
    const apps::Tridiagonal serial = apps::tred2Serial(a, n);

    // Parallel run on a fresh machine.
    core::MachineConfig config = core::MachineConfig::small(
        std::max<std::uint32_t>(16, pes), 2);
    config.net.combinePolicy = net::CombinePolicy::Full;
    core::Machine machine(config);
    const apps::Tred2Result result =
        apps::tred2Parallel(machine, pes, a, n);

    // Verify.
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        worst = std::max(worst, std::fabs(result.tri.diag[i] -
                                          serial.diag[i]));
    }
    for (std::size_t i = 1; i < n; ++i) {
        worst = std::max(worst,
                         std::fabs(std::fabs(result.tri.offdiag[i]) -
                                   std::fabs(serial.offdiag[i])));
    }
    std::printf("max |parallel - serial| element error: %.2e\n", worst);
    std::printf("trace/Frobenius invariants: %s\n",
                apps::tridiagonalConsistent(a, n, result.tri, 1e-9)
                    ? "preserved"
                    : "VIOLATED");

    // Performance report.
    const auto &t = result.peTotals;
    std::printf("\nsimulated time: %llu cycles\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("waiting time W(P,N): %.0f cycles per PE\n",
                result.waitingTime);
    std::printf("instructions: %llu, shared refs: %llu, "
                "private refs: %llu\n",
                static_cast<unsigned long long>(t.instructions),
                static_cast<unsigned long long>(t.sharedRefs),
                static_cast<unsigned long long>(t.privateRefs));
    std::printf("avg CM access time: %.2f cycles\n",
                machine.pni().stats().accessTime.mean());
    const auto &net_stats = machine.network().stats();
    std::printf("combined requests: %llu of %llu injected (the u/p "
                "broadcasts combine)\n",
                static_cast<unsigned long long>(net_stats.combined),
                static_cast<unsigned long long>(net_stats.injected));
    return 0;
}
