/**
 * @file
 * Monte Carlo particle tracking (sections 2.5, 5): the class of
 * "data-dependent" calculations that resist vectorization — the
 * paper's argument for a MIMD machine over SIMD vector processors.
 *
 * Particles take position-dependent random walks. PEs self-schedule
 * work by fetch-and-adding a shared particle counter (no work queue,
 * no critical section, automatic load balancing for uneven particle
 * costs) and tally results by fetch-and-adding shared histogram bins;
 * both access patterns combine in the network.
 *
 *   $ ./particle_tracking [particles] [PEs]   (defaults: 512, 16)
 */

#include <cstdio>
#include <cstdlib>

#include "apps/montecarlo.h"
#include "core/machine.h"

using namespace ultra;

int
main(int argc, char **argv)
{
    apps::MonteCarloConfig cfg;
    cfg.particles =
        argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                 : 512;
    const std::uint32_t pes =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
    cfg.stepsPerParticle = 48;
    cfg.bins = 16;

    std::printf("tracking %llu particles (%u steps each) on %u PEs\n",
                static_cast<unsigned long long>(cfg.particles),
                cfg.stepsPerParticle, pes);

    // Serial reference (identical per-particle walks).
    const auto serial = apps::monteCarloSerial(cfg);

    core::MachineConfig mcfg = core::MachineConfig::small(
        std::max<std::uint32_t>(16, pes), 2);
    core::Machine machine(mcfg);
    const auto parallel = apps::monteCarloParallel(machine, pes, cfg);

    std::printf("\nbin  parallel  serial\n");
    bool match = true;
    for (std::uint32_t b = 0; b < cfg.bins; ++b) {
        std::printf("%3u  %8lld  %6lld %s\n", b,
                    static_cast<long long>(parallel.tally[b]),
                    static_cast<long long>(serial.tally[b]),
                    parallel.tally[b] == serial.tally[b] ? "" : "  <-- MISMATCH");
        match = match && parallel.tally[b] == serial.tally[b];
    }
    std::printf("\nhistograms %s\n",
                match ? "identical (deterministic per-particle walks)"
                      : "DIFFER");

    // Self-scheduling balanced the work automatically.
    std::printf("\nper-PE particles tracked (private refs / steps):\n ");
    for (PEId p = 0; p < pes; ++p) {
        std::printf(" %llu",
                    static_cast<unsigned long long>(
                        machine.peAt(p).stats().privateRefs /
                        cfg.stepsPerParticle));
    }
    std::printf("\nsimulated time: %llu cycles; combined requests: "
                "%llu (the F&A dispenser and tally)\n",
                static_cast<unsigned long long>(parallel.cycles),
                static_cast<unsigned long long>(
                    machine.network().stats().combined));
    return match ? 0 : 1;
}
