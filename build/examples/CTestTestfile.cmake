# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_decentralized_scheduler "/root/repo/build/examples/decentralized_scheduler")
set_tests_properties(example_decentralized_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tred2_reduction "/root/repo/build/examples/tred2_reduction" "16" "4")
set_tests_properties(example_tred2_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_readers_writers "/root/repo/build/examples/readers_writers")
set_tests_properties(example_readers_writers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_particle_tracking "/root/repo/build/examples/particle_tracking" "128" "8")
set_tests_properties(example_particle_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fetch_phi_zoo "/root/repo/build/examples/fetch_phi_zoo")
set_tests_properties(example_fetch_phi_zoo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_share_reprivatize "/root/repo/build/examples/share_reprivatize")
set_tests_properties(example_share_reprivatize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
