file(REMOVE_RECURSE
  "CMakeFiles/tred2_reduction.dir/tred2_reduction.cpp.o"
  "CMakeFiles/tred2_reduction.dir/tred2_reduction.cpp.o.d"
  "tred2_reduction"
  "tred2_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tred2_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
