# Empty compiler generated dependencies file for tred2_reduction.
# This may be replaced when dependencies are built.
