file(REMOVE_RECURSE
  "CMakeFiles/share_reprivatize.dir/share_reprivatize.cpp.o"
  "CMakeFiles/share_reprivatize.dir/share_reprivatize.cpp.o.d"
  "share_reprivatize"
  "share_reprivatize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/share_reprivatize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
