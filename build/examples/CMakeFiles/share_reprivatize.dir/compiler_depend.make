# Empty compiler generated dependencies file for share_reprivatize.
# This may be replaced when dependencies are built.
