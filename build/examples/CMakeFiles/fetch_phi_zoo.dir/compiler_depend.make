# Empty compiler generated dependencies file for fetch_phi_zoo.
# This may be replaced when dependencies are built.
