file(REMOVE_RECURSE
  "CMakeFiles/fetch_phi_zoo.dir/fetch_phi_zoo.cpp.o"
  "CMakeFiles/fetch_phi_zoo.dir/fetch_phi_zoo.cpp.o.d"
  "fetch_phi_zoo"
  "fetch_phi_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_phi_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
