# Empty dependencies file for decentralized_scheduler.
# This may be replaced when dependencies are built.
