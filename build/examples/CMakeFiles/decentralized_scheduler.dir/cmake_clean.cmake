file(REMOVE_RECURSE
  "CMakeFiles/decentralized_scheduler.dir/decentralized_scheduler.cpp.o"
  "CMakeFiles/decentralized_scheduler.dir/decentralized_scheduler.cpp.o.d"
  "decentralized_scheduler"
  "decentralized_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
