# Empty dependencies file for hotspot_combining.
# This may be replaced when dependencies are built.
