file(REMOVE_RECURSE
  "../bench/hotspot_combining"
  "../bench/hotspot_combining.pdb"
  "CMakeFiles/hotspot_combining.dir/hotspot_combining.cc.o"
  "CMakeFiles/hotspot_combining.dir/hotspot_combining.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
