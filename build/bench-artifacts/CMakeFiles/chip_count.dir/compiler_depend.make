# Empty compiler generated dependencies file for chip_count.
# This may be replaced when dependencies are built.
