file(REMOVE_RECURSE
  "../bench/chip_count"
  "../bench/chip_count.pdb"
  "CMakeFiles/chip_count.dir/chip_count.cc.o"
  "CMakeFiles/chip_count.dir/chip_count.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
