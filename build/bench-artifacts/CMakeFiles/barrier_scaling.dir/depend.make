# Empty dependencies file for barrier_scaling.
# This may be replaced when dependencies are built.
