file(REMOVE_RECURSE
  "../bench/barrier_scaling"
  "../bench/barrier_scaling.pdb"
  "CMakeFiles/barrier_scaling.dir/barrier_scaling.cc.o"
  "CMakeFiles/barrier_scaling.dir/barrier_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
