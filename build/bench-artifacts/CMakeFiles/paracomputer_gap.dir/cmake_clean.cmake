file(REMOVE_RECURSE
  "../bench/paracomputer_gap"
  "../bench/paracomputer_gap.pdb"
  "CMakeFiles/paracomputer_gap.dir/paracomputer_gap.cc.o"
  "CMakeFiles/paracomputer_gap.dir/paracomputer_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paracomputer_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
