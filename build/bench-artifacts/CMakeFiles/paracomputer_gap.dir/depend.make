# Empty dependencies file for paracomputer_gap.
# This may be replaced when dependencies are built.
