file(REMOVE_RECURSE
  "../bench/network_capacity"
  "../bench/network_capacity.pdb"
  "CMakeFiles/network_capacity.dir/network_capacity.cc.o"
  "CMakeFiles/network_capacity.dir/network_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
