# Empty compiler generated dependencies file for network_capacity.
# This may be replaced when dependencies are built.
