file(REMOVE_RECURSE
  "../bench/trace_replay"
  "../bench/trace_replay.pdb"
  "CMakeFiles/trace_replay.dir/trace_replay.cc.o"
  "CMakeFiles/trace_replay.dir/trace_replay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
