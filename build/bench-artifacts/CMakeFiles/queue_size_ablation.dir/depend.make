# Empty dependencies file for queue_size_ablation.
# This may be replaced when dependencies are built.
