file(REMOVE_RECURSE
  "../bench/queue_size_ablation"
  "../bench/queue_size_ablation.pdb"
  "CMakeFiles/queue_size_ablation.dir/queue_size_ablation.cc.o"
  "CMakeFiles/queue_size_ablation.dir/queue_size_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_size_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
