
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/hashing_ablation.cc" "bench-artifacts/CMakeFiles/hashing_ablation.dir/hashing_ablation.cc.o" "gcc" "bench-artifacts/CMakeFiles/hashing_ablation.dir/hashing_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ultra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/ultra_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ultra_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ultra_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ultra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/ultra_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ultra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ultra_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ultra_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
