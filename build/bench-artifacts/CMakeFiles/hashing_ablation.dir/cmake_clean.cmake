file(REMOVE_RECURSE
  "../bench/hashing_ablation"
  "../bench/hashing_ablation.pdb"
  "CMakeFiles/hashing_ablation.dir/hashing_ablation.cc.o"
  "CMakeFiles/hashing_ablation.dir/hashing_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
