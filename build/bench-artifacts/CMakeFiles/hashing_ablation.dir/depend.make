# Empty dependencies file for hashing_ablation.
# This may be replaced when dependencies are built.
