# Empty compiler generated dependencies file for table3_projected_efficiency.
# This may be replaced when dependencies are built.
