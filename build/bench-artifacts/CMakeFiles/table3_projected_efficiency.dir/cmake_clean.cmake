file(REMOVE_RECURSE
  "../bench/table3_projected_efficiency"
  "../bench/table3_projected_efficiency.pdb"
  "CMakeFiles/table3_projected_efficiency.dir/table3_projected_efficiency.cc.o"
  "CMakeFiles/table3_projected_efficiency.dir/table3_projected_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_projected_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
