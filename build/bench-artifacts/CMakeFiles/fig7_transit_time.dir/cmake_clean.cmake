file(REMOVE_RECURSE
  "../bench/fig7_transit_time"
  "../bench/fig7_transit_time.pdb"
  "CMakeFiles/fig7_transit_time.dir/fig7_transit_time.cc.o"
  "CMakeFiles/fig7_transit_time.dir/fig7_transit_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_transit_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
