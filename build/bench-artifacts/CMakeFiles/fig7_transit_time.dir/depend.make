# Empty dependencies file for fig7_transit_time.
# This may be replaced when dependencies are built.
