# Empty dependencies file for combining_ablation.
# This may be replaced when dependencies are built.
