file(REMOVE_RECURSE
  "../bench/combining_ablation"
  "../bench/combining_ablation.pdb"
  "CMakeFiles/combining_ablation.dir/combining_ablation.cc.o"
  "CMakeFiles/combining_ablation.dir/combining_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combining_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
