# Empty dependencies file for table1_network_traffic.
# This may be replaced when dependencies are built.
