# Empty compiler generated dependencies file for queue_throughput.
# This may be replaced when dependencies are built.
