file(REMOVE_RECURSE
  "../bench/queue_throughput"
  "../bench/queue_throughput.pdb"
  "CMakeFiles/queue_throughput.dir/queue_throughput.cc.o"
  "CMakeFiles/queue_throughput.dir/queue_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
