file(REMOVE_RECURSE
  "../bench/table2_tred2_efficiency"
  "../bench/table2_tred2_efficiency.pdb"
  "CMakeFiles/table2_tred2_efficiency.dir/table2_tred2_efficiency.cc.o"
  "CMakeFiles/table2_tred2_efficiency.dir/table2_tred2_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tred2_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
