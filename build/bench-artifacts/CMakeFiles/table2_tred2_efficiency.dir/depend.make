# Empty dependencies file for table2_tred2_efficiency.
# This may be replaced when dependencies are built.
