# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/combining_test[1]_include.cmake")
include("/root/repo/build/tests/systolic_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/pe_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/pni_traffic_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/multiprogram_test[1]_include.cmake")
include("/root/repo/build/tests/network_stress_test[1]_include.cmake")
include("/root/repo/build/tests/net_components_test[1]_include.cmake")
include("/root/repo/build/tests/sssp_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/task_pool_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/model_validation_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
