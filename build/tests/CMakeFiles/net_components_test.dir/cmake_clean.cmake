file(REMOVE_RECURSE
  "CMakeFiles/net_components_test.dir/net_components_test.cc.o"
  "CMakeFiles/net_components_test.dir/net_components_test.cc.o.d"
  "net_components_test"
  "net_components_test.pdb"
  "net_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
