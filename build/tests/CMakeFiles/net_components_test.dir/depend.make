# Empty dependencies file for net_components_test.
# This may be replaced when dependencies are built.
