file(REMOVE_RECURSE
  "CMakeFiles/combining_test.dir/combining_test.cc.o"
  "CMakeFiles/combining_test.dir/combining_test.cc.o.d"
  "combining_test"
  "combining_test.pdb"
  "combining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
