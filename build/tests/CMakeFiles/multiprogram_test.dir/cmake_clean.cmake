file(REMOVE_RECURSE
  "CMakeFiles/multiprogram_test.dir/multiprogram_test.cc.o"
  "CMakeFiles/multiprogram_test.dir/multiprogram_test.cc.o.d"
  "multiprogram_test"
  "multiprogram_test.pdb"
  "multiprogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
