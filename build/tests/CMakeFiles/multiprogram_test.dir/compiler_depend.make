# Empty compiler generated dependencies file for multiprogram_test.
# This may be replaced when dependencies are built.
