file(REMOVE_RECURSE
  "CMakeFiles/pni_traffic_test.dir/pni_traffic_test.cc.o"
  "CMakeFiles/pni_traffic_test.dir/pni_traffic_test.cc.o.d"
  "pni_traffic_test"
  "pni_traffic_test.pdb"
  "pni_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pni_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
