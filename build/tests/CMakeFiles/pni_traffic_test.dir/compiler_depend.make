# Empty compiler generated dependencies file for pni_traffic_test.
# This may be replaced when dependencies are built.
