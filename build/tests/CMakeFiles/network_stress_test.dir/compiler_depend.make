# Empty compiler generated dependencies file for network_stress_test.
# This may be replaced when dependencies are built.
