file(REMOVE_RECURSE
  "CMakeFiles/network_stress_test.dir/network_stress_test.cc.o"
  "CMakeFiles/network_stress_test.dir/network_stress_test.cc.o.d"
  "network_stress_test"
  "network_stress_test.pdb"
  "network_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
