file(REMOVE_RECURSE
  "CMakeFiles/task_pool_test.dir/task_pool_test.cc.o"
  "CMakeFiles/task_pool_test.dir/task_pool_test.cc.o.d"
  "task_pool_test"
  "task_pool_test.pdb"
  "task_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
