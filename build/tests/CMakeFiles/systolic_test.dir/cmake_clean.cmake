file(REMOVE_RECURSE
  "CMakeFiles/systolic_test.dir/systolic_test.cc.o"
  "CMakeFiles/systolic_test.dir/systolic_test.cc.o.d"
  "systolic_test"
  "systolic_test.pdb"
  "systolic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
