file(REMOVE_RECURSE
  "CMakeFiles/ultrasim.dir/ultrasim.cc.o"
  "CMakeFiles/ultrasim.dir/ultrasim.cc.o.d"
  "ultrasim"
  "ultrasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultrasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
