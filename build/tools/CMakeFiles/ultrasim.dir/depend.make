# Empty dependencies file for ultrasim.
# This may be replaced when dependencies are built.
