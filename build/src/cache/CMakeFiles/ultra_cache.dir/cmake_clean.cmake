file(REMOVE_RECURSE
  "CMakeFiles/ultra_cache.dir/cache.cc.o"
  "CMakeFiles/ultra_cache.dir/cache.cc.o.d"
  "libultra_cache.a"
  "libultra_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
