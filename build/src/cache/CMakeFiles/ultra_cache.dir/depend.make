# Empty dependencies file for ultra_cache.
# This may be replaced when dependencies are built.
