file(REMOVE_RECURSE
  "libultra_cache.a"
)
