# Empty compiler generated dependencies file for ultra_mem.
# This may be replaced when dependencies are built.
