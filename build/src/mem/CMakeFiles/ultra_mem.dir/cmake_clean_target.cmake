file(REMOVE_RECURSE
  "libultra_mem.a"
)
