
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_hash.cc" "src/mem/CMakeFiles/ultra_mem.dir/address_hash.cc.o" "gcc" "src/mem/CMakeFiles/ultra_mem.dir/address_hash.cc.o.d"
  "/root/repo/src/mem/fetch_phi.cc" "src/mem/CMakeFiles/ultra_mem.dir/fetch_phi.cc.o" "gcc" "src/mem/CMakeFiles/ultra_mem.dir/fetch_phi.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/ultra_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/ultra_mem.dir/memory_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ultra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
