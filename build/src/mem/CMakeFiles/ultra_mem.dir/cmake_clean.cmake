file(REMOVE_RECURSE
  "CMakeFiles/ultra_mem.dir/address_hash.cc.o"
  "CMakeFiles/ultra_mem.dir/address_hash.cc.o.d"
  "CMakeFiles/ultra_mem.dir/fetch_phi.cc.o"
  "CMakeFiles/ultra_mem.dir/fetch_phi.cc.o.d"
  "CMakeFiles/ultra_mem.dir/memory_system.cc.o"
  "CMakeFiles/ultra_mem.dir/memory_system.cc.o.d"
  "libultra_mem.a"
  "libultra_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
