
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coord.cc" "src/core/CMakeFiles/ultra_core.dir/coord.cc.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/coord.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/core/CMakeFiles/ultra_core.dir/machine.cc.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/machine.cc.o.d"
  "/root/repo/src/core/task_pool.cc" "src/core/CMakeFiles/ultra_core.dir/task_pool.cc.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/task_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ultra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ultra_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ultra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/ultra_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ultra_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
