file(REMOVE_RECURSE
  "libultra_core.a"
)
