file(REMOVE_RECURSE
  "CMakeFiles/ultra_core.dir/coord.cc.o"
  "CMakeFiles/ultra_core.dir/coord.cc.o.d"
  "CMakeFiles/ultra_core.dir/machine.cc.o"
  "CMakeFiles/ultra_core.dir/machine.cc.o.d"
  "CMakeFiles/ultra_core.dir/task_pool.cc.o"
  "CMakeFiles/ultra_core.dir/task_pool.cc.o.d"
  "libultra_core.a"
  "libultra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
