file(REMOVE_RECURSE
  "CMakeFiles/ultra_apps.dir/accounts.cc.o"
  "CMakeFiles/ultra_apps.dir/accounts.cc.o.d"
  "CMakeFiles/ultra_apps.dir/efficiency_model.cc.o"
  "CMakeFiles/ultra_apps.dir/efficiency_model.cc.o.d"
  "CMakeFiles/ultra_apps.dir/montecarlo.cc.o"
  "CMakeFiles/ultra_apps.dir/montecarlo.cc.o.d"
  "CMakeFiles/ultra_apps.dir/multigrid.cc.o"
  "CMakeFiles/ultra_apps.dir/multigrid.cc.o.d"
  "CMakeFiles/ultra_apps.dir/shortest_path.cc.o"
  "CMakeFiles/ultra_apps.dir/shortest_path.cc.o.d"
  "CMakeFiles/ultra_apps.dir/tred2.cc.o"
  "CMakeFiles/ultra_apps.dir/tred2.cc.o.d"
  "CMakeFiles/ultra_apps.dir/weather.cc.o"
  "CMakeFiles/ultra_apps.dir/weather.cc.o.d"
  "libultra_apps.a"
  "libultra_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
