# Empty compiler generated dependencies file for ultra_apps.
# This may be replaced when dependencies are built.
