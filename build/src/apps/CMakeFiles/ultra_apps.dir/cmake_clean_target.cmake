file(REMOVE_RECURSE
  "libultra_apps.a"
)
