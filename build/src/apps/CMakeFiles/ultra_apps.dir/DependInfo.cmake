
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/accounts.cc" "src/apps/CMakeFiles/ultra_apps.dir/accounts.cc.o" "gcc" "src/apps/CMakeFiles/ultra_apps.dir/accounts.cc.o.d"
  "/root/repo/src/apps/efficiency_model.cc" "src/apps/CMakeFiles/ultra_apps.dir/efficiency_model.cc.o" "gcc" "src/apps/CMakeFiles/ultra_apps.dir/efficiency_model.cc.o.d"
  "/root/repo/src/apps/montecarlo.cc" "src/apps/CMakeFiles/ultra_apps.dir/montecarlo.cc.o" "gcc" "src/apps/CMakeFiles/ultra_apps.dir/montecarlo.cc.o.d"
  "/root/repo/src/apps/multigrid.cc" "src/apps/CMakeFiles/ultra_apps.dir/multigrid.cc.o" "gcc" "src/apps/CMakeFiles/ultra_apps.dir/multigrid.cc.o.d"
  "/root/repo/src/apps/shortest_path.cc" "src/apps/CMakeFiles/ultra_apps.dir/shortest_path.cc.o" "gcc" "src/apps/CMakeFiles/ultra_apps.dir/shortest_path.cc.o.d"
  "/root/repo/src/apps/tred2.cc" "src/apps/CMakeFiles/ultra_apps.dir/tred2.cc.o" "gcc" "src/apps/CMakeFiles/ultra_apps.dir/tred2.cc.o.d"
  "/root/repo/src/apps/weather.cc" "src/apps/CMakeFiles/ultra_apps.dir/weather.cc.o" "gcc" "src/apps/CMakeFiles/ultra_apps.dir/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ultra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/ultra_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ultra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ultra_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ultra_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ultra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
