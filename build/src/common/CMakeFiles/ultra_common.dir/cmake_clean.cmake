file(REMOVE_RECURSE
  "CMakeFiles/ultra_common.dir/log.cc.o"
  "CMakeFiles/ultra_common.dir/log.cc.o.d"
  "CMakeFiles/ultra_common.dir/rng.cc.o"
  "CMakeFiles/ultra_common.dir/rng.cc.o.d"
  "CMakeFiles/ultra_common.dir/stats.cc.o"
  "CMakeFiles/ultra_common.dir/stats.cc.o.d"
  "CMakeFiles/ultra_common.dir/table.cc.o"
  "CMakeFiles/ultra_common.dir/table.cc.o.d"
  "libultra_common.a"
  "libultra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
