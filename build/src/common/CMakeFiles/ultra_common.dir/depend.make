# Empty dependencies file for ultra_common.
# This may be replaced when dependencies are built.
