file(REMOVE_RECURSE
  "libultra_common.a"
)
