file(REMOVE_RECURSE
  "libultra_rt.a"
)
