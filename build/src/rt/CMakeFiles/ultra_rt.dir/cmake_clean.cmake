file(REMOVE_RECURSE
  "CMakeFiles/ultra_rt.dir/scheduler.cc.o"
  "CMakeFiles/ultra_rt.dir/scheduler.cc.o.d"
  "libultra_rt.a"
  "libultra_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
