# Empty dependencies file for ultra_rt.
# This may be replaced when dependencies are built.
