file(REMOVE_RECURSE
  "libultra_pe.a"
)
