# Empty dependencies file for ultra_pe.
# This may be replaced when dependencies are built.
