file(REMOVE_RECURSE
  "CMakeFiles/ultra_pe.dir/pe.cc.o"
  "CMakeFiles/ultra_pe.dir/pe.cc.o.d"
  "libultra_pe.a"
  "libultra_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
