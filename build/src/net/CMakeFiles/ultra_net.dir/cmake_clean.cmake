file(REMOVE_RECURSE
  "CMakeFiles/ultra_net.dir/combining.cc.o"
  "CMakeFiles/ultra_net.dir/combining.cc.o.d"
  "CMakeFiles/ultra_net.dir/network.cc.o"
  "CMakeFiles/ultra_net.dir/network.cc.o.d"
  "CMakeFiles/ultra_net.dir/pni.cc.o"
  "CMakeFiles/ultra_net.dir/pni.cc.o.d"
  "CMakeFiles/ultra_net.dir/routing.cc.o"
  "CMakeFiles/ultra_net.dir/routing.cc.o.d"
  "CMakeFiles/ultra_net.dir/systolic_queue.cc.o"
  "CMakeFiles/ultra_net.dir/systolic_queue.cc.o.d"
  "CMakeFiles/ultra_net.dir/trace.cc.o"
  "CMakeFiles/ultra_net.dir/trace.cc.o.d"
  "CMakeFiles/ultra_net.dir/traffic.cc.o"
  "CMakeFiles/ultra_net.dir/traffic.cc.o.d"
  "libultra_net.a"
  "libultra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
