file(REMOVE_RECURSE
  "libultra_net.a"
)
