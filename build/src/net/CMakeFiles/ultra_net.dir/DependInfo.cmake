
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/combining.cc" "src/net/CMakeFiles/ultra_net.dir/combining.cc.o" "gcc" "src/net/CMakeFiles/ultra_net.dir/combining.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/ultra_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/ultra_net.dir/network.cc.o.d"
  "/root/repo/src/net/pni.cc" "src/net/CMakeFiles/ultra_net.dir/pni.cc.o" "gcc" "src/net/CMakeFiles/ultra_net.dir/pni.cc.o.d"
  "/root/repo/src/net/routing.cc" "src/net/CMakeFiles/ultra_net.dir/routing.cc.o" "gcc" "src/net/CMakeFiles/ultra_net.dir/routing.cc.o.d"
  "/root/repo/src/net/systolic_queue.cc" "src/net/CMakeFiles/ultra_net.dir/systolic_queue.cc.o" "gcc" "src/net/CMakeFiles/ultra_net.dir/systolic_queue.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/net/CMakeFiles/ultra_net.dir/trace.cc.o" "gcc" "src/net/CMakeFiles/ultra_net.dir/trace.cc.o.d"
  "/root/repo/src/net/traffic.cc" "src/net/CMakeFiles/ultra_net.dir/traffic.cc.o" "gcc" "src/net/CMakeFiles/ultra_net.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ultra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ultra_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
