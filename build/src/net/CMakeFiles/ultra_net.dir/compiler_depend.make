# Empty compiler generated dependencies file for ultra_net.
# This may be replaced when dependencies are built.
