# Empty compiler generated dependencies file for ultra_analytic.
# This may be replaced when dependencies are built.
