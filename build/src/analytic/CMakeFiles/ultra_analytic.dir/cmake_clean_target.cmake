file(REMOVE_RECURSE
  "libultra_analytic.a"
)
