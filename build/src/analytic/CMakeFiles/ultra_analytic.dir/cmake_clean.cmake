file(REMOVE_RECURSE
  "CMakeFiles/ultra_analytic.dir/config.cc.o"
  "CMakeFiles/ultra_analytic.dir/config.cc.o.d"
  "CMakeFiles/ultra_analytic.dir/packaging.cc.o"
  "CMakeFiles/ultra_analytic.dir/packaging.cc.o.d"
  "CMakeFiles/ultra_analytic.dir/queueing.cc.o"
  "CMakeFiles/ultra_analytic.dir/queueing.cc.o.d"
  "libultra_analytic.a"
  "libultra_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
