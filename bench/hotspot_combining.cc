/**
 * @file
 * Design-goal 5 reproduction (sections 3.1.2-3.1.3): concurrent access
 * by multiple PEs to the same memory cell suffers no performance
 * penalty when requests combine -- "any number of concurrent memory
 * references to the same location can be satisfied in the time
 * required for just one central memory access".
 *
 * Every active PE repeatedly fetch-and-adds one shared coordination
 * variable (closed loop, one outstanding hot request per PE).  Three
 * switch designs are compared:
 *
 *   combining        -- the Ultracomputer switch (Full policy);
 *   no combining     -- plain queued message switching: the hot MM
 *                       serializes and total throughput is pinned at
 *                       one access per MM service time;
 *   kill-on-conflict -- the Burroughs-style baseline: conflicting
 *                       requests die and retry, adding a retry storm.
 *
 * Expected shape: with combining, per-op latency grows ~log N (the
 * depth of the combining tree) and aggregate F&A throughput grows
 * linearly in N; without combining throughput is flat at ~1/3 op per
 * cycle and access latency is queueing-dominated (completions are also
 * unfair under saturation -- requests deep in the congested tree wait
 * far longer than the mean).  Combined fraction approaches (N-1)/N.
 *
 * Each combining run carries a latency observatory; its combining
 * analytics (fan-in distribution, MM cycles saved, decomposition
 * violations) land in BENCH_hotspot.json (or argv[1]) for CI trending.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/latency.h"

namespace
{

using namespace ultra;

struct HotResult
{
    double meanAccess; //!< PNI request -> value, includes issue wait
    double meanRtt;
    double opsPerCycle;
    double combinedFraction;
    std::uint64_t mmServed;

    // Latency-observatory combining analytics (combining runs only).
    std::uint64_t delivered = 0;
    std::uint64_t combinedDelivered = 0;
    std::uint64_t mmCyclesSaved = 0;
    std::uint64_t violations = 0;
    std::uint64_t fanInP50 = 1;
    std::uint64_t fanInMax = 1;
};

HotResult
runHot(std::uint32_t ports, net::CombinePolicy policy, bool burroughs)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = ports;
    ncfg.k = 2;
    ncfg.m = 2;
    ncfg.sizing = net::PacketSizing::ByContent;
    ncfg.queueCapacityPackets = 15;
    ncfg.mmPendingCapacityPackets = 15;
    ncfg.combinePolicy = policy;
    ncfg.burroughsKill = burroughs;

    net::TrafficConfig tcfg;
    tcfg.activePes = ports;
    tcfg.closedLoop = true;
    tcfg.window = 1;
    tcfg.hotFraction = 1.0;
    tcfg.hotAddr = 13;
    tcfg.addrSpaceWords = 1 << 16;
    tcfg.seed = 11;

    net::PniConfig pcfg;
    // A PE re-issues the next hot F&A only after the previous returns,
    // so the unique-location rule is never violated.
    pcfg.maxOutstanding = 1;

    bench::TrafficRig rig(ncfg, tcfg, true, pcfg);
    // Attach before any traffic (the network must be quiescent); the
    // observatory therefore covers the warmup as well, unlike the
    // registry stats, which measure() resets.
    obs::LatencyShape shape;
    shape.stages = rig.network.topology().stages();
    shape.switchesPerStage = rig.network.topology().switchesPerStage();
    shape.mmAccessTime = ncfg.mmAccessTime;
    obs::LatencyObservatory latency(shape);
    rig.network.setLatencyObservatory(&latency);
    const Cycle cycles = 8000;
    rig.measure(2000, cycles);

    const auto &stats = rig.network.stats();
    HotResult out;
    out.meanAccess = rig.pni.stats().accessTime.mean();
    out.meanRtt = stats.roundTrip.mean();
    out.opsPerCycle = static_cast<double>(stats.delivered) /
                      static_cast<double>(cycles);
    out.combinedFraction =
        stats.injected
            ? static_cast<double>(stats.combined) /
                  static_cast<double>(stats.injected)
            : 0.0;
    out.mmServed = stats.mmServed;
    out.delivered = latency.delivered();
    out.combinedDelivered = latency.combinedDelivered();
    out.mmCyclesSaved = latency.mmCyclesSaved();
    out.violations = latency.violations();
    if (latency.fanInHist().count() > 0) {
        out.fanInP50 = latency.fanInHist().percentile(0.5);
        const Histogram &h = latency.fanInHist();
        for (std::size_t b = h.numBins(); b-- > 0;) {
            if (h.binCount(b) > 0) {
                out.fanInMax = b * h.binWidth();
                break;
            }
        }
    }
    return out;
}

bool
writeJson(const std::string &path,
          const std::vector<std::pair<std::uint32_t, HotResult>> &runs)
{
    std::ofstream out(path);
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    out << "{\n  \"bench\": \"hotspot_combining\",\n"
        << "  \"design\": \"combining\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &[ports, r] = runs[i];
        out << "    {\"ports\": " << ports << ", \"ops_per_cycle\": "
            << r.opsPerCycle << ", \"access_time\": " << r.meanAccess
            << ", \"combined_fraction\": " << r.combinedFraction
            << ", \"delivered\": " << r.delivered
            << ", \"combined_delivered\": " << r.combinedDelivered
            << ", \"mm_cycles_saved\": " << r.mmCyclesSaved
            << ", \"fanin_p50\": " << r.fanInP50
            << ", \"fanin_max\": " << r.fanInMax
            << ", \"violations\": " << r.violations << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_hotspot.json";
    std::printf("Claim 5: hot-spot fetch-and-add (every PE hammers one "
                "variable, window 1)\n\n");
    std::vector<std::pair<std::uint32_t, HotResult>> combining_runs;
    TextTable table;
    table.setHeader({"N", "design", "access time (cycles)",
                     "net RTT", "F&A/cycle", "combined %",
                     "MM accesses"});
    for (std::uint32_t ports : {16u, 64u, 256u, 1024u}) {
        const auto full =
            runHot(ports, net::CombinePolicy::Full, false);
        combining_runs.emplace_back(ports, full);
        const auto none =
            runHot(ports, net::CombinePolicy::None, false);
        const auto kill =
            runHot(ports, net::CombinePolicy::None, true);
        table.addRow({std::to_string(ports), "combining",
                      TextTable::fmt(full.meanAccess, 1),
                      TextTable::fmt(full.meanRtt, 1),
                      TextTable::fmt(full.opsPerCycle, 2),
                      TextTable::pct(full.combinedFraction),
                      std::to_string(full.mmServed)});
        table.addRow({std::to_string(ports), "no combining",
                      TextTable::fmt(none.meanAccess, 1),
                      TextTable::fmt(none.meanRtt, 1),
                      TextTable::fmt(none.opsPerCycle, 2),
                      TextTable::pct(none.combinedFraction),
                      std::to_string(none.mmServed)});
        table.addRow({std::to_string(ports), "kill-on-conflict",
                      TextTable::fmt(kill.meanAccess, 1),
                      TextTable::fmt(kill.meanRtt, 1),
                      TextTable::fmt(kill.opsPerCycle, 2),
                      TextTable::pct(kill.combinedFraction),
                      std::to_string(kill.mmServed)});
        table.addSeparator();
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nexpected shape: with combining, access time grows "
                "~log N and F&A throughput ~linearly in N\n(\"satisfied "
                "in the time required for just one central memory "
                "access\"); without,\nthe hot module serializes: "
                "throughput is pinned at 1/access-time and the access\n"
                "time a PE sees grows linearly with N.\n");
    std::uint64_t violations = 0;
    for (const auto &[ports, r] : combining_runs)
        violations += r.violations;
    if (!writeJson(out_path, combining_runs))
        return 1;
    std::printf("\ncombining analytics written to %s\n",
                out_path.c_str());
    if (violations != 0) {
        std::fprintf(stderr,
                     "latency decomposition violations: %llu\n",
                     static_cast<unsigned long long>(violations));
        return 1;
    }
    return 0;
}
