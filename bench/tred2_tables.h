/**
 * @file
 * Shared machinery for the Table 2 / Table 3 reproductions: simulate
 * parallel TRED2 for a set of measurable (P, N) pairs, fit the
 * T(P,N) = aN + dN^3/P + W model of section 5, and render the paper's
 * efficiency grid with asterisks on projected (unsimulated) entries.
 */

#ifndef ULTRA_BENCH_TRED2_TABLES_H
#define ULTRA_BENCH_TRED2_TABLES_H

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "apps/efficiency_model.h"
#include "apps/tred2.h"
#include "common/table.h"
#include "core/machine.h"

namespace ultra::bench
{

struct Tred2Study
{
    apps::EfficiencyFit fit;
    std::vector<apps::EfficiencySample> samples;
    /** Measured efficiencies keyed by (P, N). */
    std::set<std::pair<std::uint32_t, std::size_t>> measured;
    std::vector<std::array<double, 3>> measuredEff; // P, N, E
};

/** Run the measurable subset and fit the model. */
inline Tred2Study
runTred2Study()
{
    Tred2Study study;
    const std::vector<std::pair<std::uint32_t, std::size_t>> pairs = {
        {1, 16}, {2, 16}, {4, 16}, {8, 16}, {16, 16},
        {1, 24}, {4, 24}, {16, 24},
        {1, 32}, {4, 32}, {16, 32},
        {1, 48}, {8, 48}, {16, 48},
    };
    double t1_by_n[64] = {};
    for (const auto &[p, n] : pairs) {
        core::MachineConfig cfg = core::MachineConfig::small(
            std::max<std::uint32_t>(16, p), 2);
        cfg.net.combinePolicy = net::CombinePolicy::Full;
        core::Machine machine(cfg);
        const auto result = apps::tred2Parallel(
            machine, p, apps::randomSymmetric(n, 100 + n), n);
        study.samples.push_back({p, n,
                                 static_cast<double>(result.cycles),
                                 result.waitingTime});
        study.measured.insert({p, n});
        if (p == 1)
            t1_by_n[n / 8] = static_cast<double>(result.cycles);
    }
    for (const auto &s : study.samples) {
        const double t1 = t1_by_n[s.n / 8];
        if (t1 > 0.0 && s.pes > 1) {
            study.measuredEff.push_back(
                {static_cast<double>(s.pes),
                 static_cast<double>(s.n),
                 t1 / (s.pes * s.totalTime)});
        }
    }
    study.fit = apps::fitEfficiencyModel(study.samples);
    return study;
}

/** Render the paper's Table 2/3 grid from the fitted model. */
inline void
printEfficiencyGrid(const Tred2Study &study, bool include_waiting)
{
    TextTable table;
    std::vector<std::string> header = {"N \\ PE"};
    const std::vector<std::uint32_t> pe_cols = {16, 64, 256, 1024,
                                                4096};
    const std::vector<std::size_t> n_rows = {16,  32,  64,  128,
                                             256, 512, 1024};
    for (auto p : pe_cols)
        header.push_back(std::to_string(p));
    table.setHeader(header);
    for (auto n : n_rows) {
        std::vector<std::string> row = {std::to_string(n)};
        for (auto p : pe_cols) {
            double eff = study.fit.efficiency(p, n, include_waiting);
            bool projected = true;
            if (include_waiting && study.measured.count({p, n})) {
                // Use the actually-measured efficiency where we have
                // a simulation (the paper's unstarred entries).
                for (const auto &m : study.measuredEff) {
                    if (m[0] == p && m[1] == static_cast<double>(n)) {
                        eff = m[2];
                        projected = false;
                    }
                }
            }
            row.push_back(TextTable::pct(eff) +
                          (projected ? "*" : ""));
        }
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    std::printf("(* = projected from the fitted model; unstarred "
                "entries were simulated)\n");
}

inline void
printFitSummary(const Tred2Study &study)
{
    std::printf("\nfitted model: T(P,N) = %.2f N + %.4f N^3/P + "
                "%.2f max(N, sqrt(P))  [cycles]\n",
                study.fit.a, study.fit.d, study.fit.w);
    std::printf("measured samples (P, N, T cycles, W cycles):\n");
    for (const auto &s : study.samples) {
        std::printf("  P=%-3u N=%-4zu T=%-10.0f W=%-8.0f  model T=%.0f\n",
                    s.pes, s.n, s.totalTime, s.waitingTime,
                    study.fit.time(s.pes, s.n, true));
    }
}

} // namespace ultra::bench

#endif // ULTRA_BENCH_TRED2_TABLES_H
