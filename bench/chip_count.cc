/**
 * @file
 * Section 3.6 reproduction: machine packaging.
 *
 * Paper claims for the 4096-PE machine built from two-chip 4x4
 * switches: ~65,000 chips total, 19% in the network, 64 PE boards of
 * 352 chips and 64 MM boards of 672 chips, with memory chips
 * dominating the count.
 */

#include <cstdio>

#include "analytic/packaging.h"
#include "common/table.h"

int
main()
{
    using namespace ultra;
    using analytic::packageMachine;

    std::printf("Section 3.6: machine packaging "
                "(4 chips/PE-PNI, 9 chips/MM-MNI, 2 chips/4x4 switch)\n");
    TextTable table;
    table.setHeader({"PEs", "PE chips", "MM chips", "net chips",
                     "total", "net %", "PE boards", "chips/PE board",
                     "chips/MM board"});
    for (std::uint64_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
        const auto pkg = packageMachine(n);
        table.addRow({std::to_string(n), std::to_string(pkg.peChips),
                      std::to_string(pkg.mmChips),
                      std::to_string(pkg.networkChips),
                      std::to_string(pkg.totalChips()),
                      TextTable::pct(pkg.networkFraction()),
                      pkg.peBoards ? std::to_string(pkg.peBoards) : "-",
                      pkg.chipsPerPeBoard
                          ? std::to_string(pkg.chipsPerPeBoard)
                          : "-",
                      pkg.chipsPerMmBoard
                          ? std::to_string(pkg.chipsPerMmBoard)
                          : "-"});
    }
    std::printf("%s", table.render().c_str());

    const auto paper = packageMachine(4096);
    std::printf("\npaper:     ~65,000 chips, 19%% network, "
                "64+64 boards of 352/672 chips\n");
    std::printf("this repo: %llu chips, %.1f%% network, "
                "%llu+%llu boards of %llu/%llu chips\n",
                static_cast<unsigned long long>(paper.totalChips()),
                100.0 * paper.networkFraction(),
                static_cast<unsigned long long>(paper.peBoards),
                static_cast<unsigned long long>(paper.mmBoards),
                static_cast<unsigned long long>(paper.chipsPerPeBoard),
                static_cast<unsigned long long>(paper.chipsPerMmBoard));
    return 0;
}
