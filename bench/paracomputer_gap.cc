/**
 * @file
 * The cost of physical realizability: the paper's machine is an
 * *approximation* of the ideal paracomputer (section 2.1), whose
 * single-cycle shared memory "cannot be built".  How close does the
 * combining network come?
 *
 * Each scientific workload runs twice on the same PE timing model:
 * once over the ideal paracomputer (one-cycle memory, unlimited
 * concurrency) and once over the real simulated network (6-cycle-ish
 * round trips, queueing, combining).  The slowdown factor is the price
 * of realizability; prefetching and the low shared-reference density
 * of the programs (section 4.2's conclusion) keep it small.
 */

#include <cstdio>

#include "apps/montecarlo.h"
#include "apps/multigrid.h"
#include "apps/shortest_path.h"
#include "apps/tred2.h"
#include "apps/weather.h"
#include "common/table.h"
#include "core/machine.h"

namespace
{

using namespace ultra;

core::MachineConfig
machineConfig(bool ideal)
{
    core::MachineConfig cfg = core::MachineConfig::small(64, 2);
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    cfg.net.idealParacomputer = ideal;
    return cfg;
}

template <typename RunFn>
void
compare(TextTable &table, const std::string &name, RunFn run)
{
    core::Machine ideal_machine(machineConfig(true));
    core::Machine real_machine(machineConfig(false));
    const Cycle t_ideal = run(ideal_machine);
    const Cycle t_real = run(real_machine);
    table.addRow({name, std::to_string(t_ideal),
                  std::to_string(t_real),
                  TextTable::fmt(static_cast<double>(t_real) /
                                     static_cast<double>(t_ideal),
                                 2)});
}

} // namespace

int
main()
{
    std::printf("The paracomputer gap: workload time on the ideal "
                "single-cycle machine vs the\ncombining network "
                "(identical PE timing; 16 PEs)\n\n");
    TextTable table;
    table.setHeader({"workload", "paracomputer (cycles)",
                     "network (cycles)", "slowdown"});

    compare(table, "TRED2 N=32", [](core::Machine &machine) {
        return apps::tred2Parallel(machine, 16,
                                   apps::randomSymmetric(32, 4), 32)
            .cycles;
    });
    compare(table, "weather 32x32x4", [](core::Machine &machine) {
        apps::WeatherConfig cfg;
        cfg.rows = 32;
        cfg.cols = 32;
        cfg.steps = 4;
        return apps::weatherParallel(machine, 16, cfg,
                                     apps::weatherInitial(cfg, 3))
            .cycles;
    });
    compare(table, "multigrid lvl 5", [](core::Machine &machine) {
        apps::MultigridConfig cfg;
        cfg.level = 5;
        cfg.vCycles = 1;
        return apps::multigridParallel(machine, 16, cfg,
                                       apps::multigridRhs(cfg.level))
            .cycles;
    });
    compare(table, "montecarlo 512", [](core::Machine &machine) {
        apps::MonteCarloConfig cfg;
        cfg.particles = 512;
        return apps::monteCarloParallel(machine, 16, cfg).cycles;
    });
    compare(table, "sssp 64v", [](core::Machine &machine) {
        const apps::Graph graph = apps::randomGraph(64, 4, 2);
        return apps::shortestPathsParallel(machine, 16, graph, 0,
                                           false)
            .cycles;
    });

    std::printf("%s", table.render().c_str());
    std::printf("\nexpected shape: compute-dense codes (TRED2, "
                "multigrid, montecarlo) sit within\n~1.2-2x of the "
                "unbuildable ideal -- the paper's thesis that a "
                "message-switched\ncombining network closely "
                "approximates the paracomputer; coordination-heavy\n"
                "codes (sssp's shared queue) pay more.\n");
    return 0;
}
