/**
 * @file
 * Table 3 reproduction: projected TRED2 efficiencies with all waiting
 * time recovered (W = 0), the optimistic bound for PEs shared among
 * multiple tasks ("if we make the optimistic assumption that all the
 * waiting time can be recovered").
 *
 * Expected shape (paper Table 3): every entry at least as high as the
 * corresponding Table 2 entry -- e.g. paper row N=16 rises from
 * 62/26/7/1/0 to 71/37/12/3/0; the diagonal N = 32 sqrt(P) sits near
 * 90%.
 */

#include <cstdio>

#include "bench/tred2_tables.h"

int
main()
{
    using namespace ultra;
    std::printf("Table 3: projected efficiencies without waiting time "
                "(all W recovered by multiprogramming)\n\n");
    const bench::Tred2Study study = bench::runTred2Study();
    bench::printEfficiencyGrid(study, /*include_waiting=*/false);
    bench::printFitSummary(study);
    return 0;
}
