/**
 * @file
 * Design-goal 1 reproduction (section 3.1): network bandwidth linear
 * in N, with per-PE capacity 1/m messages per cycle.
 *
 * Two sweeps:
 *   1. offered load vs accepted (delivered) throughput per PE at fixed
 *      N -- accepted tracks offered until the 1/m capacity, then
 *      saturates (the paper's "can accommodate any traffic below this
 *      threshold");
 *   2. saturation throughput as N grows -- total bandwidth scales
 *      linearly with the number of PEs (a pipelined, queued network;
 *      contrast with the O(N/log N) of unqueued designs, shown by the
 *      Burroughs kill mode).
 */

#include <cstdio>

#include "bench/bench_util.h"

namespace
{

using namespace ultra;

struct Throughput
{
    double perPe;    //!< delivered messages per PE per cycle
    double transit;  //!< mean one-way transit
};

Throughput
runLoad(std::uint32_t ports, double rate, bool burroughs,
        bool closed_loop)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = ports;
    ncfg.k = 2;
    ncfg.m = 2;
    ncfg.sizing = net::PacketSizing::Uniform;
    ncfg.queueCapacityPackets = 16;
    ncfg.mmPendingCapacityPackets = 16;
    ncfg.combinePolicy = net::CombinePolicy::None;
    ncfg.burroughsKill = burroughs;

    net::TrafficConfig tcfg;
    tcfg.activePes = ports;
    tcfg.rate = rate;
    tcfg.closedLoop = closed_loop;
    tcfg.window = 32;
    tcfg.loadFraction = 0.0;
    tcfg.storeFraction = 1.0;
    tcfg.addrSpaceWords = std::uint64_t{ports} << 8;
    tcfg.seed = 7 + ports;

    net::PniConfig pcfg;
    pcfg.maxOutstanding = 0; // window enforced by the generator

    bench::TrafficRig rig(ncfg, tcfg, true, pcfg);
    const Cycle cycles = 6000;
    rig.measure(1500, cycles);
    Throughput out;
    out.perPe = static_cast<double>(rig.network.stats().delivered) /
                static_cast<double>(cycles) / ports;
    out.transit = rig.network.stats().oneWayTransit.mean();
    return out;
}

} // namespace

int
main()
{
    std::printf("Claim 1: bandwidth linear in N; per-PE capacity 1/m "
                "(m = 2 -> 0.5)\n\n");

    std::printf("Offered vs accepted load (N = 256, queued message "
                "switching):\n");
    TextTable offered_table;
    offered_table.setHeader(
        {"offered/PE", "accepted/PE", "one-way transit"});
    for (double rate : {0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.6}) {
        const auto t = runLoad(256, rate, false, false);
        offered_table.addRow({TextTable::fmt(rate, 2),
                              TextTable::fmt(t.perPe, 3),
                              TextTable::fmt(t.transit, 1)});
    }
    std::printf("%s\n", offered_table.render().c_str());

    std::printf("Saturation throughput vs machine size "
                "(closed loop, window 32):\n");
    TextTable scale_table;
    scale_table.setHeader({"N", "queued: msgs/cycle/PE",
                           "queued: total msgs/cycle",
                           "kill-on-conflict: msgs/cycle/PE",
                           "kill: total"});
    for (std::uint32_t ports : {16u, 64u, 256u, 1024u}) {
        const auto q = runLoad(ports, 0.0, false, true);
        const auto b = runLoad(ports, 0.0, true, true);
        scale_table.addRow(
            {std::to_string(ports), TextTable::fmt(q.perPe, 3),
             TextTable::fmt(q.perPe * ports, 1),
             TextTable::fmt(b.perPe, 3),
             TextTable::fmt(b.perPe * ports, 1)});
    }
    std::printf("%s", scale_table.render().c_str());
    std::printf("\nexpected shape: queued per-PE throughput approaches a "
                "constant as N grows\n(total bandwidth linear in N; the "
                "plateau sits below the ideal 1/m because\nfinite queues "
                "and head-of-line blocking absorb part of it), while\n"
                "kill-on-conflict per-PE throughput keeps decaying "
                "(O(N/log N) total).\n");
    return 0;
}
