/**
 * @file
 * Figure 7 reproduction: average network transit time T as a function
 * of traffic intensity p (messages per PE per network cycle) for the
 * candidate configurations -- k x k switches, multiplexing factor
 * m = k (bandwidth constant B = 1), and d network copies.
 *
 * Three outputs:
 *   1. the analytic Kruskal-Snir curves for the paper's 4096-port
 *      machine, exactly the series plotted in Figure 7;
 *   2. a simulation cross-check on a 1024-port network: measured
 *      one-way head transit (uniform random traffic, uniform message
 *      sizing) against the analytic prediction for the same geometry;
 *   3. BENCH_fig7.json (or argv[1]): every cross-check point with its
 *      predicted/measured transit and relative model drift, so CI can
 *      watch sim-vs-model divergence over time.
 *
 * Expected shape (paper section 4.1): at reasonable intensities the
 * duplexed 4x4 network is best; 8x8 d=6 is close at equal cost and has
 * the larger capacity (0.75 vs 0.5); every curve blows up at its
 * saturation load d/m.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "analytic/config.h"
#include "analytic/drift.h"
#include "analytic/queueing.h"
#include "bench/bench_util.h"

namespace
{

using namespace ultra;

struct Config
{
    unsigned k;
    unsigned d;
};

constexpr Config kConfigs[] = {{2, 1}, {2, 2}, {4, 1},
                               {4, 2}, {8, 4}, {8, 6}};

analytic::NetworkConfig
analyticConfig(std::uint64_t n, const Config &cfg)
{
    analytic::NetworkConfig acfg;
    acfg.n = n;
    acfg.k = cfg.k;
    acfg.m = cfg.k; // B = k/m = 1
    acfg.d = cfg.d;
    return acfg;
}

void
printAnalyticCurves()
{
    std::printf("Figure 7 (analytic): transit time vs traffic "
                "intensity, n = 4096, m = k\n");
    TextTable table;
    std::vector<std::string> header = {"p"};
    for (const auto &cfg : kConfigs) {
        header.push_back("k=" + std::to_string(cfg.k) +
                         ",d=" + std::to_string(cfg.d));
    }
    table.setHeader(header);
    for (int i = 0; i <= 14; ++i) {
        const double p = 0.025 * i;
        std::vector<std::string> row = {TextTable::fmt(p, 3)};
        for (const auto &cfg : kConfigs) {
            row.push_back(bench::fmtOrInf(
                analytic::transitTime(analyticConfig(4096, cfg), p)));
        }
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    std::printf("cost factors C = d/(k lg k): ");
    for (const auto &cfg : kConfigs) {
        std::printf("k=%u,d=%u: %.3f  ", cfg.k, cfg.d,
                    analyticConfig(4096, cfg).costFactor());
    }
    std::printf("\n\n");
}

/** Measured one-way transit on a real simulated network. */
double
simulateTransit(unsigned k, unsigned d, double p, std::uint32_t ports)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = ports;
    ncfg.k = k;
    ncfg.m = k;
    ncfg.d = d;
    ncfg.sizing = net::PacketSizing::Uniform;
    ncfg.queueCapacityPackets = 0; // infinite (analytic assumption)
    ncfg.mmPendingCapacityPackets = 0;
    ncfg.combinePolicy = net::CombinePolicy::None; // assumption 1

    net::TrafficConfig tcfg;
    tcfg.activePes = ports;
    tcfg.rate = p;
    tcfg.loadFraction = 0.0; // all data-carrying, uniform length
    tcfg.storeFraction = 1.0;
    tcfg.addrSpaceWords = std::uint64_t{ports} << 10;
    tcfg.seed = 42 + k + d;

    net::PniConfig pcfg;
    pcfg.maxOutstanding = 0; // open loop

    bench::TrafficRig rig(ncfg, tcfg, true, pcfg);
    rig.measure(2000, 8000);
    return rig.network.stats().oneWayTransit.mean();
}

struct CheckPoint
{
    unsigned k;
    unsigned d;
    double p;
    double predicted; //!< model T(p) + injection hop
    double measured;
    double drift;     //!< (measured - predicted) / predicted
};

std::vector<CheckPoint>
runSimulationCheck()
{
    const std::uint32_t ports = 1024;
    std::printf("Simulation cross-check: n = %u, measured one-way "
                "head transit vs analytic\n",
                ports);
    std::printf("(measured includes the injection hop; analytic "
                "T + 1 is the comparable value)\n");
    std::vector<CheckPoint> points;
    TextTable table;
    table.setHeader({"config", "p", "analytic T+1", "simulated",
                     "drift"});
    for (const auto &cfg : std::vector<Config>{{2, 1}, {4, 1}, {4, 2}}) {
        const analytic::NetworkConfig acfg = analyticConfig(ports, cfg);
        for (double p : {0.05, 0.10, 0.15, 0.20}) {
            if (p >= acfg.capacity() * 0.92)
                continue;
            CheckPoint pt;
            pt.k = cfg.k;
            pt.d = cfg.d;
            pt.p = p;
            pt.predicted = analytic::predictedSimTransit(acfg, p);
            pt.measured = simulateTransit(cfg.k, cfg.d, p, ports);
            pt.drift = analytic::transitDrift(acfg, p, pt.measured);
            points.push_back(pt);
            table.addRow({"k=" + std::to_string(cfg.k) +
                              ",d=" + std::to_string(cfg.d),
                          TextTable::fmt(p, 2),
                          TextTable::fmt(pt.predicted, 1),
                          TextTable::fmt(pt.measured, 1),
                          TextTable::fmt(100.0 * pt.drift, 1) + "%"});
        }
    }
    std::printf("%s\n", table.render().c_str());
    return points;
}

bool
writeJson(const std::string &path,
          const std::vector<CheckPoint> &points)
{
    std::ofstream out(path);
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    double worst = 0.0;
    for (const CheckPoint &pt : points)
        worst = std::max(worst, std::abs(pt.drift));
    out << "{\n  \"bench\": \"fig7_transit_time\",\n"
        << "  \"ports\": 1024,\n"
        << "  \"tolerance\": " << analytic::kDefaultDriftTolerance
        << ",\n"
        << "  \"worst_abs_drift\": " << worst << ",\n"
        << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const CheckPoint &pt = points[i];
        out << "    {\"k\": " << pt.k << ", \"d\": " << pt.d
            << ", \"p\": " << pt.p << ", \"predicted\": "
            << pt.predicted << ", \"measured\": " << pt.measured
            << ", \"drift\": " << pt.drift << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_fig7.json";
    printAnalyticCurves();
    const std::vector<CheckPoint> points = runSimulationCheck();
    if (!writeJson(out_path, points))
        return 1;
    std::printf("model-drift series written to %s\n",
                out_path.c_str());
    return 0;
}
