/**
 * @file
 * Barrier-cost scaling: the coordination pattern every section-5
 * program leans on, measured as PEs grow — with and without combining.
 *
 * A barrier episode is one fetch-and-add per PE on a single count cell
 * plus polling loads of a sense flag: exactly the "many concurrent
 * references to the same location" workload the combining network
 * exists for.  Expected shape: with combining, the cost per episode
 * grows ~logarithmically in P (the F&As and the polling loads combine
 * into trees); without combining the count cell's module serializes
 * all P arrivals and the cost grows ~linearly.
 */

#include <cstdio>

#include "common/table.h"
#include "core/coord.h"
#include "core/machine.h"

namespace
{

using namespace ultra;
using core::Machine;
using core::MachineConfig;
using pe::Pe;
using pe::Task;

double
cyclesPerEpisode(std::uint32_t pes, bool combining)
{
    MachineConfig cfg = MachineConfig::small(
        std::max<std::uint32_t>(16, pes), 2);
    cfg.net.combinePolicy = combining ? net::CombinePolicy::Full
                                      : net::CombinePolicy::None;
    Machine machine(cfg);
    auto barrier = core::Barrier::create(machine, pes);
    const int episodes = 12;
    for (PEId p = 0; p < pes; ++p) {
        machine.launch(p, [barrier, episodes](Pe &pe) -> Task {
            Word sense = 0;
            for (int e = 0; e < episodes; ++e)
                co_await core::barrierWait(pe, barrier, &sense);
        });
    }
    const bool finished = machine.run();
    ULTRA_ASSERT(finished, "barrier bench did not finish");
    return static_cast<double>(machine.now()) / episodes;
}

} // namespace

int
main()
{
    std::printf("Barrier cost per episode (sense-reversing F&A "
                "barrier, 12 episodes)\n\n");
    TextTable table;
    table.setHeader({"PEs", "combining (cycles)",
                     "no combining (cycles)", "ratio"});
    for (std::uint32_t pes : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        const double with_comb = cyclesPerEpisode(pes, true);
        const double without = cyclesPerEpisode(pes, false);
        table.addRow({std::to_string(pes),
                      TextTable::fmt(with_comb, 0),
                      TextTable::fmt(without, 0),
                      TextTable::fmt(without / with_comb, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nexpected shape: combining keeps episode cost near "
                "O(log P) (arrivals and sense\npolls form combining "
                "trees); without it the count cell's module serializes "
                "all\nP arrivals and cost grows ~linearly in P.\n");
    return 0;
}
