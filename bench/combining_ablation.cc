/**
 * @file
 * Ablations of the combining-switch design choices of section 3.3:
 *
 *   1. combining policy: none / homogeneous / full heterogeneous --
 *      how much do the extra Load-Store / F&A-Store rules buy on a
 *      mixed hot-spot workload?
 *   2. pairwise vs multi-way combining: the paper restricts a queued
 *      request to ONE combine per switch visit ("the structure of the
 *      switch is simplified if it supports only combinations of
 *      pairs") -- how much performance does that simplification cost?
 *   3. wait-buffer capacity: combining stops when the wait buffer
 *      fills; how small can it be before the hot-spot advantage
 *      erodes?
 *
 * Workload: every PE issues a mix of fetch-and-adds and loads to one
 * hot coordination cell (closed loop, window 1).
 */

#include <cstdio>

#include "bench/bench_util.h"

namespace
{

using namespace ultra;

struct Result
{
    double access;
    double opsPerCycle;
    double combinedFraction;
};

Result
runConfig(net::CombinePolicy policy, unsigned max_combines,
          std::uint32_t wait_buffer_capacity)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = 256;
    ncfg.k = 2;
    ncfg.m = 2;
    ncfg.sizing = net::PacketSizing::ByContent;
    ncfg.queueCapacityPackets = 15;
    ncfg.mmPendingCapacityPackets = 15;
    ncfg.combinePolicy = policy;
    ncfg.maxCombinesPerVisit = max_combines;
    ncfg.waitBufferCapacity = wait_buffer_capacity;

    net::TrafficConfig tcfg;
    tcfg.activePes = 256;
    tcfg.closedLoop = true;
    tcfg.window = 1;
    tcfg.hotFraction = 0.7; // the rest are loads/stores of the cell
    tcfg.hotAddr = 5;
    tcfg.loadFraction = 0.6;
    tcfg.storeFraction = 0.2;
    tcfg.addrSpaceWords = 64; // background refs also collide sometimes
    tcfg.seed = 17;

    net::PniConfig pcfg;
    pcfg.maxOutstanding = 1;

    bench::TrafficRig rig(ncfg, tcfg, true, pcfg);
    const Cycle cycles = 8000;
    rig.measure(2000, cycles);
    const auto &stats = rig.network.stats();
    Result out;
    out.access = rig.pni.stats().accessTime.mean();
    out.opsPerCycle = static_cast<double>(stats.delivered) /
                      static_cast<double>(cycles);
    out.combinedFraction =
        stats.injected ? static_cast<double>(stats.combined) /
                             static_cast<double>(stats.injected)
                       : 0.0;
    return out;
}

void
addRow(ultra::TextTable &table, const std::string &name,
       const Result &r)
{
    table.addRow({name, TextTable::fmt(r.access, 1),
                  TextTable::fmt(r.opsPerCycle, 2),
                  TextTable::pct(r.combinedFraction)});
}

} // namespace

int
main()
{
    std::printf("Combining-switch ablations (256 PEs, mixed hot-spot "
                "traffic: 70%% F&A + loads/stores)\n\n");

    std::printf("1. Combining policy:\n");
    TextTable policy_table;
    policy_table.setHeader(
        {"policy", "access time", "ops/cycle", "combined %"});
    addRow(policy_table, "none",
           runConfig(net::CombinePolicy::None, 1, 0));
    addRow(policy_table, "homogeneous (like ops only)",
           runConfig(net::CombinePolicy::Homogeneous, 1, 0));
    addRow(policy_table, "full (heterogeneous rules)",
           runConfig(net::CombinePolicy::Full, 1, 0));
    std::printf("%s\n", policy_table.render().c_str());

    std::printf("2. Pairwise restriction (combines allowed per switch "
                "visit):\n");
    TextTable pair_table;
    pair_table.setHeader(
        {"max combines/visit", "access time", "ops/cycle",
         "combined %"});
    for (unsigned max_combines : {1u, 2u, 4u, 16u}) {
        addRow(pair_table,
               max_combines == 1 ? "1 (paper's pairwise switch)"
                                 : std::to_string(max_combines),
               runConfig(net::CombinePolicy::Homogeneous, max_combines,
                         0));
    }
    std::printf("%s\n", pair_table.render().c_str());

    std::printf("3. Wait-buffer capacity (entries per switch):\n");
    TextTable wb_table;
    wb_table.setHeader(
        {"wait-buffer entries", "access time", "ops/cycle",
         "combined %"});
    for (std::uint32_t capacity : {1u, 2u, 4u, 8u, 16u}) {
        addRow(wb_table, std::to_string(capacity),
               runConfig(net::CombinePolicy::Full, 1, capacity));
    }
    addRow(wb_table, "unbounded",
           runConfig(net::CombinePolicy::Full, 1, 0));
    std::printf("%s", wb_table.render().c_str());
    std::printf("\nexpected shape: homogeneous combining captures most "
                "of the win on F&A-dominated\ntraffic; the pairwise "
                "restriction costs little (deeper trees still form "
                "across\nstages); a handful of wait-buffer entries per "
                "switch suffices.\n");
    return 0;
}
