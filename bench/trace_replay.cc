/**
 * @file
 * The section-4.2 methodology end to end: monitor the traffic a real
 * scientific program generates, then drive that recorded request
 * stream through alternative network configurations to isolate the
 * network's contribution to memory latency.
 *
 * The paper fed measured program characteristics into its queueing
 * models the same way (treating the program as a fixed traffic
 * source); replay is open loop for the same reason.
 */

#include <cstdio>

#include "apps/tred2.h"
#include "common/table.h"
#include "core/machine.h"
#include "mem/address_hash.h"
#include "net/trace.h"

namespace
{

using namespace ultra;

net::Trace
recordTred2Trace(std::uint32_t pes, std::size_t n)
{
    core::MachineConfig cfg = core::MachineConfig::small(64, 2);
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    core::Machine machine(cfg);
    net::TraceRecorder recorder(machine.pni());
    (void)apps::tred2Parallel(machine, pes,
                              apps::randomSymmetric(n, 4), n);
    return recorder.take();
}

struct ReplayConfig
{
    const char *name;
    unsigned k;
    unsigned d;
    net::CombinePolicy policy;
};

net::ReplayResult
replayThrough(const net::Trace &trace, const ReplayConfig &rc)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = 64;
    ncfg.k = rc.k;
    ncfg.m = 2;
    ncfg.d = rc.d;
    ncfg.combinePolicy = rc.policy;
    mem::MemoryConfig mcfg;
    mcfg.numModules = 64;
    mcfg.wordsPerModule = 1 << 12;
    mem::MemorySystem memory(mcfg);
    net::Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), true);
    net::PniConfig pcfg;
    net::PniArray pni(pcfg, network, hash);
    return net::replayTrace(trace, pni, network);
}

} // namespace

int
main()
{
    const std::uint32_t pes = 16;
    const std::size_t n = 32;
    std::printf("Recording the PNI request stream of TRED2 "
                "(N = %zu, %u PEs)...\n",
                n, pes);
    const net::Trace trace = recordTred2Trace(pes, n);
    std::printf("recorded %zu requests over %llu cycles "
                "(intensity %.4f req/PE/cycle)\n\n",
                trace.entries.size(),
                static_cast<unsigned long long>(trace.duration()),
                trace.intensity(pes));

    std::printf("Replaying the identical stream through alternative "
                "networks:\n");
    TextTable table;
    table.setHeader({"network", "mean access (cycles)",
                     "mean one-way", "finished at (cycles)"});
    const ReplayConfig configs[] = {
        {"2x2, d=1, combining", 2, 1, net::CombinePolicy::Full},
        {"2x2, d=1, no combining", 2, 1, net::CombinePolicy::None},
        {"2x2, d=2, combining", 2, 2, net::CombinePolicy::Full},
        {"4x4, d=1, combining", 4, 1, net::CombinePolicy::Full},
        {"4x4, d=2, combining", 4, 2, net::CombinePolicy::Full},
    };
    for (const auto &rc : configs) {
        const auto result = replayThrough(trace, rc);
        table.addRow({rc.name, TextTable::fmt(result.meanAccessTime, 2),
                      TextTable::fmt(result.meanOneWay, 2),
                      std::to_string(result.finishedAt)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nexpected shape: fewer stages (4x4) and more copies "
                "(d=2) shorten access; removing\ncombining hurts most "
                "on this trace's broadcast/barrier bursts.\n");
    return 0;
}
