/**
 * @file
 * Table 1 reproduction: network traffic and performance of four
 * parallel scientific programs on the simulated machine.
 *
 * Configuration as in section 4.2: a 4096-port network of six stages
 * of 4x4 switches, messages of one packet without data and three with,
 * queues limited to fifteen packets, and PE instruction time = MM
 * access time = 2 network cycles (so the minimum CM access time is
 * about eight instruction times).
 *
 * Programs (paper -> this repo):
 *   1. NASA weather PDE, 16 PEs  -> 2-D explicit diffusion, 16 PEs
 *   2. same, 48 PEs              -> same grid, 48 PEs
 *   3. TRED2, 16 PEs             -> parallel Householder reduction
 *   4. multigrid Poisson, 16 PEs -> V-cycle solver
 *
 * Columns (time unit = PE instruction time, as in the paper):
 *   avg CM access time | idle % | idle per CM ref | mem refs/instr |
 *   shared refs/instr
 *
 * Paper's values for comparison:
 *   1: 8.94  37%  5.3  0.21  0.08
 *   2: 8.83  39%  4.5  0.19  0.08
 *   3: 8.81  22%  4.9  0.25  0.05
 *   4: 8.85  19%  3.5  0.24  0.06
 */

#include <cstdio>
#include <functional>
#include <string>

#include "apps/multigrid.h"
#include "apps/tred2.h"
#include "apps/weather.h"
#include "common/table.h"
#include "core/machine.h"

namespace
{

using namespace ultra;

struct ProgramRow
{
    std::string name;
    std::uint32_t pes;
    Cycle cycles;
    pe::PeStats totals;
    double cmAccessCycles;
    std::uint64_t completedRefs;
};

core::MachineConfig
table1Machine()
{
    core::MachineConfig cfg = core::MachineConfig::paperTable1();
    cfg.wordsPerModule = 1 << 6; // 4096 modules x 64 words is plenty
    return cfg;
}

void
printRow(TextTable &table, const ProgramRow &row)
{
    const double instr_time = 2.0; // cycles per instruction
    const double duration =
        static_cast<double>(row.cycles) * row.pes;
    const double idle_frac =
        static_cast<double>(row.totals.idleCycles) / duration;
    // The paper's column is idle cycles per CM *load* (stores and
    // fetch-and-adds are pipelined; loads are what PEs wait for).
    const double idle_per_ref =
        static_cast<double>(row.totals.idleCycles) /
        static_cast<double>(row.totals.sharedLoads) / instr_time;
    const double mem_per_instr =
        static_cast<double>(row.totals.sharedRefs +
                            row.totals.privateRefs) /
        static_cast<double>(row.totals.instructions);
    const double shared_per_instr =
        static_cast<double>(row.totals.sharedRefs) /
        static_cast<double>(row.totals.instructions);
    table.addRow({row.name, std::to_string(row.pes),
                  TextTable::fmt(row.cmAccessCycles / instr_time, 2),
                  TextTable::pct(idle_frac),
                  TextTable::fmt(idle_per_ref, 1),
                  TextTable::fmt(mem_per_instr, 2),
                  TextTable::fmt(shared_per_instr, 3)});
}

ProgramRow
runWeather(std::uint32_t pes)
{
    core::Machine machine(table1Machine());
    apps::WeatherConfig cfg;
    cfg.rows = 48;
    cfg.cols = 32;
    cfg.steps = 4;
    const auto result = apps::weatherParallel(
        machine, pes, cfg, apps::weatherInitial(cfg, 5));
    return {"weather PDE", pes, result.cycles, result.peTotals,
            machine.pni().stats().accessTime.mean(),
            machine.pni().stats().completed};
}

ProgramRow
runTred2()
{
    core::Machine machine(table1Machine());
    const std::size_t n = 48;
    const auto result = apps::tred2Parallel(
        machine, 16, apps::randomSymmetric(n, 21), n);
    return {"TRED2", 16, result.cycles, result.peTotals,
            machine.pni().stats().accessTime.mean(),
            machine.pni().stats().completed};
}

ProgramRow
runMultigrid()
{
    core::Machine machine(table1Machine());
    apps::MultigridConfig cfg;
    cfg.level = 6;
    cfg.vCycles = 1;
    const auto result = apps::multigridParallel(
        machine, 16, cfg, apps::multigridRhs(cfg.level));
    return {"multigrid Poisson", 16, result.cycles, result.peTotals,
            machine.pni().stats().accessTime.mean(),
            machine.pni().stats().completed};
}

} // namespace

int
main()
{
    std::printf("Table 1: network traffic and performance "
                "(4096-port machine, 6 stages of 4x4 switches)\n");
    std::printf("time unit = PE instruction time (2 network cycles)\n\n");

    TextTable table;
    table.setHeader({"program", "PEs", "avg CM access", "idle cycles",
                     "idle/CM load", "mem ref/instr",
                     "shared ref/instr"});
    printRow(table, runWeather(16));
    printRow(table, runWeather(48));
    printRow(table, runTred2());
    printRow(table, runMultigrid());
    std::printf("%s", table.render().c_str());

    std::printf("\npaper (same columns):\n"
                "  weather 16 PE:    8.94  37%%  5.3  0.21  0.08\n"
                "  weather 48 PE:    8.83  39%%  4.5  0.19  0.08\n"
                "  TRED2 16 PE:      8.81  22%%  4.9  0.25  0.05\n"
                "  multigrid 16 PE:  8.85  19%%  3.5  0.24  0.06\n");
    std::printf("\nexpected shape: CM access close to the ~8-instr "
                "minimum (traffic well below capacity);\nshared-data-"
                "heavy weather idles more than TRED2/multigrid, which "
                "were designed to\nminimize shared references.\n");
    return 0;
}
