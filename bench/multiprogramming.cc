/**
 * @file
 * Section 3.5 / Table 3 premise, validated on the simulator: "k-fold
 * multiprogramming is equivalent to using k times as many PEs -- each
 * having relative performance 1/k", and hardware multiprogramming
 * recovers waiting time.
 *
 * Fixed logical parallelism (W TRED2 workers), swept over how many
 * physical PEs carry them: W PEs x 1 context, W/2 x 2, W/4 x 4.
 * Folding contexts onto fewer PEs costs compute serialization but
 * recovers memory-wait time, so the slowdown is well below the fold
 * factor -- pipeline utilization rises toward 100 %, which is exactly
 * the "optimistic assumption that all the waiting time can be
 * recovered" behind Table 3.
 */

#include <cstdio>

#include "apps/tred2.h"
#include "common/table.h"
#include "core/machine.h"

namespace
{

using namespace ultra;

struct Row
{
    std::uint32_t physicalPes;
    std::uint32_t contexts;
    Cycle cycles;
    double utilization; //!< pipeline busy fraction
    double waitPerWorker;
};

Row
runFolded(std::uint32_t workers, std::uint32_t contexts, std::size_t n)
{
    core::MachineConfig cfg = core::MachineConfig::small(
        std::max<std::uint32_t>(16, workers), 2);
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    core::Machine machine(cfg);
    const auto result = apps::tred2Parallel(
        machine, workers, apps::randomSymmetric(n, 9), n, contexts);
    Row row;
    row.physicalPes = workers / contexts;
    row.contexts = contexts;
    row.cycles = result.cycles;
    row.utilization =
        static_cast<double>(result.peTotals.busyCycles) /
        (static_cast<double>(result.cycles) * row.physicalPes);
    row.waitPerWorker =
        static_cast<double>(result.peTotals.idleCycles) / workers;
    return row;
}

} // namespace

int
main()
{
    const std::uint32_t workers = 16;
    const std::size_t n = 32;
    std::printf("Section 3.5: hardware multiprogramming of TRED2 "
                "(%u workers, N = %zu)\n\n",
                workers, n);
    TextTable table;
    table.setHeader({"physical PEs", "contexts/PE", "T (cycles)",
                     "slowdown vs unfolded", "pipeline utilization",
                     "wait/worker (cycles)"});
    const Row base = runFolded(workers, 1, n);
    for (std::uint32_t contexts : {1u, 2u, 4u}) {
        const Row row =
            contexts == 1 ? base : runFolded(workers, contexts, n);
        table.addRow({std::to_string(row.physicalPes),
                      std::to_string(row.contexts),
                      std::to_string(row.cycles),
                      TextTable::fmt(static_cast<double>(row.cycles) /
                                         static_cast<double>(base.cycles),
                                     2),
                      TextTable::pct(row.utilization),
                      TextTable::fmt(row.waitPerWorker, 0)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nexpected shape: folding 16 workers onto 8 or 4 PEs "
                "slows the run by much less\nthan 2x / 4x, because "
                "co-resident contexts execute during each other's\n"
                "memory waits (pipeline utilization climbs toward "
                "100%%) -- the waiting-time\nrecovery Table 3 assumes.\n");
    return 0;
}
