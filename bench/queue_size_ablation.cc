/**
 * @file
 * Section 4.2 remark reproduction: "Simulations have shown that queues
 * of modest size (18) give essentially the same performance as
 * infinite queues."
 *
 * Uniform traffic at a moderate intensity through a 256-port network
 * of 2x2 switches; the ToMM/ToPE queue capacity is swept from barely
 * one message up to unbounded.  Expected shape: transit time and
 * accepted throughput converge by ~15-18 packets of queue capacity.
 */

#include <cstdio>

#include "bench/bench_util.h"

namespace
{

using namespace ultra;

struct Result
{
    double transit;
    double accepted;
    double issueWait;
};

Result
runCapacity(std::uint32_t capacity_packets, double rate)
{
    net::NetSimConfig ncfg;
    ncfg.numPorts = 256;
    ncfg.k = 2;
    ncfg.m = 2;
    ncfg.sizing = net::PacketSizing::ByContent;
    ncfg.dataPackets = 3;
    ncfg.queueCapacityPackets = capacity_packets;
    ncfg.mmPendingCapacityPackets = capacity_packets;
    ncfg.combinePolicy = net::CombinePolicy::None;

    net::TrafficConfig tcfg;
    tcfg.activePes = 256;
    tcfg.rate = rate;
    tcfg.loadFraction = 0.5;
    tcfg.storeFraction = 0.3;
    tcfg.addrSpaceWords = 1 << 16;
    tcfg.seed = 3;

    net::PniConfig pcfg;
    pcfg.maxOutstanding = 0;

    bench::TrafficRig rig(ncfg, tcfg, true, pcfg);
    const Cycle cycles = 8000;
    rig.measure(2000, cycles);
    Result out;
    out.transit = rig.network.stats().oneWayTransit.mean();
    out.accepted = static_cast<double>(rig.network.stats().injected) /
                   static_cast<double>(cycles) / 256.0;
    out.issueWait = rig.pni.stats().issueWait.mean();
    return out;
}

} // namespace

int
main()
{
    std::printf("Section 4.2: finite queues vs infinite queues "
                "(256 ports, 2x2, p = 0.18)\n\n");
    TextTable table;
    table.setHeader({"queue capacity (packets)", "one-way transit",
                     "accepted/PE/cycle", "mean issue wait"});
    const double rate = 0.18;
    for (std::uint32_t cap : {3u, 6u, 9u, 12u, 15u, 18u, 24u, 48u}) {
        const auto r = runCapacity(cap, rate);
        table.addRow({std::to_string(cap), TextTable::fmt(r.transit, 2),
                      TextTable::fmt(r.accepted, 3),
                      TextTable::fmt(r.issueWait, 2)});
    }
    const auto inf = runCapacity(0, rate);
    table.addRow({"unbounded", TextTable::fmt(inf.transit, 2),
                  TextTable::fmt(inf.accepted, 3),
                  TextTable::fmt(inf.issueWait, 2)});
    std::printf("%s", table.render().c_str());
    std::printf("\nexpected shape: performance converges to the "
                "unbounded-queue value by ~15-18 packets.\n");
    return 0;
}
