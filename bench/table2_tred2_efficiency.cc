/**
 * @file
 * Table 2 reproduction: measured and projected TRED2 efficiencies
 * E(P, N) = T(1, N) / (P T(P, N)) including waiting time.
 *
 * The paper simulated small (P, N) pairs, fitted
 * T(P, N) = aN + dN^3/P + W(P, N), and projected the asterisked
 * entries.  We do the same with this repository's machine simulator.
 *
 * Expected shape (paper Table 2): efficiency falls as P grows at fixed
 * N and rises along the diagonal -- e.g. paper row N=16: 62%, 26%, 7%,
 * 1%*, 0%*; diagonal N=32P: ~85-90%.  Absolute values differ (our
 * substrate is this simulator), the monotone structure must hold.
 */

#include <cstdio>

#include "bench/tred2_tables.h"

int
main()
{
    using namespace ultra;
    std::printf("Table 2: measured and projected efficiencies, "
                "parallel TRED2 (Householder reduction)\n\n");
    const bench::Tred2Study study = bench::runTred2Study();
    bench::printEfficiencyGrid(study, /*include_waiting=*/true);
    bench::printFitSummary(study);
    return 0;
}
