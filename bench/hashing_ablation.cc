/**
 * @file
 * Section 3.1.4 remark reproduction: "introducing a hashing function
 * when translating the virtual address to a physical address assures
 * that this unfavorable situation [all requests landing on one MM]
 * occurs with probability approaching zero".
 *
 * Workload: every PE walks a strided region of *consecutive virtual
 * addresses* (the natural layout of vectors and matrix rows).  Without
 * hashing, stride patterns alias onto few memory modules; with
 * hashing, the module loads even out and transit time drops.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace
{

using namespace ultra;

struct Result
{
    double transit;
    double maxOverMeanLoad; //!< hottest module / average module load
    double mmWait;
};

Result
runStride(bool hashed, std::uint64_t stride)
{
    const std::uint32_t ports = 256;
    net::NetSimConfig ncfg;
    ncfg.numPorts = ports;
    ncfg.k = 2;
    ncfg.m = 2;
    ncfg.combinePolicy = net::CombinePolicy::None;
    ncfg.queueCapacityPackets = 15;
    ncfg.mmPendingCapacityPackets = 15;

    mem::MemoryConfig mcfg = bench::TrafficRig::memConfigFor(ncfg);
    mem::MemorySystem memory(mcfg);
    net::Network network(ncfg, memory);
    mem::AddressHash hash(log2Exact(memory.totalWords()), hashed);
    net::PniConfig pcfg;
    pcfg.maxOutstanding = 4;
    net::PniArray pni(pcfg, network, hash);

    // Column walkers: PE p reads successive rows of its slice of a
    // matrix whose row length is `stride` words -- every access lands
    // on virtual address (row * stride), the classic worst case when
    // stride is a multiple of the module count.
    std::vector<std::uint64_t> cursor(ports, 0);

    const Cycle cycles = 8000;
    const Cycle warmup = 1000;
    for (Cycle c = 0; c < warmup + cycles; ++c) {
        if (c == warmup) {
            network.resetStats();
            memory.resetStats();
        }
        for (std::uint32_t p = 0; p < ports; ++p) {
            if (pni.pendingCount(p) < 2) {
                const std::uint64_t row = p * 1024 + cursor[p]++;
                pni.request(p, net::Op::Load,
                            row * stride % memory.totalWords(), 0);
            }
        }
        pni.tick();
        network.tick();
    }

    const auto &loads = memory.moduleLoad();
    const std::uint64_t peak = *std::max_element(loads.begin(),
                                                 loads.end());
    std::uint64_t total = 0;
    for (auto l : loads)
        total += l;
    Result out;
    out.transit = network.stats().oneWayTransit.mean();
    out.maxOverMeanLoad =
        total ? static_cast<double>(peak) * ports /
                    static_cast<double>(total)
              : 0.0;
    out.mmWait = network.stats().mmQueueWait.mean();
    return out;
}

} // namespace

int
main()
{
    std::printf("Section 3.1.4: address hashing vs module hot-spotting "
                "(256 ports, strided sequential walks)\n\n");
    TextTable table;
    table.setHeader({"stride", "hashing", "one-way transit",
                     "hottest/mean module load", "mean MM wait"});
    for (std::uint64_t stride : {256u, 1024u, 4096u}) {
        for (bool hashed : {false, true}) {
            const auto r = runStride(hashed, stride);
            table.addRow({std::to_string(stride), hashed ? "on" : "off",
                          TextTable::fmt(r.transit, 2),
                          TextTable::fmt(r.maxOverMeanLoad, 2),
                          TextTable::fmt(r.mmWait, 2)});
        }
        table.addSeparator();
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nexpected shape: without hashing, power-of-two "
                "strides alias onto few modules\n(hot/mean >> 1, long "
                "MM waits); hashing keeps hot/mean near 1.\n");
    return 0;
}
