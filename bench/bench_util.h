/**
 * @file
 * Shared assembly helpers for the reproduction benches: a network +
 * memory + PNI + traffic-generator rig, and consistent table output.
 */

#ifndef ULTRA_BENCH_BENCH_UTIL_H
#define ULTRA_BENCH_BENCH_UTIL_H

#include <memory>
#include <string>

#include "common/table.h"
#include "common/types.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "net/traffic.h"

namespace ultra::bench
{

/** A complete synthetic-traffic experiment rig. */
struct TrafficRig
{
    TrafficRig(const net::NetSimConfig &net_cfg,
               const net::TrafficConfig &traffic_cfg,
               bool hash_addresses = true,
               net::PniConfig pni_cfg = {})
        : memory(memConfigFor(net_cfg)), network(net_cfg, memory),
          hash(log2Exact(memory.totalWords()), hash_addresses),
          pni(pni_cfg, network, hash),
          traffic(traffic_cfg, pni, network)
    {}

    static mem::MemoryConfig
    memConfigFor(const net::NetSimConfig &cfg)
    {
        mem::MemoryConfig mc;
        mc.numModules = cfg.numPorts;
        mc.wordsPerModule = 1 << 14;
        mc.accessTime = cfg.mmAccessTime;
        return mc;
    }

    /** Warm up, reset stats, then measure for @p cycles. */
    void
    measure(Cycle warmup, Cycle cycles)
    {
        traffic.run(warmup);
        network.resetStats();
        pni.resetStats();
        traffic.run(cycles);
    }

    mem::MemorySystem memory;
    net::Network network;
    mem::AddressHash hash;
    net::PniArray pni;
    net::TrafficGenerator traffic;
};

/** "12.3" or "inf". */
inline std::string
fmtOrInf(double x, int digits = 1)
{
    if (!(x < 1e30))
        return "inf";
    return TextTable::fmt(x, digits);
}

} // namespace ultra::bench

#endif // ULTRA_BENCH_BENCH_UTIL_H
