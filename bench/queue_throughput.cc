/**
 * @file
 * Appendix reproduction (host hardware): the critical-section-free
 * parallel queue against a conventional mutex-protected queue.
 *
 * The paper's claim is architectural -- with combining fetch-and-add,
 * "thousands of inserts and thousands of deletes can all be
 * accomplished in the time required for just one such operation" --
 * but even on a host CPU without combining, the fetch-and-add queue
 * avoids lock convoys: threads serialize only on cache-line ownership
 * of the counters, not on a critical section spanning the whole
 * operation.  Expected shape: comparable at one thread, and the F&A
 * queue degrades more gracefully as threads are added.
 */

#include <benchmark/benchmark.h>

#include <mutex>
#include <queue>

#include "rt/parallel_queue.h"

namespace
{

using ultra::rt::ParallelQueue;

/** Baseline: every operation inside one critical section. */
class MutexQueue
{
  public:
    explicit MutexQueue(std::size_t capacity) : capacity_(capacity) {}

    bool
    tryInsert(std::uint64_t v)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (items_.size() >= capacity_)
            return false;
        items_.push(v);
        return true;
    }

    bool
    tryDelete(std::uint64_t *out)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (items_.empty())
            return false;
        *out = items_.front();
        items_.pop();
        return true;
    }

  private:
    std::size_t capacity_;
    std::mutex mutex_;
    std::queue<std::uint64_t> items_;
};

template <typename Queue>
void
pingPong(Queue &queue, benchmark::State &state)
{
    // Each thread alternates insert/delete so the queue stays near
    // half full and neither overflow nor underflow dominates.
    std::uint64_t value = state.thread_index();
    std::uint64_t out = 0;
    for (auto _ : state) {
        while (!queue.tryInsert(value))
            benchmark::DoNotOptimize(out);
        while (!queue.tryDelete(&out))
            benchmark::DoNotOptimize(out);
        benchmark::DoNotOptimize(out);
        ++value;
    }
    state.SetItemsProcessed(state.iterations() * 2);
}

ParallelQueue<std::uint64_t> g_fa_queue(1024);
MutexQueue g_mutex_queue(1024);

void
BM_FetchAddQueue(benchmark::State &state)
{
    pingPong(g_fa_queue, state);
}

void
BM_MutexQueue(benchmark::State &state)
{
    pingPong(g_mutex_queue, state);
}

BENCHMARK(BM_FetchAddQueue)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();
BENCHMARK(BM_MutexQueue)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
