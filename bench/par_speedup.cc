/**
 * @file
 * Self-speedup of the ultra::par tick engine: the Table-1 machine
 * (4096 ports, k=4 combining switches) with 1024 engaged PEs running a
 * compute + fetch-and-add worker loop, simulated with 1/2/4/8 host
 * threads.  Reports wall-clock per run and the speedup over the
 * 1-thread engine, and verifies the headline property along the way:
 * every thread count must produce byte-identical stats.
 *
 * Three phases parallelize: PE coroutine stepping (compute phase), the
 * network's per-unit arrival phase, and the hop stages of the
 * departure window (all sharded over the same engine); PNI issue, the
 * MNI handoff, deliveries and memory stay sequential.  The final runs
 * A/B the network sharding and the departure window at the widest
 * thread count so BENCH_par.json tracks both the Amdahl ceiling and
 * each phase's contribution to it.
 *
 * Host cores are detected as max(hardware_concurrency,
 * sched_getaffinity) -- containers often pin affinity below the
 * advertised core count (or report 0), and a speedup quoted against
 * the wrong denominator is worthless.  The canonical artifact
 * BENCH_par.json may only be written on a host with >= 4 usable cores:
 * on a smaller host the bench REFUSES to overwrite it (exit 3) rather
 * than publish numbers that cannot exercise the parallelism they
 * claim to measure.  --force-cores exists solely so tests can drive
 * the guard; a forced artifact is watermarked "forced_cores": true.
 *
 * Usage: par_speedup [--check-speedup] [--force-cores N]
 *                    [--iterations N] [output.json]
 *                                      (default BENCH_par.json)
 *
 * --check-speedup: CI gate -- run 1 vs 8 threads (both with the
 * sharded network) and exit nonzero if the 8-thread self-speedup is
 * not > 1.0 while at least 4 host cores are available: threading that
 * loses to the serial engine on real hardware is a hard failure.  On
 * hosts with fewer cores the check degrades to the determinism
 * assertion alone and prints a greppable SKIPPED marker.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "core/machine.h"
#include "pe/task.h"
#include "sweep/pool.h"

namespace
{

using namespace ultra;

constexpr std::uint32_t kPes = 1024;
constexpr int kDefaultIterations = 150;

/** Exit status of the BENCH_par.json small-host refusal. */
constexpr int kExitRefused = 3;

/** Honest usable-core count: the shared sweep-pool logic (see the
 *  file comment for why affinity matters). */
unsigned
detectHostCores()
{
    return sweep::detectHostCores();
}

struct RunResult
{
    unsigned threads = 1;
    bool shardedNet = true;
    bool parallelDeparture = true;
    double seconds = 0.0;
    Cycle cycles = 0;
    std::string statsJson;
};

RunResult
runOnce(unsigned threads, bool sharded_net, bool parallel_departure,
        int iterations)
{
    core::MachineConfig cfg = core::MachineConfig::paperTable1();
    cfg.threads = threads;
    cfg.shardedNetwork = sharded_net;
    cfg.net.parallelDeparture = parallel_departure;
    core::Machine machine(cfg);
    const Addr counter = machine.allocShared(1, "counter");
    machine.launchAll(kPes, [counter, iterations](pe::Pe &pe)
                          -> pe::Task {
        for (int i = 0; i < iterations; ++i) {
            co_await pe.compute(16);
            co_await pe.fetchAdd(counter, 1);
        }
    });

    const auto start = std::chrono::steady_clock::now();
    const bool finished = machine.run();
    const auto stop = std::chrono::steady_clock::now();
    if (!finished) {
        std::fprintf(stderr, "run with %u threads did not finish\n",
                     threads);
        std::exit(1);
    }
    if (machine.peek(counter) !=
        static_cast<Word>(kPes) * iterations) {
        std::fprintf(stderr, "wrong fetch-add total with %u threads\n",
                     threads);
        std::exit(1);
    }

    RunResult r;
    r.threads = threads;
    r.shardedNet = sharded_net;
    r.parallelDeparture = parallel_departure;
    r.seconds = std::chrono::duration<double>(stop - start).count();
    r.cycles = machine.now();
    r.statsJson = machine.statsJson();
    return r;
}

/** CI gate: determinism always; speedup > 1.0 when cores allow. */
int
checkSpeedup(unsigned host_cores)
{
    const int iterations = 60; // keep the gate fast
    const RunResult solo = runOnce(1, true, true, iterations);
    const RunResult wide = runOnce(8, true, true, iterations);
    if (wide.statsJson != solo.statsJson) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: 8-thread stats "
                             "differ from 1-thread stats\n");
        return 1;
    }
    const double speedup = solo.seconds / wide.seconds;
    std::printf("check-speedup: 1-thread %.2fs, 8-thread %.2fs, "
                "self-speedup %.2fx on %u host core%s\n",
                solo.seconds, wide.seconds, speedup, host_cores,
                host_cores == 1 ? "" : "s");
    if (host_cores < 4) {
        // An explicit, greppable marker: a CI log must never read as
        // "speedup verified" when the host could not exercise it.
        std::printf("SKIPPED: speedup criterion needs >= 4 host cores "
                    "(have %u); determinism verified\n",
                    host_cores);
        return 0;
    }
    if (speedup <= 1.0) {
        std::fprintf(stderr,
                     "SPEEDUP REGRESSION: 8 sharded threads lose to "
                     "the serial engine (%.2fx) with %u cores "
                     "available\n",
                     speedup, host_cores);
        return 1;
    }
    return 0;
}

/** The basename of @p path, for the canonical-artifact guard. */
std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_par.json";
    bool check_speedup = false;
    bool forced_cores = false;
    int iterations = kDefaultIterations;
    unsigned host_cores = detectHostCores();
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--check-speedup") {
            check_speedup = true;
        } else if (arg == "--force-cores" && i + 1 < argc) {
            // Test hook: pretend the host has this many cores so the
            // small-host guard can be exercised either way.
            host_cores = static_cast<unsigned>(
                std::max(1L, std::strtol(argv[++i], nullptr, 10)));
            forced_cores = true;
        } else if (arg == "--iterations" && i + 1 < argc) {
            iterations = static_cast<int>(
                std::max(1L, std::strtol(argv[++i], nullptr, 10)));
        } else {
            out_path = arg;
        }
    }
    if (check_speedup)
        return checkSpeedup(host_cores);

    if (baseName(out_path) == "BENCH_par.json" && host_cores < 4) {
        std::fprintf(
            stderr,
            "REFUSED: not overwriting %s on a %u-core host -- the "
            "committed artifact must come from a host with >= 4 "
            "usable cores so its speedups measure real parallelism. "
            "Write to another filename to keep local numbers, or run "
            "on a multicore host (CI regenerates the artifact).\n",
            out_path.c_str(), host_cores);
        return kExitRefused;
    }

    std::printf("par_speedup: Table-1 machine, %u PEs x %d "
                "compute+fetch-add iterations, %u host core%s%s\n\n",
                kPes, iterations, host_cores,
                host_cores == 1 ? "" : "s",
                forced_cores ? " (forced)" : "");

    std::vector<RunResult> results;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        results.push_back(runOnce(threads, true, true, iterations));
        const RunResult &r = results.back();
        if (r.statsJson != results.front().statsJson) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: %u-thread stats "
                         "differ from 1-thread stats\n",
                         threads);
            return 1;
        }
        std::printf("  threads=%u net=sharded: %.2fs (%llu cycles, "
                    "stats %s)\n",
                    r.threads, r.seconds,
                    static_cast<unsigned long long>(r.cycles),
                    threads == 1 ? "baseline" : "identical");
    }
    // A/B the network sharding and the departure window at the widest
    // engine: net=serial removes both, departures=serial removes only
    // the parallel departure window.
    results.push_back(runOnce(8, false, true, iterations));
    if (results.back().statsJson != results.front().statsJson) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: serial-network stats "
                     "differ from sharded-network stats\n");
        return 1;
    }
    std::printf("  threads=8 net=serial:  %.2fs (stats identical)\n",
                results.back().seconds);
    results.push_back(runOnce(8, true, false, iterations));
    if (results.back().statsJson != results.front().statsJson) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: serial-departure stats "
                     "differ from parallel-departure stats\n");
        return 1;
    }
    std::printf("  threads=8 departures=serial: %.2fs "
                "(stats identical)\n",
                results.back().seconds);

    // One extra prof-instrumented pass at the widest engine, outside
    // the timed reps (lap timers are cheap but not free): the artifact
    // then records *why* the speedup stops where it does -- serial
    // fraction, barrier wait, shard imbalance -- not just that it
    // does.  `ultrascope --prof` renders the embedded report.
    std::string prof_report;
    {
        core::MachineConfig cfg = core::MachineConfig::paperTable1();
        cfg.threads = 8;
        core::Machine machine(cfg);
        machine.enableProfiling();
        const Addr counter = machine.allocShared(1, "counter");
        machine.launchAll(kPes, [counter, iterations](pe::Pe &pe)
                              -> pe::Task {
            for (int i = 0; i < iterations; ++i) {
                co_await pe.compute(16);
                co_await pe.fetchAdd(counter, 1);
            }
        });
        if (!machine.run()) {
            std::fprintf(stderr, "profiled run did not finish\n");
            return 1;
        }
        prof_report = machine.profiler()->reportJson();
    }

    TextTable table;
    table.setHeader({"host threads", "network", "departures",
                     "wall (s)", "self-speedup"});
    for (const RunResult &r : results) {
        table.addRow({std::to_string(r.threads),
                      r.shardedNet ? "sharded" : "serial",
                      r.parallelDeparture ? "window" : "sweep",
                      TextTable::fmt(r.seconds, 2),
                      TextTable::fmt(results.front().seconds /
                                         r.seconds,
                                     2)});
    }
    std::printf("\n%s", table.render().c_str());

    std::ofstream out(out_path);
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << "{\n  \"bench\": \"par_speedup\",\n"
        << "  \"config\": \"paperTable1\",\n"
        << "  \"host_cores\": " << host_cores << ",\n"
        << "  \"forced_cores\": " << (forced_cores ? "true" : "false")
        << ",\n"
        << "  \"pes\": " << kPes << ",\n"
        << "  \"iterations\": " << iterations << ",\n"
        << "  \"cycles\": " << results.front().cycles << ",\n"
        << "  \"deterministic\": true,\n  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        char line[220];
        std::snprintf(line, sizeof line,
                      "    {\"threads\": %u, \"net_sharded\": %s, "
                      "\"parallel_departure\": %s, "
                      "\"wall_seconds\": %.3f, "
                      "\"self_speedup\": %.3f}%s\n",
                      r.threads, r.shardedNet ? "true" : "false",
                      r.parallelDeparture ? "true" : "false",
                      r.seconds,
                      results.front().seconds / r.seconds,
                      i + 1 < results.size() ? "," : "");
        out << line;
    }
    out << "  ],\n  \"prof_8_threads\": " << prof_report << "\n}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
