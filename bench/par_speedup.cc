/**
 * @file
 * Self-speedup of the ultra::par tick engine: the Table-1 machine
 * (4096 ports, k=4 combining switches) with 1024 engaged PEs running a
 * compute + fetch-and-add worker loop, simulated with 1/2/4/8 host
 * threads.  Reports wall-clock per run and the speedup over the
 * 1-thread engine, and verifies the headline property along the way:
 * every thread count must produce byte-identical stats.
 *
 * Two phases parallelize: PE coroutine stepping (compute phase) and
 * the network's per-unit arrival phase (sharded over the same engine);
 * PNI issue, departures/merge, and memory stay sequential.  The final
 * pair of runs A/Bs the network sharding at the widest thread count so
 * BENCH_par.json tracks both the Amdahl ceiling and the network
 * phase's contribution to it.
 *
 * Host cores are detected as max(hardware_concurrency,
 * sched_getaffinity) -- containers often pin affinity below the
 * advertised core count (or report 0), and a speedup quoted against
 * the wrong denominator is worthless.  BENCH_par.json records the
 * honest value; read speedups on a 1-core host accordingly.
 *
 * Usage: par_speedup [--check-speedup] [output.json]
 *                                      (default BENCH_par.json)
 *
 * --check-speedup: CI smoke mode -- run 1 vs 4 threads only and exit
 * nonzero if the 4-thread self-speedup falls below 1.0 while at least
 * 4 host cores are available (a regression that made threading a net
 * loss).  On hosts with fewer cores the check degrades to the
 * determinism assertion alone.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "common/table.h"
#include "core/machine.h"
#include "pe/task.h"

namespace
{

using namespace ultra;

constexpr std::uint32_t kPes = 1024;
constexpr int kIterations = 150;

/** Honest usable-core count (see the file comment). */
unsigned
detectHostCores()
{
    unsigned cores = std::thread::hardware_concurrency();
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof set, &set) == 0) {
        cores = std::max(
            cores, static_cast<unsigned>(CPU_COUNT(&set)));
    }
#endif
    return std::max(cores, 1u);
}

struct RunResult
{
    unsigned threads = 1;
    bool shardedNet = true;
    double seconds = 0.0;
    Cycle cycles = 0;
    std::string statsJson;
};

RunResult
runOnce(unsigned threads, bool sharded_net, int iterations)
{
    core::MachineConfig cfg = core::MachineConfig::paperTable1();
    cfg.threads = threads;
    cfg.shardedNetwork = sharded_net;
    core::Machine machine(cfg);
    const Addr counter = machine.allocShared(1, "counter");
    machine.launchAll(kPes, [counter, iterations](pe::Pe &pe)
                          -> pe::Task {
        for (int i = 0; i < iterations; ++i) {
            co_await pe.compute(16);
            co_await pe.fetchAdd(counter, 1);
        }
    });

    const auto start = std::chrono::steady_clock::now();
    const bool finished = machine.run();
    const auto stop = std::chrono::steady_clock::now();
    if (!finished) {
        std::fprintf(stderr, "run with %u threads did not finish\n",
                     threads);
        std::exit(1);
    }
    if (machine.peek(counter) !=
        static_cast<Word>(kPes) * iterations) {
        std::fprintf(stderr, "wrong fetch-add total with %u threads\n",
                     threads);
        std::exit(1);
    }

    RunResult r;
    r.threads = threads;
    r.shardedNet = sharded_net;
    r.seconds = std::chrono::duration<double>(stop - start).count();
    r.cycles = machine.now();
    r.statsJson = machine.statsJson();
    return r;
}

/** CI smoke: determinism always; speedup >= 1.0 when cores allow. */
int
checkSpeedup(unsigned host_cores)
{
    const int iterations = 60; // keep the smoke fast
    const RunResult solo = runOnce(1, true, iterations);
    const RunResult quad = runOnce(4, true, iterations);
    if (quad.statsJson != solo.statsJson) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: 4-thread stats "
                             "differ from 1-thread stats\n");
        return 1;
    }
    const double speedup = solo.seconds / quad.seconds;
    std::printf("check-speedup: 1-thread %.2fs, 4-thread %.2fs, "
                "self-speedup %.2fx on %u host core%s\n",
                solo.seconds, quad.seconds, speedup, host_cores,
                host_cores == 1 ? "" : "s");
    if (host_cores < 4) {
        // An explicit, greppable marker: a CI log must never read as
        // "speedup verified" when the host could not exercise it.
        std::printf("SKIPPED: speedup criterion needs >= 4 host cores "
                    "(have %u); determinism verified\n",
                    host_cores);
        return 0;
    }
    if (speedup < 1.0) {
        std::fprintf(stderr,
                     "SPEEDUP REGRESSION: 4 threads slower than 1 "
                     "(%.2fx) with %u cores available\n",
                     speedup, host_cores);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_par.json";
    bool check_speedup = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--check-speedup")
            check_speedup = true;
        else
            out_path = argv[i];
    }
    const unsigned host_cores = detectHostCores();
    if (check_speedup)
        return checkSpeedup(host_cores);

    std::printf("par_speedup: Table-1 machine, %u PEs x %d "
                "compute+fetch-add iterations, %u host core%s\n\n",
                kPes, kIterations, host_cores,
                host_cores == 1 ? "" : "s");

    std::vector<RunResult> results;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        results.push_back(runOnce(threads, true, kIterations));
        const RunResult &r = results.back();
        if (r.statsJson != results.front().statsJson) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: %u-thread stats "
                         "differ from 1-thread stats\n",
                         threads);
            return 1;
        }
        std::printf("  threads=%u net=sharded: %.2fs (%llu cycles, "
                    "stats %s)\n",
                    r.threads, r.seconds,
                    static_cast<unsigned long long>(r.cycles),
                    threads == 1 ? "baseline" : "identical");
    }
    // A/B the network arrival-phase sharding at the widest engine.
    results.push_back(runOnce(8, false, kIterations));
    if (results.back().statsJson != results.front().statsJson) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: serial-network stats "
                     "differ from sharded-network stats\n");
        return 1;
    }
    std::printf("  threads=8 net=serial:  %.2fs (stats identical)\n",
                results.back().seconds);

    TextTable table;
    table.setHeader(
        {"host threads", "network", "wall (s)", "self-speedup"});
    for (const RunResult &r : results) {
        table.addRow({std::to_string(r.threads),
                      r.shardedNet ? "sharded" : "serial",
                      TextTable::fmt(r.seconds, 2),
                      TextTable::fmt(results.front().seconds /
                                         r.seconds,
                                     2)});
    }
    std::printf("\n%s", table.render().c_str());

    std::ofstream out(out_path);
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << "{\n  \"bench\": \"par_speedup\",\n"
        << "  \"config\": \"paperTable1\",\n"
        << "  \"host_cores\": " << host_cores << ",\n"
        << "  \"pes\": " << kPes << ",\n"
        << "  \"iterations\": " << kIterations << ",\n"
        << "  \"cycles\": " << results.front().cycles << ",\n"
        << "  \"deterministic\": true,\n  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        char line[200];
        std::snprintf(line, sizeof line,
                      "    {\"threads\": %u, \"net_sharded\": %s, "
                      "\"wall_seconds\": %.3f, "
                      "\"self_speedup\": %.3f}%s\n",
                      r.threads, r.shardedNet ? "true" : "false",
                      r.seconds,
                      results.front().seconds / r.seconds,
                      i + 1 < results.size() ? "," : "");
        out << line;
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
