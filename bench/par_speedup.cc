/**
 * @file
 * Self-speedup of the ultra::par tick engine: the Table-1 machine
 * (4096 ports, k=4 combining switches) with 1024 engaged PEs running a
 * compute + fetch-and-add worker loop, simulated with 1/2/4/8 host
 * threads.  Reports wall-clock per run and the speedup over the
 * 1-thread engine, and verifies the headline property along the way:
 * every thread count must produce byte-identical stats.
 *
 * Only the compute phase (PE coroutine stepping) parallelizes; PNI
 * issue, the network, and memory are the sequential commit phase, so
 * the speedup ceiling is set by the compute fraction of the cycle
 * (Amdahl) -- the point of recording BENCH_par.json is to track that
 * fraction as later PRs move more work into the compute phase.
 *
 * Usage: par_speedup [output.json]   (default BENCH_par.json)
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "core/machine.h"
#include "pe/task.h"

namespace
{

using namespace ultra;

constexpr std::uint32_t kPes = 1024;
constexpr int kIterations = 150;

struct RunResult
{
    unsigned threads = 1;
    double seconds = 0.0;
    Cycle cycles = 0;
    std::string statsJson;
};

RunResult
runOnce(unsigned threads)
{
    core::MachineConfig cfg = core::MachineConfig::paperTable1();
    cfg.threads = threads;
    core::Machine machine(cfg);
    const Addr counter = machine.allocShared(1, "counter");
    machine.launchAll(kPes, [counter](pe::Pe &pe) -> pe::Task {
        for (int i = 0; i < kIterations; ++i) {
            co_await pe.compute(16);
            co_await pe.fetchAdd(counter, 1);
        }
    });

    const auto start = std::chrono::steady_clock::now();
    const bool finished = machine.run();
    const auto stop = std::chrono::steady_clock::now();
    if (!finished) {
        std::fprintf(stderr, "run with %u threads did not finish\n",
                     threads);
        std::exit(1);
    }
    if (machine.peek(counter) !=
        static_cast<Word>(kPes) * kIterations) {
        std::fprintf(stderr, "wrong fetch-add total with %u threads\n",
                     threads);
        std::exit(1);
    }

    RunResult r;
    r.threads = threads;
    r.seconds = std::chrono::duration<double>(stop - start).count();
    r.cycles = machine.now();
    r.statsJson = machine.statsJson();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_par.json";
    const unsigned host_cores = std::thread::hardware_concurrency();
    std::printf("par_speedup: Table-1 machine, %u PEs x %d "
                "compute+fetch-add iterations, %u host core%s\n\n",
                kPes, kIterations, host_cores,
                host_cores == 1 ? "" : "s");

    std::vector<RunResult> results;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        results.push_back(runOnce(threads));
        const RunResult &r = results.back();
        if (r.statsJson != results.front().statsJson) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: %u-thread stats "
                         "differ from 1-thread stats\n",
                         threads);
            return 1;
        }
        std::printf("  threads=%u: %.2fs (%llu cycles, stats %s)\n",
                    r.threads, r.seconds,
                    static_cast<unsigned long long>(r.cycles),
                    threads == 1 ? "baseline" : "identical");
    }

    TextTable table;
    table.setHeader({"host threads", "wall (s)", "self-speedup"});
    for (const RunResult &r : results) {
        table.addRow({std::to_string(r.threads),
                      TextTable::fmt(r.seconds, 2),
                      TextTable::fmt(results.front().seconds /
                                         r.seconds,
                                     2)});
    }
    std::printf("\n%s", table.render().c_str());

    std::ofstream out(out_path);
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out << "{\n  \"bench\": \"par_speedup\",\n"
        << "  \"config\": \"paperTable1\",\n"
        << "  \"host_cores\": " << host_cores << ",\n"
        << "  \"pes\": " << kPes << ",\n"
        << "  \"iterations\": " << kIterations << ",\n"
        << "  \"cycles\": " << results.front().cycles << ",\n"
        << "  \"deterministic\": true,\n  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        char line[160];
        std::snprintf(line, sizeof line,
                      "    {\"threads\": %u, \"wall_seconds\": %.3f, "
                      "\"self_speedup\": %.3f}%s\n",
                      r.threads, r.seconds,
                      results.front().seconds / r.seconds,
                      i + 1 < results.size() ? "," : "");
        out << line;
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
