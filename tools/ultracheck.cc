/**
 * @file
 * ultracheck -- serialization-principle verifier for the ultra::rt
 * coordination primitives (see src/check/serial.h and DESIGN.md
 * "Verifying correctness").
 *
 * Exhaustively enumerates every interleaving of the paracomputer-step
 * models of fetch-and-add, the appendix's TIR/TDR parallel queue, the
 * readers-writers solution and the sense-reversing barrier on a 2-4 PE
 * paracomputer, checking that each outcome linearizes to some serial
 * order (the section-2.2 serialization principle) and that every
 * reachable state satisfies the algorithm's invariants.
 *
 * Usage:
 *   ultracheck [--suite fa|queue|rw|barrier|depart|all] [--pes N]
 *              [--max-states N] [--no-reduction]
 *              [--random-walks K] [--seed S]
 *              [--demo-bug] [--demo-bug-depart]
 *
 *   --suite S        which primitive(s) to verify (default all)
 *   --pes N          max processes per configuration, 2..4 (default 3)
 *   --max-states N   exhaustive exploration budget (default 2e8)
 *   --no-reduction   disable sleep-set partial-order reduction
 *   --random-walks K after each exhaustive run, also sample K random
 *                    schedules (coverage cross-check; default 0)
 *   --seed S         random-walk seed (default 1)
 *   --demo-bug       run the intentionally broken load-then-store
 *                    counter and show the verifier catching it
 *   --demo-bug-depart  run the departure window with its stage-rank
 *                    barrier removed; the explorer must find two units
 *                    colliding on a stage queue
 *
 * Exit status: 0 when every configuration verifies, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/models.h"
#include "check/serial.h"

namespace
{

using namespace ultra::check;

/** Minimal flag parser: --name value and boolean --name. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                std::fprintf(stderr, "unexpected argument '%s'\n",
                             argv[i]);
                std::exit(2);
            }
            key = key.substr(2);
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                values_[key] = argv[++i];
            } else {
                values_[key] = "";
            }
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    std::string
    getString(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

  private:
    std::map<std::string, std::string> values_;
};

struct RunConfig
{
    ExploreOptions opts;
    std::uint64_t randomWalkCount = 0;
    std::uint64_t seed = 1;
};

/** Verify one model; prints a PASS/FAIL line.  @return pass? */
bool
runModel(const Model &model, const RunConfig &cfg, bool expect_violation)
{
    ExploreResult res = explore(model, cfg.opts);
    bool sampled_ok = true;
    if (cfg.randomWalkCount != 0) {
        const ExploreResult walk =
            randomWalks(model, cfg.randomWalkCount, cfg.seed, cfg.opts);
        sampled_ok = walk.violations.empty();
        res.statesExplored += walk.statesExplored;
        for (const std::string &v : walk.violations)
            res.violations.push_back("(random walk) " + v);
    }

    const bool found = !res.violations.empty() || !sampled_ok;
    const bool pass = expect_violation ? found : (found ? false : true);
    std::printf("%-34s %s  states=%llu schedules=%llu pruned=%llu%s\n",
                model.name().c_str(),
                pass ? (expect_violation ? "CAUGHT" : "PASS") : "FAIL",
                static_cast<unsigned long long>(res.statesExplored),
                static_cast<unsigned long long>(res.schedules),
                static_cast<unsigned long long>(res.sleepPruned),
                res.truncated ? "  (TRUNCATED: raise --max-states)" : "");
    // Truncation (state/depth/violation-cap limits) invalidates a
    // verification pass; a demo run that already found its expected
    // violation merely stopped collecting early.
    if (res.truncated && !(expect_violation && found))
        return false;
    const std::size_t show = expect_violation ? 1 : res.violations.size();
    for (std::size_t i = 0; i < show && i < res.violations.size(); ++i)
        std::printf("    %s %s\n", expect_violation ? "found:" : "VIOLATION:",
                    res.violations[i].c_str());
    return pass;
}

/** Every length-`procs` composition of the two role characters. */
std::vector<std::string>
roleShapes(unsigned procs, char a, char b)
{
    std::vector<std::string> shapes;
    for (unsigned bits = 0; bits < (1u << procs); ++bits) {
        std::string shape;
        for (unsigned p = 0; p < procs; ++p)
            shape.push_back((bits >> p) & 1 ? b : a);
        shapes.push_back(shape);
    }
    return shapes;
}

bool
runFetchAdd(unsigned max_pes, const RunConfig &cfg)
{
    bool ok = true;
    for (unsigned p = 2; p <= max_pes; ++p)
        ok = runModel(*makeFetchAddModel(p), cfg, false) && ok;
    return ok;
}

bool
runQueue(unsigned max_pes, const RunConfig &cfg)
{
    bool ok = true;
    for (unsigned p = 2; p <= max_pes; ++p) {
        for (const std::string &shape : roleShapes(p, 'i', 'd')) {
            for (unsigned capacity : {1u, 2u}) {
                ok = runModel(*makeParallelQueueModel(shape, capacity),
                              cfg, false) &&
                     ok;
            }
        }
    }
    return ok;
}

bool
runReadersWriters(unsigned max_pes, const RunConfig &cfg)
{
    bool ok = true;
    for (unsigned p = 2; p <= max_pes; ++p)
        for (const std::string &shape : roleShapes(p, 'r', 'w'))
            ok = runModel(*makeReadersWritersModel(shape), cfg, false) && ok;
    return ok;
}

bool
runBarrier(unsigned max_pes, const RunConfig &cfg)
{
    bool ok = true;
    for (unsigned p = 2; p <= max_pes; ++p)
        for (unsigned episodes : {1u, 2u})
            ok = runModel(*makeBarrierModel(p, episodes), cfg, false) && ok;
    return ok;
}

bool
runDepart(unsigned max_pes, const RunConfig &cfg)
{
    // Units play the role of processes: the PR-7 receiver-pull
    // departure window with per-unit pull lists, stage-rank barriers
    // and staged frees (see models.h).
    bool ok = true;
    for (unsigned u = 2; u <= max_pes; ++u)
        for (unsigned msgs : {1u, 2u})
            ok = runModel(*makeDepartWindowModel(u, msgs, true), cfg,
                          false) &&
                 ok;
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv, 1);
    if (args.has("help")) {
        std::printf("usage: ultracheck "
                    "[--suite fa|queue|rw|barrier|depart|all]\n"
                    "                  [--pes N] [--max-states N]\n"
                    "                  [--no-reduction] [--random-walks K]\n"
                    "                  [--seed S] [--demo-bug]\n"
                    "                  [--demo-bug-depart]\n");
        return 0;
    }

    const std::string suite = args.getString("suite", "all");
    if (suite != "fa" && suite != "queue" && suite != "rw" &&
        suite != "barrier" && suite != "depart" && suite != "all") {
        std::fprintf(stderr, "unknown --suite '%s'\n", suite.c_str());
        return 2;
    }

    const unsigned max_pes =
        static_cast<unsigned>(args.getInt("pes", 3));
    if (max_pes < 2 || max_pes > 4) {
        std::fprintf(stderr, "--pes must be 2..4 (got %u)\n", max_pes);
        return 2;
    }

    RunConfig cfg;
    cfg.opts.maxStates = args.getInt("max-states", cfg.opts.maxStates);
    cfg.opts.sleepSets = !args.has("no-reduction");
    cfg.randomWalkCount = args.getInt("random-walks", 0);
    cfg.seed = args.getInt("seed", 1);

    if (args.has("demo-bug")) {
        std::printf("demonstration: load-then-store counter "
                    "(NOT serializable)\n");
        const bool caught =
            runModel(*makeBrokenCounter(2), cfg, /*expect_violation=*/true);
        return caught ? 0 : 1;
    }

    if (args.has("demo-bug-depart")) {
        std::printf("demonstration: departure window without its "
                    "stage-rank barrier (NOT safe)\n");
        // Two messages per wire: with one, the eager-pull spin on the
        // empty stage queue happens to serialize the race away; with
        // two, a unit can dequeue message one while its neighbor is
        // still mid-enqueue on message two.
        const bool caught =
            runModel(*makeDepartWindowModel(2, 2, /*stageBarrier=*/false),
                     cfg, /*expect_violation=*/true);
        return caught ? 0 : 1;
    }

    bool ok = true;
    if (suite == "fa" || suite == "all")
        ok = runFetchAdd(max_pes, cfg) && ok;
    if (suite == "queue" || suite == "all")
        ok = runQueue(max_pes, cfg) && ok;
    if (suite == "rw" || suite == "all")
        ok = runReadersWriters(max_pes, cfg) && ok;
    if (suite == "barrier" || suite == "all")
        ok = runBarrier(max_pes, cfg) && ok;
    if (suite == "depart" || suite == "all")
        ok = runDepart(max_pes, cfg) && ok;

    std::printf("%s\n", ok ? "ultracheck: all configurations verified"
                           : "ultracheck: VIOLATIONS FOUND");
    return ok ? 0 : 1;
}
