/**
 * @file
 * ultrasweep -- multi-process parameter-sweep driver.
 *
 * Expands a JSON parameter grid (machine configuration x workload x
 * seeds; schema "sweep.grid.v1", see src/sweep/grid.h) into experiment
 * points, fans the points across a fork-based worker pool sized to the
 * honest host core count, and merges the per-point stats into one
 * sorted-key "sweep.v1" result file.
 *
 * Determinism contract (pinned by tests/sweep_test.cc and the CI
 * sweep-smoke job): each point's embedded stats dump is byte-identical
 * to the same configuration run standalone through
 * `ultrasim net ... --stats-json`, and the merged file is
 * byte-identical at any worker count -- per-point seeds derive from
 * the point index, never from scheduling, and the merge is a pure
 * concatenation in index order.
 *
 * Usage: ultrasweep --grid FILE [options]
 *   --grid FILE       the sweep.grid.v1 parameter grid (required)
 *   --out FILE        merged sweep.v1 output (default sweep.json)
 *   --points-dir DIR  per-point scratch dir (default OUT.points.d)
 *   --workers N       worker processes (default min(points, cores))
 *   --retries N       attempts per point (default 3)
 *   --timeout-s S     per-attempt wall budget, 0 = none (default 0)
 *   --list            print the expanded points and exit
 *   --emit-fig7 FILE  also render BENCH_fig7.json from points tagged
 *                     --fig7-tag (default "fig7")
 *   --emit-hotspot FILE  likewise BENCH_hotspot.json from points
 *                     tagged --hotspot-tag (default "hotspot")
 *
 * Unknown flags and malformed grids are rejected with exit 2 + usage
 * (the ultrasim allowlist convention); a point that fails every
 * attempt exits 1.  ULTRASWEEP_CRASH_POINT=<index> makes that point's
 * first attempt kill itself -- the retry-path test hook.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/stat.h>

#include "obs/registry.h"
#include "sweep/grid.h"
#include "sweep/net_run.h"
#include "sweep/pool.h"

namespace
{

using namespace ultra;

void
usage()
{
    std::fprintf(stderr,
                 "usage: ultrasweep --grid FILE [--out FILE] "
                 "[--points-dir DIR]\n"
                 "                 [--workers N] [--retries N] "
                 "[--timeout-s S] [--list]\n"
                 "                 [--emit-fig7 FILE [--fig7-tag T]]\n"
                 "                 [--emit-hotspot FILE "
                 "[--hotspot-tag T]]\n"
                 "see the comment at the top of tools/ultrasweep.cc\n");
}

/** Minimal flag parser: --name value and boolean --name (the ultrasim
 *  Args shape, with the same exit-2-on-unknown contract). */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                std::fprintf(stderr, "unexpected argument '%s'\n",
                             argv[i]);
                usage();
                std::exit(2);
            }
            key = key.substr(2);
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                values_[key] = argv[++i];
            } else {
                values_[key] = "";
            }
        }
    }

    void
    rejectUnknown(std::initializer_list<const char *> allowed) const
    {
        for (const auto &kv : values_) {
            bool known = false;
            for (const char *name : allowed)
                known = known || kv.first == name;
            if (!known) {
                std::fprintf(stderr,
                             "ultrasweep: unknown flag '--%s'\n",
                             kv.first.c_str());
                usage();
                std::exit(2);
            }
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    std::string
    getString(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

  private:
    std::map<std::string, std::string> values_;
};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return true;
}

std::string
pointPath(const std::string &dir, std::size_t index, const char *kind)
{
    char name[64];
    std::snprintf(name, sizeof name, "point_%05zu.%s", index, kind);
    return dir + "/" + name;
}

/** Run one point in the forked worker: simulate, dump, record. */
int
runPoint(const sweep::Point &point, unsigned attempt,
         const std::string &pointsDir)
{
    // Crash-injection hook for the retry-path test: the named point's
    // first attempt dies the way a real crashed worker would.
    const char *crash = std::getenv("ULTRASWEEP_CRASH_POINT");
    if (crash != nullptr && attempt == 0 &&
        std::strtoull(crash, nullptr, 10) == point.index) {
        ::raise(SIGKILL);
    }
    std::string err;
    const sweep::NetPointSpec spec =
        sweep::specFromParams(point.params, err);
    if (!err.empty()) {
        std::fprintf(stderr, "point %zu: %s\n", point.index,
                     err.c_str());
        return 2;
    }
    sweep::NetExperiment exp(spec);
    exp.run({});
    // The stats file carries exactly the bytes a standalone
    // `ultrasim net --stats-json` run would write for this point.
    const obs::DumpOptions dump{.sortKeys = true, .pretty = false};
    const std::string stats = exp.statsJson(dump);
    if (!writeFile(pointPath(pointsDir, point.index, "stats.json"),
                   stats)) {
        return 1;
    }
    const std::string record =
        sweep::pointRecordJson(point, stats, exp.summary());
    if (!writeFile(pointPath(pointsDir, point.index, "json"), record))
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv, 1);
    args.rejectUnknown({"grid", "out", "points-dir", "workers",
                        "retries", "timeout-s", "list", "emit-fig7",
                        "fig7-tag", "emit-hotspot", "hotspot-tag"});
    const std::string gridPath = args.getString("grid", "");
    if (gridPath.empty()) {
        std::fprintf(stderr, "ultrasweep: --grid FILE is required\n");
        usage();
        return 2;
    }
    std::string gridText;
    if (!readFile(gridPath, gridText)) {
        std::fprintf(stderr, "ultrasweep: cannot read %s\n",
                     gridPath.c_str());
        return 2;
    }
    std::string err;
    const std::vector<sweep::Point> points =
        sweep::expandGridFile(gridText, err);
    if (!err.empty()) {
        std::fprintf(stderr, "ultrasweep: %s: %s\n", gridPath.c_str(),
                     err.c_str());
        usage();
        return 2;
    }

    if (args.has("list")) {
        for (const sweep::Point &pt : points) {
            std::printf("%5zu  %-12s ", pt.index,
                        pt.tag.empty() ? "-" : pt.tag.c_str());
            for (const std::string &a :
                 sweep::argvForParams(pt.params)) {
                std::printf(" %s", a.c_str());
            }
            std::printf("\n");
        }
        return 0;
    }

    const std::string out = args.getString("out", "sweep.json");
    const std::string pointsDir =
        args.getString("points-dir", out + ".points.d");
    ::mkdir(pointsDir.c_str(), 0777);

    sweep::PoolOptions popts;
    const std::size_t defaultWorkers = std::min<std::size_t>(
        points.size(), sweep::detectHostCores());
    popts.workers = static_cast<unsigned>(
        args.getInt("workers", defaultWorkers));
    popts.maxAttempts =
        static_cast<unsigned>(args.getInt("retries", 3));
    popts.timeoutNs = args.getInt("timeout-s", 0) * 1000000000ull;
    popts.backoffNs = 100000000ull; // 100 ms, doubled per retry

    const sweep::PoolOutcome outcome = sweep::runForkPool(
        points.size(),
        [&points, &pointsDir](std::size_t index, unsigned attempt) {
            return runPoint(points[index], attempt, pointsDir);
        },
        popts);
    if (outcome.failed != 0) {
        std::fprintf(stderr,
                     "ultrasweep: %zu of %zu points failed every "
                     "attempt\n",
                     outcome.failed, points.size());
        return 1;
    }

    std::vector<std::string> records;
    records.reserve(points.size());
    for (const sweep::Point &pt : points) {
        std::string rec;
        if (!readFile(pointPath(pointsDir, pt.index, "json"), rec)) {
            std::fprintf(stderr,
                         "ultrasweep: missing record for point %zu\n",
                         pt.index);
            return 1;
        }
        records.push_back(std::move(rec));
    }
    const std::string merged = sweep::mergeSweepJson(records);
    if (!writeFile(out, merged)) {
        std::fprintf(stderr, "ultrasweep: cannot write %s\n",
                     out.c_str());
        return 1;
    }

    if (args.has("emit-fig7")) {
        const std::string rendered = sweep::emitFig7Json(
            merged, args.getString("fig7-tag", "fig7"), err);
        if (!err.empty() ||
            !writeFile(args.getString("emit-fig7", ""), rendered)) {
            std::fprintf(stderr, "ultrasweep: --emit-fig7: %s\n",
                         err.empty() ? "cannot write file"
                                     : err.c_str());
            return 1;
        }
    }
    if (args.has("emit-hotspot")) {
        const std::string rendered = sweep::emitHotspotJson(
            merged, args.getString("hotspot-tag", "hotspot"), err);
        if (!err.empty() ||
            !writeFile(args.getString("emit-hotspot", ""), rendered)) {
            std::fprintf(stderr, "ultrasweep: --emit-hotspot: %s\n",
                         err.empty() ? "cannot write file"
                                     : err.c_str());
            return 1;
        }
    }

    std::printf("ultrasweep: %zu points, %u workers, %zu retried, "
                "merged -> %s\n",
                points.size(), popts.workers, outcome.retried,
                out.c_str());
    return 0;
}
