#!/usr/bin/env bash
# clang-tidy regression gate: run run-clang-tidy over src/ and tools/,
# normalize every diagnostic to a stable "<relative-file> [check]" key,
# and fail on any key not present in the committed baseline
# (tools/clang-tidy.baseline).  Line numbers are deliberately dropped
# from the key so unrelated edits above a tolerated diagnostic do not
# churn the baseline.
#
# Usage: tools/clang_tidy_gate.sh <build-dir-with-compile-commands>
#
# Exit status: 0 = no diagnostics beyond the baseline, 1 = regressions,
# 2 = tooling error.  The raw clang-tidy output is preserved at
# <build-dir>/clang-tidy.log for upload as a CI artifact.
set -u -o pipefail

build_dir="${1:?usage: tools/clang_tidy_gate.sh <build-dir>}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="$repo_root/tools/clang-tidy.baseline"
log="$build_dir/clang-tidy.log"

if ! command -v run-clang-tidy >/dev/null 2>&1; then
    echo "clang_tidy_gate: run-clang-tidy not found" >&2
    exit 2
fi
[ -f "$build_dir/compile_commands.json" ] || {
    echo "clang_tidy_gate: no compile_commands.json in $build_dir" >&2
    exit 2
}

# run-clang-tidy's own exit status only reflects *errors*; the gate
# below judges warnings too, so the run itself is allowed to "fail".
run-clang-tidy -p "$build_dir" -quiet \
    "$repo_root/src/.*\.cc$" "$repo_root/tools/.*\.cc$" \
    >"$log" 2>&1 || true

# "path:line:col: warning: ... [check]" -> "relative-path [check]".
current="$(
    sed -n -E 's|^([^: ]+):[0-9]+:[0-9]+: (warning\|error): .* (\[[^]]+\])$|\1 \3|p' "$log" |
        sed "s|^$repo_root/||" | sort -u
)"
allowed="$(sed -e 's/#.*//' -e '/^[[:space:]]*$/d' "$baseline" | sort -u)"

regressions="$(comm -23 <(printf '%s\n' "$current" | sed '/^$/d') \
                        <(printf '%s\n' "$allowed"))"
stale="$(comm -13 <(printf '%s\n' "$current" | sed '/^$/d') \
                  <(printf '%s\n' "$allowed"))"

if [ -n "$stale" ]; then
    echo "clang_tidy_gate: stale baseline entries (clean these up):"
    printf '  %s\n' $stale
fi
if [ -n "$regressions" ]; then
    echo "clang_tidy_gate: NEW diagnostics not in the baseline:"
    printf '%s\n' "$regressions" | sed 's/^/  /'
    echo "clang_tidy_gate: fix them, or (with review) record them in" \
         "tools/clang-tidy.baseline"
    exit 1
fi
echo "clang_tidy_gate: clean against baseline"
