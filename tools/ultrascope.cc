/**
 * @file
 * ultrascope -- offline analyzer for ultrasim trace-event files.
 *
 * Reads the Chrome trace-event JSON written by `ultrasim ... \
 * --trace-events FILE` (the same file Perfetto loads) and answers
 * "where did my cycles go?" without a GUI:
 *
 *   - top congested switch lanes: per track/lane sums of link-hold
 *     ("X") durations, busiest first;
 *   - combine trees: every "combine" instant carries the absorbed
 *     message id and the id of the surviving request it folded into
 *     (args.id / args.link), so the absorption forest can be
 *     reconstructed and its fan-in distribution reported;
 *   - slowest request paths: inject -> reply latency per message id,
 *     worst offenders first, with combined-away requests resolved
 *     through their decombine events.
 *
 * Usage: ultrascope TRACE.json [--top N] [--slowest N]
 *
 * Profiler mode: `ultrascope --prof PROF.json` renders the wall-clock
 * self-profile written by `ultrasim ... --prof-json` as "where did my
 * wall-clock go?" -- the Amdahl loss attribution (serial fraction,
 * barrier wait, imbalance, overhead), the phase-time table, per-thread
 * work/wait balance, and the busiest (copy, stage, column-group)
 * network units.
 *
 * Sweep mode: `ultrascope --sweep SWEEP.json` renders an `ultrasweep`
 * merged result (schema "sweep.v1") as a per-point table -- config,
 * delivered traffic, transit means and model drift.  Exit 2 on
 * anything that is not a sweep.v1 document.
 *
 * Live mode: `ultrascope --attach ADDR` connects to a running
 * `ultrasim ... --inspect ADDR` (see DESIGN.md "Live inspection").
 * With no further arguments it resumes the run and watches it: a
 * status line every --watch SEC seconds (default 2) until the run
 * finishes, optionally snapshotting the congestion heatmap to
 * PREFIX<n>.csv with --heatmap-out PREFIX.  Scripted sessions chain
 * ordered actions instead:
 *
 *   --cmd JSON-OR-WORD   send one request ('resume' expands to
 *                        {"cmd":"resume"}) and print its reply
 *   --wait-event NAME    print protocol traffic until the named
 *                        event ("watchpoint", "paused", "finished")
 *                        arrives
 *   --timeout SEC        per-wait receive timeout (default 30)
 *
 * Exit codes: 0 ok, 2 unreadable trace / usage / connect failure,
 * 1 a scripted command got an error reply, 3 timeout waiting for the
 * server.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_lite.h"
#include "inspect/server.h"

namespace
{

struct LaneKey
{
    std::string track;
    std::uint64_t tid = 0;

    bool
    operator<(const LaneKey &o) const
    {
        return track != o.track ? track < o.track : tid < o.tid;
    }
};

struct LaneLoad
{
    std::uint64_t busyCycles = 0;
    std::uint64_t events = 0;
    std::uint64_t combines = 0;
};

struct RequestPath
{
    std::uint64_t id = 0;
    std::uint64_t injectAt = 0;
    std::uint64_t replyAt = 0;
    bool injected = false;
    bool replied = false;
    bool combined = false; //!< absorbed into another request
};

struct Analysis
{
    std::map<std::string, std::string> trackNames; //!< pid -> name
    std::map<LaneKey, LaneLoad> lanes;
    std::map<std::uint64_t, RequestPath> requests;
    /** combine edges: absorbed id -> surviving id. */
    std::map<std::uint64_t, std::uint64_t> absorbedInto;
    /** decombine: spawned reply id -> original absorbed request id. */
    std::map<std::uint64_t, std::uint64_t> spawnOf;
    std::uint64_t events = 0;
};

std::uint64_t
asU64(const jsonlite::JsonValue &v)
{
    return v.isNumber() ? static_cast<std::uint64_t>(v.number) : 0;
}

bool
analyze(const jsonlite::JsonValue &doc, Analysis &out)
{
    if (!doc.isObject() || !doc.has("traceEvents") ||
        !doc["traceEvents"].isArray()) {
        return false;
    }
    for (const jsonlite::JsonValue &ev : doc["traceEvents"].array) {
        if (!ev.isObject() || !ev.has("ph"))
            continue;
        ++out.events;
        const std::string ph = ev["ph"].string;
        const std::string name = ev.has("name") ? ev["name"].string : "";
        const std::string pid =
            ev.has("pid") ? std::to_string(asU64(ev["pid"])) : "0";
        if (ph == "M") {
            if (name == "process_name" && ev.has("args"))
                out.trackNames[pid] = ev["args"]["name"].string;
            continue;
        }
        const std::uint64_t ts = asU64(ev["ts"]);
        std::uint64_t id = 0;
        std::uint64_t link = 0;
        if (ev.has("args")) {
            const jsonlite::JsonValue &args = ev["args"];
            if (args.isObject()) {
                if (args.has("id"))
                    id = asU64(args["id"]);
                if (args.has("link"))
                    link = asU64(args["link"]);
            }
        }
        if (ph == "X") {
            LaneKey key{pid, asU64(ev["tid"])};
            LaneLoad &lane = out.lanes[key];
            lane.busyCycles += asU64(ev["dur"]);
            ++lane.events;
            continue;
        }
        if (ph != "i")
            continue;
        if (name == "inject" && id != 0) {
            RequestPath &req = out.requests[id];
            req.id = id;
            req.injectAt = ts;
            req.injected = true;
        } else if (name == "reply" && id != 0) {
            RequestPath &req = out.requests[id];
            req.id = id;
            req.replyAt = ts;
            req.replied = true;
        } else if (name == "combine" && id != 0) {
            out.absorbedInto[id] = link;
            out.requests[id].combined = true;
            ++out.lanes[LaneKey{pid, asU64(ev["tid"])}].combines;
        } else if (name == "decombine" && id != 0) {
            out.spawnOf[id] = link;
        }
    }
    return true;
}

/** Follow absorbed -> survivor edges to the request that reached the
 *  memory (bounded: the forest is acyclic by construction). */
std::uint64_t
rootOf(const Analysis &a, std::uint64_t id)
{
    for (std::size_t hop = 0; hop < 64; ++hop) {
        auto it = a.absorbedInto.find(id);
        if (it == a.absorbedInto.end() || it->second == 0)
            return id;
        id = it->second;
    }
    return id;
}

void
reportLanes(const Analysis &a, std::size_t top)
{
    std::vector<std::pair<LaneKey, LaneLoad>> order(a.lanes.begin(),
                                                    a.lanes.end());
    std::sort(order.begin(), order.end(), [](const auto &x, const auto &y) {
        return x.second.busyCycles > y.second.busyCycles;
    });
    std::printf("top congested lanes (link-hold cycles):\n");
    std::printf("  %-28s %6s %12s %10s %9s\n", "track", "lane", "busy",
                "messages", "combines");
    for (std::size_t i = 0; i < order.size() && i < top; ++i) {
        const auto &[key, lane] = order[i];
        auto named = a.trackNames.find(key.track);
        const std::string &track =
            named != a.trackNames.end() ? named->second : key.track;
        std::printf("  %-28s %6llu %12llu %10llu %9llu\n", track.c_str(),
                    static_cast<unsigned long long>(key.tid),
                    static_cast<unsigned long long>(lane.busyCycles),
                    static_cast<unsigned long long>(lane.events),
                    static_cast<unsigned long long>(lane.combines));
    }
}

void
reportCombining(const Analysis &a)
{
    if (a.absorbedInto.empty()) {
        std::printf("\nno combines in this trace\n");
        return;
    }
    // Fan-in per surviving root = 1 (itself) + absorbed descendants.
    std::map<std::uint64_t, std::uint64_t> fanIn;
    for (const auto &[absorbed, survivor] : a.absorbedInto)
        ++fanIn[rootOf(a, survivor)];
    std::map<std::uint64_t, std::uint64_t> dist; // fan-in -> trees
    std::uint64_t deepest = 0;
    std::uint64_t deepest_id = 0;
    for (const auto &[root, absorbed] : fanIn) {
        ++dist[absorbed + 1];
        if (absorbed > deepest) {
            deepest = absorbed;
            deepest_id = root;
        }
    }
    std::printf("\ncombine forest: %zu requests absorbed into %zu "
                "trees\n",
                a.absorbedInto.size(), fanIn.size());
    for (const auto &[width, trees] : dist) {
        std::printf("  fan-in %2llu: %llu tree%s\n",
                    static_cast<unsigned long long>(width),
                    static_cast<unsigned long long>(trees),
                    trees == 1 ? "" : "s");
    }
    std::printf("  widest tree: %llu requests served by message %llu\n",
                static_cast<unsigned long long>(deepest + 1),
                static_cast<unsigned long long>(deepest_id));
}

void
reportSlowest(const Analysis &a, std::size_t top)
{
    std::vector<const RequestPath *> done;
    for (const auto &[id, req] : a.requests) {
        if (req.injected && req.replied && req.replyAt >= req.injectAt)
            done.push_back(&req);
    }
    if (done.empty()) {
        std::printf("\nno completed inject->reply paths in this trace\n");
        return;
    }
    std::sort(done.begin(), done.end(),
              [](const RequestPath *x, const RequestPath *y) {
                  return x->replyAt - x->injectAt >
                         y->replyAt - y->injectAt;
              });
    std::printf("\nslowest request paths (%zu completed):\n",
                done.size());
    std::printf("  %12s %10s %8s %9s  %s\n", "message", "inject",
                "reply", "cycles", "notes");
    for (std::size_t i = 0; i < done.size() && i < top; ++i) {
        const RequestPath &req = *done[i];
        std::string notes;
        if (req.combined) {
            notes = "absorbed into " +
                    std::to_string(rootOf(a, req.id));
        }
        std::printf("  %12llu %10llu %8llu %9llu  %s\n",
                    static_cast<unsigned long long>(req.id),
                    static_cast<unsigned long long>(req.injectAt),
                    static_cast<unsigned long long>(req.replyAt),
                    static_cast<unsigned long long>(req.replyAt -
                                                    req.injectAt),
                    notes.c_str());
    }
}

// ------------------------------------------------------------------
// Profiler-report mode (--prof)
// ------------------------------------------------------------------

double
numAt(const jsonlite::JsonValue &obj, const std::string &key)
{
    return obj.has(key) && obj[key].isNumber() ? obj[key].number : 0.0;
}

/** Render an `ultrasim --prof-json` report ("where did my wall-clock
 *  go?"): loss attribution, phase table, per-thread balance, busiest
 *  units.  Exit 2 when the file is not an ultra.prof report. */
int
profMain(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "ultrascope: cannot read %s\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    jsonlite::JsonValue doc;
    try {
        doc = jsonlite::parse(buf.str());
    } catch (const std::exception &err) {
        std::fprintf(stderr, "ultrascope: parse error in %s: %s\n",
                     path.c_str(), err.what());
        return 2;
    }
    if (!doc.isObject() || !doc.has("schema") ||
        !doc["schema"].isString() ||
        doc["schema"].string.rfind("ultra.prof.", 0) != 0) {
        std::fprintf(stderr,
                     "ultrascope: %s is not an ultra.prof report\n",
                     path.c_str());
        return 2;
    }

    const double elapsed = numAt(doc, "elapsed_seconds");
    const double cycles = numAt(doc, "cycles");
    const auto threads =
        static_cast<unsigned long long>(numAt(doc, "threads"));
    std::printf("%s: %s, %llu threads, %.0f cycles in %.3f s "
                "(%.0f cycles/s)\n",
                path.c_str(), doc["schema"].string.c_str(), threads,
                cycles, elapsed,
                elapsed > 0.0 ? cycles / elapsed : 0.0);

    if (doc.has("attribution") && doc["attribution"].isObject()) {
        const jsonlite::JsonValue &at = doc["attribution"];
        std::printf("\nspeedup-loss attribution (fractions of "
                    "elapsed wall):\n");
        std::printf("  serial phases      %6.1f%%  (%.3f s)\n",
                    100.0 * numAt(at, "serial_fraction"),
                    numAt(at, "serial_seconds"));
        std::printf("  barrier wait       %6.1f%%  (%.3f s summed "
                    "over threads)\n",
                    100.0 * numAt(at, "barrier_wait_fraction"),
                    numAt(at, "barrier_wait_seconds"));
        std::printf("  ... stage barriers %6.1f%%  (%.3f s, part of "
                    "barrier wait)\n",
                    100.0 * numAt(at, "stage_wait_fraction"),
                    numAt(at, "stage_wait_seconds"));
        std::printf("  shard imbalance    %6.1f%%  (max-mean work "
                    "per episode)\n",
                    100.0 * numAt(at, "imbalance_fraction"));
        std::printf("  unattributed       %6.1f%%  (timer coverage "
                    "%.1f%%)\n",
                    100.0 * numAt(at, "overhead_fraction"),
                    100.0 * numAt(at, "coverage"));
    }

    if (doc.has("phases") && doc["phases"].isObject()) {
        std::vector<std::pair<std::string, const jsonlite::JsonValue *>>
            order;
        for (const auto &[name, val] : doc["phases"].object)
            order.emplace_back(name, &val);
        std::sort(order.begin(), order.end(),
                  [](const auto &x, const auto &y) {
                      return numAt(*x.second, "seconds") >
                             numAt(*y.second, "seconds");
                  });
        std::printf("\nphase times (wall seconds, busiest first):\n");
        std::printf("  %-16s %10s %8s %12s\n", "phase", "seconds",
                    "share", "calls");
        for (const auto &[name, val] : order) {
            const double s = numAt(*val, "seconds");
            if (s <= 0.0 && numAt(*val, "calls") == 0.0)
                continue;
            std::printf("  %-16s %10.4f %7.1f%% %12.0f\n",
                        name.c_str(), s,
                        elapsed > 0.0 ? 100.0 * s / elapsed : 0.0,
                        numAt(*val, "calls"));
        }
    }

    if (doc.has("thread_slots") && doc["thread_slots"].isArray()) {
        std::printf("\nper-thread accounting (seconds):\n");
        std::printf("  %5s %10s %12s %12s\n", "shard", "work",
                    "barrier_wait", "stage_wait");
        for (const jsonlite::JsonValue &slot :
             doc["thread_slots"].array) {
            std::printf("  %5.0f %10.4f %12.4f %12.4f\n",
                        numAt(slot, "shard"),
                        numAt(slot, "work_seconds"),
                        numAt(slot, "barrier_wait_seconds"),
                        numAt(slot, "stage_wait_seconds"));
        }
    }

    if (doc.has("units") && doc["units"].isArray() &&
        !doc["units"].array.empty()) {
        std::vector<const jsonlite::JsonValue *> order;
        double total = 0.0;
        double busiest = 0.0;
        for (const jsonlite::JsonValue &u : doc["units"].array) {
            order.push_back(&u);
            const double m = numAt(u, "messages");
            total += m;
            busiest = std::max(busiest, m);
        }
        std::sort(order.begin(), order.end(),
                  [](const jsonlite::JsonValue *x,
                     const jsonlite::JsonValue *y) {
                      return numAt(*x, "messages") >
                             numAt(*y, "messages");
                  });
        const double mean =
            total / static_cast<double>(order.size());
        std::printf("\nbusiest units (arrival messages; %zu units, "
                    "max/mean = %.2f):\n",
                    order.size(), mean > 0.0 ? busiest / mean : 0.0);
        std::printf("  %5s %5s %6s %6s %10s %9s %9s %10s\n", "unit",
                    "copy", "stage", "group", "messages", "allocs",
                    "slab_cap", "staging_hw");
        for (std::size_t i = 0; i < order.size() && i < 10; ++i) {
            const jsonlite::JsonValue &u = *order[i];
            std::printf("  %5.0f %5.0f %6.0f %6.0f %10.0f %9.0f "
                        "%9.0f %10.0f\n",
                        numAt(u, "unit"), numAt(u, "copy"),
                        numAt(u, "stage"), numAt(u, "group"),
                        numAt(u, "messages"), numAt(u, "allocs"),
                        numAt(u, "capacity"),
                        numAt(u, "staging_high_water"));
        }
    }
    return 0;
}

// ------------------------------------------------------------------
// Merged-sweep mode (--sweep)
// ------------------------------------------------------------------

/** Render an `ultrasweep` merged result (schema "sweep.v1") as a
 *  per-point table.  Exit 2 when the file is not a sweep document. */
int
sweepMain(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "ultrascope: cannot read %s\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    jsonlite::JsonValue doc;
    try {
        doc = jsonlite::parse(buf.str());
    } catch (const std::exception &err) {
        std::fprintf(stderr, "ultrascope: parse error in %s: %s\n",
                     path.c_str(), err.what());
        return 2;
    }
    if (!doc.isObject() || !doc.has("schema") ||
        !doc["schema"].isString() || doc["schema"].string != "sweep.v1" ||
        !doc.has("points") || !doc["points"].isArray()) {
        std::fprintf(stderr,
                     "ultrascope: %s is not a sweep.v1 result\n",
                     path.c_str());
        return 2;
    }
    const std::vector<jsonlite::JsonValue> &pts = doc["points"].array;
    std::printf("%s: %zu points\n", path.c_str(), pts.size());
    std::printf("  %5s %-12s %6s %3s %3s %3s %6s %5s %10s %8s %8s "
                "%8s\n",
                "index", "tag", "ports", "k", "m", "d", "rate", "hot",
                "delivered", "one-way", "rt-mean", "drift%");
    for (const jsonlite::JsonValue &pt : pts) {
        if (!pt.isObject() || !pt.has("params") || !pt.has("summary"))
            continue;
        const jsonlite::JsonValue &p = pt["params"];
        const jsonlite::JsonValue &s = pt["summary"];
        const std::string tag =
            pt.has("tag") && pt["tag"].isString() && !pt["tag"].string.empty()
                ? pt["tag"].string
                : "-";
        std::printf("  %5.0f %-12s %6.0f %3.0f %3.0f %3.0f %6.3f "
                    "%5.2f %10.0f %8.2f %8.2f",
                    numAt(pt, "index"), tag.c_str(), numAt(p, "ports"),
                    numAt(p, "k"), numAt(p, "m"),
                    p.has("d") ? numAt(p, "d") : 1.0,
                    numAt(p, "rate"), numAt(p, "hot"),
                    numAt(s, "delivered"), numAt(s, "one_way_mean"),
                    numAt(s, "round_trip_mean"));
        if (numAt(s, "model_applicable") != 0.0)
            std::printf(" %8.1f", 100.0 * numAt(s, "drift"));
        else
            std::printf(" %8s", "-");
        std::printf("\n");
    }
    return 0;
}

// ------------------------------------------------------------------
// Live mode (--attach)
// ------------------------------------------------------------------

void
attachUsage()
{
    std::fprintf(stderr,
                 "usage: ultrascope --attach ADDR [--cmd JSON]... "
                 "[--wait-event NAME]...\n"
                 "                  [--watch SEC] [--heatmap-out "
                 "PREFIX] [--timeout SEC]\n");
}

/** One ordered step of a scripted session. */
struct AttachAction
{
    bool waitEvent = false; //!< else: send the command in text
    std::string text;
};

/** Print one received protocol line and classify it. */
struct LineInfo
{
    bool isEvent = false;
    std::string event;
    bool isReply = false;
    bool ok = false;
    jsonlite::JsonValue value;
};

LineInfo
classifyLine(const std::string &line)
{
    LineInfo info;
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
    try {
        info.value = jsonlite::parse(line);
    } catch (const std::exception &) {
        return info; // not JSON: just echoed
    }
    if (!info.value.isObject())
        return info;
    if (info.value.has("event") && info.value["event"].isString()) {
        info.isEvent = true;
        info.event = info.value["event"].string;
    } else if (info.value.has("ok")) {
        info.isReply = true;
        info.ok = info.value["ok"].boolean;
    }
    return info;
}

/**
 * Receive until a reply ({"ok":...}) arrives, echoing everything.
 * @return 0 ok reply, 1 error reply, 3 timeout or server gone.
 */
int
awaitReply(ultra::inspect::InspectClient &client, int timeout_ms,
           bool &finished, jsonlite::JsonValue *reply = nullptr)
{
    std::string line;
    for (;;) {
        const auto got = client.recvLineEx(line, timeout_ms);
        if (got != ultra::inspect::InspectClient::Recv::Line) {
            std::fprintf(stderr, "ultrascope: %s waiting for reply\n",
                         got == ultra::inspect::InspectClient::Recv::
                                    Timeout
                             ? "timed out"
                             : "server closed the connection");
            return 3;
        }
        const LineInfo info = classifyLine(line);
        if (info.isEvent) {
            finished = finished || info.event == "finished";
            continue;
        }
        if (info.isReply) {
            if (reply != nullptr)
                *reply = info.value;
            return info.ok ? 0 : 1;
        }
    }
}

/** {"cmd":"resume"} from the bare word, full JSON passed through. */
std::string
commandLineFor(const std::string &text)
{
    if (!text.empty() && text[0] == '{')
        return text;
    return "{\"cmd\": \"" + text + "\"}";
}

int
attachMain(int argc, char **argv)
{
    std::string addr;
    std::vector<AttachAction> actions;
    bool watch = false;
    double watch_sec = 2.0;
    std::string heatmap_prefix;
    int timeout_ms = 30'000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                attachUsage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--attach") {
            addr = value();
        } else if (arg == "--cmd") {
            actions.push_back({false, value()});
        } else if (arg == "--wait-event") {
            actions.push_back({true, value()});
        } else if (arg == "--watch") {
            watch = true;
            watch_sec = std::strtod(value().c_str(), nullptr);
            if (watch_sec <= 0)
                watch_sec = 2.0;
        } else if (arg == "--heatmap-out") {
            heatmap_prefix = value();
        } else if (arg == "--timeout") {
            timeout_ms = static_cast<int>(
                1000.0 * std::strtod(value().c_str(), nullptr));
        } else {
            attachUsage();
            return 2;
        }
    }
    if (addr.empty()) {
        attachUsage();
        return 2;
    }
    if (actions.empty())
        watch = true; // bare --attach ADDR: watch the run

    std::string err;
    auto client = ultra::inspect::InspectClient::connect(addr, err);
    if (client == nullptr) {
        std::fprintf(stderr, "ultrascope: cannot connect to %s: %s\n",
                     addr.c_str(), err.c_str());
        return 2;
    }

    bool finished = false;
    int worst = 0;

    // Scripted actions first, in order.
    for (const AttachAction &action : actions) {
        if (action.waitEvent) {
            std::string line;
            for (;;) {
                const auto got = client->recvLineEx(line, timeout_ms);
                if (got !=
                    ultra::inspect::InspectClient::Recv::Line) {
                    std::fprintf(stderr,
                                 "ultrascope: no '%s' event (%s)\n",
                                 action.text.c_str(),
                                 got == ultra::inspect::InspectClient::
                                            Recv::Timeout
                                     ? "timeout"
                                     : "server gone");
                    return 3;
                }
                const LineInfo info = classifyLine(line);
                if (info.isEvent) {
                    finished = finished || info.event == "finished";
                    if (info.event == action.text)
                        break;
                }
            }
        } else {
            if (!client->sendLine(commandLineFor(action.text))) {
                std::fprintf(stderr, "ultrascope: server gone\n");
                return 3;
            }
            const int rc = awaitReply(*client, timeout_ms, finished);
            if (rc == 3)
                return 3;
            worst = std::max(worst, rc);
        }
    }
    if (!watch)
        return worst;

    // Watch loop: resume (start-paused runs), then a status poll every
    // watch_sec, absorbing async events, until the finished event.
    client->sendLine("{\"cmd\": \"resume\"}");
    // Tolerate an error reply: the run may already be finished.
    if (awaitReply(*client, timeout_ms, finished) == 3)
        return 3;
    const int interval_ms =
        std::max(1, static_cast<int>(watch_sec * 1000.0));
    unsigned snapshot = 0;
    bool heatmap_ok = !heatmap_prefix.empty();
    while (!finished) {
        std::string line;
        const auto got = client->recvLineEx(line, interval_ms);
        if (got == ultra::inspect::InspectClient::Recv::Line) {
            const LineInfo info = classifyLine(line);
            if (info.isEvent && info.event == "finished")
                finished = true;
            continue;
        }
        if (got == ultra::inspect::InspectClient::Recv::Closed) {
            std::fprintf(stderr,
                         "ultrascope: server closed the connection\n");
            return finished ? 0 : 3;
        }
        client->sendLine("{\"cmd\": \"status\"}");
        if (awaitReply(*client, timeout_ms, finished) == 3)
            return 3;
        if (heatmap_ok && !finished) {
            client->sendLine("{\"cmd\": \"heatmap\"}");
            jsonlite::JsonValue reply;
            const int rc =
                awaitReply(*client, timeout_ms, finished, &reply);
            if (rc == 3)
                return 3;
            if (rc != 0 || !reply.has("csv")) {
                heatmap_ok = false; // e.g. no observatory attached
            } else {
                const std::string path = heatmap_prefix +
                                         std::to_string(snapshot++) +
                                         ".csv";
                std::ofstream out(path, std::ios::binary);
                out << reply["csv"].string;
                std::fprintf(stderr, "ultrascope: wrote %s\n",
                             path.c_str());
            }
        }
    }
    client->sendLine("{\"cmd\": \"detach\"}");
    awaitReply(*client, timeout_ms, finished);
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--attach")
            return attachMain(argc, argv);
        if (std::string(argv[i]) == "--prof") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "usage: ultrascope --prof PROF.json\n");
                return 2;
            }
            return profMain(argv[i + 1]);
        }
        if (std::string(argv[i]) == "--sweep") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "usage: ultrascope --sweep SWEEP.json\n");
                return 2;
            }
            return sweepMain(argv[i + 1]);
        }
    }
    std::string path;
    std::size_t top = 10;
    std::size_t slowest = 10;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--slowest" && i + 1 < argc) {
            slowest = std::strtoull(argv[++i], nullptr, 10);
        } else if (path.empty() && arg.rfind("--", 0) != 0) {
            path = arg;
        } else {
            std::fprintf(stderr, "usage: ultrascope TRACE.json "
                                 "[--top N] [--slowest N]\n");
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: ultrascope TRACE.json [--top N] "
                     "[--slowest N]\n");
        return 2;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "ultrascope: cannot read %s\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Analysis analysis;
    try {
        const jsonlite::JsonValue doc = jsonlite::parse(buf.str());
        if (!analyze(doc, analysis)) {
            std::fprintf(stderr,
                         "ultrascope: %s is not a trace-event file "
                         "(no traceEvents array)\n",
                         path.c_str());
            return 2;
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "ultrascope: parse error in %s: %s\n",
                     path.c_str(), err.what());
        return 2;
    }

    std::printf("%s: %llu events, %zu lanes, %zu requests seen\n",
                path.c_str(),
                static_cast<unsigned long long>(analysis.events),
                analysis.lanes.size(), analysis.requests.size());
    reportLanes(analysis, top);
    reportCombining(analysis);
    reportSlowest(analysis, slowest);
    return 0;
}
