/**
 * @file
 * ultralint -- static phase-discipline and determinism analyzer for the
 * compute/commit contract (DESIGN.md "Static phase-discipline
 * verification").
 *
 * The runtime PhaseChecker (src/check/phase_check.h) verifies the
 * contract only on paths that execute under -DULTRA_CHECK=ON, and only
 * where an annotation was remembered.  ultralint closes the gap
 * statically: it scans the simulator sources (no compiler headers
 * needed -- a token-level C++ scanner keyed to this repo's idioms) and
 * enforces three rule families:
 *
 *   annotation coverage
 *     UL-COV-001  every public mutating method of a net-domain
 *                 component (OutQueue, WaitBuffer, MessagePool,
 *                 SystolicQueue, ...) carries an ULTRA_CHECK annotation
 *     UL-COV-002  an annotation's owner argument is a bound owner
 *                 field, never a literal
 *     UL-COV-003  files using ULTRA_CHECK annotations include
 *                 "check/phase_check.h" directly
 *
 *   phase-discipline reachability
 *     UL-PHASE-001  a conservative call graph from the compute-phase
 *                   entry points (network arrival units, the departure
 *                   window, PE stepping) must not reach a
 *                   COMMIT_ONLY-annotated mutator
 *
 *   determinism lint
 *     UL-DET-001  iteration over std::unordered_{map,set}
 *     UL-DET-002  rand()/time()/std::random_device and wall clocks
 *                 outside common/rng
 *     UL-DET-003  thread_local state in simulation code
 *     UL-DET-004  sorting pointers by address
 *     UL-DET-005  std::sort with a single-key comparator (tie order
 *                 falls to the library)
 *     UL-DET-006  unordered floating-point reductions
 *     UL-DET-007  raw std::chrono / clock_gettime wall-clock reads
 *                 outside src/prof, src/obs and bench (host timing
 *                 belongs behind prof::Profiler::nowNs())
 *
 * Deliberate exceptions live in an allowlist file (--allowlist; one
 * `RULE key reason` per line) or as an inline
 * `// ultralint: allow(RULE): reason` comment on (or directly above)
 * the flagged line.
 *
 * Usage:
 *   ultralint [--compdb build/compile_commands.json | --root DIR |
 *              FILE...] [--allowlist FILE] [--report FILE]
 *
 * Diagnostics are deterministic (file:line sorted, byte-stable).
 * Exit status: 0 clean, 1 diagnostics emitted, 2 usage or I/O error.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Rule tables (the repo-specific knowledge lives here).
// ---------------------------------------------------------------------

/** Classes whose public mutating methods must carry an annotation. */
const char *const kNetDomainClasses[] = {
    "OutQueue", "WaitBuffer", "MessagePool", "Message", "SystolicQueue",
};

/** The annotation macros accepted by UL-COV-001. */
const char *const kAnnotationMacros[] = {
    "ULTRA_CHECK_NET_MUTATE",    "ULTRA_CHECK_NET_DEQUEUE",
    "ULTRA_CHECK_COMPUTE_WRITE", "ULTRA_CHECK_COMPUTE_READ",
    "ULTRA_CHECK_COMMIT_ONLY",
};

/** Compute-phase entry points for UL-PHASE-001 (Cls::method).  Any
 *  function containing a COMPUTE_WRITE/COMPUTE_READ annotation is an
 *  entry as well. */
const char *const kComputeEntries[] = {
    "Network::arrivalPhaseUnit", // parallel arrival phase, per unit
    "Network::execPulls",        // departure-window stage ranks
    "Pe::step",                  // PE compute phase
};

/** Nondeterminism sources for UL-DET-002 (callable identifiers). */
const char *const kRawEntropy[] = {
    "rand",         "srand",        "random_device",
    "system_clock", "high_resolution_clock",
};

/** Files exempt from UL-DET-002: the seeded RNG wrapper itself. */
const char *const kEntropyHome = "common/rng";

/** Wall-clock sources for UL-DET-007 (identifier tokens).  `#include
 *  <chrono>` is a preprocessor line and thus invisible to the lexer,
 *  but any *use* carries the `chrono` namespace token.  system_clock /
 *  high_resolution_clock already fall under UL-DET-002 (they are
 *  entropy-grade, wrong even in profiling code). */
const char *const kWallClock[] = {
    "chrono", "steady_clock", "clock_gettime", "gettimeofday",
};

/** Path fragments where host timing is sanctioned (UL-DET-007): the
 *  profiler itself, observability writers, and benchmark harnesses. */
const char *const kWallClockHomes[] = {
    "src/prof/", "src/obs/", "bench/",
};

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class TokKind : std::uint8_t { Ident, Punct, Num, Str };

struct Tok
{
    TokKind kind;
    std::string text;
    int line;
};

struct SourceFile
{
    std::string path;    //!< as diagnosed (relative when possible)
    std::vector<Tok> toks;
    std::vector<std::string> rawLines;
    std::map<int, std::string> comments; //!< line -> comment text
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Tokenize C++ source.  Comments are recorded per line (for inline
 *  allow markers); preprocessor directives are skipped whole (macro
 *  *definitions* must not look like uses). */
void
lex(const std::string &text, SourceFile &out)
{
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = text.size();
    bool at_line_start = true;

    auto record_comment = [&out](int at, const std::string &c) {
        std::string &slot = out.comments[at];
        slot += c;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#' && at_line_start) {
            // Preprocessor directive: skip to end of line, honoring
            // continuations and trailing comments.
            while (i < n && text[i] != '\n') {
                if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (text[i] == '/' && i + 1 < n && text[i + 1] == '/') {
                    const std::size_t start = i;
                    while (i < n && text[i] != '\n')
                        ++i;
                    record_comment(line, text.substr(start, i - start));
                    break;
                }
                ++i;
            }
            continue;
        }
        at_line_start = false;
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            const std::size_t start = i;
            while (i < n && text[i] != '\n')
                ++i;
            record_comment(line, text.substr(start, i - start));
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            const int start_line = line;
            const std::size_t start = i;
            i += 2;
            while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            i = i + 2 <= n ? i + 2 : n;
            record_comment(start_line, text.substr(start, i - start));
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && text[j] != quote) {
                if (text[j] == '\\')
                    ++j;
                if (text[j] == '\n')
                    ++line;
                ++j;
            }
            out.toks.push_back(
                {TokKind::Str, text.substr(i, j + 1 - i), line});
            i = j + 1;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n && (isIdentChar(text[j]) || text[j] == '.' ||
                             ((text[j] == '+' || text[j] == '-') &&
                              (text[j - 1] == 'e' || text[j - 1] == 'E'))))
                ++j;
            out.toks.push_back({TokKind::Num, text.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (isIdentChar(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(text[j]))
                ++j;
            out.toks.push_back(
                {TokKind::Ident, text.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Multi-char punctuators the passes care about.
        static const char *const two[] = {"::", "->", "<<", ">>", "<=",
                                          ">=", "==", "!=", "&&", "||"};
        bool matched = false;
        for (const char *p : two) {
            if (i + 1 < n && text[i] == p[0] && text[i + 1] == p[1]) {
                out.toks.push_back({TokKind::Punct, p, line});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
}

// ---------------------------------------------------------------------
// Structural pass: classes, methods, functions, declarations
// ---------------------------------------------------------------------

struct Method
{
    std::string cls;  //!< empty for free functions
    std::string name;
    int line = 0;
    int fileIdx = -1;
    bool isConst = false;
    bool isStatic = false;
    bool isPublic = true;
    bool isCtorDtor = false;
    long bodyBegin = -1; //!< token index of '{', -1 = declaration only
    long bodyEnd = -1;   //!< token index one past the matching '}'
    std::string annotation; //!< first ULTRA_CHECK_* macro in the body
};

struct ClassInfo
{
    std::string name;
    int line = 0;
    int fileIdx = -1;
    std::vector<Method> methods; //!< in-class declarations/definitions
    std::map<std::string, std::string> memberTypes; //!< name -> type
};

struct ParsedFile
{
    SourceFile src;
    std::vector<ClassInfo> classes;
    std::vector<Method> functions; //!< all defs with bodies (free + methods)
    std::map<std::string, std::string> declTypes; //!< container decls
};

const std::set<std::string> kKeywords = {
    "if",       "for",      "while",    "switch",   "return",
    "sizeof",   "catch",    "new",      "delete",   "do",
    "else",     "case",     "goto",     "static_cast",
    "dynamic_cast", "const_cast", "reinterpret_cast", "alignof",
    "decltype", "noexcept", "throw",    "assert",   "defined",
};

long
matchBrace(const std::vector<Tok> &toks, long open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (toks[i].text == "{")
            ++depth;
        else if (toks[i].text == "}" && --depth == 0)
            return static_cast<long>(i) + 1;
    }
    return static_cast<long>(toks.size());
}

/** Skip a balanced <...> starting at toks[i] == "<"; returns the index
 *  one past the closing ">".  Bails out (returns i + 1) when the angle
 *  run hits ';' or '{' -- it was a comparison, not a template. */
std::size_t
skipAngles(const std::vector<Tok> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        const std::string &t = toks[j].text;
        if (t == "<")
            ++depth;
        else if (t == ">" && --depth == 0)
            return j + 1;
        else if (t == ">>" && (depth -= 2) <= 0)
            return j + 1;
        else if (t == ";" || t == "{")
            return i + 1;
    }
    return i + 1;
}

/** Record template-container declarations (vector<...> name, map<...>
 *  name, unordered_map<...> name, ...) for the determinism rules. */
void
collectDecls(const std::vector<Tok> &toks,
             std::map<std::string, std::string> &out)
{
    static const std::set<std::string> containers = {
        "vector", "deque",         "array",         "span",
        "map",    "set",           "unordered_map", "unordered_set",
        "multimap", "unordered_multimap",
    };
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident || !containers.count(toks[i].text))
            continue;
        if (toks[i + 1].text != "<")
            continue;
        const std::size_t end = skipAngles(toks, i + 1);
        if (end <= i + 2 || end >= toks.size())
            continue;
        // Template argument text (for pointer-element detection).
        std::string args;
        for (std::size_t j = i + 2; j + 1 < end; ++j)
            args += toks[j].text;
        std::size_t j = end;
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*"))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Ident &&
            !kKeywords.count(toks[j].text)) {
            out[toks[j].text] = toks[i].text + "<" + args + ">";
        }
    }
}

/**
 * Parse one statement's worth of tokens starting at @p i inside a class
 * body or at namespace scope, appending found methods/members, and
 * return the index one past the statement.
 */
std::size_t
parseStatement(const std::vector<Tok> &toks, std::size_t i, int fileIdx,
               ClassInfo *cls, int access, std::vector<Method> &defs,
               std::vector<ClassInfo> &classes);

/** Parse a class/struct body given the token index of its '{'. */
void
parseClassBody(const std::vector<Tok> &toks, long open, long close,
               int fileIdx, ClassInfo &info,
               std::vector<Method> &defs, std::vector<ClassInfo> &classes,
               bool is_struct)
{
    int access = is_struct ? 0 : 2; // 0 = public, 2 = private
    std::size_t i = open + 1;
    while (static_cast<long>(i) < close - 1) {
        const Tok &t = toks[i];
        if (t.kind == TokKind::Ident &&
            (t.text == "public" || t.text == "private" ||
             t.text == "protected") &&
            i + 1 < toks.size() && toks[i + 1].text == ":") {
            access = t.text == "public" ? 0 : t.text == "protected" ? 1 : 2;
            i += 2;
            continue;
        }
        i = parseStatement(toks, i, fileIdx, &info, access, defs, classes);
    }
}

std::size_t
parseStatement(const std::vector<Tok> &toks, std::size_t i, int fileIdx,
               ClassInfo *cls, int access, std::vector<Method> &defs,
               std::vector<ClassInfo> &classes)
{
    const std::size_t n = toks.size();
    if (i >= n)
        return n;

    // Skip stray punctuation.
    if (toks[i].kind == TokKind::Punct) {
        if (toks[i].text == "{")
            return matchBrace(toks, static_cast<long>(i));
        return i + 1;
    }

    // template <...> prefix.
    if (toks[i].text == "template" && i + 1 < n &&
        toks[i + 1].text == "<") {
        return parseStatement(toks, skipAngles(toks, i + 1), fileIdx, cls,
                              access, defs, classes);
    }

    // using / typedef / friend / static_assert: skip to ';'.
    if (toks[i].text == "using" || toks[i].text == "typedef" ||
        toks[i].text == "friend" || toks[i].text == "static_assert") {
        while (i < n && toks[i].text != ";")
            ++i;
        return i + 1;
    }

    // namespace N { ... }: recurse transparently.
    if (toks[i].text == "namespace") {
        std::size_t j = i + 1;
        while (j < n && toks[j].text != "{" && toks[j].text != ";")
            ++j;
        if (j >= n || toks[j].text == ";")
            return j + 1;
        const long close = matchBrace(toks, static_cast<long>(j));
        std::size_t k = j + 1;
        while (static_cast<long>(k) < close - 1)
            k = parseStatement(toks, k, fileIdx, nullptr, 0, defs, classes);
        return static_cast<std::size_t>(close);
    }

    // enum [class] ...: skip body.
    if (toks[i].text == "enum") {
        std::size_t j = i;
        while (j < n && toks[j].text != "{" && toks[j].text != ";")
            ++j;
        if (j < n && toks[j].text == "{")
            j = matchBrace(toks, static_cast<long>(j));
        while (j < n && toks[j].text != ";")
            ++j;
        return j + 1;
    }

    // class/struct/union definition (possibly nested).
    if (toks[i].text == "class" || toks[i].text == "struct" ||
        toks[i].text == "union") {
        const bool is_struct = toks[i].text != "class";
        std::size_t j = i + 1;
        std::string name;
        while (j < n && toks[j].kind == TokKind::Ident) {
            name = toks[j].text; // last ident before { / : / ; wins
            ++j;
            if (j < n && toks[j].text == "<")
                j = skipAngles(toks, j); // specializations
        }
        // Find the body '{' at angle depth 0 (base clause may carry
        // templates), or ';' for a forward declaration / member decl.
        while (j < n && toks[j].text != "{" && toks[j].text != ";") {
            if (toks[j].text == "<") {
                j = skipAngles(toks, j);
                continue;
            }
            ++j;
        }
        if (j >= n || toks[j].text == ";")
            return j + 1;
        const long close = matchBrace(toks, static_cast<long>(j));
        ClassInfo info;
        info.name = name;
        info.line = toks[i].line;
        info.fileIdx = fileIdx;
        parseClassBody(toks, static_cast<long>(j), close, fileIdx, info,
                       defs, classes, is_struct);
        classes.push_back(std::move(info));
        // Trailing declarator (`} name;`) -- treat as a member.
        std::size_t k = static_cast<std::size_t>(close);
        while (k < n && toks[k].text != ";" && toks[k].text != "{")
            ++k;
        return k + 1;
    }

    // Generic statement: scan to ';' or a body '{' at depth 0, tracking
    // whether a top-level parameter list was seen (function-ness).
    const std::size_t start = i;
    int paren = 0;
    long paren_open = -1, paren_close = -1;
    bool saw_params = false;
    std::size_t j = i;
    for (; j < n; ++j) {
        const std::string &t = toks[j].text;
        if (toks[j].kind != TokKind::Punct) {
            if (t == "operator") {
                // operator<, operator(), ...: consume the symbol so its
                // punctuation is not mistaken for structure.
                ++j;
                while (j < n && toks[j].text != "(")
                    ++j;
                --j;
            }
            continue;
        }
        if (t == "(") {
            if (paren == 0 && paren_open < 0) {
                paren_open = static_cast<long>(j);
                saw_params = true;
            }
            ++paren;
        } else if (t == ")") {
            --paren;
            if (paren == 0 && paren_close < 0 &&
                paren_open >= 0) {
                paren_close = static_cast<long>(j);
            }
        } else if (t == "<" && paren == 0 && paren_close < 0) {
            const std::size_t after = skipAngles(toks, j);
            if (after > j + 1) {
                j = after - 1;
                continue;
            }
        } else if (t == ";" && paren == 0) {
            break;
        } else if (t == "{" && paren == 0) {
            if (!saw_params || paren_close < 0) {
                // Brace initializer (`Histogram h{2, 256};`): consume
                // and continue to the ';'.
                j = static_cast<std::size_t>(
                        matchBrace(toks, static_cast<long>(j))) -
                    1;
                saw_params = false;
                continue;
            }
            break;
        } else if (t == "=" && paren == 0 && paren_close >= 0) {
            // `= default` / `= delete` / `= 0`: declaration, not body.
            saw_params = false;
            while (j < n && toks[j].text != ";")
                ++j;
            break;
        }
    }
    if (j >= n)
        return n;

    const bool has_body = toks[j].text == "{" && saw_params;
    if (paren_open > 0 && paren_close > paren_open) {
        // Function declaration or definition.  Name = ident before '('.
        Method m;
        m.fileIdx = fileIdx;
        long name_idx = paren_open - 1;
        if (toks[name_idx].kind == TokKind::Ident ||
            toks[name_idx].kind == TokKind::Punct) {
            // operatorX: name is "operator" + symbol(s).
            long k = name_idx;
            while (k > static_cast<long>(start) &&
                   toks[k].kind == TokKind::Punct &&
                   toks[k].text != "::" && toks[k].text != "*" &&
                   toks[k].text != "&")
                --k;
            if (toks[k].kind == TokKind::Ident &&
                toks[k].text == "operator") {
                m.name = "operator";
                for (long q = k + 1; q <= name_idx; ++q)
                    m.name += toks[q].text;
                name_idx = k;
            }
        }
        if (m.name.empty()) {
            if (toks[name_idx].kind != TokKind::Ident)
                return j + 1; // not a function shape we model
            m.name = toks[name_idx].text;
        }
        m.line = toks[name_idx].line;
        // Qualification: `Cls :: name (` -> out-of-line method.
        if (name_idx >= 2 && toks[name_idx - 1].text == "::" &&
            toks[name_idx - 2].kind == TokKind::Ident) {
            m.cls = toks[name_idx - 2].text;
        } else if (cls != nullptr) {
            m.cls = cls->name;
        }
        // Ctor/dtor.
        if (!m.cls.empty() &&
            (m.name == m.cls ||
             (name_idx >= 1 && toks[name_idx - 1].text == "~"))) {
            m.isCtorDtor = true;
        }
        for (std::size_t q = start; static_cast<long>(q) < paren_open;
             ++q) {
            if (toks[q].text == "static")
                m.isStatic = true;
        }
        for (long q = paren_close + 1; q < static_cast<long>(j); ++q) {
            if (toks[q].text == "const")
                m.isConst = true;
        }
        m.isPublic = access == 0;
        if (has_body) {
            m.bodyBegin = static_cast<long>(j);
            m.bodyEnd = matchBrace(toks, static_cast<long>(j));
            for (long q = m.bodyBegin; q < m.bodyEnd; ++q) {
                if (toks[q].kind == TokKind::Ident &&
                    toks[q].text.rfind("ULTRA_CHECK_", 0) == 0 &&
                    m.annotation.empty()) {
                    for (const char *macro : kAnnotationMacros) {
                        if (toks[q].text == macro)
                            m.annotation = macro;
                    }
                }
            }
        }
        if (cls != nullptr)
            cls->methods.push_back(m);
        if (has_body)
            defs.push_back(m);
        return has_body ? static_cast<std::size_t>(m.bodyEnd) : j + 1;
    }

    // Data member / plain declaration: record `name` for the class.
    if (cls != nullptr && toks[j].text == ";") {
        long name_idx = static_cast<long>(j) - 1;
        // `Type name = init;` / `Type name{init};`: walk back to the
        // declarator.
        for (long q = static_cast<long>(start); q < static_cast<long>(j);
             ++q) {
            if (toks[q].text == "=" || toks[q].text == "{") {
                name_idx = q - 1;
                break;
            }
        }
        if (name_idx >= static_cast<long>(start) &&
            toks[name_idx].kind == TokKind::Ident) {
            std::string type;
            for (long q = static_cast<long>(start); q < name_idx; ++q) {
                type += toks[q].text;
                type += ' ';
            }
            cls->memberTypes[toks[name_idx].text] = type;
        }
    }
    return j + 1;
}

void
parseFile(ParsedFile &pf)
{
    std::size_t i = 0;
    const int fileIdx = 0; // per-file parse; index fixed up by caller
    while (i < pf.src.toks.size()) {
        i = parseStatement(pf.src.toks, i, fileIdx, nullptr, 0,
                           pf.functions, pf.classes);
    }
    collectDecls(pf.src.toks, pf.declTypes);
    for (const ClassInfo &c : pf.classes) {
        for (const auto &[name, type] : c.memberTypes) {
            if (pf.declTypes.count(name) == 0 &&
                type.find('<') != std::string::npos) {
                // Re-derive container element info from the member type.
                std::map<std::string, std::string> tmp;
                SourceFile sf;
                lex(type + " " + name + " ;", sf);
                collectDecls(sf.toks, tmp);
                for (auto &kv : tmp)
                    pf.declTypes.insert(kv);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Diagnostics and allowlist
// ---------------------------------------------------------------------

struct Diag
{
    std::string file;
    int line;
    std::string rule;
    std::string msg;

    bool
    operator<(const Diag &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return msg < o.msg;
    }
};

struct Allowlist
{
    /** rule -> set of keys (Cls::method, Entry->Target, file:ident). */
    std::map<std::string, std::map<std::string, std::string>> entries;

    bool
    allows(const std::string &rule, const std::string &key) const
    {
        auto it = entries.find(rule);
        return it != entries.end() && it->second.count(key) > 0;
    }

    const std::string *
    reason(const std::string &rule, const std::string &key) const
    {
        auto it = entries.find(rule);
        if (it == entries.end())
            return nullptr;
        auto jt = it->second.find(key);
        return jt == it->second.end() ? nullptr : &jt->second;
    }
};

bool
loadAllowlist(const std::string &path, Allowlist &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open allowlist '" + path + "'";
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream is(line);
        std::string rule, key;
        is >> rule >> key;
        std::string reason;
        std::getline(is, reason);
        const std::size_t r = reason.find_first_not_of(" \t");
        reason = r == std::string::npos ? "" : reason.substr(r);
        if (rule.rfind("UL-", 0) != 0 || key.empty() || reason.empty()) {
            err = path + ":" + std::to_string(lineno) +
                  ": malformed allowlist entry (want: RULE key reason)";
            return false;
        }
        out.entries[rule][key] = reason;
    }
    return true;
}

/** Inline `ultralint: allow(RULE...)` on the line or the line above. */
bool
inlineAllowed(const SourceFile &src, int line, const std::string &rule)
{
    auto has_marker = [&rule](const std::string &text) {
        const std::size_t at = text.find("ultralint: allow(");
        if (at == std::string::npos)
            return false;
        const std::size_t close = text.find(')', at);
        if (close == std::string::npos)
            return false;
        return text.substr(at, close - at).find(rule) != std::string::npos;
    };
    // The flagged line itself, then the contiguous comment block
    // directly above it (a marker may open a multi-line comment).
    auto it = src.comments.find(line);
    if (it != src.comments.end() && has_marker(it->second))
        return true;
    for (int l = line - 1; l >= 1; --l) {
        it = src.comments.find(l);
        if (it == src.comments.end())
            break;
        if (has_marker(it->second))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

struct Analysis
{
    std::vector<ParsedFile> files;
    Allowlist allow;
    std::vector<Diag> diags;
    /** Coverage-report lines, keyed (class, method) for determinism. */
    std::map<std::string, std::map<std::string, std::string>> coverage;

    void
    emit(const ParsedFile &pf, int line, const std::string &rule,
         const std::string &msg, const std::string &allow_key = "")
    {
        if (!allow_key.empty() && allow.allows(rule, allow_key))
            return;
        if (inlineAllowed(pf.src, line, rule))
            return;
        diags.push_back({pf.src.path, line, rule, msg});
    }
};

bool
isNetDomainClass(const std::string &name)
{
    for (const char *c : kNetDomainClasses) {
        if (name == c)
            return true;
    }
    return false;
}

/** UL-COV-001 + the coverage report. */
void
ruleAnnotationCoverage(Analysis &a)
{
    // Index out-of-line definitions: Cls::name -> annotation/body info.
    std::map<std::string, const Method *> defs;
    for (const ParsedFile &pf : a.files) {
        for (const Method &m : pf.functions) {
            if (!m.cls.empty())
                defs.emplace(m.cls + "::" + m.name, &m);
        }
    }

    for (const ParsedFile &pf : a.files) {
        for (const ClassInfo &c : pf.classes) {
            if (!isNetDomainClass(c.name))
                continue;
            auto &report = a.coverage[c.name];
            if (c.methods.empty()) {
                report["(no methods)"] =
                    "data-only; covered by its owner's annotations";
                continue;
            }
            for (const Method &m : c.methods) {
                const std::string key = c.name + "::" + m.name;
                if (m.isCtorDtor || m.isStatic)
                    continue;
                if (m.isConst) {
                    report[m.name] = "const (not checked)";
                    continue;
                }
                if (!m.isPublic) {
                    report[m.name] = "private (reached via public "
                                     "annotated methods)";
                    continue;
                }
                // Resolve the body: in-class or out-of-line.
                std::string annotation = m.annotation;
                bool has_body = m.bodyBegin >= 0;
                if (!has_body) {
                    auto it = defs.find(key);
                    if (it != defs.end()) {
                        has_body = true;
                        annotation = it->second->annotation;
                    }
                }
                if (const std::string *why =
                        a.allow.reason("UL-COV-001", key)) {
                    report[m.name] = "allowlisted: " + *why;
                    continue;
                }
                if (!has_body) {
                    report[m.name] = "no definition found (not checked)";
                    continue;
                }
                if (!annotation.empty()) {
                    report[m.name] = annotation;
                    continue;
                }
                report[m.name] = "MISSING";
                a.emit(pf, m.line, "UL-COV-001",
                       "net-domain class '" + c.name +
                           "': public mutating method '" + m.name +
                           "' lacks an ULTRA_CHECK annotation (or an "
                           "allowlist entry)",
                       key);
            }
        }
    }
}

/** UL-COV-002: annotation owner arguments must be bound fields. */
void
ruleOwnerArguments(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        const std::vector<Tok> &toks = pf.src.toks;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const bool mutate = toks[i].text == "ULTRA_CHECK_NET_MUTATE";
            const bool dequeue =
                toks[i].text == "ULTRA_CHECK_NET_DEQUEUE";
            if ((!mutate && !dequeue) || toks[i + 1].text != "(")
                continue;
            // Owner args = every top-level arg after the first.
            int depth = 0;
            int arg = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                const std::string &t = toks[j].text;
                if (t == "(") {
                    ++depth;
                } else if (t == ")") {
                    if (--depth == 0)
                        break;
                } else if (t == "," && depth == 1) {
                    ++arg;
                    if (toks[j + 1].kind == TokKind::Num) {
                        a.emit(pf, toks[j + 1].line, "UL-COV-002",
                               "annotation owner argument '" +
                                   toks[j + 1].text +
                                   "' is a literal; bind the "
                                   "component's owner field instead");
                    }
                }
            }
        }
    }
}

/** UL-COV-003: annotation users include check/phase_check.h directly. */
void
ruleAnnotationInclude(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        if (pf.src.path.find("check/phase_check.") != std::string::npos)
            continue;
        int first_use = 0;
        for (const Tok &t : pf.src.toks) {
            if (t.kind != TokKind::Ident)
                continue;
            for (const char *macro : kAnnotationMacros) {
                if (t.text == macro) {
                    first_use = t.line;
                    break;
                }
            }
            if (first_use != 0)
                break;
        }
        if (first_use == 0)
            continue;
        bool included = false;
        for (const std::string &line : pf.src.rawLines) {
            if (line.find("#include") != std::string::npos &&
                line.find("\"check/phase_check.h\"") != std::string::npos) {
                included = true;
                break;
            }
        }
        if (!included) {
            a.emit(pf, first_use, "UL-COV-003",
                   "ULTRA_CHECK annotation used but "
                   "\"check/phase_check.h\" is not included directly");
        }
    }
}

/** UL-PHASE-001: compute entries must not reach commit-only mutators. */
void
rulePhaseReachability(Analysis &a)
{
    struct Def
    {
        const ParsedFile *pf;
        const Method *m;
        std::string qual; //!< Cls::name or name
        bool commitOnly = false;
        bool entry = false;
    };
    std::vector<Def> defs;
    std::map<std::string, std::vector<std::size_t>> byName;
    for (const ParsedFile &pf : a.files) {
        for (const Method &m : pf.functions) {
            Def d;
            d.pf = &pf;
            d.m = &m;
            d.qual = m.cls.empty() ? m.name : m.cls + "::" + m.name;
            d.commitOnly = m.annotation == "ULTRA_CHECK_COMMIT_ONLY";
            d.entry = m.annotation == "ULTRA_CHECK_COMPUTE_WRITE" ||
                      m.annotation == "ULTRA_CHECK_COMPUTE_READ";
            for (const char *e : kComputeEntries) {
                if (d.qual == e)
                    d.entry = true;
            }
            byName[m.name].push_back(defs.size());
            defs.push_back(d);
        }
    }

    // Conservative edges: an identifier followed by '(' inside a body
    // calls every known function of that name -- except that when the
    // caller's own class has one, C++ lookup picks it.
    auto edges = [&](std::size_t from) {
        std::vector<std::size_t> out;
        const Def &d = defs[from];
        const std::vector<Tok> &toks = d.pf->src.toks;
        for (long i = d.m->bodyBegin; i + 1 < d.m->bodyEnd; ++i) {
            if (toks[i].kind != TokKind::Ident ||
                toks[i + 1].text != "(" || kKeywords.count(toks[i].text))
                continue;
            auto it = byName.find(toks[i].text);
            if (it == byName.end())
                continue;
            // Qualified call: Cls::name(...) resolves exactly.
            std::string qual_cls;
            if (i >= 2 && toks[i - 1].text == "::" &&
                toks[i - 2].kind == TokKind::Ident)
                qual_cls = toks[i - 2].text;
            bool same_class = false;
            for (std::size_t t : it->second) {
                if (!qual_cls.empty()) {
                    if (defs[t].m->cls == qual_cls)
                        out.push_back(t);
                } else if (defs[t].m->cls == d.m->cls) {
                    same_class = true;
                }
            }
            if (!qual_cls.empty())
                continue;
            for (std::size_t t : it->second) {
                if (!same_class || defs[t].m->cls == d.m->cls)
                    out.push_back(t);
            }
        }
        return out;
    };

    for (std::size_t e = 0; e < defs.size(); ++e) {
        if (!defs[e].entry)
            continue;
        // BFS with parents for path reporting.
        std::map<std::size_t, std::size_t> parent;
        std::vector<std::size_t> queue{e};
        parent[e] = e;
        for (std::size_t qi = 0; qi < queue.size(); ++qi) {
            const std::size_t cur = queue[qi];
            for (std::size_t nxt : edges(cur)) {
                if (parent.count(nxt))
                    continue;
                parent[nxt] = cur;
                if (defs[nxt].commitOnly) {
                    // Allowlist key: Entry->Target (qualified).
                    const std::string key =
                        defs[e].qual + "->" + defs[nxt].qual;
                    std::vector<std::string> path;
                    for (std::size_t p = nxt;; p = parent[p]) {
                        path.push_back(defs[p].qual);
                        if (p == e)
                            break;
                    }
                    std::reverse(path.begin(), path.end());
                    std::string via;
                    for (std::size_t p = 0; p < path.size(); ++p) {
                        if (p)
                            via += " -> ";
                        via += path[p];
                    }
                    a.emit(*defs[e].pf, defs[e].m->line, "UL-PHASE-001",
                           "compute-phase entry '" + defs[e].qual +
                               "' reaches commit-only '" +
                               defs[nxt].qual + "' via: " + via,
                           key);
                    continue; // do not traverse past a commit-only def
                }
                queue.push_back(nxt);
            }
        }
    }
}

/** UL-DET-001: iteration over unordered containers. */
void
ruleUnorderedIteration(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        std::set<std::string> unordered;
        for (const auto &[name, type] : pf.declTypes) {
            if (type.rfind("unordered_", 0) == 0)
                unordered.insert(name);
        }
        if (unordered.empty())
            continue;
        const std::vector<Tok> &toks = pf.src.toks;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            // Range-for: `for ( ... : expr )` with an unordered name in
            // the range expression.
            if (toks[i].text == "for" && toks[i + 1].text == "(") {
                int depth = 0;
                long colon = -1;
                std::size_t close = i + 1;
                for (std::size_t j = i + 1; j < toks.size(); ++j) {
                    if (toks[j].text == "(")
                        ++depth;
                    else if (toks[j].text == ")" && --depth == 0) {
                        close = j;
                        break;
                    } else if (toks[j].text == ":" && depth == 1)
                        colon = static_cast<long>(j);
                }
                if (colon > 0) {
                    for (std::size_t j = colon + 1; j < close; ++j) {
                        if (toks[j].kind == TokKind::Ident &&
                            unordered.count(toks[j].text)) {
                            a.emit(pf, toks[j].line, "UL-DET-001",
                                   "iteration order of '" + toks[j].text +
                                       "' (std::unordered_*) is "
                                       "nondeterministic; iterate a "
                                       "sorted view or use an ordered "
                                       "container");
                        }
                    }
                }
            }
            // Explicit begin(): `x.begin()` on an unordered container
            // (hash-order traversal however it is consumed).
            if (toks[i].kind == TokKind::Ident &&
                unordered.count(toks[i].text) &&
                (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
                toks[i + 2].text == "begin") {
                a.emit(pf, toks[i].line, "UL-DET-001",
                       "iteration order of '" + toks[i].text +
                           "' (std::unordered_*) is nondeterministic; "
                           "iterate a sorted view or use an ordered "
                           "container");
            }
        }
    }
}

std::vector<std::pair<std::size_t, std::size_t>>
callArgs(const std::vector<Tok> &toks, std::size_t open);

/** UL-DET-002: raw entropy / wall-clock sources outside common/rng. */
void
ruleRawEntropy(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        if (pf.src.path.find(kEntropyHome) != std::string::npos)
            continue;
        const std::vector<Tok> &toks = pf.src.toks;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const std::string &t = toks[i].text;
            bool hit = false;
            for (const char *src : kRawEntropy) {
                if (t == src)
                    hit = true;
            }
            // `time(...)` / `clock()` only in their libc entropy
            // shapes -- time(nullptr)/time(0)/clock() -- the words are
            // too common as member names otherwise.
            if ((t == "time" || t == "clock") && toks[i + 1].text == "(" &&
                (i == 0 || (toks[i - 1].text != "." &&
                            toks[i - 1].text != "->" &&
                            toks[i - 1].text != "::"))) {
                const auto args = callArgs(toks, i + 1);
                const bool entropy_shape =
                    args.empty() ||
                    (args.size() == 1 &&
                     args[0].second == args[0].first + 1 &&
                     (toks[args[0].first].text == "nullptr" ||
                      toks[args[0].first].text == "NULL" ||
                      toks[args[0].first].text == "0"));
                if (entropy_shape)
                    hit = true;
            }
            if (!hit)
                continue;
            if (t != "time" && t != "clock" && toks[i + 1].text != "(" &&
                toks[i + 1].text != "::" && toks[i + 1].text != ";" &&
                toks[i + 1].kind != TokKind::Ident)
                continue;
            a.emit(pf, toks[i].line, "UL-DET-002",
                   "nondeterminism source '" + t +
                       "' outside common/rng; derive from the seeded "
                       "ultra::Rng streams instead");
        }
    }
}

/** UL-DET-003: thread_local state. */
void
ruleThreadLocal(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        for (const Tok &t : pf.src.toks) {
            if (t.kind == TokKind::Ident && t.text == "thread_local") {
                a.emit(pf, t.line, "UL-DET-003",
                       "'thread_local' state in simulation code is "
                       "thread-count-dependent; keep per-shard state in "
                       "the shard plan");
            }
        }
    }
}

/** UL-DET-007: raw wall-clock reads in simulation code.  A host-time
 *  read woven into simulation logic is a determinism hazard -- the run
 *  would depend on the machine, not the seed -- and it dodges the
 *  profiler's accounting.  One diagnostic per offending line (a single
 *  `std::chrono::steady_clock::now()` carries two trigger tokens). */
void
ruleWallClock(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        bool exempt = false;
        for (const char *home : kWallClockHomes) {
            if (pf.src.path.find(home) != std::string::npos)
                exempt = true;
        }
        if (exempt)
            continue;
        int last_line = -1;
        for (const Tok &t : pf.src.toks) {
            if (t.kind != TokKind::Ident)
                continue;
            bool hit = false;
            for (const char *src : kWallClock) {
                if (t.text == src)
                    hit = true;
            }
            if (!hit || t.line == last_line)
                continue;
            last_line = t.line;
            a.emit(pf, t.line, "UL-DET-007",
                   "wall-clock source '" + t.text +
                       "' outside src/prof, src/obs or bench; route "
                       "host timing through prof::Profiler::nowNs()",
                   pf.src.path + ":" + t.text);
        }
    }
}

/** Split the top-level arguments of a call whose '(' is at @p open. */
std::vector<std::pair<std::size_t, std::size_t>>
callArgs(const std::vector<Tok> &toks, std::size_t open)
{
    std::vector<std::pair<std::size_t, std::size_t>> args;
    int depth = 0;
    int brackets = 0;
    std::size_t arg_start = open + 1;
    for (std::size_t j = open; j < toks.size(); ++j) {
        const std::string &t = toks[j].text;
        if (t == "(" || t == "{")
            ++depth;
        else if (t == ")" || t == "}") {
            if (--depth == 0) {
                if (j > arg_start)
                    args.emplace_back(arg_start, j);
                break;
            }
        } else if (t == "[")
            ++brackets;
        else if (t == "]")
            --brackets;
        else if (t == "," && depth == 1 && brackets == 0) {
            args.emplace_back(arg_start, j);
            arg_start = j + 1;
        }
    }
    return args;
}

/** UL-DET-004 / UL-DET-005: sort-order hazards. */
void
ruleSortHazards(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        const std::vector<Tok> &toks = pf.src.toks;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Ident || toks[i].text != "sort" ||
                toks[i + 1].text != "(")
                continue;
            if (i >= 1 && (toks[i - 1].text == "." ||
                           toks[i - 1].text == "->"))
                continue; // member .sort() of something else
            const auto args = callArgs(toks, i + 1);
            if (args.size() < 2)
                continue;
            const int line = toks[i].line;

            // UL-DET-004: two-arg sort of a pointer-element container.
            if (args.size() == 2 &&
                toks[args[0].first].kind == TokKind::Ident) {
                const std::string &name = toks[args[0].first].text;
                auto it = pf.declTypes.find(name);
                if (it != pf.declTypes.end() &&
                    it->second.find('*') != std::string::npos) {
                    a.emit(pf, line, "UL-DET-004",
                           "sorting pointer elements of '" + name +
                               "' without a comparator orders by "
                               "address; sort a stable key instead");
                }
            }

            // UL-DET-005: lambda comparator over a single key.
            if (args.size() == 3 && toks[args[2].first].text == "[") {
                const std::size_t lb = args[2].first;
                // [caps] ( p1 , p2 ) { return L OP R ; }
                std::size_t j = lb;
                while (j < args[2].second && toks[j].text != "]")
                    ++j;
                if (j + 1 >= args[2].second || toks[j + 1].text != "(")
                    continue;
                const auto params = callArgs(toks, j + 1);
                if (params.size() != 2)
                    continue;
                auto param_name = [&](int which) {
                    // Last identifier of the parameter declaration.
                    std::string name;
                    for (std::size_t q = params[which].first;
                         q < params[which].second; ++q) {
                        if (toks[q].kind == TokKind::Ident &&
                            !kKeywords.count(toks[q].text))
                            name = toks[q].text;
                    }
                    return name;
                };
                const std::string p1 = param_name(0), p2 = param_name(1);
                if (p1.empty() || p2.empty())
                    continue;
                // Find the lambda body.
                std::size_t body = params[1].second;
                while (body < args[2].second && toks[body].text != "{")
                    ++body;
                if (body >= args[2].second)
                    continue;
                // Single `return L OP R ;` statement?
                std::vector<std::string> stmt;
                std::size_t q = body + 1;
                for (; q < args[2].second && toks[q].text != "}"; ++q)
                    stmt.push_back(toks[q].kind == TokKind::Ident &&
                                           (toks[q].text == p1 ||
                                            toks[q].text == p2)
                                       ? "@param"
                                       : toks[q].text);
                if (stmt.size() < 4 || stmt.front() != "return" ||
                    stmt.back() != ";")
                    continue;
                // Exactly one top-level comparison.
                long op = -1;
                int depth = 0;
                for (std::size_t s = 1; s + 1 < stmt.size(); ++s) {
                    if (stmt[s] == "(")
                        ++depth;
                    else if (stmt[s] == ")")
                        --depth;
                    else if (depth == 0 &&
                             (stmt[s] == "<" || stmt[s] == ">")) {
                        if (op >= 0) {
                            op = -2;
                            break;
                        }
                        op = static_cast<long>(s);
                    }
                }
                if (op <= 0)
                    continue;
                const std::vector<std::string> lhs(stmt.begin() + 1,
                                                   stmt.begin() + op);
                const std::vector<std::string> rhs(stmt.begin() + op + 1,
                                                   stmt.end() - 1);
                if (lhs == rhs) {
                    a.emit(pf, line, "UL-DET-005",
                           "std::sort with a single-key comparator: "
                           "tie order falls to the library; use "
                           "std::stable_sort or add a total-order "
                           "tie-break");
                }
            }
        }
    }
}

/** UL-DET-006: unordered floating-point reductions. */
void
ruleFpReduction(Analysis &a)
{
    for (const ParsedFile &pf : a.files) {
        const std::vector<Tok> &toks = pf.src.toks;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const std::string &t = toks[i].text;
            if (t == "execution" && toks[i + 1].text == "::" &&
                (toks[i + 2].text == "par" ||
                 toks[i + 2].text == "par_unseq" ||
                 toks[i + 2].text == "unseq")) {
                a.emit(pf, toks[i].line, "UL-DET-006",
                       "parallel execution policy reorders reductions; "
                       "floating-point sums become "
                       "schedule-dependent");
            }
            if (t == "atomic" && toks[i + 1].text == "<" &&
                (toks[i + 2].text == "double" ||
                 toks[i + 2].text == "float")) {
                a.emit(pf, toks[i].line, "UL-DET-006",
                       "atomic floating-point accumulation is "
                       "order-dependent; stage per-shard partials and "
                       "fold them in unit order");
            }
            if ((t == "reduce" || t == "transform_reduce") &&
                toks[i + 1].text == "(" && i >= 1 &&
                toks[i - 1].text == "::") {
                a.emit(pf, toks[i].line, "UL-DET-006",
                       "std::" + t +
                           " makes no ordering guarantee; use "
                           "std::accumulate or a unit-order fold");
            }
        }
    }
}

// ---------------------------------------------------------------------
// File collection and driver
// ---------------------------------------------------------------------

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

void
splitLines(const std::string &text, std::vector<std::string> &out)
{
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
}

/** Collect *.h / *.cc under root/src (sorted, relative paths). */
std::vector<fs::path>
collectTree(const fs::path &root)
{
    std::vector<fs::path> files;
    const fs::path src = root / "src";
    const fs::path base = fs::exists(src) ? src : root;
    for (const auto &entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

/** Root deduced from compile_commands.json: the directory holding the
 *  first "file" entry's `src/` ancestor. */
bool
rootFromCompdb(const fs::path &compdb, fs::path &root, std::string &err)
{
    std::string text;
    if (!readFile(compdb, text)) {
        err = "cannot open compilation database '" + compdb.string() + "'";
        return false;
    }
    // Minimal extraction: every `"file": "..."` value.
    std::size_t at = 0;
    while ((at = text.find("\"file\"", at)) != std::string::npos) {
        const std::size_t q1 = text.find('"', at + 6 + 1);
        const std::size_t q2 =
            q1 == std::string::npos ? q1 : text.find('"', q1 + 1);
        if (q2 == std::string::npos)
            break;
        const fs::path f = text.substr(q1 + 1, q2 - q1 - 1);
        for (fs::path p = f.parent_path(); !p.empty();
             p = p.parent_path()) {
            if (p.filename() == "src") {
                root = p.parent_path();
                return true;
            }
            if (p == p.parent_path())
                break;
        }
        at = q2;
    }
    err = "no src/ translation units in '" + compdb.string() + "'";
    return false;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ultralint [--compdb compile_commands.json | --root DIR |"
        " FILE...]\n"
        "                 [--allowlist FILE] [--report FILE]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string compdb, rootArg, allowPath, reportPath;
    std::vector<std::string> explicitFiles;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](std::string &slot) {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            slot = argv[++i];
        };
        if (arg == "--compdb")
            next(compdb);
        else if (arg == "--root")
            next(rootArg);
        else if (arg == "--allowlist")
            next(allowPath);
        else if (arg == "--report")
            next(reportPath);
        else if (arg == "--help") {
            usage();
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage();
            return 2;
        } else {
            explicitFiles.push_back(arg);
        }
    }

    std::string err;
    fs::path root;
    std::vector<fs::path> files;
    if (!explicitFiles.empty()) {
        for (const std::string &f : explicitFiles)
            files.emplace_back(f);
        std::sort(files.begin(), files.end());
    } else if (!rootArg.empty() || !compdb.empty()) {
        if (!rootArg.empty()) {
            root = rootArg;
        } else if (!rootFromCompdb(compdb, root, err)) {
            std::fprintf(stderr, "ultralint: %s\n", err.c_str());
            return 2;
        }
        if (!fs::exists(root)) {
            std::fprintf(stderr, "ultralint: no such root '%s'\n",
                         root.string().c_str());
            return 2;
        }
        files = collectTree(root);
    } else {
        usage();
        return 2;
    }

    Analysis a;
    if (!allowPath.empty() &&
        !loadAllowlist(allowPath, a.allow, err)) {
        std::fprintf(stderr, "ultralint: %s\n", err.c_str());
        return 2;
    }

    for (const fs::path &p : files) {
        std::string text;
        if (!readFile(p, text)) {
            std::fprintf(stderr, "ultralint: cannot read '%s'\n",
                         p.string().c_str());
            return 2;
        }
        ParsedFile pf;
        pf.src.path =
            root.empty()
                ? p.generic_string()
                : fs::relative(p, root).generic_string();
        splitLines(text, pf.src.rawLines);
        lex(text, pf.src);
        parseFile(pf);
        a.files.push_back(std::move(pf));
    }

    ruleAnnotationCoverage(a);
    ruleOwnerArguments(a);
    ruleAnnotationInclude(a);
    rulePhaseReachability(a);
    ruleUnorderedIteration(a);
    ruleRawEntropy(a);
    ruleWallClock(a);
    ruleThreadLocal(a);
    ruleSortHazards(a);
    ruleFpReduction(a);

    std::sort(a.diags.begin(), a.diags.end());
    a.diags.erase(std::unique(a.diags.begin(), a.diags.end(),
                              [](const Diag &x, const Diag &y) {
                                  return x.file == y.file &&
                                         x.line == y.line &&
                                         x.rule == y.rule &&
                                         x.msg == y.msg;
                              }),
                  a.diags.end());
    for (const Diag &d : a.diags) {
        std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.msg.c_str());
    }

    if (!reportPath.empty()) {
        std::ofstream rep(reportPath);
        if (!rep) {
            std::fprintf(stderr, "ultralint: cannot write report '%s'\n",
                         reportPath.c_str());
            return 2;
        }
        rep << "ultralint annotation-coverage report\n";
        for (const auto &[cls, methods] : a.coverage) {
            rep << "\nclass " << cls << "\n";
            for (const auto &[name, status] : methods)
                rep << "  " << name << ": " << status << "\n";
        }
        rep << "\ndiagnostics: " << a.diags.size() << "\n";
    }

    if (a.diags.empty()) {
        std::printf("ultralint: clean (%zu files)\n", a.files.size());
        return 0;
    }
    std::printf("ultralint: %zu diagnostic%s\n", a.diags.size(),
                a.diags.size() == 1 ? "" : "s");
    return 1;
}
