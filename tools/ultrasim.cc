/**
 * @file
 * ultrasim -- command-line driver for network and workload
 * experiments on the simulated Ultracomputer.
 *
 * Subcommands:
 *
 *   ultrasim net   [options]   synthetic-traffic network experiment
 *   ultrasim app   [options]   run a scientific workload
 *   ultrasim model [options]   evaluate the analytic transit-time model
 *   ultrasim pack  [options]   section-3.6 packaging estimate
 *   ultrasim trace [options]   record an app's traffic / replay a file
 *   ultrasim serve ADDR        persistent job server on the inspect
 *                              transport (protocol "ultra.serve.v1",
 *                              see src/sweep/serve.h); ADDR as in
 *                              --inspect.  Options: --threads N
 *                              (default job threads), --cache N
 *                              (warmed configurations kept, default 4)
 *
 * `trace` options:
 *   --record FILE --app NAME --pes P --n N    record a workload trace
 *   --replay FILE [network options]           replay through a config
 *
 * Common network options:
 *   --ports N      ports per side (default 256)
 *   --k K          switch degree (default 2)
 *   --m M          multiplexing factor / uniform message length
 *   --d D          network copies (default 1)
 *   --queue Q      queue capacity in packets, 0 = unbounded (default 15)
 *   --policy P     none | homo | full (default full)
 *   --burroughs    kill-on-conflict switches
 *   --ideal        ideal paracomputer (single-cycle shared memory)
 *   --uniform      uniform packet sizing (analytic-model assumption)
 *
 * Observability options (`net` and `app`):
 *   --stats-json FILE      dump every registered statistic as JSON
 *                          (keys in sorted order, stable across runs)
 *   --stats-pretty         one statistic per line in --stats-json
 *   --sample-every S       snapshot occupancy gauges every S cycles
 *   --sample-out FILE      write the sampled time series as CSV
 *   --trace-events FILE    Chrome trace-event JSON (load in Perfetto)
 *   --latency-json FILE    packet-lifecycle latency report (per-stage
 *                          waits, combining effectiveness, model drift)
 *   --prof-json FILE       wall-clock self-profile of the host run:
 *                          per-phase times, per-thread barrier waits,
 *                          per-unit load, Amdahl loss attribution
 *                          (simulation output stays byte-identical;
 *                          read with `ultrascope --prof FILE`)
 *   --heatmap-csv FILE     stage x switch congestion heatmap
 *   --check-drift [TOL]    net only: fail (exit 3) when the measured
 *                          transit drifts more than TOL (default 0.15)
 *                          from the Kruskal-Snir prediction; exit 2
 *                          when the config violates model assumptions
 *
 * Host-parallelism options (`net` and `app`):
 *   --net-serial   keep the network's arrival phase on one thread
 *                  (output is byte-identical; A/B timing knob)
 *   --serial-departures  replace the receiver-pull departure window
 *                  with the legacy sender sweep (byte-identical; A/B
 *                  timing knob)
 *   --threads N    host threads for the compute phase (0 = all cores,
 *                  default 1); results are identical for every N
 *
 * Live inspection (`net` and `app`; see DESIGN.md "Live inspection"):
 *   --inspect ADDR serve the gdb-style inspection protocol on ADDR (an
 *                  all-digit string is a TCP port on 127.0.0.1, 0 picks
 *                  an ephemeral one; anything else is a unix-socket
 *                  path).  The run starts paused until a client
 *                  attaches and resumes; attach with
 *                  `ultrascope --attach ADDR`.
 *
 * Unknown flags are rejected (exit 2) -- a typo must never silently
 * become a default-configured experiment.
 *
 * `net` options:
 *   --rate R       offered load, messages/PE/cycle (default 0.1)
 *   --hot F        fraction of traffic to one hot F&A cell (default 0)
 *   --cycles C     measured cycles (default 10000)
 *   --closed W     closed loop with window W instead of open loop
 *   --seed S       traffic RNG seed (default 1); lets a sweep point be
 *                  reproduced as a standalone run
 *
 * `app` options:
 *   --app NAME     tred2 | weather | multigrid | montecarlo | sssp | accounts
 *   --pes P        cooperating PEs (default 16)
 *   --n N          problem size (matrix order / grid side / particles /
 *                  vertices; default depends on app)
 *   --contexts K   hardware multiprogramming fold (tred2 only)
 *
 * `model` options:
 *   --ports --k --m --d as above; sweeps p and prints the curve
 *   --best --rate R --budget T   cheapest config with T(R) <= budget
 *
 * Examples:
 *   ultrasim net --ports 1024 --k 4 --m 4 --d 2 --uniform --rate 0.15
 *   ultrasim net --hot 1 --policy none        # hot-spot, no combining
 *   ultrasim app --app tred2 --pes 16 --n 32 --contexts 2
 *   ultrasim model --ports 4096 --k 4 --m 4 --d 2
 *   ultrasim pack --ports 4096
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>

#include "analytic/drift.h"
#include "analytic/packaging.h"
#include "analytic/queueing.h"
#include "apps/accounts.h"
#include "apps/montecarlo.h"
#include "apps/multigrid.h"
#include "apps/shortest_path.h"
#include "apps/tred2.h"
#include "apps/weather.h"
#include "common/table.h"
#include "core/machine.h"
#include "inspect/inspector.h"
#include "inspect/server.h"
#include "mem/address_hash.h"
#include "net/pni.h"
#include "net/trace.h"
#include "net/traffic.h"
#include "obs/event_trace.h"
#include "obs/latency.h"
#include "obs/model_check.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "par/shard.h"
#include "prof/profiler.h"
#include "par/tick_engine.h"
#include "sweep/net_run.h"
#include "sweep/serve.h"

namespace
{

using namespace ultra;

void usage();

/** Minimal flag parser: --name value and boolean --name. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                std::fprintf(stderr, "unexpected argument '%s'\n",
                             argv[i]);
                usage();
                std::exit(2);
            }
            key = key.substr(2);
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                values_[key] = argv[++i];
            } else {
                values_[key] = "";
            }
        }
    }

    /**
     * Reject (exit 2 + usage) any parsed flag not in @p allowed: a typo
     * must never silently run a default-configured experiment.
     */
    void
    rejectUnknown(const char *cmd,
                  std::initializer_list<const char *> allowed) const
    {
        for (const auto &kv : values_) {
            bool known = false;
            for (const char *name : allowed)
                known = known || kv.first == name;
            if (!known) {
                std::fprintf(stderr,
                             "ultrasim %s: unknown flag '--%s'\n", cmd,
                             kv.first.c_str());
                usage();
                std::exit(2);
            }
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtod(it->second.c_str(), nullptr);
    }

    std::string
    getString(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

  private:
    std::map<std::string, std::string> values_;
};

/** The shared observability options (--stats-json, --latency-json...). */
struct ObsOptions
{
    std::string statsJson;
    bool statsPretty = false;
    Cycle sampleEvery = 0;
    std::string sampleOut;
    std::string traceEvents;
    std::string latencyJson;
    std::string profJson;
    std::string heatmapCsv;
    bool checkDrift = false;
    double driftTolerance = analytic::kDefaultDriftTolerance;

    static ObsOptions
    from(const Args &args)
    {
        ObsOptions o;
        o.statsJson = args.getString("stats-json", "");
        o.statsPretty = args.has("stats-pretty");
        o.sampleEvery = args.getInt("sample-every", 0);
        o.sampleOut = args.getString("sample-out", "");
        o.traceEvents = args.getString("trace-events", "");
        o.latencyJson = args.getString("latency-json", "");
        o.profJson = args.getString("prof-json", "");
        o.heatmapCsv = args.getString("heatmap-csv", "");
        o.checkDrift = args.has("check-drift");
        o.driftTolerance = args.getDouble(
            "check-drift", analytic::kDefaultDriftTolerance);
        if (o.driftTolerance <= 0.0)
            o.driftTolerance = analytic::kDefaultDriftTolerance;
        return o;
    }

    bool sampling() const { return sampleEvery != 0; }

    /** Any option that needs the latency observatory attached. */
    bool
    latencyWanted() const
    {
        return !latencyJson.empty() || !heatmapCsv.empty() || checkDrift;
    }

    /** CLI stats dumps are sorted so repeated runs diff cleanly; the
     *  library default (insertion order, pretty) is golden-pinned and
     *  unchanged. */
    obs::DumpOptions
    dumpOptions() const
    {
        return {.sortKeys = true, .pretty = statsPretty};
    }
};

/** Splice `, "key": value` before the closing brace of @p object. */
std::string
spliceJson(const std::string &object, const std::string &key,
           const std::string &value)
{
    const std::size_t end = object.rfind('}');
    if (end == std::string::npos)
        return object;
    return object.substr(0, end) + ", \"" + key + "\": " + value + "}" +
           object.substr(end + 1);
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

net::NetSimConfig
netConfigFrom(const Args &args)
{
    net::NetSimConfig cfg;
    cfg.numPorts = static_cast<std::uint32_t>(args.getInt("ports", 256));
    cfg.k = static_cast<unsigned>(args.getInt("k", 2));
    cfg.m = static_cast<unsigned>(args.getInt("m", cfg.k));
    cfg.d = static_cast<unsigned>(args.getInt("d", 1));
    cfg.queueCapacityPackets =
        static_cast<std::uint32_t>(args.getInt("queue", 15));
    cfg.mmPendingCapacityPackets = cfg.queueCapacityPackets;
    cfg.sizing = args.has("uniform") ? net::PacketSizing::Uniform
                                     : net::PacketSizing::ByContent;
    cfg.burroughsKill = args.has("burroughs");
    cfg.idealParacomputer = args.has("ideal");
    cfg.parallelDeparture = !args.has("serial-departures");
    const std::string policy = args.getString("policy", "full");
    cfg.combinePolicy = policy == "none" ? net::CombinePolicy::None
                        : policy == "homo"
                            ? net::CombinePolicy::Homogeneous
                            : net::CombinePolicy::Full;
    if (!cfg.valid()) {
        std::fprintf(stderr, "invalid network configuration (ports "
                             "must be a power of k, queues >= one "
                             "message)\n");
        std::exit(2);
    }
    return cfg;
}

/** Flags shared by `net` and `app` (observability + parallelism). */
#define ULTRASIM_OBS_FLAGS                                              \
    "stats-json", "stats-pretty", "sample-every", "sample-out",         \
        "trace-events", "latency-json", "prof-json", "heatmap-csv",     \
        "check-drift", "threads", "net-serial", "serial-departures",    \
        "inspect"

/**
 * Create the inspection server + engine for --inspect ADDR (exit 2 on
 * a bad address).  The run starts paused until a client resumes it, so
 * a fast run cannot finish before the client attaches.
 */
std::unique_ptr<inspect::Inspector>
makeInspector(const Args &args,
              std::unique_ptr<inspect::InspectServer> &server,
              const inspect::Targets &targets)
{
    if (!args.has("inspect"))
        return nullptr;
    const std::string addr = args.getString("inspect", "");
    if (addr.empty()) {
        std::fprintf(stderr,
                     "--inspect needs a port or unix-socket path\n");
        std::exit(2);
    }
    std::string err;
    server = inspect::InspectServer::listen(addr, err);
    if (server == nullptr) {
        std::fprintf(stderr, "--inspect %s: %s\n", addr.c_str(),
                     err.c_str());
        std::exit(2);
    }
    std::fprintf(stderr,
                 "inspect: listening on %s (paused until a client "
                 "attaches and resumes)\n",
                 server->where().c_str());
    return std::make_unique<inspect::Inspector>(*server, targets, true);
}

int
cmdNet(const Args &args)
{
    args.rejectUnknown(
        "net", {"ports", "k", "m", "d", "queue", "policy", "burroughs",
                "ideal", "uniform", "rate", "hot", "cycles", "closed",
                "seed", ULTRASIM_OBS_FLAGS});
    const ObsOptions obs = ObsOptions::from(args);

    // The experiment itself -- construction order, warmup/reset/
    // measure loop, model cross-check -- lives in sweep::NetExperiment
    // so `ultrasim net`, the ultrasweep workers and `ultrasim serve`
    // produce identical bytes by sharing the code, not by replicating
    // it.  This function only maps flags onto the spec and wires the
    // byte-neutral observability hooks.
    sweep::NetPointSpec spec;
    spec.net = netConfigFrom(args);
    spec.traffic.activePes = spec.net.numPorts;
    spec.traffic.rate = args.getDouble("rate", 0.1);
    spec.traffic.hotFraction = args.getDouble("hot", 0.0);
    spec.traffic.hotAddr = 13;
    spec.traffic.addrSpaceWords = std::uint64_t{spec.net.numPorts} << 8;
    if (args.has("closed")) {
        spec.traffic.closedLoop = true;
        spec.traffic.window =
            static_cast<unsigned>(args.getInt("closed", 1));
    }
    spec.traffic.seed = args.getInt("seed", 1);
    spec.pni.maxOutstanding = spec.traffic.closedLoop ? 0 : 8;
    spec.cycles = args.getInt("cycles", 10000);
    spec.threads = static_cast<unsigned>(args.getInt("threads", 1));
    spec.netSerial = args.has("net-serial");
    spec.wantLatency = obs.latencyWanted();
    spec.driftTolerance = obs.driftTolerance;

    sweep::NetExperiment exp(spec);
    net::Network &network = exp.network();
    const Cycle cycles = spec.cycles;

    obs::EventTrace trace;
    obs::Sampler sampler;
    if (obs.sampling()) {
        for (unsigned s = 0; s < network.topology().stages(); ++s) {
            const std::string stage =
                "net.stage" + std::to_string(s) + ".";
            sampler.addRegistryColumn(exp.registry(),
                                      stage + "tomm_pkts");
            sampler.addRegistryColumn(exp.registry(),
                                      stage + "wb_entries");
            sampler.addRegistryColumn(exp.registry(),
                                      stage + "combines");
        }
        sampler.addRegistryColumn(exp.registry(), "pni.outstanding");
        sampler.addRegistryColumn(exp.registry(),
                                  "net.mni_pending_pkts");
    }

    // Wall-clock self-profiler (opt-in): times the injection episodes
    // and the network's sub-phases; the simulated run is byte-identical
    // with or without it.
    std::unique_ptr<prof::Profiler> prof;
    if (!obs.profJson.empty())
        prof = std::make_unique<prof::Profiler>();

    std::unique_ptr<inspect::InspectServer> iserver;
    inspect::Targets itargets;
    itargets.network = &network;
    itargets.memory = &exp.memory();
    itargets.hash = &exp.addressHash();
    itargets.registry = &exp.registry();
    itargets.latency = exp.latency();
    itargets.prof = prof.get();
    std::unique_ptr<inspect::Inspector> inspector =
        makeInspector(args, iserver, itargets);
    if (inspector && exp.modelApplicable()) {
        inspector->setDriftProbe([&exp, &network,
                                  acfg = exp.modelConfig(),
                                  ports = spec.net.numPorts]() {
            const auto &s = network.stats();
            const Cycle elapsed = network.now() - exp.statsResetAt();
            if (elapsed == 0 || s.injected == 0 ||
                s.oneWayTransit.count() == 0) {
                return 0.0;
            }
            const double p = static_cast<double>(s.injected) /
                             static_cast<double>(elapsed) / ports;
            return analytic::transitDrift(acfg, p,
                                          s.oneWayTransit.mean());
        });
    }

    sweep::NetExperiment::Hooks hooks;
    if (inspector) {
        hooks.atCycle = [&inspector](Cycle now) {
            inspector->atCycleBoundary(now);
        };
    }
    if (obs.sampling()) {
        hooks.sampler = &sampler;
        hooks.sampleEvery = obs.sampleEvery;
    }
    if (!obs.traceEvents.empty())
        hooks.trace = &trace;
    hooks.prof = prof.get();
    exp.run(hooks);

    const auto &stats = network.stats();
    const obs::ModelCrossCheck &model = exp.model();
    const bool model_ok = exp.modelOk();
    obs::LatencyObservatory *const latency = exp.latency();

    // The run is over: let an attached client take final dumps (the
    // model.* stats are registered by now), then write the files.
    if (inspector)
        inspector->finishRun(network.now(), true);

    if (!obs.statsJson.empty())
        writeTextFile(obs.statsJson, exp.statsJson(obs.dumpOptions()));
    if (!obs.sampleOut.empty())
        sampler.save(obs.sampleOut);
    if (!obs.traceEvents.empty())
        trace.save(obs.traceEvents);
    if (latency != nullptr) {
        if (!obs.latencyJson.empty()) {
            writeTextFile(obs.latencyJson,
                          spliceJson(latency->summaryJson(), "model",
                                     model.json()) +
                              "\n");
        }
        if (!obs.heatmapCsv.empty())
            writeTextFile(obs.heatmapCsv, latency->heatmapCsv());
    }
    if (prof)
        writeTextFile(obs.profJson, prof->reportJson() + "\n");
    std::printf("ports %u, k=%u m=%u d=%u, policy %s%s\n",
                spec.net.numPorts, spec.net.k, spec.net.m, spec.net.d,
                args.getString("policy", "full").c_str(),
                spec.net.burroughsKill ? " (kill-on-conflict)" : "");
    std::printf("injected:        %llu (%.3f/PE/cycle)\n",
                static_cast<unsigned long long>(stats.injected),
                static_cast<double>(stats.injected) / cycles /
                    spec.net.numPorts);
    std::printf("delivered:       %llu\n",
                static_cast<unsigned long long>(stats.delivered));
    std::printf("combined:        %llu (%.1f%% of injected)\n",
                static_cast<unsigned long long>(stats.combined),
                stats.injected ? 100.0 * stats.combined /
                                     static_cast<double>(stats.injected)
                               : 0.0);
    std::printf("killed:          %llu\n",
                static_cast<unsigned long long>(stats.killed));
    std::printf("one-way transit: %.2f cycles (max %.0f)\n",
                stats.oneWayTransit.mean(), stats.oneWayTransit.max());
    std::printf("round trip:      %.2f cycles (p50 %llu, p95 %llu, "
                "p99 %llu)\n",
                stats.roundTrip.mean(),
                static_cast<unsigned long long>(
                    stats.roundTripHist.percentile(0.5)),
                static_cast<unsigned long long>(
                    stats.roundTripHist.percentile(0.95)),
                static_cast<unsigned long long>(
                    stats.roundTripHist.percentile(0.99)));
    std::printf("access time:     %.2f cycles (incl. issue wait)\n",
                exp.pni().stats().accessTime.mean());
    std::printf("MM queue wait:   %.2f cycles\n",
                stats.mmQueueWait.mean());
    if (latency) {
        std::printf("latency records: %llu delivered, %llu combined "
                    "away, %llu MM cycles saved, %llu invariant "
                    "violations\n",
                    static_cast<unsigned long long>(
                        latency->delivered()),
                    static_cast<unsigned long long>(
                        latency->combinedDelivered()),
                    static_cast<unsigned long long>(
                        latency->mmCyclesSaved()),
                    static_cast<unsigned long long>(
                        latency->violations()));
    }
    const obs::ModelReport &mr = model.report();
    if (mr.applicable) {
        std::printf("model transit:   %.2f cycles predicted vs %.2f "
                    "measured (drift %+.1f%%)\n",
                    mr.predictedTransit, mr.measuredTransit,
                    100.0 * mr.drift);
    }
    if (obs.checkDrift) {
        if (!mr.applicable) {
            std::fprintf(stderr,
                         "--check-drift: configuration violates model "
                         "assumptions (need --uniform --policy none "
                         "--queue 0, open-loop uniform traffic)\n");
            return 2;
        }
        if (!model_ok)
            return 3;
    }
    return 0;
}

int
cmdApp(const Args &args)
{
    args.rejectUnknown("app", {"app", "pes", "n", "contexts",
                               ULTRASIM_OBS_FLAGS});
    const std::string app = args.getString("app", "tred2");
    const auto pes =
        static_cast<std::uint32_t>(args.getInt("pes", 16));
    core::MachineConfig mcfg = core::MachineConfig::small(
        std::max<std::uint32_t>(16, pes), 2);
    mcfg.net.combinePolicy = net::CombinePolicy::Full;
    mcfg.threads = static_cast<unsigned>(args.getInt("threads", 1));
    mcfg.shardedNetwork = !args.has("net-serial");
    mcfg.net.parallelDeparture = !args.has("serial-departures");

    Cycle cycles = 0;
    pe::PeStats totals;
    double access = 0.0;
    core::Machine machine(mcfg);
    const ObsOptions obs = ObsOptions::from(args);
    obs::EventTrace trace;
    if (!obs.traceEvents.empty())
        machine.attachEventTrace(&trace);
    if (obs.latencyWanted())
        machine.enableLatency();
    if (!obs.profJson.empty())
        machine.enableProfiling();
    if (obs.sampling())
        machine.enableSampling(obs.sampleEvery);
    std::unique_ptr<inspect::InspectServer> iserver;
    inspect::Targets itargets;
    itargets.network = &machine.network();
    itargets.memory = &machine.memory();
    itargets.hash = &machine.addressHash();
    itargets.registry = &machine.registry();
    itargets.latency = machine.latency();
    itargets.prof = machine.profiler();
    std::unique_ptr<inspect::Inspector> inspector =
        makeInspector(args, iserver, itargets);
    if (inspector) {
        machine.setCycleHook([&inspector](Cycle now) {
            inspector->atCycleBoundary(now);
        });
    }
    if (app == "tred2") {
        const std::size_t n = args.getInt("n", 32);
        const auto contexts =
            static_cast<std::uint32_t>(args.getInt("contexts", 1));
        const auto result = apps::tred2Parallel(
            machine, pes, apps::randomSymmetric(n, 1), n, contexts);
        cycles = result.cycles;
        totals = result.peTotals;
        std::printf("tred2: N=%zu, %u workers on %u PEs, "
                    "waiting/worker %.0f cycles\n",
                    n, pes, pes / contexts, result.waitingTime);
    } else if (app == "weather") {
        apps::WeatherConfig wcfg;
        wcfg.rows = args.getInt("n", 32);
        wcfg.cols = wcfg.rows;
        wcfg.steps = 4;
        const auto result = apps::weatherParallel(
            machine, pes, wcfg, apps::weatherInitial(wcfg, 1));
        cycles = result.cycles;
        totals = result.peTotals;
        std::printf("weather: %zux%zu grid, %u steps, %u PEs\n",
                    wcfg.rows, wcfg.cols, wcfg.steps, pes);
    } else if (app == "multigrid") {
        apps::MultigridConfig gcfg;
        gcfg.level = static_cast<unsigned>(args.getInt("n", 5));
        const auto result = apps::multigridParallel(
            machine, pes, gcfg, apps::multigridRhs(gcfg.level));
        cycles = result.cycles;
        totals = result.peTotals;
        std::printf("multigrid: level %u (%zu^2 grid), residual "
                    "%.2e, %u PEs\n",
                    gcfg.level, apps::multigridSide(gcfg.level),
                    result.residualNorm, pes);
    } else if (app == "montecarlo") {
        apps::MonteCarloConfig ccfg;
        ccfg.particles = args.getInt("n", 512);
        const auto result =
            apps::monteCarloParallel(machine, pes, ccfg);
        cycles = result.cycles;
        totals = result.peTotals;
        std::printf("montecarlo: %llu particles, %u PEs\n",
                    static_cast<unsigned long long>(ccfg.particles),
                    pes);
    } else if (app == "accounts") {
        apps::AccountsConfig acfg;
        acfg.numAccounts = static_cast<std::uint32_t>(
            args.getInt("n", 64));
        const auto result = apps::runAccounts(machine, pes, acfg);
        cycles = result.cycles;
        totals = machine.aggregatePeStats();
        std::printf("accounts: %u accounts, total %lld (conserved: "
                    "%s), %u PEs\n",
                    acfg.numAccounts,
                    static_cast<long long>(result.total),
                    result.total == static_cast<Word>(
                                        acfg.numAccounts) *
                                        acfg.initialBalance
                        ? "yes"
                        : "NO",
                    pes);
    } else if (app == "sssp") {
        const std::size_t n = args.getInt("n", 64);
        const apps::Graph graph = apps::randomGraph(n, 4, 1);
        const auto result = apps::shortestPathsParallel(
            machine, pes, graph, 0, true);
        cycles = result.cycles;
        totals = result.peTotals;
        std::printf("sssp: %zu vertices, %zu edges, %llu "
                    "relaxations, %u PEs\n",
                    graph.numVertices, graph.numEdges(),
                    static_cast<unsigned long long>(
                        result.relaxations),
                    pes);
    } else {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 2;
    }
    if (inspector)
        inspector->finishRun(machine.now(), true);
    access = machine.pni().stats().accessTime.mean();

    std::printf("simulated time:  %llu cycles\n",
                static_cast<unsigned long long>(cycles));
    std::printf("instructions:    %llu (%.2f mem refs/instr, %.3f "
                "shared)\n",
                static_cast<unsigned long long>(totals.instructions),
                static_cast<double>(totals.sharedRefs +
                                    totals.privateRefs) /
                    static_cast<double>(totals.instructions),
                static_cast<double>(totals.sharedRefs) /
                    static_cast<double>(totals.instructions));
    std::printf("CM access time:  %.2f cycles\n", access);
    std::printf("combined:        %llu requests\n",
                static_cast<unsigned long long>(
                    machine.network().stats().combined));
    std::printf("\n%s", machine.statsReport().c_str());

    if (!obs.statsJson.empty()) {
        writeTextFile(obs.statsJson,
                      machine.statsJson(obs.dumpOptions()));
    }
    if (!obs.sampleOut.empty())
        machine.sampler().save(obs.sampleOut);
    if (!obs.traceEvents.empty())
        trace.save(obs.traceEvents);
    if (machine.latencyEnabled()) {
        if (!obs.latencyJson.empty())
            writeTextFile(obs.latencyJson, machine.latencyJson() + "\n");
        if (!obs.heatmapCsv.empty()) {
            writeTextFile(obs.heatmapCsv,
                          machine.latency()->heatmapCsv());
        }
    }
    if (machine.profilingEnabled()) {
        writeTextFile(obs.profJson,
                      machine.profiler()->reportJson() + "\n");
    }
    return 0;
}

int
cmdModel(const Args &args)
{
    args.rejectUnknown("model",
                       {"ports", "k", "m", "d", "best", "rate",
                        "budget"});
    if (args.has("best")) {
        // Cheapest configuration meeting a latency budget at a load.
        const double p = args.getDouble("rate", 0.2);
        const double budget = args.getDouble("budget", 20.0);
        const std::uint64_t n = args.getInt("ports", 4096);
        const auto best = analytic::cheapestConfiguration(n, p, budget);
        if (best.d == 0) {
            std::printf("no configuration meets T <= %.1f at p = %.2f "
                        "for n = %llu\n",
                        budget, p, static_cast<unsigned long long>(n));
            return 1;
        }
        std::printf("cheapest feasible: k=%u m=%u d=%u  (T = %.2f "
                    "cycles, cost C = %.3f, capacity %.2f)\n",
                    best.k, best.m, best.d,
                    analytic::transitTime(best, p), best.costFactor(),
                    best.capacity());
        return 0;
    }
    analytic::NetworkConfig cfg;
    cfg.n = args.getInt("ports", 4096);
    cfg.k = static_cast<unsigned>(args.getInt("k", 4));
    cfg.m = static_cast<unsigned>(args.getInt("m", cfg.k));
    cfg.d = static_cast<unsigned>(args.getInt("d", 1));
    if (!cfg.valid()) {
        std::fprintf(stderr, "invalid model configuration\n");
        return 2;
    }
    std::printf("T(p) for n=%llu k=%u m=%u d=%u "
                "(capacity %.3f msgs/PE/cycle, cost C=%.3f)\n",
                static_cast<unsigned long long>(cfg.n), cfg.k, cfg.m,
                cfg.d, cfg.capacity(), cfg.costFactor());
    TextTable table;
    table.setHeader({"p", "transit (cycles)"});
    const auto curve =
        analytic::sweepTransitTime(cfg, cfg.capacity() * 0.98, 14);
    for (std::size_t i = 0; i < curve.load.size(); ++i) {
        table.addRow({TextTable::fmt(curve.load[i], 3),
                      curve.transit[i] < 1e30
                          ? TextTable::fmt(curve.transit[i], 2)
                          : "inf"});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdTrace(const Args &args)
{
    args.rejectUnknown("trace",
                       {"record", "replay", "app", "pes", "n", "ports",
                        "k", "m", "d", "queue", "policy", "burroughs",
                        "ideal", "uniform"});
    if (args.has("record")) {
        const std::string path = args.getString("record", "trace.csv");
        const std::string app = args.getString("app", "tred2");
        const auto pes =
            static_cast<std::uint32_t>(args.getInt("pes", 16));
        core::MachineConfig mcfg = core::MachineConfig::small(
            std::max<std::uint32_t>(64, pes), 2);
        core::Machine machine(mcfg);
        net::TraceRecorder recorder(machine.pni());
        if (app == "tred2") {
            const std::size_t n = args.getInt("n", 32);
            (void)apps::tred2Parallel(
                machine, pes, apps::randomSymmetric(n, 1), n);
        } else if (app == "weather") {
            apps::WeatherConfig wcfg;
            wcfg.rows = args.getInt("n", 32);
            wcfg.cols = wcfg.rows;
            (void)apps::weatherParallel(
                machine, pes, wcfg, apps::weatherInitial(wcfg, 1));
        } else {
            std::fprintf(stderr, "trace --record supports tred2 and "
                                 "weather\n");
            return 2;
        }
        const net::Trace trace = recorder.take();
        net::saveTrace(trace, path);
        std::printf("recorded %zu requests over %llu cycles to %s "
                    "(intensity %.4f/PE/cycle)\n",
                    trace.entries.size(),
                    static_cast<unsigned long long>(trace.duration()),
                    path.c_str(), trace.intensity(pes));
        return 0;
    }
    if (args.has("replay")) {
        const std::string path = args.getString("replay", "trace.csv");
        const net::Trace trace = net::loadTrace(path);
        const net::NetSimConfig ncfg = netConfigFrom(args);
        mem::MemoryConfig mcfg;
        mcfg.numModules = ncfg.numPorts;
        mcfg.wordsPerModule = 1 << 14;
        mem::MemorySystem memory(mcfg);
        net::Network network(ncfg, memory);
        mem::AddressHash hash(log2Exact(memory.totalWords()), true);
        net::PniArray pni(net::PniConfig{}, network, hash);
        const auto result = net::replayTrace(trace, pni, network);
        std::printf("replayed %llu requests: mean access %.2f cycles, "
                    "one-way %.2f, finished at %llu\n",
                    static_cast<unsigned long long>(result.requests),
                    result.meanAccessTime, result.meanOneWay,
                    static_cast<unsigned long long>(result.finishedAt));
        return 0;
    }
    std::fprintf(stderr, "trace needs --record FILE or --replay FILE\n");
    return 2;
}

int
cmdPack(const Args &args)
{
    args.rejectUnknown("pack", {"ports"});
    const auto pkg =
        analytic::packageMachine(args.getInt("ports", 4096));
    std::printf("PEs: %llu\nchips: %llu PE + %llu MM + %llu network "
                "= %llu total (%.1f%% network)\n",
                static_cast<unsigned long long>(pkg.numPe),
                static_cast<unsigned long long>(pkg.peChips),
                static_cast<unsigned long long>(pkg.mmChips),
                static_cast<unsigned long long>(pkg.networkChips),
                static_cast<unsigned long long>(pkg.totalChips()),
                100.0 * pkg.networkFraction());
    if (pkg.peBoards) {
        std::printf("boards: %llu PE boards of %llu chips, %llu MM "
                    "boards of %llu chips\n",
                    static_cast<unsigned long long>(pkg.peBoards),
                    static_cast<unsigned long long>(
                        pkg.chipsPerPeBoard),
                    static_cast<unsigned long long>(pkg.mmBoards),
                    static_cast<unsigned long long>(
                        pkg.chipsPerMmBoard));
    }
    return 0;
}

int
cmdServe(int argc, char **argv)
{
    // `ultrasim serve ADDR` (also spelled `ultrasim --serve ADDR`):
    // the persistent job server; see src/sweep/serve.h for the
    // protocol.
    if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr,
                     "serve needs a port or unix-socket path\n");
        usage();
        return 2;
    }
    const std::string addr = argv[2];
    const Args args(argc, argv, 3);
    args.rejectUnknown("serve", {"threads", "cache"});
    sweep::ServeOptions opts;
    opts.threads = static_cast<unsigned>(args.getInt("threads", 1));
    opts.cacheCapacity = args.getInt("cache", 4);
    return sweep::serveMain(addr, opts);
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: ultrasim <net|app|model|pack|trace> "
                 "[options]\n"
                 "       ultrasim serve <port|unix-socket> "
                 "[--threads N] [--cache N]\n"
                 "see the comment at the top of tools/ultrasim.cc\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "serve" || cmd == "--serve")
        return cmdServe(argc, argv);
    const Args args(argc, argv, 2);
    if (cmd == "net")
        return cmdNet(args);
    if (cmd == "app")
        return cmdApp(args);
    if (cmd == "model")
        return cmdModel(args);
    if (cmd == "pack")
        return cmdPack(args);
    if (cmd == "trace")
        return cmdTrace(args);
    usage();
    return 2;
}
