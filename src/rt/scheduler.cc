#include "scheduler.h"

namespace ultra::rt
{

Scheduler::Scheduler(unsigned workers, std::size_t queue_capacity)
    : queue_(queue_capacity)
{
    ULTRA_ASSERT(workers > 0);
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler()
{
    wait();
    stopping_.store(true, std::memory_order_release);
    for (auto &worker : workers_)
        worker.join();
}

void
Scheduler::submit(TaskFn task)
{
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    auto *boxed = new TaskFn(std::move(task));
    while (!queue_.tryInsert(boxed))
        std::this_thread::yield();
}

void
Scheduler::wait()
{
    while (outstanding_.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
}

void
Scheduler::workerLoop()
{
    while (true) {
        TaskFn *boxed = nullptr;
        if (queue_.tryDelete(&boxed)) {
            (*boxed)();
            delete boxed;
            executed_.fetch_add(1, std::memory_order_acq_rel);
            outstanding_.fetch_sub(1, std::memory_order_acq_rel);
            continue;
        }
        if (stopping_.load(std::memory_order_acquire))
            return;
        std::this_thread::yield();
    }
}

} // namespace ultra::rt
