/**
 * @file
 * Self-scheduling parallel loop on host threads (section 2.2).
 *
 * The host-side twin of core::parallelFor: worker threads claim chunks
 * of an iteration space by fetch-and-adding a shared counter.  No
 * pre-partitioning, no scheduler lock, automatic balance for uneven
 * iteration costs -- the idiom the paper's "shared array index"
 * example introduces.
 */

#ifndef ULTRA_RT_PARALLEL_FOR_H
#define ULTRA_RT_PARALLEL_FOR_H

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/log.h"

namespace ultra::rt
{

/**
 * Cover [0, total) with @p threads workers claiming @p chunk indices
 * at a time; @p body is invoked as body(begin, end) on claimed ranges.
 * Blocks until the space is exhausted.
 */
template <typename Body>
void
parallelFor(std::uint64_t total, std::uint64_t chunk, unsigned threads,
            Body body)
{
    ULTRA_ASSERT(chunk >= 1 && threads >= 1);
    std::atomic<std::uint64_t> counter{0};
    auto worker = [&] {
        while (true) {
            const std::uint64_t begin =
                counter.fetch_add(chunk, std::memory_order_acq_rel);
            if (begin >= total)
                return;
            const std::uint64_t end = std::min(begin + chunk, total);
            body(begin, end);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();
}

} // namespace ultra::rt

#endif // ULTRA_RT_PARALLEL_FOR_H
