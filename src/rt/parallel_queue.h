/**
 * @file
 * The appendix's critical-section-free parallel queue on host threads.
 *
 * A circular array with fetch-and-add index dispensers and per-cell
 * round counters; the occupancy bounds #Qi / #Qu are guarded by the
 * test-increment-retest (TIR) and test-decrement-retest (TDR) sequences
 * so a full or empty queue is detected without any critical section.
 * When the queue is neither empty nor full, any number of inserts and
 * deletes proceed completely in parallel -- contrast with the
 * mutex-protected queue in the queue_throughput bench.
 */

#ifndef ULTRA_RT_PARALLEL_QUEUE_H
#define ULTRA_RT_PARALLEL_QUEUE_H

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/log.h"

namespace ultra::rt
{

/** MPMC FIFO queue with fetch-and-add coordination. */
template <typename T>
class ParallelQueue
{
  public:
    explicit ParallelQueue(std::size_t capacity)
        : capacity_(static_cast<std::int64_t>(capacity)),
          cells_(capacity)
    {
        ULTRA_ASSERT(capacity > 0);
    }

    ParallelQueue(const ParallelQueue &) = delete;
    ParallelQueue &operator=(const ParallelQueue &) = delete;

    /** Appendix Insert; false = QueueOverflow (queue full). */
    bool
    tryInsert(T value)
    {
        if (!tir(upper_, capacity_))
            return false;
        const std::uint64_t my =
            insPtr_.fetch_add(1, std::memory_order_acq_rel);
        Cell &cell = cells_[my % cells_.size()];
        const std::uint64_t round = my / cells_.size();
        // Wait turn at MyI: the cell must have been emptied `round`
        // times before this round's insert may overwrite it.
        while (cell.delSeq.load(std::memory_order_acquire) != round)
            std::this_thread::yield();
        cell.value = std::move(value);
        cell.insSeq.store(round + 1, std::memory_order_release);
        lower_.fetch_add(1, std::memory_order_acq_rel);
        return true;
    }

    /** Appendix Delete; false = QueueUnderflow (queue empty). */
    bool
    tryDelete(T *value_out)
    {
        if (!tdr(lower_))
            return false;
        const std::uint64_t my =
            delPtr_.fetch_add(1, std::memory_order_acq_rel);
        Cell &cell = cells_[my % cells_.size()];
        const std::uint64_t round = my / cells_.size();
        // Wait turn at MyD: this round's insert must have completed.
        while (cell.insSeq.load(std::memory_order_acquire) != round + 1)
            std::this_thread::yield();
        *value_out = std::move(cell.value);
        cell.delSeq.store(round + 1, std::memory_order_release);
        upper_.fetch_add(-1, std::memory_order_acq_rel);
        return true;
    }

    /** #Qi: items certainly present (active operations may differ). */
    std::int64_t
    occupancyLowerBound() const
    {
        return lower_.load(std::memory_order_acquire);
    }

    /** #Qu: items at most present. */
    std::int64_t
    occupancyUpperBound() const
    {
        return upper_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return cells_.size(); }

  private:
    struct alignas(64) Cell
    {
        std::atomic<std::uint64_t> insSeq{0};
        std::atomic<std::uint64_t> delSeq{0};
        T value{};
    };

    /** Test-increment-retest on an occupancy bound. */
    static bool
    tir(std::atomic<std::int64_t> &s, std::int64_t bound)
    {
        // Initial test: prevents unbounded drift of S under contention.
        if (s.load(std::memory_order_acquire) + 1 > bound)
            return false;
        if (s.fetch_add(1, std::memory_order_acq_rel) + 1 <= bound)
            return true;
        s.fetch_add(-1, std::memory_order_acq_rel);
        return false;
    }

    /** Test-decrement-retest. */
    static bool
    tdr(std::atomic<std::int64_t> &s)
    {
        if (s.load(std::memory_order_acquire) - 1 < 0)
            return false;
        if (s.fetch_add(-1, std::memory_order_acq_rel) - 1 >= 0)
            return true;
        s.fetch_add(1, std::memory_order_acq_rel);
        return false;
    }

    std::int64_t capacity_;
    alignas(64) std::atomic<std::int64_t> upper_{0}; //!< #Qu
    alignas(64) std::atomic<std::int64_t> lower_{0}; //!< #Qi
    alignas(64) std::atomic<std::uint64_t> insPtr_{0};
    alignas(64) std::atomic<std::uint64_t> delPtr_{0};
    std::vector<Cell> cells_;
};

} // namespace ultra::rt

#endif // ULTRA_RT_PARALLEL_QUEUE_H
