/**
 * @file
 * A totally decentralized task scheduler (section 2.3).
 *
 * "A highly concurrent queue management technique ... can be used to
 * implement a totally decentralized operating system scheduler": worker
 * threads share one critical-section-free ParallelQueue of ready tasks;
 * there is no dispatcher thread and no scheduler lock.  Tasks may
 * submit further tasks; wait() returns when the system is quiescent.
 */

#ifndef ULTRA_RT_SCHEDULER_H
#define ULTRA_RT_SCHEDULER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "rt/parallel_queue.h"

namespace ultra::rt
{

/** Decentralized work-queue scheduler. */
class Scheduler
{
  public:
    using TaskFn = std::function<void()>;

    /**
     * @param workers        Worker threads to spawn.
     * @param queue_capacity Ready-queue slots; submit() blocks (spins)
     *                       while the queue is full.
     */
    explicit Scheduler(unsigned workers,
                       std::size_t queue_capacity = 4096);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Enqueue a task; callable from any thread, including tasks. */
    void submit(TaskFn task);

    /** Block until every submitted task (transitively) completed. */
    void wait();

    /** Tasks executed so far. */
    std::uint64_t executed() const
    {
        return executed_.load(std::memory_order_acquire);
    }

  private:
    void workerLoop();

    ParallelQueue<TaskFn *> queue_;
    std::atomic<std::uint64_t> outstanding_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<bool> stopping_{false};
    std::vector<std::thread> workers_;
};

} // namespace ultra::rt

#endif // ULTRA_RT_SCHEDULER_H
