/**
 * @file
 * Sense-reversing fetch-and-add barrier on host threads.
 *
 * The arrival count is a single fetch-and-add per PE -- on the
 * Ultracomputer these combine in the network, so a barrier of thousands
 * of PEs costs one memory access time; on a host CPU they serialize in
 * the coherence fabric, which the benchmarks make visible.
 */

#ifndef ULTRA_RT_BARRIER_H
#define ULTRA_RT_BARRIER_H

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/log.h"

namespace ultra::rt
{

/** Reusable barrier for a fixed set of participants. */
class Barrier
{
  public:
    explicit Barrier(std::uint32_t parties) : parties_(parties)
    {
        ULTRA_ASSERT(parties > 0);
    }

    Barrier(const Barrier &) = delete;
    Barrier &operator=(const Barrier &) = delete;

    /** Block until all parties arrive; reusable across episodes. */
    void
    arriveAndWait()
    {
        const std::uint32_t my_sense =
            1 - sense_.load(std::memory_order_acquire);
        const std::uint32_t arrived =
            count_.fetch_add(1, std::memory_order_acq_rel);
        if (arrived == parties_ - 1) {
            count_.store(0, std::memory_order_relaxed);
            sense_.store(my_sense, std::memory_order_release);
        } else {
            while (sense_.load(std::memory_order_acquire) != my_sense)
                std::this_thread::yield();
        }
    }

    std::uint32_t parties() const { return parties_; }

  private:
    std::uint32_t parties_;
    alignas(64) std::atomic<std::uint32_t> count_{0};
    alignas(64) std::atomic<std::uint32_t> sense_{0};
};

} // namespace ultra::rt

#endif // ULTRA_RT_BARRIER_H
