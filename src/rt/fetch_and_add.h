/**
 * @file
 * Fetch-and-add and fetch-and-phi on host hardware (sections 2.2, 2.4).
 *
 * The ultra::rt library mirrors the simulated coordination primitives on
 * real threads: modern CPUs provide the indivisible fetch-and-add the
 * paper postulated (without the combining network, so hot locations do
 * serialize in the cache-coherence fabric -- exactly the contrast the
 * hotspot benches measure).
 *
 * fetchPhi() realizes the general fetch-and-phi of section 2.4 with a
 * compare-exchange loop; swap and test-and-set fall out as the paper's
 * special cases pi2 and (pi2, TRUE).
 */

#ifndef ULTRA_RT_FETCH_AND_ADD_H
#define ULTRA_RT_FETCH_AND_ADD_H

#include <atomic>
#include <concepts>

namespace ultra::rt
{

/** F&A(V, e): return old V and replace it by V + e, indivisibly. */
template <typename T>
T
fetchAdd(std::atomic<T> &v, T e)
{
    return v.fetch_add(e, std::memory_order_acq_rel);
}

/**
 * Fetch-and-phi: return old V and replace it by phi(V, e).  When phi is
 * associative and commutative the final value is independent of the
 * serialization order chosen.
 */
template <typename T, typename Phi>
    requires std::invocable<Phi, T, T>
T
fetchPhi(std::atomic<T> &v, T e, Phi phi)
{
    T old_value = v.load(std::memory_order_relaxed);
    while (!v.compare_exchange_weak(old_value, phi(old_value, e),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
        // old_value reloaded by the failed exchange.
    }
    return old_value;
}

/** Swap(L, V) = Fetch-and-pi2(V, L). */
template <typename T>
T
swap(std::atomic<T> &v, T value)
{
    return v.exchange(value, std::memory_order_acq_rel);
}

/** TestAndSet(V) = Fetch-and-pi2(V, TRUE). */
inline bool
testAndSet(std::atomic<bool> &v)
{
    return v.exchange(true, std::memory_order_acq_rel);
}

} // namespace ultra::rt

#endif // ULTRA_RT_FETCH_AND_ADD_H
