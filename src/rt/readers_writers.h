/**
 * @file
 * The completely-parallel readers-writers solution on host threads
 * (section 2.3; Gottlieb, Lubachevsky and Rudolph).
 *
 * During periods when no writers are active, readers execute no serial
 * code at all: entry and exit are one fetch-and-add each.  Writers are
 * inherently serial (the problem specification demands it) and take
 * FIFO tickets among themselves.
 */

#ifndef ULTRA_RT_READERS_WRITERS_H
#define ULTRA_RT_READERS_WRITERS_H

#include <atomic>
#include <cstdint>
#include <thread>

namespace ultra::rt
{

/** Reader-preference readers-writers lock built on fetch-and-add. */
class ReadersWriters
{
  public:
    ReadersWriters() = default;
    ReadersWriters(const ReadersWriters &) = delete;
    ReadersWriters &operator=(const ReadersWriters &) = delete;

    void
    readerLock()
    {
        while (true) {
            readers_.fetch_add(1, std::memory_order_acq_rel);
            if (writer_.load(std::memory_order_acquire) == 0)
                return; // fully parallel entry
            readers_.fetch_add(-1, std::memory_order_acq_rel);
            while (writer_.load(std::memory_order_acquire) != 0)
                std::this_thread::yield();
        }
    }

    void
    readerUnlock()
    {
        readers_.fetch_add(-1, std::memory_order_acq_rel);
    }

    void
    writerLock()
    {
        const std::uint64_t ticket =
            wticket_.fetch_add(1, std::memory_order_acq_rel);
        while (wserving_.load(std::memory_order_acquire) != ticket)
            std::this_thread::yield();
        writer_.store(1, std::memory_order_release);
        while (readers_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }

    void
    writerUnlock()
    {
        writer_.store(0, std::memory_order_release);
        wserving_.fetch_add(1, std::memory_order_acq_rel);
    }

    /** Active readers (diagnostics). */
    std::int64_t
    activeReaders() const
    {
        return readers_.load(std::memory_order_acquire);
    }

  private:
    alignas(64) std::atomic<std::int64_t> readers_{0};
    alignas(64) std::atomic<std::uint32_t> writer_{0};
    alignas(64) std::atomic<std::uint64_t> wticket_{0};
    alignas(64) std::atomic<std::uint64_t> wserving_{0};
};

} // namespace ultra::rt

#endif // ULTRA_RT_READERS_WRITERS_H
