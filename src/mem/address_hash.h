/**
 * @file
 * Virtual-to-physical address hashing (section 3.1.4).
 *
 * "Introducing a hashing function when translating the virtual address
 * to a physical address assures that this unfavorable situation [all PEs
 * hitting one MM] occurs with probability approaching zero as N
 * increases."
 *
 * The memory module serving a physical address is its low lg N bits, so
 * the hash must spread consecutive virtual addresses across modules while
 * remaining an exact bijection (every virtual word has exactly one
 * physical home).
 */

#ifndef ULTRA_MEM_ADDRESS_HASH_H
#define ULTRA_MEM_ADDRESS_HASH_H

#include "common/types.h"

namespace ultra::mem
{

/** Bijective virtual-to-physical address scrambler. */
class AddressHash
{
  public:
    /**
     * @param addr_bits Width of the address space (words); the hash is a
     *                  bijection on [0, 2^addr_bits).
     * @param enabled   When false, translation is the identity (the
     *                  ablation baseline).
     */
    explicit AddressHash(unsigned addr_bits, bool enabled = true);

    /** Translate a virtual word address to its physical home. */
    Addr toPhysical(Addr vaddr) const;

    /** Invert the translation (used by checkers and tests). */
    Addr toVirtual(Addr paddr) const;

    bool enabled() const { return enabled_; }
    unsigned addrBits() const { return addrBits_; }

  private:
    /** One round of an invertible xorshift-multiply mix. */
    Addr mix(Addr x) const;
    Addr unmix(Addr x) const;

    unsigned addrBits_;
    bool enabled_;
    Addr mask_;
};

} // namespace ultra::mem

#endif // ULTRA_MEM_ADDRESS_HASH_H
