/**
 * @file
 * The fetch-and-phi operation family (sections 2.2 and 2.4).
 *
 * Fetch-and-phi(V, e) returns the old value of V and replaces it with
 * phi(V, e).  The paper shows load, store, swap and test-and-set are all
 * degenerate or special cases:
 *
 *   phi(a, b) = a + b      -> fetch-and-add
 *   phi(a, b) = a          -> load  (pi1; e immaterial)
 *   phi(a, b) = b          -> store / swap (pi2)
 *   phi(a, b) = TRUE       -> test-and-set (pi2 with b = TRUE)
 *   phi(a, b) = a & b, a | b, min, max -- other associative phis
 *
 * When phi is associative, requests can be combined in the network
 * switches; when also commutative, the final memory value is independent
 * of the serialization order.
 */

#ifndef ULTRA_MEM_FETCH_PHI_H
#define ULTRA_MEM_FETCH_PHI_H

#include <cstdint>

#include "common/types.h"

namespace ultra::mem
{

/** Memory operation kinds carried by network messages. */
enum class Op : std::uint8_t {
    Load,       //!< fetch-and-pi1: returns V, leaves V unchanged
    Store,      //!< fetch-and-pi2, result discarded: V <- e
    FetchAdd,   //!< V' = V + e, returns old V
    Swap,       //!< V' = e, returns old V (fetch-and-pi2)
    TestAndSet, //!< V' = TRUE (1), returns old V
    FetchAnd,   //!< V' = V & e, returns old V
    FetchOr,    //!< V' = V | e, returns old V
    FetchMax,   //!< V' = max(V, e), returns old V
    FetchMin,   //!< V' = min(V, e), returns old V
};

/** Human-readable op name. */
const char *opName(Op op);

/** True when the op carries a data operand to memory. */
bool opCarriesData(Op op);

/** True when the reply carries a data result back to the PE. */
bool opReturnsData(Op op);

/**
 * True when phi is associative, i.e. two requests phi(.,e) and phi(.,f)
 * can be combined in a switch into a single request (section 3.1.3 and
 * the "straightforward generalization" remark).
 */
bool opCombinable(Op op);

/** Apply phi: the new memory value phi(old, operand). */
Word applyPhi(Op op, Word old_value, Word operand);

/**
 * Combine two like requests phi(X,e) then phi(X,f) into one request
 * phi(X, g): returns g such that applying phi(.,g) once equals applying
 * phi(.,e) then phi(.,f).  Only valid for combinable ops.
 *
 *   FetchAdd: g = e + f         Swap / Store / TestAndSet: g = f
 *   FetchAnd: g = e & f         FetchOr: g = e | f
 *   FetchMax: g = max(e, f)     FetchMin: g = min(e, f)
 *   Load:     g immaterial
 */
Word combineOperands(Op op, Word e, Word f);

/**
 * Derive the reply for the *second* request of a combined pair.  When a
 * switch combined "R-old = phi(X,e); R-new = phi(X,f)" and the combined
 * request returns Y (the serialization value for R-old), the value for
 * R-new is phi(Y, e):
 *
 *   FetchAdd: Y + e       Load: Y        Swap/Store/TAS: e
 *   FetchAnd: Y & e       FetchOr: Y | e FetchMax/Min: max/min(Y, e)
 */
Word decombineReply(Op op, Word returned, Word first_operand);

} // namespace ultra::mem

#endif // ULTRA_MEM_FETCH_PHI_H
