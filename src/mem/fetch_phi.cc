#include "fetch_phi.h"

#include <algorithm>

#include "common/log.h"

namespace ultra::mem
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Load: return "Load";
      case Op::Store: return "Store";
      case Op::FetchAdd: return "FetchAdd";
      case Op::Swap: return "Swap";
      case Op::TestAndSet: return "TestAndSet";
      case Op::FetchAnd: return "FetchAnd";
      case Op::FetchOr: return "FetchOr";
      case Op::FetchMax: return "FetchMax";
      case Op::FetchMin: return "FetchMin";
    }
    return "?";
}

bool
opCarriesData(Op op)
{
    return op != Op::Load && op != Op::TestAndSet;
}

bool
opReturnsData(Op op)
{
    return op != Op::Store;
}

bool
opCombinable(Op op)
{
    // All the phis implemented here are associative; Load is trivially
    // combinable (Load-Load rule of section 3.1.2).
    (void)op;
    return true;
}

Word
applyPhi(Op op, Word old_value, Word operand)
{
    switch (op) {
      case Op::Load: return old_value;
      case Op::Store: return operand;
      case Op::FetchAdd: return old_value + operand;
      case Op::Swap: return operand;
      case Op::TestAndSet: return 1;
      case Op::FetchAnd: return old_value & operand;
      case Op::FetchOr: return old_value | operand;
      case Op::FetchMax: return std::max(old_value, operand);
      case Op::FetchMin: return std::min(old_value, operand);
    }
    panic("applyPhi: bad op");
}

Word
combineOperands(Op op, Word e, Word f)
{
    switch (op) {
      case Op::Load: return 0;
      case Op::Store: return f;
      case Op::FetchAdd: return e + f;
      case Op::Swap: return f;
      case Op::TestAndSet: return 0;
      case Op::FetchAnd: return e & f;
      case Op::FetchOr: return e | f;
      case Op::FetchMax: return std::max(e, f);
      case Op::FetchMin: return std::min(e, f);
    }
    panic("combineOperands: bad op");
}

Word
decombineReply(Op op, Word returned, Word first_operand)
{
    switch (op) {
      case Op::Load: return returned;
      case Op::Store: return 0;
      case Op::FetchAdd: return returned + first_operand;
      case Op::Swap: return first_operand;
      case Op::TestAndSet: return 1;
      case Op::FetchAnd: return returned & first_operand;
      case Op::FetchOr: return returned | first_operand;
      case Op::FetchMax: return std::max(returned, first_operand);
      case Op::FetchMin: return std::min(returned, first_operand);
    }
    panic("decombineReply: bad op");
}

} // namespace ultra::mem
