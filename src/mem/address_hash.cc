#include "address_hash.h"

#include "common/log.h"

namespace ultra::mem
{

namespace
{

// Odd multiplier (invertible mod 2^64) from splitmix64.
constexpr std::uint64_t kMul = 0xbf58476d1ce4e5b9ULL;

// Modular inverse of an odd constant mod 2^64 by Newton iteration:
// each step doubles the number of correct low bits.
constexpr std::uint64_t
inverseMod2to64(std::uint64_t a)
{
    std::uint64_t x = a; // correct to 3 bits for odd a
    for (int i = 0; i < 6; ++i)
        x *= 2 - a * x;
    return x;
}

constexpr std::uint64_t kMulInv = inverseMod2to64(kMul);
static_assert(kMul * kMulInv == 1, "bad modular inverse");

} // namespace

AddressHash::AddressHash(unsigned addr_bits, bool enabled)
    : addrBits_(addr_bits), enabled_(enabled)
{
    ULTRA_ASSERT(addr_bits >= 1 && addr_bits <= 62);
    mask_ = (Addr{1} << addr_bits) - 1;
}

Addr
AddressHash::mix(Addr x) const
{
    // xor-fold the high half into the low half, then multiply by an odd
    // constant; both steps are bijections on Z/2^b when followed by a
    // mask, because the xor uses only bits above the fold point.
    const unsigned half = addrBits_ / 2 + 1;
    x ^= (x >> half);
    x = (x * kMul) & mask_;
    x ^= (x >> half);
    x = (x * kMul) & mask_;
    return x;
}

Addr
AddressHash::unmix(Addr x) const
{
    const unsigned half = addrBits_ / 2 + 1;
    x = (x * kMulInv) & mask_;
    x ^= (x >> half);
    x = (x * kMulInv) & mask_;
    x ^= (x >> half);
    return x;
}

Addr
AddressHash::toPhysical(Addr vaddr) const
{
    ULTRA_ASSERT(vaddr <= mask_, "virtual address out of range");
    if (!enabled_)
        return vaddr;
    return mix(vaddr);
}

Addr
AddressHash::toVirtual(Addr paddr) const
{
    ULTRA_ASSERT(paddr <= mask_, "physical address out of range");
    if (!enabled_)
        return paddr;
    return unmix(paddr);
}

} // namespace ultra::mem
