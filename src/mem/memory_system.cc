#include "memory_system.h"

#include "check/phase_check.h"

#include <algorithm>

#include "common/log.h"
#include "obs/registry.h"

namespace ultra::mem
{

MemorySystem::MemorySystem(const MemoryConfig &cfg)
    : cfg_(cfg),
      words_(cfg.numModules * cfg.wordsPerModule, 0),
      moduleLoad_(cfg.numModules, 0), faOps_(cfg.numModules, 0)
{
    ULTRA_ASSERT(cfg.numModules >= 1);
    ULTRA_ASSERT(cfg.wordsPerModule >= 1);
}

std::size_t
MemorySystem::index(Addr paddr) const
{
    const std::size_t idx = static_cast<std::size_t>(paddr);
    ULTRA_ASSERT(idx < words_.size(), "physical address ", paddr,
                 " out of range (", words_.size(), " words)");
    return idx;
}

Word
MemorySystem::execute(Op op, Addr paddr, Word operand)
{
    // MM execution happens in MNI service inside Network::tick; a
    // compute-phase call would bypass the serialization the MNIs model.
    ULTRA_CHECK_COMMIT_ONLY("mem.execute");
    const std::size_t idx = index(paddr);
    const Word old_value = words_[idx];
    words_[idx] = applyPhi(op, old_value, operand);
    const MMId mm = moduleOf(paddr);
    ++moduleLoad_[mm];
    if (op != Op::Load && op != Op::Store)
        ++faOps_[mm];
    return old_value;
}

Word
MemorySystem::peek(Addr paddr) const
{
    return words_[index(paddr)];
}

void
MemorySystem::poke(Addr paddr, Word value)
{
    words_[index(paddr)] = value;
}

void
MemorySystem::resetStats()
{
    std::fill(moduleLoad_.begin(), moduleLoad_.end(), 0);
    std::fill(faOps_.begin(), faOps_.end(), 0);
}

std::uint64_t
MemorySystem::totalExecuted() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t l : moduleLoad_)
        total += l;
    return total;
}

double
MemorySystem::loadImbalance() const
{
    const std::uint64_t total = totalExecuted();
    if (total == 0)
        return 0.0;
    const std::uint64_t peak =
        *std::max_element(moduleLoad_.begin(), moduleLoad_.end());
    return static_cast<double>(peak) *
           static_cast<double>(moduleLoad_.size()) /
           static_cast<double>(total);
}

void
MemorySystem::registerStats(obs::Registry &registry,
                            const std::string &prefix) const
{
    registry.addScalar(prefix + ".executed",
                       [this] {
                           return static_cast<double>(totalExecuted());
                       },
                       "requests executed across all modules");
    registry.addScalar(prefix + ".fa_ops",
                       [this] {
                           std::uint64_t total = 0;
                           for (const std::uint64_t n : faOps_)
                               total += n;
                           return static_cast<double>(total);
                       },
                       "fetch-and-phi executions (all modules)");
    registry.addScalar(prefix + ".imbalance",
                       [this] { return loadImbalance(); },
                       "hottest module load / mean load");

    // Per-module series are precious for hashing studies but would
    // swamp the dump on the 4096-module machine; register them only
    // when the module count is modest.
    constexpr std::uint32_t kPerModuleLimit = 256;
    if (cfg_.numModules > kPerModuleLimit)
        return;
    for (MMId mm = 0; mm < cfg_.numModules; ++mm) {
        const std::string base =
            prefix + ".module" + std::to_string(mm) + ".";
        registry.addScalar(base + "load",
                           [this, mm] {
                               return static_cast<double>(
                                   moduleLoad_[mm]);
                           });
        registry.addScalar(base + "fa_ops",
                           [this, mm] {
                               return static_cast<double>(faOps_[mm]);
                           });
    }
}

} // namespace ultra::mem
