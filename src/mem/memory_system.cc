#include "memory_system.h"

#include "common/log.h"

namespace ultra::mem
{

MemorySystem::MemorySystem(const MemoryConfig &cfg)
    : cfg_(cfg),
      words_(cfg.numModules * cfg.wordsPerModule, 0),
      moduleLoad_(cfg.numModules, 0)
{
    ULTRA_ASSERT(cfg.numModules >= 1);
    ULTRA_ASSERT(cfg.wordsPerModule >= 1);
}

std::size_t
MemorySystem::index(Addr paddr) const
{
    const std::size_t idx = static_cast<std::size_t>(paddr);
    ULTRA_ASSERT(idx < words_.size(), "physical address ", paddr,
                 " out of range (", words_.size(), " words)");
    return idx;
}

Word
MemorySystem::execute(Op op, Addr paddr, Word operand)
{
    const std::size_t idx = index(paddr);
    const Word old_value = words_[idx];
    words_[idx] = applyPhi(op, old_value, operand);
    ++moduleLoad_[moduleOf(paddr)];
    return old_value;
}

Word
MemorySystem::peek(Addr paddr) const
{
    return words_[index(paddr)];
}

void
MemorySystem::poke(Addr paddr, Word value)
{
    words_[index(paddr)] = value;
}

void
MemorySystem::resetStats()
{
    std::fill(moduleLoad_.begin(), moduleLoad_.end(), 0);
}

} // namespace ultra::mem
