/**
 * @file
 * Central shared memory: N memory modules behind memory-network
 * interfaces (sections 3.1.3, 3.5).
 *
 * The MMs are "standard components"; the MNI adds the adder needed by
 * fetch-and-add.  Requests to one MM are serviced one at a time with a
 * fixed access latency; the module owning a physical word address is its
 * low lg N bits (hashing at the PNI keeps modules equally loaded).
 *
 * Threading: all MM execution happens via the MNI service inside
 * Network::tick, i.e. in the sequential commit phase of the src/par
 * compute/commit contract (DESIGN.md) -- MemorySystem itself needs no
 * synchronization.
 */

#ifndef ULTRA_MEM_MEMORY_SYSTEM_H
#define ULTRA_MEM_MEMORY_SYSTEM_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/fetch_phi.h"

namespace ultra::obs
{
class Registry;
} // namespace ultra::obs

namespace ultra::mem
{

/** Parameters of the central memory. */
struct MemoryConfig
{
    /** Number of memory modules (matches the PE count). */
    std::uint32_t numModules = 64;
    /** Words of storage per module. */
    std::size_t wordsPerModule = 1 << 16;
    /** Cycles one module needs to service one request. */
    Cycle accessTime = 2;
};

/**
 * The array of memory modules with per-module fetch-and-phi service.
 *
 * This class holds only the *storage and functional* behaviour; the
 * timing (per-module service queue and busy time) lives in the MNI model
 * inside ultra::net so the network can exert backpressure on it.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &cfg);

    /** Memory module that owns physical address @p paddr. */
    MMId moduleOf(Addr paddr) const
    {
        return static_cast<MMId>(paddr % cfg_.numModules);
    }

    /** Word offset of @p paddr within its module. */
    std::size_t offsetOf(Addr paddr) const
    {
        return static_cast<std::size_t>(paddr / cfg_.numModules);
    }

    /** Total addressable words. */
    std::size_t totalWords() const
    {
        return cfg_.wordsPerModule * cfg_.numModules;
    }

    /**
     * Functionally execute one request at its owning module: returns the
     * old value and applies phi.  This is the MNI adder of section 3.1.3.
     */
    Word execute(Op op, Addr paddr, Word operand);

    /** Direct read for checkers, loaders and tests (no timing). */
    Word peek(Addr paddr) const;

    /** Direct write for initialization (no timing). */
    void poke(Addr paddr, Word value);

    /** Per-module count of executed requests (for load-balance studies). */
    const std::vector<std::uint64_t> &moduleLoad() const
    {
        return moduleLoad_;
    }

    /** Per-module count of fetch-and-phi executions (ops with an MNI
     *  adder cycle: everything but plain Load / Store). */
    const std::vector<std::uint64_t> &moduleFaOps() const
    {
        return faOps_;
    }

    /** Requests executed across all modules. */
    std::uint64_t totalExecuted() const;

    /** Hottest module's load as a multiple of the mean (1.0 = perfectly
     *  balanced, 0.0 with no load yet). */
    double loadImbalance() const;

    /**
     * Register totals, the imbalance gauge, and -- for machines small
     * enough to keep the dump readable -- per-module loads
     * ("<prefix>.module12.load", "<prefix>.module12.fa_ops") under
     * "<prefix>." (see Network::registerStats).
     */
    void registerStats(obs::Registry &registry,
                       const std::string &prefix) const;

    void resetStats();

    const MemoryConfig &config() const { return cfg_; }

  private:
    std::size_t index(Addr paddr) const;

    MemoryConfig cfg_;
    std::vector<Word> words_;
    std::vector<std::uint64_t> moduleLoad_;
    std::vector<std::uint64_t> faOps_;
};

} // namespace ultra::mem

#endif // ULTRA_MEM_MEMORY_SYSTEM_H
