#include "par/tick_engine.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "check/phase_check.h"
#include "common/log.h"
#include "prof/profiler.h"

namespace ultra::par
{

TickEngine::TickEngine(unsigned threads)
    : threads_(threads), start_(threads), finish_(threads),
      stage_(threads)
{
    ULTRA_ASSERT(threads >= 1);
    workers_.reserve(threads_ - 1);
    for (unsigned shard = 1; shard < threads_; ++shard)
        workers_.emplace_back([this, shard] { workerLoop(shard); });
}

TickEngine::~TickEngine()
{
    if (workers_.empty())
        return;
    stop_ = true;
    task_ = nullptr;
    start_.arriveAndWait();
    for (std::thread &worker : workers_)
        worker.join();
}

void
TickEngine::runShard(unsigned shard)
{
    ULTRA_CHECK_BIND_SHARD(shard);
    prof::Profiler *prof = prof_;
    if (prof != nullptr)
        prof->shardBegin(shard);
    try {
        (*task_)(shard);
    } catch (...) {
        std::lock_guard<std::mutex> lock(failureMutex_);
        failures_.emplace_back(shard, std::current_exception());
    }
    if (prof != nullptr)
        prof->shardEnd(shard);
    ULTRA_CHECK_UNBIND_SHARD();
}

void
TickEngine::workerLoop(unsigned shard)
{
    for (;;) {
        start_.arriveAndWait();
        if (stop_)
            return;
        runShard(shard);
        finish_.arriveAndWait();
    }
}

namespace
{

std::string
exceptionText(const std::exception_ptr &eptr)
{
    try {
        std::rethrow_exception(eptr);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

} // namespace

void
TickEngine::rethrowFailures()
{
    // The finish barrier has joined: no worker touches failures_ now.
    if (failures_.empty())
        return;
    std::vector<std::pair<unsigned, std::exception_ptr>> failures;
    failures.swap(failures_);
    if (failures.size() == 1)
        std::rethrow_exception(failures.front().second);
    // Several shards failed in the same episode: losing all but an
    // arbitrary one hides the real fault (e.g. a cascade where shard 0
    // reports a symptom of shard 2's bug).  Report every one.
    // ultralint: allow(UL-DET-005): shard ids are unique per episode,
    // so the single key is already a total order.
    std::sort(failures.begin(), failures.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    std::ostringstream os;
    os << failures.size() << " shards failed:";
    for (const auto &[shard, eptr] : failures)
        os << " [shard " << shard << "] " << exceptionText(eptr) << ";";
    throw std::runtime_error(os.str());
}

void
TickEngine::setProfiler(prof::Profiler *profiler)
{
    // Size the per-shard slots up front so shardBegin never resizes
    // from a worker thread.
    if (profiler != nullptr)
        profiler->configureThreads(threads_);
    prof_ = profiler;
}

void
TickEngine::forEachShard(const std::function<void(unsigned)> &fn)
{
    if (threads_ == 1) {
        ULTRA_CHECK_BIND_SHARD(0);
        if (prof_ != nullptr) {
            prof_->episodeBegin();
            prof_->shardBegin(0);
        }
        try {
            fn(0);
        } catch (...) {
            ULTRA_CHECK_UNBIND_SHARD();
            throw;
        }
        if (prof_ != nullptr) {
            prof_->shardEnd(0);
            prof_->episodeEnd();
        }
        ULTRA_CHECK_UNBIND_SHARD();
        return;
    }
    if (prof_ != nullptr)
        prof_->episodeBegin();
    task_ = &fn;
    start_.arriveAndWait();
    runShard(0);
    finish_.arriveAndWait();
    task_ = nullptr;
    // The finish barrier has joined: every shard's slot writes are
    // ordered before this read of the episode's work times.
    if (prof_ != nullptr)
        prof_->episodeEnd();
    rethrowFailures();
}

} // namespace ultra::par
