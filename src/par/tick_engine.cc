#include "par/tick_engine.h"

#include "common/log.h"

namespace ultra::par
{

TickEngine::TickEngine(unsigned threads)
    : threads_(threads), start_(threads), finish_(threads)
{
    ULTRA_ASSERT(threads >= 1);
    workers_.reserve(threads_ - 1);
    for (unsigned shard = 1; shard < threads_; ++shard)
        workers_.emplace_back([this, shard] { workerLoop(shard); });
}

TickEngine::~TickEngine()
{
    if (workers_.empty())
        return;
    stop_ = true;
    task_ = nullptr;
    start_.arriveAndWait();
    for (std::thread &worker : workers_)
        worker.join();
}

void
TickEngine::runShard(unsigned shard)
{
    try {
        (*task_)(shard);
    } catch (...) {
        std::lock_guard<std::mutex> lock(failureMutex_);
        if (!failure_)
            failure_ = std::current_exception();
    }
}

void
TickEngine::workerLoop(unsigned shard)
{
    for (;;) {
        start_.arriveAndWait();
        if (stop_)
            return;
        runShard(shard);
        finish_.arriveAndWait();
    }
}

void
TickEngine::forEachShard(const std::function<void(unsigned)> &fn)
{
    if (threads_ == 1) {
        fn(0);
        return;
    }
    task_ = &fn;
    start_.arriveAndWait();
    runShard(0);
    finish_.arriveAndWait();
    task_ = nullptr;
    if (failure_) {
        std::exception_ptr failure = failure_;
        failure_ = nullptr;
        std::rethrow_exception(failure);
    }
}

} // namespace ultra::par
