/**
 * @file
 * Static partitioning of an indexed component list into worker shards.
 *
 * A ShardPlan divides `items` component indices into `shards` contiguous
 * ranges whose sizes differ by at most one (the first `items % shards`
 * ranges get the extra element).  Contiguity matters twice over: shard
 * ownership can be computed in O(1) without a lookup table, and each
 * worker walks a dense slice of the component array, which is the
 * cache-friendly layout for the per-cycle compute sweep.
 *
 * Shards beyond the item count come out empty rather than being an
 * error, so callers can size the engine from --threads without first
 * clamping to the component count.
 */

#ifndef ULTRA_PAR_SHARD_H
#define ULTRA_PAR_SHARD_H

#include <cstddef>

#include "common/log.h"

namespace ultra::par
{

/** Half-open index range [begin, end) owned by one shard. */
struct ShardRange {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/** Near-equal contiguous partition of [0, items) into `shards` ranges. */
class ShardPlan
{
  public:
    ShardPlan() = default;

    static ShardPlan
    contiguous(std::size_t items, unsigned shards)
    {
        ULTRA_ASSERT(shards > 0);
        ShardPlan plan;
        plan.items_ = items;
        plan.shards_ = shards;
        plan.base_ = items / shards;
        plan.rem_ = items % shards;
        return plan;
    }

    std::size_t items() const { return items_; }
    unsigned shards() const { return shards_; }

    /** Range owned by shard `s` (empty when more shards than items). */
    ShardRange
    range(unsigned s) const
    {
        ULTRA_ASSERT(s < shards_);
        ShardRange r;
        if (s < rem_) {
            r.begin = s * (base_ + 1);
            r.end = r.begin + base_ + 1;
        } else {
            r.begin = rem_ * (base_ + 1) + (s - rem_) * base_;
            r.end = r.begin + base_;
        }
        return r;
    }

    /** Shard owning item `i`; inverse of range(). */
    unsigned
    shardOf(std::size_t i) const
    {
        ULTRA_ASSERT(i < items_);
        const std::size_t fat = rem_ * (base_ + 1);
        if (i < fat)
            return static_cast<unsigned>(i / (base_ + 1));
        return static_cast<unsigned>(rem_ + (i - fat) / base_);
    }

  private:
    std::size_t items_ = 0;
    unsigned shards_ = 1;
    std::size_t base_ = 0;
    std::size_t rem_ = 0;
};

} // namespace ultra::par

#endif // ULTRA_PAR_SHARD_H
