/**
 * @file
 * Static partitioning of an indexed component list into worker shards.
 *
 * A ShardPlan divides `items` component indices into `shards` contiguous
 * ranges whose sizes differ by at most one (the first `items % shards`
 * ranges get the extra element).  Contiguity matters twice over: shard
 * ownership can be computed in O(1) without a lookup table, and each
 * worker walks a dense slice of the component array, which is the
 * cache-friendly layout for the per-cycle compute sweep.
 *
 * Shards beyond the item count come out empty rather than being an
 * error, so callers can size the engine from --threads without first
 * clamping to the component count.
 */

#ifndef ULTRA_PAR_SHARD_H
#define ULTRA_PAR_SHARD_H

#include <cstddef>

#include "common/log.h"

namespace ultra::par
{

/** Half-open index range [begin, end) owned by one shard. */
struct ShardRange {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/** Near-equal contiguous partition of [0, items) into `shards` ranges. */
class ShardPlan
{
  public:
    ShardPlan() = default;

    static ShardPlan
    contiguous(std::size_t items, unsigned shards)
    {
        ULTRA_ASSERT(shards > 0);
        ShardPlan plan;
        plan.items_ = items;
        plan.shards_ = shards;
        plan.base_ = items / shards;
        plan.rem_ = items % shards;
        return plan;
    }

    std::size_t items() const { return items_; }
    unsigned shards() const { return shards_; }

    /** Range owned by shard `s` (empty when more shards than items). */
    ShardRange
    range(unsigned s) const
    {
        ULTRA_ASSERT(s < shards_);
        ShardRange r;
        if (s < rem_) {
            r.begin = s * (base_ + 1);
            r.end = r.begin + base_ + 1;
        } else {
            r.begin = rem_ * (base_ + 1) + (s - rem_) * base_;
            r.end = r.begin + base_;
        }
        return r;
    }

    /** Shard owning item `i`; inverse of range(). */
    unsigned
    shardOf(std::size_t i) const
    {
        ULTRA_ASSERT(i < items_);
        const std::size_t fat = rem_ * (base_ + 1);
        if (i < fat)
            return static_cast<unsigned>(i / (base_ + 1));
        return static_cast<unsigned>(rem_ + (i - fat) / base_);
    }

  private:
    std::size_t items_ = 0;
    unsigned shards_ = 1;
    std::size_t base_ = 0;
    std::size_t rem_ = 0;
};

/**
 * Stage-aware shard topology for the network tick: partitions the
 * switches of a (copy, stage) grid into fixed *units*, each a
 * contiguous column range of one stage of one network copy.
 *
 * The unit count is a pure function of the topology — never of the
 * host thread count — so any per-unit state (message pools, RNG or id
 * streams, staging outboxes) evolves identically no matter how many
 * TickEngine slots the units are later spread across.  That invariance
 * is what makes the sharded network tick bit-identical for every
 * `--threads N` (see DESIGN.md "Sharding the network tick").
 *
 * Units are numbered (copy-major, then stage, then column group), so a
 * plain index walk visits them in (copy, stage, column) order — the
 * canonical merge order of the commit phase.
 */
class StageColumnPlan
{
  public:
    StageColumnPlan() = default;

    /**
     * @param copies        network copies d
     * @param stages        switch stages per copy
     * @param columns       switches per stage
     * @param group_target  desired column groups per stage (clamped to
     *                      [1, columns]); fixed per topology.
     */
    static StageColumnPlan
    build(unsigned copies, unsigned stages, std::uint32_t columns,
          unsigned group_target)
    {
        ULTRA_ASSERT(copies > 0 && stages > 0 && columns > 0);
        StageColumnPlan plan;
        plan.copies_ = copies;
        plan.stages_ = stages;
        plan.columns_ = columns;
        unsigned groups = group_target == 0 ? 1 : group_target;
        if (groups > columns)
            groups = static_cast<unsigned>(columns);
        plan.columnPlan_ = ShardPlan::contiguous(columns, groups);
        return plan;
    }

    unsigned copies() const { return copies_; }
    unsigned stages() const { return stages_; }
    unsigned groupsPerStage() const { return columnPlan_.shards(); }

    /** Total units = copies x stages x groupsPerStage. */
    std::size_t
    units() const
    {
        return static_cast<std::size_t>(copies_) * stages_ *
               groupsPerStage();
    }

    /** Unit owning switch column @p col of @p stage in @p copy. */
    std::size_t
    unitOf(unsigned copy, unsigned stage, std::uint32_t col) const
    {
        ULTRA_ASSERT(copy < copies_ && stage < stages_ &&
                     col < columns_);
        return (static_cast<std::size_t>(copy) * stages_ + stage) *
                   groupsPerStage() +
               columnPlan_.shardOf(col);
    }

    unsigned
    copyOf(std::size_t unit) const
    {
        return static_cast<unsigned>(unit /
                                     (stages_ * groupsPerStage()));
    }

    unsigned
    stageOf(std::size_t unit) const
    {
        return static_cast<unsigned>((unit / groupsPerStage()) %
                                     stages_);
    }

    /** Column range [begin, end) owned by @p unit. */
    ShardRange
    columnsOf(std::size_t unit) const
    {
        return columnPlan_.range(
            static_cast<unsigned>(unit % groupsPerStage()));
    }

  private:
    unsigned copies_ = 1;
    unsigned stages_ = 1;
    std::uint32_t columns_ = 1;
    ShardPlan columnPlan_ = ShardPlan::contiguous(1, 1);
};

} // namespace ultra::par

#endif // ULTRA_PAR_SHARD_H
