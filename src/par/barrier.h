/**
 * @file
 * Reusable phase barrier for the host-parallel tick engine.
 *
 * Unlike ultra::rt::Barrier (a *simulated-runtime* primitive whose cost
 * the benchmarks measure), this barrier is simulator infrastructure: it
 * separates the compute and commit phases of a simulated cycle, so it
 * must be cheap when workers arrive nearly together (the common case at
 * a few microseconds per phase) and must not burn a core when they do
 * not.  Arrivals spin briefly on the epoch word, then park on it with
 * std::atomic::wait (a futex on Linux); the releasing thread bumps the
 * epoch and notifies.
 *
 * The epoch scheme makes the barrier reusable with no quiescent period:
 * the last arriver resets the arrival count *before* publishing the new
 * epoch, so a fast thread re-entering the next episode can never observe
 * stale state.
 */

#ifndef ULTRA_PAR_BARRIER_H
#define ULTRA_PAR_BARRIER_H

#include <atomic>
#include <cstdint>

#include "common/log.h"

namespace ultra::par
{

/** Reusable fork-join barrier for a fixed set of participants. */
class PhaseBarrier
{
  public:
    explicit PhaseBarrier(unsigned parties) : parties_(parties)
    {
        ULTRA_ASSERT(parties > 0);
    }

    PhaseBarrier(const PhaseBarrier &) = delete;
    PhaseBarrier &operator=(const PhaseBarrier &) = delete;

    /** Block until all parties arrive; reusable across episodes. */
    void
    arriveAndWait()
    {
        const std::uint32_t epoch =
            epoch_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            epoch_.store(epoch + 1, std::memory_order_release);
            epoch_.notify_all();
            return;
        }
        // Spin first: in a tick loop the other shards are microseconds
        // away, and a futex round trip costs more than the whole phase.
        for (int spin = 0; spin < 4096; ++spin) {
            if (epoch_.load(std::memory_order_acquire) != epoch)
                return;
        }
        while (epoch_.load(std::memory_order_acquire) == epoch)
            epoch_.wait(epoch, std::memory_order_acquire);
    }

    unsigned parties() const { return parties_; }

  private:
    const unsigned parties_;
    alignas(64) std::atomic<std::uint32_t> arrived_{0};
    alignas(64) std::atomic<std::uint32_t> epoch_{0};
};

} // namespace ultra::par

#endif // ULTRA_PAR_BARRIER_H
