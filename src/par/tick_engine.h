/**
 * @file
 * Fork-join tick engine: a fixed worker pool that executes one shard
 * function per thread per episode, with PhaseBarrier separating the
 * parallel compute phase from the caller's sequential commit phase.
 *
 * Usage per simulated cycle:
 *
 *     engine.forEachShard([&](unsigned shard) {
 *         // compute phase: runs concurrently, one call per shard.
 *         // May only touch state owned by `shard` (plus read-only
 *         // last-cycle state); see DESIGN.md "compute/commit".
 *     });
 *     // commit phase: forEachShard has joined; the caller is again
 *     // the only thread touching the machine.
 *
 * Workers are created once and parked on the start barrier between
 * episodes, so the per-cycle cost is two barrier episodes rather than
 * thread creation.  forEachShard establishes full happens-before in
 * both directions (caller -> workers via the start barrier, workers ->
 * caller via the finish barrier), which is what makes unsynchronized
 * reads of last-cycle state in the compute phase race-free.
 *
 * With threads == 1 no pool exists and forEachShard degenerates to a
 * plain function call — the single-thread path pays nothing.
 */

#ifndef ULTRA_PAR_TICK_ENGINE_H
#define ULTRA_PAR_TICK_ENGINE_H

#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "par/barrier.h"

namespace ultra::prof
{
class Profiler;
} // namespace ultra::prof

namespace ultra::par
{

class TickEngine
{
  public:
    /** Resolve a --threads style request: 0 means "use all cores". */
    static unsigned
    resolveThreads(unsigned requested)
    {
        if (requested != 0)
            return requested;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

    explicit TickEngine(unsigned threads);
    ~TickEngine();

    TickEngine(const TickEngine &) = delete;
    TickEngine &operator=(const TickEngine &) = delete;

    unsigned threads() const { return threads_; }

    /**
     * Barrier for synchronizing sub-phases *inside* one forEachShard
     * episode (e.g. the network departure window processes one switch
     * stage at a time: every shard must finish stage s+1 before any
     * shard starts stage s).  Every shard of the episode must arrive
     * the same number of times, or the stragglers deadlock — a shard
     * that fails mid-episode must keep arriving for the barriers it
     * skipped before letting its exception propagate.  With
     * threads() == 1 arrival returns immediately.
     */
    PhaseBarrier &stageBarrier() { return stage_; }

    /**
     * Run fn(shard) once for every shard in [0, threads()), shard 0 on
     * the calling thread, and return after all shards finish.  Shard
     * exceptions are rethrown here (after the join, so the machine is
     * still phase-consistent): a lone failure rethrows the original
     * exception; when several shards fail in the same episode a
     * std::runtime_error carrying every shard's message (in shard
     * order) is thrown instead, so no fault is silently dropped.
     */
    void forEachShard(const std::function<void(unsigned)> &fn);

    /**
     * Attach a wall-clock profiler (nullptr detaches).  Each episode
     * is then bracketed (episodeBegin/episodeEnd on the caller) and
     * each shard's task timed on its own thread, which is what turns
     * into the per-thread work vs barrier-wait attribution.  Off by
     * default; one branch per episode when detached.
     */
    void setProfiler(prof::Profiler *profiler);
    prof::Profiler *profiler() const { return prof_; }

  private:
    void workerLoop(unsigned shard);
    void runShard(unsigned shard);
    void rethrowFailures();

    const unsigned threads_;
    PhaseBarrier start_;
    PhaseBarrier finish_;
    PhaseBarrier stage_;
    const std::function<void(unsigned)> *task_ = nullptr;
    prof::Profiler *prof_ = nullptr;
    bool stop_ = false;
    std::mutex failureMutex_;
    std::vector<std::pair<unsigned, std::exception_ptr>> failures_;
    std::vector<std::thread> workers_;
};

} // namespace ultra::par

#endif // ULTRA_PAR_TICK_ENGINE_H
