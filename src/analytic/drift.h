/**
 * @file
 * Sim-vs-model drift for the Kruskal-Snir transit-time prediction.
 *
 * The section-4.1 model predicts the average one-way network transit
 * T(p) from (n, k, m, d) and the offered load p, under infinite queues,
 * uniform message length m and independent uniform traffic.  The
 * simulator's net.one_way_transit statistic measures inject -> full
 * receipt at the MNI, which includes the PE-to-stage-0 injection hop
 * the model does not count, so the comparable prediction is T(p) + 1.
 *
 * Drift is the signed relative error (measured - predicted) /
 * predicted.  The default tolerance of 15% reflects what the Fig-7
 * bench observes for the model-matched configurations (uniform sizing,
 * no combining, unbounded queues, open-loop uniform traffic) at loads
 * comfortably below capacity; see bench/fig7_transit_time.
 */

#ifndef ULTRA_ANALYTIC_DRIFT_H
#define ULTRA_ANALYTIC_DRIFT_H

#include "analytic/config.h"

namespace ultra::analytic
{

/** Documented |drift| tolerance for model-matched configurations. */
inline constexpr double kDefaultDriftTolerance = 0.15;

/**
 * The Kruskal-Snir transit-time prediction made comparable to the
 * simulator's one-way-transit statistic: T(p) plus the injection hop.
 * +infinity at or beyond capacity.
 */
double predictedSimTransit(const NetworkConfig &cfg, double p);

/**
 * Signed relative drift of @p measured_transit (the simulator's mean
 * one-way transit) from the model's prediction at load @p p.  Returns
 * +infinity when the prediction is not finite or not positive (at or
 * beyond capacity), where no meaningful comparison exists.
 */
double transitDrift(const NetworkConfig &cfg, double p,
                    double measured_transit);

} // namespace ultra::analytic

#endif // ULTRA_ANALYTIC_DRIFT_H
