#include "packaging.h"

#include <cmath>

#include "common/log.h"
#include "common/types.h"

namespace ultra::analytic
{

MachinePackage
packageMachine(std::uint64_t num_pe, const ChipBudget &budget)
{
    ULTRA_ASSERT(isPowerOfTwo(num_pe) && num_pe >= budget.switchDegree,
                 "machine size must be a power of two >= switch degree");
    const unsigned k = budget.switchDegree;
    const unsigned stages = logBase(num_pe, k);

    MachinePackage pkg;
    pkg.numPe = num_pe;
    pkg.peChips = num_pe * budget.chipsPerPe;
    pkg.mmChips = num_pe * budget.chipsPerMm;
    pkg.numSwitches = (num_pe / k) * stages;
    pkg.networkChips = pkg.numSwitches * budget.chipsPerSwitch;

    // Board layout of section 3.6: sqrt(N) input modules and sqrt(N)
    // output modules, each carrying half of the network stages.
    const std::uint64_t root = static_cast<std::uint64_t>(
        std::llround(std::sqrt(static_cast<double>(num_pe))));
    if (root * root == num_pe && stages % 2 == 0) {
        pkg.peBoards = root;
        pkg.mmBoards = root;
        const std::uint64_t switches_per_board =
            (root / k) * (stages / 2);
        pkg.chipsPerPeBoard = root * budget.chipsPerPe +
                              switches_per_board * budget.chipsPerSwitch;
        pkg.chipsPerMmBoard = root * budget.chipsPerMm +
                              switches_per_board * budget.chipsPerSwitch;
    }
    return pkg;
}

} // namespace ultra::analytic
