/**
 * @file
 * Network configuration parameters (section 4.1 of the paper).
 *
 * A configuration is characterized by three parameters:
 *   k -- the degree of each switch (k x k),
 *   m -- the time-multiplexing factor: switch cycles needed to input one
 *        message,
 *   d -- the number of identical copies of the network.
 *
 * The chip-bandwidth constraint bounds k/m; the paper assumes the
 * bandwidth constant B = k/m equals 1 in its comparisons, i.e. m = k.
 * Cost is proportional to the number of switches: an n-port network
 * needs (n lg n)/(k lg k) k x k switches per copy, so the paper's cost
 * factor is C = d / (k lg k).
 */

#ifndef ULTRA_ANALYTIC_CONFIG_H
#define ULTRA_ANALYTIC_CONFIG_H

#include <cstdint>

#include "common/types.h"

namespace ultra::analytic
{

/** Parameters of one candidate Omega-network configuration. */
struct NetworkConfig
{
    /** Ports on each side (number of PEs = number of MMs). */
    std::uint64_t n = 4096;
    /** Switch degree (k x k switches). */
    unsigned k = 2;
    /** Time-multiplexing factor: cycles to input one full message. */
    unsigned m = 2;
    /** Number of identical network copies. */
    unsigned d = 1;

    /** Stages in each copy: log_k(n). */
    unsigned stages() const { return logBase(n, k); }

    /** Switches in each copy: (n / k) * stages. */
    std::uint64_t switchesPerCopy() const { return (n / k) * stages(); }

    /** Total switches across all copies. */
    std::uint64_t totalSwitches() const { return switchesPerCopy() * d; }

    /** Paper's cost factor C = d / (k lg k); cost = C * n * lg n. */
    double costFactor() const;

    /** Total cost in units of (2x2-switch equivalents) = C * n lg n. */
    double cost() const;

    /** Chip-bandwidth constant B = k / m. */
    double bandwidthConstant() const
    {
        return static_cast<double>(k) / static_cast<double>(m);
    }

    /**
     * Per-PE message capacity: a PE can inject at most 1/m messages per
     * cycle into each copy, so d/m total ("global bandwidth... is indeed
     * proportional to the number of PEs").
     */
    double capacity() const
    {
        return static_cast<double>(d) / static_cast<double>(m);
    }

    /** True when n is a power of k and k is a power of two. */
    bool valid() const;
};

} // namespace ultra::analytic

#endif // ULTRA_ANALYTIC_CONFIG_H
