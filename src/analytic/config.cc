#include "config.h"

#include <cmath>

namespace ultra::analytic
{

double
NetworkConfig::costFactor() const
{
    return static_cast<double>(d) /
           (static_cast<double>(k) * std::log2(static_cast<double>(k)));
}

double
NetworkConfig::cost() const
{
    return costFactor() * static_cast<double>(n) *
           std::log2(static_cast<double>(n));
}

bool
NetworkConfig::valid() const
{
    if (k < 2 || m == 0 || d == 0 || n < 2)
        return false;
    if (!isPowerOfTwo(k) || !isPowerOfTwo(n))
        return false;
    // n must be a power of k so all stages are full.
    std::uint64_t reach = 1;
    while (reach < n)
        reach *= k;
    return reach == n;
}

} // namespace ultra::analytic
