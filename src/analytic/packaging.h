/**
 * @file
 * The machine-packaging cost model of section 3.6.
 *
 * The paper conservatively estimates, for 1990 technology: four chips per
 * PE-PNI pair, nine chips per MM-MNI pair (1 MB of memory from 1 Mbit
 * chips), and two chips per 4-input-4-output switch.  A 4096-PE machine
 * then needs roughly 65,000 chips, only 19% of which are network chips.
 * The network partitions into sqrt(N) input modules and sqrt(N) output
 * modules; with 4x4 two-chip switches the machine is 64 "PE boards" of
 * 352 chips and 64 "MM boards" of 672 chips.
 */

#ifndef ULTRA_ANALYTIC_PACKAGING_H
#define ULTRA_ANALYTIC_PACKAGING_H

#include <cstdint>

namespace ultra::analytic
{

/** Per-component chip cost assumptions (paper's 1990 estimates). */
struct ChipBudget
{
    unsigned chipsPerPe = 4;     //!< PE + PNI pair
    unsigned chipsPerMm = 9;     //!< MM + MNI pair (1 MB from 1 Mbit chips)
    unsigned chipsPerSwitch = 2; //!< one k x k switch
    unsigned switchDegree = 4;   //!< k of the packaged switch
};

/** Totals for one machine size. */
struct MachinePackage
{
    std::uint64_t numPe = 0;
    std::uint64_t peChips = 0;
    std::uint64_t mmChips = 0;
    std::uint64_t networkChips = 0;
    std::uint64_t numSwitches = 0;

    std::uint64_t peBoards = 0;
    std::uint64_t mmBoards = 0;
    std::uint64_t chipsPerPeBoard = 0;
    std::uint64_t chipsPerMmBoard = 0;

    std::uint64_t totalChips() const
    {
        return peChips + mmChips + networkChips;
    }
    double networkFraction() const
    {
        const std::uint64_t total = totalChips();
        return total ? static_cast<double>(networkChips) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Compute chip and board counts for an @p num_pe machine (a power of the
 * budget's switch degree) under @p budget.  Boards follow the paper's
 * sqrt(N)-module layout: each PE board carries sqrt(N) PEs plus the first
 * half of the network stages reachable from them, each MM board carries
 * sqrt(N) MMs plus the last half.
 */
MachinePackage packageMachine(std::uint64_t num_pe,
                              const ChipBudget &budget = {});

} // namespace ultra::analytic

#endif // ULTRA_ANALYTIC_PACKAGING_H
