#include "queueing.h"

#include <cmath>
#include <limits>

#include "common/log.h"

namespace ultra::analytic
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

double
switchQueueingDelay(unsigned k, unsigned m, double p)
{
    ULTRA_ASSERT(k >= 2 && m >= 1);
    ULTRA_ASSERT(p >= 0.0);
    const double md = m;
    const double kd = k;
    if (md * p >= 1.0)
        return kInf;
    return md * md * p * (1.0 - 1.0 / kd) / (2.0 * (1.0 - md * p));
}

double
transitTime(const NetworkConfig &cfg, double p)
{
    ULTRA_ASSERT(cfg.valid(), "invalid network configuration");
    ULTRA_ASSERT(p >= 0.0);
    const double per_copy = p / static_cast<double>(cfg.d);
    const double queueing = switchQueueingDelay(cfg.k, cfg.m, per_copy);
    if (std::isinf(queueing))
        return kInf;
    const double stages = cfg.stages();
    return stages * (1.0 + queueing) + (cfg.m - 1);
}

double
loadAtTransitTime(const NetworkConfig &cfg, double t_target)
{
    const double t0 = transitTime(cfg, 0.0);
    if (t_target <= t0)
        return 0.0;
    double lo = 0.0;
    double hi = cfg.capacity();
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (transitTime(cfg, mid) < t_target)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

NetworkConfig
cheapestConfiguration(std::uint64_t n, double p, double t_budget,
                      unsigned max_copies)
{
    NetworkConfig best;
    best.n = n;
    best.d = 0; // sentinel: nothing feasible yet
    double best_cost = 0.0;
    double best_t = 0.0;
    for (unsigned k : {2u, 4u, 8u, 16u}) {
        NetworkConfig cand;
        cand.n = n;
        cand.k = k;
        cand.m = k; // B = 1
        for (unsigned d = 1; d <= max_copies; ++d) {
            cand.d = d;
            if (!cand.valid())
                break; // n not a power of this k
            const double t = transitTime(cand, p);
            if (!(t <= t_budget))
                continue;
            const double cost = cand.costFactor();
            const bool better =
                best.d == 0 || cost < best_cost ||
                (cost == best_cost && t < best_t);
            if (better) {
                best = cand;
                best_cost = cost;
                best_t = t;
            }
            break; // more copies of the same k only cost more
        }
    }
    return best;
}

TransitCurve
sweepTransitTime(const NetworkConfig &cfg, double p_max, unsigned steps)
{
    ULTRA_ASSERT(steps >= 1);
    TransitCurve curve;
    curve.config = cfg;
    curve.load.reserve(steps + 1);
    curve.transit.reserve(steps + 1);
    for (unsigned i = 0; i <= steps; ++i) {
        const double p = p_max * static_cast<double>(i) /
                         static_cast<double>(steps);
        curve.load.push_back(p);
        curve.transit.push_back(transitTime(cfg, p));
    }
    return curve;
}

} // namespace ultra::analytic
