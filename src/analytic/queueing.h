/**
 * @file
 * The Kruskal-Snir analytic model of network transit time (section 4.1).
 *
 * With infinite queues and independent uniform traffic of intensity p
 * messages per PE per cycle, the average delay at one k x k switch with
 * multiplexing factor m is
 *
 *     1 + m^2 p (1 - 1/k) / (2 (1 - m p))          [cycles]
 *
 * and the average one-way network transit time is
 *
 *     T = (lg n / lg k) (1 + m^2 p (1 - 1/k) / (2 (1 - m p))) + m - 1.
 *
 * Using d copies of the network divides the per-copy load by d.  With the
 * paper's bandwidth constant B = k/m = 1 (i.e. m = k) this specializes to
 * the formula plotted in Figure 7:
 *
 *     T = (1 + k (k-1) p / (2 (d - k p))) lg n / lg k + k - 1.
 */

#ifndef ULTRA_ANALYTIC_QUEUEING_H
#define ULTRA_ANALYTIC_QUEUEING_H

#include <vector>

#include "analytic/config.h"

namespace ultra::analytic
{

/**
 * Average queueing delay (excluding the 1-cycle service time) at one
 * k x k switch, multiplexing factor m, load @p p messages/cycle on each
 * input.  Returns +infinity at or beyond saturation (m p >= 1).
 */
double switchQueueingDelay(unsigned k, unsigned m, double p);

/**
 * Average one-way transit time, in network cycles, through configuration
 * @p cfg at offered load @p p messages per PE per cycle (aggregate across
 * the d copies; each copy sees p/d).  +infinity at or beyond capacity.
 */
double transitTime(const NetworkConfig &cfg, double p);

/**
 * The load p at which transitTime() reaches @p t_target cycles, found by
 * bisection in [0, capacity).  Useful for "usable bandwidth at a latency
 * budget" comparisons.
 */
double loadAtTransitTime(const NetworkConfig &cfg, double t_target);

/** One curve of Figure 7: T as a function of p for a configuration. */
struct TransitCurve
{
    NetworkConfig config;
    std::vector<double> load;    //!< p values
    std::vector<double> transit; //!< T(p) values (may contain +inf)
};

/**
 * Sweep p over [0, p_max] in @p steps equal increments for @p cfg,
 * reproducing one curve of Figure 7.
 */
TransitCurve sweepTransitTime(const NetworkConfig &cfg, double p_max,
                              unsigned steps);

/**
 * The configuration-selection exercise of section 4.1: among k x k
 * switches with the chip-bandwidth constraint B = k/m = 1 (m = k) and
 * d copies, find the cheapest configuration whose transit time at load
 * @p p stays within @p t_budget cycles.  Scans k in {2,4,8,16} and
 * d in [1, max_copies]; ties broken toward lower latency.  Returns a
 * config with d = 0 when no candidate meets the budget.
 */
NetworkConfig cheapestConfiguration(std::uint64_t n, double p,
                                    double t_budget,
                                    unsigned max_copies = 8);

} // namespace ultra::analytic

#endif // ULTRA_ANALYTIC_QUEUEING_H
