#include "drift.h"

#include <cmath>
#include <limits>

#include "analytic/queueing.h"

namespace ultra::analytic
{

double
predictedSimTransit(const NetworkConfig &cfg, double p)
{
    return transitTime(cfg, p) + 1.0;
}

double
transitDrift(const NetworkConfig &cfg, double p, double measured_transit)
{
    const double predicted = predictedSimTransit(cfg, p);
    if (!std::isfinite(predicted) || predicted <= 0.0)
        return std::numeric_limits<double>::infinity();
    return (measured_transit - predicted) / predicted;
}

} // namespace ultra::analytic
