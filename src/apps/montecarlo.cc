#include "montecarlo.h"

#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "core/coord.h"

namespace ultra::apps
{

namespace
{

/**
 * The per-particle walk: a 1-D random walk whose step distribution
 * depends on the current position (data-dependent control flow -- the
 * paper's argument for MIMD over SIMD).  Deterministic per particle id
 * so serial and parallel runs tally identically.
 */
std::uint32_t
walkParticle(std::uint64_t particle, const MonteCarloConfig &cfg)
{
    Rng rng(cfg.seed * 0x9e3779b9ULL + particle);
    std::int64_t pos = 0;
    for (std::uint32_t s = 0; s < cfg.stepsPerParticle; ++s) {
        // Position-dependent drift: particles far from the origin are
        // pulled back, giving a stationary-ish distribution.
        const double p_right = pos > 0 ? 0.4 : pos < 0 ? 0.6 : 0.5;
        pos += rng.bernoulli(p_right) ? 1 : -1;
    }
    const std::int64_t span = cfg.stepsPerParticle;
    const std::int64_t clamped =
        std::max<std::int64_t>(-span, std::min<std::int64_t>(span, pos));
    // Map [-span, span] onto [0, bins).
    const std::int64_t bin =
        (clamped + span) * cfg.bins / (2 * span + 1);
    return static_cast<std::uint32_t>(bin);
}

} // namespace

MonteCarloResult
monteCarloSerial(const MonteCarloConfig &cfg)
{
    MonteCarloResult result;
    result.tally.assign(cfg.bins, 0);
    for (std::uint64_t particle = 0; particle < cfg.particles;
         ++particle) {
        ++result.tally[walkParticle(particle, cfg)];
    }
    return result;
}

namespace
{

struct McLayout
{
    MonteCarloConfig cfg;
    Addr nextParticle = 0; //!< fetch-and-add work dispenser
    Addr tally = 0;        //!< bins
};

pe::Task
mcWorker(pe::Pe &pe, McLayout lay)
{
    while (true) {
        // Self-scheduling: claim the next particle with one F&A.
        const Word particle =
            co_await pe.fetchAdd(lay.nextParticle, 1);
        if (particle >= static_cast<Word>(lay.cfg.particles))
            co_return;
        // The walk is private computation: charge its instructions.
        const std::uint32_t bin =
            walkParticle(static_cast<std::uint64_t>(particle),
                         lay.cfg);
        co_await pe.privateRefs(lay.cfg.stepsPerParticle);
        co_await pe.compute(lay.cfg.stepsPerParticle * 6ULL);
        // Tally with one combinable F&A.
        co_await pe.fetchAdd(lay.tally + bin, 1);
    }
}

} // namespace

MonteCarloResult
monteCarloParallel(core::Machine &machine, std::uint32_t num_pes,
                   const MonteCarloConfig &cfg)
{
    ULTRA_ASSERT(num_pes >= 1 && num_pes <= machine.numPes());
    ULTRA_ASSERT(cfg.bins >= 1);

    McLayout lay;
    lay.cfg = cfg;
    lay.nextParticle = machine.allocShared(1, "mc.next");
    lay.tally = machine.allocShared(cfg.bins, "mc.tally");

    const Cycle start = machine.now();
    for (std::uint32_t t = 0; t < num_pes; ++t) {
        machine.launch(t,
                       [lay](pe::Pe &p) { return mcWorker(p, lay); });
    }
    const bool finished = machine.run();
    ULTRA_ASSERT(finished, "monte carlo did not finish");

    MonteCarloResult result;
    result.cycles = machine.now() - start;
    result.peTotals = machine.aggregatePeStats();
    result.tally.resize(cfg.bins);
    for (std::uint32_t b = 0; b < cfg.bins; ++b)
        result.tally[b] = machine.peek(lay.tally + b);
    return result;
}

} // namespace ultra::apps
