/**
 * @file
 * Monte Carlo particle tracking (sections 2.5 and 5; Kalos [81]).
 *
 * The class of "particle tracking calculations" that resist
 * vectorization but parallelize naturally on a MIMD shared-memory
 * machine: independent particles take data-dependent random walks;
 * PEs self-schedule work by fetch-and-adding a shared particle counter
 * (no work queue, no critical section) and tally results by
 * fetch-and-adding shared histogram bins -- both access patterns the
 * combining network absorbs.
 */

#ifndef ULTRA_APPS_MONTECARLO_H
#define ULTRA_APPS_MONTECARLO_H

#include <cstdint>
#include <vector>

#include "core/machine.h"

namespace ultra::apps
{

/** Particle-tracking parameters. */
struct MonteCarloConfig
{
    std::uint64_t particles = 256;
    std::uint32_t stepsPerParticle = 32;
    std::uint32_t bins = 16; //!< tally histogram bins
    std::uint64_t seed = 7;
};

/** Outcome of a tracking run. */
struct MonteCarloResult
{
    std::vector<std::int64_t> tally; //!< per-bin particle counts
    Cycle cycles = 0;
    pe::PeStats peTotals;
};

/** Serial reference with the identical per-particle random walk. */
MonteCarloResult monteCarloSerial(const MonteCarloConfig &cfg);

/** Run on @p num_pes PEs of a fresh machine (self-scheduled). */
MonteCarloResult monteCarloParallel(core::Machine &machine,
                                    std::uint32_t num_pes,
                                    const MonteCarloConfig &cfg);

} // namespace ultra::apps

#endif // ULTRA_APPS_MONTECARLO_H
