#include "weather.h"

#include "apps/fp.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/coord.h"

namespace ultra::apps
{

namespace
{

/** Per-grid-point instruction budget (see the file comment). */
constexpr std::uint64_t kComputePerPoint = 25;
constexpr std::uint64_t kPrivatePerPoint = 3;
constexpr std::uint64_t kOverlapInstr = 2;

std::size_t
wrap(std::ptrdiff_t i, std::size_t n)
{
    const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(n);
    return static_cast<std::size_t>(((i % m) + m) % m);
}

} // namespace

std::vector<double>
weatherSerial(const WeatherConfig &cfg, std::vector<double> initial)
{
    const std::size_t rows = cfg.rows;
    const std::size_t cols = cfg.cols;
    ULTRA_ASSERT(initial.size() == rows * cols);
    std::vector<double> cur = std::move(initial);
    std::vector<double> next(rows * cols);
    for (std::uint32_t s = 0; s < cfg.steps; ++s) {
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                const double up =
                    cur[wrap(static_cast<std::ptrdiff_t>(r) - 1, rows) *
                            cols + c];
                const double dn =
                    cur[wrap(static_cast<std::ptrdiff_t>(r) + 1, rows) *
                            cols + c];
                const double lf =
                    cur[r * cols +
                        wrap(static_cast<std::ptrdiff_t>(c) - 1, cols)];
                const double rt =
                    cur[r * cols +
                        wrap(static_cast<std::ptrdiff_t>(c) + 1, cols)];
                const double mid = cur[r * cols + c];
                next[r * cols + c] =
                    mid + cfg.nu * (up + dn + lf + rt - 4.0 * mid);
            }
        }
        cur.swap(next);
    }
    return cur;
}

namespace
{

struct WeatherLayout
{
    WeatherConfig cfg;
    Addr gridA = 0;
    Addr gridB = 0;
    core::Barrier barrier;
};

pe::Task
weatherWorker(pe::Pe &pe, WeatherLayout lay, std::uint32_t t,
              std::uint32_t num_pes)
{
    const std::size_t rows = lay.cfg.rows;
    const std::size_t cols = lay.cfg.cols;
    Word sense = 0;

    // This PE's contiguous row block [row_lo, row_hi).
    const std::size_t base = rows / num_pes;
    const std::size_t extra = rows % num_pes;
    const std::size_t row_lo =
        t * base + std::min<std::size_t>(t, extra);
    const std::size_t row_hi = row_lo + base + (t < extra ? 1 : 0);
    const std::size_t my_rows = row_hi - row_lo;

    // Private working copy: block plus one halo row on each side.
    std::vector<double> block((my_rows + 2) * cols);

    for (std::uint32_t step = 0; step < lay.cfg.steps; ++step) {
        const Addr src = step % 2 == 0 ? lay.gridA : lay.gridB;
        const Addr dst = step % 2 == 0 ? lay.gridB : lay.gridA;
        if (my_rows > 0) {
            // Fetch block + halos from shared memory (prefetched).
            for (std::size_t r = 0; r < my_rows + 2; ++r) {
                const std::size_t grid_row = wrap(
                    static_cast<std::ptrdiff_t>(row_lo + r) - 1, rows);
                for (std::size_t c = 0; c < cols; ++c) {
                    auto h =
                        pe.startLoad(src + grid_row * cols + c);
                    co_await pe.compute(kOverlapInstr);
                    block[r * cols + c] = bitsd(co_await h);
                    co_await pe.privateRefs(1);
                }
            }
            // Compute and store the updated block.
            for (std::size_t r = 1; r <= my_rows; ++r) {
                for (std::size_t c = 0; c < cols; ++c) {
                    const double up = block[(r - 1) * cols + c];
                    const double dn = block[(r + 1) * cols + c];
                    const double lf =
                        block[r * cols + wrap(
                            static_cast<std::ptrdiff_t>(c) - 1, cols)];
                    const double rt =
                        block[r * cols + wrap(
                            static_cast<std::ptrdiff_t>(c) + 1, cols)];
                    const double mid = block[r * cols + c];
                    const double out =
                        mid + lay.cfg.nu *
                                  (up + dn + lf + rt - 4.0 * mid);
                    co_await pe.privateRefs(kPrivatePerPoint - 1);
                    co_await pe.compute(kComputePerPoint -
                                        kOverlapInstr);
                    pe.postStore(dst + (row_lo + r - 1) * cols + c,
                                 dbits(out));
                }
            }
            co_await pe.fence();
        }
        co_await core::barrierWait(pe, lay.barrier, &sense);
    }
}

} // namespace

std::vector<double>
weatherInitial(const WeatherConfig &cfg, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> grid(cfg.rows * cfg.cols);
    for (auto &v : grid)
        v = rng.uniformDouble();
    return grid;
}

WeatherResult
weatherParallel(core::Machine &machine, std::uint32_t num_pes,
                const WeatherConfig &cfg,
                const std::vector<double> &initial)
{
    const std::size_t cells = cfg.rows * cfg.cols;
    ULTRA_ASSERT(initial.size() == cells);
    ULTRA_ASSERT(num_pes >= 1 && num_pes <= machine.numPes());
    ULTRA_ASSERT(cfg.nu < 0.25, "explicit diffusion needs nu < 1/4");

    WeatherLayout lay;
    lay.cfg = cfg;
    lay.gridA = machine.allocShared(cells, "weather.A");
    lay.gridB = machine.allocShared(cells, "weather.B");
    lay.barrier = core::Barrier::create(machine, num_pes);
    for (std::size_t i = 0; i < cells; ++i)
        machine.poke(lay.gridA + i, dbits(initial[i]));

    const Cycle start = machine.now();
    for (std::uint32_t t = 0; t < num_pes; ++t) {
        machine.launch(t, [lay, t, num_pes](pe::Pe &p) {
            return weatherWorker(p, lay, t, num_pes);
        });
    }
    const bool finished = machine.run();
    ULTRA_ASSERT(finished, "weather did not finish");

    WeatherResult result;
    result.cycles = machine.now() - start;
    result.peTotals = machine.aggregatePeStats();
    const Addr final_grid = cfg.steps % 2 == 0 ? lay.gridA : lay.gridB;
    result.grid.resize(cells);
    for (std::size_t i = 0; i < cells; ++i)
        result.grid[i] = bitsd(machine.peek(final_grid + i));
    return result;
}

} // namespace ultra::apps
