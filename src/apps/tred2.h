/**
 * @file
 * TRED2: Householder reduction of a real symmetric matrix to
 * tridiagonal form (section 5; the EISPACK routine the paper
 * parallelized, after Korn [81]).
 *
 * The parallel variant distributes each step's matrix-vector product
 * and rank-two update across P PEs with fetch-and-add barriers between
 * phases; the per-step setup is the "overhead ... executed by all PEs"
 * that contributes the aN term of T(P,N) = aN + dN^3/P + W(P,N).
 */

#ifndef ULTRA_APPS_TRED2_H
#define ULTRA_APPS_TRED2_H

#include <cstdint>
#include <vector>

#include "core/coord.h"
#include "core/machine.h"

namespace ultra::apps
{

/** Tridiagonal result: diagonal d[0..n-1] and subdiagonal e[1..n-1]. */
struct Tridiagonal
{
    std::vector<double> diag;
    std::vector<double> offdiag; //!< offdiag[0] is unused (0)
};

/**
 * Serial reference Householder reduction of the symmetric matrix
 * @p a (row-major, n x n; only the lower triangle is read).
 */
Tridiagonal tred2Serial(std::vector<double> a, std::size_t n);

/** Shared-memory layout of the parallel TRED2 run. */
struct Tred2Layout
{
    std::size_t n = 0;
    Addr matrix = 0; //!< n*n doubles (row-major)
    Addr diag = 0;   //!< n doubles
    Addr offdiag = 0;
    Addr u = 0;      //!< Householder vector
    Addr p = 0;      //!< A u / h
    Addr scratch = 0; //!< per-phase reduction cells
    core::Barrier barrier;
};

/** Outcome of a parallel run. */
struct Tred2Result
{
    Tridiagonal tri;
    Cycle cycles = 0;        //!< simulated time T(P,N)
    double waitingTime = 0;  //!< W(P,N): mean idle cycles per PE
    pe::PeStats peTotals;
};

/**
 * Run parallel TRED2 on @p machine with @p num_workers cooperating
 * logical workers over matrix @p a (n x n symmetric).  The machine
 * must be freshly constructed (the run allocates shared memory and
 * launches programs).
 *
 * With @p contexts_per_pe > 1 the workers are hardware-multiprogrammed
 * (section 3.5): they run on num_workers / contexts_per_pe physical
 * PEs, each time-sharing its instruction pipeline among
 * contexts_per_pe workers -- the configuration whose recovered waiting
 * time Table 3 projects.  num_workers must be divisible by
 * contexts_per_pe.
 */
Tred2Result tred2Parallel(core::Machine &machine,
                          std::uint32_t num_workers,
                          const std::vector<double> &a, std::size_t n,
                          std::uint32_t contexts_per_pe = 1);

/** Deterministic symmetric test matrix with bounded entries. */
std::vector<double> randomSymmetric(std::size_t n, std::uint64_t seed);

/**
 * Eigenvalue-free validity check: the tridiagonal form must preserve
 * the matrix trace and Frobenius norm to within @p tol (Householder
 * transforms are orthogonal similarities).
 */
bool tridiagonalConsistent(const std::vector<double> &a, std::size_t n,
                           const Tridiagonal &tri, double tol);

} // namespace ultra::apps

#endif // ULTRA_APPS_TRED2_H
