#include "tred2.h"

#include <cmath>
#include <cstdlib>

#include "apps/fp.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/coord.h"

namespace ultra::apps
{

namespace
{

/**
 * Per-inner-loop-element instruction budget, calibrated so the Table-1
 * columns (memory references per instruction ~0.25, shared references
 * per instruction ~0.05, CDC-6600-style register-heavy code) come out
 * of the simulation rather than being asserted: each shared reference
 * is accompanied by privatePerRef cache-hit references and
 * computePerRef register instructions, and loads overlap
 * overlapInstr instructions of useful work before the value is used
 * (the compiler-prefetch behaviour section 4.2 describes).
 */
struct InstrBudget
{
    std::uint64_t computePerRef = 13;
    std::uint64_t privatePerRef = 3;
    std::uint64_t overlapInstr = 4;
};

constexpr InstrBudget kTred2Budget{25, 6, 4};

} // namespace

Tridiagonal
tred2Serial(std::vector<double> a, std::size_t n)
{
    ULTRA_ASSERT(n >= 1 && a.size() == n * n);
    Tridiagonal tri;
    tri.diag.assign(n, 0.0);
    tri.offdiag.assign(n, 0.0);
    auto at = [&](std::size_t r, std::size_t c) -> double & {
        return a[r * n + c];
    };

    std::vector<double> u(n), p(n);
    for (std::size_t i = n - 1; i >= 1; --i) {
        const std::size_t l = i - 1;
        double h = 0.0;
        double scale = 0.0;
        if (l > 0) {
            for (std::size_t k = 0; k <= l; ++k)
                scale += std::fabs(at(i, k));
        }
        if (l == 0 || scale == 0.0) {
            tri.offdiag[i] = at(i, l);
            continue;
        }
        for (std::size_t k = 0; k <= l; ++k) {
            u[k] = at(i, k) / scale;
            h += u[k] * u[k];
        }
        const double f = u[l];
        const double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        tri.offdiag[i] = scale * g;
        h -= f * g;
        u[l] = f - g;
        for (std::size_t j = 0; j <= l; ++j) {
            double gj = 0.0;
            for (std::size_t k = 0; k <= j; ++k)
                gj += at(j, k) * u[k];
            for (std::size_t k = j + 1; k <= l; ++k)
                gj += at(k, j) * u[k];
            p[j] = gj / h;
        }
        double fsum = 0.0;
        for (std::size_t j = 0; j <= l; ++j)
            fsum += p[j] * u[j];
        const double hh = fsum / (2.0 * h);
        for (std::size_t j = 0; j <= l; ++j)
            p[j] -= hh * u[j];
        for (std::size_t j = 0; j <= l; ++j) {
            const double fj = u[j];
            const double gj = p[j];
            for (std::size_t k = 0; k <= j; ++k)
                at(j, k) -= fj * p[k] + gj * u[k];
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        tri.diag[i] = at(i, i);
    return tri;
}

namespace
{

/** The program run by each of the P cooperating PEs. */
pe::Task
tred2Worker(pe::Pe &pe, Tred2Layout lay, std::uint32_t t,
            std::uint32_t num_pes)
{
    const std::size_t n = lay.n;
    const InstrBudget budget = kTred2Budget;
    Word sense = 0;
    std::vector<double> ulocal(n), plocal(n);

    // A charged shared load: issue, overlap some register work, use.
    auto charged_load = [&](Addr addr) -> pe::LoadHandle {
        return pe.startLoad(addr);
    };

    for (std::size_t i = n - 1; i >= 1; --i) {
        const std::size_t l = i - 1;

        if (t == 0) {
            // Serial head (the aN overhead term): scale, u, h, e[i].
            double scale = 0.0;
            for (std::size_t k = 0; k <= l; ++k) {
                auto hk = charged_load(lay.matrix + i * n + k);
                co_await pe.compute(budget.overlapInstr);
                ulocal[k] = bitsd(co_await hk);
                co_await pe.privateRefs(1);
                co_await pe.compute(2);
                scale += std::fabs(ulocal[k]);
            }
            double h = 0.0;
            bool skip = l == 0 || scale == 0.0;
            if (skip) {
                co_await pe.store(lay.offdiag + i, dbits(ulocal[l]));
            } else {
                for (std::size_t k = 0; k <= l; ++k) {
                    ulocal[k] /= scale;
                    h += ulocal[k] * ulocal[k];
                    co_await pe.compute(3);
                    co_await pe.privateRefs(1);
                }
                const double f = ulocal[l];
                const double g =
                    f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
                co_await pe.store(lay.offdiag + i, dbits(scale * g));
                h -= f * g;
                ulocal[l] = f - g;
                for (std::size_t k = 0; k <= l; ++k)
                    pe.postStore(lay.u + k, dbits(ulocal[k]));
                co_await pe.fence();
            }
            co_await pe.store(lay.scratch + 0, dbits(h));
            co_await pe.store(lay.scratch + 1, skip ? 1 : 0);
        }
        co_await core::barrierWait(pe, lay.barrier, &sense);

        const bool skip = co_await pe.load(lay.scratch + 1) != 0;
        if (skip) {
            co_await core::barrierWait(pe, lay.barrier, &sense);
            co_await core::barrierWait(pe, lay.barrier, &sense);
            co_await core::barrierWait(pe, lay.barrier, &sense);
            continue;
        }
        const double h = bitsd(co_await pe.load(lay.scratch + 0));

        // Broadcast copy of u: concurrent loads of the same cells by
        // all PEs combine in the network.
        if (t != 0) {
            for (std::size_t k = 0; k <= l; ++k) {
                auto hk = charged_load(lay.u + k);
                co_await pe.compute(budget.overlapInstr);
                ulocal[k] = bitsd(co_await hk);
                co_await pe.privateRefs(2);
                co_await pe.compute(6);
            }
        }

        // Phase 2: p[j] = (A u)_j / h over this PE's slice of rows.
        for (std::size_t j = t; j <= l; j += num_pes) {
            double g = 0.0;
            for (std::size_t k = 0; k <= l; ++k) {
                const Addr addr = k <= j ? lay.matrix + j * n + k
                                         : lay.matrix + k * n + j;
                auto hk = charged_load(addr);
                co_await pe.compute(budget.overlapInstr);
                const double ajk = bitsd(co_await hk);
                co_await pe.privateRefs(budget.privatePerRef);
                co_await pe.compute(budget.computePerRef -
                                    budget.overlapInstr);
                g += ajk * ulocal[k];
            }
            pe.postStore(lay.p + j, dbits(g / h));
        }
        co_await pe.fence();
        co_await core::barrierWait(pe, lay.barrier, &sense);

        if (t == 0) {
            // Serial middle: hh = (u . p) / 2h.
            double fsum = 0.0;
            for (std::size_t j = 0; j <= l; ++j) {
                auto hj = charged_load(lay.p + j);
                co_await pe.compute(budget.overlapInstr);
                fsum += bitsd(co_await hj) * ulocal[j];
                co_await pe.privateRefs(1);
                co_await pe.compute(2);
            }
            co_await pe.store(lay.scratch + 2,
                              dbits(fsum / (2.0 * h)));
        }
        co_await core::barrierWait(pe, lay.barrier, &sense);
        const double hh = bitsd(co_await pe.load(lay.scratch + 2));

        // Broadcast copy of p, then form q = p - hh u privately.
        for (std::size_t k = 0; k <= l; ++k) {
            auto hk = charged_load(lay.p + k);
            co_await pe.compute(budget.overlapInstr);
            plocal[k] = bitsd(co_await hk) - hh * ulocal[k];
            co_await pe.privateRefs(2);
            co_await pe.compute(6);
        }

        // Phase 4: rank-two update of this PE's slice of rows.
        for (std::size_t j = t; j <= l; j += num_pes) {
            const double fj = ulocal[j];
            const double gj = plocal[j];
            for (std::size_t k = 0; k <= j; ++k) {
                const Addr addr = lay.matrix + j * n + k;
                auto hk = charged_load(addr);
                co_await pe.compute(budget.overlapInstr);
                const double ajk = bitsd(co_await hk);
                co_await pe.privateRefs(budget.privatePerRef);
                co_await pe.compute(budget.computePerRef -
                                    budget.overlapInstr);
                pe.postStore(addr,
                             dbits(ajk - fj * plocal[k] -
                                   gj * ulocal[k]));
            }
        }
        co_await pe.fence();
        co_await core::barrierWait(pe, lay.barrier, &sense);
    }

    if (t == 0) {
        // Serial tail: gather the diagonal.
        for (std::size_t i = 0; i < n; ++i) {
            auto hi = charged_load(lay.matrix + i * n + i);
            co_await pe.compute(budget.overlapInstr);
            pe.postStore(lay.diag + i, dbits(bitsd(co_await hi)));
        }
        co_await pe.fence();
    }
}

} // namespace

Tred2Result
tred2Parallel(core::Machine &machine, std::uint32_t num_pes,
              const std::vector<double> &a, std::size_t n,
              std::uint32_t contexts_per_pe)
{
    ULTRA_ASSERT(n >= 2 && a.size() == n * n);
    ULTRA_ASSERT(contexts_per_pe >= 1 &&
                 num_pes % contexts_per_pe == 0);
    const std::uint32_t physical_pes = num_pes / contexts_per_pe;
    ULTRA_ASSERT(physical_pes >= 1 &&
                 physical_pes <= machine.numPes());

    Tred2Layout lay;
    lay.n = n;
    lay.matrix = machine.allocShared(n * n, "tred2.A");
    lay.diag = machine.allocShared(n, "tred2.d");
    lay.offdiag = machine.allocShared(n, "tred2.e");
    lay.u = machine.allocShared(n, "tred2.u");
    lay.p = machine.allocShared(n, "tred2.p");
    lay.scratch = machine.allocShared(4, "tred2.scratch");
    lay.barrier = core::Barrier::create(machine, num_pes);

    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            machine.poke(lay.matrix + r * n + c, dbits(a[r * n + c]));

    const Cycle start = machine.now();
    for (std::uint32_t t = 0; t < num_pes; ++t) {
        const PEId pe_id = t % physical_pes;
        auto program = [lay, t, num_pes](pe::Pe &p) {
            return tred2Worker(p, lay, t, num_pes);
        };
        if (t < physical_pes)
            machine.launch(pe_id, std::move(program));
        else
            machine.launchExtra(pe_id, std::move(program));
    }
    const bool finished = machine.run();
    ULTRA_ASSERT(finished, "tred2 did not finish");

    Tred2Result result;
    result.cycles = machine.now() - start;
    result.peTotals = machine.aggregatePeStats();
    result.waitingTime =
        static_cast<double>(result.peTotals.idleCycles) / num_pes;
    result.tri.diag.resize(n);
    result.tri.offdiag.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        result.tri.diag[i] = bitsd(machine.peek(lay.diag + i));
    for (std::size_t i = 1; i < n; ++i)
        result.tri.offdiag[i] = bitsd(machine.peek(lay.offdiag + i));
    return result;
}

std::vector<double>
randomSymmetric(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> a(n * n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            const double v = rng.uniformDouble() * 2.0 - 1.0;
            a[r * n + c] = v;
            a[c * n + r] = v;
        }
    }
    return a;
}

bool
tridiagonalConsistent(const std::vector<double> &a, std::size_t n,
                      const Tridiagonal &tri, double tol)
{
    // Orthogonal similarity preserves trace and Frobenius norm.
    double trace_a = 0.0;
    double frob_a = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        trace_a += a[r * n + r];
        for (std::size_t c = 0; c < n; ++c)
            frob_a += a[r * n + c] * a[r * n + c];
    }
    double trace_t = 0.0;
    double frob_t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        trace_t += tri.diag[i];
        frob_t += tri.diag[i] * tri.diag[i];
    }
    for (std::size_t i = 1; i < n; ++i)
        frob_t += 2.0 * tri.offdiag[i] * tri.offdiag[i];
    const double scale = std::max(1.0, std::fabs(trace_a) + frob_a);
    return std::fabs(trace_a - trace_t) <= tol * scale &&
           std::fabs(frob_a - frob_t) <= tol * scale;
}

} // namespace ultra::apps
