#include "multigrid.h"

#include <cmath>

#include "apps/fp.h"
#include "common/log.h"
#include "core/coord.h"

namespace ultra::apps
{

namespace
{

/** Per-point instruction budget (see the header comment). */
constexpr std::uint64_t kComputePerPoint = 40;
constexpr std::uint64_t kPrivatePerPoint = 6;
constexpr std::uint64_t kOverlap = 2;

double
gridSpacing(std::size_t n)
{
    return 1.0 / static_cast<double>(n - 1);
}

/** Interior-row range [lo, hi) of PE @p t among @p num_pes. */
void
rowSplit(std::size_t n, std::uint32_t t, std::uint32_t num_pes,
         std::size_t *lo, std::size_t *hi)
{
    const std::size_t interior = n - 2;
    const std::size_t base = interior / num_pes;
    const std::size_t extra = interior % num_pes;
    *lo = 1 + t * base + std::min<std::size_t>(t, extra);
    *hi = *lo + base + (t < extra ? 1 : 0);
}

} // namespace

std::size_t
multigridSide(unsigned level)
{
    return (std::size_t{1} << level) + 1;
}

std::vector<double>
multigridRhs(unsigned level)
{
    // f = 2[x(1-x) + y(1-y)] makes u = x(1-x) y(1-y) the exact solution
    // of -lap(u) = f, and the five-point stencil is exact for it.
    const std::size_t n = multigridSide(level);
    const double h = gridSpacing(n);
    std::vector<double> f(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double x = static_cast<double>(j) * h;
            const double y = static_cast<double>(i) * h;
            f[i * n + j] = 2.0 * (x * (1.0 - x) + y * (1.0 - y));
        }
    }
    return f;
}

double
poissonResidual(const std::vector<double> &u,
                const std::vector<double> &f, std::size_t n)
{
    const double h2 = gridSpacing(n) * gridSpacing(n);
    double worst = 0.0;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
            const double lap =
                (4.0 * u[i * n + j] - u[(i - 1) * n + j] -
                 u[(i + 1) * n + j] - u[i * n + j - 1] -
                 u[i * n + j + 1]) /
                h2;
            worst = std::max(worst, std::fabs(f[i * n + j] - lap));
        }
    }
    return worst;
}

// --------------------------------------------------------------------
// Serial reference
// --------------------------------------------------------------------

namespace
{

void
jacobiSerial(std::vector<double> &u, const std::vector<double> &f,
             std::size_t n, double omega)
{
    const double h2 = gridSpacing(n) * gridSpacing(n);
    std::vector<double> next = u;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
            const double gs =
                0.25 * (u[(i - 1) * n + j] + u[(i + 1) * n + j] +
                        u[i * n + j - 1] + u[i * n + j + 1] +
                        h2 * f[i * n + j]);
            next[i * n + j] =
                (1.0 - omega) * u[i * n + j] + omega * gs;
        }
    }
    u.swap(next);
}

void
residualSerial(const std::vector<double> &u,
               const std::vector<double> &f, std::size_t n,
               std::vector<double> &r)
{
    const double h2 = gridSpacing(n) * gridSpacing(n);
    r.assign(n * n, 0.0);
    for (std::size_t i = 1; i + 1 < n; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
            const double lap =
                (4.0 * u[i * n + j] - u[(i - 1) * n + j] -
                 u[(i + 1) * n + j] - u[i * n + j - 1] -
                 u[i * n + j + 1]) /
                h2;
            r[i * n + j] = f[i * n + j] - lap;
        }
    }
}

void
restrictSerial(const std::vector<double> &fine, std::size_t nf,
               std::vector<double> &coarse, std::size_t nc)
{
    coarse.assign(nc * nc, 0.0);
    for (std::size_t ci = 1; ci + 1 < nc; ++ci) {
        for (std::size_t cj = 1; cj + 1 < nc; ++cj) {
            const std::size_t fi = 2 * ci;
            const std::size_t fj = 2 * cj;
            coarse[ci * nc + cj] =
                (4.0 * fine[fi * nf + fj] +
                 2.0 * (fine[(fi - 1) * nf + fj] +
                        fine[(fi + 1) * nf + fj] +
                        fine[fi * nf + fj - 1] +
                        fine[fi * nf + fj + 1]) +
                 fine[(fi - 1) * nf + fj - 1] +
                 fine[(fi - 1) * nf + fj + 1] +
                 fine[(fi + 1) * nf + fj - 1] +
                 fine[(fi + 1) * nf + fj + 1]) /
                16.0;
        }
    }
}

void
prolongAddSerial(const std::vector<double> &coarse, std::size_t nc,
                 std::vector<double> &fine, std::size_t nf)
{
    for (std::size_t i = 1; i + 1 < nf; ++i) {
        for (std::size_t j = 1; j + 1 < nf; ++j) {
            const std::size_t ci = i / 2;
            const std::size_t cj = j / 2;
            double v;
            if (i % 2 == 0 && j % 2 == 0) {
                v = coarse[ci * nc + cj];
            } else if (i % 2 == 0) {
                v = 0.5 * (coarse[ci * nc + cj] +
                           coarse[ci * nc + cj + 1]);
            } else if (j % 2 == 0) {
                v = 0.5 * (coarse[ci * nc + cj] +
                           coarse[(ci + 1) * nc + cj]);
            } else {
                v = 0.25 * (coarse[ci * nc + cj] +
                            coarse[ci * nc + cj + 1] +
                            coarse[(ci + 1) * nc + cj] +
                            coarse[(ci + 1) * nc + cj + 1]);
            }
            fine[i * nf + j] += v;
        }
    }
}

void
vcycleSerial(const MultigridConfig &cfg, unsigned lev,
             std::vector<std::vector<double>> &u,
             std::vector<std::vector<double>> &f)
{
    const std::size_t n = multigridSide(lev);
    if (lev == 1) {
        // Single interior point: solve directly.
        const double h2 = gridSpacing(n) * gridSpacing(n);
        u[lev][1 * n + 1] = 0.25 * h2 * f[lev][1 * n + 1];
        return;
    }
    for (unsigned s = 0; s < cfg.preSmooth; ++s)
        jacobiSerial(u[lev], f[lev], n, cfg.omega);
    std::vector<double> r;
    residualSerial(u[lev], f[lev], n, r);
    const std::size_t nc = multigridSide(lev - 1);
    restrictSerial(r, n, f[lev - 1], nc);
    u[lev - 1].assign(nc * nc, 0.0);
    vcycleSerial(cfg, lev - 1, u, f);
    prolongAddSerial(u[lev - 1], nc, u[lev], n);
    for (unsigned s = 0; s < cfg.postSmooth; ++s)
        jacobiSerial(u[lev], f[lev], n, cfg.omega);
}

} // namespace

MultigridResult
multigridSerial(const MultigridConfig &cfg,
                const std::vector<double> &rhs)
{
    ULTRA_ASSERT(cfg.level >= 2);
    const std::size_t n = multigridSide(cfg.level);
    ULTRA_ASSERT(rhs.size() == n * n);

    std::vector<std::vector<double>> u(cfg.level + 1);
    std::vector<std::vector<double>> f(cfg.level + 1);
    for (unsigned lev = 1; lev <= cfg.level; ++lev) {
        const std::size_t s = multigridSide(lev);
        u[lev].assign(s * s, 0.0);
        f[lev].assign(s * s, 0.0);
    }
    f[cfg.level] = rhs;
    for (unsigned c = 0; c < cfg.vCycles; ++c)
        vcycleSerial(cfg, cfg.level, u, f);

    MultigridResult result;
    result.solution = u[cfg.level];
    result.residualNorm = poissonResidual(result.solution, rhs, n);
    return result;
}

// --------------------------------------------------------------------
// Parallel implementation
// --------------------------------------------------------------------

namespace
{

struct MgLayout
{
    MultigridConfig cfg;
    std::vector<Addr> u; //!< per level
    std::vector<Addr> f;
    std::vector<Addr> r;
    core::Barrier barrier;
};

/** Charged fetch of @p count consecutive shared words into @p out. */
pe::Task
fetchWords(pe::Pe &pe, Addr base, std::size_t count, double *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        auto h = pe.startLoad(base + i);
        co_await pe.compute(kOverlap);
        out[i] = bitsd(co_await h);
        co_await pe.privateRefs(1);
    }
}

/** Charged store of @p count words (pipelined; caller fences). */
pe::Task
storeWords(pe::Pe &pe, Addr base, std::size_t count, const double *in)
{
    for (std::size_t i = 0; i < count; ++i) {
        pe.postStore(base + i, dbits(in[i]));
        co_await pe.compute(1);
    }
}

/** The per-point bookkeeping charge for a stencil evaluation. */
pe::Task
chargePoint(pe::Pe &pe)
{
    co_await pe.privateRefs(kPrivatePerPoint - 2);
    co_await pe.compute(kComputePerPoint - 2 * kOverlap);
}

pe::Task
jacobiPhase(pe::Pe &pe, const MgLayout &lay, unsigned lev,
            std::uint32_t t, std::uint32_t num_pes, Word *sense)
{
    const std::size_t n = multigridSide(lev);
    std::size_t lo, hi;
    rowSplit(n, t, num_pes, &lo, &hi);
    const double h2 = gridSpacing(n) * gridSpacing(n);

    std::vector<double> ublk, fblk, out;
    if (lo < hi) {
        ublk.resize((hi - lo + 2) * n);
        fblk.resize((hi - lo) * n);
        out.resize((hi - lo) * n);
        co_await fetchWords(pe, lay.u[lev] + (lo - 1) * n,
                            (hi - lo + 2) * n, ublk.data());
        co_await fetchWords(pe, lay.f[lev] + lo * n, (hi - lo) * n,
                            fblk.data());
        for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t b = i - lo + 1; // row within ublk
            out[(i - lo) * n + 0] = 0.0;
            out[(i - lo) * n + n - 1] = 0.0;
            for (std::size_t j = 1; j + 1 < n; ++j) {
                const double gs =
                    0.25 * (ublk[(b - 1) * n + j] +
                            ublk[(b + 1) * n + j] +
                            ublk[b * n + j - 1] +
                            ublk[b * n + j + 1] +
                            h2 * fblk[(i - lo) * n + j]);
                out[(i - lo) * n + j] =
                    (1.0 - lay.cfg.omega) * ublk[b * n + j] +
                    lay.cfg.omega * gs;
                co_await chargePoint(pe);
            }
        }
    }
    // All PEs must finish reading old u before anyone overwrites it.
    co_await core::barrierWait(pe, lay.barrier, sense);
    if (lo < hi) {
        co_await storeWords(pe, lay.u[lev] + lo * n, (hi - lo) * n,
                            out.data());
        co_await pe.fence();
    }
    co_await core::barrierWait(pe, lay.barrier, sense);
}

pe::Task
residualPhase(pe::Pe &pe, const MgLayout &lay, unsigned lev,
              std::uint32_t t, std::uint32_t num_pes, Word *sense)
{
    const std::size_t n = multigridSide(lev);
    std::size_t lo, hi;
    rowSplit(n, t, num_pes, &lo, &hi);
    const double h2 = gridSpacing(n) * gridSpacing(n);

    if (lo < hi) {
        std::vector<double> ublk((hi - lo + 2) * n);
        std::vector<double> fblk((hi - lo) * n);
        std::vector<double> out((hi - lo) * n, 0.0);
        co_await fetchWords(pe, lay.u[lev] + (lo - 1) * n,
                            (hi - lo + 2) * n, ublk.data());
        co_await fetchWords(pe, lay.f[lev] + lo * n, (hi - lo) * n,
                            fblk.data());
        for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t b = i - lo + 1;
            for (std::size_t j = 1; j + 1 < n; ++j) {
                const double lap =
                    (4.0 * ublk[b * n + j] - ublk[(b - 1) * n + j] -
                     ublk[(b + 1) * n + j] - ublk[b * n + j - 1] -
                     ublk[b * n + j + 1]) /
                    h2;
                out[(i - lo) * n + j] =
                    fblk[(i - lo) * n + j] - lap;
                co_await chargePoint(pe);
            }
        }
        co_await storeWords(pe, lay.r[lev] + lo * n, (hi - lo) * n,
                            out.data());
        co_await pe.fence();
    }
    co_await core::barrierWait(pe, lay.barrier, sense);
}

pe::Task
restrictPhase(pe::Pe &pe, const MgLayout &lay, unsigned lev,
              std::uint32_t t, std::uint32_t num_pes, Word *sense)
{
    const std::size_t nf = multigridSide(lev);
    const std::size_t nc = multigridSide(lev - 1);
    std::size_t lo, hi;
    rowSplit(nc, t, num_pes, &lo, &hi);

    if (lo < hi) {
        // Fine rows 2*lo-1 .. 2*(hi-1)+1 inclusive.
        const std::size_t fr_lo = 2 * lo - 1;
        const std::size_t fr_n = 2 * (hi - lo) + 1;
        std::vector<double> rblk(fr_n * nf);
        std::vector<double> fout((hi - lo) * nc, 0.0);
        std::vector<double> zeros((hi - lo) * nc, 0.0);
        co_await fetchWords(pe, lay.r[lev] + fr_lo * nf, fr_n * nf,
                            rblk.data());
        for (std::size_t ci = lo; ci < hi; ++ci) {
            const std::size_t b = 2 * (ci - lo) + 1; // fine center row
            for (std::size_t cj = 1; cj + 1 < nc; ++cj) {
                const std::size_t fj = 2 * cj;
                fout[(ci - lo) * nc + cj] =
                    (4.0 * rblk[b * nf + fj] +
                     2.0 * (rblk[(b - 1) * nf + fj] +
                            rblk[(b + 1) * nf + fj] +
                            rblk[b * nf + fj - 1] +
                            rblk[b * nf + fj + 1]) +
                     rblk[(b - 1) * nf + fj - 1] +
                     rblk[(b - 1) * nf + fj + 1] +
                     rblk[(b + 1) * nf + fj - 1] +
                     rblk[(b + 1) * nf + fj + 1]) /
                    16.0;
                co_await chargePoint(pe);
            }
        }
        co_await storeWords(pe, lay.f[lev - 1] + lo * nc,
                            (hi - lo) * nc, fout.data());
        co_await storeWords(pe, lay.u[lev - 1] + lo * nc,
                            (hi - lo) * nc, zeros.data());
        co_await pe.fence();
    }
    if (t == 0) {
        // Zero the coarse boundary rows of u once per descent.
        std::vector<double> zrow(nc, 0.0);
        co_await storeWords(pe, lay.u[lev - 1], nc, zrow.data());
        co_await storeWords(pe, lay.u[lev - 1] + (nc - 1) * nc, nc,
                            zrow.data());
        co_await pe.fence();
    }
    co_await core::barrierWait(pe, lay.barrier, sense);
}

pe::Task
prolongPhase(pe::Pe &pe, const MgLayout &lay, unsigned lev,
             std::uint32_t t, std::uint32_t num_pes, Word *sense)
{
    const std::size_t nf = multigridSide(lev);
    const std::size_t nc = multigridSide(lev - 1);
    std::size_t lo, hi;
    rowSplit(nf, t, num_pes, &lo, &hi);

    if (lo < hi) {
        // Coarse rows lo/2 .. (hi-1)/2 + 1 inclusive.
        const std::size_t cr_lo = lo / 2;
        const std::size_t cr_n = (hi - 1) / 2 + 1 - cr_lo + 1;
        std::vector<double> cblk(cr_n * nc);
        std::vector<double> ublk((hi - lo) * nf);
        co_await fetchWords(pe, lay.u[lev - 1] + cr_lo * nc,
                            cr_n * nc, cblk.data());
        co_await fetchWords(pe, lay.u[lev] + lo * nf, (hi - lo) * nf,
                            ublk.data());
        for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t ci = i / 2 - cr_lo;
            for (std::size_t j = 1; j + 1 < nf; ++j) {
                const std::size_t cj = j / 2;
                double v;
                if (i % 2 == 0 && j % 2 == 0) {
                    v = cblk[ci * nc + cj];
                } else if (i % 2 == 0) {
                    v = 0.5 * (cblk[ci * nc + cj] +
                               cblk[ci * nc + cj + 1]);
                } else if (j % 2 == 0) {
                    v = 0.5 * (cblk[ci * nc + cj] +
                               cblk[(ci + 1) * nc + cj]);
                } else {
                    v = 0.25 * (cblk[ci * nc + cj] +
                                cblk[ci * nc + cj + 1] +
                                cblk[(ci + 1) * nc + cj] +
                                cblk[(ci + 1) * nc + cj + 1]);
                }
                ublk[(i - lo) * nf + j] += v;
                co_await chargePoint(pe);
            }
        }
        co_await storeWords(pe, lay.u[lev] + lo * nf, (hi - lo) * nf,
                            ublk.data());
        co_await pe.fence();
    }
    co_await core::barrierWait(pe, lay.barrier, sense);
}

pe::Task
vcyclePhase(pe::Pe &pe, const MgLayout &lay, unsigned lev,
            std::uint32_t t, std::uint32_t num_pes, Word *sense)
{
    const std::size_t n = multigridSide(lev);
    if (lev == 1) {
        if (t == 0) {
            const double h2 = gridSpacing(n) * gridSpacing(n);
            const double fc =
                bitsd(co_await pe.load(lay.f[lev] + 1 * n + 1));
            co_await pe.compute(4);
            co_await pe.store(lay.u[lev] + 1 * n + 1,
                              dbits(0.25 * h2 * fc));
        }
        co_await core::barrierWait(pe, lay.barrier, sense);
        co_return;
    }
    for (unsigned s = 0; s < lay.cfg.preSmooth; ++s)
        co_await jacobiPhase(pe, lay, lev, t, num_pes, sense);
    co_await residualPhase(pe, lay, lev, t, num_pes, sense);
    co_await restrictPhase(pe, lay, lev, t, num_pes, sense);
    co_await vcyclePhase(pe, lay, lev - 1, t, num_pes, sense);
    co_await prolongPhase(pe, lay, lev, t, num_pes, sense);
    for (unsigned s = 0; s < lay.cfg.postSmooth; ++s)
        co_await jacobiPhase(pe, lay, lev, t, num_pes, sense);
}

pe::Task
mgWorker(pe::Pe &pe, MgLayout lay, std::uint32_t t,
         std::uint32_t num_pes)
{
    Word sense = 0;
    for (unsigned c = 0; c < lay.cfg.vCycles; ++c)
        co_await vcyclePhase(pe, lay, lay.cfg.level, t, num_pes,
                             &sense);
}

} // namespace

MultigridResult
multigridParallel(core::Machine &machine, std::uint32_t num_pes,
                  const MultigridConfig &cfg,
                  const std::vector<double> &rhs)
{
    ULTRA_ASSERT(cfg.level >= 2);
    const std::size_t n = multigridSide(cfg.level);
    ULTRA_ASSERT(rhs.size() == n * n);
    ULTRA_ASSERT(num_pes >= 1 && num_pes <= machine.numPes());

    MgLayout lay;
    lay.cfg = cfg;
    lay.u.assign(cfg.level + 1, 0);
    lay.f.assign(cfg.level + 1, 0);
    lay.r.assign(cfg.level + 1, 0);
    for (unsigned lev = 1; lev <= cfg.level; ++lev) {
        const std::size_t s = multigridSide(lev);
        lay.u[lev] = machine.allocShared(s * s, "mg.u");
        lay.f[lev] = machine.allocShared(s * s, "mg.f");
        lay.r[lev] = machine.allocShared(s * s, "mg.r");
    }
    lay.barrier = core::Barrier::create(machine, num_pes);
    for (std::size_t i = 0; i < n * n; ++i)
        machine.poke(lay.f[cfg.level] + i, dbits(rhs[i]));

    const Cycle start = machine.now();
    for (std::uint32_t t = 0; t < num_pes; ++t) {
        machine.launch(t, [lay, t, num_pes](pe::Pe &p) {
            return mgWorker(p, lay, t, num_pes);
        });
    }
    const bool finished = machine.run();
    ULTRA_ASSERT(finished, "multigrid did not finish");

    MultigridResult result;
    result.cycles = machine.now() - start;
    result.peTotals = machine.aggregatePeStats();
    result.solution.resize(n * n);
    for (std::size_t i = 0; i < n * n; ++i)
        result.solution[i] = bitsd(machine.peek(lay.u[cfg.level] + i));
    result.residualNorm = poissonResidual(result.solution, rhs, n);
    return result;
}

} // namespace ultra::apps
