/**
 * @file
 * Floating-point values in simulated shared memory.
 *
 * Central memory stores 64-bit words; scientific programs keep IEEE
 * doubles in them by bit pattern.  Loads and stores move the bits
 * unchanged; fetch-and-add on doubles is not required by any of the
 * ported programs (index dispensing and barriers use integer cells).
 */

#ifndef ULTRA_APPS_FP_H
#define ULTRA_APPS_FP_H

#include <bit>

#include "common/types.h"

namespace ultra::apps
{

/** Pack a double into a shared-memory word. */
inline Word
dbits(double x)
{
    return std::bit_cast<Word>(x);
}

/** Unpack a shared-memory word into a double. */
inline double
bitsd(Word w)
{
    return std::bit_cast<double>(w);
}

} // namespace ultra::apps

#endif // ULTRA_APPS_FP_H
