#include "efficiency_model.h"

#include <cmath>

#include "common/log.h"

namespace ultra::apps
{

double
EfficiencyFit::waiting(std::uint32_t pes, std::size_t n) const
{
    const double nd = static_cast<double>(n);
    const double pd = static_cast<double>(pes);
    return w * std::max(nd, std::sqrt(pd));
}

double
EfficiencyFit::time(std::uint32_t pes, std::size_t n,
                    bool include_waiting) const
{
    const double nd = static_cast<double>(n);
    const double pd = static_cast<double>(pes);
    double t = a * nd + d * nd * nd * nd / pd;
    if (include_waiting && pes > 1)
        t += waiting(pes, n);
    return t;
}

double
EfficiencyFit::efficiency(std::uint32_t pes, std::size_t n,
                          bool include_waiting) const
{
    const double t1 = time(1, n, false);
    const double tp = time(pes, n, include_waiting);
    return t1 / (static_cast<double>(pes) * tp);
}

EfficiencyFit
fitEfficiencyModel(const std::vector<EfficiencySample> &samples)
{
    ULTRA_ASSERT(samples.size() >= 2, "need at least two samples");

    // Linear least squares for (a, d): minimize
    //   sum ((T_i - W_i) - a x_i - d y_i)^2,
    // with x = N and y = N^3 / P.
    double sxx = 0.0, sxy = 0.0, syy = 0.0, sxt = 0.0, syt = 0.0;
    for (const auto &s : samples) {
        const double x = static_cast<double>(s.n);
        const double y = x * x * x / static_cast<double>(s.pes);
        const double t = s.totalTime - s.waitingTime;
        sxx += x * x;
        sxy += x * y;
        syy += y * y;
        sxt += x * t;
        syt += y * t;
    }
    const double det = sxx * syy - sxy * sxy;
    ULTRA_ASSERT(std::fabs(det) > 1e-9,
                 "degenerate sample set: vary N and N^3/P");

    EfficiencyFit fit;
    fit.a = (sxt * syy - syt * sxy) / det;
    fit.d = (syt * sxx - sxt * sxy) / det;

    // Scalar least squares for w on the multi-PE samples.
    double szz = 0.0, szw = 0.0;
    for (const auto &s : samples) {
        if (s.pes <= 1)
            continue;
        const double z = std::max(static_cast<double>(s.n),
                                  std::sqrt(static_cast<double>(s.pes)));
        szz += z * z;
        szw += z * s.waitingTime;
    }
    fit.w = szz > 0.0 ? szw / szz : 0.0;
    return fit;
}

} // namespace ultra::apps
