/**
 * @file
 * Multigrid Poisson solver (Table 1 program 4; cf. Rushfield [81]).
 *
 * Solves the 2-D Poisson problem -lap(u) = f on the unit square with
 * homogeneous Dirichlet boundaries using V-cycles: weighted-Jacobi
 * smoothing, full-weighting restriction, bilinear prolongation, with a
 * direct relaxation solve on the coarsest (3 x 3) grid.  Grids are
 * (2^level + 1) square.  Parallelization is by row blocks at every
 * level with barriers between phases; the program was "designed to
 * minimize the number of accesses to shared data", which the per-point
 * instruction budget reflects (about 0.24 data references per
 * instruction, 0.06 shared).
 */

#ifndef ULTRA_APPS_MULTIGRID_H
#define ULTRA_APPS_MULTIGRID_H

#include <cstdint>
#include <vector>

#include "core/machine.h"

namespace ultra::apps
{

/** Multigrid-run parameters. */
struct MultigridConfig
{
    unsigned level = 4;     //!< finest grid is (2^level + 1)^2
    unsigned vCycles = 2;
    unsigned preSmooth = 2;
    unsigned postSmooth = 2;
    double omega = 0.8;     //!< Jacobi damping
};

/** Outcome of a multigrid run. */
struct MultigridResult
{
    std::vector<double> solution; //!< fine-grid u, row-major
    double residualNorm = 0.0;    //!< final max-norm residual
    Cycle cycles = 0;
    pe::PeStats peTotals;
};

/** Serial reference V-cycle solver (same parameters). */
MultigridResult multigridSerial(const MultigridConfig &cfg,
                                const std::vector<double> &rhs);

/** Run the parallel solver on @p num_pes PEs of a fresh machine. */
MultigridResult multigridParallel(core::Machine &machine,
                                  std::uint32_t num_pes,
                                  const MultigridConfig &cfg,
                                  const std::vector<double> &rhs);

/** Grid side length at @p level. */
std::size_t multigridSide(unsigned level);

/** A smooth deterministic right-hand side on the (2^level+1)^2 grid. */
std::vector<double> multigridRhs(unsigned level);

/** Max-norm residual of -lap(u) = f on an n x n grid of spacing h. */
double poissonResidual(const std::vector<double> &u,
                       const std::vector<double> &f, std::size_t n);

} // namespace ultra::apps

#endif // ULTRA_APPS_MULTIGRID_H
