#include "accounts.h"

#include "common/rng.h"
#include "core/coord.h"

namespace ultra::apps
{

namespace
{

struct AccountsLayout
{
    AccountsConfig cfg;
    Addr balances = 0;
    core::RwLock lock; //!< only used by the global-lock baseline
};

pe::Task
transferWorker(pe::Pe &pe, AccountsLayout lay, std::uint32_t num_pes)
{
    (void)num_pes;
    Rng rng(lay.cfg.seed * 977 + pe.id());
    for (std::uint32_t t = 0; t < lay.cfg.transfersPerPe; ++t) {
        // Pick distinct source and destination; a skewed share of
        // traffic hits the hot account 0.
        std::uint32_t from = static_cast<std::uint32_t>(
            rng.uniformInt(lay.cfg.numAccounts));
        std::uint32_t to = static_cast<std::uint32_t>(
            rng.uniformInt(lay.cfg.numAccounts));
        if (rng.bernoulli(lay.cfg.hotFraction))
            to = 0;
        if (from == to)
            to = (to + 1) % lay.cfg.numAccounts;
        const Word amount = 1 + static_cast<Word>(rng.uniformInt(10));

        if (lay.cfg.useGlobalLock) {
            // Baseline: the whole transfer in one critical section.
            co_await core::writerLock(pe, lay.lock);
            const Word from_balance =
                co_await pe.load(lay.balances + from);
            co_await pe.store(lay.balances + from,
                              from_balance - amount);
            const Word to_balance =
                co_await pe.load(lay.balances + to);
            co_await pe.store(lay.balances + to, to_balance + amount);
            co_await core::writerUnlock(pe, lay.lock);
        } else {
            // The paracomputer way: two indivisible fetch-and-adds.
            // (Balances may transiently go negative; the invariant is
            // the conserved total, exactly as the serialization
            // principle promises.)
            const Word debited =
                co_await pe.fetchAdd(lay.balances + from, -amount);
            (void)debited;
            const Word credited =
                co_await pe.fetchAdd(lay.balances + to, amount);
            (void)credited;
        }
        co_await pe.compute(8); // decide the next transfer
    }
}

} // namespace

AccountsResult
runAccounts(core::Machine &machine, std::uint32_t num_pes,
            const AccountsConfig &cfg)
{
    ULTRA_ASSERT(cfg.numAccounts >= 2);
    ULTRA_ASSERT(num_pes >= 1 && num_pes <= machine.numPes());

    AccountsLayout lay;
    lay.cfg = cfg;
    lay.balances = machine.allocShared(cfg.numAccounts, "accounts");
    lay.lock = core::RwLock::create(machine);
    for (std::uint32_t a = 0; a < cfg.numAccounts; ++a)
        machine.poke(lay.balances + a, cfg.initialBalance);

    const Cycle start = machine.now();
    for (std::uint32_t t = 0; t < num_pes; ++t) {
        machine.launch(t, [lay, num_pes](pe::Pe &p) {
            return transferWorker(p, lay, num_pes);
        });
    }
    const bool finished = machine.run();
    ULTRA_ASSERT(finished, "accounts did not finish");

    AccountsResult result;
    result.cycles = machine.now() - start;
    result.combined = machine.network().stats().combined;
    result.balances.resize(cfg.numAccounts);
    for (std::uint32_t a = 0; a < cfg.numAccounts; ++a) {
        result.balances[a] = machine.peek(lay.balances + a);
        result.total += result.balances[a];
    }
    return result;
}

} // namespace ultra::apps
