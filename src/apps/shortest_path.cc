#include "shortest_path.h"

#include <algorithm>
#include <queue>

#include "common/log.h"
#include "common/rng.h"
#include "core/coord.h"

namespace ultra::apps
{

Graph
randomGraph(std::size_t vertices, std::size_t edges_per_vertex,
            std::uint64_t seed)
{
    ULTRA_ASSERT(vertices >= 2);
    Rng rng(seed);
    Graph graph;
    graph.numVertices = vertices;
    graph.offsets.reserve(vertices + 1);
    graph.offsets.push_back(0);
    for (std::size_t v = 0; v < vertices; ++v) {
        // A ring edge guarantees connectivity, plus random chords.
        graph.targets.push_back(
            static_cast<std::uint32_t>((v + 1) % vertices));
        graph.weights.push_back(
            1 + static_cast<Word>(rng.uniformInt(9)));
        for (std::size_t e = 1; e < edges_per_vertex; ++e) {
            const auto to = static_cast<std::uint32_t>(
                rng.uniformInt(vertices));
            if (to == v)
                continue;
            graph.targets.push_back(to);
            graph.weights.push_back(
                1 + static_cast<Word>(rng.uniformInt(99)));
        }
        graph.offsets.push_back(
            static_cast<std::uint32_t>(graph.targets.size()));
    }
    return graph;
}

Graph
gridGraph(std::size_t side)
{
    ULTRA_ASSERT(side >= 2);
    Graph graph;
    graph.numVertices = side * side;
    graph.offsets.push_back(0);
    auto id = [side](std::size_t r, std::size_t c) {
        return static_cast<std::uint32_t>(r * side + c);
    };
    for (std::size_t r = 0; r < side; ++r) {
        for (std::size_t c = 0; c < side; ++c) {
            if (r + 1 < side) {
                graph.targets.push_back(id(r + 1, c));
                graph.weights.push_back(1);
            }
            if (c + 1 < side) {
                graph.targets.push_back(id(r, c + 1));
                graph.weights.push_back(1);
            }
            if (r > 0) {
                graph.targets.push_back(id(r - 1, c));
                graph.weights.push_back(1);
            }
            if (c > 0) {
                graph.targets.push_back(id(r, c - 1));
                graph.weights.push_back(1);
            }
            graph.offsets.push_back(
                static_cast<std::uint32_t>(graph.targets.size()));
        }
    }
    return graph;
}

std::vector<Word>
shortestPathsSerial(const Graph &graph, std::uint32_t source)
{
    ULTRA_ASSERT(source < graph.numVertices);
    std::vector<Word> dist(graph.numVertices, kUnreachable);
    dist[source] = 0;
    using Entry = std::pair<Word, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.push({0, source});
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u])
            continue;
        for (std::uint32_t e = graph.offsets[u];
             e < graph.offsets[u + 1]; ++e) {
            const std::uint32_t v = graph.targets[e];
            const Word nd = d + graph.weights[e];
            if (nd < dist[v]) {
                dist[v] = nd;
                heap.push({nd, v});
            }
        }
    }
    return dist;
}

namespace
{

struct SsspLayout
{
    std::size_t vertices = 0;
    Addr offsets = 0; //!< V + 1 (read-only: cacheable)
    Addr targets = 0; //!< E     (read-only: cacheable)
    Addr weights = 0; //!< E     (read-only: cacheable)
    Addr dist = 0;    //!< V     (read-write shared: FetchMin only)
    Addr pending = 0; //!< work units queued or being processed
    Addr processed = 0;
    core::ParallelQueue queue;
    bool useCache = false;
};

pe::Task
ssspWorker(pe::Pe &pe, SsspLayout lay)
{
    // Read-only graph words go through the local cache when attached.
    auto graph_load = [&pe, &lay](Addr addr, Word *out) -> pe::Task {
        if (lay.useCache) {
            co_await pe.cachedLoad(addr, out);
        } else {
            *out = co_await pe.load(addr);
        }
    };

    while (true) {
        const Word pending = co_await pe.load(lay.pending);
        if (pending == 0)
            co_return; // nothing queued, nobody processing: done
        bool underflow = false;
        Word vertex = 0;
        co_await core::queueDelete(pe, lay.queue, &vertex, &underflow);
        if (underflow) {
            co_await pe.compute(6);
            continue;
        }

        const Word du = co_await pe.load(lay.dist + vertex);
        Word begin = 0, end = 0;
        co_await graph_load(lay.offsets + vertex, &begin);
        co_await graph_load(lay.offsets + vertex + 1, &end);
        for (Word e = begin; e < end; ++e) {
            Word to = 0, weight = 0;
            co_await graph_load(lay.targets + e, &to);
            co_await graph_load(lay.weights + e, &weight);
            const Word nd = du + weight;
            co_await pe.compute(4);
            // Atomic relaxation: an associative fetch-and-phi, so hot
            // vertices combine in the switches.
            const Word old_dist = co_await pe.fetchPhi(
                net::Op::FetchMin, lay.dist + to, nd);
            if (nd < old_dist) {
                // The label improved: (re)queue the vertex.
                const Word was = co_await pe.fetchAdd(lay.pending, 1);
                (void)was;
                bool overflow = true;
                while (overflow) {
                    co_await core::queueInsert(pe, lay.queue, to,
                                               &overflow);
                    if (overflow)
                        co_await pe.compute(8);
                }
            }
        }
        const Word was_done = co_await pe.fetchAdd(lay.processed, 1);
        (void)was_done;
        const Word was = co_await pe.fetchAdd(lay.pending, -1);
        (void)was;
    }
}

} // namespace

SsspResult
shortestPathsParallel(core::Machine &machine, std::uint32_t num_pes,
                      const Graph &graph, std::uint32_t source,
                      bool use_cache)
{
    ULTRA_ASSERT(source < graph.numVertices);
    ULTRA_ASSERT(num_pes >= 1 && num_pes <= machine.numPes());

    SsspLayout lay;
    lay.vertices = graph.numVertices;
    lay.useCache = use_cache;
    lay.offsets =
        machine.allocShared(graph.numVertices + 1, "sssp.offsets");
    lay.targets = machine.allocShared(graph.numEdges(), "sssp.targets");
    lay.weights = machine.allocShared(graph.numEdges(), "sssp.weights");
    lay.dist = machine.allocShared(graph.numVertices, "sssp.dist");
    lay.pending = machine.allocShared(1, "sssp.pending");
    lay.processed = machine.allocShared(1, "sssp.processed");
    lay.queue = core::ParallelQueue::create(
        machine, static_cast<Word>(4 * graph.numVertices + 64));

    for (std::size_t v = 0; v <= graph.numVertices; ++v)
        machine.poke(lay.offsets + v, graph.offsets[v]);
    for (std::size_t e = 0; e < graph.numEdges(); ++e) {
        machine.poke(lay.targets + e, graph.targets[e]);
        machine.poke(lay.weights + e, graph.weights[e]);
    }
    for (std::size_t v = 0; v < graph.numVertices; ++v)
        machine.poke(lay.dist + v, kUnreachable);
    machine.poke(lay.dist + source, 0);

    // Pre-seed the work queue with the source vertex: one completed
    // insertion (see the queue layout in core/coord.h).
    machine.poke(lay.queue.data, source);
    machine.poke(lay.queue.insPtr, 1);
    machine.poke(lay.queue.lower, 1);
    machine.poke(lay.queue.upper, 1);
    machine.poke(lay.queue.insSeq, 1);
    machine.poke(lay.pending, 1);

    if (use_cache) {
        cache::CacheConfig ccfg;
        ccfg.numSets = 64;
        ccfg.associativity = 2;
        ccfg.blockWords = 4;
        for (std::uint32_t t = 0; t < num_pes; ++t)
            machine.peAt(t).attachCache(ccfg);
    }

    const Cycle start = machine.now();
    for (std::uint32_t t = 0; t < num_pes; ++t) {
        machine.launch(t,
                       [lay](pe::Pe &p) { return ssspWorker(p, lay); });
    }
    const bool finished = machine.run();
    ULTRA_ASSERT(finished, "sssp did not finish");

    SsspResult result;
    result.cycles = machine.now() - start;
    result.peTotals = machine.aggregatePeStats();
    result.relaxations =
        static_cast<std::uint64_t>(machine.peek(lay.processed));
    result.dist.resize(graph.numVertices);
    for (std::size_t v = 0; v < graph.numVertices; ++v)
        result.dist[v] = machine.peek(lay.dist + v);
    return result;
}

} // namespace ultra::apps
