/**
 * @file
 * The TRED2 efficiency model of section 5 (Tables 2 and 3).
 *
 * The time to reduce an N x N matrix with P processors is well
 * approximated by
 *
 *     T(P, N) = a N + d N^3 / P + W(P, N)
 *
 * where aN is overhead executed by all PEs, dN^3/P is the divided
 * work, and W is waiting time of order max(N, sqrt(P)).  The constants
 * are determined experimentally from simulated (P, N) pairs; the model
 * then projects efficiencies
 *
 *     E(P, N) = T(1, N) / (P * T(P, N))
 *
 * for machines too large to simulate (the asterisked entries of
 * Table 2).  Table 3 re-computes E with W removed -- the optimistic
 * bound if all waiting time were recovered by multiprogramming the PEs.
 */

#ifndef ULTRA_APPS_EFFICIENCY_MODEL_H
#define ULTRA_APPS_EFFICIENCY_MODEL_H

#include <cstdint>
#include <vector>

namespace ultra::apps
{

/** One simulated observation. */
struct EfficiencySample
{
    std::uint32_t pes = 1;
    std::size_t n = 16;
    double totalTime = 0.0;   //!< T(P,N), cycles
    double waitingTime = 0.0; //!< W(P,N), cycles
};

/** Fitted model constants. */
struct EfficiencyFit
{
    double a = 0.0; //!< per-step overhead coefficient
    double d = 0.0; //!< divided-work coefficient
    double w = 0.0; //!< waiting coefficient: W ~ w * max(N, sqrt(P))

    /** Model waiting time. */
    double waiting(std::uint32_t pes, std::size_t n) const;

    /** Model T(P, N); @p include_waiting selects Table 2 vs Table 3. */
    double time(std::uint32_t pes, std::size_t n,
                bool include_waiting) const;

    /** Model efficiency E(P, N) = T(1,N) / (P T(P,N)). */
    double efficiency(std::uint32_t pes, std::size_t n,
                      bool include_waiting) const;
};

/**
 * Least-squares fit of (a, d) on T - W = aN + dN^3/P and of w on
 * W = w max(N, sqrt(P)).  Requires at least two samples with distinct
 * (N, N^3/P) signatures.
 */
EfficiencyFit fitEfficiencyModel(
    const std::vector<EfficiencySample> &samples);

} // namespace ultra::apps

#endif // ULTRA_APPS_EFFICIENCY_MODEL_H
