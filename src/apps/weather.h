/**
 * @file
 * A weather-style two-dimensional PDE solver (Table 1 programs 1, 2).
 *
 * Stands in for the parallel NASA weather code (a 2-D PDE solved by
 * explicit time stepping): a periodic 2-D diffusion equation advanced
 * with a five-point stencil.  The parallel decomposition matches the
 * paper's: the grid lives in shared memory sliced into row blocks, each
 * step every PE reads its block plus two halo rows, computes privately,
 * stores its block back, and barriers.  The reference mix (about one
 * shared reference per 2.6 data references, about 0.21 data references
 * per instruction) emerges from the per-point instruction budget
 * calibrated to the paper's CDC-6600-style code.
 */

#ifndef ULTRA_APPS_WEATHER_H
#define ULTRA_APPS_WEATHER_H

#include <cstdint>
#include <vector>

#include "core/machine.h"

namespace ultra::apps
{

/** Weather-run parameters. */
struct WeatherConfig
{
    std::size_t rows = 32;
    std::size_t cols = 32;
    std::uint32_t steps = 4;
    double nu = 0.1; //!< diffusion coefficient (must be < 0.25)
};

/** Outcome of a weather run. */
struct WeatherResult
{
    std::vector<double> grid; //!< final field, row-major
    Cycle cycles = 0;
    pe::PeStats peTotals;
};

/**
 * Serial reference: advance @p initial by cfg.steps explicit diffusion
 * steps with periodic boundaries.
 */
std::vector<double> weatherSerial(const WeatherConfig &cfg,
                                  std::vector<double> initial);

/** Run the parallel solver on @p num_pes PEs of a fresh @p machine. */
WeatherResult weatherParallel(core::Machine &machine,
                              std::uint32_t num_pes,
                              const WeatherConfig &cfg,
                              const std::vector<double> &initial);

/** Deterministic initial field. */
std::vector<double> weatherInitial(const WeatherConfig &cfg,
                                   std::uint64_t seed);

} // namespace ultra::apps

#endif // ULTRA_APPS_WEATHER_H
