/**
 * @file
 * A transaction-processing workload: concurrent transfers over a
 * shared table of accounts.
 *
 * Each transfer is two fetch-and-adds (debit, credit) -- indivisible
 * per cell, no locks, and combinable in the network when transfers
 * collide on popular accounts.  The serialization principle guarantees
 * the global invariant: the sum over all accounts never changes.
 * A mutex-per-table baseline (writerLock around every transfer) shows
 * what the paper's "completely parallel" design avoids.
 */

#ifndef ULTRA_APPS_ACCOUNTS_H
#define ULTRA_APPS_ACCOUNTS_H

#include <cstdint>
#include <vector>

#include "core/machine.h"

namespace ultra::apps
{

/** Workload parameters. */
struct AccountsConfig
{
    std::uint32_t numAccounts = 64;
    std::uint32_t transfersPerPe = 32;
    Word initialBalance = 1000;
    /** Zipf-ish skew: fraction of transfers touching account 0. */
    double hotFraction = 0.25;
    std::uint64_t seed = 3;
    /** Serialize every transfer through one lock (the baseline). */
    bool useGlobalLock = false;
};

/** Outcome of a run. */
struct AccountsResult
{
    std::vector<Word> balances;
    Word total = 0;
    Cycle cycles = 0;
    std::uint64_t combined = 0;
};

/** Run @p num_pes PEs of concurrent transfers on a fresh machine. */
AccountsResult runAccounts(core::Machine &machine,
                           std::uint32_t num_pes,
                           const AccountsConfig &cfg);

} // namespace ultra::apps

#endif // ULTRA_APPS_ACCOUNTS_H
