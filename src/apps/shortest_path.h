/**
 * @file
 * Parallel single-source shortest paths (the appendix's motivating
 * application).
 *
 * The appendix opens by quoting Deo, Pang and Lord: "regardless of the
 * number of processors used, we expect that algorithm PPDM has a
 * constant upper bound on its speedup, because every processor demands
 * private use of the Q" -- and then refutes it with the critical-
 * section-free queue.  This module is that refutation made concrete: a
 * label-correcting SSSP where
 *
 *   - the vertex work-pool is the appendix ParallelQueue (concurrent
 *     inserts and deletes, no critical section),
 *   - relaxation is an atomic fetch-and-min on the distance word
 *     (an associative fetch-and-phi, so hot vertices combine in the
 *     network),
 *   - termination uses a fetch-and-add activity counter,
 *   - the graph itself (CSR arrays) is read-only shared data and is
 *     read through each PE's local cache (section 3.2).
 */

#ifndef ULTRA_APPS_SHORTEST_PATH_H
#define ULTRA_APPS_SHORTEST_PATH_H

#include <cstdint>
#include <vector>

#include "core/machine.h"

namespace ultra::apps
{

/** A directed graph in compressed-sparse-row form. */
struct Graph
{
    std::size_t numVertices = 0;
    std::vector<std::uint32_t> offsets; //!< numVertices + 1
    std::vector<std::uint32_t> targets; //!< edge endpoints
    std::vector<Word> weights;          //!< positive edge weights

    std::size_t numEdges() const { return targets.size(); }
};

/** Deterministic random graph with positive weights. */
Graph randomGraph(std::size_t vertices, std::size_t edges_per_vertex,
                  std::uint64_t seed);

/** A small grid graph (useful for readable tests). */
Graph gridGraph(std::size_t side);

/** Serial reference (Dijkstra). */
std::vector<Word> shortestPathsSerial(const Graph &graph,
                                      std::uint32_t source);

/** Outcome of a parallel run. */
struct SsspResult
{
    std::vector<Word> dist;
    Cycle cycles = 0;
    pe::PeStats peTotals;
    std::uint64_t relaxations = 0; //!< queue deletions processed
};

/**
 * Run parallel SSSP on @p num_pes PEs of a fresh machine.  When
 * @p use_cache is true each PE reads the (read-only) CSR arrays
 * through an attached local cache.
 */
SsspResult shortestPathsParallel(core::Machine &machine,
                                 std::uint32_t num_pes,
                                 const Graph &graph,
                                 std::uint32_t source,
                                 bool use_cache = true);

/** The "infinite" distance sentinel. */
inline constexpr Word kUnreachable = 1'000'000'000;

} // namespace ultra::apps

#endif // ULTRA_APPS_SHORTEST_PATH_H
