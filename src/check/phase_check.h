/**
 * @file
 * Phase-contract checker for the compute/commit contract (DESIGN.md).
 *
 * `Machine::run` executes each cycle as a parallel *compute* phase (one
 * shard per host thread, each touching only state it owns) followed by
 * a sequential *commit* phase.  ThreadSanitizer sees host-level data
 * races, but not logical contract violations: a shard mutating another
 * shard's PE state through a shared reference, a commit-only mutator
 * (network, memory, queues) invoked during compute, or a compute-phase
 * read of another shard's uncommitted staging.  This checker makes the
 * contract itself executable.
 *
 * Annotation hooks are woven into the component code:
 *
 *   ULTRA_CHECK_COMPUTE_WRITE(component, owner)
 *       -- the caller is about to mutate state owned by `owner` (a PE
 *          id); legal during compute only from the owning shard.
 *   ULTRA_CHECK_COMPUTE_READ(component, owner)
 *       -- the caller reads per-owner mutable (uncommitted) state;
 *          same ownership rule during compute.
 *   ULTRA_CHECK_COMMIT_ONLY(component)
 *       -- the surrounding mutator belongs to the sequential commit
 *          phase and must never run during compute.
 *   ULTRA_CHECK_NET_MUTATE(component, unit)
 *       -- the caller mutates switch-column state owned by network
 *          unit `unit` (a StageColumnPlan index; kNoOwner = not
 *          unit-owned).  Legal from the sequential phase, or during
 *          the *network* compute phase from the shard that owns the
 *          unit.  During the PE compute phase it is a violation (the
 *          network is frozen then), and unit-less state (MNI pending
 *          queues) may never be touched by a network compute shard.
 *
 * Two compute domains exist per cycle: the PE domain (coroutine
 * stepping, owner ids are PE ids) and the network domain (switch-
 * column sharding, owner ids are StageColumnPlan units).  Each has its
 * own ownership map and begin/end bracket; the hooks check whichever
 * domain is active.
 *
 * The hooks compile to nothing unless the ULTRA_CHECK CMake option is
 * ON (which defines ULTRA_CHECK_ENABLED), so production builds pay
 * zero cost.  The PhaseChecker class itself is always compiled so
 * tests and tools can drive it directly in any build.
 *
 * Violations are recorded with the component path, owning/acting
 * shard, and cycle number; `Machine` exposes the running count through
 * the ultra::obs registry as "check.violations".  Set the environment
 * variable ULTRA_CHECK_ABORT=1 (or call setFailFast) to panic on the
 * first violation instead.
 */

#ifndef ULTRA_CHECK_PHASE_CHECK_H
#define ULTRA_CHECK_PHASE_CHECK_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace ultra::check
{

/** One recorded contract violation. */
struct Violation
{
    enum class Kind : std::uint8_t {
        CrossShardWrite,  //!< compute-phase write to another shard's state
        CrossShardRead,   //!< compute-phase read of uncommitted state
        CommitOnlyInCompute, //!< commit-phase mutator ran during compute
    };

    Kind kind = Kind::CrossShardWrite;
    std::string component; //!< annotation site, e.g. "net.pni.request"
    std::uint64_t owner = 0;   //!< owner id (PE id); kNoOwner for none
    unsigned ownerShard = 0;   //!< shard owning the touched state
    int actingShard = -1;      //!< shard (or -1: unbound thread) acting
    Cycle cycle = 0;           //!< simulated cycle of the violation

    static constexpr std::uint64_t kNoOwner = ~0ULL;

    /** Human-readable one-line description. */
    std::string describe() const;
};

/**
 * Process-wide contract checker.  All hot-path hooks are cheap when no
 * compute phase is active (one predicted branch on a plain bool that
 * only the sequential commit phase writes).
 */
class PhaseChecker
{
  public:
    static PhaseChecker &instance();

    PhaseChecker(const PhaseChecker &) = delete;
    PhaseChecker &operator=(const PhaseChecker &) = delete;

    /** True when the annotation macros are compiled in. */
    static constexpr bool
    annotationsEnabled()
    {
#ifdef ULTRA_CHECK_ENABLED
        return true;
#else
        return false;
#endif
    }

    // --- machine-facing configuration (sequential phase only) ---------

    /**
     * Declare the ownership map for the coming compute phases: state
     * owned by id `o` belongs to shard `shardOfOwner[o]`.  Owner ids
     * outside the map are treated as unowned (not checked).
     */
    void setOwners(unsigned shards, std::vector<unsigned> shardOfOwner);

    /** Enter the parallel compute phase of cycle @p cycle. */
    void beginCompute(Cycle cycle);

    /** Leave the compute phase (the caller is again the only thread). */
    void endCompute();

    bool inCompute() const { return inCompute_; }

    /**
     * Declare the network-domain ownership map: switch-column unit `u`
     * (a StageColumnPlan index) belongs to engine shard
     * `shardOfUnit[u]`.  Set by the Network whenever its unit-to-shard
     * binding changes.
     */
    void setNetOwners(unsigned shards,
                      std::vector<unsigned> shardOfUnit);

    /** Enter the parallel *network* compute phase of cycle @p cycle. */
    void beginNetCompute(Cycle cycle);

    /** Leave the network compute phase. */
    void endNetCompute();

    bool inNetCompute() const { return inNetCompute_; }

    /**
     * Declare the ownership map for the next parallel *departure*
     * window: unit `u` belongs to shard `shardOfUnit[u]`.  The
     * departure window parallelizes one stage at a time, so the
     * Network re-declares this map before every per-stage dispatch.
     */
    void setNetDepartOwners(unsigned shards,
                            std::vector<unsigned> shardOfUnit);

    /** Enter a parallel network *departure* window of cycle @p cycle.
     *  Mutating hooks then check against the departure ownership map;
     *  dequeue hooks check the queue's departure owner (the downstream
     *  receiver pulling the head) instead of its arrival owner. */
    void beginNetDepart(Cycle cycle);

    /** Leave the network departure window. */
    void endNetDepart();

    bool inNetDepart() const { return inNetDepart_; }

    /** Panic on the first violation instead of recording (defaults to
     *  the ULTRA_CHECK_ABORT environment variable). */
    void setFailFast(bool on) { failFast_ = on; }

    // --- thread binding (TickEngine) ----------------------------------

    /** Bind the calling thread to @p shard for the current phase. */
    static void bindShard(unsigned shard);

    /** Unbind the calling thread (it no longer acts for any shard). */
    static void unbindShard();

    /** Shard bound to the calling thread, or -1. */
    static int currentShard();

    // --- annotation hooks (any thread) --------------------------------

    void onComputeWrite(const char *component, std::uint64_t owner);
    void onComputeRead(const char *component, std::uint64_t owner);
    void onCommitOnly(const char *component);
    void onNetMutate(const char *component, std::uint64_t unit);

    /** Dequeue-side hook: a queue has two legal pullers depending on
     *  the phase — its arrival owner (@p unit) during net compute, and
     *  its departure owner (@p departUnit, the downstream receiver)
     *  during the parallel departure window. */
    void onNetDequeue(const char *component, std::uint64_t unit,
                      std::uint64_t departUnit);

    // --- results ------------------------------------------------------

    /** Total violations recorded since the last clear() (atomic; safe
     *  to read from obs registry callbacks). */
    std::uint64_t
    violationCount() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Snapshot of recorded violations (at most recordLimit()). */
    std::vector<Violation> violations() const;

    /** Retained-violation cap (the count still tracks everything). */
    static constexpr std::size_t recordLimit() { return 64; }

    /** Forget recorded violations and the count. */
    void clear();

  private:
    PhaseChecker();

    /** Shard owning @p owner, or -1 when unowned / out of map. */
    int shardOf(std::uint64_t owner) const;

    void record(Violation::Kind kind, const char *component,
                std::uint64_t owner, int owner_shard);

    // Written only while no compute phase runs; the fork-join barriers
    // of TickEngine establish happens-before with every hook call.
    bool inCompute_ = false;
    bool inNetCompute_ = false;
    bool inNetDepart_ = false;
    Cycle cycle_ = 0;
    unsigned shards_ = 1;
    std::vector<unsigned> shardOfOwner_;
    unsigned netShards_ = 1;
    std::vector<unsigned> netShardOfUnit_;
    unsigned departShards_ = 1;
    std::vector<unsigned> departShardOfUnit_;
    bool failFast_ = false;

    std::atomic<std::uint64_t> count_{0};
    mutable std::mutex mutex_; //!< guards violations_ (cold path)
    std::vector<Violation> violations_;
};

} // namespace ultra::check

/*
 * Annotation macros.  With ULTRA_CHECK off every site compiles to
 * nothing -- not even an argument evaluation.
 */
#ifdef ULTRA_CHECK_ENABLED

#define ULTRA_CHECK_COMPUTE_WRITE(component, owner)                         \
    ::ultra::check::PhaseChecker::instance().onComputeWrite(                \
        (component), static_cast<std::uint64_t>(owner))
#define ULTRA_CHECK_COMPUTE_READ(component, owner)                          \
    ::ultra::check::PhaseChecker::instance().onComputeRead(                 \
        (component), static_cast<std::uint64_t>(owner))
#define ULTRA_CHECK_COMMIT_ONLY(component)                                  \
    ::ultra::check::PhaseChecker::instance().onCommitOnly((component))
#define ULTRA_CHECK_SET_OWNERS(shards, shardOfOwner)                        \
    ::ultra::check::PhaseChecker::instance().setOwners((shards),            \
                                                       (shardOfOwner))
#define ULTRA_CHECK_COMPUTE_BEGIN(cycle)                                    \
    ::ultra::check::PhaseChecker::instance().beginCompute((cycle))
#define ULTRA_CHECK_COMPUTE_END()                                           \
    ::ultra::check::PhaseChecker::instance().endCompute()
#define ULTRA_CHECK_BIND_SHARD(shard)                                       \
    ::ultra::check::PhaseChecker::bindShard((shard))
#define ULTRA_CHECK_UNBIND_SHARD()                                          \
    ::ultra::check::PhaseChecker::unbindShard()
#define ULTRA_CHECK_NET_MUTATE(component, unit)                             \
    ::ultra::check::PhaseChecker::instance().onNetMutate(                   \
        (component), static_cast<std::uint64_t>(unit))
#define ULTRA_CHECK_SET_NET_OWNERS(shards, shardOfUnit)                     \
    ::ultra::check::PhaseChecker::instance().setNetOwners(                  \
        (shards), (shardOfUnit))
#define ULTRA_CHECK_NET_COMPUTE_BEGIN(cycle)                                \
    ::ultra::check::PhaseChecker::instance().beginNetCompute((cycle))
#define ULTRA_CHECK_NET_COMPUTE_END()                                       \
    ::ultra::check::PhaseChecker::instance().endNetCompute()
#define ULTRA_CHECK_NET_DEQUEUE(component, owner, departOwner)              \
    ::ultra::check::PhaseChecker::instance().onNetDequeue(                  \
        (component), static_cast<std::uint64_t>(owner),                     \
        static_cast<std::uint64_t>(departOwner))
#define ULTRA_CHECK_SET_NET_DEPART_OWNERS(shards, shardOfUnit)              \
    ::ultra::check::PhaseChecker::instance().setNetDepartOwners(            \
        (shards), (shardOfUnit))
#define ULTRA_CHECK_NET_DEPART_BEGIN(cycle)                                 \
    ::ultra::check::PhaseChecker::instance().beginNetDepart((cycle))
#define ULTRA_CHECK_NET_DEPART_END()                                        \
    ::ultra::check::PhaseChecker::instance().endNetDepart()

#else

#define ULTRA_CHECK_COMPUTE_WRITE(component, owner) ((void)0)
#define ULTRA_CHECK_COMPUTE_READ(component, owner) ((void)0)
#define ULTRA_CHECK_COMMIT_ONLY(component) ((void)0)
#define ULTRA_CHECK_SET_OWNERS(shards, shardOfOwner) ((void)0)
#define ULTRA_CHECK_COMPUTE_BEGIN(cycle) ((void)0)
#define ULTRA_CHECK_COMPUTE_END() ((void)0)
#define ULTRA_CHECK_BIND_SHARD(shard) ((void)0)
#define ULTRA_CHECK_UNBIND_SHARD() ((void)0)
#define ULTRA_CHECK_NET_MUTATE(component, unit) ((void)0)
#define ULTRA_CHECK_SET_NET_OWNERS(shards, shardOfUnit) ((void)0)
#define ULTRA_CHECK_NET_COMPUTE_BEGIN(cycle) ((void)0)
#define ULTRA_CHECK_NET_COMPUTE_END() ((void)0)
#define ULTRA_CHECK_NET_DEQUEUE(component, owner, departOwner) ((void)0)
#define ULTRA_CHECK_SET_NET_DEPART_OWNERS(shards, shardOfUnit) ((void)0)
#define ULTRA_CHECK_NET_DEPART_BEGIN(cycle) ((void)0)
#define ULTRA_CHECK_NET_DEPART_END() ((void)0)

#endif // ULTRA_CHECK_ENABLED

#endif // ULTRA_CHECK_PHASE_CHECK_H
