#include "check/phase_check.h"

#include <cstdlib>
#include <sstream>

#include "common/log.h"

namespace ultra::check
{

namespace
{

/** Shard the calling thread acts for during the compute phase. */
// ultralint: allow(UL-DET-003): the checker itself must know which
// shard a thread acts for; this never feeds committed state.
thread_local int tlsShard = -1;

const char *
kindName(Violation::Kind kind)
{
    switch (kind) {
      case Violation::Kind::CrossShardWrite:
        return "cross-shard write";
      case Violation::Kind::CrossShardRead:
        return "cross-shard read";
      case Violation::Kind::CommitOnlyInCompute:
        return "commit-only mutator in compute phase";
    }
    return "unknown";
}

} // namespace

std::string
Violation::describe() const
{
    std::ostringstream os;
    os << "ultra::check: " << kindName(kind) << ": " << component;
    if (owner != kNoOwner)
        os << " (owner " << owner << ", shard " << ownerShard << ")";
    os << " from ";
    if (actingShard < 0)
        os << "unbound thread";
    else
        os << "shard " << actingShard;
    os << " at cycle " << cycle;
    return os.str();
}

PhaseChecker::PhaseChecker()
{
    const char *abort_env = std::getenv("ULTRA_CHECK_ABORT");
    failFast_ = abort_env != nullptr && abort_env[0] != '\0' &&
                abort_env[0] != '0';
}

PhaseChecker &
PhaseChecker::instance()
{
    static PhaseChecker checker;
    return checker;
}

void
PhaseChecker::setOwners(unsigned shards, std::vector<unsigned> shardOfOwner)
{
    ULTRA_ASSERT(!inCompute_,
                 "ownership may only change between compute phases");
    ULTRA_ASSERT(shards >= 1);
    shards_ = shards;
    shardOfOwner_ = std::move(shardOfOwner);
}

void
PhaseChecker::beginCompute(Cycle cycle)
{
    ULTRA_ASSERT(!inCompute_, "nested compute phases");
    ULTRA_ASSERT(!inNetCompute_, "PE compute inside network compute");
    cycle_ = cycle;
    inCompute_ = true;
}

void
PhaseChecker::endCompute()
{
    inCompute_ = false;
}

void
PhaseChecker::setNetOwners(unsigned shards,
                           std::vector<unsigned> shardOfUnit)
{
    ULTRA_ASSERT(!inNetCompute_,
                 "net ownership may only change between compute phases");
    ULTRA_ASSERT(shards >= 1);
    netShards_ = shards;
    netShardOfUnit_ = std::move(shardOfUnit);
}

void
PhaseChecker::beginNetCompute(Cycle cycle)
{
    ULTRA_ASSERT(!inNetCompute_, "nested network compute phases");
    ULTRA_ASSERT(!inCompute_, "network compute inside PE compute");
    cycle_ = cycle;
    inNetCompute_ = true;
}

void
PhaseChecker::endNetCompute()
{
    inNetCompute_ = false;
}

void
PhaseChecker::setNetDepartOwners(unsigned shards,
                                 std::vector<unsigned> shardOfUnit)
{
    ULTRA_ASSERT(!inNetDepart_,
                 "departure ownership may only change between windows");
    ULTRA_ASSERT(shards >= 1);
    departShards_ = shards;
    departShardOfUnit_ = std::move(shardOfUnit);
}

void
PhaseChecker::beginNetDepart(Cycle cycle)
{
    ULTRA_ASSERT(!inNetDepart_, "nested network departure windows");
    ULTRA_ASSERT(!inCompute_ && !inNetCompute_,
                 "departure window inside a compute phase");
    cycle_ = cycle;
    inNetDepart_ = true;
}

void
PhaseChecker::endNetDepart()
{
    inNetDepart_ = false;
}

void
PhaseChecker::bindShard(unsigned shard)
{
    tlsShard = static_cast<int>(shard);
}

void
PhaseChecker::unbindShard()
{
    tlsShard = -1;
}

int
PhaseChecker::currentShard()
{
    return tlsShard;
}

int
PhaseChecker::shardOf(std::uint64_t owner) const
{
    if (owner >= shardOfOwner_.size())
        return -1; // unowned: not subject to ownership checks
    return static_cast<int>(shardOfOwner_[owner]);
}

void
PhaseChecker::onComputeWrite(const char *component, std::uint64_t owner)
{
    if (!inCompute_)
        return; // the sequential commit phase may touch anything
    const int owner_shard = shardOf(owner);
    if (owner_shard < 0)
        return;
    if (tlsShard == owner_shard)
        return;
    record(Violation::Kind::CrossShardWrite, component, owner,
           owner_shard);
}

void
PhaseChecker::onComputeRead(const char *component, std::uint64_t owner)
{
    if (!inCompute_)
        return;
    const int owner_shard = shardOf(owner);
    if (owner_shard < 0)
        return;
    if (tlsShard == owner_shard)
        return;
    record(Violation::Kind::CrossShardRead, component, owner,
           owner_shard);
}

void
PhaseChecker::onCommitOnly(const char *component)
{
    if (!inCompute_ && !inNetCompute_)
        return;
    record(Violation::Kind::CommitOnlyInCompute, component,
           Violation::kNoOwner, 0);
}

void
PhaseChecker::onNetMutate(const char *component, std::uint64_t unit)
{
    if (inCompute_) {
        // The network is frozen during the PE compute phase.
        record(Violation::Kind::CommitOnlyInCompute, component, unit, 0);
        return;
    }
    if (inNetDepart_) {
        // During the parallel departure window a unit's state may only
        // be mutated by the shard driving that unit in the current
        // per-stage dispatch.
        if (unit >= departShardOfUnit_.size()) {
            record(Violation::Kind::CrossShardWrite, component, unit, 0);
            return;
        }
        const int owner_shard =
            static_cast<int>(departShardOfUnit_[unit]);
        if (tlsShard != owner_shard) {
            record(Violation::Kind::CrossShardWrite, component, unit,
                   owner_shard);
        }
        return;
    }
    if (!inNetCompute_)
        return; // sequential phase may touch anything
    if (unit >= netShardOfUnit_.size()) {
        // Unit-less (or unmapped) state may never be touched by a
        // network compute shard.
        record(Violation::Kind::CrossShardWrite, component, unit, 0);
        return;
    }
    const int owner_shard = static_cast<int>(netShardOfUnit_[unit]);
    if (tlsShard == owner_shard)
        return;
    record(Violation::Kind::CrossShardWrite, component, unit,
           owner_shard);
}

void
PhaseChecker::onNetDequeue(const char *component, std::uint64_t unit,
                           std::uint64_t departUnit)
{
    if (!inNetDepart_) {
        // Outside a departure window a dequeue follows the ordinary
        // arrival-ownership rule.
        onNetMutate(component, unit);
        return;
    }
    // Inside the window the legal puller is the queue's *departure*
    // owner (the downstream receiver), not its arrival owner.
    if (departUnit >= departShardOfUnit_.size()) {
        // Sequential-only queue (no departure owner bound, e.g. the
        // final-stage-to-MNI ports) pulled from a parallel window.
        record(Violation::Kind::CrossShardWrite, component, departUnit,
               0);
        return;
    }
    const int owner_shard =
        static_cast<int>(departShardOfUnit_[departUnit]);
    if (tlsShard != owner_shard) {
        record(Violation::Kind::CrossShardWrite, component, departUnit,
               owner_shard);
    }
}

void
PhaseChecker::record(Violation::Kind kind, const char *component,
                     std::uint64_t owner, int owner_shard)
{
    Violation v;
    v.kind = kind;
    v.component = component;
    v.owner = owner;
    v.ownerShard = owner_shard < 0 ? 0 : static_cast<unsigned>(owner_shard);
    v.actingShard = tlsShard;
    v.cycle = cycle_;

    if (failFast_)
        panic(v.describe());

    const std::uint64_t n =
        count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    if (violations_.size() < recordLimit())
        violations_.push_back(v);
    // Warn for the first few; a broken contract inside a long run would
    // otherwise flood the log with millions of identical lines.
    if (n < 8)
        warn(v.describe());
    else if (n == 8)
        warn("ultra::check: further violations suppressed (see "
             "check.violations)");
}

std::vector<Violation>
PhaseChecker::violations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return violations_;
}

void
PhaseChecker::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    violations_.clear();
    count_.store(0, std::memory_order_relaxed);
}

} // namespace ultra::check
