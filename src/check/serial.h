/**
 * @file
 * Serialization-principle verifier: a small model-checking harness for
 * the ultra::rt coordination primitives.
 *
 * The paper's central correctness claim is the *serialization
 * principle* (section 2.2): "the effect of simultaneous actions by the
 * PEs is as if the actions occurred in some (unspecified) serial
 * order".  This harness makes the claim checkable: an algorithm (the
 * appendix's TIR/TDR parallel queue, the readers-writers solution, the
 * sense-reversing barrier, fetch-and-add itself) is expressed as a
 * handful of *atomic steps* per process on a 2-4 PE paracomputer
 * model, the explorer enumerates every interleaving of those steps,
 * and each outcome is judged -- by a linearizability check against a
 * sequential specification, or by a state invariant such as
 * reader/writer mutual exclusion.
 *
 * Exhaustive enumeration uses sleep-set partial-order reduction (the
 * DPOR family): once an interleaving starting with step `t` has been
 * explored from a state, sibling explorations may skip `t` until some
 * dependent step wakes it, which prunes schedules that merely commute
 * independent steps.  For configurations beyond exhaustive reach a
 * seeded random-walk fallback samples schedules instead.
 *
 * Spin waits are modeled as steps that are *enabled* only when their
 * condition holds, so busy loops add no interleavings; a state where
 * no process is enabled but not all have finished is reported as a
 * deadlock.
 */

#ifndef ULTRA_CHECK_SERIAL_H
#define ULTRA_CHECK_SERIAL_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ultra::check
{

/** One process's control state inside a model. */
struct ProcState
{
    int pc = 0;                        //!< program counter
    std::array<std::int64_t, 4> reg{}; //!< private registers
    bool done = false;
    std::uint64_t invokeStep = 0; //!< step index the current op began at
};

/** A completed operation in the history (for linearizability). */
struct HistOp
{
    unsigned proc = 0;
    int kind = 0;              //!< model-defined op code
    std::int64_t arg = 0;
    std::int64_t result = 0;
    std::uint64_t invokeStep = 0;   //!< global step index at invocation
    std::uint64_t responseStep = 0; //!< global step index at response
};

/** Full system state: shared paracomputer memory + processes. */
struct SysState
{
    std::vector<std::int64_t> mem; //!< shared memory cells
    std::vector<ProcState> procs;
    std::vector<HistOp> history; //!< completed operations, in response order
    std::uint64_t steps = 0;     //!< atomic actions executed so far
};

/** Shared-memory footprint of a process's next atomic action. */
struct Footprint
{
    int loc = -1;      //!< shared cell index; -1 = touches none
    bool write = false; //!< true for writes and read-modify-writes
};

/**
 * An algorithm under verification.  Every step() must be one atomic
 * action on at most one shared cell (that is the paracomputer model:
 * loads, stores and fetch-and-phi are indivisible, nothing bigger is).
 */
class Model
{
  public:
    virtual ~Model() = default;

    virtual std::string name() const = 0;
    virtual unsigned numProcs() const = 0;
    virtual SysState initial() const = 0;

    /** May process @p p take its next step in @p s?  (False for done
     *  processes and for spin waits whose condition is not yet met.) */
    virtual bool enabled(const SysState &s, unsigned p) const = 0;

    /** Footprint of @p p's next step (for the independence relation). */
    virtual Footprint footprint(const SysState &s, unsigned p) const = 0;

    /** Execute @p p's next atomic step. */
    virtual void step(SysState &s, unsigned p) const = 0;

    /** Invariant over every reachable state; empty string = holds. */
    virtual std::string checkState(const SysState &) const { return {}; }

    /** Verdict on a terminal state (all processes done). */
    virtual std::string checkOutcome(const SysState &) const { return {}; }
};

/** Exploration limits and switches. */
struct ExploreOptions
{
    std::uint64_t maxStates = 200'000'000;
    std::uint64_t maxDepth = 4096;
    std::size_t maxViolations = 8; //!< stop collecting after this many
    bool sleepSets = true;         //!< DPOR-style reduction on/off
};

/** Result of an exploration (exhaustive or sampled). */
struct ExploreResult
{
    std::uint64_t statesExplored = 0;
    std::uint64_t schedules = 0;   //!< terminal states reached
    std::uint64_t sleepPruned = 0; //!< branches skipped by reduction
    bool truncated = false;        //!< hit maxStates/maxDepth
    std::vector<std::string> violations;

    bool ok() const { return violations.empty() && !truncated; }
};

/** Exhaustively enumerate interleavings of @p m (with reduction). */
ExploreResult explore(const Model &m, const ExploreOptions &opts = {});

/**
 * Seeded random-walk fallback: run @p walks complete schedules choosing
 * uniformly among enabled processes.  Invariants and outcomes are
 * checked exactly as in explore(); coverage is sampled, not complete.
 */
ExploreResult randomWalks(const Model &m, std::uint64_t walks,
                          std::uint64_t seed,
                          const ExploreOptions &opts = {});

/**
 * Linearizability judge (Wing-Gong style): does some permutation of
 * @p history -- consistent with its real-time precedence (op A before
 * op B when A responded before B was invoked) -- replay legally
 * against the sequential specification @p spec?
 *
 * Spec is a copyable value with `bool apply(const HistOp &)` returning
 * whether the op (with its recorded result) is legal next in sequence,
 * mutating the spec state when it is.
 */
template <typename Spec>
bool
linearizable(const std::vector<HistOp> &history, Spec spec)
{
    const std::size_t n = history.size();
    std::vector<char> used(n, 0);

    struct Rec
    {
        const std::vector<HistOp> &hist;
        std::vector<char> &used;

        bool
        minimal(std::size_t i) const
        {
            // i may be linearized next only if no unused op finished
            // before i was invoked.
            for (std::size_t j = 0; j < hist.size(); ++j) {
                if (!used[j] && j != i &&
                    hist[j].responseStep < hist[i].invokeStep) {
                    return false;
                }
            }
            return true;
        }

        bool
        search(const Spec &state, std::size_t placed)
        {
            if (placed == hist.size())
                return true;
            for (std::size_t i = 0; i < hist.size(); ++i) {
                if (used[i] || !minimal(i))
                    continue;
                Spec next = state;
                if (!next.apply(hist[i]))
                    continue;
                used[i] = 1;
                if (search(next, placed + 1))
                    return true;
                used[i] = 0;
            }
            return false;
        }
    };

    Rec rec{history, used};
    return rec.search(spec, 0);
}

} // namespace ultra::check

#endif // ULTRA_CHECK_SERIAL_H
