#include "check/serial.h"

#include <sstream>

#include "common/rng.h"

namespace ultra::check
{

namespace
{

/**
 * Independence of the *next* steps of two distinct processes in state
 * @p s: they commute unless both touch the same shared cell and at
 * least one writes it.  (Each step touches at most one cell, so one
 * footprint comparison decides.)
 */
bool
independent(const Model &m, const SysState &s, unsigned p, unsigned q)
{
    const Footprint a = m.footprint(s, p);
    const Footprint b = m.footprint(s, q);
    if (a.loc < 0 || b.loc < 0 || a.loc != b.loc)
        return true;
    return !a.write && !b.write;
}

std::string
describeStuck(const SysState &s)
{
    std::ostringstream os;
    os << "deadlock: no process enabled;";
    for (std::size_t p = 0; p < s.procs.size(); ++p) {
        if (!s.procs[p].done)
            os << " proc " << p << " stuck at pc " << s.procs[p].pc;
    }
    return os.str();
}

struct Dfs
{
    const Model &model;
    const ExploreOptions &opts;
    ExploreResult result;

    void
    addViolation(std::string msg)
    {
        if (result.violations.size() < opts.maxViolations)
            result.violations.push_back(std::move(msg));
    }

    bool
    limited() const
    {
        return result.statesExplored >= opts.maxStates ||
               result.violations.size() >= opts.maxViolations;
    }

    void
    visit(const SysState &s, std::vector<char> sleep, std::uint64_t depth)
    {
        if (limited() || depth > opts.maxDepth) {
            result.truncated = true;
            return;
        }
        ++result.statesExplored;

        if (std::string err = model.checkState(s); !err.empty())
            addViolation(model.name() + ": " + err);

        const unsigned procs = model.numProcs();
        bool any_enabled = false;
        bool all_done = true;
        for (unsigned p = 0; p < procs; ++p) {
            any_enabled = any_enabled || model.enabled(s, p);
            all_done = all_done && s.procs[p].done;
        }
        if (!any_enabled) {
            if (all_done) {
                ++result.schedules;
                if (std::string err = model.checkOutcome(s); !err.empty())
                    addViolation(model.name() + ": " + err);
            } else {
                addViolation(model.name() + ": " + describeStuck(s));
            }
            return;
        }

        for (unsigned p = 0; p < procs; ++p) {
            if (!model.enabled(s, p))
                continue;
            if (opts.sleepSets && sleep[p]) {
                ++result.sleepPruned;
                continue;
            }
            SysState next = s;
            ++next.steps;
            model.step(next, p);

            // A sleeping step stays asleep in the child only while it
            // is independent of the step just taken.
            std::vector<char> child_sleep(procs, 0);
            for (unsigned q = 0; q < procs; ++q) {
                if (sleep[q] && q != p && independent(model, s, p, q))
                    child_sleep[q] = 1;
            }
            visit(next, std::move(child_sleep), depth + 1);
            if (limited()) {
                // The budget ran out mid-loop: abandoning a sibling
                // that would otherwise have been explored is a
                // truncation even when the final visit() landed
                // exactly on a terminal state.
                for (unsigned q = p + 1; q < procs; ++q) {
                    if (model.enabled(s, q) &&
                        !(opts.sleepSets && sleep[q])) {
                        result.truncated = true;
                        break;
                    }
                }
                return;
            }
            sleep[p] = 1; // later siblings needn't start with p again
        }
    }
};

} // namespace

ExploreResult
explore(const Model &m, const ExploreOptions &opts)
{
    Dfs dfs{m, opts, {}};
    dfs.visit(m.initial(), std::vector<char>(m.numProcs(), 0), 0);
    return dfs.result;
}

ExploreResult
randomWalks(const Model &m, std::uint64_t walks, std::uint64_t seed,
            const ExploreOptions &opts)
{
    ExploreResult result;
    Rng rng(seed);
    const unsigned procs = m.numProcs();
    std::vector<unsigned> enabled;
    for (std::uint64_t walk = 0; walk < walks; ++walk) {
        SysState s = m.initial();
        for (std::uint64_t depth = 0;; ++depth) {
            if (depth > opts.maxDepth) {
                result.truncated = true;
                break;
            }
            ++result.statesExplored;
            if (std::string err = m.checkState(s); !err.empty()) {
                if (result.violations.size() < opts.maxViolations)
                    result.violations.push_back(m.name() + ": " + err);
                break;
            }
            enabled.clear();
            bool all_done = true;
            for (unsigned p = 0; p < procs; ++p) {
                if (m.enabled(s, p))
                    enabled.push_back(p);
                all_done = all_done && s.procs[p].done;
            }
            if (enabled.empty()) {
                ++result.schedules;
                std::string err = all_done ? m.checkOutcome(s)
                                           : describeStuck(s);
                if (!err.empty() &&
                    result.violations.size() < opts.maxViolations) {
                    result.violations.push_back(m.name() + ": " + err);
                }
                break;
            }
            const unsigned p = enabled[rng.uniformInt(
                static_cast<std::uint64_t>(enabled.size()))];
            ++s.steps;
            m.step(s, p);
        }
        if (result.violations.size() >= opts.maxViolations)
            break;
    }
    return result;
}

} // namespace ultra::check
