#include "check/models.h"

#include <deque>
#include <numeric>
#include <sstream>

#include "common/log.h"

namespace ultra::check
{

namespace
{

/** Record the completion of proc @p p's operation. */
void
complete(SysState &s, unsigned p, int kind, std::int64_t arg,
         std::int64_t result)
{
    ProcState &proc = s.procs[p];
    HistOp op;
    op.proc = p;
    op.kind = kind;
    op.arg = arg;
    op.result = result;
    op.invokeStep = proc.invokeStep;
    op.responseStep = s.steps;
    s.history.push_back(op);
    proc.done = true;
}

/** Mark the first action of an operation (steps are 1-based). */
void
invoke(SysState &s, unsigned p)
{
    if (s.procs[p].invokeStep == 0)
        s.procs[p].invokeStep = s.steps;
}

/** Sequential counter: the serialization principle for fetch-and-add. */
struct CounterSpec
{
    std::int64_t value = 0;

    bool
    apply(const HistOp &op)
    {
        if (op.result != value)
            return false;
        value += op.arg;
        return true;
    }
};

/** Render a history for violation messages (diagnosis needs it). */
std::string
describeHistory(const std::vector<HistOp> &history)
{
    std::ostringstream os;
    for (const HistOp &op : history) {
        os << " p" << op.proc << ":"
           << (op.kind == kOpInsert ? "ins"
               : op.kind == kOpDelete ? "del"
                                      : "fa")
           << "(" << op.arg << ")->" << op.result << "@[" << op.invokeStep
           << "," << op.responseStep << "]";
    }
    return os.str();
}

/** Sequential bounded FIFO queue (the appendix queue's specification). */
struct BoundedQueueSpec
{
    std::deque<std::int64_t> items;
    std::size_t capacity = 0;

    bool
    apply(const HistOp &op)
    {
        if (op.kind == kOpInsert) {
            if (op.result == kQueueFail)
                return items.size() >= capacity;
            if (items.size() >= capacity)
                return false;
            items.push_back(op.arg);
            return true;
        }
        ULTRA_ASSERT(op.kind == kOpDelete);
        if (op.result == kQueueFail)
            return items.empty();
        if (items.empty() || items.front() != op.result)
            return false;
        items.pop_front();
        return true;
    }
};

// ---------------------------------------------------------------------
// Fetch-and-add (and its broken load/store cousin)
// ---------------------------------------------------------------------

class FetchAddModel final : public Model
{
  public:
    explicit FetchAddModel(unsigned procs) : procs_(procs) {}

    std::string name() const override { return "fetch_and_add"; }
    unsigned numProcs() const override { return procs_; }

    SysState
    initial() const override
    {
        SysState s;
        s.mem.assign(1, 0);
        s.procs.resize(procs_);
        return s;
    }

    bool
    enabled(const SysState &s, unsigned p) const override
    {
        return !s.procs[p].done;
    }

    Footprint
    footprint(const SysState &, unsigned) const override
    {
        return {0, true};
    }

    void
    step(SysState &s, unsigned p) const override
    {
        invoke(s, p);
        const std::int64_t inc = incOf(p);
        const std::int64_t old = s.mem[0];
        s.mem[0] += inc;
        complete(s, p, kOpFetchAdd, inc, old);
    }

    std::string
    checkOutcome(const SysState &s) const override
    {
        std::int64_t total = 0;
        for (unsigned p = 0; p < procs_; ++p)
            total += incOf(p);
        if (s.mem[0] != total) {
            std::ostringstream os;
            os << "final value " << s.mem[0] << " != sum of increments "
               << total;
            return os.str();
        }
        if (!linearizable(s.history, CounterSpec{}))
            return "fetched values match no serial order";
        return {};
    }

  private:
    std::int64_t
    incOf(unsigned p) const
    {
        return static_cast<std::int64_t>(1) << p;
    }

    unsigned procs_;
};

class BrokenCounterModel final : public Model
{
  public:
    explicit BrokenCounterModel(unsigned procs) : procs_(procs) {}

    std::string name() const override { return "broken_counter"; }
    unsigned numProcs() const override { return procs_; }

    SysState
    initial() const override
    {
        SysState s;
        s.mem.assign(1, 0);
        s.procs.resize(procs_);
        return s;
    }

    bool
    enabled(const SysState &s, unsigned p) const override
    {
        return !s.procs[p].done;
    }

    Footprint
    footprint(const SysState &s, unsigned p) const override
    {
        return {0, s.procs[p].pc == 1};
    }

    void
    step(SysState &s, unsigned p) const override
    {
        ProcState &proc = s.procs[p];
        switch (proc.pc) {
          case 0: // r0 = Load(V)  -- NOT combined with the store below
            invoke(s, p);
            proc.reg[0] = s.mem[0];
            proc.pc = 1;
            break;
          case 1: // Store(V, r0 + 1)
            s.mem[0] = proc.reg[0] + 1;
            complete(s, p, kOpFetchAdd, 1, proc.reg[0]);
            break;
          default:
            panic("broken_counter: bad pc");
        }
    }

    std::string
    checkOutcome(const SysState &s) const override
    {
        if (!linearizable(s.history, CounterSpec{}))
            return "fetched values match no serial order";
        if (s.mem[0] != static_cast<std::int64_t>(procs_))
            return "lost update: final value != number of increments";
        return {};
    }

  private:
    unsigned procs_;
};

// ---------------------------------------------------------------------
// The appendix's TIR/TDR parallel queue
// ---------------------------------------------------------------------

/*
 * Cell layout: mem[0] = #Qu (upper), mem[1] = #Qi (lower),
 * mem[2] = insert pointer, mem[3] = delete pointer, then per queue
 * cell i: mem[4+3i] = insSeq, mem[5+3i] = delSeq, mem[6+3i] = value.
 *
 * Registers: reg[0] = FA result, reg[1] = round, reg[2] = cell index,
 * reg[3] = value taken (deleters).
 */
class ParallelQueueModel final : public Model
{
  public:
    ParallelQueueModel(std::string shape, unsigned capacity)
        : shape_(std::move(shape)), cap_(capacity)
    {
        ULTRA_ASSERT(cap_ >= 1);
        for (char c : shape_)
            ULTRA_ASSERT(c == 'i' || c == 'd', "shape chars are i/d");
    }

    std::string
    name() const override
    {
        std::ostringstream os;
        os << "parallel_queue[" << shape_ << ",cap=" << cap_ << "]";
        return os.str();
    }

    unsigned
    numProcs() const override
    {
        return static_cast<unsigned>(shape_.size());
    }

    SysState
    initial() const override
    {
        SysState s;
        s.mem.assign(4 + 3 * static_cast<std::size_t>(cap_), 0);
        s.procs.resize(shape_.size());
        return s;
    }

    bool
    enabled(const SysState &s, unsigned p) const override
    {
        const ProcState &proc = s.procs[p];
        if (proc.done)
            return false;
        if (proc.pc != 3)
            return true;
        // Spin at MyI / MyD: wait for this cell's round to come up.
        if (inserter(p))
            return s.mem[delSeqLoc(proc.reg[2])] == proc.reg[1];
        return s.mem[insSeqLoc(proc.reg[2])] == proc.reg[1] + 1;
    }

    Footprint
    footprint(const SysState &s, unsigned p) const override
    {
        const ProcState &proc = s.procs[p];
        const bool ins = inserter(p);
        switch (proc.pc) {
          case 0:
            return {ins ? kUpper : kLower, false};
          case 1:
          case 11:
            return {ins ? kUpper : kLower, true};
          case 2:
            return {ins ? kInsPtr : kDelPtr, true};
          case 3:
            return {static_cast<int>(ins ? delSeqLoc(proc.reg[2])
                                         : insSeqLoc(proc.reg[2])),
                    false};
          case 4:
            return {static_cast<int>(valueLoc(proc.reg[2])), ins};
          case 5:
            return {static_cast<int>(ins ? insSeqLoc(proc.reg[2])
                                         : delSeqLoc(proc.reg[2])),
                    true};
          case 6:
            return {ins ? kLower : kUpper, true};
          default:
            panic("parallel_queue: bad pc");
        }
    }

    void
    step(SysState &s, unsigned p) const override
    {
        if (inserter(p))
            stepInsert(s, p);
        else
            stepDelete(s, p);
    }

    std::string
    checkOutcome(const SysState &s) const override
    {
        // Conservation: with no operation in flight the bounds agree
        // and equal the net number of successful inserts.
        std::int64_t net = 0;
        for (const HistOp &op : s.history) {
            if (op.kind == kOpInsert && op.result != kQueueFail)
                ++net;
            if (op.kind == kOpDelete && op.result != kQueueFail)
                --net;
        }
        if (s.mem[kUpper] != net || s.mem[kLower] != net)
            return "occupancy bounds disagree with completed ops";

        // Successful operations must linearize to a serial bounded
        // FIFO.  Failed (full/empty) returns are deliberately held to
        // the weaker bound-consistency the appendix guarantees: #Qu
        // counts an insert from its first action, #Qi only from its
        // completion, so a half-visible insert can look "full" to an
        // inserter and "empty" to a deleter at the same moment -- a
        // real, observable behavior of the algorithm, and NOT
        // linearizable against the FIFO spec (verified by the strict
        // judge in tests/serial_test.cc).
        std::vector<HistOp> successes;
        for (const HistOp &op : s.history) {
            if (op.result == kQueueFail) {
                if (std::string err = justifyFailure(s.history, op);
                    !err.empty()) {
                    return err;
                }
            } else {
                successes.push_back(op);
            }
        }
        if (!linearizable(successes, BoundedQueueSpec{{}, cap_}))
            return "successful ops match no serial FIFO order:" +
                   describeHistory(s.history);
        return {};
    }

  private:
    static constexpr int kUpper = 0;
    static constexpr int kLower = 1;
    static constexpr int kInsPtr = 2;
    static constexpr int kDelPtr = 3;

    /**
     * A failed return must be justified by the bound variable it
     * tested.  The justification is a permissive estimate of that
     * bound's extreme value during the op's interval: an operation
     * counts toward #Qu from invocation and toward #Qi from response,
     * and a failed op's transient increment/decrement window counts
     * whenever it can overlap @p f.  A "full" with no conceivable
     * occupancy, or an "empty" with completed un-deleted items and no
     * concurrent deleters, is a violation.
     */
    std::string
    justifyFailure(const std::vector<HistOp> &history,
                   const HistOp &f) const
    {
        std::int64_t bound = 0;
        if (f.kind == kOpInsert) {
            for (const HistOp &op : history) {
                if (&op == &f)
                    continue;
                if (op.kind == kOpInsert && op.result != kQueueFail &&
                    op.invokeStep < f.responseStep) {
                    ++bound; // counted in #Qu from its first action
                }
                if (op.kind == kOpInsert && op.result == kQueueFail &&
                    op.invokeStep < f.responseStep &&
                    op.responseStep > f.invokeStep) {
                    ++bound; // TIR window (increment..undo) overlaps f
                }
                if (op.kind == kOpDelete && op.result != kQueueFail &&
                    op.responseStep < f.invokeStep) {
                    --bound; // certainly decremented #Qu before f began
                }
            }
            if (bound < static_cast<std::int64_t>(cap_)) {
                return "insert reported full with no justifying "
                       "occupancy:" +
                       describeHistory(history);
            }
            return {};
        }
        ULTRA_ASSERT(f.kind == kOpDelete);
        for (const HistOp &op : history) {
            if (&op == &f)
                continue;
            if (op.kind == kOpInsert && op.result != kQueueFail &&
                op.responseStep < f.invokeStep) {
                ++bound; // certainly published in #Qi before f began
            }
            if (op.kind == kOpDelete && op.result != kQueueFail &&
                op.invokeStep < f.responseStep) {
                --bound; // may have decremented #Qi before f tested
            }
            if (op.kind == kOpDelete && op.result == kQueueFail &&
                op.invokeStep < f.responseStep &&
                op.responseStep > f.invokeStep) {
                --bound; // TDR window (decrement..undo) overlaps f
            }
        }
        if (bound > 0) {
            return "delete reported empty with completed items "
                   "present:" +
                   describeHistory(history);
        }
        return {};
    }

    std::size_t
    delSeqLoc(std::int64_t cell) const
    {
        return 5 + 3 * static_cast<std::size_t>(cell);
    }
    std::size_t
    insSeqLoc(std::int64_t cell) const
    {
        return 4 + 3 * static_cast<std::size_t>(cell);
    }
    std::size_t
    valueLoc(std::int64_t cell) const
    {
        return 6 + 3 * static_cast<std::size_t>(cell);
    }

    bool inserter(unsigned p) const { return shape_[p] == 'i'; }

    std::int64_t
    valueOf(unsigned p) const
    {
        return 100 + static_cast<std::int64_t>(p);
    }

    void
    stepInsert(SysState &s, unsigned p) const
    {
        ProcState &proc = s.procs[p];
        const std::int64_t v = valueOf(p);
        switch (proc.pc) {
          case 0: // TIR initial test on #Qu
            invoke(s, p);
            if (s.mem[kUpper] + 1 > static_cast<std::int64_t>(cap_)) {
                complete(s, p, kOpInsert, v, kQueueFail);
                return;
            }
            proc.pc = 1;
            break;
          case 1: // TIR increment + retest
            proc.reg[0] = s.mem[kUpper]++;
            proc.pc = proc.reg[0] + 1 <= static_cast<std::int64_t>(cap_)
                          ? 2
                          : 11;
            break;
          case 11: // TIR undo
            --s.mem[kUpper];
            complete(s, p, kOpInsert, v, kQueueFail);
            break;
          case 2: // MyI = FA(I, 1); round and cell are local derivations
            proc.reg[0] = s.mem[kInsPtr]++;
            proc.reg[1] = proc.reg[0] / cap_;
            proc.reg[2] = proc.reg[0] % cap_;
            proc.pc = 3;
            break;
          case 3: // observed delSeq == round (enabled() gated the spin)
            proc.pc = 4;
            break;
          case 4: // write the value into the cell
            s.mem[valueLoc(proc.reg[2])] = v;
            proc.pc = 5;
            break;
          case 5: // publish: insSeq = round + 1
            s.mem[insSeqLoc(proc.reg[2])] = proc.reg[1] + 1;
            proc.pc = 6;
            break;
          case 6: // #Qi increment completes the insert
            ++s.mem[kLower];
            complete(s, p, kOpInsert, v, 0);
            break;
          default:
            panic("parallel_queue insert: bad pc");
        }
    }

    void
    stepDelete(SysState &s, unsigned p) const
    {
        ProcState &proc = s.procs[p];
        switch (proc.pc) {
          case 0: // TDR initial test on #Qi
            invoke(s, p);
            if (s.mem[kLower] - 1 < 0) {
                complete(s, p, kOpDelete, 0, kQueueFail);
                return;
            }
            proc.pc = 1;
            break;
          case 1: // TDR decrement + retest
            proc.reg[0] = s.mem[kLower]--;
            proc.pc = proc.reg[0] - 1 >= 0 ? 2 : 11;
            break;
          case 11: // TDR undo
            ++s.mem[kLower];
            complete(s, p, kOpDelete, 0, kQueueFail);
            break;
          case 2: // MyD = FA(D, 1)
            proc.reg[0] = s.mem[kDelPtr]++;
            proc.reg[1] = proc.reg[0] / cap_;
            proc.reg[2] = proc.reg[0] % cap_;
            proc.pc = 3;
            break;
          case 3: // observed insSeq == round + 1
            proc.pc = 4;
            break;
          case 4: // take the value
            proc.reg[3] = s.mem[valueLoc(proc.reg[2])];
            proc.pc = 5;
            break;
          case 5: // free the cell: delSeq = round + 1
            s.mem[delSeqLoc(proc.reg[2])] = proc.reg[1] + 1;
            proc.pc = 6;
            break;
          case 6: // #Qu decrement completes the delete
            --s.mem[kUpper];
            complete(s, p, kOpDelete, 0, proc.reg[3]);
            break;
          default:
            panic("parallel_queue delete: bad pc");
        }
    }

    std::string shape_;
    unsigned cap_;
};

// ---------------------------------------------------------------------
// Readers-writers (section 2.3)
// ---------------------------------------------------------------------

/*
 * Cells: mem[0] = readers, mem[1] = writer, mem[2] = wticket,
 * mem[3] = wserving.  A reader is in its critical section at pc 2, a
 * writer at pc 4.
 */
class ReadersWritersModel final : public Model
{
  public:
    explicit ReadersWritersModel(std::string shape)
        : shape_(std::move(shape))
    {
        for (char c : shape_)
            ULTRA_ASSERT(c == 'r' || c == 'w', "shape chars are r/w");
    }

    std::string
    name() const override
    {
        return "readers_writers[" + shape_ + "]";
    }

    unsigned
    numProcs() const override
    {
        return static_cast<unsigned>(shape_.size());
    }

    SysState
    initial() const override
    {
        SysState s;
        s.mem.assign(4, 0);
        s.procs.resize(shape_.size());
        return s;
    }

    bool
    enabled(const SysState &s, unsigned p) const override
    {
        const ProcState &proc = s.procs[p];
        if (proc.done)
            return false;
        if (reader(p))
            return proc.pc != 4 || s.mem[kWriter] == 0;
        if (proc.pc == 1)
            return s.mem[kServing] == proc.reg[0];
        if (proc.pc == 3)
            return s.mem[kReaders] == 0;
        return true;
    }

    Footprint
    footprint(const SysState &s, unsigned p) const override
    {
        const int pc = s.procs[p].pc;
        if (reader(p)) {
            switch (pc) {
              case 0:
              case 2:
              case 3:
                return {kReaders, true};
              case 1:
              case 4:
                return {kWriter, false};
              default:
                panic("readers_writers reader: bad pc");
            }
        }
        switch (pc) {
          case 0:
            return {kTicket, true};
          case 1:
            return {kServing, false};
          case 2:
          case 4:
            return {kWriter, true};
          case 3:
            return {kReaders, false};
          case 5:
            return {kServing, true};
          default:
            panic("readers_writers writer: bad pc");
        }
    }

    void
    step(SysState &s, unsigned p) const override
    {
        ProcState &proc = s.procs[p];
        if (reader(p)) {
            switch (proc.pc) {
              case 0: // FA(readers, +1): optimistic entry
                invoke(s, p);
                ++s.mem[kReaders];
                proc.pc = 1;
                break;
              case 1: // check writer; 0 means fully parallel entry
                proc.pc = s.mem[kWriter] == 0 ? 2 : 3;
                break;
              case 2: // in CS; leaving: FA(readers, -1)
                --s.mem[kReaders];
                proc.done = true;
                break;
              case 3: // back off
                --s.mem[kReaders];
                proc.pc = 4;
                break;
              case 4: // observed writer == 0: retry from the top
                proc.pc = 0;
                break;
              default:
                panic("readers_writers reader: bad pc");
            }
            return;
        }
        switch (proc.pc) {
          case 0: // take a FIFO ticket among writers
            invoke(s, p);
            proc.reg[0] = s.mem[kTicket]++;
            proc.pc = 1;
            break;
          case 1: // observed wserving == ticket
            proc.pc = 2;
            break;
          case 2: // claim: writer = 1 (blocks new readers)
            s.mem[kWriter] = 1;
            proc.pc = 3;
            break;
          case 3: // observed readers == 0: enter CS
            proc.pc = 4;
            break;
          case 4: // in CS; leaving: writer = 0
            s.mem[kWriter] = 0;
            proc.pc = 5;
            break;
          case 5: // pass the baton to the next writer
            ++s.mem[kServing];
            proc.done = true;
            break;
          default:
            panic("readers_writers writer: bad pc");
        }
    }

    std::string
    checkState(const SysState &s) const override
    {
        unsigned readers_in_cs = 0;
        unsigned writers_in_cs = 0;
        for (unsigned p = 0; p < numProcs(); ++p) {
            if (s.procs[p].done)
                continue;
            if (reader(p) && s.procs[p].pc == 2)
                ++readers_in_cs;
            if (!reader(p) && s.procs[p].pc == 4)
                ++writers_in_cs;
        }
        if (writers_in_cs > 1)
            return "two writers in the critical section";
        if (writers_in_cs >= 1 && readers_in_cs >= 1)
            return "reader and writer in the critical section";
        return {};
    }

    std::string
    checkOutcome(const SysState &s) const override
    {
        if (s.mem[kReaders] != 0 || s.mem[kWriter] != 0 ||
            s.mem[kTicket] != s.mem[kServing]) {
            return "lock state not fully released";
        }
        return {};
    }

  private:
    static constexpr int kReaders = 0;
    static constexpr int kWriter = 1;
    static constexpr int kTicket = 2;
    static constexpr int kServing = 3;

    bool reader(unsigned p) const { return shape_[p] == 'r'; }

    std::string shape_;
};

// ---------------------------------------------------------------------
// Sense-reversing fetch-and-add barrier
// ---------------------------------------------------------------------

/*
 * Cells: mem[0] = count, mem[1] = sense, mem[2] = ghost total-arrivals
 * (incremented with the count FA; read only by the verifier).
 * Registers: reg[0] = my_sense, reg[1] = episodes completed.
 */
class BarrierModel final : public Model
{
  public:
    BarrierModel(unsigned procs, unsigned episodes)
        : procs_(procs), episodes_(episodes)
    {
        ULTRA_ASSERT(procs_ >= 1 && episodes_ >= 1);
    }

    std::string
    name() const override
    {
        std::ostringstream os;
        os << "barrier[p=" << procs_ << ",episodes=" << episodes_ << "]";
        return os.str();
    }

    unsigned numProcs() const override { return procs_; }

    SysState
    initial() const override
    {
        SysState s;
        s.mem.assign(3, 0);
        s.procs.resize(procs_);
        return s;
    }

    bool
    enabled(const SysState &s, unsigned p) const override
    {
        const ProcState &proc = s.procs[p];
        if (proc.done)
            return false;
        if (proc.pc == 4)
            return s.mem[kSense] == proc.reg[0]; // spin on sense flip
        return true;
    }

    Footprint
    footprint(const SysState &s, unsigned p) const override
    {
        switch (s.procs[p].pc) {
          case 0:
          case 3:
          case 4:
            return {kSense, s.procs[p].pc == 3};
          case 1:
          case 2:
            return {kCount, true};
          default:
            panic("barrier: bad pc");
        }
    }

    void
    step(SysState &s, unsigned p) const override
    {
        ProcState &proc = s.procs[p];
        switch (proc.pc) {
          case 0: // my_sense = 1 - sense
            invoke(s, p);
            proc.reg[0] = 1 - s.mem[kSense];
            proc.pc = 1;
            break;
          case 1: { // arrived = FA(count, +1)  (+ ghost arrival)
            const std::int64_t arrived = s.mem[kCount]++;
            ++s.mem[kGhostArrivals];
            proc.pc =
                arrived == static_cast<std::int64_t>(procs_) - 1 ? 2 : 4;
            break;
          }
          case 2: // last arriver resets the count...
            s.mem[kCount] = 0;
            proc.pc = 3;
            break;
          case 3: // ...then releases everyone by flipping the sense
            s.mem[kSense] = proc.reg[0];
            passEpisode(proc, p);
            break;
          case 4: // observed the sense flip
            passEpisode(proc, p);
            break;
          default:
            panic("barrier: bad pc");
        }
    }

    std::string
    checkState(const SysState &s) const override
    {
        // No process may complete episode e before all P processes
        // arrived e+1 times: the reuse property sense reversal buys.
        for (unsigned p = 0; p < procs_; ++p) {
            const std::int64_t passed = s.procs[p].reg[1];
            if (s.mem[kGhostArrivals] <
                passed * static_cast<std::int64_t>(procs_)) {
                std::ostringstream os;
                os << "proc " << p << " left episode " << passed
                   << " after only " << s.mem[kGhostArrivals]
                   << " arrivals";
                return os.str();
            }
        }
        return {};
    }

    std::string
    checkOutcome(const SysState &s) const override
    {
        if (s.mem[kCount] != 0)
            return "count not reset after final episode";
        if (s.mem[kGhostArrivals] !=
            static_cast<std::int64_t>(procs_) *
                static_cast<std::int64_t>(episodes_)) {
            return "arrival total inconsistent";
        }
        return {};
    }

  private:
    static constexpr int kCount = 0;
    static constexpr int kSense = 1;
    static constexpr int kGhostArrivals = 2;

    void
    passEpisode(ProcState &proc, unsigned) const
    {
        ++proc.reg[1];
        if (proc.reg[1] == static_cast<std::int64_t>(episodes_))
            proc.done = true;
        else
            proc.pc = 0;
    }

    unsigned procs_;
    unsigned episodes_;
};

/**
 * Receiver-pull departure window (see models.h).  Memory layout: cells
 * [0,U) upstream queues a[u], [U,2U) stage queues b[u], [2U,3U) final
 * landings c[u], then barrier count, barrier sense, and the message
 * pool's free counter.
 *
 * Program per unit (pcs):
 *   rank 0:  0 load a[u] / 1 store a[u]-1 / 2 load b[u] / 3 store
 *            b[u]+1, stage a free, loop msgsPerWire times
 *   barrier: 4..8 (sense-reversing FA barrier, as BarrierModel)
 *   rank 1:  9 load b[prev] (spins while empty) / 10 store b[prev]-1 /
 *            11 load c[u] / 12 store c[u]+1, stage a free, loop
 *   barrier: 13..17
 *   drain:   18 FA(pool, stagedFrees) -- drainUnitStaging, after the
 *            window closes
 *
 * Registers: reg[0] = last loaded occupancy, reg[1] = barrier sense,
 * reg[2] = messages left in the current rank, reg[3] = staged frees.
 */
class DepartWindowModel final : public Model
{
  public:
    DepartWindowModel(unsigned units, unsigned msgs, bool barrier)
        : units_(units), msgs_(msgs), barrier_(barrier)
    {
        ULTRA_ASSERT(units_ >= 2 && msgs_ >= 1);
    }

    std::string
    name() const override
    {
        std::ostringstream os;
        os << "depart[u=" << units_ << ",m=" << msgs_ << "]"
           << (barrier_ ? "" : "+nobarrier");
        return os.str();
    }

    unsigned numProcs() const override { return units_; }

    SysState
    initial() const override
    {
        SysState s;
        s.mem.assign(3 * units_ + 3, 0);
        for (unsigned u = 0; u < units_; ++u)
            s.mem[cellA(u)] = msgs_;
        s.procs.resize(units_);
        for (ProcState &proc : s.procs)
            proc.reg[2] = msgs_;
        return s;
    }

    bool
    enabled(const SysState &s, unsigned p) const override
    {
        const ProcState &proc = s.procs[p];
        if (proc.done)
            return false;
        if (proc.pc == 8 || proc.pc == 17)
            return s.mem[cellSense()] == proc.reg[1];
        if (proc.pc == 9)
            return s.mem[cellB(prev(p))] > 0; // eager pull: spin on empty
        return true;
    }

    Footprint
    footprint(const SysState &s, unsigned p) const override
    {
        switch (s.procs[p].pc) {
          case 0:
            return {cellA(p), false};
          case 1:
            return {cellA(p), true};
          case 2:
            return {cellB(p), false};
          case 3:
            return {cellB(p), true};
          case 9:
            return {cellB(prev(p)), false};
          case 10:
            return {cellB(prev(p)), true};
          case 11:
            return {cellC(p), false};
          case 12:
            return {cellC(p), true};
          case 4:
          case 8:
          case 13:
          case 17:
            return {cellSense(), false};
          case 7:
          case 16:
            return {cellSense(), true};
          case 5:
          case 6:
          case 14:
          case 15:
            return {cellCount(), true};
          case 18:
            return {cellPool(), true};
          default:
            panic("depart: bad pc");
        }
    }

    void
    step(SysState &s, unsigned p) const override
    {
        ProcState &proc = s.procs[p];
        switch (proc.pc) {
          case 0: // dequeue my rank-0 wire: load upstream occupancy
            proc.reg[0] = s.mem[cellA(p)];
            proc.pc = 1;
            break;
          case 1: // ...store it back decremented (non-atomic pair)
            s.mem[cellA(p)] = proc.reg[0] - 1;
            proc.pc = 2;
            break;
          case 2: // enqueue into my own stage queue: load occupancy
            proc.reg[0] = s.mem[cellB(p)];
            proc.pc = 3;
            break;
          case 3: // ...store it back incremented; stage the slot free
            s.mem[cellB(p)] = proc.reg[0] + 1;
            ++proc.reg[3];
            if (--proc.reg[2] > 0) {
                proc.pc = 0;
            } else {
                proc.reg[2] = msgs_;
                proc.pc = barrier_ ? 4 : 9;
            }
            break;
          case 9: // rank 1: dequeue the cross-unit wire from prev's
                  // stage queue (this is the receiver-pull ownership)
            proc.reg[0] = s.mem[cellB(prev(p))];
            proc.pc = 10;
            break;
          case 10:
            s.mem[cellB(prev(p))] = proc.reg[0] - 1;
            proc.pc = 11;
            break;
          case 11: // enqueue into my landing queue
            proc.reg[0] = s.mem[cellC(p)];
            proc.pc = 12;
            break;
          case 12:
            s.mem[cellC(p)] = proc.reg[0] + 1;
            ++proc.reg[3];
            if (--proc.reg[2] > 0)
                proc.pc = 9;
            else
                proc.pc = barrier_ ? 13 : 18;
            break;
          case 18: // drain staged frees into the pool (post-window)
            s.mem[cellPool()] += proc.reg[3];
            proc.done = true;
            break;
          default: // the two barrier instances
            barrierStep(s, p);
            break;
        }
    }

    std::string
    checkState(const SysState &s) const override
    {
        // The ownership window: at most one unit mid-update (loaded,
        // not yet stored back) per queue cell.  The only cell two
        // units can reach is a stage queue b[x]: its owner x enqueues
        // at rank 0 (pc 3) and its downstream neighbor next(x)
        // dequeues at rank 1 (pc 10).
        for (unsigned x = 0; x < units_; ++x) {
            const bool owner_mid = s.procs[x].pc == 3;
            const bool puller_mid = s.procs[next(x)].pc == 10;
            if (owner_mid && puller_mid) {
                std::ostringstream os;
                os << "units " << x << " and " << next(x)
                   << " both mid-update on stage queue " << x
                   << " (departure ownership window violated)";
                return os.str();
            }
        }
        return {};
    }

    std::string
    checkOutcome(const SysState &s) const override
    {
        for (unsigned u = 0; u < units_; ++u) {
            if (s.mem[cellA(u)] != 0 || s.mem[cellB(u)] != 0) {
                std::ostringstream os;
                os << "unit " << u << " queues not drained (a="
                   << s.mem[cellA(u)] << ", b=" << s.mem[cellB(u)]
                   << ")";
                return os.str();
            }
            if (s.mem[cellC(u)] != static_cast<std::int64_t>(msgs_)) {
                std::ostringstream os;
                os << "unit " << u << " landed " << s.mem[cellC(u)]
                   << " messages, expected " << msgs_;
                return os.str();
            }
        }
        if (s.mem[cellPool()] !=
            2 * static_cast<std::int64_t>(units_) *
                static_cast<std::int64_t>(msgs_)) {
            return "staged frees lost: pool holds " +
                   std::to_string(s.mem[cellPool()]);
        }
        if (s.mem[cellCount()] != 0)
            return "stage barrier count not reset";
        return {};
    }

  private:
    int cellA(unsigned u) const { return static_cast<int>(u); }
    int cellB(unsigned u) const { return static_cast<int>(units_ + u); }
    int
    cellC(unsigned u) const
    {
        return static_cast<int>(2 * units_ + u);
    }
    int cellCount() const { return static_cast<int>(3 * units_); }
    int cellSense() const { return static_cast<int>(3 * units_ + 1); }
    int cellPool() const { return static_cast<int>(3 * units_ + 2); }

    unsigned prev(unsigned u) const { return (u + units_ - 1) % units_; }
    unsigned next(unsigned u) const { return (u + 1) % units_; }

    /** One step of the sense-reversing barrier at pcs 4..8 / 13..17. */
    void
    barrierStep(SysState &s, unsigned p) const
    {
        ProcState &proc = s.procs[p];
        const int base = proc.pc < 9 ? 4 : 13;
        const int cont = base == 4 ? 9 : 18;
        switch (proc.pc - base) {
          case 0: // my_sense = 1 - sense
            proc.reg[1] = 1 - s.mem[cellSense()];
            proc.pc = base + 1;
            break;
          case 1: { // arrived = FA(count, +1)
            const std::int64_t arrived = s.mem[cellCount()]++;
            proc.pc = arrived == static_cast<std::int64_t>(units_) - 1
                          ? base + 2
                          : base + 4;
            break;
          }
          case 2: // last arriver resets the count...
            s.mem[cellCount()] = 0;
            proc.pc = base + 3;
            break;
          case 3: // ...then releases everyone by flipping the sense
            s.mem[cellSense()] = proc.reg[1];
            proc.pc = cont;
            break;
          case 4: // observed the sense flip (spin satisfied)
            proc.pc = cont;
            break;
          default:
            panic("depart: bad barrier pc");
        }
    }

    unsigned units_;
    unsigned msgs_;
    bool barrier_;
};

} // namespace

std::unique_ptr<Model>
makeFetchAddModel(unsigned procs)
{
    return std::make_unique<FetchAddModel>(procs);
}

std::unique_ptr<Model>
makeBrokenCounter(unsigned procs)
{
    return std::make_unique<BrokenCounterModel>(procs);
}

std::unique_ptr<Model>
makeParallelQueueModel(const std::string &shape, unsigned capacity)
{
    return std::make_unique<ParallelQueueModel>(shape, capacity);
}

std::unique_ptr<Model>
makeReadersWritersModel(const std::string &shape)
{
    return std::make_unique<ReadersWritersModel>(shape);
}

std::unique_ptr<Model>
makeBarrierModel(unsigned procs, unsigned episodes)
{
    return std::make_unique<BarrierModel>(procs, episodes);
}

std::unique_ptr<Model>
makeDepartWindowModel(unsigned units, unsigned msgsPerWire,
                      bool stageBarrier)
{
    return std::make_unique<DepartWindowModel>(units, msgsPerWire,
                                               stageBarrier);
}

} // namespace ultra::check
