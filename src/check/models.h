/**
 * @file
 * Step-machine models of the ultra::rt coordination primitives for the
 * serialization-principle verifier (see serial.h).
 *
 * Each model transliterates the corresponding host algorithm in
 * `src/rt` into atomic paracomputer actions -- one shared-memory load,
 * store or fetch-and-add per step, exactly the granularity the
 * hardware serializes -- so the explorer's interleavings are the
 * machine's possible executions.  The models carry *ghost* state
 * (operation histories, arrival counts) that the verifier reads but
 * the algorithm does not.
 *
 * makeBrokenCounter exists to prove the verifier has teeth: a
 * load-then-store increment is NOT serializable, and the explorer must
 * find the interleaving that loses an update.
 */

#ifndef ULTRA_CHECK_MODELS_H
#define ULTRA_CHECK_MODELS_H

#include <memory>
#include <string>
#include <vector>

#include "check/serial.h"

namespace ultra::check
{

/** History op codes shared by the models. */
enum OpKind : int {
    kOpFetchAdd = 0, //!< arg = increment, result = value fetched
    kOpInsert = 1,   //!< arg = value; result 0 = ok, -1 = full
    kOpDelete = 2,   //!< result = value taken, or -1 = empty
};

/** Result sentinel for a failed (full/empty) queue operation. */
inline constexpr std::int64_t kQueueFail = -1;

/**
 * P processes each perform one indivisible FA(V, 1 << p); the outcome
 * must linearize against a sequential counter (every fetched value is
 * the sum of the increments serialized before it) and the final cell
 * must hold the total.  This is the serialization principle for
 * fetch-and-add verbatim.
 */
std::unique_ptr<Model> makeFetchAddModel(unsigned procs);

/**
 * P processes each increment a counter as a separate load then store
 * -- the classic non-serializable "critical section bug".  The
 * verifier must report a violation (used by tests to prove detection;
 * ultracheck runs it only under --demo-bug).
 */
std::unique_ptr<Model> makeBrokenCounter(unsigned procs);

/**
 * The appendix's critical-section-free parallel queue
 * (rt::ParallelQueue): fetch-and-add index dispensers, per-cell round
 * counters, and the test-increment-retest / test-decrement-retest
 * occupancy guards.  Each process performs one tryInsert (value
 * 100 + p) or one tryDelete per the shape string.  Successful
 * operations must linearize against a sequential bounded FIFO queue;
 * failed (full/empty) returns are held to the bound-consistency the
 * appendix actually guarantees — #Qu counts an insert from its first
 * action and #Qi only from its completion, so a half-visible insert
 * may look "full" to an inserter and "empty" to a deleter at the same
 * moment.  That conservative behavior is real (not linearizable; see
 * the strict-judge test in tests/serial_test.cc), so each failure is
 * instead checked to be justified by operations that can have filled
 * (or drained) its bound during the op's interval.
 *
 * @param shape     one char per process: 'i' = inserter, 'd' = deleter
 * @param capacity  queue cells (small: 1 or 2 keeps full/empty paths hot)
 */
std::unique_ptr<Model> makeParallelQueueModel(const std::string &shape,
                                              unsigned capacity);

/**
 * The completely-parallel readers-writers solution
 * (rt::ReadersWriters).  Each process is a reader or writer per the
 * shape string ('r' / 'w'), entering its critical section once.  The
 * verified property is the serialization requirement itself: no state
 * may hold a writer in the CS together with any other CS occupant.
 */
std::unique_ptr<Model> makeReadersWritersModel(const std::string &shape);

/**
 * The sense-reversing fetch-and-add barrier (rt::Barrier), crossed
 * @p episodes times by each of @p procs processes.  Ghost arrival
 * counts verify no process leaves episode e before all P processes
 * arrived e+1 times (the reuse property the sense reversal exists
 * for).
 */
std::unique_ptr<Model> makeBarrierModel(unsigned procs,
                                        unsigned episodes);

/**
 * The receiver-pull departure window (net::Network::departWindow, see
 * DESIGN.md "Paying for parallelism"): each of @p units units owns a
 * per-unit pull list built sequentially before the window opens -- at
 * stage-rank 0 it pulls @p msgsPerWire messages from its own upstream
 * queue into its own stage queue, and at stage-rank 1 it pulls from
 * the *previous* unit's stage queue (the cross-unit wire that makes
 * the ownership protocol interesting).  Queue occupancy updates are
 * modeled as they really are -- non-atomic load-then-store pairs --
 * so the protocol's whole safety argument is the stage-rank barrier
 * between ranks plus the single-owner-per-wire assignment.  Staged
 * frees accumulate per unit and drain into the shared pool only after
 * the final barrier, mirroring drainUnitStaging.
 *
 * checkState pins the ownership window: no two units may ever sit
 * mid-update (loaded, not yet stored) on the same queue cell.
 * checkOutcome pins conservation: every message lands, every staged
 * free reaches the pool.
 *
 * @param stageBarrier  false removes the stage-rank barrier steps --
 *                      the demo-bug variant; the explorer must then
 *                      find two units colliding on a stage queue.
 */
std::unique_ptr<Model> makeDepartWindowModel(unsigned units,
                                             unsigned msgsPerWire,
                                             bool stageBarrier);

} // namespace ultra::check

#endif // ULTRA_CHECK_MODELS_H
