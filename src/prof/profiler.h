/**
 * @file
 * Wall-clock self-profiler for the parallel runtime (ultra::prof).
 *
 * Every other observability layer measures *simulated* cycles; this one
 * measures where *host* time goes, so a disappointing par_speedup
 * number or a perf-gate failure can be attributed instead of guessed
 * at.  The profiler is opt-in (a nullable pointer on the components it
 * instruments, one-branch cost when detached) and writes only to its
 * own channel: stats dumps, goldens and the byte-identity contract are
 * untouched whether it is attached or not.
 *
 * Three kinds of accounting:
 *   - per-phase wall timers: the simulation thread stamps the clock at
 *     each phase boundary of the tick loop (PE compute, PNI issue, the
 *     network's commit/MNI/arrival/merge sub-phases, sampler), so the
 *     phase times tile measured elapsed time;
 *   - per-shard work/wait: the tick engine brackets each fork-join
 *     episode and each shard's task; barrier wait per shard is the
 *     episode wall minus that shard's work, and the departure window
 *     additionally times its stage-rank barrier steps;
 *   - per-unit load: messages consumed, pool allocations and staging
 *     high-water marks per (copy, stage, column-group) network unit,
 *     so imbalance across units is visible, not just its cost.
 *
 * This file (src/prof) is the *only* place in simulation code allowed
 * to read the host clock -- tools/ultralint UL-DET-007 flags raw
 * std::chrono / clock_gettime anywhere else, because a wall-clock read
 * woven into simulation logic is a determinism hazard.  Components
 * time themselves through Profiler::nowNs(), an opaque call.
 *
 * Threading contract: phaseAdd / unitPool / unitStagingHighWater /
 * run lifecycle run on the simulation thread at sequential points;
 * shardBegin/shardEnd/stageWait* run on the shard's own thread with a
 * cache-line-padded slot per shard (no sharing, no atomics);
 * episodeBegin/episodeEnd run on the fork-join caller, and the finish
 * barrier orders every worker's slot writes before episodeEnd reads
 * them.  unitMessages is called by whichever thread owns the unit in
 * the current arrival phase -- unit ownership is exclusive per phase,
 * so the slot has one writer at a time.
 */

#ifndef ULTRA_PROF_PROFILER_H
#define ULTRA_PROF_PROFILER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ultra::obs
{
class EventTrace;
} // namespace ultra::obs

namespace ultra::prof
{

/** Instrumented phases of one simulated cycle.  Names (phaseName) are
 *  the JSON keys, listed here in their sorted order so the report can
 *  emit them by simple enumeration. */
enum class Phase : unsigned {
    Hook,         //!< inspect pause fence (cycle hook)
    Inject,       //!< net-mode traffic injection (sharded)
    NetArrival,   //!< parallel per-unit arrival phase
    NetCommit,    //!< sequential delivery/commit phase
    NetDepartFwd, //!< forward departure window (stage barrier steps)
    NetDepartRev, //!< reverse departure window
    NetDrain,     //!< sequential unit-staging drain/fold
    NetMni,       //!< sequential MNI handoff
    NetPrePass,   //!< departure pre-pass (pull-list build)
    NetSweepFwd,  //!< sequential sweep of the final forward stage
    NetSweepRev,  //!< sequential sweep of reverse stage 0
    Other,        //!< fork-join episodes with no phase assigned
    PeCompute,    //!< PE coroutine stepping (sharded compute phase)
    Pni,          //!< sequential PNI issue/completion
    Sampler,      //!< per-cycle sampler + observer flush
    kCount
};

constexpr unsigned kPhaseCount = static_cast<unsigned>(Phase::kCount);

/** The stable JSON/report name of @p p (e.g. "net.arrival"). */
const char *phaseName(Phase p);

/** Wall-clock self-profiler; see the file comment for the contract. */
class Profiler
{
  public:
    /**
     * The host monotonic clock, in nanoseconds from an arbitrary
     * epoch.  The single sanctioned wall-clock read in simulation
     * code (UL-DET-007); deliberately opaque so callers carry no
     * <chrono> tokens.
     */
    static std::uint64_t nowNs();

    Profiler();

    /** Size the per-shard slots; call before the first episode. */
    void configureThreads(unsigned threads);

    /** Size the per-unit slots; call at network attach time. */
    void configureUnits(std::uint32_t count);

    /** Label @p unit with its place in the (copy, stage, group) grid. */
    void setUnitGeometry(std::uint32_t unit, unsigned copy,
                         unsigned stage, unsigned group);

    // -- run lifecycle (simulation thread) --------------------------
    void runBegin();
    void runEnd(std::uint64_t cycles);

    /**
     * Zero every counter (phase timers, episodes, shard slots, unit
     * loads, run window) in place, keeping the configured thread/unit
     * geometry.  A persistent server reuses one profiler across jobs,
     * and a job's report must cover that job alone -- without this a
     * warmed machine leaks laps across jobs (see serve_test).
     */
    void reset();

    // -- per-phase wall timers (simulation thread) ------------------
    void
    phaseAdd(Phase p, std::uint64_t ns)
    {
        phaseNs_[static_cast<unsigned>(p)] += ns;
        ++phaseCalls_[static_cast<unsigned>(p)];
    }

    // -- fork-join episode accounting (tick engine) -----------------
    /** Attribute subsequent episodes to @p p (simulation thread). */
    void setEpisodePhase(Phase p) { episodePhase_ = p; }
    void episodeBegin();
    void episodeEnd();
    void shardBegin(unsigned shard);
    void shardEnd(unsigned shard);

    // -- stage-barrier waits (departure window, shard threads) ------
    void stageWaitBegin(unsigned shard);
    void stageWaitEnd(unsigned shard);

    // -- per-unit load counters -------------------------------------
    void
    unitMessages(std::uint32_t unit, std::uint64_t n)
    {
        units_[unit].messages += n;
    }
    void unitPool(std::uint32_t unit, std::uint64_t allocs,
                  std::uint64_t capacity);
    void unitStagingHighWater(std::uint32_t unit, std::uint64_t entries);

    // -- report -----------------------------------------------------
    /** Seconds from runBegin to runEnd (or to now mid-run). */
    double elapsedSeconds() const;

    /**
     * The full report as schema-versioned JSON ("ultra.prof.v1"),
     * keys sorted at every level so diffs and goldens are stable.
     * Callable mid-run (the live `prof` inspect command) -- elapsed
     * is measured to the call.
     */
    std::string reportJson() const;

    /**
     * Emit cumulative per-phase counter tracks onto @p trace (track
     * "prof", Perfetto 'C' events at simulated-cycle @p now).  Only
     * ever called when a trace is recording *and* profiling is on, so
     * a default --trace-events file is byte-identical with the
     * profiler detached.
     */
    void flushCounters(obs::EventTrace &trace, Cycle now) const;

    // -- accessors (tests, report writers) --------------------------
    unsigned threads() const { return static_cast<unsigned>(shards_.size()); }
    std::uint64_t cycles() const { return cycles_; }
    std::uint64_t phaseNs(Phase p) const
    {
        return phaseNs_[static_cast<unsigned>(p)];
    }
    std::uint64_t episodeNs(Phase p) const
    {
        return episodeNs_[static_cast<unsigned>(p)];
    }
    std::uint64_t totalPhaseNs() const;
    std::uint64_t totalEpisodeNs() const;
    std::uint64_t shardWorkNs(unsigned shard) const
    {
        return shards_[shard].workNs;
    }
    std::uint64_t shardBarrierWaitNs(unsigned shard) const
    {
        return shards_[shard].barrierWaitNs;
    }
    std::uint64_t shardStageWaitNs(unsigned shard) const
    {
        return shards_[shard].stageWaitNs;
    }

  private:
    /** One fork-join shard's accounting; padded so neighbouring
     *  shards never share a cache line. */
    struct alignas(64) ShardSlot
    {
        std::uint64_t workNs = 0;        //!< task time, stage waits included
        std::uint64_t episodeWorkNs = 0; //!< work inside the open episode
        std::uint64_t barrierWaitNs = 0; //!< episode wall minus own work
        std::uint64_t stageWaitNs = 0;   //!< departure stage-barrier waits
        std::uint64_t workT0 = 0;
        std::uint64_t stageT0 = 0;
    };

    /** One network unit's load counters (single writer per phase). */
    struct alignas(64) UnitSlot
    {
        std::uint64_t messages = 0;
        std::uint64_t allocs = 0;
        std::uint64_t capacity = 0;
        std::uint64_t stagingHighWater = 0;
        unsigned copy = 0;
        unsigned stage = 0;
        unsigned group = 0;
    };

    std::uint64_t phaseNs_[kPhaseCount] = {};
    std::uint64_t phaseCalls_[kPhaseCount] = {};
    std::uint64_t episodeNs_[kPhaseCount] = {};
    std::uint64_t episodeCount_ = 0;
    Phase episodePhase_ = Phase::Other;
    std::uint64_t episodeT0_ = 0;

    std::vector<ShardSlot> shards_;
    std::vector<UnitSlot> units_;

    std::uint64_t runStartNs_ = 0;
    std::uint64_t runEndNs_ = 0;
    std::uint64_t cycles_ = 0;
};

} // namespace ultra::prof

#endif // ULTRA_PROF_PROFILER_H
