#include "prof/profiler.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/log.h"
#include "obs/event_trace.h"
#include "obs/json.h"

namespace ultra::prof
{

const char *
phaseName(Phase p)
{
    // Sorted order: these are the JSON keys of the "phases" object,
    // emitted by enumeration -- keep the table and the enum sorted.
    switch (p) {
    case Phase::Hook: return "hook";
    case Phase::Inject: return "inject";
    case Phase::NetArrival: return "net.arrival";
    case Phase::NetCommit: return "net.commit";
    case Phase::NetDepartFwd: return "net.depart_fwd";
    case Phase::NetDepartRev: return "net.depart_rev";
    case Phase::NetDrain: return "net.drain";
    case Phase::NetMni: return "net.mni";
    case Phase::NetPrePass: return "net.prepass";
    case Phase::NetSweepFwd: return "net.sweep_fwd";
    case Phase::NetSweepRev: return "net.sweep_rev";
    case Phase::Other: return "other";
    case Phase::PeCompute: return "pe.compute";
    case Phase::Pni: return "pni";
    case Phase::Sampler: return "sampler";
    case Phase::kCount: break;
    }
    return "?";
}

std::uint64_t
Profiler::nowNs()
{
    // The single sanctioned wall-clock read in simulation code; every
    // instrumented component times itself through this call so no
    // <chrono> token appears outside src/prof (UL-DET-007).
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Profiler::Profiler() : shards_(1) {}

void
Profiler::configureThreads(unsigned threads)
{
    ULTRA_ASSERT(threads >= 1);
    if (shards_.size() < threads)
        shards_.resize(threads);
}

void
Profiler::configureUnits(std::uint32_t count)
{
    if (units_.size() < count)
        units_.resize(count);
}

void
Profiler::setUnitGeometry(std::uint32_t unit, unsigned copy,
                          unsigned stage, unsigned group)
{
    units_[unit].copy = copy;
    units_[unit].stage = stage;
    units_[unit].group = group;
}

void
Profiler::runBegin()
{
    runStartNs_ = nowNs();
    runEndNs_ = 0;
}

void
Profiler::runEnd(std::uint64_t cycles)
{
    runEndNs_ = nowNs();
    cycles_ = cycles;
}

void
Profiler::reset()
{
    for (unsigned p = 0; p < kPhaseCount; ++p) {
        phaseNs_[p] = 0;
        phaseCalls_[p] = 0;
        episodeNs_[p] = 0;
    }
    episodeCount_ = 0;
    episodePhase_ = Phase::Other;
    episodeT0_ = 0;
    for (ShardSlot &slot : shards_) {
        slot.workNs = 0;
        slot.episodeWorkNs = 0;
        slot.barrierWaitNs = 0;
        slot.stageWaitNs = 0;
        slot.workT0 = 0;
        slot.stageT0 = 0;
    }
    for (UnitSlot &slot : units_) {
        // Counters only; the (copy, stage, group) geometry survives --
        // it describes the attached network, not a run.
        slot.messages = 0;
        slot.allocs = 0;
        slot.capacity = 0;
        slot.stagingHighWater = 0;
    }
    runStartNs_ = 0;
    runEndNs_ = 0;
    cycles_ = 0;
}

void
Profiler::episodeBegin()
{
    episodeT0_ = nowNs();
}

void
Profiler::episodeEnd()
{
    const std::uint64_t wall = nowNs() - episodeT0_;
    episodeNs_[static_cast<unsigned>(episodePhase_)] += wall;
    ++episodeCount_;
    // The finish barrier has joined: every worker's episodeWorkNs is
    // visible.  A shard's work window sits strictly inside the
    // caller's episode window (released by the start barrier, joined
    // by the finish barrier), so wall >= work and the difference is
    // the shard's time spent waiting on the fork-join barriers.
    for (ShardSlot &slot : shards_) {
        const std::uint64_t work = std::min(slot.episodeWorkNs, wall);
        slot.barrierWaitNs += wall - work;
        slot.episodeWorkNs = 0;
    }
}

void
Profiler::shardBegin(unsigned shard)
{
    shards_[shard].workT0 = nowNs();
}

void
Profiler::shardEnd(unsigned shard)
{
    ShardSlot &slot = shards_[shard];
    const std::uint64_t dt = nowNs() - slot.workT0;
    slot.workNs += dt;
    slot.episodeWorkNs += dt;
}

void
Profiler::stageWaitBegin(unsigned shard)
{
    shards_[shard].stageT0 = nowNs();
}

void
Profiler::stageWaitEnd(unsigned shard)
{
    ShardSlot &slot = shards_[shard];
    slot.stageWaitNs += nowNs() - slot.stageT0;
}

void
Profiler::unitPool(std::uint32_t unit, std::uint64_t allocs,
                   std::uint64_t capacity)
{
    units_[unit].allocs = allocs;
    units_[unit].capacity = capacity;
}

void
Profiler::unitStagingHighWater(std::uint32_t unit, std::uint64_t entries)
{
    UnitSlot &slot = units_[unit];
    slot.stagingHighWater = std::max(slot.stagingHighWater, entries);
}

std::uint64_t
Profiler::totalPhaseNs() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t ns : phaseNs_)
        sum += ns;
    return sum;
}

std::uint64_t
Profiler::totalEpisodeNs() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t ns : episodeNs_)
        sum += ns;
    return sum;
}

double
Profiler::elapsedSeconds() const
{
    if (runStartNs_ == 0)
        return 0.0;
    const std::uint64_t end = runEndNs_ != 0 ? runEndNs_ : nowNs();
    return static_cast<double>(end - runStartNs_) * 1e-9;
}

namespace
{

constexpr double kNsToS = 1e-9;

void
writeNum(std::ostream &os, double x)
{
    obs::writeJsonNumber(os, x);
}

} // namespace

std::string
Profiler::reportJson() const
{
    // Keys sorted at every level (the schema-stability contract; see
    // prof_test).  Top level: attribution < cycles < elapsed_seconds
    // < phases < schema < thread_slots < threads < units.
    const double elapsed = elapsedSeconds();
    const double safe_elapsed = elapsed > 0 ? elapsed : 1.0;
    const unsigned threads = this->threads();

    const double phase_s = static_cast<double>(totalPhaseNs()) * kNsToS;
    const double episode_s =
        static_cast<double>(totalEpisodeNs()) * kNsToS;
    const double serial_s = std::max(0.0, phase_s - episode_s);
    double work_s = 0.0;      // task time net of stage waits
    double barrier_s = 0.0;   // fork-join barrier waits
    double stage_wait_s = 0.0;
    double max_work_s = 0.0;
    for (const ShardSlot &slot : shards_) {
        const double w =
            static_cast<double>(slot.workNs - std::min(slot.workNs,
                                                       slot.stageWaitNs)) *
            kNsToS;
        work_s += w;
        max_work_s = std::max(max_work_s, w);
        barrier_s += static_cast<double>(slot.barrierWaitNs) * kNsToS;
        stage_wait_s += static_cast<double>(slot.stageWaitNs) * kNsToS;
    }
    const double coverage = phase_s / safe_elapsed;
    const double mean_work_s = work_s / threads;

    std::ostringstream os;
    os << "{\"attribution\": {";
    os << "\"barrier_wait_fraction\": ";
    writeNum(os, barrier_s / (threads * safe_elapsed));
    os << ", \"barrier_wait_seconds\": ";
    writeNum(os, barrier_s);
    os << ", \"coverage\": ";
    writeNum(os, coverage);
    os << ", \"imbalance_fraction\": ";
    writeNum(os, (max_work_s - mean_work_s) / safe_elapsed);
    os << ", \"overhead_fraction\": ";
    writeNum(os, std::max(0.0, 1.0 - coverage));
    os << ", \"parallel_seconds\": ";
    writeNum(os, episode_s);
    os << ", \"serial_fraction\": ";
    writeNum(os, serial_s / safe_elapsed);
    os << ", \"serial_seconds\": ";
    writeNum(os, serial_s);
    os << ", \"stage_wait_fraction\": ";
    writeNum(os, stage_wait_s / (threads * safe_elapsed));
    os << ", \"stage_wait_seconds\": ";
    writeNum(os, stage_wait_s);
    os << ", \"work_seconds\": ";
    writeNum(os, work_s);
    os << "}";

    os << ", \"cycles\": " << cycles_;
    os << ", \"elapsed_seconds\": ";
    writeNum(os, elapsed);

    os << ", \"phases\": {";
    for (unsigned p = 0; p < kPhaseCount; ++p) {
        if (p > 0)
            os << ", ";
        os << "\"" << phaseName(static_cast<Phase>(p))
           << "\": {\"calls\": " << phaseCalls_[p]
           << ", \"episode_seconds\": ";
        writeNum(os, static_cast<double>(episodeNs_[p]) * kNsToS);
        os << ", \"seconds\": ";
        writeNum(os, static_cast<double>(phaseNs_[p]) * kNsToS);
        os << "}";
    }
    os << "}";

    os << ", \"schema\": \"ultra.prof.v1\"";

    os << ", \"thread_slots\": [";
    for (unsigned i = 0; i < threads; ++i) {
        const ShardSlot &slot = shards_[i];
        if (i > 0)
            os << ", ";
        os << "{\"barrier_wait_seconds\": ";
        writeNum(os, static_cast<double>(slot.barrierWaitNs) * kNsToS);
        os << ", \"shard\": " << i << ", \"stage_wait_seconds\": ";
        writeNum(os, static_cast<double>(slot.stageWaitNs) * kNsToS);
        os << ", \"work_seconds\": ";
        writeNum(os, static_cast<double>(slot.workNs) * kNsToS);
        os << "}";
    }
    os << "]";

    os << ", \"threads\": " << threads;

    os << ", \"units\": [";
    for (std::size_t u = 0; u < units_.size(); ++u) {
        const UnitSlot &slot = units_[u];
        if (u > 0)
            os << ", ";
        os << "{\"allocs\": " << slot.allocs
           << ", \"capacity\": " << slot.capacity
           << ", \"copy\": " << slot.copy
           << ", \"group\": " << slot.group
           << ", \"messages\": " << slot.messages
           << ", \"stage\": " << slot.stage
           << ", \"staging_high_water\": " << slot.stagingHighWater
           << ", \"unit\": " << u << "}";
    }
    os << "]}";
    return os.str();
}

void
Profiler::flushCounters(obs::EventTrace &trace, Cycle now) const
{
    const obs::EventTrace::TrackId track = trace.track("prof");
    for (unsigned p = 0; p < kPhaseCount; ++p) {
        if (phaseNs_[p] == 0)
            continue;
        trace.counter(track, phaseName(static_cast<Phase>(p)), now,
                      static_cast<double>(phaseNs_[p]) * kNsToS);
    }
    std::uint64_t barrier = 0;
    std::uint64_t stage_wait = 0;
    for (const ShardSlot &slot : shards_) {
        barrier += slot.barrierWaitNs;
        stage_wait += slot.stageWaitNs;
    }
    trace.counter(track, "barrier_wait", now,
                  static_cast<double>(barrier) * kNsToS);
    trace.counter(track, "stage_wait", now,
                  static_cast<double>(stage_wait) * kNsToS);
}

} // namespace ultra::prof
