#include "inspect/inspector.h"

#include <cmath>
#include <sstream>

#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/routing.h"
#include "obs/json.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "prof/profiler.h"

namespace ultra::inspect
{

Inspector::Inspector(InspectServer &server, Targets targets,
                     bool start_paused)
    : server_(server), targets_(targets),
      startNs_(prof::Profiler::nowNs()), paused_(start_paused)
{
}

bool
Inspector::fires(const WatchSpec &spec, Cycle now, double &observed)
{
    switch (spec.kind) {
    case WatchSpec::Kind::Cycle:
        observed = static_cast<double>(now);
        return now >= spec.cycle;
    case WatchSpec::Kind::Stat:
        observed = targets_.registry->value(spec.stat);
        return evalCmp(observed, spec.op, spec.value);
    case WatchSpec::Kind::Queue:
        observed = static_cast<double>(
            targets_.network->stageQueuePackets(spec.stage, spec.toMm));
        return evalCmp(observed, spec.op, spec.value);
    case WatchSpec::Kind::WaitBuffer:
        observed = static_cast<double>(
            targets_.network->stageWaitBufferEntries(spec.stage));
        return evalCmp(observed, spec.op, spec.value);
    case WatchSpec::Kind::Drift:
        observed = driftFn_();
        return std::fabs(observed) > spec.value;
    }
    observed = 0.0;
    return false;
}

void
Inspector::atCycleBoundary(Cycle now)
{
    if (server_.takeDisconnects() > 0)
        clientGone();

    for (std::size_t i = 0; i < armed_.size();) {
        double observed = 0.0;
        if (fires(armed_[i].spec, now, observed)) {
            std::ostringstream os;
            os << "{\"event\": \"watchpoint\", \"id\": " << armed_[i].id
               << ", \"cycle\": " << now << ", \"observed\": ";
            obs::writeJsonNumber(os, observed);
            os << ", \"spec\": " << armed_[i].spec.describeJson() << "}";
            server_.send(os.str());
            // One-shot: a persistent level predicate (cycle >= N,
            // queue >= k while congested) would re-fire every cycle.
            armed_.erase(armed_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            paused_ = true;
        } else {
            ++i;
        }
    }

    if (stepTarget_ != kNeverCycle && now >= stepTarget_) {
        stepTarget_ = kNeverCycle;
        paused_ = true;
        server_.send("{\"event\": \"paused\", \"cycle\": " +
                     std::to_string(now) + "}");
    }

    std::string line;
    while (server_.poll(line))
        handleLine(line, now);
    while (paused_) {
        if (server_.wait(line))
            handleLine(line, now);
        else
            clientGone(); // resumes: a dead client must not wedge us
    }
}

void
Inspector::finishRun(Cycle now, bool completed)
{
    finished_ = true;
    paused_ = false;
    stepTarget_ = kNeverCycle;
    if (server_.takeDisconnects() > 0)
        clientGone();
    std::string line;
    while (server_.poll(line))
        handleLine(line, now);
    if (!server_.connected())
        return;
    server_.send("{\"event\": \"finished\", \"cycle\": " +
                 std::to_string(now) + ", \"completed\": " +
                 (completed ? "true" : "false") + "}");
    while (!detached_) {
        if (server_.wait(line))
            handleLine(line, now);
        else
            break; // client closed: the run is over anyway
    }
}

void
Inspector::clientGone()
{
    armed_.clear();
    paused_ = false;
    stepTarget_ = kNeverCycle;
}

void
Inspector::handleLine(const std::string &line, Cycle now)
{
    Command cmd;
    std::string err;
    if (!parseCommand(line, cmd, err)) {
        server_.send(errorReply(err));
        return;
    }
    server_.send(execute(cmd, now));
}

std::string
Inspector::statusJson(Cycle now) const
{
    // Wall section: host-side progress (elapsed seconds since attach
    // setup, simulated cycles per host second).  Host-dependent by
    // nature, so the values vary run to run -- only the shape is
    // pinned by inspect_test.
    const double elapsed =
        static_cast<double>(prof::Profiler::nowNs() - startNs_) * 1e-9;
    const double cps =
        elapsed > 0.0 ? static_cast<double>(now) / elapsed : 0.0;
    std::ostringstream os;
    os << "{\"ok\": true, \"cycle\": " << now << ", \"paused\": "
       << (paused_ ? "true" : "false") << ", \"finished\": "
       << (finished_ ? "true" : "false") << ", \"in_flight\": "
       << targets_.network->inFlight() << ", \"watchpoints\": "
       << armed_.size() << ", \"wall\": {\"cycles_per_second\": ";
    obs::writeJsonNumber(os, cps);
    os << ", \"elapsed_seconds\": ";
    obs::writeJsonNumber(os, elapsed);
    os << "}}";
    return os.str();
}

std::string
Inspector::execute(const Command &cmd, Cycle now)
{
    switch (cmd.kind) {
    case Command::Kind::Ping:
        return "{\"ok\": true, \"cycle\": " + std::to_string(now) + "}";
    case Command::Kind::Status:
        return statusJson(now);
    case Command::Kind::Pause:
        if (finished_)
            return errorReply("run already finished");
        paused_ = true;
        return statusJson(now);
    case Command::Kind::Resume:
        if (finished_)
            return errorReply("run already finished");
        paused_ = false;
        stepTarget_ = kNeverCycle;
        return statusJson(now);
    case Command::Kind::Step: {
        if (finished_)
            return errorReply("run already finished");
        const Cycle target = cmd.stepTo != kNeverCycle
                                 ? cmd.stepTo
                                 : now + cmd.stepCount;
        if (target <= now)
            return errorReply("step target " + std::to_string(target) +
                              " is not past cycle " +
                              std::to_string(now));
        stepTarget_ = target;
        paused_ = false;
        return "{\"ok\": true, \"cycle\": " + std::to_string(now) +
               ", \"until\": " + std::to_string(target) + "}";
    }
    case Command::Kind::Switch:
        return executeSwitch(cmd);
    case Command::Kind::Mni:
        return executeMni(cmd);
    case Command::Kind::Mem:
    case Command::Kind::Poke:
        return executeMem(cmd);
    case Command::Kind::Stats:
        return executeStats(cmd, now);
    case Command::Kind::Latency:
        if (targets_.latency == nullptr)
            return errorReply("no latency observatory attached "
                              "(run with --latency)");
        return "{\"ok\": true, \"latency\": " +
               targets_.latency->summaryJson() + "}";
    case Command::Kind::Prof:
        if (targets_.prof == nullptr)
            return errorReply("no profiler attached "
                              "(run with --prof-json)");
        return "{\"ok\": true, \"prof\": " +
               targets_.prof->reportJson() + "}";
    case Command::Kind::Heatmap: {
        if (targets_.latency == nullptr)
            return errorReply("no latency observatory attached "
                              "(run with --latency)");
        std::ostringstream os;
        os << "{\"ok\": true, \"csv\": ";
        obs::writeJsonString(os, targets_.latency->heatmapCsv());
        os << "}";
        return os.str();
    }
    case Command::Kind::Watch:
        return executeWatch(cmd);
    case Command::Kind::Unwatch:
        for (std::size_t i = 0; i < armed_.size(); ++i) {
            if (armed_[i].id == cmd.watchId) {
                armed_.erase(armed_.begin() +
                             static_cast<std::ptrdiff_t>(i));
                return "{\"ok\": true, \"id\": " +
                       std::to_string(cmd.watchId) + "}";
            }
        }
        return errorReply("no watchpoint with id " +
                          std::to_string(cmd.watchId));
    case Command::Kind::Watchpoints: {
        std::ostringstream os;
        os << "{\"ok\": true, \"watchpoints\": [";
        for (std::size_t i = 0; i < armed_.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << "{\"id\": " << armed_[i].id << ", \"spec\": "
               << armed_[i].spec.describeJson() << "}";
        }
        os << "]}";
        return os.str();
    }
    case Command::Kind::Detach:
        detached_ = true;
        clientGone();
        return "{\"ok\": true, \"detached\": true}";
    }
    return errorReply("unhandled command");
}

std::string
Inspector::executeSwitch(const Command &cmd)
{
    const std::string json =
        targets_.network->switchJson(cmd.copy, cmd.stage, cmd.index);
    if (json.empty())
        return errorReply("no switch at copy " +
                          std::to_string(cmd.copy) + " stage " +
                          std::to_string(cmd.stage) + " index " +
                          std::to_string(cmd.index));
    return "{\"ok\": true, \"switch\": " + json + "}";
}

std::string
Inspector::executeMni(const Command &cmd)
{
    const std::string json =
        targets_.network->mniJson(cmd.copy, cmd.module);
    if (json.empty())
        return errorReply("no MNI at copy " + std::to_string(cmd.copy) +
                          " module " + std::to_string(cmd.module));
    return "{\"ok\": true, \"mni\": " + json + "}";
}

std::string
Inspector::executeMem(const Command &cmd)
{
    mem::MemorySystem *memory = targets_.memory;
    if (memory == nullptr)
        return errorReply("no memory system attached");
    Addr paddr = 0;
    if (cmd.hasVaddr) {
        paddr = targets_.hash != nullptr
                    ? targets_.hash->toPhysical(cmd.vaddr)
                    : cmd.vaddr;
    } else {
        const std::uint32_t modules = memory->config().numModules;
        if (cmd.module >= modules)
            return errorReply("module " + std::to_string(cmd.module) +
                              " out of range (have " +
                              std::to_string(modules) + ")");
        paddr = static_cast<Addr>(cmd.offset) * modules + cmd.module;
    }
    if (paddr >= memory->totalWords())
        return errorReply("address " + std::to_string(paddr) +
                          " beyond memory (" +
                          std::to_string(memory->totalWords()) +
                          " words)");
    std::ostringstream os;
    os << "{\"ok\": true, \"paddr\": " << paddr << ", \"module\": "
       << memory->moduleOf(paddr) << ", \"offset\": "
       << memory->offsetOf(paddr) << ", \"value\": "
       << memory->peek(paddr);
    if (cmd.kind == Command::Kind::Poke) {
        // Steering: mutates simulation state, so the attached run is
        // no longer byte-identical to an unattached one (by design).
        memory->poke(paddr, cmd.value);
        pokeUsed_ = true;
        os << ", \"new_value\": " << cmd.value;
    }
    os << "}";
    return os.str();
}

std::string
Inspector::executeStats(const Command &cmd, Cycle now)
{
    const obs::Registry *registry = targets_.registry;
    if (registry == nullptr)
        return errorReply("no stats registry attached");
    std::ostringstream os;
    os << "{\"ok\": true, \"cycle\": " << now << ", \"stats\": {";
    bool first = true;
    for (const std::string &path : registry->paths()) {
        if (path.compare(0, cmd.prefix.size(), cmd.prefix) != 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        obs::writeJsonString(os, path);
        os << ": ";
        obs::writeJsonNumber(os, registry->value(path));
    }
    os << "}}";
    return os.str();
}

std::string
Inspector::executeWatch(const Command &cmd)
{
    const WatchSpec &spec = cmd.watch;
    switch (spec.kind) {
    case WatchSpec::Kind::Stat:
        if (targets_.registry == nullptr)
            return errorReply("no stats registry attached");
        if (!targets_.registry->has(spec.stat))
            return errorReply("unknown stat '" + spec.stat + "'");
        break;
    case WatchSpec::Kind::Queue:
    case WatchSpec::Kind::WaitBuffer:
        if (spec.stage >= targets_.network->topology().stages())
            return errorReply(
                "stage " + std::to_string(spec.stage) +
                " out of range (network has " +
                std::to_string(targets_.network->topology().stages()) +
                " stages)");
        break;
    case WatchSpec::Kind::Drift:
        if (!driftFn_)
            return errorReply("no live analytic model for this run");
        break;
    case WatchSpec::Kind::Cycle:
        break;
    }
    const std::uint64_t id = nextWatchId_++;
    armed_.push_back({id, spec});
    return "{\"ok\": true, \"id\": " + std::to_string(id) +
           ", \"spec\": " + spec.describeJson() + "}";
}

} // namespace ultra::inspect
