/**
 * @file
 * Grammar of the live inspection protocol (ultra::inspect).
 *
 * The protocol is line-oriented JSON: every request is one JSON object
 * on one line with a "cmd" key, every reply is one JSON object on one
 * line with an "ok" key, and the server may interleave asynchronous
 * event objects ({"event": ...}) for watchpoint hits, step completion
 * and run termination.  See DESIGN.md "Live inspection" for the full
 * grammar and README "Attach to a running sim" for a walkthrough.
 *
 * Requests:
 *
 *   {"cmd":"ping"}                         liveness + current cycle
 *   {"cmd":"status"}                       cycle, paused, in-flight, ...
 *   {"cmd":"pause"}                        halt at the next boundary
 *   {"cmd":"resume"}                       continue a paused run
 *   {"cmd":"step","n":100}                 advance n cycles, pause again
 *   {"cmd":"step","to":5000}               advance to cycle >= to
 *   {"cmd":"switch","copy":0,"stage":2,"index":3}   queue/WB dump
 *   {"cmd":"mni","copy":0,"module":13}     MNI pending-queue dump
 *   {"cmd":"mem","vaddr":64}               read one shared word
 *   {"cmd":"mem","module":3,"offset":0}    ... by module/offset
 *   {"cmd":"poke","vaddr":64,"value":7}    write one word (steering!)
 *   {"cmd":"stats","prefix":"net."}        live registry snapshot
 *   {"cmd":"latency"}                      observatory summary JSON
 *   {"cmd":"prof"}                         wall-clock profiler snapshot
 *   {"cmd":"heatmap"}                      congestion heatmap CSV
 *   {"cmd":"watch", ...spec...}            arm a watchpoint (below)
 *   {"cmd":"unwatch","id":1}               disarm one watchpoint
 *   {"cmd":"watchpoints"}                  list armed watchpoints
 *   {"cmd":"detach"}                       resume, clear watchpoints
 *
 * Watchpoint specs (all halt the simulation at the cycle boundary
 * where the predicate first holds; each fires once, then disarms):
 *
 *   {"cmd":"watch","cycle":5000}                     cycle >= 5000
 *   {"cmd":"watch","stat":"lat.violations","op":">","value":0}
 *   {"cmd":"watch","queue":"tomm","stage":2,"op":">=","value":10}
 *   {"cmd":"watch","queue":"tope","stage":0,"op":">","value":4}
 *   {"cmd":"watch","queue":"wb","stage":1,"op":">","value":0}
 *   {"cmd":"watch","drift":0.15}                     |model drift| > e
 *
 * Parsing lives here so the Inspector, the tests and any future
 * transport share one grammar; no socket or simulator types appear.
 */

#ifndef ULTRA_INSPECT_PROTOCOL_H
#define ULTRA_INSPECT_PROTOCOL_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace ultra::inspect
{

/** Comparison operator of a stat/queue watchpoint predicate. */
enum class CmpOp : std::uint8_t { GT, GE, LT, LE, EQ, NE };

/** Parse ">", ">=", "<", "<=", "==", "!=" (false on anything else). */
bool parseCmpOp(const std::string &text, CmpOp &out);
const char *cmpOpName(CmpOp op);

/** Evaluate @p lhs <op> @p rhs. */
bool evalCmp(double lhs, CmpOp op, double rhs);

/** One armed halt-the-sim predicate. */
struct WatchSpec
{
    enum class Kind : std::uint8_t {
        Cycle,      //!< now >= cycle
        Stat,       //!< registry value <op> value
        Queue,      //!< stage ToMM/ToPE queue packets <op> value
        WaitBuffer, //!< stage wait-buffer entries <op> value
        Drift,      //!< |live model drift| > value
    };

    Kind kind = Kind::Cycle;
    Cycle cycle = 0;       //!< Kind::Cycle threshold
    std::string stat;      //!< Kind::Stat registry path
    unsigned stage = 0;    //!< Kind::Queue / Kind::WaitBuffer
    bool toMm = true;      //!< Kind::Queue direction
    CmpOp op = CmpOp::GT;
    double value = 0.0;

    /** One-line JSON rendering (for watchpoint listings and events). */
    std::string describeJson() const;
};

/** A parsed request. */
struct Command
{
    enum class Kind : std::uint8_t {
        Ping,
        Status,
        Pause,
        Resume,
        Step,
        Switch,
        Mni,
        Mem,
        Poke,
        Stats,
        Latency,
        Prof,
        Heatmap,
        Watch,
        Unwatch,
        Watchpoints,
        Detach,
    };

    Kind kind = Kind::Ping;

    // step
    Cycle stepCount = 1;
    Cycle stepTo = kNeverCycle; //!< set iff "to" was given

    // switch / mni
    unsigned copy = 0;
    unsigned stage = 0;
    std::uint32_t index = 0;
    MMId module = 0;

    // mem / poke
    bool hasVaddr = false;
    Addr vaddr = 0;
    bool hasModule = false;
    std::uint64_t offset = 0;
    Word value = 0;

    // stats
    std::string prefix;

    // watch / unwatch
    WatchSpec watch;
    std::uint64_t watchId = 0;
};

/**
 * Parse one request line.  On failure returns false and sets @p err to
 * a human-readable reason (already suitable for an error reply).
 */
bool parseCommand(const std::string &line, Command &out,
                  std::string &err);

/** {"ok":false,"error":<escaped message>} */
std::string errorReply(const std::string &message);

} // namespace ultra::inspect

#endif // ULTRA_INSPECT_PROTOCOL_H
