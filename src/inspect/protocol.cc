#include "inspect/protocol.h"

#include <cmath>
#include <sstream>

#include "common/json_lite.h"
#include "obs/json.h"

namespace ultra::inspect
{

namespace
{

/** Extract a non-negative integer field (false when absent). */
bool
getU64(const jsonlite::JsonValue &obj, const char *key,
       std::uint64_t &out)
{
    if (!obj.has(key) || !obj[key].isNumber())
        return false;
    const double x = obj[key].number;
    if (x < 0 || std::floor(x) != x)
        return false;
    out = static_cast<std::uint64_t>(x);
    return true;
}

} // namespace

bool
parseCmpOp(const std::string &text, CmpOp &out)
{
    if (text == ">")
        out = CmpOp::GT;
    else if (text == ">=")
        out = CmpOp::GE;
    else if (text == "<")
        out = CmpOp::LT;
    else if (text == "<=")
        out = CmpOp::LE;
    else if (text == "==")
        out = CmpOp::EQ;
    else if (text == "!=")
        out = CmpOp::NE;
    else
        return false;
    return true;
}

const char *
cmpOpName(CmpOp op)
{
    switch (op) {
    case CmpOp::GT: return ">";
    case CmpOp::GE: return ">=";
    case CmpOp::LT: return "<";
    case CmpOp::LE: return "<=";
    case CmpOp::EQ: return "==";
    case CmpOp::NE: return "!=";
    }
    return "?";
}

bool
evalCmp(double lhs, CmpOp op, double rhs)
{
    switch (op) {
    case CmpOp::GT: return lhs > rhs;
    case CmpOp::GE: return lhs >= rhs;
    case CmpOp::LT: return lhs < rhs;
    case CmpOp::LE: return lhs <= rhs;
    case CmpOp::EQ: return lhs == rhs;
    case CmpOp::NE: return lhs != rhs;
    }
    return false;
}

std::string
WatchSpec::describeJson() const
{
    std::ostringstream os;
    switch (kind) {
    case Kind::Cycle:
        os << "{\"cycle\": " << cycle << "}";
        break;
    case Kind::Stat:
        os << "{\"stat\": ";
        obs::writeJsonString(os, stat);
        os << ", \"op\": \"" << cmpOpName(op) << "\", \"value\": ";
        obs::writeJsonNumber(os, value);
        os << "}";
        break;
    case Kind::Queue:
        os << "{\"queue\": \"" << (toMm ? "tomm" : "tope")
           << "\", \"stage\": " << stage << ", \"op\": \""
           << cmpOpName(op) << "\", \"value\": ";
        obs::writeJsonNumber(os, value);
        os << "}";
        break;
    case Kind::WaitBuffer:
        os << "{\"queue\": \"wb\", \"stage\": " << stage
           << ", \"op\": \"" << cmpOpName(op) << "\", \"value\": ";
        obs::writeJsonNumber(os, value);
        os << "}";
        break;
    case Kind::Drift:
        os << "{\"drift\": ";
        obs::writeJsonNumber(os, value);
        os << "}";
        break;
    }
    return os.str();
}

namespace
{

bool
parseWatch(const jsonlite::JsonValue &obj, WatchSpec &out,
           std::string &err)
{
    std::uint64_t u = 0;
    if (getU64(obj, "cycle", u)) {
        out.kind = WatchSpec::Kind::Cycle;
        out.cycle = u;
        return true;
    }
    if (obj.has("drift")) {
        if (!obj["drift"].isNumber() || obj["drift"].number <= 0) {
            err = "watch: 'drift' must be a positive tolerance";
            return false;
        }
        out.kind = WatchSpec::Kind::Drift;
        out.value = obj["drift"].number;
        return true;
    }
    const bool is_stat = obj.has("stat");
    const bool is_queue = obj.has("queue");
    if (!is_stat && !is_queue) {
        err = "watch needs one of 'cycle', 'drift', 'stat', 'queue'";
        return false;
    }
    if (!obj.has("op") || !obj["op"].isString() ||
        !parseCmpOp(obj["op"].string, out.op)) {
        err = "watch: 'op' must be one of > >= < <= == !=";
        return false;
    }
    if (!obj.has("value") || !obj["value"].isNumber()) {
        err = "watch: numeric 'value' required";
        return false;
    }
    out.value = obj["value"].number;
    if (is_stat) {
        if (!obj["stat"].isString() || obj["stat"].string.empty()) {
            err = "watch: 'stat' must be a registry path";
            return false;
        }
        out.kind = WatchSpec::Kind::Stat;
        out.stat = obj["stat"].string;
        return true;
    }
    if (!obj["queue"].isString()) {
        err = "watch: 'queue' must be \"tomm\", \"tope\" or \"wb\"";
        return false;
    }
    const std::string &dir = obj["queue"].string;
    if (dir == "tomm") {
        out.kind = WatchSpec::Kind::Queue;
        out.toMm = true;
    } else if (dir == "tope") {
        out.kind = WatchSpec::Kind::Queue;
        out.toMm = false;
    } else if (dir == "wb") {
        out.kind = WatchSpec::Kind::WaitBuffer;
    } else {
        err = "watch: 'queue' must be \"tomm\", \"tope\" or \"wb\"";
        return false;
    }
    if (!getU64(obj, "stage", u)) {
        err = "watch: 'stage' required for queue watchpoints";
        return false;
    }
    out.stage = static_cast<unsigned>(u);
    return true;
}

} // namespace

bool
parseCommand(const std::string &line, Command &out, std::string &err)
{
    jsonlite::JsonValue doc;
    try {
        doc = jsonlite::parse(line);
    } catch (const std::exception &e) {
        err = std::string("malformed JSON: ") + e.what();
        return false;
    }
    if (!doc.isObject() || !doc.has("cmd") || !doc["cmd"].isString()) {
        err = "request must be a JSON object with a string 'cmd'";
        return false;
    }
    const std::string &cmd = doc["cmd"].string;
    std::uint64_t u = 0;

    if (cmd == "ping") {
        out.kind = Command::Kind::Ping;
    } else if (cmd == "status") {
        out.kind = Command::Kind::Status;
    } else if (cmd == "pause") {
        out.kind = Command::Kind::Pause;
    } else if (cmd == "resume") {
        out.kind = Command::Kind::Resume;
    } else if (cmd == "step") {
        out.kind = Command::Kind::Step;
        out.stepCount = 1;
        out.stepTo = kNeverCycle;
        if (doc.has("to")) {
            if (!getU64(doc, "to", u)) {
                err = "step: 'to' must be a non-negative integer "
                      "cycle";
                return false;
            }
            out.stepTo = u;
        } else if (doc.has("n")) {
            if (!getU64(doc, "n", u) || u == 0) {
                err = "step: 'n' must be an integer >= 1";
                return false;
            }
            out.stepCount = u;
        }
    } else if (cmd == "switch") {
        out.kind = Command::Kind::Switch;
        if (getU64(doc, "copy", u))
            out.copy = static_cast<unsigned>(u);
        if (!getU64(doc, "stage", u)) {
            err = "switch: 'stage' required";
            return false;
        }
        out.stage = static_cast<unsigned>(u);
        if (!getU64(doc, "index", u)) {
            err = "switch: 'index' required";
            return false;
        }
        out.index = static_cast<std::uint32_t>(u);
    } else if (cmd == "mni") {
        out.kind = Command::Kind::Mni;
        if (getU64(doc, "copy", u))
            out.copy = static_cast<unsigned>(u);
        if (!getU64(doc, "module", u)) {
            err = "mni: 'module' required";
            return false;
        }
        out.module = static_cast<MMId>(u);
    } else if (cmd == "mem" || cmd == "poke") {
        out.kind = cmd == "mem" ? Command::Kind::Mem
                                : Command::Kind::Poke;
        if (getU64(doc, "vaddr", u)) {
            out.hasVaddr = true;
            out.vaddr = u;
        } else if (getU64(doc, "module", u)) {
            out.hasModule = true;
            out.module = static_cast<MMId>(u);
            if (!getU64(doc, "offset", u)) {
                err = cmd + ": 'offset' required with 'module'";
                return false;
            }
            out.offset = u;
        } else {
            err = cmd + ": 'vaddr' or 'module'+'offset' required";
            return false;
        }
        if (out.kind == Command::Kind::Poke) {
            if (!doc.has("value") || !doc["value"].isNumber()) {
                err = "poke: numeric 'value' required";
                return false;
            }
            out.value = static_cast<Word>(doc["value"].number);
        }
    } else if (cmd == "stats") {
        out.kind = Command::Kind::Stats;
        if (doc.has("prefix") && doc["prefix"].isString())
            out.prefix = doc["prefix"].string;
    } else if (cmd == "latency") {
        out.kind = Command::Kind::Latency;
    } else if (cmd == "prof") {
        out.kind = Command::Kind::Prof;
    } else if (cmd == "heatmap") {
        out.kind = Command::Kind::Heatmap;
    } else if (cmd == "watch") {
        out.kind = Command::Kind::Watch;
        if (!parseWatch(doc, out.watch, err))
            return false;
    } else if (cmd == "unwatch") {
        out.kind = Command::Kind::Unwatch;
        if (!getU64(doc, "id", u)) {
            err = "unwatch: 'id' required";
            return false;
        }
        out.watchId = u;
    } else if (cmd == "watchpoints") {
        out.kind = Command::Kind::Watchpoints;
    } else if (cmd == "detach" || cmd == "quit") {
        out.kind = Command::Kind::Detach;
    } else {
        err = "unknown cmd '" + cmd + "'";
        return false;
    }
    return true;
}

std::string
errorReply(const std::string &message)
{
    std::ostringstream os;
    os << "{\"ok\": false, \"error\": ";
    obs::writeJsonString(os, message);
    os << "}";
    return os.str();
}

} // namespace ultra::inspect
