/**
 * @file
 * Socket transport for the live inspection protocol (ultra::inspect).
 *
 * An InspectServer listens on a TCP loopback port or a unix-domain
 * socket and serves one attached client at a time (sequential clients
 * are fine -- detach and re-attach at will, like gdbserver).  A
 * background thread owns accept() and read(): it splits the byte
 * stream into lines and parks them on a queue.  Everything that
 * touches simulation state stays on the *simulation* thread: the
 * Inspector pops lines at cycle boundaries and writes responses back
 * through send().  The transport therefore needs no knowledge of the
 * protocol, and the simulator needs no locks around its own state.
 *
 * InspectClient is the matching connector used by `ultrascope
 * --attach` and the tests: connect, send a line, receive a line with a
 * timeout.
 */

#ifndef ULTRA_INSPECT_SERVER_H
#define ULTRA_INSPECT_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace ultra::inspect
{

/**
 * Line-oriented single-client socket server.
 *
 * Address grammar (shared with InspectClient): an all-digit string is
 * a TCP port on 127.0.0.1 (0 picks an ephemeral port -- read the real
 * one back from port()); anything else is a unix-domain socket path
 * (any stale file at that path is unlinked first).
 */
class InspectServer
{
  public:
    /** Listen on @p addr; nullptr + @p err on failure. */
    static std::unique_ptr<InspectServer> listen(const std::string &addr,
                                                 std::string &err);

    ~InspectServer();

    InspectServer(const InspectServer &) = delete;
    InspectServer &operator=(const InspectServer &) = delete;

    /** Human-readable bound address ("127.0.0.1:4567" or the path). */
    const std::string &where() const { return where_; }

    /** Bound TCP port (0 for unix-domain sockets). */
    std::uint16_t port() const { return port_; }

    /** A client is attached right now. */
    bool connected() const;

    /** Clients that have disconnected since the last call (lets the
     *  Inspector clear watchpoints left by a vanished client). */
    unsigned takeDisconnects();

    /** Non-blocking: pop the next complete command line. */
    bool poll(std::string &line);

    /**
     * Block until a command line arrives (true) or the attached client
     * disconnects with nothing queued (false).  With no client yet
     * attached this waits for the first connection -- the "run starts
     * paused until someone attaches" behaviour -- and only a
     * disconnect observed after entry returns false.
     */
    bool wait(std::string &line);

    /** Send one line (newline appended) to the attached client; a
     *  no-op when none is attached. */
    void send(const std::string &line);

  private:
    InspectServer(int listen_fd, std::string where, std::uint16_t port,
                  std::string unlink_path);

    void serve(); //!< background accept + read loop

    const std::string where_;
    const std::uint16_t port_;
    const std::string unlinkPath_; //!< unix-socket file to remove

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::string> lines_;
    int listenFd_ = -1;
    int clientFd_ = -1;
    unsigned disconnects_ = 0;      //!< total client hang-ups
    unsigned disconnectsTaken_ = 0; //!< consumed by takeDisconnects
    bool stopping_ = false;

    std::thread thread_;
};

/** Blocking line-oriented connector for the same address grammar. */
class InspectClient
{
  public:
    /** Outcome of one receive attempt. */
    enum class Recv { Line, Timeout, Closed };

    /** Connect to @p addr; nullptr + @p err on failure. */
    static std::unique_ptr<InspectClient> connect(const std::string &addr,
                                                  std::string &err);

    ~InspectClient();

    InspectClient(const InspectClient &) = delete;
    InspectClient &operator=(const InspectClient &) = delete;

    /** Send one line (newline appended).  False once the peer is gone. */
    bool sendLine(const std::string &line);

    /**
     * Receive the next line, waiting up to @p timeout_ms (<0 = forever).
     * On Timeout @p line is left empty; on Closed it holds any partial
     * unterminated tail.
     */
    Recv recvLineEx(std::string &line, int timeout_ms = -1);

    /** recvLineEx reduced to "got a line?". */
    bool
    recvLine(std::string &line, int timeout_ms = -1)
    {
        return recvLineEx(line, timeout_ms) == Recv::Line;
    }

  private:
    explicit InspectClient(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string buf_; //!< bytes read past the last returned line
};

} // namespace ultra::inspect

#endif // ULTRA_INSPECT_SERVER_H
