#include "inspect/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace ultra::inspect
{

namespace
{

bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

/** Create the listening (or, for the client, connected) socket for the
 *  shared address grammar; -1 + err on failure. */
int
openSocket(const std::string &addr, bool listening, std::string &where,
           std::uint16_t &port, std::string &unlink_path,
           std::string &err)
{
    where = addr;
    port = 0;
    unlink_path.clear();
    if (allDigits(addr)) {
        const unsigned long parsed = std::strtoul(addr.c_str(), nullptr, 10);
        if (parsed > 65535) {
            err = "port out of range: " + addr;
            return -1;
        }
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            err = std::strerror(errno);
            return -1;
        }
        sockaddr_in sin{};
        sin.sin_family = AF_INET;
        sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        sin.sin_port = htons(static_cast<std::uint16_t>(parsed));
        if (listening) {
            const int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
            if (::bind(fd, reinterpret_cast<sockaddr *>(&sin),
                       sizeof sin) != 0 ||
                ::listen(fd, 1) != 0) {
                err = std::strerror(errno);
                ::close(fd);
                return -1;
            }
            socklen_t len = sizeof sin;
            ::getsockname(fd, reinterpret_cast<sockaddr *>(&sin), &len);
        } else if (::connect(fd, reinterpret_cast<sockaddr *>(&sin),
                             sizeof sin) != 0) {
            err = std::strerror(errno);
            ::close(fd);
            return -1;
        }
        port = ntohs(sin.sin_port);
        where = "127.0.0.1:" + std::to_string(port);
        return fd;
    }
    sockaddr_un sun{};
    if (addr.size() >= sizeof sun.sun_path) {
        err = "unix socket path too long: " + addr;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::strerror(errno);
        return -1;
    }
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, addr.c_str(), sizeof sun.sun_path - 1);
    if (listening) {
        ::unlink(addr.c_str()); // a stale socket file blocks bind()
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sun), sizeof sun) !=
                0 ||
            ::listen(fd, 1) != 0) {
            err = std::strerror(errno);
            ::close(fd);
            return -1;
        }
        unlink_path = addr;
    } else if (::connect(fd, reinterpret_cast<sockaddr *>(&sun),
                         sizeof sun) != 0) {
        err = std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

// ------------------------------------------------------------------
// InspectServer
// ------------------------------------------------------------------

std::unique_ptr<InspectServer>
InspectServer::listen(const std::string &addr, std::string &err)
{
    std::string where;
    std::uint16_t port = 0;
    std::string unlink_path;
    const int fd =
        openSocket(addr, true, where, port, unlink_path, err);
    if (fd < 0)
        return nullptr;
    return std::unique_ptr<InspectServer>(
        new InspectServer(fd, std::move(where), port,
                          std::move(unlink_path)));
}

InspectServer::InspectServer(int listen_fd, std::string where,
                             std::uint16_t port, std::string unlink_path)
    : where_(std::move(where)), port_(port),
      unlinkPath_(std::move(unlink_path)), listenFd_(listen_fd)
{
    thread_ = std::thread([this] { serve(); });
}

InspectServer::~InspectServer()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        // Wake the serve thread out of accept()/read().
        if (clientFd_ >= 0)
            ::shutdown(clientFd_, SHUT_RDWR);
        if (listenFd_ >= 0)
            ::shutdown(listenFd_, SHUT_RDWR);
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    if (clientFd_ >= 0)
        ::close(clientFd_);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (!unlinkPath_.empty())
        ::unlink(unlinkPath_.c_str());
}

void
InspectServer::serve()
{
    for (;;) {
        const int accepted = ::accept(listenFd_, nullptr, nullptr);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stopping_) {
                if (accepted >= 0)
                    ::close(accepted);
                return;
            }
        }
        if (accepted < 0) {
            if (errno == EINTR)
                continue;
            return; // listening socket gone
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            clientFd_ = accepted;
        }
        cv_.notify_all();

        std::string partial;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::read(accepted, chunk, sizeof chunk);
            if (n <= 0)
                break;
            partial.append(chunk, static_cast<std::size_t>(n));
            std::size_t start = 0;
            for (;;) {
                const std::size_t nl = partial.find('\n', start);
                if (nl == std::string::npos)
                    break;
                std::string line =
                    partial.substr(start, nl - start);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                start = nl + 1;
                if (line.empty())
                    continue;
                std::lock_guard<std::mutex> lock(mu_);
                lines_.push_back(std::move(line));
                cv_.notify_all();
            }
            partial.erase(0, start);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            ::close(accepted);
            clientFd_ = -1;
            ++disconnects_;
            if (stopping_)
                return;
        }
        cv_.notify_all();
    }
}

bool
InspectServer::connected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return clientFd_ >= 0;
}

unsigned
InspectServer::takeDisconnects()
{
    std::lock_guard<std::mutex> lock(mu_);
    const unsigned fresh = disconnects_ - disconnectsTaken_;
    disconnectsTaken_ = disconnects_;
    return fresh;
}

bool
InspectServer::poll(std::string &line)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (lines_.empty())
        return false;
    line = std::move(lines_.front());
    lines_.pop_front();
    return true;
}

bool
InspectServer::wait(std::string &line)
{
    std::unique_lock<std::mutex> lock(mu_);
    const unsigned seen = disconnects_;
    cv_.wait(lock, [&] {
        return !lines_.empty() || disconnects_ != seen || stopping_;
    });
    if (!lines_.empty()) {
        line = std::move(lines_.front());
        lines_.pop_front();
        return true;
    }
    return false; // disconnect (or shutdown): caller resumes the sim
}

void
InspectServer::send(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (clientFd_ < 0)
        return;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        // MSG_NOSIGNAL: a peer that vanished mid-job must surface as
        // EPIPE here, not as a process-killing SIGPIPE.
        const ssize_t n = ::send(clientFd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            break; // peer gone; the serve thread will notice
        off += static_cast<std::size_t>(n);
    }
}

// ------------------------------------------------------------------
// InspectClient
// ------------------------------------------------------------------

std::unique_ptr<InspectClient>
InspectClient::connect(const std::string &addr, std::string &err)
{
    std::string where;
    std::uint16_t port = 0;
    std::string unlink_path;
    const int fd =
        openSocket(addr, false, where, port, unlink_path, err);
    if (fd < 0)
        return nullptr;
    return std::unique_ptr<InspectClient>(new InspectClient(fd));
}

InspectClient::~InspectClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
InspectClient::sendLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

InspectClient::Recv
InspectClient::recvLineEx(std::string &line, int timeout_ms)
{
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line = buf_.substr(0, nl);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            buf_.erase(0, nl + 1);
            return Recv::Line;
        }
        if (timeout_ms >= 0) {
            pollfd pfd{fd_, POLLIN, 0};
            const int ready = ::poll(&pfd, 1, timeout_ms);
            if (ready <= 0) {
                line.clear();
                return Recv::Timeout; // (or poll error)
            }
        }
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n <= 0) {
            line = buf_; // peer closed: surface any partial tail
            buf_.clear();
            return Recv::Closed;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace ultra::inspect
