/**
 * @file
 * The live inspection engine (ultra::inspect).
 *
 * An Inspector joins a socket transport (InspectServer) to a running
 * simulation.  Its single entry point during a run is
 * atCycleBoundary(now), called from the simulation thread at every
 * cycle boundary -- via core::Machine::setCycleHook, or directly from a
 * manual tick loop (ultrasim net mode).  At that fence the previous
 * cycle is fully committed, so everything the Inspector reads (switch
 * queues, wait buffers, memory words, live statistics) is consistent,
 * and blocking there pauses the simulation without tearing any state.
 *
 * Everything except poke is read-only, so an attached, paused,
 * inspected and resumed run produces byte-identical output to an
 * unattached one (pinned by inspect_test and the golden suite).  poke
 * deliberately steers the run and is documented as breaking that
 * identity.
 *
 * Liveness rules: a run started with start_paused waits at cycle 0 for
 * a client to attach and resume (so short runs cannot finish before
 * the attach); a client that disconnects while the simulation is
 * paused -- or that leaves watchpoints armed -- auto-resumes the run
 * and disarms everything, so a vanished client never wedges the
 * simulation.  Watchpoints are one-shot: a hit emits an event, pauses
 * the run, and disarms the watchpoint (re-arm to continue hunting).
 */

#ifndef ULTRA_INSPECT_INSPECTOR_H
#define ULTRA_INSPECT_INSPECTOR_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "inspect/protocol.h"
#include "inspect/server.h"

namespace ultra::mem
{
class AddressHash;
class MemorySystem;
} // namespace ultra::mem

namespace ultra::net
{
class Network;
} // namespace ultra::net

namespace ultra::obs
{
class LatencyObservatory;
class Registry;
} // namespace ultra::obs

namespace ultra::prof
{
class Profiler;
} // namespace ultra::prof

namespace ultra::inspect
{

/** The simulation components an Inspector exposes.  Only the network
 *  is required; absent targets make the matching commands report a
 *  clean error instead of data. */
struct Targets
{
    const net::Network *network = nullptr;
    mem::MemorySystem *memory = nullptr;      //!< mem / poke
    const mem::AddressHash *hash = nullptr;   //!< vaddr translation
    const obs::Registry *registry = nullptr;  //!< stats, stat watches
    const obs::LatencyObservatory *latency = nullptr;
    const prof::Profiler *prof = nullptr;     //!< wall-clock profiler
};

/** Protocol engine; all methods run on the simulation thread. */
class Inspector
{
  public:
    /** @param start_paused Hold the run at its first cycle boundary
     *  until a client attaches and resumes (the --inspect default). */
    Inspector(InspectServer &server, Targets targets, bool start_paused);

    Inspector(const Inspector &) = delete;
    Inspector &operator=(const Inspector &) = delete;

    /**
     * Provide the live model-drift probe backing {"cmd":"watch",
     * "drift":e} (e.g. analytic::transitDrift against the current
     * round-trip mean).  Deliberately a closure and not a registry
     * stat: registering extra stats would change --stats-json output
     * and break the attached-equals-unattached guarantee.
     */
    void setDriftProbe(std::function<double()> fn)
    {
        driftFn_ = std::move(fn);
    }

    /**
     * The pause fence.  Call at every cycle boundary: evaluates
     * watchpoints, completes pending steps, serves queued commands,
     * and blocks while the run is paused.
     */
    void atCycleBoundary(Cycle now);

    /**
     * Call once when the run is over ( @p completed false = cycle
     * budget exhausted).  Emits the "finished" event and keeps serving
     * read-only commands until the client detaches or disconnects;
     * returns immediately when no client is attached.
     */
    void finishRun(Cycle now, bool completed);

    /** A poke command was executed (output identity waived). */
    bool pokeUsed() const { return pokeUsed_; }

  private:
    struct Armed
    {
        std::uint64_t id;
        WatchSpec spec;
    };

    /** Evaluate @p spec at @p now; @p observed gets the probed value. */
    bool fires(const WatchSpec &spec, Cycle now, double &observed);

    /** Parse + execute one request line, sending the reply. */
    void handleLine(const std::string &line, Cycle now);

    /** Execute a parsed command; returns the reply line. */
    std::string execute(const Command &cmd, Cycle now);

    std::string executeSwitch(const Command &cmd);
    std::string executeMni(const Command &cmd);
    std::string executeMem(const Command &cmd);
    std::string executeStats(const Command &cmd, Cycle now);
    std::string executeWatch(const Command &cmd);
    std::string statusJson(Cycle now) const;

    /** The attached client vanished: disarm and resume. */
    void clientGone();

    InspectServer &server_;
    Targets targets_;
    std::function<double()> driftFn_;
    /** Host-clock stamp at construction; status replies report wall
     *  seconds and cycles/sec from it.  Read through the profiler's
     *  sanctioned clock (UL-DET-007) -- the wall section describes the
     *  host run, never the simulation, so byte-identity is untouched. */
    std::uint64_t startNs_;

    bool paused_;
    Cycle stepTarget_ = kNeverCycle;
    bool finished_ = false;
    bool detached_ = false;
    bool pokeUsed_ = false;

    std::vector<Armed> armed_;
    std::uint64_t nextWatchId_ = 1;
};

} // namespace ultra::inspect

#endif // ULTRA_INSPECT_INSPECTOR_H
