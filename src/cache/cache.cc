#include "cache.h"

#include "common/log.h"

namespace ultra::cache
{

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    ULTRA_ASSERT(isPowerOfTwo(cfg.numSets), "numSets must be 2^i");
    ULTRA_ASSERT(isPowerOfTwo(cfg.blockWords), "blockWords must be 2^i");
    ULTRA_ASSERT(cfg.associativity >= 1);
    lines_.resize(static_cast<std::size_t>(cfg.numSets) *
                  cfg.associativity);
    for (auto &line : lines_) {
        line.data.assign(cfg.blockWords, 0);
        line.dirty.assign(cfg.blockWords, false);
    }
}

Addr
Cache::blockBase(Addr vaddr) const
{
    return vaddr & ~static_cast<Addr>(cfg_.blockWords - 1);
}

std::uint32_t
Cache::setOf(Addr vaddr) const
{
    return static_cast<std::uint32_t>(
        (vaddr / cfg_.blockWords) & (cfg_.numSets - 1));
}

Cache::Line *
Cache::find(Addr vaddr)
{
    const Addr base = blockBase(vaddr);
    Line *set = &lines_[static_cast<std::size_t>(setOf(vaddr)) *
                        cfg_.associativity];
    for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
        if (set[w].valid && set[w].base == base)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr vaddr) const
{
    return const_cast<Cache *>(this)->find(vaddr);
}

void
Cache::collectDirty(Line &line, std::vector<WriteBack> &out,
                    bool mark_clean)
{
    for (std::uint32_t w = 0; w < cfg_.blockWords; ++w) {
        if (line.dirty[w]) {
            out.push_back({line.base + w, line.data[w]});
            if (mark_clean)
                line.dirty[w] = false;
        }
    }
}

Cache::Line &
Cache::evictFor(Addr vaddr, std::vector<WriteBack> &write_backs)
{
    Line *set = &lines_[static_cast<std::size_t>(setOf(vaddr)) *
                        cfg_.associativity];
    Line *victim = &set[0];
    for (std::uint32_t w = 1; w < cfg_.associativity; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (victim->valid) {
        ++stats_.evictions;
        // Write-back policy: updated words within the evicted block are
        // written to central memory (section 3.4).
        const std::size_t before = write_backs.size();
        collectDirty(*victim, write_backs, true);
        stats_.wordsWrittenBack += write_backs.size() - before;
        victim->valid = false;
    }
    return *victim;
}

Cache::Access
Cache::read(Addr vaddr)
{
    Access result;
    if (Line *line = find(vaddr)) {
        line->lastUse = ++useClock_;
        result.hit = true;
        result.value = line->data[vaddr - line->base];
        ++stats_.readHits;
        return result;
    }
    ++stats_.readMisses;
    evictFor(vaddr, result.writeBacks);
    return result;
}

Cache::Access
Cache::write(Addr vaddr, Word value)
{
    Access result;
    if (Line *line = find(vaddr)) {
        line->lastUse = ++useClock_;
        line->data[vaddr - line->base] = value;
        line->dirty[vaddr - line->base] = true;
        result.hit = true;
        ++stats_.writeHits;
        return result;
    }
    ++stats_.writeMisses;
    evictFor(vaddr, result.writeBacks);
    return result;
}

void
Cache::installBlock(Addr base, const Word *words)
{
    ULTRA_ASSERT(base == blockBase(base), "installBlock needs an "
                 "aligned base address");
    ULTRA_ASSERT(find(base) == nullptr, "block already cached");
    std::vector<WriteBack> spill;
    Line &line = evictFor(base, spill);
    ULTRA_ASSERT(spill.empty(),
                 "installBlock found a dirty victim; probe with "
                 "read()/write() first and write back its words");
    line.valid = true;
    line.base = base;
    line.lastUse = ++useClock_;
    for (std::uint32_t w = 0; w < cfg_.blockWords; ++w) {
        line.data[w] = words[w];
        line.dirty[w] = false;
    }
}

void
Cache::release(Addr lo, Addr hi)
{
    for (auto &line : lines_) {
        if (!line.valid)
            continue;
        const Addr last = line.base + cfg_.blockWords - 1;
        if (line.base > hi || last < lo)
            continue;
        for (std::uint32_t w = 0; w < cfg_.blockWords; ++w) {
            if (line.dirty[w])
                ++stats_.releasedDirtyWords;
        }
        line.valid = false;
    }
}

void
Cache::releaseAll()
{
    release(0, ~Addr{0});
}

std::vector<WriteBack>
Cache::flush(Addr lo, Addr hi)
{
    std::vector<WriteBack> out;
    for (auto &line : lines_) {
        if (!line.valid)
            continue;
        const Addr last = line.base + cfg_.blockWords - 1;
        if (line.base > hi || last < lo)
            continue;
        collectDirty(line, out, true);
    }
    stats_.flushedWords += out.size();
    return out;
}

std::vector<WriteBack>
Cache::flushAll()
{
    return flush(0, ~Addr{0});
}

bool
Cache::contains(Addr vaddr) const
{
    return find(vaddr) != nullptr;
}

bool
Cache::probe(Addr vaddr, Word *value_out) const
{
    const Line *line = find(vaddr);
    if (!line)
        return false;
    *value_out = line->data[vaddr - line->base];
    return true;
}

} // namespace ultra::cache
